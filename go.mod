module dlsys

go 1.22
