package dlsys

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/db"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/learned"
	"dlsys/internal/nn"
	"dlsys/internal/quant"
	"dlsys/internal/tensor"
)

// must unwraps (value, error) pairs whose arguments are valid by
// construction; a failure is a test bug, so it panics.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// One benchmark per registered experiment — the claims (E1..E32), the
// ablations (A1..A9), and the extensions (X1..X10) — each regenerating its
// table at quick scale, so `go test -bench=E<k>$` reproduces any single
// result and `-bench=.` reproduces them all.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := RunExperiment(id, false)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced an empty table", id)
		}
	}
}

func BenchmarkE1(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkE7(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkE14(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkE16(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17(b *testing.B) { benchExperiment(b, "E17") }
func BenchmarkE18(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19(b *testing.B) { benchExperiment(b, "E19") }
func BenchmarkE20(b *testing.B) { benchExperiment(b, "E20") }
func BenchmarkE21(b *testing.B) { benchExperiment(b, "E21") }
func BenchmarkE22(b *testing.B) { benchExperiment(b, "E22") }
func BenchmarkE23(b *testing.B) { benchExperiment(b, "E23") }
func BenchmarkE24(b *testing.B) { benchExperiment(b, "E24") }
func BenchmarkE25(b *testing.B) { benchExperiment(b, "E25") }
func BenchmarkE26(b *testing.B) { benchExperiment(b, "E26") }
func BenchmarkE27(b *testing.B) { benchExperiment(b, "E27") }
func BenchmarkE28(b *testing.B) { benchExperiment(b, "E28") }
func BenchmarkE29(b *testing.B) { benchExperiment(b, "E29") }
func BenchmarkE30(b *testing.B) { benchExperiment(b, "E30") }
func BenchmarkE31(b *testing.B) { benchExperiment(b, "E31") }
func BenchmarkE32(b *testing.B) { benchExperiment(b, "E32") }

// Ablations A1..A9 — design-choice studies (see DESIGN.md).
func BenchmarkA1(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkA2(b *testing.B) { benchExperiment(b, "A2") }
func BenchmarkA3(b *testing.B) { benchExperiment(b, "A3") }
func BenchmarkA4(b *testing.B) { benchExperiment(b, "A4") }
func BenchmarkA5(b *testing.B) { benchExperiment(b, "A5") }
func BenchmarkA6(b *testing.B) { benchExperiment(b, "A6") }
func BenchmarkA7(b *testing.B) { benchExperiment(b, "A7") }
func BenchmarkA8(b *testing.B) { benchExperiment(b, "A8") }
func BenchmarkA9(b *testing.B) { benchExperiment(b, "A9") }

// Extensions X1..X14 — cited systems beyond the explicit claims.
func BenchmarkX1(b *testing.B)  { benchExperiment(b, "X1") }
func BenchmarkX2(b *testing.B)  { benchExperiment(b, "X2") }
func BenchmarkX3(b *testing.B)  { benchExperiment(b, "X3") }
func BenchmarkX4(b *testing.B)  { benchExperiment(b, "X4") }
func BenchmarkX5(b *testing.B)  { benchExperiment(b, "X5") }
func BenchmarkX6(b *testing.B)  { benchExperiment(b, "X6") }
func BenchmarkX7(b *testing.B)  { benchExperiment(b, "X7") }
func BenchmarkX8(b *testing.B)  { benchExperiment(b, "X8") }
func BenchmarkX9(b *testing.B)  { benchExperiment(b, "X9") }
func BenchmarkX10(b *testing.B) { benchExperiment(b, "X10") }
func BenchmarkX11(b *testing.B) { benchExperiment(b, "X11") }
func BenchmarkX12(b *testing.B) { benchExperiment(b, "X12") }
func BenchmarkX14(b *testing.B) { benchExperiment(b, "X14") }

// ---- micro-benchmarks for the hot paths underlying the experiments ----

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 0, 1, 128, 128)
	y := tensor.RandNormal(rng, 0, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
	b.SetBytes(128 * 128 * 8 * 2)
}

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewMLP(rng, nn.MLPConfig{In: 64, Hidden: []int{128, 128}, Out: 10})
	x := tensor.RandNormal(rng, 0, 1, 32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkMLPTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := nn.NewMLP(rng, nn.MLPConfig{In: 64, Hidden: []int{128, 128}, Out: 10})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.001), rng)
	x := tensor.RandNormal(rng, 0, 1, 32, 64)
	labels := make([]int, 32)
	y := nn.OneHot(labels, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(x, y)
	}
}

func BenchmarkInt8Inference(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	net := nn.NewMLP(rng, nn.MLPConfig{In: 64, Hidden: []int{128, 128}, Out: 10})
	im := quant.CompileIntMLP(net)
	x := tensor.RandNormal(rng, 0, 1, 32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Forward(x)
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	keys := must(data.GenerateKeys(rng, data.Uniform, 100000))
	bt := db.BulkLoadBTree(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkRMILookup(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	keys := must(data.GenerateKeys(rng, data.Uniform, 100000))
	idx := must(learned.BuildRMI(keys, 512))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Lookup(keys, keys[i%len(keys)])
	}
}

func BenchmarkBloomProbe(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	f := must(db.NewBloom(100000, 0.01))
	keys := must(data.GenerateKeys(rng, data.Uniform, 100000))
	for _, k := range keys {
		f.Add(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(keys[i%len(keys)])
	}
}

func BenchmarkHuffmanEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	codes := make([]uint16, 4096)
	for i := range codes {
		codes[i] = uint16(rng.ExpFloat64() * 4)
	}
	table := quant.BuildHuffman(codes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Encode(codes)
	}
}

// Sanity checks that the facade works; keeps the root package tested, not
// only benchmarked.
func TestFacade(t *testing.T) {
	if got := len(Experiments()); got != 54 {
		t.Fatalf("Experiments() returned %d, want 54 (32 claims + 9 ablations + 13 extensions)", got)
	}
	if got := len(Techniques()); got < 30 {
		t.Fatalf("Techniques() returned %d, want >=30", got)
	}
	if _, err := RunExperiment("E99", false); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	tab, err := RunExperiment("E12", false)
	if err != nil || len(tab.Rows) == 0 {
		t.Fatalf("E12 failed: %v", err)
	}
	if fmt.Sprint(tab.ID) != "E12" {
		t.Fatal("wrong table")
	}
}

func BenchmarkMatMul512Parallel(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandNormal(rng, 0, 1, 512, 512)
	y := tensor.RandNormal(rng, 0, 1, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
	b.SetBytes(512 * 512 * 8 * 2)
}

// BenchmarkFaultyTraining measures the overhead the fault machinery adds
// to distributed training as the injected fault rate grows: rate 0 is the
// fast path (no retries, no snapshots restored), 0.05 and 0.2 pay for
// retransmissions, crash recovery, and straggler handling.
func BenchmarkFaultyTraining(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	ds := data.GaussianMixture(rng, 320, 6, 3, 3.2)
	train, _ := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, 3)
	arch := nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3}
	for _, rate := range []float64{0, 0.05, 0.2} {
		b.Run(fmt.Sprintf("rate=%g", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := distributed.Train(13, train.X, y, distributed.Config{
					Workers: 4, Arch: arch, Epochs: 5, BatchSize: 16, LR: 0.1,
					AveragePeriod: 1, Fault: fault.Rate(14, rate), SnapshotPeriod: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVectorizedQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	tab := db.NewTable("t", "a", "v")
	for i := 0; i < 200000; i++ {
		tab.Append(rng.Float64(), rng.NormFloat64())
	}
	preds := []db.Pred{{Col: "a", Lo: 0.25, Hi: 0.75}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.VectorizedQuery(tab, db.AggMean, "v", preds)
	}
}

func BenchmarkCanopyWarmQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	tab := db.NewTable("t", "x")
	for i := 0; i < 200000; i++ {
		tab.Append(rng.NormFloat64())
	}
	c := must(db.NewCanopy(tab, 512))
	c.Mean("x", 0, 200000) // warm every chunk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * 7919) % 100000
		c.Mean("x", lo, lo+90000)
	}
}
