// Package dlsys is a from-scratch Go reproduction of the systems described
// in the SIGMOD 2021 tutorial "Deep Learning: Systems and Responsibility"
// (Wasay, Chatterjee, Idreos). It implements, with no dependencies beyond
// the standard library:
//
//   - Part 1 — a neural-network engine (internal/tensor, internal/nn) and
//     the systems techniques the tutorial surveys: quantization, pruning,
//     and distillation (internal/quant, internal/prune, internal/distill);
//     ensemble training shortcuts including Snapshot Ensembles, FGE,
//     TreeNets, and MotherNets (internal/ensemble); simulated distributed
//     training with Local SGD, gradient compression, and fault tolerance —
//     retrying transport, straggler mitigation, crash recovery from
//     CRC-protected model snapshots — over pluggable collective topologies
//     (all-to-all mesh, ring all-reduce, binary tree, hierarchical) with
//     elastic worker membership, under deterministic fault injection
//     including per-link drops, slowdowns, and partitions
//     (internal/distributed, internal/fault); Byzantine-robust aggregation
//     (coordinate median, trimmed mean, Krum, norm clipping) with
//     reputation-based quarantine of adversarial workers (internal/robust);
//     self-healing training that
//     detects numerical faults and divergence and remediates by skipping,
//     clipping, LR backoff, and checkpoint rollback, with a replayable
//     incident ledger (internal/guard); activation checkpointing,
//     offloading, and model-state snapshots (internal/checkpoint); and
//     FlexFlow/MorphNet-style optimization (internal/planner) over
//     simulated hardware (internal/device).
//
//   - Part 2 — an in-memory database substrate (internal/db: column store,
//     B-tree, Bloom filter, histograms, join optimizer) and the learned
//     components that enhance or replace it (internal/learned: RMI learned
//     index, learned Bloom filter, neural selectivity estimation, RL knob
//     tuning, learned join costing; internal/explore: RL-guided
//     exploration, similarity embeddings, autoencoder compression).
//
//   - Part 3 — responsibility tooling: fairness metrics and mitigations
//     (internal/fairness), interpretability methods from t-SNE to LIME to
//     saliency (internal/interpret), a Mistique-style intermediates store
//     (internal/modelstore), and carbon accounting plus carbon-aware
//     scheduling (internal/green).
//
// The tutorial publishes no tables or figures; its claims are reproduced
// as 32 registered experiments (E1-E32), each regenerating a results
// table, plus nine design-choice ablations (A1-A9) and the extension
// studies of cited systems (X1-X12, X14). This package is the facade: list
// experiments, run them, and render their tables. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for expected-vs-measured shapes.
package dlsys

import (
	"fmt"

	"dlsys/internal/core"
	"dlsys/internal/pipeline"
)

// Table is a regenerated experiment result (re-exported from core).
type Table = core.Table

// Experiment is a registered reproduction target (re-exported from core).
type Experiment = core.Experiment

// Technique classifies one implemented method within the tutorial's
// tradeoff framework (re-exported from core).
type Technique = core.Technique

// Experiments returns all registered experiments: the claim reproductions
// E1..E32, then the ablations A1..A9, then the extensions X1..X14.
func Experiments() []Experiment { return core.All() }

// ClaimExperiments returns only E1..E32, the tutorial-claim reproductions.
func ClaimExperiments() []Experiment { return core.Claims() }

// AblationExperiments returns only A1..A9, the design-choice studies.
func AblationExperiments() []Experiment { return core.Ablations() }

// ExtensionExperiments returns only X1..X14: cited systems implemented
// beyond the tutorial's explicit tradeoff claims.
func ExtensionExperiments() []Experiment { return core.Extensions() }

// Techniques returns the tradeoff classification of every implemented
// technique — the organising framework of the tutorial.
func Techniques() []Technique { return core.Techniques() }

// ChaosDayPerf is the X10 composed production-day throughput sample
// (re-exported from core): wall time and simulation-kernel event
// throughput for one full scenario run.
type ChaosDayPerf = core.ChaosDayPerf

// BenchmarkChaosDay times one composed production-day simulation (the X10
// scenario: training + serving + live index on one kernel under scheduled
// chaos) and returns the perf-trajectory sample CI records per PR.
func BenchmarkChaosDay(full bool) (ChaosDayPerf, error) {
	scale := core.Quick
	if full {
		scale = core.Full
	}
	return core.ChaosDayBenchmark(scale)
}

// LiveIndexPerf is the X11 online index-maintenance throughput sample
// (re-exported from core): wall time, query throughput, and the
// maintenance outcome of the hardest drift × fault cell.
type LiveIndexPerf = core.LiveIndexPerf

// BenchmarkLiveIndex times the hardest X11 cell (flash drift × bursty
// corrupted inserts) and returns the perf-trajectory sample CI records per
// PR (BENCH_X11.json).
func BenchmarkLiveIndex(full bool) (LiveIndexPerf, error) {
	scale := core.Quick
	if full {
		scale = core.Full
	}
	return core.LiveIndexBenchmark(scale)
}

// TopologyPerf is the X12 elastic topology-aware training throughput
// sample (re-exported from core): wall time, simulated communication
// seconds, and the healing/churn ledger of the largest ring cell under
// link faults plus worker churn.
type TopologyPerf = core.TopologyPerf

// BenchmarkTopology times the hardest X12 cell (largest-n ring all-reduce
// under link faults and scheduled churn) and returns the perf-trajectory
// sample CI records per PR (BENCH_X12.json).
func BenchmarkTopology(full bool) (TopologyPerf, error) {
	scale := core.Quick
	if full {
		scale = core.Full
	}
	return core.TopologyBenchmark(scale)
}

// KernelPerf is the X13 tensor-kernel throughput sample (re-exported from
// core): per-tier GEMM throughput (reference, tiled, pooled, batched,
// float32), speedups over the serial reference, and whether the fast
// float64 tiers stayed bit-identical to it.
type KernelPerf = core.KernelPerf

// BenchmarkKernels times every tier of the GEMM kernel hierarchy on one
// square product (1024³ at full scale) and returns the perf-trajectory
// sample CI records per PR (BENCH_X13.json).
func BenchmarkKernels(full bool) (KernelPerf, error) {
	scale := core.Quick
	if full {
		scale = core.Full
	}
	return core.KernelBenchmark(scale)
}

// FleetPerf is the X14 event-driven serving-fleet throughput sample
// (re-exported from core): wall time, simulated-request throughput, and
// kernel-event throughput for one full-control-plane overload day.
type FleetPerf = core.FleetPerf

// BenchmarkFleet times one X14 overload day (>=1.2M requests at full
// scale through the event-driven fleet with the whole control plane on)
// and returns the perf-trajectory sample CI records per PR
// (BENCH_X14.json).
func BenchmarkFleet(full bool) (FleetPerf, error) {
	scale := core.Quick
	if full {
		scale = core.Full
	}
	return core.FleetBenchmark(scale)
}

// PipelineSpec declares a train/compress/deploy pipeline (re-exported from
// pipeline); zero-valued stages are skipped.
type PipelineSpec = pipeline.Spec

// PipelineLedger is an executed pipeline's tradeoff metrics.
type PipelineLedger = pipeline.Ledger

// RunPipeline executes a declared pipeline and returns its metric ledger —
// the "declarative interface" entry point.
func RunPipeline(spec PipelineSpec) (PipelineLedger, error) { return pipeline.Run(spec) }

// ComparePipelines runs several pipeline specs and returns their ledgers.
func ComparePipelines(specs ...PipelineSpec) ([]PipelineLedger, error) {
	return pipeline.Compare(specs...)
}

// RunExperiment executes one experiment by ID ("E1".."E32", "A1".."A9", "X1".."X14").
// With full set, problem sizes match the documented tables; otherwise a
// quick scale keeps runs in the low seconds.
func RunExperiment(id string, full bool) (*Table, error) {
	e, ok := core.Get(id)
	if !ok {
		return nil, fmt.Errorf("dlsys: unknown experiment %q (have E1..E32, A1..A9, X1..X12, X14)", id)
	}
	scale := core.Quick
	if full {
		scale = core.Full
	}
	return e.Run(scale), nil
}
