// Learned index walkthrough: build an RMI and a B-tree over the same key
// sets and compare memory, lookup latency, and search windows — the Part 2
// "learned access methods" story.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"dlsys/internal/data"
	"dlsys/internal/db"
	"dlsys/internal/learned"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	for _, dist := range []data.KeyDistribution{data.Uniform, data.ZipfGaps, data.Lognormal} {
		keys, err := data.GenerateKeys(rng, dist, n)
		if err != nil {
			panic(err)
		}
		bt := db.BulkLoadBTree(keys)
		rmi, err := learned.BuildRMI(keys, 1024)
		if err != nil {
			panic(err)
		}

		probe := make([]uint64, 10000)
		for i := range probe {
			probe[i] = keys[rng.Intn(len(keys))]
		}

		start := time.Now()
		for _, k := range probe {
			if _, ok := bt.Lookup(k); !ok {
				panic("btree lost a key")
			}
		}
		btNs := time.Since(start).Nanoseconds() / int64(len(probe))

		start = time.Now()
		for _, k := range probe {
			if _, ok := rmi.Lookup(keys, k); !ok {
				panic("rmi lost a key")
			}
		}
		rmiNs := time.Since(start).Nanoseconds() / int64(len(probe))

		fmt.Printf("%-10s keys=%d  btree: %6.1fKB depth=%d %4dns/op   rmi: %5.1fKB window<=%d %4dns/op  (%.0fx smaller)\n",
			dist, len(keys),
			float64(bt.MemoryBytes())/1024, bt.Depth(), btNs,
			float64(rmi.MemoryBytes())/1024, rmi.MaxSearchWindow(), rmiNs,
			float64(bt.MemoryBytes())/float64(rmi.MemoryBytes()))
	}

	// Learned Bloom filter on clustered keys.
	keys := learned.ClusteredKeys(rng, 10000, 4, 1<<30)
	negs := data.NegativeKeys(rng, keys, 10000)
	lb, err := learned.BuildLearnedBloom(rng, keys, negs, learned.LearnedBloomConfig{
		Hidden: 12, Epochs: 40, LR: 0.01, TargetFPR: 0.03, BackupFPR: 0.03,
	})
	if err != nil {
		panic(err)
	}
	testNegs := data.NegativeKeys(rng, keys, 40000)
	fpr := lb.MeasuredFPR(testNegs)
	classic, err := db.NewBloom(len(keys), maxf(fpr, 1e-4))
	if err != nil {
		panic(err)
	}
	for _, k := range keys {
		classic.Add(k)
	}
	fmt.Printf("\nlearned bloom: %dB @ measured FPR %.4f (zero false negatives)\n", lb.MemoryBytes(), fpr)
	fmt.Printf("classic bloom at same FPR target: %dB @ measured FPR %.4f\n",
		classic.MemoryBytes(), classic.MeasuredFPR(testNegs))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
