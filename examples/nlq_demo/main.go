// NL query demo: train the natural-language parser on synthetic utterances
// over an employees table, then answer a set of English questions —
// including paraphrases a keyword matcher cannot handle — end to end.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/db"
	"dlsys/internal/nlq"
)

func main() {
	// The queryable table.
	tab := db.NewTable("employees", "salary", "age")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		age := 22 + rng.Float64()*43
		salary := 40 + (age-22)*2.2 + rng.NormFloat64()*15
		if salary < 25 {
			salary = 25
		}
		tab.Append(salary, age)
	}

	schema := nlq.Schema{
		Columns: []string{"salary", "age"},
		Synonyms: map[string][]string{
			"salary": {"salary", "pay", "income", "wage"},
			"age":    {"age", "years"},
		},
	}
	train := nlq.GenerateUtterances(rng, schema, 30)
	parser := nlq.TrainParser(rand.New(rand.NewSource(2)), schema, train, 40)
	fmt.Printf("trained on %d synthetic utterances\n\n", len(train))

	questions := []string{
		"what is the average salary",
		"show me the typical pay where age is between 30 and 40",
		"how many salary records",
		"find the highest income when years is between 50 and 65",
		"give the lowest wage for age is between 22 and 25",
		"tell me the total pay where years is between 40 and 45",
	}
	kb := &nlq.KeywordBaseline{Schema: schema}
	for _, q := range questions {
		parsed := parser.Parse(q)
		ans, err := parsed.Execute(tab)
		if err != nil {
			fmt.Printf("Q: %s\n   -> rejected: %v\n", q, err)
			continue
		}
		// The keyword baseline always emits schema columns, so its query runs.
		kbAns, _ := kb.Parse(q).Execute(tab)
		marker := " "
		if kbAns != ans {
			marker = "*" // keyword baseline got this one wrong
		}
		fmt.Printf("Q: %s\n   -> %s(%s)", q, aggName(parsed.Agg), parsed.TargetCol)
		if parsed.FilterCol != "" {
			fmt.Printf(" where %s in [%g, %g]", parsed.FilterCol, parsed.Lo, parsed.Hi)
		}
		fmt.Printf(" = %.2f %s\n", ans, marker)
	}
	fmt.Println("\n(* = the keyword baseline parses this question differently)")
}

func aggName(a db.Agg) string {
	switch a {
	case db.AggMean:
		return "avg"
	case db.AggSum:
		return "sum"
	case db.AggCount:
		return "count"
	case db.AggMin:
		return "min"
	case db.AggMax:
		return "max"
	}
	return "?"
}
