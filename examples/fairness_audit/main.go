// Fairness audit walkthrough: train a lending-style classifier on
// historically biased labels, audit it against the unbiased ground truth,
// and apply the tutorial's three mitigation families — reweighing,
// adversarial debiasing, and threshold post-processing.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/fairness"
	"dlsys/internal/nn"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	census := data.BiasedCensus(rng, data.CensusConfig{N: 12000, Bias: 0.8})
	train, test := census.SplitCensus(rng, 0.7)

	report := func(name string, preds []int) {
		r := fairness.Evaluate(preds, test.TrueMerit, test.Group)
		fmt.Printf("%-22s acc=%.3f parity-gap=%.3f disparate-impact=%.2f TPR-gap=%.3f\n",
			name, r.Accuracy, r.DemographicParityGap(), r.DisparateImpact(), r.EqualOpportunityGap())
	}

	// 1. The biased baseline.
	base := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
	nn.NewTrainer(base, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng).
		Fit(train.X, nn.OneHot(train.Labels, 2), nn.TrainConfig{Epochs: 20, BatchSize: 64})
	report("baseline", base.Predict(test.X))

	// 2. Pre-processing: reweighing.
	fair := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
	w := fairness.Reweigh(train.Labels, train.Group)
	fairness.TrainWeighted(rng, fair, train.X, train.Labels, w, 2, 20, 64, 0.01)
	report("reweighed", fair.Predict(test.X))

	// 3. In-processing: adversarial debiasing. The leakage metric is how
	// well a freshly trained probe recovers the protected attribute from
	// the encoder's representation — compare λ=0 against λ>0.
	cfg := fairness.AdversarialConfig{Encoder: []int{16, 8}, Lambda: 0, Epochs: 30, BatchSize: 64, LR: 0.01}
	plain := fairness.TrainAdversarial(rand.New(rand.NewSource(21)), train.X, train.Labels, train.Group, 2, cfg)
	cfg.Lambda = 4
	adv := fairness.TrainAdversarial(rand.New(rand.NewSource(21)), train.X, train.Labels, train.Group, 2, cfg)
	report("adversarial", adv.PredictTask(test.X))
	leakPlain := plain.AdversaryAccuracy(rand.New(rand.NewSource(22)), test.X, test.Group, 20)
	leakAdv := adv.AdversaryAccuracy(rand.New(rand.NewSource(22)), test.X, test.Group, 20)
	fmt.Printf("%-22s probe recovers group: λ=0 %.3f -> λ=4 %.3f (0.5 = chance)\n", "", leakPlain, leakAdv)

	// 4. Post-processing: per-group thresholds on the baseline's scores.
	scores := fairness.PositiveScores(base, test.X)
	th := fairness.EqualOpportunityThresholds(scores, test.TrueMerit, test.Group)
	report(fmt.Sprintf("thresholds %v", th), fairness.ApplyThresholds(scores, test.Group, th))

	// 5. Post-hoc: ablate group-correlated neurons.
	fairness.AblateCorrelatedUnits(base, train.X, train.Group, 0.5)
	report("neuron-ablated", base.Predict(test.X))
}
