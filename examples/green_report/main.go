// Green report walkthrough: measure the training FLOPs of models of
// increasing size, print their carbon footprint across hardware/region
// placements, and show what carbon-aware scheduling saves — Part 3.3 of
// the tutorial.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/green"
	"dlsys/internal/nn"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	ds := data.GaussianMixture(rng, 1500, 8, 4, 3)
	y := nn.OneHot(ds.Labels, 4)

	fmt.Println("== footprint vs model size (scaled to datacenter-sized runs) ==")
	for _, w := range []int{32, 64, 128, 256} {
		arch := nn.MLPConfig{In: 8, Hidden: []int{w, w}, Out: 4}
		net := nn.NewMLP(rng, arch)
		tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
		stats := tr.Fit(ds.X, y, nn.TrainConfig{Epochs: 20, BatchSize: 32})
		// Scale the measured FLOPs up as if this were a 1e6x larger run.
		fp := green.Estimate(stats.FLOPs*1e6, device.GPUSmall, green.MixedUS, 0.5)
		fmt.Printf("width=%-4d params=%-7d measured train GFLOPs=%-8.2f -> %s\n",
			w, net.NumParams(), float64(stats.FLOPs)/1e9, fp)
	}

	fmt.Println("\n== the same job across placements ==")
	for _, prof := range []device.Profile{device.GPULarge, device.TPULike, device.CPUServer} {
		for _, region := range green.Regions() {
			fp := green.Estimate(1e18, prof, region, 0.5)
			fmt.Printf("  %s\n", fp)
		}
	}

	fmt.Println("\n== carbon-aware scheduling ==")
	jobs := make([]green.Job, 12)
	for i := range jobs {
		jobs[i] = green.Job{Name: fmt.Sprintf("train-%d", i), FLOPs: 1e17}
	}
	slots := []green.Slot{
		{Device: device.GPULarge, Region: green.CoalHeavy, CapacityHours: 1000},
		{Device: device.GPULarge, Region: green.Hydro, CapacityHours: 1000},
		{Device: device.GPUSmall, Region: green.MixedUS, CapacityHours: 1000},
		{Device: device.TPULike, Region: green.WindSolar, CapacityHours: 1000},
	}
	_, naive := green.ScheduleNaive(jobs, slots)
	_, aware := green.ScheduleCarbonAware(jobs, slots)
	fmt.Printf("naive round-robin: %.0f gCO2e\ncarbon-aware:      %.0f gCO2e (%.1fx reduction)\n",
		naive, aware, naive/aware)
}
