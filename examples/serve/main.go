// Serve: robust model serving over a compressed-fallback fleet. A full
// model and its quantized/distilled/pruned variants are trained once; then
// a replica fleet (2x full + one replica per compressed tier) handles the
// same deterministic request stream at rising fault rates, with graceful
// degradation toggled off and on. Admission control sheds what cannot meet
// its deadline, hedged retries cut tail latency, circuit breakers isolate
// faulty replicas, and the tier mix shows where traffic lands when the
// full replicas falter.
package main

import (
	"fmt"

	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/serve"
)

func main() {
	variants, eval, err := serve.BuildVariants(serve.VariantsConfig{
		Seed: 21, Examples: 1200, Epochs: 20,
	})
	if err != nil {
		fmt.Println("ERROR:", err)
		return
	}
	fmt.Println("model ladder (accuracy on held-out split, streamed bytes):")
	for _, v := range variants {
		fmt.Printf("  %-9s  acc=%.3f  bytes=%d  flops=%d\n", v.Tier, v.Accuracy, v.Bytes, v.FLOPs)
	}

	mk := func(v serve.Variant) serve.Replica {
		return serve.Replica{Variant: v, Device: device.EdgeDevice, Efficiency: 0.5}
	}
	fleet := []serve.Replica{mk(variants[0]), mk(variants[0]), mk(variants[1]), mk(variants[2]), mk(variants[3])}
	serviceFull := fleet[0].ServiceS()

	fmt.Println("\n1000 requests at 1.3x the full replicas' capacity, rising fault rate:")
	fmt.Println("rate  fallback  avail  p50us  p99us  shed  hedgewins  bropen  brclose  servedacc  tiermix(full/quant/dist/prune)")
	for _, rate := range []float64{0, 0.05, 0.2} {
		for _, fallback := range []bool{false, true} {
			srv, err := serve.NewServer(serve.Config{
				Seed:          23,
				Faults:        fault.Rate(23, rate),
				Replicas:      fleet,
				ArrivalRate:   1.3 * 2 / serviceFull,
				Requests:      1000,
				HedgeQuantile: 0.9,
				Fallback:      fallback,
				EvalX:         eval.X,
				EvalLabels:    eval.Labels,
			})
			if err != nil {
				fmt.Printf("%.2f  ERROR: %v\n", rate, err)
				continue
			}
			res := srv.Run()
			fmt.Printf("%.2f  %-8v  %.3f  %-5.1f  %-5.1f  %-4d  %-9d  %-6d  %-7d  %.3f      %d/%d/%d/%d\n",
				rate, fallback, res.Availability, res.P50S*1e6, res.P99S*1e6,
				res.Shed, res.HedgeWins, res.BreakerOpened, res.BreakerReclosed, res.MixAccuracy,
				res.TierCounts[serve.TierFull], res.TierCounts[serve.TierQuantized],
				res.TierCounts[serve.TierDistilled], res.TierCounts[serve.TierPruned])
		}
	}
	fmt.Println("\nwith fallback the fleet degrades to compressed tiers instead of")
	fmt.Println("shedding: availability stays higher at every fault rate, at a small,")
	fmt.Println("measured served-accuracy cost.")
}
