// Ensembles walkthrough: train a 3-member deep ensemble five ways —
// independently, Snapshot, Fast Geometric, TreeNets, and MotherNets — and
// print the training-cost / memory / accuracy tradeoff each strikes
// (Part 1 of the tutorial, "Training and Deploying Deep Ensembles").
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/ensemble"
	"dlsys/internal/nn"
)

func main() {
	rng := rand.New(rand.NewSource(9))
	ds := data.GaussianMixture(rng, 2000, 8, 4, 2.5)
	train, test := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, 4)

	arch := nn.MLPConfig{In: 8, Hidden: []int{32, 32}, Out: 4}
	cfg := ensemble.TrainConfig{K: 3, Arch: arch, Epochs: 30, BatchSize: 32, LR: 0.01}

	show := func(name string, r ensemble.Result) {
		fmt.Printf("%-12s train-GFLOPs=%-8.2f params=%-7d accuracy=%.3f\n",
			name, float64(r.FLOPs)/1e9, r.Committee.NumParams(),
			ensemble.Accuracy(r.Committee, test.X, test.Labels))
	}

	show("independent", ensemble.TrainIndependent(1, train.X, y, cfg))
	show("snapshot", ensemble.TrainSnapshot(2, train.X, y, cfg))
	show("fge", ensemble.TrainFGE(3, train.X, y, cfg))
	show("treenets", ensemble.TrainTreeNet(4, train.X, y, cfg))
	show("mothernets", ensemble.TrainMotherNets(5, train.X, y, ensemble.MotherNetsConfig{
		Members: []nn.MLPConfig{
			{In: 8, Hidden: []int{32, 32}, Out: 4},
			{In: 8, Hidden: []int{48, 32}, Out: 4},
			{In: 8, Hidden: []int{32, 48}, Out: 4},
		},
		MotherEpochs: 15, FineTuneEpochs: 6, BatchSize: 32, LR: 0.01,
	}))

	// Single-model baseline for context.
	single := nn.NewMLP(rand.New(rand.NewSource(6)), arch)
	tr := nn.NewTrainer(single, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rand.New(rand.NewSource(7)))
	stats := tr.Fit(train.X, y, nn.TrainConfig{Epochs: 30, BatchSize: 32})
	fmt.Printf("%-12s train-GFLOPs=%-8.2f params=%-7d accuracy=%.3f\n",
		"single", float64(stats.FLOPs)/1e9, single.NumParams(),
		single.Accuracy(test.X, test.Labels))
}
