// Selfheal: single-trainer self-healing under numerical faults. The same
// model and data are trained three ways — fault-free, under injected
// numerical faults with the guard only observing, and under the identical
// fault schedule with the guard enforcing (skip bad batches, clip exploding
// gradients, back off the learning rate, roll back to a checkpoint). The
// observed run is wrecked by the first NaN batch; the enforced run finishes
// near the fault-free loss and prints the incident ledger that explains
// every intervention. A final section replays the guarded run to show the
// ledger fingerprint is deterministic. A self-healing pipeline spec closes
// the demo.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/fault"
	"dlsys/internal/guard"
	"dlsys/internal/nn"
	"dlsys/internal/pipeline"
	"dlsys/internal/tensor"
)

// run trains one MLP under the given fault rate and guard mode, returning
// the guard (for its ledger) and the clean held-out loss and accuracy.
func run(train, test *data.Dataset, rate float64, mode guard.Mode) (*guard.Trainer, float64, float64) {
	net := nn.NewMLP(rand.New(rand.NewSource(2)), nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rand.New(rand.NewSource(3)))
	g := guard.New(tr, guard.Policy{Mode: mode, Schema: guard.NewBatchSchema(train.X, 6)})

	var inj *fault.Injector
	if rate > 0 {
		inj = fault.NewInjector(fault.NumericalRate(5, rate))
	}
	g.Fit(train.X, nn.OneHot(train.Labels, 3), guard.FitConfig{
		Epochs: 15, BatchSize: 16,
		Inject: func(step int, bx, by *tensor.Tensor) {
			if inj.CorruptsBatch(0, step) {
				inj.CorruptBatchValues(bx.Data, 0, step)
			}
			if inj.LabelNoise(0, step) {
				inj.ShuffleLabels(by.Data, by.Dim(0), by.Dim(1), 0, step)
			}
		},
		LRSpike: func(step int) float64 { return inj.LRSpikeFactor(0, step) },
	})
	loss := tr.ComputeGrad(test.X, nn.OneHot(test.Labels, 3))
	return g, loss, net.Accuracy(test.X, test.Labels)
}

func main() {
	rng := rand.New(rand.NewSource(1))
	ds := data.GaussianMixture(rng, 800, 6, 3, 2.5)
	train, test := ds.Split(rng, 0.8)

	_, cleanLoss, cleanAcc := run(train, test, 0, guard.Enforce)
	fmt.Printf("fault-free:        clean loss %.4f  accuracy %.3f\n", cleanLoss, cleanAcc)

	const rate = 0.1
	gObs, obsLoss, obsAcc := run(train, test, rate, guard.Observe)
	fmt.Printf("faults, observed:  clean loss %.4f  accuracy %.3f  (%d incidents recorded, none remediated)\n",
		obsLoss, obsAcc, gObs.Ledger().Len())

	gEnf, enfLoss, enfAcc := run(train, test, rate, guard.Enforce)
	l := gEnf.Ledger()
	fmt.Printf("faults, enforced:  clean loss %.4f  accuracy %.3f\n\n", enfLoss, enfAcc)
	fmt.Printf("incident ledger (%d incidents: %d skipped, %d clipped, %d backoffs, %d rollbacks):\n",
		l.Len(), l.Skipped, l.Clipped, l.Backoffs, l.Rollbacks)
	for i, inc := range l.Incidents {
		if i == 10 {
			fmt.Printf("  ... %d more\n", l.Len()-10)
			break
		}
		fmt.Println(" ", inc)
	}

	gReplay, _, _ := run(train, test, rate, guard.Enforce)
	fmt.Printf("\nledger fingerprint %016x, replayed %016x, identical: %v\n",
		l.Fingerprint(), gReplay.Ledger().Fingerprint(),
		l.Fingerprint() == gReplay.Ledger().Fingerprint())

	fmt.Println("\nself-healing pipeline under the same numerical fault rate:")
	ledger, err := pipeline.Run(pipeline.Spec{
		Seed: 7, Epochs: 15, Hidden: []int{24},
		SelfHeal: true, NumericalFaultRate: rate,
	})
	if err != nil {
		fmt.Println("ERROR:", err)
		return
	}
	fmt.Println(ledger)
}
