// Declarative pipelines: specify several training/compression pipelines
// like query plans and compare their full tradeoff ledgers — accuracy,
// training cost, deployed size, inference latency, and carbon footprint —
// the "declarative interfaces" opportunity from Part 1 of the tutorial.
package main

import (
	"fmt"

	"dlsys/internal/device"
	"dlsys/internal/green"
	"dlsys/internal/pipeline"
)

func main() {
	specs := map[string]pipeline.Spec{
		"baseline":     {Seed: 1},
		"pruned-70":    {Seed: 1, PruneSparsity: 0.7},
		"distilled-8":  {Seed: 1, DistillWidth: 8},
		"quantized-4b": {Seed: 1, QuantizeBits: 4},
		"edge-int8":    {Seed: 1, DistillWidth: 8, QuantizeBits: 8, IntInference: true, Device: device.EdgeDevice},
		"green-hydro":  {Seed: 1, Region: green.Hydro},
		"kitchen-sink": {Seed: 1, PruneSparsity: 0.5, DistillWidth: 12, QuantizeBits: 8},
	}
	order := []string{"baseline", "pruned-70", "distilled-8", "quantized-4b", "edge-int8", "green-hydro", "kitchen-sink"}
	for _, name := range order {
		ledger, err := pipeline.Run(specs[name])
		if err != nil {
			fmt.Printf("%-13s ERROR: %v\n", name, err)
			continue
		}
		fmt.Printf("%-13s %s\n", name, ledger)
	}
}
