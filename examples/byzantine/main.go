// Byzantine: robust aggregation against adversarial workers. Eight workers
// train the same model with worker 7 Byzantine — its uploads are finite
// (sign-flipped, rescaled, biased, or coordinated with label shuffles), so
// they sail past numerical guards. Plain mean aggregation is wrecked by
// every attack; coordinate median, trimmed mean, and Krum shrug them off. A
// reputation tracker (EMA of each worker's distance to the aggregate)
// quarantines exactly the true offender and records a replayable ledger; a
// final section runs the same scenario twice to show the quarantine
// fingerprint is deterministic.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/robust"
)

const adversary = 7

// run trains 8 workers with the given attack and aggregation rule,
// returning the clean held-out loss and accuracy plus the training stats
// (which carry the quarantine ledger when a reputation tracker is set).
func run(train, test *data.Dataset, kind fault.Kind, agg robust.Aggregator, rep *robust.ReputationConfig) (float64, float64, distributed.Stats) {
	cfg := distributed.Config{
		Workers: 8, Arch: nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3},
		Epochs: 8, BatchSize: 16, LR: 0.1, AveragePeriod: 1,
		Aggregator: agg, Reputation: rep,
	}
	if kind != 0 {
		cfg.Fault = fault.Byzantine(192, kind, adversary)
		cfg.Fault.ScaleAttackFactor = 1e4
		cfg.Fault.DriftAttackBias = 6
	}
	net, stats, err := distributed.Train(191, train.X, nn.OneHot(train.Labels, 3), cfg)
	if err != nil {
		fmt.Println("ERROR:", err)
		return 0, 0, stats
	}
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(0), rand.New(rand.NewSource(1)))
	loss := tr.ComputeGrad(test.X, nn.OneHot(test.Labels, 3))
	return loss, net.Accuracy(test.X, test.Labels), stats
}

func main() {
	rng := rand.New(rand.NewSource(190))
	ds := data.GaussianMixture(rng, 480, 6, 3, 3.2)
	train, test := ds.Split(rng, 0.8)

	attacks := []struct {
		name string
		kind fault.Kind
	}{
		{"none", 0},
		{"sign-flip", fault.KindSignFlip},
		{"scale-attack", fault.KindScaleAttack},
		{"drift-attack", fault.KindDriftAttack},
		{"collude", fault.KindCollude},
	}

	fmt.Println("aggregator x attack: clean held-out loss (accuracy)")
	for _, agg := range []robust.Aggregator{robust.Mean{}, robust.CoordMedian{}, robust.TrimmedMean{Trim: 1}, robust.Krum{F: 1}} {
		fmt.Printf("  %-12s", agg.Name())
		for _, atk := range attacks {
			loss, acc, _ := run(train, test, atk.kind, agg, nil)
			fmt.Printf("  %s %.3g (%.2f)", atk.name, loss, acc)
		}
		fmt.Println()
	}

	fmt.Println("\nreputation-based quarantine under coordinate median:")
	for _, atk := range attacks {
		_, _, stats := run(train, test, atk.kind, robust.CoordMedian{}, &robust.ReputationConfig{})
		fmt.Printf("  %-12s  quarantines %d  readmissions %d  offenders [%s]\n",
			atk.name, stats.Quarantines, stats.Readmissions, stats.Quarantine.OffenderString())
	}

	fmt.Println("\nreplay: same seed, same attack, twice:")
	_, _, s1 := run(train, test, fault.KindSignFlip, robust.CoordMedian{}, &robust.ReputationConfig{})
	_, _, s2 := run(train, test, fault.KindSignFlip, robust.CoordMedian{}, &robust.ReputationConfig{})
	fmt.Printf("  ledger fingerprint %016x, replayed %016x, identical: %v\n",
		s1.Quarantine.Fingerprint(), s2.Quarantine.Fingerprint(),
		s1.Quarantine.Fingerprint() == s2.Quarantine.Fingerprint())
}
