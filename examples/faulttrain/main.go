// Faulttrain: distributed training under a deterministic fault schedule.
// The same data and model are trained fault-free and then under rising
// fault rates (worker crashes, stragglers, dropped and bit-corrupted
// messages); the retrying transport, drop-slowest-k straggler mitigation,
// and checkpoint-based crash recovery keep accuracy near the clean run
// while the stats show what the faults cost. A final section injects
// failures into the compression pipeline, which ships a fallback model
// instead of dying.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/pipeline"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	ds := data.GaussianMixture(rng, 800, 6, 3, 3.2)
	train, test := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, 3)
	arch := nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3}

	fmt.Println("distributed training, 4 workers, rising fault rate:")
	fmt.Println("rate   acc    mbytes retrans crashes restores straggler-rounds sim-s")
	for _, rate := range []float64{0, 0.05, 0.1, 0.2} {
		net, stats, err := distributed.Train(11, train.X, y, distributed.Config{
			Workers: 4, Arch: arch, Epochs: 15, BatchSize: 16, LR: 0.1,
			AveragePeriod: 1, Fault: fault.Rate(12, rate),
			SnapshotPeriod: 3, DropSlowestK: 1,
		})
		if err != nil {
			fmt.Printf("%.2f   ERROR: %v\n", rate, err)
			continue
		}
		fmt.Printf("%.2f   %.3f  %.2f   %-7d %-7d %-8d %-16d %.4f\n",
			rate, net.Accuracy(test.X, test.Labels), float64(stats.BytesSent)/1e6,
			stats.Retransmissions, stats.Crashes, stats.Restores,
			stats.StragglerRounds, stats.SimSeconds)
	}

	fmt.Println("\nsame fault schedule is reproducible: run it twice, compare")
	cfg := distributed.Config{
		Workers: 4, Arch: arch, Epochs: 8, BatchSize: 16, LR: 0.1,
		AveragePeriod: 1, Fault: fault.Rate(12, 0.2), SnapshotPeriod: 3,
	}
	netA, statsA, _ := distributed.Train(11, train.X, y, cfg)
	netB, statsB, _ := distributed.Train(11, train.X, y, cfg)
	identical := statsA.BytesSent == statsB.BytesSent &&
		statsA.Retransmissions == statsB.Retransmissions &&
		statsA.Crashes == statsB.Crashes &&
		statsA.Restores == statsB.Restores &&
		statsA.SimSeconds == statsB.SimSeconds
	a, b := netA.ParamVector(), netB.ParamVector()
	for i := range a {
		if a[i] != b[i] {
			identical = false
			break
		}
	}
	fmt.Printf("stats and parameters identical across runs: %v\n", identical)

	fmt.Println("\npipeline with failing compression stages (rate 0.5):")
	ledger, err := pipeline.Run(pipeline.Spec{
		Seed: 13, FaultSeed: 18, PruneSparsity: 0.5, DistillWidth: 8, QuantizeBits: 8,
		FaultRate: 0.5,
	})
	if err != nil {
		fmt.Println("ERROR:", err)
		return
	}
	fmt.Println(ledger)
}
