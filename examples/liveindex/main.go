// Liveindex: drift-hardened online learned-index maintenance under live
// traffic. A workload actor drives interleaved lookups, range scans, and
// insert batches at a learned-index engine on one simulation kernel; at
// mid-day the key distribution drifts to a fresh cluster and a scheduled
// corrupted-insert burst slips poisoned keys into the delta buffer. The
// maintenance actor watches per-window error and live bloom FPR, retrains
// online, validates every candidate on a held-out sample before the atomic
// swap, and rolls back to the last CRC'd snapshot when validation fails —
// quarantining exactly the keys outside the schema fence while queries
// keep being answered down the fallback ladder (learned RMI → delta →
// B-tree → quarantine scan). The demo prints the maintenance ledger, the
// served-tier mix, the live learned-vs-B-tree crossover, and the replay
// fingerprints of two identical runs.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/fault"
	"dlsys/internal/learned"
	"dlsys/internal/livedb"
	"dlsys/internal/obs"
	"dlsys/internal/sim"
)

type outcome struct {
	stats livedb.Stats
	wl    livedb.WorkloadStats

	ledger                    *livedb.Ledger
	kernelFP, ledgerFP, regFP uint64
	learnedS, btreeS          float64
	lookups                   int
	lmem, bmem                int64
	serving                   bool
}

func run() (*outcome, error) {
	initial := learned.ClusteredKeys(rand.New(rand.NewSource(42)), 3000, 4, 1<<44)

	k := sim.New()
	h := obs.NewHandle()
	eng, err := livedb.NewEngine(initial, livedb.Config{Seed: 42, Kernel: k, Obs: h})
	if err != nil {
		return nil, err
	}
	const ops, rate = 2400, 400.0
	day := float64(ops) / rate
	wl, err := livedb.NewWorkload(eng, initial, livedb.WorkloadConfig{
		Seed:         43,
		Ops:          ops,
		Rate:         rate,
		ClusterWidth: 1 << 38,
		Space:        initial[len(initial)-1],
		Phases: []livedb.Phase{
			{StartS: 0},
			// Mid-day drift: inserts and hard-negative lookups move to a
			// cluster the initial index never saw.
			{StartS: 0.5 * day, Clusters: []uint64{9 << 40}, HardNegFrac: 0.5},
		},
		Faults: fault.Config{Seed: 44, Schedule: []fault.Window{
			// A corrupted-insert burst: high bits flipped, far outside the
			// schema fence the guard validates candidates against.
			{Kind: fault.KindCorrupt, StartS: 0.3 * day, EndS: 0.5 * day, Prob: 0.2},
		}},
	})
	if err != nil {
		return nil, err
	}
	eng.Start()
	wl.Start()
	k.Run()

	// A post-run probe sweep over the final index populates the live
	// crossover sample even when the last swap landed at the day's end.
	if eng.State() == livedb.StateServing {
		for i := 0; i < len(initial); i += 37 {
			eng.Lookup(initial[i])
		}
	}

	o := &outcome{
		stats:    eng.Stats(),
		wl:       wl.Stats(),
		ledger:   eng.Ledger(),
		kernelFP: k.Fingerprint(),
		ledgerFP: eng.Ledger().Fingerprint(),
		regFP:    h.Reg.Fingerprint(),
		serving:  eng.State() == livedb.StateServing,
	}
	o.learnedS, o.btreeS, o.lookups = eng.LearnedWin()
	o.lmem, o.bmem = eng.LearnedMemoryBytes(), eng.BTreeMemoryBytes()
	return o, nil
}

func main() {
	a, err := run()
	if err != nil {
		panic(err)
	}
	b, err := run()
	if err != nil {
		panic(err)
	}

	st := a.stats
	fmt.Println("== a day of live index traffic ==")
	fmt.Printf("queries=%d (lookups=%d range=%d) inserts=%d dup=%d corrupted_sent=%d mismatches=%d\n",
		st.Queries(), st.Lookups, st.RangeScans, st.Stored, st.Duplicates,
		a.wl.CorruptedSent, a.wl.Mismatches)
	fmt.Printf("tier mix: learned=%d delta=%d btree=%d scan=%d (total=%d of %d queries)\n",
		st.TierServed[livedb.TierLearned], st.TierServed[livedb.TierDelta],
		st.TierServed[livedb.TierBTree], st.TierServed[livedb.TierScan],
		st.ServedTotal(), st.Queries())

	fmt.Println("\n== maintenance ledger ==")
	for _, e := range a.ledger.Entries {
		fmt.Println(e)
	}
	fmt.Printf("retrains=%d swaps=%d rollbacks=%d quarantined=%d window_violations=%d\n",
		st.Retrains, st.Swaps, st.Rollbacks, st.Quarantined, st.WindowViolations)

	if a.serving && a.lookups > 0 {
		fmt.Println("\n== learned-vs-btree crossover, live on the post-swap index ==")
		fmt.Printf("learned path: %.3gs over %d lookups; modeled B-tree: %.3gs (win=%v)\n",
			a.learnedS, a.lookups, a.btreeS, a.learnedS < a.btreeS)
		fmt.Printf("memory: learned=%dB btree=%dB (ratio=%.1fx)\n",
			a.lmem, a.bmem, float64(a.bmem)/float64(a.lmem))
	}

	fmt.Println("\n== replay ==")
	fmt.Printf("run A: kernel=%016x ledger=%016x registry=%016x\n", a.kernelFP, a.ledgerFP, a.regFP)
	fmt.Printf("run B: kernel=%016x ledger=%016x registry=%016x\n", b.kernelFP, b.ledgerFP, b.regFP)
	fmt.Printf("bit-identical: %v\n",
		a.kernelFP == b.kernelFP && a.ledgerFP == b.ledgerFP && a.regFP == b.regFP)
}
