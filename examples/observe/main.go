// Observe: the deterministic observability layer end to end. One guarded
// training run and one serving run share a single obs.Handle; the demo
// prints the counters reconciled against each subsystem's own ledger, a few
// spans stamped from the simulated clocks, the registry and trace
// fingerprints for two same-seed replays (bit-identical), and finally a
// JSONL export — the byte-deterministic dump a dashboard or offline
// analysis would consume.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/guard"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/serve"
	"dlsys/internal/tensor"
)

// scenario runs a guarded training pass and a faulty serving pass against
// the handle, returning the guard ledger and serve result for
// reconciliation. Everything is seeded, so any two calls observe the
// identical sequence of updates.
func scenario(h *obs.Handle) (*guard.Trainer, serve.Result) {
	rng := rand.New(rand.NewSource(40))
	ds := data.GaussianMixture(rng, 480, 6, 3, 2.5)
	train, _ := ds.Split(rng, 0.8)

	net := nn.NewMLP(rand.New(rand.NewSource(41)), nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rand.New(rand.NewSource(42)))
	g := guard.New(tr, guard.Policy{Mode: guard.Enforce, Schema: guard.NewBatchSchema(train.X, 6), Obs: h})
	inj := fault.NewInjector(fault.NumericalRate(43, 0.15))
	g.Fit(train.X, nn.OneHot(train.Labels, 3), guard.FitConfig{
		Epochs: 8, BatchSize: 16,
		Inject: func(step int, bx, by *tensor.Tensor) {
			if inj.CorruptsBatch(0, step) {
				inj.CorruptBatchValues(bx.Data, 0, step)
			}
		},
		LRSpike: func(step int) float64 { return inj.LRSpikeFactor(0, step) },
	})

	variants, eval, err := serve.BuildVariants(serve.VariantsConfig{Seed: 44, Examples: 400, Epochs: 6})
	if err != nil {
		panic(err)
	}
	mk := func(v serve.Variant) serve.Replica {
		return serve.Replica{Variant: v, Device: device.EdgeDevice, Efficiency: 0.5}
	}
	fleet := []serve.Replica{mk(variants[0]), mk(variants[0]), mk(variants[1]), mk(variants[2]), mk(variants[3])}
	srv, err := serve.NewServer(serve.Config{
		Seed: 45, Faults: fault.Rate(45, 0.15), Replicas: fleet,
		ArrivalRate: 1.2 * 2 / fleet[0].ServiceS(), Requests: 400,
		HedgeQuantile: 0.9, Fallback: true,
		EvalX: eval.X, EvalLabels: eval.Labels,
		Obs: h,
	})
	if err != nil {
		panic(err)
	}
	return g, srv.Run()
}

func main() {
	fmt.Println("=== One handle, two subsystems ===")
	h := obs.NewHandle()
	g, res := scenario(h)

	fmt.Println("\ncounters vs the subsystems' own ledgers (must match exactly):")
	l := g.Ledger()
	for _, row := range [][2]int64{
		{h.Counter("guard.incidents").Value(), int64(l.Len())},
		{h.Counter("guard.skipped").Value(), int64(l.Skipped)},
		{h.Counter("guard.rollbacks").Value(), int64(l.Rollbacks)},
		{h.Counter("serve.served").Value(), int64(res.Served)},
		{h.Counter("serve.shed").Value(), int64(res.Shed)},
		{h.Counter("serve.hedges_launched").Value(), int64(res.HedgesLaunched)},
	} {
		fmt.Printf("  obs %5d  ledger %5d  match=%v\n", row[0], row[1], row[0] == row[1])
	}

	fmt.Println("\nfirst spans (timestamps are simulated seconds, not wall time):")
	for i, sp := range h.Tracer.Spans() {
		if i == 4 {
			fmt.Printf("  ... %d more\n", h.Tracer.Len()-4)
			break
		}
		fmt.Printf("  [%7.4f, %7.4f] %s\n", sp.StartS, sp.EndS, sp.Name)
	}

	fmt.Println("\n=== Replay determinism ===")
	h2 := obs.NewHandle()
	scenario(h2)
	fmt.Printf("  metrics fingerprint: %016x vs %016x  identical=%v\n",
		h.Reg.Fingerprint(), h2.Reg.Fingerprint(), h.Reg.Fingerprint() == h2.Reg.Fingerprint())
	fmt.Printf("  trace fingerprint:   %016x vs %016x  identical=%v\n",
		h.Tracer.Fingerprint(), h2.Tracer.Fingerprint(), h.Tracer.Fingerprint() == h2.Tracer.Fingerprint())

	fmt.Println("\n=== JSONL export (first lines) ===")
	var b strings.Builder
	if err := h.Flush(obs.JSONLSink{W: &b}); err != nil {
		panic(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	for i, line := range lines {
		if i == 6 {
			fmt.Printf("  ... %d more lines\n", len(lines)-6)
			break
		}
		fmt.Println(" ", line)
	}
	if len(os.Args) > 1 && os.Args[1] == "-dump" {
		_ = h.Flush(obs.JSONLSink{W: os.Stdout})
	}
}
