// Interpretability tour: the Part 3.2 toolbox end to end on one trained
// model — dimensionality reduction of its representation, a LIME local
// explanation, a global tree surrogate, gradient saliency on synthetic
// images with known discriminative pixels, and declarative hypothesis
// queries over its neurons.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/inspect"
	"dlsys/internal/interpret"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	ds := data.GaussianMixture(rng, 600, 10, 4, 3)
	net := nn.NewMLP(rng, nn.MLPConfig{In: 10, Hidden: []int{32}, Out: 4})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(ds.X, nn.OneHot(ds.Labels, 4), nn.TrainConfig{Epochs: 30, BatchSize: 32})
	fmt.Printf("model accuracy: %.3f\n\n", net.Accuracy(ds.X, ds.Labels))

	// 1. Dimensionality reduction of the 10-D inputs.
	sub := ds.Subset(firstN(200))
	fmt.Println("== dimensionality reduction (same-class fraction among 8 nearest neighbours) ==")
	for _, m := range []struct {
		name string
		emb  *tensor.Tensor
	}{
		{"pca", interpret.PCA(sub.X, 2)},
		{"isomap", interpret.Isomap(sub.X, 10, 2)},
		{"t-sne", interpret.TSNE(sub.X, interpret.TSNEConfig{Perplexity: 15, Iters: 250, LR: 50, Seed: 8})},
	} {
		fmt.Printf("  %-7s purity=%.3f\n", m.name, interpret.SameClassNeighborFraction(m.emb, sub.Labels, 8))
	}

	// 2. LIME around a boundary point.
	probs := nn.Softmax(net.Forward(ds.X, false))
	row, conf := 0, 2.0
	for i := 0; i < probs.Dim(0); i++ {
		if c := probs.Row(i)[probs.ArgMaxRow(i)]; c < conf {
			conf, row = c, i
		}
	}
	class := net.Predict(ds.X)[row]
	exp := interpret.LIME(rng, net, ds.X.Row(row), class, interpret.LIMEConfig{Samples: 600, KernelWidth: 1, Sigma: 0.3})
	fmt.Printf("\n== LIME explanation of example %d (class %d, confidence %.2f) ==\n", row, class, conf)
	fmt.Printf("  fidelity=%.3f weights=%v\n", exp.Fidelity, round3(exp.Weights))

	// 3. Global surrogate tree.
	tree := interpret.TreeSurrogate(net, ds.X, 4, 5)
	fmt.Printf("\n== global tree surrogate ==\n  agreement with network: %.3f (depth %d)\n",
		interpret.AgreementTree(net, tree, ds.X), tree.Depth())

	// 4. Saliency on images with a known ground-truth region.
	imgRng := rand.New(rand.NewSource(9))
	imgs, masks := data.SyntheticDigits(imgRng, data.DigitsConfig{N: 200})
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	cnn := nn.NewNetwork(
		nn.NewConv2D(imgRng, "c1", g, 4), nn.NewReLU("r1"),
		nn.NewFlatten("f"), nn.NewDense(imgRng, "out", 4*64, 4))
	nn.NewTrainer(cnn, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.005), imgRng).
		Fit(imgs.X, nn.OneHot(imgs.Labels, 4), nn.TrainConfig{Epochs: 40, BatchSize: 16})
	x0 := tensor.FromSlice(append([]float64(nil), imgs.X.Data[:64]...), 1, 1, 8, 8)
	sal := interpret.Saliency(cnn, x0, imgs.Labels[0])
	fmt.Printf("\n== gradient saliency (class %d glyph) ==\n  mass on true glyph: %.2f (glyph covers %.2f of the image)\n",
		imgs.Labels[0], interpret.SaliencyMass(sal, masks[imgs.Labels[0]]), maskFrac(masks[imgs.Labels[0]]))

	// 5. Declarative neuron hypotheses (DeepBase-style).
	acts := inspect.Record(net, ds.X)
	hits, _ := acts.CorrelatesWith("relu0", inspect.LabelSignal(ds.Labels, 0), 0.6)
	dead, _ := acts.DeadUnits("relu0", 1e-9)
	pairs, _ := acts.RedundantPairs("relu0", 0.95)
	fmt.Printf("\n== declarative neuron queries on relu0 ==\n")
	fmt.Printf("  units with |corr(class 0)| >= 0.6: %d\n", len(hits))
	fmt.Printf("  dead units: %d, redundant pairs (|corr| >= 0.95): %d\n", len(dead), len(pairs))
}

func firstN(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func round3(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*1000)) / 1000
	}
	return out
}

func maskFrac(mask []bool) float64 {
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(mask))
}
