// Elastic: topology-aware distributed training that survives link faults
// and worker churn. The same run is repeated over the four collective
// topologies (all-to-all mesh, ring all-reduce, binary-tree
// reduce-broadcast, hierarchical two-level) to show how simulated
// time-per-round scales with worker count and how exactly the planner's
// analytic cost model predicts it. A ring is then run under per-link
// faults plus a scheduled churn of leavers and joiners: the transport
// heals around dead links by detouring, joiners catch up from CRC-valid
// snapshots, and the whole run replays bit-identically.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/planner"
)

func main() {
	arch := nn.MLPConfig{In: 32, Hidden: []int{192, 96}, Out: 4}
	payload := int64(nn.NewMLP(rand.New(rand.NewSource(1)), arch).NumParams()) * 4

	fmt.Println("simulated seconds per averaging round by topology and scale")
	fmt.Println("(dense ~25k-param gradient on cluster nodes; planner = analytic model)")
	fmt.Println("topology     n    measured     planner      vs mesh")
	for _, n := range []int{8, 64} {
		rng := rand.New(rand.NewSource(300 + int64(n)))
		ds := data.GaussianMixture(rng, 8*n, 32, 4, 3.0)
		y := nn.OneHot(ds.Labels, 4)
		var mesh float64
		for _, topo := range distributed.Topologies() {
			_, stats, err := distributed.Train(301, ds.X, y, distributed.Config{
				Workers: n, Arch: arch, Epochs: 1, BatchSize: 8, LR: 0.05,
				AveragePeriod: 1, Topology: topo, Device: device.ClusterNode,
			})
			if err != nil {
				fmt.Println("ERROR:", err)
				return
			}
			round := stats.CommSeconds / float64(stats.CommRounds)
			pred := planner.CollectiveTime(string(topo), n, payload, device.ClusterNode, 0)
			if topo == distributed.TopoAllToAll {
				mesh = round
			}
			fmt.Printf("%-11s  %-3d  %-10.6f  %-10.6f  %.2fx\n",
				topo, n, round, pred, mesh/round)
		}
	}
	best, s := planner.BestCollective(256, payload, device.ClusterNode, 0)
	fmt.Printf("\nplanner's pick for n=256 at this payload: %s (%.6f s/round)\n", best, s)

	fmt.Println("\nring all-reduce, 16 workers, link faults + scheduled churn:")
	rng := rand.New(rand.NewSource(310))
	ds := data.GaussianMixture(rng, 256, 8, 3, 3.2)
	y := nn.OneHot(ds.Labels, 3)
	cfg := distributed.Config{
		Workers: 16, Arch: nn.MLPConfig{In: 8, Hidden: []int{16}, Out: 3},
		Epochs: 8, BatchSize: 8, LR: 0.1, AveragePeriod: 1,
		Topology: distributed.TopoRing, Device: device.ClusterNode,
		Fault: fault.LinkRate(311, 0.3), SnapshotPeriod: 2,
		Churn: []distributed.ChurnEvent{
			{Round: 3, Worker: 4},             // leave
			{Round: 3, Worker: 9},             // leave
			{Round: 7, Worker: 4, Join: true}, // rejoin from snapshot
			{Round: 9, Worker: 9, Join: true},
		},
	}
	netA, sA, err := distributed.Train(312, ds.X, y, cfg)
	if err != nil {
		fmt.Println("ERROR:", err)
		return
	}
	fmt.Printf("accuracy=%.3f heals=%d degraded=%d excluded=%d\n",
		netA.Accuracy(ds.X, ds.Labels), sA.TopoHeals, sA.TopoDegraded, sA.LinkExcluded)
	fmt.Printf("leaves=%d joins=%d snapshot catch-ups=%d membership epochs=%d\n",
		sA.Leaves, sA.Joins, sA.CatchUps, sA.MembershipEpochs)
	fmt.Printf("dropped=%d slow-hops=%d partitioned rounds=%d comm=%.4f sim-s\n",
		sA.LinkDropped, sA.LinkSlowHops, sA.PartitionedRounds, sA.CommSeconds)

	netB, sB, _ := distributed.Train(312, ds.X, y, cfg)
	identical := sA.BytesSent == sB.BytesSent && sA.CommSeconds == sB.CommSeconds &&
		sA.TopoHeals == sB.TopoHeals && sA.LinkDropped == sB.LinkDropped &&
		sA.CatchUps == sB.CatchUps && sA.MembershipEpochs == sB.MembershipEpochs
	a, b := netA.ParamVector(), netB.ParamVector()
	for i := range a {
		if a[i] != b[i] {
			identical = false
			break
		}
	}
	fmt.Printf("replay bit-identical (stats + every parameter): %v\n", identical)
}
