// Chaosday: a "day in production" on one simulation kernel. A guarded,
// Byzantine-robust distributed training job and a multi-tier serving fleet
// share a single discrete-event clock while a declarative fault schedule
// walks the day through a crash-looping worker, a straggler window, a
// flash crowd, a Byzantine coalition, and a numerical-fault burst. The
// demo prints the day's timeline, what the chaos did to each subsystem,
// and the replay fingerprints of two identical runs — metrics, traces,
// request ledger, quarantine ledger, and the kernel's own event log all
// match bit for bit.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/guard"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/robust"
	"dlsys/internal/serve"
	"dlsys/internal/sim"
)

type day struct {
	stats distributed.Stats
	res   serve.Result

	events                                   int
	regFP, traceFP, serveFP, repFP, kernelFP uint64
}

func main() {
	rng := rand.New(rand.NewSource(300))
	ds := data.GaussianMixture(rng, 480, 6, 3, 3.2)
	train, _ := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, 3)
	arch := nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3}

	base := distributed.Config{
		Workers: 8, Arch: arch, Epochs: 10, BatchSize: 16, LR: 0.1,
		AveragePeriod: 1, SnapshotPeriod: 3,
		Aggregator: robust.CoordMedian{},
		Guard:      &guard.Policy{Mode: guard.Enforce},
	}

	// A fault-free probe fixes the day length the schedule is laid out on.
	_, probe, err := distributed.Train(301, train.X, y, base)
	check(err)
	dayS := probe.SimSeconds
	fmt.Printf("scheduled day: %.4g simulated seconds (fault-free probe)\n\n", dayS)

	variants, eval, err := serve.BuildVariants(serve.VariantsConfig{Seed: 310, Examples: 480, Epochs: 10})
	check(err)
	mk := func(v serve.Variant) serve.Replica {
		return serve.Replica{Variant: v, Device: device.EdgeDevice, Efficiency: 0.5}
	}
	fleet := []serve.Replica{mk(variants[0]), mk(variants[0]), mk(variants[1]), mk(variants[2]), mk(variants[3])}
	requests := 600

	run := func(h *obs.Handle) day {
		k := sim.New()

		cfg := base
		cfg.Kernel = k
		cfg.Obs = h
		cfg.Reputation = &robust.ReputationConfig{}
		cfg.Fault = fault.Config{Seed: 302, Schedule: []fault.Window{
			{Kind: fault.KindCrash, Workers: []int{3}, StartS: 0.05 * dayS, EndS: 0.20 * dayS, Prob: 0.6},
			{Kind: fault.KindStraggle, StartS: 0.20 * dayS, EndS: 0.45 * dayS, Prob: 0.4, Factor: 4},
			{Kind: fault.KindSignFlip, Workers: []int{5, 6}, StartS: 0.50 * dayS},
			{Kind: fault.KindBatchCorrupt, StartS: 0.70 * dayS, EndS: 0.95 * dayS, Prob: 0.5},
		}}
		job, err := distributed.NewJob(301, train.X, y, cfg)
		check(err)

		srv, err := serve.NewServer(serve.Config{
			Seed:     312,
			Kernel:   k,
			Obs:      h,
			Replicas: fleet,
			Faults: fault.Config{Seed: 311, Schedule: []fault.Window{
				{Kind: fault.KindCrash, Workers: []int{1}, StartS: 0.15 * dayS, EndS: 0.25 * dayS, Prob: 0.05},
				{Kind: fault.KindArrival, StartS: 0.30 * dayS, EndS: 0.40 * dayS, Factor: 6},
				{Kind: fault.KindStraggle, StartS: 0.55 * dayS, EndS: 0.70 * dayS, Prob: 0.3, Factor: 6},
			}},
			ArrivalRate:   float64(requests) / dayS,
			Requests:      requests,
			HedgeQuantile: 0.9,
			Fallback:      true,
			EvalX:         eval.X,
			EvalLabels:    eval.Labels,
		})
		check(err)

		// Both subsystems schedule their first event, then one kernel loop
		// interleaves the entire day deterministically.
		job.Start()
		srv.Start()
		events := k.Run()

		_, stats, err := job.Result()
		check(err)
		res := srv.Result()
		d := day{stats: stats, res: res, events: events,
			regFP: h.Reg.Fingerprint(), traceFP: h.Tracer.Fingerprint(),
			serveFP: res.Fingerprint(), kernelFP: k.Fingerprint()}
		if stats.Quarantine != nil {
			d.repFP = stats.Quarantine.Fingerprint()
		}
		return d
	}

	d := run(obs.NewHandle())
	fmt.Printf("the day, as simulated (%d kernel events):\n", d.events)
	fmt.Printf("  training: steps=%d sim=%.4gs crashes=%d rejoins=%d straggler_rounds=%d\n",
		d.stats.Steps, d.stats.SimSeconds, d.stats.Crashes, d.stats.Rejoins, d.stats.StragglerRounds)
	fmt.Printf("            byzantine_attacks=%d numerical_faults=%d guard_skipped=%d\n",
		d.stats.ByzantineAttacks, d.stats.NumericalFaults, d.stats.GuardSkipped)
	fmt.Printf("            quarantines=%d offenders=[%s] readmissions=%d\n",
		d.stats.Quarantines, d.stats.Quarantine.OffenderString(), d.stats.Readmissions)
	degraded := d.res.Served - d.res.TierCounts[serve.TierFull]
	fmt.Printf("  serving:  served=%d/%d (availability %.3f) shed=%d failed=%d\n",
		d.res.Served, requests, d.res.Availability, d.res.Shed, d.res.Failed)
	fmt.Printf("            flash crowd absorbed by degrading %d requests to cheaper tiers; hedges=%d\n",
		degraded, d.res.HedgesLaunched)
	fmt.Printf("            tier mix: full=%d quantized=%d distilled=%d pruned=%d, mix accuracy %.3f\n\n",
		d.res.TierCounts[0], d.res.TierCounts[1], d.res.TierCounts[2], d.res.TierCounts[3], d.res.MixAccuracy)

	d2 := run(obs.NewHandle())
	fmt.Println("replaying the identical day:")
	fmt.Printf("  metrics    %016x == %016x: %v\n", d.regFP, d2.regFP, d.regFP == d2.regFP)
	fmt.Printf("  traces     %016x == %016x: %v\n", d.traceFP, d2.traceFP, d.traceFP == d2.traceFP)
	fmt.Printf("  requests   %016x == %016x: %v\n", d.serveFP, d2.serveFP, d.serveFP == d2.serveFP)
	fmt.Printf("  quarantine %016x == %016x: %v\n", d.repFP, d2.repFP, d.repFP == d2.repFP)
	fmt.Printf("  kernel log %016x == %016x: %v\n", d.kernelFP, d2.kernelFP, d.kernelFP == d2.kernelFP)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
