// Quickstart: train a classifier on synthetic data, then walk the Part 1
// tradeoff space — quantize it, prune it, and distill it — printing the
// accuracy/size/compute ledger for each variant.
package main

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/distill"
	"dlsys/internal/nn"
	"dlsys/internal/prune"
	"dlsys/internal/quant"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	ds := data.GaussianMixture(rng, 2000, 8, 4, 3)
	train, test := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, 4)

	// 1. Train the reference model.
	cfg := nn.MLPConfig{In: 8, Hidden: []int{64, 64}, Out: 4}
	net := nn.NewMLP(rng, cfg)
	trainer := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	stats := trainer.Fit(train.X, y, nn.TrainConfig{Epochs: 40, BatchSize: 32})
	fmt.Printf("reference: acc=%.3f params=%d train-GFLOPs=%.2f\n",
		net.Accuracy(test.X, test.Labels), net.NumParams(), float64(stats.FLOPs)/1e9)

	// 2. Quantize to 8 and 4 bits.
	for _, bits := range []int{8, 4} {
		state, bytes, err := quant.QuantizeNetwork(net, bits)
		if err != nil {
			fmt.Println("quantize failed:", err)
			continue
		}
		q := nn.NewMLP(rand.New(rand.NewSource(1)), cfg)
		q.LoadStateDict(state)
		fmt.Printf("%d-bit quantized: acc=%.3f size=%dB (float32: %dB)\n",
			bits, q.Accuracy(test.X, test.Labels), bytes, net.ParamBytes(32))
	}

	// 3. Integer-only inference path.
	im := quant.CompileIntMLP(net)
	fmt.Printf("int8 inference: acc=%.3f size=%dB\n", im.Accuracy(test.X, test.Labels), im.Bytes())

	// 4. Prune to 80% sparsity and fine-tune briefly.
	if err := prune.GlobalPrune(rng, net, 0.8, prune.Magnitude); err != nil {
		fmt.Println("prune failed:", err)
		return
	}
	trainer.Fit(train.X, y, nn.TrainConfig{Epochs: 5, BatchSize: 32})
	fmt.Printf("80%%-pruned + finetune: acc=%.3f sparsity=%.2f sparse-size=%dB\n",
		net.Accuracy(test.X, test.Labels), prune.Sparsity(net), prune.NonzeroParamBytes(net))

	// 5. Distill into a student an eighth of the size.
	student := nn.NewMLP(rng, nn.MLPConfig{In: 8, Hidden: []int{16}, Out: 4})
	distill.Distill(rng, net, student, train.X, y, distill.Config{
		Alpha: 0.3, T: 3, Epochs: 40, BatchSize: 32, LR: 0.01,
	})
	fmt.Printf("distilled student: acc=%.3f params=%d agreement-with-teacher=%.3f\n",
		student.Accuracy(test.X, test.Labels), student.NumParams(),
		distill.Agreement(net, student, test.X))
}
