// Command dlsys runs the reproduction experiments and prints their tables.
//
// Usage:
//
//	dlsys list                 # list all experiments with their claims
//	dlsys techniques           # print the tradeoff framework
//	dlsys run E13 [-full]      # run one experiment (E1..E32, A1..A9, X1..X9)
//	dlsys run all [-full]      # run every experiment in order
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"dlsys"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "techniques":
		techniques()
	case "run":
		run(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlsys list | dlsys techniques | dlsys run <E1..E32|A1..A9|X1..X9|all> [-full]")
}

func list() {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tSECTION\tTITLE")
	for _, e := range dlsys.Experiments() {
		fmt.Fprintf(w, "%s\t§%s\t%s\n", e.ID, e.Section, e.Title)
	}
	w.Flush()
}

func techniques() {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TECHNIQUE\tPACKAGE\tSECTION\tIMPROVES\tCOSTS")
	for _, t := range dlsys.Techniques() {
		fmt.Fprintf(w, "%s\t%s\t§%s\t%v\t%v\n", t.Name, t.Package, t.Section, t.Improves, t.Costs)
	}
	w.Flush()
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	full := fs.Bool("full", false, "run at full (documented) problem sizes")
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	id := args[0]
	fs.Parse(args[1:])

	ids := []string{id}
	if id == "all" {
		ids = ids[:0]
		for _, e := range dlsys.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, x := range ids {
		tab, err := dlsys.RunExperiment(x, *full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
	}
}
