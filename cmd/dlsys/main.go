// Command dlsys runs the reproduction experiments and prints their tables.
//
// Usage:
//
//	dlsys list                       # list all experiments with their claims
//	dlsys techniques                 # print the tradeoff framework
//	dlsys run E13 [-full]            # run one experiment (E1..E32, A1..A9, X1..X12, X14)
//	dlsys run all [-full]            # run every experiment in order
//	dlsys bench [x10|x11|x12|x13|x14] [-full] [-o f]
//	                                 # time the X10 chaos day, the X11 live-index
//	                                 # cell, the X12 elastic-topology cell, the
//	                                 # X13 tensor-kernel hierarchy, or the X14
//	                                 # serving-fleet overload day, and emit a
//	                                 # JSON perf sample
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"dlsys"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "techniques":
		techniques()
	case "run":
		run(os.Args[2:])
	case "bench":
		bench(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlsys list | dlsys techniques | dlsys run <E1..E32|A1..A9|X1..X14|all> [-full] | dlsys bench [x10|x11|x12|x13|x14] [-full] [-o file] [-pr n] [-date d]")
}

func list() {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tSECTION\tTITLE")
	for _, e := range dlsys.Experiments() {
		fmt.Fprintf(w, "%s\t§%s\t%s\n", e.ID, e.Section, e.Title)
	}
	w.Flush()
}

func techniques() {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TECHNIQUE\tPACKAGE\tSECTION\tIMPROVES\tCOSTS")
	for _, t := range dlsys.Techniques() {
		fmt.Fprintf(w, "%s\t%s\t§%s\t%v\t%v\n", t.Name, t.Package, t.Section, t.Improves, t.Costs)
	}
	w.Flush()
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	full := fs.Bool("full", false, "run at full (documented) problem sizes")
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	id := args[0]
	fs.Parse(args[1:])

	ids := []string{id}
	if id == "all" {
		ids = ids[:0]
		for _, e := range dlsys.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, x := range ids {
		tab, err := dlsys.RunExperiment(x, *full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
	}
}

// bench times one composed simulation — the X10 production day (default),
// the hardest X11 live-index cell, the hardest X12 elastic-topology cell,
// the X13 tensor-kernel hierarchy, or the X14 serving-fleet overload day —
// and emits a JSON perf sample, the per-PR trajectory point CI records
// (BENCH_X10.json … BENCH_X14.json).
func bench(args []string) {
	target := "x10"
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		target = args[0]
		args = args[1:]
	}
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	full := fs.Bool("full", false, "run at full (documented) problem sizes")
	out := fs.String("o", "", "write the JSON sample to this file instead of stdout")
	pr := fs.Int("pr", 0, "PR number to stamp into the sample (0 = omit)")
	date := fs.String("date", "", "date to stamp into the sample (empty = omit)")
	fs.Parse(args)

	type stamp struct {
		PR   int    `json:"pr,omitempty"`
		Date string `json:"date,omitempty"`
	}
	var rec any
	switch target {
	case "x10":
		perf, err := dlsys.BenchmarkChaosDay(*full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rec = struct {
			stamp
			dlsys.ChaosDayPerf
		}{stamp{*pr, *date}, perf}
	case "x11":
		perf, err := dlsys.BenchmarkLiveIndex(*full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rec = struct {
			stamp
			dlsys.LiveIndexPerf
		}{stamp{*pr, *date}, perf}
	case "x12":
		perf, err := dlsys.BenchmarkTopology(*full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rec = struct {
			stamp
			dlsys.TopologyPerf
		}{stamp{*pr, *date}, perf}
	case "x13":
		perf, err := dlsys.BenchmarkKernels(*full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rec = struct {
			stamp
			dlsys.KernelPerf
		}{stamp{*pr, *date}, perf}
	case "x14":
		perf, err := dlsys.BenchmarkFleet(*full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rec = struct {
			stamp
			dlsys.FleetPerf
		}{stamp{*pr, *date}, perf}
	default:
		fmt.Fprintf(os.Stderr, "unknown bench target %q (have x10, x11, x12, x13, x14)\n", target)
		os.Exit(2)
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
