package learned

import "sort"

// DynamicRMI extends the static RMI with insert support — the "extending
// and managing learned access methods" open question Part 2 raises. New
// keys go to a sorted delta buffer probed alongside the model; when the
// buffer outgrows a fraction of the indexed set, it is merged and the
// models are retrained (the standard delta+rebuild design).
type DynamicRMI struct {
	keys  []uint64 // sorted, model-indexed
	rmi   *RMI
	delta []uint64 // sorted buffer of pending inserts
	// RebuildFraction triggers a merge when len(delta) exceeds this
	// fraction of len(keys). Default 0.1.
	RebuildFraction float64
	leaves          int
	rebuilds        int
}

// NewDynamicRMI builds a dynamic index over the initial sorted keys. A typed
// *ArgError rejects an empty key set or a non-positive leaf count, mirroring
// BuildRMI's validation.
func NewDynamicRMI(keys []uint64, leaves int) (*DynamicRMI, error) {
	owned := append([]uint64(nil), keys...)
	rmi, err := BuildRMI(owned, leaves)
	if err != nil {
		argErr := err.(*ArgError)
		return nil, &ArgError{Fn: "NewDynamicRMI", Reason: argErr.Reason}
	}
	return &DynamicRMI{
		keys:            owned,
		rmi:             rmi,
		RebuildFraction: 0.1,
		leaves:          leaves,
	}, nil
}

// Len returns the number of indexed keys (including buffered inserts).
func (d *DynamicRMI) Len() int { return len(d.keys) + len(d.delta) }

// Rebuilds returns how many merge+retrain cycles have occurred.
func (d *DynamicRMI) Rebuilds() int { return d.rebuilds }

// Insert adds a key. Duplicate inserts are ignored.
func (d *DynamicRMI) Insert(key uint64) {
	if d.Contains(key) {
		return
	}
	i := sort.Search(len(d.delta), func(i int) bool { return d.delta[i] >= key })
	d.delta = append(d.delta, 0)
	copy(d.delta[i+1:], d.delta[i:])
	d.delta[i] = key
	// >= makes the threshold itself trigger: with 100 keys at fraction 0.1
	// the 11th buffered insert (10+1) rebuilds, not the 12th. The +1 floor
	// keeps tiny key sets from rebuilding on every single insert.
	if float64(len(d.delta)) >= d.RebuildFraction*float64(len(d.keys))+1 {
		d.rebuild()
	}
}

// rebuild merges the delta buffer into the key array and refits the models.
func (d *DynamicRMI) rebuild() {
	merged := make([]uint64, 0, len(d.keys)+len(d.delta))
	i, j := 0, 0
	for i < len(d.keys) && j < len(d.delta) {
		if d.keys[i] <= d.delta[j] {
			merged = append(merged, d.keys[i])
			i++
		} else {
			merged = append(merged, d.delta[j])
			j++
		}
	}
	merged = append(merged, d.keys[i:]...)
	merged = append(merged, d.delta[j:]...)
	d.keys = merged
	d.delta = d.delta[:0]
	rmi, err := BuildRMI(d.keys, d.leaves)
	if err != nil {
		// Unreachable: the constructor validated keys and leaves, and a merge
		// only ever grows the key set.
		panic("learned: DynamicRMI.rebuild: " + err.Error())
	}
	d.rmi = rmi
	d.rebuilds++
}

// Contains reports whether the key is present (model-indexed or buffered).
func (d *DynamicRMI) Contains(key uint64) bool {
	if _, ok := d.rmi.Lookup(d.keys, key); ok {
		return true
	}
	i := sort.Search(len(d.delta), func(i int) bool { return d.delta[i] >= key })
	return i < len(d.delta) && d.delta[i] == key
}

// Rank returns the number of indexed keys strictly less than key — the
// position query a learned index serves. It combines the model-indexed
// array with the delta buffer.
func (d *DynamicRMI) Rank(key uint64) int {
	// Binary search over the main array, seeded by the model's window.
	main := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= key })
	buf := sort.Search(len(d.delta), func(i int) bool { return d.delta[i] >= key })
	return main + buf
}

// MemoryBytes accounts the models plus the delta buffer (the key array
// itself is the data, not the index, matching RMI accounting).
func (d *DynamicRMI) MemoryBytes() int64 {
	return d.rmi.MemoryBytes() + int64(len(d.delta))*8
}
