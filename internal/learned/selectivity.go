package learned

import (
	"math"
	"math/rand"

	"dlsys/internal/db"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// SelectivityEstimator is a neural multi-attribute selectivity estimator
// (Hasan et al. style): an MLP regressor from query-range features to
// selectivity, trained on (query, true-count) pairs sampled against the
// actual table — so it learns the joint distribution that independence-
// assuming histograms cannot capture.
type SelectivityEstimator struct {
	net  *nn.Network
	cols []string
}

// SelectivityConfig controls training.
type SelectivityConfig struct {
	Hidden    []int
	Queries   int // training queries sampled
	Epochs    int
	LR        float64
	BatchSize int
}

// queryFeatures encodes a conjunctive range query as [lo, hi] per column
// (full range for unconstrained columns). Columns are assumed in [0, 1].
func queryFeatures(cols []string, preds []db.Pred) []float64 {
	f := make([]float64, 2*len(cols))
	for i := range cols {
		f[2*i] = 0
		f[2*i+1] = 1
	}
	for _, p := range preds {
		for i, c := range cols {
			if c == p.Col {
				f[2*i] = p.Lo
				f[2*i+1] = p.Hi
			}
		}
	}
	return f
}

// RandomRangeQuery samples a conjunctive range query over the given columns
// with uniformly random bounds (the training/test workload for E15).
func RandomRangeQuery(rng *rand.Rand, cols []string) []db.Pred {
	var preds []db.Pred
	for _, c := range cols {
		// Each column constrained with probability 2/3.
		if rng.Float64() < 1.0/3 {
			continue
		}
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		preds = append(preds, db.Pred{Col: c, Lo: a, Hi: b})
	}
	if len(preds) == 0 {
		c := cols[rng.Intn(len(cols))]
		preds = append(preds, db.Pred{Col: c, Lo: 0.25, Hi: 0.75})
	}
	return preds
}

// TrainSelectivityEstimator samples training queries, labels them by exact
// scan, and fits the regressor on log-selectivity (squashing the dynamic
// range, the standard trick).
func TrainSelectivityEstimator(rng *rand.Rand, t *db.Table, cfg SelectivityConfig) *SelectivityEstimator {
	cols := t.Columns()
	x := tensor.New(cfg.Queries, 2*len(cols))
	y := tensor.New(cfg.Queries, 1)
	for q := 0; q < cfg.Queries; q++ {
		preds := RandomRangeQuery(rng, cols)
		copy(x.Row(q), queryFeatures(cols, preds))
		y.Data[q] = logSel(t.Selectivity(preds))
	}
	net := nn.NewMLP(rng, nn.MLPConfig{In: 2 * len(cols), Hidden: cfg.Hidden, Out: 1})
	tr := nn.NewTrainer(net, nn.NewMSE(), nn.NewAdam(cfg.LR), rng)
	tr.Fit(x, y, nn.TrainConfig{Epochs: cfg.Epochs, BatchSize: cfg.BatchSize})
	return &SelectivityEstimator{net: net, cols: cols}
}

const selFloor = 1e-5

func logSel(s float64) float64 { return math.Log(math.Max(s, selFloor)) }

// Estimate returns the predicted selectivity of the conjunction in [0, 1].
func (e *SelectivityEstimator) Estimate(preds []db.Pred) float64 {
	x := tensor.FromSlice(queryFeatures(e.cols, preds), 1, 2*len(e.cols))
	out := e.net.Forward(x, false)
	s := math.Exp(out.Data[0])
	if s > 1 {
		return 1
	}
	if s < 0 {
		return 0
	}
	return s
}

// MemoryBytes reports the model footprint at float32.
func (e *SelectivityEstimator) MemoryBytes() int64 { return e.net.ParamBytes(32) }

// QErrorStats evaluates an estimator function over sampled test queries and
// returns the median and 95th-percentile q-error.
func QErrorStats(rng *rand.Rand, t *db.Table, estimate func([]db.Pred) float64, queries int) (median, p95 float64) {
	qs := make([]float64, 0, queries)
	for i := 0; i < queries; i++ {
		preds := RandomRangeQuery(rng, t.Columns())
		truth := t.Selectivity(preds)
		qs = append(qs, db.QError(math.Max(estimate(preds), selFloor), math.Max(truth, selFloor)))
	}
	sortFloats(qs)
	return qs[len(qs)/2], qs[int(float64(len(qs))*0.95)]
}
