package learned

// ArgError is the typed error learned-component constructors return for
// invalid arguments — empty key sets, non-positive leaf counts, malformed
// coefficient vectors. It mirrors db.ArgError so callers across the
// learned/classical boundary handle both the same way.
type ArgError struct {
	Fn     string // the constructor or method that rejected its input
	Reason string
}

func (e *ArgError) Error() string {
	return "learned: " + e.Fn + ": " + e.Reason
}
