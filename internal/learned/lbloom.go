package learned

import (
	"math"
	"math/rand"
	"sort"

	"dlsys/internal/db"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// LearnedBloom is a learned Bloom filter (Kraska et al.): a small neural
// membership classifier in front of a backup Bloom filter that catches the
// classifier's false negatives, so the structure keeps the Bloom guarantee
// of zero false negatives. When the key set has learnable structure the
// classifier absorbs most positives and the backup filter can be small.
type LearnedBloom struct {
	model     *nn.Network
	threshold float64
	backup    *db.Bloom
	keyScale  float64 // normalisation for key features
}

// LearnedBloomConfig controls construction.
type LearnedBloomConfig struct {
	Hidden    int // classifier hidden width
	Epochs    int
	LR        float64
	TargetFPR float64 // classifier threshold is set for this FPR on the training negatives
	BackupFPR float64 // backup filter's own target
}

// keyFeatures maps a key to classifier features: the normalised key plus
// two smooth periodic transforms that help the tiny net carve out dense key
// regions.
func keyFeatures(k uint64, scale float64) []float64 {
	x := float64(k) / scale
	return []float64{
		x,
		math.Sin(2 * math.Pi * x * 8),
		math.Cos(2 * math.Pi * x * 32),
	}
}

const numKeyFeatures = 3

// BuildLearnedBloom trains the classifier on the key set against the given
// sample of negatives and assembles the backup filter from the classifier's
// false negatives. A typed error from the backup filter rejects a
// BackupFPR outside (0,1).
func BuildLearnedBloom(rng *rand.Rand, keys, negatives []uint64, cfg LearnedBloomConfig) (*LearnedBloom, error) {
	maxKey := keys[len(keys)-1]
	for _, k := range negatives {
		if k > maxKey {
			maxKey = k
		}
	}
	scale := float64(maxKey) + 1

	n := len(keys) + len(negatives)
	x := tensor.New(n, numKeyFeatures)
	labels := make([]int, n)
	for i, k := range keys {
		copy(x.Row(i), keyFeatures(k, scale))
		labels[i] = 1
	}
	for i, k := range negatives {
		copy(x.Row(len(keys)+i), keyFeatures(k, scale))
	}
	model := nn.NewMLP(rng, nn.MLPConfig{In: numKeyFeatures, Hidden: []int{cfg.Hidden}, Out: 2})
	tr := nn.NewTrainer(model, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR), rng)
	tr.Fit(x, nn.OneHot(labels, 2), nn.TrainConfig{Epochs: cfg.Epochs, BatchSize: 64})

	lb := &LearnedBloom{model: model, keyScale: scale}
	// Threshold: the (1-TargetFPR) quantile of negative scores.
	negScores := lb.scores(negatives)
	sortFloats(negScores)
	qIdx := int(float64(len(negScores)) * (1 - cfg.TargetFPR))
	if qIdx >= len(negScores) {
		qIdx = len(negScores) - 1
	}
	lb.threshold = negScores[qIdx]

	// Backup filter over the classifier's false negatives.
	var fns []uint64
	for _, k := range keys {
		if lb.score(k) < lb.threshold {
			fns = append(fns, k)
		}
	}
	backup, err := db.NewBloom(maxInt(len(fns), 1), cfg.BackupFPR)
	if err != nil {
		return nil, err
	}
	lb.backup = backup
	for _, k := range fns {
		lb.backup.Add(k)
	}
	return lb, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortFloats(a []float64) { sort.Float64s(a) }

// score returns the classifier's positive-class probability for a key.
func (lb *LearnedBloom) score(k uint64) float64 {
	x := tensor.FromSlice(keyFeatures(k, lb.keyScale), 1, numKeyFeatures)
	probs := nn.Softmax(lb.model.Forward(x, false))
	return probs.At(0, 1)
}

func (lb *LearnedBloom) scores(keys []uint64) []float64 {
	x := tensor.New(len(keys), numKeyFeatures)
	for i, k := range keys {
		copy(x.Row(i), keyFeatures(k, lb.keyScale))
	}
	probs := nn.Softmax(lb.model.Forward(x, false))
	out := make([]float64, len(keys))
	for i := range out {
		out[i] = probs.At(i, 1)
	}
	return out
}

// MayContain preserves the Bloom contract: never false for a present key.
func (lb *LearnedBloom) MayContain(k uint64) bool {
	if lb.score(k) >= lb.threshold {
		return true
	}
	return lb.backup.MayContain(k)
}

// MeasuredFPR probes with known-absent keys.
func (lb *LearnedBloom) MeasuredFPR(absent []uint64) float64 {
	if len(absent) == 0 {
		return 0
	}
	fp := 0
	for _, k := range absent {
		if lb.MayContain(k) {
			fp++
		}
	}
	return float64(fp) / float64(len(absent))
}

// MemoryBytes counts the classifier at float32 plus the backup filter.
func (lb *LearnedBloom) MemoryBytes() int64 {
	return lb.model.ParamBytes(32) + lb.backup.MemoryBytes() + 8
}

// ClusteredKeys generates a structured key set — keys dense inside a few
// intervals of the key space — the regime where learned filters beat
// classical ones. Returns sorted unique keys.
func ClusteredKeys(rng *rand.Rand, n, clusters int, space uint64) []uint64 {
	seen := map[uint64]bool{}
	keys := make([]uint64, 0, n)
	width := space / uint64(clusters) / 8 // dense spans cover 1/8 of the space
	for len(keys) < n {
		c := uint64(rng.Intn(clusters))
		base := c * (space / uint64(clusters))
		k := base + uint64(rng.Int63n(int64(width)))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sortKeys(keys)
	return keys
}

func sortKeys(a []uint64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
