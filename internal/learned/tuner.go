package learned

import (
	"math"
	"math/rand"
)

// KnobEnv is a synthetic database-tuning environment: `Units` units of
// buffer memory are allocated among three components (buffer pool, sort
// area, hash area). Throughput is a concave function with an interaction
// term whose optimum is off-centre — naive even splits are suboptimal, and
// the tuner must discover the optimum from reward signals alone, the
// setting the tutorial's RL-knob-tuning citations address.
type KnobEnv struct {
	Units int
	// Noise adds zero-mean measurement noise to observed rewards.
	Noise float64
	rng   *rand.Rand
	// evaluations counts how many configurations were measured.
	evaluations int
}

// NewKnobEnv creates an environment with the given total units.
func NewKnobEnv(rng *rand.Rand, units int, noise float64) *KnobEnv {
	return &KnobEnv{Units: units, Noise: noise, rng: rng}
}

// TrueThroughput is the noiseless objective (for evaluation only).
func (e *KnobEnv) TrueThroughput(alloc [3]int) float64 {
	b, s, h := float64(alloc[0]), float64(alloc[1]), float64(alloc[2])
	u := float64(e.Units)
	b, s, h = b/u, s/u, h/u
	// Concave returns with diminishing benefit, plus a sort-hash
	// interaction (pipelined hash joins need sort space too).
	return 100 * (0.55*math.Sqrt(b) + 0.25*math.Sqrt(s) + 0.20*math.Sqrt(h) + 0.15*math.Sqrt(s*h))
}

// Measure returns a noisy throughput observation and counts the evaluation.
func (e *KnobEnv) Measure(alloc [3]int) float64 {
	e.evaluations++
	return e.TrueThroughput(alloc) + e.Noise*e.rng.NormFloat64()
}

// Evaluations returns how many configurations have been measured so far.
func (e *KnobEnv) Evaluations() int { return e.evaluations }

// GridSearch measures every allocation of Units among 3 components at the
// given step and returns the best found — the exhaustive baseline.
func GridSearch(e *KnobEnv, step int) (best [3]int, bestVal float64) {
	bestVal = -1
	for b := 0; b <= e.Units; b += step {
		for s := 0; s+b <= e.Units; s += step {
			h := e.Units - b - s
			v := e.Measure([3]int{b, s, h})
			if v > bestVal {
				bestVal = v
				best = [3]int{b, s, h}
			}
		}
	}
	return best, bestVal
}

// QTuner is a tabular Q-learning agent over the allocation simplex. States
// are allocations; actions move one unit between components.
type QTuner struct {
	Alpha, Gamma, Epsilon float64
	q                     map[[3]int][6]float64
}

// NewQTuner creates a tuner with standard hyperparameters.
func NewQTuner() *QTuner {
	return &QTuner{Alpha: 0.3, Gamma: 0.9, Epsilon: 0.2, q: map[[3]int][6]float64{}}
}

// actions: (from, to) pairs among 3 components.
var tunerActions = [6][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}

func applyAction(alloc [3]int, a int) ([3]int, bool) {
	from, to := tunerActions[a][0], tunerActions[a][1]
	if alloc[from] == 0 {
		return alloc, false
	}
	alloc[from]--
	alloc[to]++
	return alloc, true
}

// Run performs episodes of Q-learning against the environment and returns
// the best allocation observed. Each step measures the environment once.
func (t *QTuner) Run(rng *rand.Rand, e *KnobEnv, episodes, stepsPerEpisode int) (best [3]int, bestVal float64) {
	bestVal = -1
	for ep := 0; ep < episodes; ep++ {
		// Random start on the simplex.
		b := rng.Intn(e.Units + 1)
		s := rng.Intn(e.Units - b + 1)
		state := [3]int{b, s, e.Units - b - s}
		for step := 0; step < stepsPerEpisode; step++ {
			var a int
			if rng.Float64() < t.Epsilon {
				a = rng.Intn(6)
			} else {
				a = t.bestAction(state)
			}
			next, ok := applyAction(state, a)
			if !ok {
				continue
			}
			r := e.Measure(next)
			if r > bestVal {
				bestVal = r
				best = next
			}
			qs := t.q[state]
			nextBest := t.q[next][t.bestAction(next)]
			qs[a] += t.Alpha * (r + t.Gamma*nextBest - qs[a])
			t.q[state] = qs
			state = next
		}
	}
	return best, bestVal
}

func (t *QTuner) bestAction(state [3]int) int {
	qs := t.q[state]
	best := 0
	for a := 1; a < 6; a++ {
		if qs[a] > qs[best] {
			best = a
		}
	}
	return best
}
