package learned

import (
	"math"
	"math/rand"

	"dlsys/internal/db"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// JoinCostModel is a learned cost model for join ordering: a regressor
// predicting the log-size of joining one more relation into a partial plan,
// trained on labelled examples from random join graphs. A greedy planner
// driven by its predictions stands in for learned query optimizers (the
// "generate plans directly" line of work in Part 2).
type JoinCostModel struct {
	net *nn.Network
}

// join step features: log current intermediate size, log candidate
// cardinality, summed log selectivity between candidate and the joined set.
const joinFeatures = 3

func joinStepFeatures(g *db.JoinGraph, joined []int, cand int, curSize float64) []float64 {
	var logSel float64
	for _, r := range joined {
		logSel += math.Log(g.Sel[r][cand])
	}
	return []float64{math.Log(curSize), math.Log(g.Card[cand]), logSel}
}

// RandomJoinGraph samples a join problem: n relations with log-uniform
// cardinalities; a random spanning tree of join predicates plus extra
// random edges, with selectivities ~ 1/card of one endpoint.
func RandomJoinGraph(rng *rand.Rand, n int) *db.JoinGraph {
	card := make([]float64, n)
	for i := range card {
		card[i] = math.Floor(math.Pow(10, 1+4*rng.Float64()))
	}
	g := db.NewJoinGraph(card)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g.SetSel(i, j, 1/card[j])
	}
	// A few extra edges.
	for e := 0; e < n/2; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			g.SetSel(i, j, math.Pow(10, -1-2*rng.Float64()))
		}
	}
	return g
}

// TrainJoinCostModel fits the regressor on random graphs: for random
// partial plans it labels each candidate extension with the true log result
// size.
func TrainJoinCostModel(rng *rand.Rand, graphs, maxRelations, epochs int) *JoinCostModel {
	var xs [][]float64
	var ys []float64
	for gi := 0; gi < graphs; gi++ {
		n := 3 + rng.Intn(maxRelations-2)
		g := RandomJoinGraph(rng, n)
		// Random partial plans of every length.
		perm := rng.Perm(n)
		for k := 1; k < n; k++ {
			joined := perm[:k]
			curSize := g.ResultSize(joined)
			cand := perm[k]
			next := g.ResultSize(perm[:k+1])
			xs = append(xs, joinStepFeatures(g, joined, cand, curSize))
			ys = append(ys, math.Log(next))
		}
	}
	x := tensor.New(len(xs), joinFeatures)
	y := tensor.New(len(ys), 1)
	for i := range xs {
		copy(x.Row(i), xs[i])
		y.Data[i] = ys[i]
	}
	net := nn.NewMLP(rng, nn.MLPConfig{In: joinFeatures, Hidden: []int{16, 16}, Out: 1})
	tr := nn.NewTrainer(net, nn.NewMSE(), nn.NewAdam(0.005), rng)
	tr.Fit(x, y, nn.TrainConfig{Epochs: epochs, BatchSize: 64})
	return &JoinCostModel{net: net}
}

// PredictLogSize returns the model's predicted log result size of extending
// the joined set with cand.
func (m *JoinCostModel) PredictLogSize(g *db.JoinGraph, joined []int, cand int, curSize float64) float64 {
	x := tensor.FromSlice(joinStepFeatures(g, joined, cand, curSize), 1, joinFeatures)
	return m.net.Forward(x, false).Data[0]
}

// PlanGreedy orders the join greedily by the model's predicted sizes and
// returns the order with its TRUE cost (what the database would pay).
func (m *JoinCostModel) PlanGreedy(g *db.JoinGraph) (order []int, trueCost float64) {
	n := g.N()
	used := make([]bool, n)
	// Start from the smallest predicted... base table: smallest cardinality.
	start := 0
	for i := 1; i < n; i++ {
		if g.Card[i] < g.Card[start] {
			start = i
		}
	}
	order = []int{start}
	used[start] = true
	for len(order) < n {
		curSize := g.ResultSize(order)
		bestJ, bestPred := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			p := m.PredictLogSize(g, order, j, curSize)
			if p < bestPred {
				bestPred, bestJ = p, j
			}
		}
		order = append(order, bestJ)
		used[bestJ] = true
	}
	return order, g.PlanCost(order)
}
