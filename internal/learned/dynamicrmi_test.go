package learned

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dlsys/internal/data"
)

func TestDynamicRMIInsertAndContains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := must(data.GenerateKeys(rng, data.Uniform, 5000))
	d := must(NewDynamicRMI(keys, 64))
	// All original keys present.
	for i := 0; i < len(keys); i += 37 {
		if !d.Contains(keys[i]) {
			t.Fatalf("original key %d missing", keys[i])
		}
	}
	// Insert fresh keys; all must be immediately visible.
	fresh := data.NegativeKeys(rng, keys, 2000)
	for _, k := range fresh {
		d.Insert(k)
		if !d.Contains(k) {
			t.Fatalf("inserted key %d not found", k)
		}
	}
	// Older inserts survive rebuilds.
	for _, k := range fresh {
		if !d.Contains(k) {
			t.Fatalf("key %d lost after rebuilds", k)
		}
	}
	if d.Rebuilds() == 0 {
		t.Fatal("2000 inserts into 5000 keys should have triggered rebuilds")
	}
	if d.Len() != len(keys)+countDistinct(fresh) {
		t.Fatalf("len %d, want %d", d.Len(), len(keys)+countDistinct(fresh))
	}
}

func countDistinct(keys []uint64) int {
	m := map[uint64]bool{}
	for _, k := range keys {
		m[k] = true
	}
	return len(m)
}

func TestDynamicRMIDuplicateInsertIgnored(t *testing.T) {
	d := must(NewDynamicRMI([]uint64{10, 20, 30}, 2))
	d.Insert(20)
	d.Insert(25)
	d.Insert(25)
	if d.Len() != 4 {
		t.Fatalf("len %d, want 4", d.Len())
	}
}

func TestDynamicRMIRankMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := must(data.GenerateKeys(rng, data.ZipfGaps, 3000))
	d := must(NewDynamicRMI(keys, 32))
	inserted := data.NegativeKeys(rng, keys, 500)
	all := append(append([]uint64(nil), keys...), inserted...)
	for _, k := range inserted {
		d.Insert(k)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for probe := 0; probe < 200; probe++ {
		k := all[rng.Intn(len(all))]
		want := sort.Search(len(all), func(i int) bool { return all[i] >= k })
		if got := d.Rank(k); got != want {
			t.Fatalf("rank(%d) = %d, want %d", k, got, want)
		}
	}
}

// Property: after any sequence of inserts, every inserted key is found and
// no uninserted key is.
func TestDynamicRMIOracleQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		base := []uint64{100, 200, 300, 400, 500}
		d := must(NewDynamicRMI(base, 2))
		oracle := map[uint64]bool{100: true, 200: true, 300: true, 400: true, 500: true}
		for _, r := range raw {
			k := uint64(r)
			d.Insert(k)
			oracle[k] = true
		}
		if d.Len() != len(oracle) {
			return false
		}
		for k := range oracle {
			if !d.Contains(k) {
				return false
			}
		}
		// Probe a few absent keys.
		for k := uint64(600); k < 610; k++ {
			if !oracle[k] && d.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicRMIMemoryStaysSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := must(data.GenerateKeys(rng, data.Uniform, 20000))
	d := must(NewDynamicRMI(keys, 128))
	for _, k := range data.NegativeKeys(rng, keys, 5000) {
		d.Insert(k)
	}
	// Index stays orders of magnitude below the data size.
	dataBytes := int64(d.Len()) * 8
	if d.MemoryBytes()*10 > dataBytes {
		t.Fatalf("index %dB not small relative to data %dB", d.MemoryBytes(), dataBytes)
	}
}
