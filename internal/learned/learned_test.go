package learned

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/db"
)

// must unwraps (value, error) pairs whose arguments are valid by
// construction; a failure is a test bug, so it panics.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestRMIFindsEveryKey(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dist := range []data.KeyDistribution{data.Uniform, data.ZipfGaps, data.Lognormal} {
		keys := must(data.GenerateKeys(rng, dist, 20000))
		idx := must(BuildRMI(keys, 128))
		for i, k := range keys {
			pos, ok := idx.Lookup(keys, k)
			if !ok || pos != i {
				t.Fatalf("%s: key %d (rank %d): got pos=%d ok=%v", dist, k, i, pos, ok)
			}
		}
	}
}

func TestRMIAbsentKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	keys := must(data.GenerateKeys(rng, data.Uniform, 10000))
	for _, k := range data.NegativeKeys(rng, keys, 2000) {
		if _, ok := must(BuildRMI(keys, 64)).Lookup(keys, k); ok {
			t.Fatalf("found absent key %d", k)
		}
	}
}

func TestRMISmallerThanBTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := must(data.GenerateKeys(rng, data.Uniform, 100000))
	idx := must(BuildRMI(keys, 256))
	bt := db.BulkLoadBTree(keys)
	if idx.MemoryBytes()*10 >= bt.MemoryBytes() {
		t.Fatalf("RMI %d B should be >=10x smaller than B-tree %d B", idx.MemoryBytes(), bt.MemoryBytes())
	}
}

func TestRMIMoreLeavesSmallerWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := must(data.GenerateKeys(rng, data.Lognormal, 50000))
	coarse := must(BuildRMI(keys, 16))
	fine := must(BuildRMI(keys, 1024))
	if fine.MaxSearchWindow() >= coarse.MaxSearchWindow() {
		t.Fatalf("finer RMI window %d should beat coarse %d",
			fine.MaxSearchWindow(), coarse.MaxSearchWindow())
	}
}

func TestLearnedBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := ClusteredKeys(rng, 3000, 4, 1<<30)
	negs := data.NegativeKeys(rng, keys, 3000)
	lb := must(BuildLearnedBloom(rng, keys, negs, LearnedBloomConfig{
		Hidden: 12, Epochs: 30, LR: 0.01, TargetFPR: 0.05, BackupFPR: 0.05,
	}))
	for _, k := range keys {
		if !lb.MayContain(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestLearnedBloomCompetitiveMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := ClusteredKeys(rng, 5000, 4, 1<<30)
	trainNegs := data.NegativeKeys(rng, keys, 5000)
	testNegs := data.NegativeKeys(rng, keys, 20000)

	lb := must(BuildLearnedBloom(rng, keys, trainNegs, LearnedBloomConfig{
		Hidden: 12, Epochs: 40, LR: 0.01, TargetFPR: 0.03, BackupFPR: 0.03,
	}))
	lfpr := lb.MeasuredFPR(testNegs)

	// Classic filter sized to the SAME measured FPR.
	target := math.Max(lfpr, 0.001)
	cb := must(db.NewBloom(len(keys), target))
	for _, k := range keys {
		cb.Add(k)
	}
	// The learned filter must deliver a usable FPR; on clustered keys its
	// classifier absorbs most of the key set so the backup stays small.
	if lfpr > 0.25 {
		t.Fatalf("learned filter FPR %g unusable", lfpr)
	}
	t.Logf("learned: %d B @ FPR %.4f; classic at same FPR: %d B",
		lb.MemoryBytes(), lfpr, cb.MemoryBytes())
}

func TestSelectivityEstimatorBeatsHistogramsOnCorrelatedData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := data.CorrelatedTuples(rng, 8000, 0.9)
	tab := db.NewTable("t", "a", "b", "c")
	for _, r := range rows {
		tab.Append(r[0], r[1], r[2])
	}
	est := TrainSelectivityEstimator(rng, tab, SelectivityConfig{
		Hidden: []int{32, 32}, Queries: 1500, Epochs: 60, LR: 0.005, BatchSize: 64,
	})
	hist := must(db.NewIndependentEstimator(tab, 32))

	qrng := rand.New(rand.NewSource(8))
	nnMed, nnP95 := QErrorStats(qrng, tab, est.Estimate, 300)
	qrng = rand.New(rand.NewSource(8))
	hMed, hP95 := QErrorStats(qrng, tab, func(p []db.Pred) float64 { return must(hist.Estimate(p)) }, 300)

	t.Logf("NN q-error: med %.2f p95 %.2f; histogram: med %.2f p95 %.2f", nnMed, nnP95, hMed, hP95)
	if nnMed >= hMed {
		t.Fatalf("learned median q-error %.3f should beat histograms %.3f", nnMed, hMed)
	}
	if nnP95 >= hP95 {
		t.Fatalf("learned p95 q-error %.3f should beat histograms %.3f", nnP95, hP95)
	}
}

func TestQTunerApproachesGridOptimumWithFewerEvals(t *testing.T) {
	units := 20
	// Grid search at step 1 finds the true optimum with many evaluations.
	gridEnv := NewKnobEnv(rand.New(rand.NewSource(9)), units, 0)
	gridBest, gridVal := GridSearch(gridEnv, 1)
	gridEvals := gridEnv.Evaluations()

	rlEnv := NewKnobEnv(rand.New(rand.NewSource(10)), units, 0.5)
	tuner := NewQTuner()
	_, rlVal := tuner.Run(rand.New(rand.NewSource(11)), rlEnv, 12, 8)
	rlEvals := rlEnv.Evaluations()

	if rlEvals >= gridEvals/2 {
		t.Fatalf("RL used %d evals, grid used %d: not cheaper", rlEvals, gridEvals)
	}
	// Within 5% of the optimum despite noisy measurements.
	if rlVal < gridVal*0.95 {
		t.Fatalf("RL best %.2f too far below grid optimum %.2f (best alloc %v)", rlVal, gridVal, gridBest)
	}
}

func TestKnobEnvConcaveOptimumOffCenter(t *testing.T) {
	e := NewKnobEnv(rand.New(rand.NewSource(12)), 30, 0)
	even := e.TrueThroughput([3]int{10, 10, 10})
	best, bestVal := GridSearch(e, 1)
	if bestVal <= even {
		t.Fatalf("optimum %v (%.2f) should beat the even split (%.2f)", best, bestVal, even)
	}
	if best[0] <= best[1] {
		t.Fatalf("buffer pool should dominate the optimum: %v", best)
	}
}

func TestJoinCostModelLearnsSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := TrainJoinCostModel(rng, 150, 7, 40)
	// On fresh graphs, predictions should correlate with the truth.
	var se, n float64
	for trial := 0; trial < 30; trial++ {
		g := RandomJoinGraph(rng, 5)
		perm := rng.Perm(5)
		joined := perm[:2]
		cand := perm[2]
		pred := m.PredictLogSize(g, joined, cand, g.ResultSize(joined))
		truth := math.Log(g.ResultSize(perm[:3]))
		se += (pred - truth) * (pred - truth)
		n++
	}
	rmse := math.Sqrt(se / n)
	// Log sizes span ~[0, 35]; RMSE must be far below the spread.
	if rmse > 3.5 {
		t.Fatalf("join cost model RMSE %.2f too high", rmse)
	}
}

func TestLearnedPlannerNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := TrainJoinCostModel(rng, 200, 7, 40)
	worseCount := 0
	trials := 25
	for trial := 0; trial < trials; trial++ {
		g := RandomJoinGraph(rng, 6)
		_, optCost := g.DPOptimal()
		_, learnedCost := m.PlanGreedy(g)
		if learnedCost > optCost*100 {
			worseCount++
		}
	}
	// The learned planner should land within 2 orders of magnitude of the
	// optimum on the large majority of graphs (plan costs span 10+ orders).
	if worseCount > trials/4 {
		t.Fatalf("learned planner catastrophically off on %d/%d graphs", worseCount, trials)
	}
}
