package learned

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dlsys/internal/fault"
)

// Corrupt an RMI's internal models deterministically (driven by the fault
// injector) and verify Lookup degrades to correct-but-slower full binary
// search rather than returning wrong positions or missing present keys.
func TestRMILookupSurvivesCorruptedLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	keys := make([]uint64, 5000)
	seen := map[uint64]bool{}
	for i := range keys {
		for {
			k := uint64(rng.Int63n(1 << 40))
			if !seen[k] {
				seen[k] = true
				keys[i] = k
				break
			}
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

	poisons := [...]float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	inj := fault.NewInjector(fault.Config{Seed: 77, CorruptProb: 0.4})
	for round := 0; round < 3; round++ {
		r := must(BuildRMI(keys, 64))
		// Deterministically corrupt ~40% of leaves: poison the slope, the
		// intercept, or invert the error window.
		corrupted := 0
		for l := range r.leaves {
			if !inj.Corrupts(l, round, 0) {
				continue
			}
			corrupted++
			switch l % 3 {
			case 0:
				r.leaves[l].model.A = poisons[round%len(poisons)]
			case 1:
				r.leaves[l].model.B = poisons[(round+1)%len(poisons)]
			case 2:
				r.leaves[l].errLo, r.leaves[l].errHi = 5, -5 // inverted window
			}
		}
		if corrupted == 0 {
			t.Fatal("injector corrupted no leaves at rate 0.4")
		}
		for i, k := range keys {
			pos, ok := r.Lookup(keys, k)
			if !ok || pos != i {
				t.Fatalf("round %d: key %d lookup = (%d,%v), want (%d,true)", round, k, pos, ok, i)
			}
		}
		// Absent keys must still report absent.
		for probe := 0; probe < 200; probe++ {
			k := uint64(rng.Int63n(1 << 40))
			if seen[k] {
				continue
			}
			if _, ok := r.Lookup(keys, k); ok {
				t.Fatalf("round %d: absent key %d reported present", round, k)
			}
		}
	}
}

func TestRMILookupSurvivesCorruptedRoot(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i * 17)
	}
	r := must(BuildRMI(keys, 16))
	r.root.A = math.NaN()
	for i, k := range keys {
		pos, ok := r.Lookup(keys, k)
		if !ok || pos != i {
			t.Fatalf("corrupted root: key %d lookup = (%d,%v), want (%d,true)", k, pos, ok, i)
		}
	}
	if _, ok := r.Lookup(keys, 3); ok { // 3 is not a multiple of 17
		t.Fatal("absent key reported present under corrupted root")
	}
}

func TestRMIFullSearchFallbackOnEmptyWindow(t *testing.T) {
	keys := []uint64{2, 4, 6, 8, 10}
	r := must(BuildRMI(keys, 2))
	// Drive a leaf's prediction far outside the array so the clamped window
	// is empty; the fallback must still find every key routed there.
	for l := range r.leaves {
		r.leaves[l].model = linearModel{A: 0, B: 1e9}
		r.leaves[l].errLo, r.leaves[l].errHi = 0, 0
	}
	for i, k := range keys {
		pos, ok := r.Lookup(keys, k)
		if !ok || pos != i {
			t.Fatalf("key %d lookup = (%d,%v), want (%d,true)", k, pos, ok, i)
		}
	}
}
