package learned

import (
	"math/rand"
	"testing"

	"dlsys/internal/data"
)

// Satellite 3 (filter half): quantify how a learned Bloom filter's measured
// FPR degrades when the negative-query distribution drifts from the one it
// was trained against. On the training distribution (uniform absent keys)
// the measured FPR must hold near the build-time target — strictly inside
// the 1.5x maintenance trigger — while hard negatives (one off a present
// key, whose features are nearly identical to a member's) must push it past
// 2x the target. Together the two bounds guarantee the livedb bloom-fpr
// trigger, which fires at 1.5x on cumulative live probes, trips before the
// served FPR can reach the 2x budget — the ordering the engine-level
// TestFPRTriggerFiresBeforeDoubleTarget asserts end to end.
func TestLearnedBloomFPRDegradesUnderHardNegativeDrift(t *testing.T) {
	// Clustered keys: the structure the classifier exploits (dense spans →
	// member) is exactly what hard negatives turn against it. On uniform
	// keys there is nothing to learn and the backup filter answers alone,
	// so no drift story exists.
	rng := rand.New(rand.NewSource(17))
	keys := ClusteredKeys(rng, 4000, 4, 1<<30)
	// The end-to-end budget is split between the stages (a false positive
	// escapes via the classifier OR the backup filter), matching how the
	// livedb engine builds its filters.
	const target = 0.05
	lb := must(BuildLearnedBloom(rng, keys, data.NegativeKeys(rng, keys, 2000), LearnedBloomConfig{
		Hidden: 8, Epochs: 12, LR: 0.01, TargetFPR: target / 2, BackupFPR: target / 2,
	}))

	// In-distribution negatives: fresh uniform absent keys, disjoint from
	// the training negatives.
	uniform := data.NegativeKeys(rand.New(rand.NewSource(18)), keys, 4000)
	baseFPR := lb.MeasuredFPR(uniform)
	if baseFPR >= 1.5*target {
		t.Fatalf("in-distribution FPR %.4f already past the 1.5x trigger (%.4f)", baseFPR, 1.5*target)
	}

	// Drifted negatives: present key ± 1. The classifier's features vary
	// smoothly in the key, so these score like members.
	hard := make([]uint64, 0, len(keys))
	for i, k := range keys {
		probe := k + 1
		if i%2 == 0 && k > 0 {
			probe = k - 1
		}
		if !sortedContains(keys, probe) {
			hard = append(hard, probe)
		}
	}
	hardFPR := lb.MeasuredFPR(hard)
	if hardFPR < 2*target {
		t.Fatalf("hard-negative FPR %.4f did not degrade past 2x target (%.4f)", hardFPR, 2*target)
	}
	if hardFPR <= baseFPR {
		t.Fatalf("drift did not raise FPR: hard %.4f <= base %.4f", hardFPR, baseFPR)
	}
}

func sortedContains(sorted []uint64, k uint64) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == k
}
