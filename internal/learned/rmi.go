// Package learned implements the deep-learning-for-data-systems components
// surveyed in Part 2 of the tutorial: a two-level recursive-model learned
// index (Kraska et al.), a learned Bloom filter with a backup filter, a
// neural multi-attribute selectivity estimator, a Q-learning database knob
// tuner, and a learned cost model driving join ordering. Each component is
// benchmarked against the exact classical baseline in internal/db.
package learned

import (
	"math"
	"sort"
)

// linearModel is y ≈ A·x + B fit by least squares.
type linearModel struct {
	A, B float64
}

func fitLinear(xs, ys []float64) linearModel {
	n := float64(len(xs))
	if n == 0 {
		return linearModel{}
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return linearModel{A: 0, B: sy / n}
	}
	a := (n*sxy - sx*sy) / den
	return linearModel{A: a, B: (sy - a*sx) / n}
}

func (m linearModel) predict(x float64) float64 { return m.A*x + m.B }

// finite reports whether both coefficients are usable numbers. A corrupted
// model (bit flip at rest, poisoned retrain) typically surfaces as NaN/Inf
// here, and int(NaN) is platform-defined in Go — so every prediction that
// feeds an array index must pass through this gate first.
func (m linearModel) finite() bool {
	return !math.IsNaN(m.A) && !math.IsInf(m.A, 0) && !math.IsNaN(m.B) && !math.IsInf(m.B, 0)
}

// RMI is a two-level recursive model index over a sorted key array: a root
// linear model routes each key to one of L second-level linear models, each
// predicting the key's array position with recorded error bounds. Lookups
// predict a position and binary-search only the error window.
type RMI struct {
	root   linearModel
	leaves []rmiLeaf
	n      int
}

type rmiLeaf struct {
	model        linearModel
	errLo, errHi int // worst under-/over-prediction within the leaf
}

// BuildRMI fits the index over sorted keys with the given number of
// second-level models. A typed *ArgError rejects an empty key set or a
// non-positive leaf count.
func BuildRMI(keys []uint64, numLeaves int) (*RMI, error) {
	if len(keys) == 0 {
		return nil, &ArgError{Fn: "BuildRMI", Reason: "empty key set"}
	}
	if numLeaves < 1 {
		return nil, &ArgError{Fn: "BuildRMI", Reason: "needs at least one leaf"}
	}
	n := len(keys)
	// Root model maps key → leaf index; fit on (key, leaf) pairs where the
	// ideal leaf is proportional to rank.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, k := range keys {
		xs[i] = float64(k)
		ys[i] = float64(i) * float64(numLeaves) / float64(n)
	}
	r := &RMI{root: fitLinear(xs, ys), n: n, leaves: make([]rmiLeaf, numLeaves)}

	// Partition keys by routed leaf, then fit each leaf on its members.
	members := make([][]int, numLeaves)
	for i, k := range keys {
		l := r.route(float64(k))
		members[l] = append(members[l], i)
	}
	for l := 0; l < numLeaves; l++ {
		idx := members[l]
		if len(idx) == 0 {
			// Empty leaf: inherit a flat model at the split point.
			r.leaves[l] = rmiLeaf{model: linearModel{B: float64(l) * float64(n) / float64(numLeaves)}}
			continue
		}
		lx := make([]float64, len(idx))
		ly := make([]float64, len(idx))
		for j, i := range idx {
			lx[j] = float64(keys[i])
			ly[j] = float64(i)
		}
		m := fitLinear(lx, ly)
		leaf := rmiLeaf{model: m}
		for j, i := range idx {
			pred := int(math.Round(m.predict(lx[j])))
			if d := i - pred; d < leaf.errLo {
				leaf.errLo = d
			} else if d > leaf.errHi {
				leaf.errHi = d
			}
		}
		r.leaves[l] = leaf
	}
	return r, nil
}

func (r *RMI) route(key float64) int {
	l := int(r.root.predict(key))
	if l < 0 {
		return 0
	}
	if l >= len(r.leaves) {
		return len(r.leaves) - 1
	}
	return l
}

// Lookup finds key's position in the sorted array it was built over. The
// array must be passed in (the index stores only models). Returns the
// position and whether the key is present.
//
// Lookup is hardened against a corrupted index: a non-finite root or leaf
// model, an inverted error window (errLo > errHi), or a prediction window
// that clamps to empty all degrade to a full binary search over the array.
// A damaged learned index therefore loses only its speedup, never its
// correctness.
func (r *RMI) Lookup(keys []uint64, key uint64) (int, bool) {
	pos, ok, _, _ := r.Probe(keys, key)
	return pos, ok
}

// Probe is Lookup instrumented for live index-health monitoring: it
// additionally reports the width of the window that was binary-searched and
// whether the index degraded to the corruption-fallback full search. An
// online maintenance layer uses the window stream to detect model drift
// (growing windows) and the degraded flag to detect outright corruption.
func (r *RMI) Probe(keys []uint64, key uint64) (pos int, ok bool, window int, degraded bool) {
	if !r.root.finite() {
		pos, ok = fullSearch(keys, key)
		return pos, ok, len(keys), true
	}
	leaf := r.leaves[r.route(float64(key))]
	if !leaf.model.finite() || leaf.errLo > leaf.errHi {
		pos, ok = fullSearch(keys, key)
		return pos, ok, len(keys), true
	}
	p := leaf.model.predict(float64(key))
	if math.IsNaN(p) || math.IsInf(p, 0) {
		pos, ok = fullSearch(keys, key)
		return pos, ok, len(keys), true
	}
	pred := int(math.Round(p))
	lo := pred + leaf.errLo
	hi := pred + leaf.errHi + 1
	if lo < 0 {
		lo = 0
	}
	if hi > len(keys) {
		hi = len(keys)
	}
	if lo >= hi {
		// The clamped window is empty: the model predicted far outside the
		// array, which a healthy leaf's recorded error bounds never do.
		pos, ok = fullSearch(keys, key)
		return pos, ok, len(keys), true
	}
	w := keys[lo:hi]
	i := sort.Search(len(w), func(i int) bool { return w[i] >= key })
	if i < len(w) && w[i] == key {
		return lo + i, true, hi - lo, false
	}
	return 0, false, hi - lo, false
}

// fullSearch is the corruption fallback: a plain binary search over the
// whole array, correct regardless of index state.
func fullSearch(keys []uint64, key uint64) (int, bool) {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= key })
	if i < len(keys) && keys[i] == key {
		return i, true
	}
	return 0, false
}

// MaxSearchWindow returns the largest error window any leaf requires — the
// bound on per-lookup binary-search work.
func (r *RMI) MaxSearchWindow() int {
	w := 0
	for _, l := range r.leaves {
		if s := l.errHi - l.errLo + 1; s > w {
			w = s
		}
	}
	return w
}

// MemoryBytes is the index's resident size: two float64 per model plus two
// ints of error bounds per leaf.
func (r *RMI) MemoryBytes() int64 {
	return 16 + int64(len(r.leaves))*(16+16)
}

// Coeffs flattens the index into a float64 vector so it can ride existing
// checkpoint machinery (CRC'd snapshots, rollback stores). Layout:
// [n, numLeaves, rootA, rootB, then per leaf A, B, errLo, errHi].
// RMIFromCoeffs inverts it.
func (r *RMI) Coeffs() []float64 {
	c := make([]float64, 0, 4+4*len(r.leaves))
	c = append(c, float64(r.n), float64(len(r.leaves)), r.root.A, r.root.B)
	for _, l := range r.leaves {
		c = append(c, l.model.A, l.model.B, float64(l.errLo), float64(l.errHi))
	}
	return c
}

// RMIFromCoeffs reconstructs an index from a Coeffs vector. A typed
// *ArgError rejects a malformed vector (wrong length, non-positive header
// fields, non-integral header) so a corrupted snapshot cannot be installed.
func RMIFromCoeffs(c []float64) (*RMI, error) {
	if len(c) < 4 {
		return nil, &ArgError{Fn: "RMIFromCoeffs", Reason: "vector shorter than header"}
	}
	n, leaves := c[0], c[1]
	if n != math.Trunc(n) || leaves != math.Trunc(leaves) || n < 1 || leaves < 1 {
		return nil, &ArgError{Fn: "RMIFromCoeffs", Reason: "non-integral or non-positive header"}
	}
	nl := int(leaves)
	if len(c) != 4+4*nl {
		return nil, &ArgError{Fn: "RMIFromCoeffs", Reason: "vector length does not match leaf count"}
	}
	r := &RMI{
		n:      int(n),
		root:   linearModel{A: c[2], B: c[3]},
		leaves: make([]rmiLeaf, nl),
	}
	for l := 0; l < nl; l++ {
		o := 4 + 4*l
		r.leaves[l] = rmiLeaf{
			model: linearModel{A: c[o], B: c[o+1]},
			errLo: int(c[o+2]),
			errHi: int(c[o+3]),
		}
	}
	return r, nil
}
