package learned

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
)

// Satellite 1: constructors reject bad arguments with a typed *ArgError
// instead of panicking.
func TestBuildRMIArgErrors(t *testing.T) {
	cases := []struct {
		name   string
		keys   []uint64
		leaves int
		fn     string
	}{
		{"empty keys", nil, 8, "BuildRMI"},
		{"zero leaves", []uint64{1, 2, 3}, 0, "BuildRMI"},
		{"negative leaves", []uint64{1, 2, 3}, -4, "BuildRMI"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := BuildRMI(c.keys, c.leaves)
			if r != nil || err == nil {
				t.Fatalf("got (%v, %v), want (nil, *ArgError)", r, err)
			}
			var ae *ArgError
			if !errors.As(err, &ae) || ae.Fn != c.fn {
				t.Fatalf("error %v is not an *ArgError from %s", err, c.fn)
			}
		})
	}
}

func TestNewDynamicRMIArgErrors(t *testing.T) {
	for _, c := range []struct {
		name   string
		keys   []uint64
		leaves int
	}{
		{"empty keys", nil, 8},
		{"zero leaves", []uint64{1, 2, 3}, 0},
	} {
		t.Run(c.name, func(t *testing.T) {
			d, err := NewDynamicRMI(c.keys, c.leaves)
			if d != nil || err == nil {
				t.Fatalf("got (%v, %v), want (nil, *ArgError)", d, err)
			}
			var ae *ArgError
			if !errors.As(err, &ae) || ae.Fn != "NewDynamicRMI" {
				t.Fatalf("error %v is not an *ArgError from NewDynamicRMI", err)
			}
		})
	}
}

// Satellite 2: the rebuild threshold is inclusive — the insert that brings
// the delta buffer exactly to RebuildFraction*len(keys)+1 must itself
// trigger the merge, and duplicate inserts must not count toward it.
func TestDynamicRMIRebuildThresholdBoundary(t *testing.T) {
	sorted := func(n int) []uint64 {
		ks := make([]uint64, n)
		for i := range ks {
			ks[i] = uint64(i*10 + 5)
		}
		return ks
	}
	cases := []struct {
		name     string
		baseN    int
		fraction float64
		// number of fresh inserts after which the first rebuild must fire
		trigger int
	}{
		// 100 keys at 0.1: threshold = 0.1*100+1 = 11 buffered inserts.
		{"100 keys f=0.1", 100, 0.1, 11},
		// 50 keys at 0.2: threshold = 0.2*50+1 = 11.
		{"50 keys f=0.2", 50, 0.2, 11},
		// Tiny set: threshold = 0.1*5+1 = 1.5, so the 2nd insert fires —
		// the +1 floor keeps it from rebuilding on every single insert.
		{"5 keys f=0.1", 5, 0.1, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := must(NewDynamicRMI(sorted(c.baseN), 4))
			d.RebuildFraction = c.fraction
			for i := 1; i <= c.trigger; i++ {
				// Duplicate of an indexed key: ignored, never counts.
				d.Insert(sorted(c.baseN)[i%c.baseN])
				if d.Rebuilds() != 0 {
					t.Fatalf("duplicate insert %d triggered a rebuild", i)
				}
				// Fresh key (odd, so disjoint from the 10i+5 base set).
				d.Insert(uint64(1000000 + 2*i))
				// Re-inserting a buffered key must not count either.
				d.Insert(uint64(1000000 + 2*i))
				want := 0
				if i == c.trigger {
					want = 1
				}
				if d.Rebuilds() != want {
					t.Fatalf("after %d fresh inserts: rebuilds=%d, want %d", i, d.Rebuilds(), want)
				}
			}
			// The merge must have drained the buffer and kept every key.
			for i := 1; i <= c.trigger; i++ {
				if !d.Contains(uint64(1000000 + 2*i)) {
					t.Fatalf("key %d lost across rebuild", 1000000+2*i)
				}
			}
			if d.Len() != c.baseN+c.trigger {
				t.Fatalf("Len=%d, want %d", d.Len(), c.baseN+c.trigger)
			}
		})
	}
}

// Coeffs/RMIFromCoeffs must round-trip exactly: the reconstructed index
// answers every probe identically, bit for bit.
func TestRMICoeffsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := must(data.GenerateKeys(rng, data.Lognormal, 20000))
	orig := must(BuildRMI(keys, 64))
	back := must(RMIFromCoeffs(orig.Coeffs()))
	if back.MaxSearchWindow() != orig.MaxSearchWindow() || back.MemoryBytes() != orig.MemoryBytes() {
		t.Fatalf("window/memory changed across round trip")
	}
	for i := 0; i < len(keys); i += 131 {
		p1, ok1, w1, d1 := orig.Probe(keys, keys[i])
		p2, ok2, w2, d2 := back.Probe(keys, keys[i])
		if p1 != p2 || ok1 != ok2 || w1 != w2 || d1 != d2 {
			t.Fatalf("probe diverged at rank %d: (%d,%v,%d,%v) vs (%d,%v,%d,%v)",
				i, p1, ok1, w1, d1, p2, ok2, w2, d2)
		}
	}
}

func TestRMIFromCoeffsRejectsMalformed(t *testing.T) {
	good := must(BuildRMI([]uint64{1, 5, 9, 13}, 2)).Coeffs()
	bad := [][]float64{
		nil,
		{1, 2, 3},                        // shorter than header
		append([]float64{}, good[1:]...), // truncated
		func() []float64 { c := append([]float64(nil), good...); c[1] = 3; return c }(),   // leaf count mismatch
		func() []float64 { c := append([]float64(nil), good...); c[0] = 0; return c }(),   // non-positive n
		func() []float64 { c := append([]float64(nil), good...); c[1] = 2.5; return c }(), // fractional header
		func() []float64 { c := append([]float64(nil), good...); c[0] = math.NaN(); return c }(),
	}
	for i, c := range bad {
		if r, err := RMIFromCoeffs(c); err == nil {
			t.Fatalf("case %d: malformed vector accepted: %v", i, r)
		}
	}
	if _, err := RMIFromCoeffs(good); err != nil {
		t.Fatalf("well-formed vector rejected: %v", err)
	}
}
