package distributed

import (
	"math"
	"testing"

	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
)

// faultCfg is the shared fault-injected training configuration used by the
// determinism and recovery tests: fault rate 0.2 with crashes, stragglers,
// drops, and corruption all enabled.
func faultCfg(rate float64) Config {
	return Config{
		Workers: 4, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1,
		AveragePeriod: 1, Fault: fault.Rate(123, rate), SnapshotPeriod: 3,
	}
}

// Same seed → identical Stats (bytes, retries, crash/rejoin counts) and an
// identical final parameter vector, even though workers execute in
// parallel goroutines and faults reorder who does what when.
func TestFaultScheduleDeterministic(t *testing.T) {
	train, _ := distDataset(8)
	y := nn.OneHot(train.Labels, 3)
	netA, statsA := mustTrain(t, 80, train.X, y, faultCfg(0.2))
	netB, statsB := mustTrain(t, 80, train.X, y, faultCfg(0.2))
	if statsA.BytesSent != statsB.BytesSent ||
		statsA.Retransmissions != statsB.Retransmissions ||
		statsA.DroppedMessages != statsB.DroppedMessages ||
		statsA.Corruptions != statsB.Corruptions ||
		statsA.Crashes != statsB.Crashes ||
		statsA.Rejoins != statsB.Rejoins ||
		statsA.Restores != statsB.Restores ||
		statsA.Snapshots != statsB.Snapshots ||
		statsA.Timeouts != statsB.Timeouts ||
		statsA.SimSeconds != statsB.SimSeconds {
		t.Fatalf("same seed produced different stats:\nA: %+v\nB: %+v", statsA, statsB)
	}
	a, b := netA.ParamVector(), netB.ParamVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different params at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestDifferentFaultSeedsDiverge(t *testing.T) {
	train, _ := distDataset(8)
	y := nn.OneHot(train.Labels, 3)
	cfgA := faultCfg(0.2)
	cfgB := faultCfg(0.2)
	cfgB.Fault.Seed = 456
	_, statsA := mustTrain(t, 80, train.X, y, cfgA)
	_, statsB := mustTrain(t, 80, train.X, y, cfgB)
	if statsA.BytesSent == statsB.BytesSent && statsA.Crashes == statsB.Crashes &&
		statsA.Retransmissions == statsB.Retransmissions {
		t.Fatal("different fault seeds produced identical fault traces")
	}
}

// At fault rate 0.2 with crashes and recovery enabled, accuracy must stay
// within 3 points of the fault-free run while the stats show the fault
// machinery actually exercised: retransmissions happened and at least one
// crashed worker restored a snapshot.
func TestRecoveryStaysInAccuracyBand(t *testing.T) {
	train, test := distDataset(9)
	y := nn.OneHot(train.Labels, 3)

	clean := faultCfg(0)
	clean.Fault = fault.Config{}
	netClean, statsClean := mustTrain(t, 90, train.X, y, clean)
	accClean := netClean.Accuracy(test.X, test.Labels)

	netF, statsF := mustTrain(t, 90, train.X, y, faultCfg(0.2))
	accF := netF.Accuracy(test.X, test.Labels)

	t.Logf("fault-free %.3f vs faulty %.3f; stats %+v", accClean, accF, statsF)
	if accClean-accF > 0.03 {
		t.Fatalf("faulty accuracy %.3f more than 3 points below fault-free %.3f", accF, accClean)
	}
	if statsF.Retransmissions == 0 {
		t.Fatal("no retransmissions at 20% message loss")
	}
	if statsF.Crashes == 0 || statsF.Restores == 0 {
		t.Fatalf("expected crashes and snapshot restores: %+v", statsF)
	}
	if statsF.BytesSent <= statsClean.BytesSent {
		t.Fatalf("retransmissions should cost bytes: faulty %d <= clean %d",
			statsF.BytesSent, statsClean.BytesSent)
	}
	if statsF.SimSeconds <= statsClean.SimSeconds {
		t.Fatalf("faults should cost simulated time: %.6f <= %.6f",
			statsF.SimSeconds, statsClean.SimSeconds)
	}
}

// Local SGD must survive the same fault regime: model averaging heals
// post-crash drift because every live worker receives the average.
func TestLocalSGDSurvivesFaults(t *testing.T) {
	train, test := distDataset(10)
	y := nn.OneHot(train.Labels, 3)
	cfg := faultCfg(0.2)
	cfg.AveragePeriod = 4
	net, stats := mustTrain(t, 100, train.X, y, cfg)
	if acc := net.Accuracy(test.X, test.Labels); acc < 0.8 {
		t.Fatalf("local SGD under faults accuracy %.3f", acc)
	}
	if stats.Crashes == 0 {
		t.Fatal("fault schedule produced no crashes over 15 epochs")
	}
}

// Drop-slowest-k bounds the simulated round time under stragglers: with
// mitigation on, the run should finish faster on the simulated clock than
// the same run that waits for every straggler.
func TestDropSlowestKMitigatesStragglers(t *testing.T) {
	train, test := distDataset(11)
	y := nn.OneHot(train.Labels, 3)
	straggly := Config{
		Workers: 4, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1, AveragePeriod: 1,
		Fault: fault.Config{Seed: 7, StragglerProb: 0.3, StragglerFactor: 20},
	}
	_, waitAll := mustTrain(t, 110, train.X, y, straggly)

	mitigated := straggly
	mitigated.DropSlowestK = 1
	netM, dropK := mustTrain(t, 110, train.X, y, mitigated)

	if waitAll.StragglerRounds == 0 {
		t.Fatal("no straggler rounds at 30% straggle probability")
	}
	if dropK.ExcludedSlow == 0 {
		t.Fatal("mitigation excluded nobody")
	}
	if dropK.SimSeconds >= waitAll.SimSeconds {
		t.Fatalf("drop-slowest-1 should cut simulated time: %.6f >= %.6f",
			dropK.SimSeconds, waitAll.SimSeconds)
	}
	if acc := netM.Accuracy(test.X, test.Labels); acc < 0.8 {
		t.Fatalf("mitigated run accuracy %.3f", acc)
	}
}

// Crash-at-step-k recovery: a run with exactly one injected crash must
// converge to the same accuracy band as the uninterrupted run (the
// snapshot round-trip satellite requirement, exercised end to end).
func TestCrashRecoveryConvergesToSameBand(t *testing.T) {
	train, test := distDataset(12)
	y := nn.OneHot(train.Labels, 3)
	clean := Config{
		Workers: 4, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1, AveragePeriod: 1,
	}
	netClean, _ := mustTrain(t, 120, train.X, y, clean)
	accClean := netClean.Accuracy(test.X, test.Labels)

	crashy := clean
	crashy.Fault = fault.Config{Seed: 31, CrashProb: 0.02, RestartDelay: 4}
	crashy.SnapshotPeriod = 2
	netC, stats := mustTrain(t, 120, train.X, y, crashy)
	accC := netC.Accuracy(test.X, test.Labels)
	if stats.Crashes == 0 || stats.Restores == 0 {
		t.Fatalf("crash schedule did not fire: %+v", stats)
	}
	if math.Abs(accClean-accC) > 0.03 {
		t.Fatalf("crash-recovery accuracy %.3f vs uninterrupted %.3f: outside 3-point band", accC, accClean)
	}
}

// The retry transport must deliver deterministically and account every
// attempt's bytes.
func TestTransportRetryAccounting(t *testing.T) {
	var stats Stats
	tr := &transport{
		inj:        fault.NewInjector(fault.Config{Seed: 5, DropProb: 0.5}),
		prof:       device.GPUSmall,
		maxRetries: 8,
		backoffS:   1e-3,
		obs:        newDistObs(nil, 0),
	}
	delivered := 0
	for msg := 0; msg < 200; msg++ {
		ok, elapsed := tr.send(0, msg, 1000, &stats)
		if elapsed <= 0 {
			t.Fatal("send took no simulated time")
		}
		if ok {
			delivered++
		}
	}
	if delivered < 190 {
		t.Fatalf("only %d/200 delivered with 8 retries at 50%% loss", delivered)
	}
	if stats.Retransmissions == 0 || stats.DroppedMessages == 0 {
		t.Fatalf("retry accounting empty: %+v", stats)
	}
	attempts := int64(200 + stats.Retransmissions)
	if stats.BytesSent != attempts*1000 {
		t.Fatalf("bytes %d != attempts %d x 1000 (every attempt must be accounted)", stats.BytesSent, attempts)
	}
}
