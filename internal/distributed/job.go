package distributed

import (
	"math"
	"math/rand"

	"dlsys/internal/checkpoint"
	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/robust"
	"dlsys/internal/sim"
	"dlsys/internal/tensor"
)

// jobClock adapts the shared simulation kernel to the job-relative
// simulated-seconds accounting Stats reports: now() is seconds since the
// job started, advance() charges simulated work to the shared clock. With
// a private kernel (standalone Train) t0 is zero and the accumulation
// sequence is identical to the historical SimSeconds arithmetic, so
// results stay bit-for-bit.
type jobClock struct {
	k  *sim.Kernel
	t0 float64
}

func (c *jobClock) now() float64      { return c.k.Now() - c.t0 }
func (c *jobClock) advance(d float64) { c.k.Advance(d) }

// Job is one distributed training run driven by a simulation kernel:
// every (epoch, step) round executes as a kernel event, so a Job composes
// with other kernel-driven components (the serving fleet, fault
// schedules) on one shared timeline. Build with NewJob, schedule with
// Start, drive the kernel, then collect with Result. Train wraps the
// three for the standalone path.
type Job struct {
	cfg  Config
	x, y *tensor.Tensor

	k     *sim.Kernel
	actor *sim.Actor
	clk   *jobClock

	inj       *fault.Injector
	prof      device.Profile
	agg       robust.Aggregator
	chargeAgg bool
	rep       *robust.Reputation
	ins       *distObs
	net       *transport
	store     *checkpoint.Store
	trainSpan *obs.Span

	global          *nn.Network
	workers         []*worker
	modelSize       int
	flopsPerExample int64
	stepsPerEpoch   int

	stats     Stats
	epoch     int
	step      int
	epochLoss float64
	lossSteps int
	done      bool
	finalized bool
}

// NewJob validates the config and prepares a training job on the
// configured kernel (Config.Kernel, or a private one when nil — the
// standalone path). All model and worker state is initialised here; no
// simulated time passes until the kernel runs the scheduled rounds.
func NewJob(seed int64, x, y *tensor.Tensor, cfg Config) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.AveragePeriod < 1 {
		cfg.AveragePeriod = 1
	}
	if cfg.TopK <= 0 || cfg.TopK > 1 {
		cfg.TopK = 1
	}
	if cfg.MaxRetries < 1 {
		cfg.MaxRetries = 4
	}
	if cfg.RetryBackoffS <= 0 {
		cfg.RetryBackoffS = 1e-3
	}
	if cfg.SnapshotPeriod < 1 {
		cfg.SnapshotPeriod = 5
	}
	k := cfg.Kernel
	if k == nil {
		k = sim.New()
	}
	j := &Job{
		cfg:   cfg,
		x:     x,
		y:     y,
		k:     k,
		actor: k.Actor("distributed"),
		clk:   &jobClock{k: k, t0: k.Now()},
	}
	if cfg.Fault.Enabled() {
		j.inj = fault.NewInjector(cfg.Fault)
		// Schedule windows resolve against absolute kernel time.
		j.inj.SetClock(k)
	}
	j.prof = cfg.Device
	if j.prof.Name == "" {
		j.prof = device.GPUSmall
	}
	// A nil aggregator is the historical plain mean with no aggregation
	// cost charged; an explicit one (even Mean) is accounted on the clock.
	j.agg = cfg.Aggregator
	j.chargeAgg = j.agg != nil
	if j.agg == nil {
		j.agg = robust.Mean{}
	}
	if cfg.Reputation != nil {
		j.rep = robust.NewReputation(*cfg.Reputation)
	}
	j.ins = newDistObs(cfg.Obs, cfg.Workers)
	j.net = &transport{inj: j.inj, prof: j.prof, maxRetries: cfg.MaxRetries, backoffS: cfg.RetryBackoffS, obs: j.ins}
	j.trainSpan = j.ins.span("distributed.train", j.clk.now())

	// All workers start from the same initialisation but own independent
	// RNG streams derived from (seed, workerID), so fault-induced
	// reordering of worker execution cannot change any worker's batches.
	j.global = nn.NewMLP(rand.New(rand.NewSource(seed)), cfg.Arch)
	j.workers = make([]*worker, cfg.Workers)
	shards := shardIndices(x.Dim(0), cfg.Workers)
	for w := range j.workers {
		wnet := nn.NewMLP(rand.New(rand.NewSource(seed)), cfg.Arch)
		wnet.SetParamVector(j.global.ParamVector())
		wrng := rand.New(rand.NewSource(fault.WorkerSeed(seed, w)))
		j.workers[w] = &worker{
			id:       w,
			net:      wnet,
			trainer:  nn.NewTrainer(wnet, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(cfg.LR), wrng),
			rng:      wrng,
			shard:    shards[w],
			residual: make([]float64, wnet.NumParams()),
		}
	}

	j.store = checkpoint.NewStore(2)
	if j.inj != nil {
		takeSnapshot(j.store, j.inj, 0, j.global, &j.stats, j.ins)
	}
	j.modelSize = j.global.NumParams()
	j.flopsPerExample = 3 * j.global.FLOPs(1) // forward + ~2x backward
	j.stepsPerEpoch = (len(shards[0]) + cfg.BatchSize - 1) / cfg.BatchSize
	return j, nil
}

// Kernel returns the simulation kernel driving the job.
func (j *Job) Kernel() *sim.Kernel { return j.k }

// Start schedules the job's first round on the kernel. The job then
// self-perpetuates: each round event schedules the next at the simulated
// instant the previous one finished, until every epoch completes.
func (j *Job) Start() {
	if j.stepsPerEpoch == 0 {
		// Degenerate empty-shard run: the historical loop still recorded
		// one (NaN) epoch-loss entry per epoch.
		for e := 0; e < j.cfg.Epochs; e++ {
			j.stats.EpochLoss = append(j.stats.EpochLoss, math.NaN())
		}
		j.done = true
		return
	}
	if j.cfg.Epochs == 0 {
		j.done = true
		return
	}
	j.actor.At(j.k.Now(), j.runRound)
}

// runRound executes one (epoch, step) training round as a kernel event and
// schedules the successor at the simulated time this one finished.
func (j *Job) runRound(float64) {
	cfg, stats, net := j.cfg, &j.stats, j.net
	if j.step == 0 {
		for _, wk := range j.workers {
			wk.rng.Shuffle(len(wk.shard), func(i, jj int) {
				wk.shard[i], wk.shard[jj] = wk.shard[jj], wk.shard[i]
			})
		}
		j.epochLoss, j.lossSteps = 0, 0
	}
	step := j.step
	round := j.epoch*j.stepsPerEpoch + step
	active := liveWorkers(j.workers, j.inj, j.store, round, stats, j.ins)
	switch {
	case len(active) == 0:
		// Whole cluster down: the round idles away a restart delay.
		j.clk.advance(net.backoffS)
	case cfg.AveragePeriod == 1:
		roundSpan := j.trainSpan.Child("sync-round", j.clk.now())
		loss, ok := syncRound(active, j.x, j.y, cfg, net, j.clk, step, round, j.modelSize, j.flopsPerExample, j.agg, j.chargeAgg, j.rep, stats, roundSpan)
		roundSpan.End(j.clk.now())
		if ok && active[0].id == 0 && !math.IsNaN(loss) && !math.IsInf(loss, 0) {
			j.epochLoss += loss
			j.lossSteps++
		}
		if j.inj != nil && stats.AveragingRound%cfg.SnapshotPeriod == 0 {
			takeSnapshot(j.store, j.inj, round+1, active[0].net, stats, j.ins)
		}
	default:
		localRound(active, j.x, j.y, cfg, net, j.clk, j.store, step, round, j.flopsPerExample, stats)
		if l := activeLoss(active[0]); active[0].id == 0 && !math.IsNaN(l) && !math.IsInf(l, 0) {
			j.epochLoss += l
			j.lossSteps++
		}
		globalStep := round + 1
		if globalStep%cfg.AveragePeriod == 0 {
			roundSpan := j.trainSpan.Child("avg-round", j.clk.now())
			averageRound(active, cfg, net, j.clk, round, j.modelSize, j.agg, j.chargeAgg, j.rep, stats)
			roundSpan.End(j.clk.now())
			if j.inj != nil && stats.AveragingRound%cfg.SnapshotPeriod == 0 {
				takeSnapshot(j.store, j.inj, round+1, active[0].net, stats, j.ins)
			}
		}
	}
	stats.Steps++
	j.ins.steps.Inc()

	j.step++
	if j.step == j.stepsPerEpoch {
		if j.lossSteps > 0 {
			stats.EpochLoss = append(stats.EpochLoss, j.epochLoss/float64(j.lossSteps))
		} else {
			stats.EpochLoss = append(stats.EpochLoss, math.NaN())
		}
		j.step = 0
		j.epoch++
	}
	if j.epoch < j.cfg.Epochs {
		j.actor.At(j.k.Now(), j.runRound)
	} else {
		j.done = true
	}
}

// Done reports whether every scheduled round has executed.
func (j *Job) Done() bool { return j.done }

// Result finalises the run — consensus averaging over surviving workers,
// reputation-ledger rollup, span and gauge flushes — and returns the
// consensus model plus stats. Call it after the kernel has drained the
// job's events (Done reports true); calling again returns the same
// finalised state.
func (j *Job) Result() (*nn.Network, Stats, error) {
	if j.finalized {
		return j.global, j.stats, nil
	}
	j.finalized = true
	stats := &j.stats
	// Final consensus over the workers that are up at the end; workers
	// still down (crashed near the finish) hold stale parameters and are
	// left out, exactly as a parameter server would ignore them.
	totalRounds := j.cfg.Epochs * j.stepsPerEpoch
	var final []*worker
	for _, wk := range j.workers {
		if wk.downTo <= totalRounds {
			final = append(final, wk)
		}
	}
	if len(final) == 0 {
		final = j.workers
	}
	averageParams(final)
	j.global.SetParamVector(final[0].net.ParamVector())
	if j.rep != nil {
		led := j.rep.Ledger()
		stats.Quarantine = led
		stats.Quarantines = led.Quarantines()
		stats.Readmissions = led.Readmissions()
		j.ins.quarantines.Add(int64(stats.Quarantines))
		j.ins.readmissions.Add(int64(stats.Readmissions))
	}
	stats.SimSeconds = j.clk.now()
	j.trainSpan.End(stats.SimSeconds)
	j.ins.simSeconds.Set(stats.SimSeconds)
	j.ins.aggSeconds.Set(stats.AggSeconds)
	return j.global, j.stats, nil
}
