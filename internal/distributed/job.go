package distributed

import (
	"math"
	"math/rand"
	"sort"

	"dlsys/internal/checkpoint"
	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/robust"
	"dlsys/internal/sim"
	"dlsys/internal/tensor"
)

// jobClock adapts the shared simulation kernel to the job-relative
// simulated-seconds accounting Stats reports: now() is seconds since the
// job started, advance() charges simulated work to the shared clock. With
// a private kernel (standalone Train) t0 is zero and the accumulation
// sequence is identical to the historical SimSeconds arithmetic, so
// results stay bit-for-bit.
type jobClock struct {
	k  *sim.Kernel
	t0 float64
}

func (c *jobClock) now() float64      { return c.k.Now() - c.t0 }
func (c *jobClock) advance(d float64) { c.k.Advance(d) }

// Job is one distributed training run driven by a simulation kernel:
// every (epoch, step) round executes as a kernel event, so a Job composes
// with other kernel-driven components (the serving fleet, fault
// schedules) on one shared timeline. Build with NewJob, schedule with
// Start, drive the kernel, then collect with Result. Train wraps the
// three for the standalone path.
type Job struct {
	cfg  Config
	x, y *tensor.Tensor

	k     *sim.Kernel
	actor *sim.Actor
	clk   *jobClock

	inj       *fault.Injector
	prof      device.Profile
	agg       robust.Aggregator
	chargeAgg bool
	rep       *robust.Reputation
	ins       *distObs
	net       *transport
	store     *checkpoint.Store
	trainSpan *obs.Span

	global          *nn.Network
	workers         []*worker
	modelSize       int
	flopsPerExample int64
	stepsPerEpoch   int

	snaps       bool // snapshotting enabled (faults or elastic membership)
	churn       []ChurnEvent
	churnIdx    int
	lastMembers []int // member-id set of the previous round's topology

	stats     Stats
	epoch     int
	step      int
	epochLoss float64
	lossSteps int
	done      bool
	finalized bool
}

// NewJob validates the config and prepares a training job on the
// configured kernel (Config.Kernel, or a private one when nil — the
// standalone path). All model and worker state is initialised here; no
// simulated time passes until the kernel runs the scheduled rounds.
func NewJob(seed int64, x, y *tensor.Tensor, cfg Config) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.AveragePeriod < 1 {
		cfg.AveragePeriod = 1
	}
	if cfg.TopK <= 0 || cfg.TopK > 1 {
		cfg.TopK = 1
	}
	if cfg.MaxRetries < 1 {
		cfg.MaxRetries = 4
	}
	if cfg.RetryBackoffS <= 0 {
		cfg.RetryBackoffS = 1e-3
	}
	if cfg.SnapshotPeriod < 1 {
		cfg.SnapshotPeriod = 5
	}
	if cfg.SnapshotKeep < 1 {
		cfg.SnapshotKeep = 2
	}
	k := cfg.Kernel
	if k == nil {
		k = sim.New()
	}
	j := &Job{
		cfg:   cfg,
		x:     x,
		y:     y,
		k:     k,
		actor: k.Actor("distributed"),
		clk:   &jobClock{k: k, t0: k.Now()},
	}
	if cfg.Fault.Enabled() {
		j.inj = fault.NewInjector(cfg.Fault)
		// Schedule windows resolve against absolute kernel time.
		j.inj.SetClock(k)
	}
	j.prof = cfg.Device
	if j.prof.Name == "" {
		j.prof = device.GPUSmall
	}
	// A nil aggregator is the historical plain mean with no aggregation
	// cost charged; an explicit one (even Mean) is accounted on the clock.
	j.agg = cfg.Aggregator
	j.chargeAgg = j.agg != nil
	if j.agg == nil {
		j.agg = robust.Mean{}
	}
	if cfg.Reputation != nil {
		j.rep = robust.NewReputation(*cfg.Reputation)
	}
	j.ins = newDistObs(cfg.Obs, cfg.Workers)
	j.net = &transport{inj: j.inj, prof: j.prof, maxRetries: cfg.MaxRetries, backoffS: cfg.RetryBackoffS, obs: j.ins}
	j.trainSpan = j.ins.span("distributed.train", j.clk.now())

	// All workers start from the same initialisation but own independent
	// RNG streams derived from (seed, workerID), so fault-induced
	// reordering of worker execution cannot change any worker's batches.
	j.global = nn.NewMLP(rand.New(rand.NewSource(seed)), cfg.Arch)
	j.workers = make([]*worker, cfg.Workers)
	shards := shardIndices(x.Dim(0), cfg.Workers)
	for w := range j.workers {
		wnet := nn.NewMLP(rand.New(rand.NewSource(seed)), cfg.Arch)
		wnet.SetParamVector(j.global.ParamVector())
		wrng := rand.New(rand.NewSource(fault.WorkerSeed(seed, w)))
		j.workers[w] = &worker{
			id:       w,
			net:      wnet,
			trainer:  nn.NewTrainer(wnet, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(cfg.LR), wrng),
			rng:      wrng,
			shard:    shards[w],
			residual: make([]float64, wnet.NumParams()),
		}
	}

	// Elastic membership: the churn schedule executes in (round, worker)
	// order, and a worker whose earliest event is a join starts absent.
	j.churn = append([]ChurnEvent(nil), cfg.Churn...)
	sort.Slice(j.churn, func(a, b int) bool {
		if j.churn[a].Round != j.churn[b].Round {
			return j.churn[a].Round < j.churn[b].Round
		}
		return j.churn[a].Worker < j.churn[b].Worker
	})
	earliest := make(map[int]bool)
	for _, ev := range j.churn {
		if earliest[ev.Worker] {
			continue
		}
		earliest[ev.Worker] = true
		if ev.Join {
			j.workers[ev.Worker].absent = true
		}
	}

	j.store = checkpoint.NewStore(cfg.SnapshotKeep)
	j.snaps = j.inj != nil || len(j.churn) > 0
	if j.snaps {
		takeSnapshot(j.store, j.inj, 0, j.global, &j.stats, j.ins)
	}
	j.modelSize = j.global.NumParams()
	j.flopsPerExample = 3 * j.global.FLOPs(1) // forward + ~2x backward
	j.stepsPerEpoch = (len(shards[0]) + cfg.BatchSize - 1) / cfg.BatchSize
	return j, nil
}

// Kernel returns the simulation kernel driving the job.
func (j *Job) Kernel() *sim.Kernel { return j.k }

// Start schedules the job's first round on the kernel. The job then
// self-perpetuates: each round event schedules the next at the simulated
// instant the previous one finished, until every epoch completes.
func (j *Job) Start() {
	if j.stepsPerEpoch == 0 {
		// Degenerate empty-shard run: the historical loop still recorded
		// one (NaN) epoch-loss entry per epoch.
		for e := 0; e < j.cfg.Epochs; e++ {
			j.stats.EpochLoss = append(j.stats.EpochLoss, math.NaN())
		}
		j.done = true
		return
	}
	if j.cfg.Epochs == 0 {
		j.done = true
		return
	}
	j.actor.At(j.k.Now(), j.runRound)
}

// runRound executes one (epoch, step) training round as a kernel event and
// schedules the successor at the simulated time this one finished.
func (j *Job) runRound(float64) {
	cfg, stats, net := j.cfg, &j.stats, j.net
	if j.step == 0 {
		for _, wk := range j.workers {
			wk.rng.Shuffle(len(wk.shard), func(i, jj int) {
				wk.shard[i], wk.shard[jj] = wk.shard[jj], wk.shard[i]
			})
		}
		j.epochLoss, j.lossSteps = 0, 0
	}
	step := j.step
	round := j.epoch*j.stepsPerEpoch + step
	// Elastic membership transitions happen at the start of their round,
	// before crash/rejoin processing, so a joiner can still crash on
	// arrival and a leaver never computes a round it is not part of.
	for j.churnIdx < len(j.churn) && j.churn[j.churnIdx].Round <= round {
		j.applyChurn(j.churn[j.churnIdx])
		j.churnIdx++
	}
	active := liveWorkers(j.workers, j.inj, j.store, round, stats, j.ins)
	// Every change in the active member set opens a membership epoch: the
	// collective topology is rebuilt over the new set. Tracked only when
	// topology or churn is in play, so legacy runs stay untouched.
	if j.cfg.Topology != TopoDefault || len(j.churn) > 0 {
		ids := make([]int, len(active))
		for i, wk := range active {
			ids[i] = wk.id
		}
		if !equalInts(ids, j.lastMembers) {
			stats.MembershipEpochs++
			j.ins.epochs.Inc()
			j.lastMembers = ids
		}
	}
	switch {
	case len(active) == 0:
		// Whole cluster down: the round idles away a restart delay.
		j.clk.advance(net.backoffS)
	case cfg.AveragePeriod == 1:
		roundSpan := j.trainSpan.Child("sync-round", j.clk.now())
		var loss float64
		var ok bool
		if cfg.Topology != TopoDefault {
			loss, ok = syncRoundCollective(active, j.x, j.y, cfg, net, j.clk, step, round, j.modelSize, j.flopsPerExample, j.agg, j.chargeAgg, j.rep, stats, roundSpan)
		} else {
			loss, ok = syncRound(active, j.x, j.y, cfg, net, j.clk, step, round, j.modelSize, j.flopsPerExample, j.agg, j.chargeAgg, j.rep, stats, roundSpan)
		}
		roundSpan.End(j.clk.now())
		if ok && active[0].id == 0 && !math.IsNaN(loss) && !math.IsInf(loss, 0) {
			j.epochLoss += loss
			j.lossSteps++
		}
		if j.snaps && stats.AveragingRound%cfg.SnapshotPeriod == 0 {
			takeSnapshot(j.store, j.inj, round+1, active[0].net, stats, j.ins)
		}
	default:
		localRound(active, j.x, j.y, cfg, net, j.clk, j.store, step, round, j.flopsPerExample, stats)
		if l := activeLoss(active[0]); active[0].id == 0 && !math.IsNaN(l) && !math.IsInf(l, 0) {
			j.epochLoss += l
			j.lossSteps++
		}
		globalStep := round + 1
		if globalStep%cfg.AveragePeriod == 0 {
			roundSpan := j.trainSpan.Child("avg-round", j.clk.now())
			if cfg.Topology != TopoDefault {
				averageRoundCollective(active, cfg, net, j.clk, round, j.modelSize, j.agg, j.chargeAgg, j.rep, stats)
			} else {
				averageRound(active, cfg, net, j.clk, round, j.modelSize, j.agg, j.chargeAgg, j.rep, stats)
			}
			roundSpan.End(j.clk.now())
			if j.snaps && stats.AveragingRound%cfg.SnapshotPeriod == 0 {
				takeSnapshot(j.store, j.inj, round+1, active[0].net, stats, j.ins)
			}
		}
	}
	stats.Steps++
	j.ins.steps.Inc()

	j.step++
	if j.step == j.stepsPerEpoch {
		if j.lossSteps > 0 {
			stats.EpochLoss = append(stats.EpochLoss, j.epochLoss/float64(j.lossSteps))
		} else {
			stats.EpochLoss = append(stats.EpochLoss, math.NaN())
		}
		j.step = 0
		j.epoch++
	}
	if j.epoch < j.cfg.Epochs {
		j.actor.At(j.k.Now(), j.runRound)
	} else {
		j.done = true
	}
}

// applyChurn executes one elastic-membership event at the start of its
// round: a leave marks the worker absent; a join brings it back, catching
// up from the newest CRC-valid snapshot (or, when nothing restorable
// exists, from a present peer's parameters) with a cleared residual —
// membership epoch state machine: join → catch-up → active → leave.
func (j *Job) applyChurn(ev ChurnEvent) {
	wk := j.workers[ev.Worker]
	if !ev.Join {
		if !wk.absent {
			wk.absent = true
			j.stats.Leaves++
			j.ins.leaves.Inc()
		}
		return
	}
	if !wk.absent {
		return
	}
	wk.absent = false
	wk.downTo = 0
	j.stats.Joins++
	j.ins.joins.Inc()
	if _, skipped, err := j.store.Restore(wk.net); err == nil {
		j.stats.CatchUps++
		j.ins.catchups.Inc()
		j.stats.Corruptions += skipped
		j.ins.corrupts.Add(int64(skipped))
	} else {
		for _, peer := range j.workers {
			if peer != wk && !peer.absent && peer.downTo == 0 {
				wk.net.SetParamVector(peer.net.ParamVector())
				break
			}
		}
	}
	for i := range wk.residual {
		wk.residual[i] = 0
	}
}

// Done reports whether every scheduled round has executed.
func (j *Job) Done() bool { return j.done }

// Result finalises the run — consensus averaging over surviving workers,
// reputation-ledger rollup, span and gauge flushes — and returns the
// consensus model plus stats. Call it after the kernel has drained the
// job's events (Done reports true); calling again returns the same
// finalised state.
func (j *Job) Result() (*nn.Network, Stats, error) {
	if j.finalized {
		return j.global, j.stats, nil
	}
	j.finalized = true
	stats := &j.stats
	// Final consensus over the workers that are up at the end; workers
	// still down (crashed near the finish) hold stale parameters and are
	// left out, exactly as a parameter server would ignore them.
	totalRounds := j.cfg.Epochs * j.stepsPerEpoch
	var final []*worker
	for _, wk := range j.workers {
		if wk.absent {
			continue // elastically departed: holds stale parameters
		}
		if wk.downTo <= totalRounds {
			final = append(final, wk)
		}
	}
	if len(final) == 0 {
		final = j.workers
	}
	averageParams(final)
	j.global.SetParamVector(final[0].net.ParamVector())
	if j.rep != nil {
		led := j.rep.Ledger()
		stats.Quarantine = led
		stats.Quarantines = led.Quarantines()
		stats.Readmissions = led.Readmissions()
		j.ins.quarantines.Add(int64(stats.Quarantines))
		j.ins.readmissions.Add(int64(stats.Readmissions))
	}
	stats.SimSeconds = j.clk.now()
	j.trainSpan.End(stats.SimSeconds)
	j.ins.simSeconds.Set(stats.SimSeconds)
	j.ins.aggSeconds.Set(stats.AggSeconds)
	j.ins.commSeconds.Set(stats.CommSeconds)
	return j.global, j.stats, nil
}
