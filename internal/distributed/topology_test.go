package distributed

import (
	"math"
	"testing"

	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
)

// newTestTransport builds a transport with a nil-handle obs shim, matching
// how NewJob wires one up.
func newTestTransport(inj *fault.Injector, maxRetries int) *transport {
	return &transport{
		inj: inj, prof: device.GPUSmall, maxRetries: maxRetries,
		backoffS: 1e-3, obs: newDistObs(nil, 0),
	}
}

func members(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// collectPhases materialises phaseHops output for structural assertions.
func collectPhases(kind Topology, m []int, payload int64, groupSize int) [][]hop {
	var phases [][]hop
	phaseHops(kind, m, payload, groupSize, func(seq int, hops []hop) {
		if seq != len(phases) {
			panic("phase seq out of order")
		}
		phases = append(phases, append([]hop(nil), hops...))
	})
	return phases
}

func TestPhaseHopsStructure(t *testing.T) {
	const payload = int64(1000)
	for _, n := range []int{2, 3, 8, 17, 64} {
		m := members(n)

		// All-to-all: n-1 phases of n full-payload hops.
		a2a := collectPhases(TopoAllToAll, m, payload, 0)
		if len(a2a) != n-1 {
			t.Fatalf("n=%d all-to-all: %d phases, want %d", n, len(a2a), n-1)
		}
		for _, ph := range a2a {
			if len(ph) != n {
				t.Fatalf("n=%d all-to-all phase has %d hops, want %d", n, len(ph), n)
			}
			for _, h := range ph {
				if h.bytes != payload {
					t.Fatalf("n=%d all-to-all hop bytes %d, want %d", n, h.bytes, payload)
				}
			}
		}

		// Ring: 2(n-1) phases of n segment hops, each to the successor.
		ring := collectPhases(TopoRing, m, payload, 0)
		if len(ring) != 2*(n-1) {
			t.Fatalf("n=%d ring: %d phases, want %d", n, len(ring), 2*(n-1))
		}
		seg := ceilDiv(payload, n)
		for _, ph := range ring {
			if len(ph) != n {
				t.Fatalf("n=%d ring phase has %d hops, want %d", n, len(ph), n)
			}
			for _, h := range ph {
				if h.bytes != seg {
					t.Fatalf("n=%d ring hop bytes %d, want segment %d", n, h.bytes, seg)
				}
				if h.dst != (h.src+1)%n {
					t.Fatalf("n=%d ring hop %d->%d is not a successor hop", n, h.src, h.dst)
				}
			}
		}

		// Tree: 2*depth phases; reduce phases total n-1 hops (every non-root
		// sends to its heap parent exactly once), broadcast mirrors them.
		tree := collectPhases(TopoTree, m, payload, 0)
		depth := heapDepth(n - 1)
		if len(tree) != 2*depth {
			t.Fatalf("n=%d tree: %d phases, want %d", n, len(tree), 2*depth)
		}
		reduceHops := 0
		for _, ph := range tree[:depth] {
			reduceHops += len(ph)
		}
		if reduceHops != n-1 {
			t.Fatalf("n=%d tree reduce: %d hops, want %d", n, reduceHops, n-1)
		}

		// Hier: every phase's hop endpoints are members; per-member traffic
		// exists (every member appears as a src or dst at least once).
		hier := collectPhases(TopoHier, m, payload, 0)
		touched := make(map[int]bool)
		for _, ph := range hier {
			for _, h := range ph {
				touched[h.src] = true
				touched[h.dst] = true
			}
		}
		if len(touched) != n {
			t.Fatalf("n=%d hier touches %d members, want %d", n, len(touched), n)
		}
	}
}

func TestHierGroupSize(t *testing.T) {
	if gs := hierGroupSize(0, 64); gs != 8 {
		t.Fatalf("default group size for 64 members = %d, want 8 (ceil sqrt)", gs)
	}
	if gs := hierGroupSize(0, 2); gs != 2 {
		t.Fatalf("minimum group size = %d, want 2", gs)
	}
	if gs := hierGroupSize(100, 8); gs != 8 {
		t.Fatalf("group size should clamp to member count, got %d", gs)
	}
	if gs := hierGroupSize(4, 64); gs != 4 {
		t.Fatalf("configured group size ignored: got %d, want 4", gs)
	}
}

// Clean links: exchange excludes nobody, charges phase-serialized time, and a
// ring moves fewer bytes per member than the all-to-all mesh at n=8.
func TestExchangeCleanLinks(t *testing.T) {
	net := newTestTransport(nil, 4)
	const payload = int64(100_000)
	type res struct {
		stats Stats
		s     float64
	}
	out := map[Topology]res{}
	for _, topo := range Topologies() {
		var stats Stats
		excluded, s, degraded := net.exchange(topo, members(8), payload, 0, 0, &stats)
		if len(excluded) != 0 || degraded {
			t.Fatalf("%s: clean exchange excluded %d, degraded %v", topo, len(excluded), degraded)
		}
		if s <= 0 {
			t.Fatalf("%s: clean exchange charged no time", topo)
		}
		if stats.LinkDropped != 0 || stats.TopoHeals != 0 || stats.TopoDegraded != 0 {
			t.Fatalf("%s: clean exchange recorded faults: %+v", topo, stats)
		}
		out[topo] = res{stats, s}
	}
	if rb, ab := out[TopoRing].stats.BytesSent, out[TopoAllToAll].stats.BytesSent; rb >= ab {
		t.Fatalf("ring moved %d bytes >= all-to-all %d", rb, ab)
	}
	// Determinism: a second walk over the same round reproduces the time.
	for _, topo := range Topologies() {
		var stats Stats
		_, s, _ := net.exchange(topo, members(8), payload, 0, 0, &stats)
		if s != out[topo].s {
			t.Fatalf("%s: exchange time not deterministic: %g vs %g", topo, s, out[topo].s)
		}
	}
}

// Certain-loss links force the healing detour and then the all-to-all
// degradation; the degraded walk draws independently, so with LinkDropProb 1
// everything is excluded but the accounting reconciles.
func TestExchangeDegradesUnderTotalLinkLoss(t *testing.T) {
	inj := fault.NewInjector(fault.Config{Seed: 7, LinkDropProb: 1})
	net := newTestTransport(inj, 3)
	for _, topo := range []Topology{TopoRing, TopoTree, TopoHier} {
		var stats Stats
		excluded, s, degraded := net.exchange(topo, members(8), 1000, 0, 0, &stats)
		if !degraded || stats.TopoDegraded != 1 {
			t.Fatalf("%s: total link loss did not degrade (stats %+v)", topo, stats)
		}
		if s <= 0 {
			t.Fatalf("%s: degraded exchange charged no time", topo)
		}
		if stats.LinkDropped == 0 {
			t.Fatalf("%s: no link drops recorded under LinkDropProb=1", topo)
		}
		if stats.LinkExcluded != len(excluded) {
			t.Fatalf("%s: LinkExcluded %d != excluded set %d", topo, stats.LinkExcluded, len(excluded))
		}
	}
}

// Moderate loss on a ring heals (retries or detours succeed) without
// degrading, and never excludes a majority.
func TestExchangeHealsModerateLoss(t *testing.T) {
	inj := fault.NewInjector(fault.Config{Seed: 11, LinkDropProb: 0.3})
	net := newTestTransport(inj, 4)
	var stats Stats
	healedRounds := 0
	for round := 0; round < 20; round++ {
		excluded, _, degraded := net.exchange(TopoRing, members(8), 1000, round, 0, &stats)
		if degraded {
			t.Fatalf("round %d: ring degraded under 30%% loss with retries", round)
		}
		if 2*len(excluded) >= 8 {
			t.Fatalf("round %d: majority excluded without degradation", round)
		}
		if stats.TopoHeals > 0 {
			healedRounds++
		}
	}
	if stats.Retransmissions == 0 {
		t.Fatal("no retransmissions under 30% link loss")
	}
	if healedRounds == 0 {
		t.Fatal("no healing reroutes over 20 rounds of 30% loss")
	}
}

// A certain partition excludes exactly the minority side and counts one
// partitioned round; both sides of the cut agree via the pure hash.
func TestExchangePartitionExcludesMinority(t *testing.T) {
	inj := fault.NewInjector(fault.Config{Seed: 3, PartitionProb: 1, PartitionRounds: 2})
	net := newTestTransport(inj, 4)
	start, active := inj.PartitionAt(5)
	if !active {
		t.Fatal("PartitionProb=1 produced no partition")
	}
	var side0 int
	for _, w := range members(9) {
		if inj.PartitionSide(w, start) == 0 {
			side0++
		}
	}
	minority := side0
	if 9-side0 < side0 {
		minority = 9 - side0
	}
	var stats Stats
	excluded, _, _ := net.exchange(TopoRing, members(9), 1000, 5, 0, &stats)
	if stats.PartitionedRounds != 1 {
		t.Fatalf("PartitionedRounds = %d, want 1", stats.PartitionedRounds)
	}
	if len(excluded) < minority {
		t.Fatalf("excluded %d members, want at least the %d-member minority", len(excluded), minority)
	}
	for w := range excluded {
		if w < 0 || w >= 9 {
			t.Fatalf("excluded unknown member %d", w)
		}
	}
}

func TestLinkSlowHopsAccounted(t *testing.T) {
	inj := fault.NewInjector(fault.Config{Seed: 5, LinkSlowProb: 1, LinkSlowFactor: 8})
	net := newTestTransport(inj, 4)
	var slowStats Stats
	_, slowS, _ := net.exchange(TopoRing, members(4), 1000, 0, 0, &slowStats)
	clean := newTestTransport(nil, 4)
	var cleanStats Stats
	_, cleanS, _ := clean.exchange(TopoRing, members(4), 1000, 0, 0, &cleanStats)
	if slowStats.LinkSlowHops == 0 {
		t.Fatal("LinkSlowProb=1 recorded no slow hops")
	}
	if slowS <= cleanS {
		t.Fatalf("slow links took %g <= clean %g", slowS, cleanS)
	}
}

func TestTopologyConfigValidation(t *testing.T) {
	train, _ := distDataset(1)
	y := nn.OneHot(train.Labels, 3)
	base := Config{Workers: 4, Arch: distArch, Epochs: 1, BatchSize: 16, LR: 0.1}

	bad := base
	bad.Topology = "torus"
	if _, _, err := Train(1, train.X, y, bad); err == nil {
		t.Fatal("unknown topology accepted")
	} else if ce, ok := err.(*ConfigError); !ok || ce.Field != "Topology" {
		t.Fatalf("want *ConfigError{Topology}, got %v", err)
	}

	bad = base
	bad.GroupSize = 1
	if _, _, err := Train(1, train.X, y, bad); err == nil {
		t.Fatal("group size 1 accepted")
	}

	bad = base
	bad.SnapshotKeep = -1
	if _, _, err := Train(1, train.X, y, bad); err == nil {
		t.Fatal("negative SnapshotKeep accepted")
	}

	for name, churn := range map[string][]ChurnEvent{
		"out-of-range worker": {{Round: 0, Worker: 9, Join: false}},
		"negative round":      {{Round: -1, Worker: 0, Join: false}},
		"duplicate event":     {{Round: 2, Worker: 0, Join: false}, {Round: 2, Worker: 0, Join: true}},
		"join while present":  {{Round: 1, Worker: 0, Join: false}, {Round: 2, Worker: 0, Join: true}, {Round: 3, Worker: 0, Join: true}},
		"leave while absent":  {{Round: 1, Worker: 0, Join: true}, {Round: 2, Worker: 0, Join: false}, {Round: 3, Worker: 0, Join: false}},
	} {
		bad = base
		bad.Churn = churn
		if _, _, err := Train(1, train.X, y, bad); err == nil {
			t.Fatalf("churn schedule %q accepted", name)
		} else if ce, ok := err.(*ConfigError); !ok || ce.Field != "Churn" {
			t.Fatalf("churn %q: want *ConfigError{Churn}, got %v", name, err)
		}
	}
}

// Every explicit topology trains to the same accuracy as the legacy star on
// clean links, and records collective accounting the star never touches.
func TestCollectiveTopologiesConverge(t *testing.T) {
	train, test := distDataset(1)
	y := nn.OneHot(train.Labels, 3)
	base := Config{Workers: 8, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1, AveragePeriod: 1}
	_, starStats := mustTrain(t, 10, train.X, y, base)
	for _, topo := range Topologies() {
		cfg := base
		cfg.Topology = topo
		net, stats := mustTrain(t, 10, train.X, y, cfg)
		if acc := net.Accuracy(test.X, test.Labels); acc < 0.85 {
			t.Fatalf("%s: accuracy %.3f", topo, acc)
		}
		// Same seed, same screening, clean links: losses are bit-identical
		// to the star (only the communication pricing differs).
		for e := range stats.EpochLoss {
			if stats.EpochLoss[e] != starStats.EpochLoss[e] {
				t.Fatalf("%s: epoch %d loss %g != star %g", topo, e, stats.EpochLoss[e], starStats.EpochLoss[e])
			}
		}
		if stats.CommRounds != stats.AveragingRound {
			t.Fatalf("%s: CommRounds %d != AveragingRound %d", topo, stats.CommRounds, stats.AveragingRound)
		}
		if stats.CommSeconds <= 0 {
			t.Fatalf("%s: no collective time charged", topo)
		}
		if stats.MembershipEpochs != 1 {
			t.Fatalf("%s: MembershipEpochs = %d, want 1 (static membership)", topo, stats.MembershipEpochs)
		}
	}
}

// Legacy runs (zero-value topology, no churn) keep every new counter zero.
func TestLegacyRunTouchesNoTopologyCounters(t *testing.T) {
	train, _ := distDataset(1)
	y := nn.OneHot(train.Labels, 3)
	_, stats := mustTrain(t, 10, train.X, y, Config{
		Workers: 4, Arch: distArch, Epochs: 3, BatchSize: 16, LR: 0.1, AveragePeriod: 1,
	})
	if stats.LinkDropped != 0 || stats.LinkSlowHops != 0 || stats.LinkExcluded != 0 ||
		stats.PartitionedRounds != 0 || stats.TopoHeals != 0 || stats.TopoDegraded != 0 ||
		stats.MembershipEpochs != 0 || stats.Joins != 0 || stats.Leaves != 0 ||
		stats.CatchUps != 0 || stats.CommRounds != 0 || stats.CommSeconds != 0 {
		t.Fatalf("legacy run touched topology counters: %+v", stats)
	}
	if stats.Snapshots != 0 {
		t.Fatalf("fault-free legacy run took %d snapshots", stats.Snapshots)
	}
}

func churnSchedule() []ChurnEvent {
	return []ChurnEvent{
		{Round: 3, Worker: 2, Join: false},
		{Round: 3, Worker: 5, Join: false},
		{Round: 12, Worker: 2, Join: true},
		{Round: 12, Worker: 5, Join: true},
		{Round: 6, Worker: 7, Join: true}, // fresh joiner: starts absent
	}
}

// Elastic membership: leavers stop contributing, joiners catch up from a
// CRC-valid snapshot, epochs count each distinct member set, and the whole
// run is bit-reproducible.
func TestChurnDeterministicWithCatchUp(t *testing.T) {
	train, test := distDataset(1)
	y := nn.OneHot(train.Labels, 3)
	cfg := Config{
		Workers: 8, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1,
		AveragePeriod: 1, Topology: TopoRing, Churn: churnSchedule(), SnapshotPeriod: 2,
	}
	net1, stats1 := mustTrain(t, 10, train.X, y, cfg)
	net2, stats2 := mustTrain(t, 10, train.X, y, cfg)

	if stats1.Leaves != 2 || stats1.Joins != 3 {
		t.Fatalf("Leaves=%d Joins=%d, want 2 and 3", stats1.Leaves, stats1.Joins)
	}
	if stats1.CatchUps != 3 {
		t.Fatalf("CatchUps = %d, want 3 (snapshots exist by round 6)", stats1.CatchUps)
	}
	// Member sets: {0..6}\{} start (7 absent) → leave 2,5 → join 7 → rejoin
	// 2,5: at least 4 distinct sets.
	if stats1.MembershipEpochs < 4 {
		t.Fatalf("MembershipEpochs = %d, want >= 4", stats1.MembershipEpochs)
	}
	if stats1.Snapshots == 0 {
		t.Fatal("churn run took no snapshots")
	}
	if acc := net1.Accuracy(test.X, test.Labels); acc < 0.80 {
		t.Fatalf("churned run accuracy %.3f", acc)
	}

	// Bit-identical replay.
	p1, p2 := net1.ParamVector(), net2.ParamVector()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d differs across identical runs: %g vs %g", i, p1[i], p2[i])
		}
	}
	if stats1.CommSeconds != stats2.CommSeconds || stats1.BytesSent != stats2.BytesSent ||
		stats1.MembershipEpochs != stats2.MembershipEpochs {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", stats1, stats2)
	}
}

// Churn composes with the legacy star too: topology is optional.
func TestChurnOnDefaultStar(t *testing.T) {
	train, _ := distDataset(1)
	y := nn.OneHot(train.Labels, 3)
	_, stats := mustTrain(t, 10, train.X, y, Config{
		Workers: 4, Arch: distArch, Epochs: 5, BatchSize: 16, LR: 0.1, AveragePeriod: 1,
		Churn: []ChurnEvent{{Round: 2, Worker: 3, Join: false}, {Round: 8, Worker: 3, Join: true}},
	})
	if stats.Leaves != 1 || stats.Joins != 1 {
		t.Fatalf("Leaves=%d Joins=%d, want 1 and 1", stats.Leaves, stats.Joins)
	}
	if stats.MembershipEpochs < 2 {
		t.Fatalf("MembershipEpochs = %d, want >= 2", stats.MembershipEpochs)
	}
}

// Local SGD (AveragePeriod > 1) over a collective topology converges and
// accounts collective rounds only on averaging steps.
func TestLocalSGDOverCollective(t *testing.T) {
	train, test := distDataset(1)
	y := nn.OneHot(train.Labels, 3)
	net, stats := mustTrain(t, 10, train.X, y, Config{
		Workers: 4, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1,
		AveragePeriod: 4, Topology: TopoTree,
	})
	if acc := net.Accuracy(test.X, test.Labels); acc < 0.85 {
		t.Fatalf("local SGD over tree accuracy %.3f", acc)
	}
	if stats.CommRounds != stats.AveragingRound {
		t.Fatalf("CommRounds %d != AveragingRound %d", stats.CommRounds, stats.AveragingRound)
	}
	if stats.CommRounds >= stats.Steps {
		t.Fatalf("local SGD exchanged every step: %d rounds, %d steps", stats.CommRounds, stats.Steps)
	}
}

// Training under link faults stays within a loss band of the clean run and
// keeps the exclusion ledger consistent.
func TestTrainingSurvivesLinkFaults(t *testing.T) {
	train, test := distDataset(1)
	y := nn.OneHot(train.Labels, 3)
	clean := Config{Workers: 8, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1,
		AveragePeriod: 1, Topology: TopoRing}
	faulty := clean
	faulty.Fault = fault.LinkRate(99, 0.1)
	netC, statsC := mustTrain(t, 10, train.X, y, clean)
	netF, statsF := mustTrain(t, 10, train.X, y, faulty)
	if statsF.LinkDropped == 0 {
		t.Fatal("faulty run dropped no hops")
	}
	cleanLoss := statsC.EpochLoss[len(statsC.EpochLoss)-1]
	faultLoss := statsF.EpochLoss[len(statsF.EpochLoss)-1]
	if math.IsNaN(faultLoss) || faultLoss > cleanLoss*1.5 {
		t.Fatalf("final loss %.4f under link faults, clean %.4f (allowed 1.5x)", faultLoss, cleanLoss)
	}
	accC := netC.Accuracy(test.X, test.Labels)
	accF := netF.Accuracy(test.X, test.Labels)
	if accF < accC-0.15 {
		t.Fatalf("accuracy %.3f under link faults, clean %.3f", accF, accC)
	}
}

// send gives up after MaxRetries attempts with certain loss; broadcast
// persists past the per-round budget and always reports delivery.
func TestTransportRetryExhaustion(t *testing.T) {
	inj := fault.NewInjector(fault.Config{Seed: 1, DropProb: 1})
	net := newTestTransport(inj, 3)
	var stats Stats
	ok, elapsed := net.send(0, 0, 100, &stats)
	if ok {
		t.Fatal("send succeeded with DropProb=1")
	}
	if stats.DroppedMessages != 3 || stats.Retransmissions != 2 {
		t.Fatalf("send retries: %+v, want 3 drops / 2 retransmissions", stats)
	}
	if elapsed <= 0 {
		t.Fatal("failed send charged no time")
	}
	var bstats Stats
	ok, _ = net.broadcast(0, 0, 100, &bstats)
	if !ok {
		t.Fatal("broadcast reported failure; the server persists")
	}
	if bstats.DroppedMessages == 0 {
		t.Fatal("broadcast recorded no drops under DropProb=1")
	}
}

// hop exhausts retries, then heals via the detour when the extra draw
// succeeds; with certain loss even the detour fails.
func TestHopDetourHealing(t *testing.T) {
	certain := fault.NewInjector(fault.Config{Seed: 1, LinkDropProb: 1})
	net := newTestTransport(certain, 2)
	var stats Stats
	ok, elapsed := net.hop(0, 1, 100, 0, 0, &stats)
	if ok {
		t.Fatal("hop delivered with LinkDropProb=1")
	}
	if stats.LinkDropped != 3 { // 2 attempts + failed detour
		t.Fatalf("LinkDropped = %d, want 3", stats.LinkDropped)
	}
	if elapsed <= 0 {
		t.Fatal("failed hop charged no time")
	}

	// p=0.9: over many (round, seq) keys some detours succeed → TopoHeals.
	flaky := fault.NewInjector(fault.Config{Seed: 2, LinkDropProb: 0.9})
	net = newTestTransport(flaky, 2)
	var fstats Stats
	for seq := 0; seq < 200; seq++ {
		net.hop(0, 1, 100, 0, seq, &fstats)
	}
	if fstats.TopoHeals == 0 {
		t.Fatal("no detour heals over 200 hops at p=0.9")
	}
}

// shardIndices partitions [0, n) exactly: disjoint, exhaustive, balanced to
// within one element, and stable across calls.
func TestShardIndicesPartition(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {1, 1}, {7, 7}, {5, 8}, {640, 8}, {97, 13},
	} {
		shards := shardIndices(tc.n, tc.workers)
		if len(shards) != tc.workers {
			t.Fatalf("n=%d w=%d: %d shards", tc.n, tc.workers, len(shards))
		}
		seen := make(map[int]int)
		minLen, maxLen := tc.n, 0
		for _, s := range shards {
			if len(s) < minLen {
				minLen = len(s)
			}
			if len(s) > maxLen {
				maxLen = len(s)
			}
			for _, i := range s {
				seen[i]++
			}
		}
		if len(seen) != tc.n {
			t.Fatalf("n=%d w=%d: %d distinct indices covered", tc.n, tc.workers, len(seen))
		}
		for i, c := range seen {
			if c != 1 || i < 0 || i >= tc.n {
				t.Fatalf("n=%d w=%d: index %d appears %d times", tc.n, tc.workers, i, c)
			}
		}
		if maxLen-minLen > 1 {
			t.Fatalf("n=%d w=%d: shard imbalance %d..%d", tc.n, tc.workers, minLen, maxLen)
		}
	}
}
