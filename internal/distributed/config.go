package distributed

import (
	"fmt"
	"sort"
)

// ConfigError is a typed validation failure for a degenerate Config field:
// which field, and why its value cannot run.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("distributed: config %s %s", e.Field, e.Reason)
}

// Validate rejects degenerate configurations with typed errors instead of
// letting them silently misbehave. Zero values mean "use the default" and
// always pass; negative values that a default clamp would otherwise hide
// are rejected. Train calls Validate before touching any state.
func (c Config) Validate() error {
	if c.Workers < 1 {
		return &ConfigError{"Workers", fmt.Sprintf("%d < 1: need at least one worker", c.Workers)}
	}
	if c.Epochs < 0 {
		return &ConfigError{"Epochs", fmt.Sprintf("%d is negative", c.Epochs)}
	}
	if c.BatchSize < 1 {
		return &ConfigError{"BatchSize", fmt.Sprintf("%d < 1", c.BatchSize)}
	}
	if c.LR < 0 {
		return &ConfigError{"LR", fmt.Sprintf("%g is negative", c.LR)}
	}
	if c.AveragePeriod < 0 {
		return &ConfigError{"AveragePeriod", fmt.Sprintf("%d is negative", c.AveragePeriod)}
	}
	if c.TopK < 0 {
		return &ConfigError{"TopK", fmt.Sprintf("%g is negative", c.TopK)}
	}
	if c.QuantBits < 0 {
		return &ConfigError{"QuantBits", fmt.Sprintf("%d is negative", c.QuantBits)}
	}
	if c.MaxRetries < 0 {
		return &ConfigError{"MaxRetries", fmt.Sprintf("%d is negative", c.MaxRetries)}
	}
	if c.RetryBackoffS < 0 {
		return &ConfigError{"RetryBackoffS", fmt.Sprintf("%g is negative", c.RetryBackoffS)}
	}
	if c.SnapshotPeriod < 0 {
		return &ConfigError{"SnapshotPeriod", fmt.Sprintf("%d is negative", c.SnapshotPeriod)}
	}
	if c.DropSlowestK != 0 && (c.DropSlowestK < 0 || c.DropSlowestK >= c.Workers) {
		return &ConfigError{"DropSlowestK", fmt.Sprintf("%d out of [0, %d workers)", c.DropSlowestK, c.Workers)}
	}
	if !c.Topology.valid() {
		return &ConfigError{"Topology", fmt.Sprintf("%q is not a known topology", string(c.Topology))}
	}
	if c.GroupSize != 0 && c.GroupSize < 2 {
		return &ConfigError{"GroupSize", fmt.Sprintf("%d < 2: a hierarchical group needs at least two members", c.GroupSize)}
	}
	if c.SnapshotKeep < 0 {
		return &ConfigError{"SnapshotKeep", fmt.Sprintf("%d is negative", c.SnapshotKeep)}
	}
	if err := c.validateChurn(); err != nil {
		return err
	}
	if c.Reputation != nil {
		r := *c.Reputation
		if r.Decay != 0 && (r.Decay < 0 || r.Decay >= 1) {
			return &ConfigError{"Reputation.Decay", fmt.Sprintf("%g out of [0, 1)", r.Decay)}
		}
		if r.Threshold < 0 {
			return &ConfigError{"Reputation.Threshold", fmt.Sprintf("%g is negative", r.Threshold)}
		}
		if r.Patience < 0 {
			return &ConfigError{"Reputation.Patience", fmt.Sprintf("%d is negative", r.Patience)}
		}
		if r.Probation < 0 {
			return &ConfigError{"Reputation.Probation", fmt.Sprintf("%d is negative", r.Probation)}
		}
	}
	for _, w := range c.Fault.ByzantineWorkers {
		if w >= c.Workers {
			return &ConfigError{"Fault.ByzantineWorkers", fmt.Sprintf("worker %d out of [0, %d workers)", w, c.Workers)}
		}
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

// validateChurn rejects incoherent elastic-membership schedules: events
// referencing out-of-range workers or negative rounds, two events for one
// worker in the same round, and sequences that contradict themselves (a
// worker joining while present or leaving while absent — presence is
// inferred from each worker's earliest event, matching the runtime rule
// that a worker whose first event is a join starts the run absent).
func (c Config) validateChurn() error {
	byWorker := make(map[int][]ChurnEvent)
	for _, ev := range c.Churn {
		if ev.Worker < 0 || ev.Worker >= c.Workers {
			return &ConfigError{"Churn", fmt.Sprintf("worker %d out of [0, %d workers)", ev.Worker, c.Workers)}
		}
		if ev.Round < 0 {
			return &ConfigError{"Churn", fmt.Sprintf("worker %d scheduled at negative round %d", ev.Worker, ev.Round)}
		}
		byWorker[ev.Worker] = append(byWorker[ev.Worker], ev)
	}
	workers := make([]int, 0, len(byWorker))
	for w := range byWorker {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		evs := byWorker[w]
		sort.Slice(evs, func(a, b int) bool { return evs[a].Round < evs[b].Round })
		for i := 1; i < len(evs); i++ {
			if evs[i].Round == evs[i-1].Round {
				return &ConfigError{"Churn", fmt.Sprintf("worker %d has two events at round %d", w, evs[i].Round)}
			}
		}
		present := !evs[0].Join
		for _, ev := range evs {
			if ev.Join == present {
				verb := "joins while present"
				if !ev.Join {
					verb = "leaves while absent"
				}
				return &ConfigError{"Churn", fmt.Sprintf("worker %d %s at round %d", w, verb, ev.Round)}
			}
			present = ev.Join
		}
	}
	return nil
}
