package distributed

import (
	"fmt"

	"dlsys/internal/obs"
)

// distObs holds the pre-resolved observability instruments for one Train
// run. Instruments are resolved once up front (never in the hot loop), and
// every field is a nil no-op when the run is un-instrumented, so call sites
// stay unconditional. Counter names mirror the Stats fields one-to-one —
// experiment X8 asserts they reconcile exactly.
type distObs struct {
	h *obs.Handle

	retrans, drops, corrupts, timeouts     *obs.Counter
	crashes, rejoins, restores, snapshots  *obs.Counter
	stragglerRounds, excludedSlow          *obs.Counter
	numFaults, guardSkipped, guardRestores *obs.Counter
	byzAttacks, quarExcluded               *obs.Counter
	quarantines, readmissions              *obs.Counter
	rounds, steps                          *obs.Counter
	bytesSent, snapshotBytes               *obs.Counter
	linkDropped, linkSlowHops              *obs.Counter
	linkExcluded, partRounds               *obs.Counter
	topoHeals, topoDegraded                *obs.Counter
	epochs, joins, leaves, catchups        *obs.Counter
	commRounds                             *obs.Counter
	simSeconds, aggSeconds                 *obs.Gauge
	commSeconds                            *obs.Gauge

	stepSeconds []*obs.Histogram // per-worker compute time, worker-id order
}

// stepBuckets spans microsecond-to-minute simulated step times, wide enough
// for straggle factors on any catalog device.
var stepBuckets = obs.ExpBuckets(1e-6, 4, 14)

// newDistObs resolves the run's instruments. With a nil handle every field
// resolves to a nil instrument and all updates are no-op branches.
func newDistObs(h *obs.Handle, workers int) *distObs {
	d := &distObs{
		h:               h,
		retrans:         h.Counter("distributed.retransmissions"),
		drops:           h.Counter("distributed.dropped_messages"),
		corrupts:        h.Counter("distributed.corruptions"),
		timeouts:        h.Counter("distributed.timeouts"),
		crashes:         h.Counter("distributed.crashes"),
		rejoins:         h.Counter("distributed.rejoins"),
		restores:        h.Counter("distributed.restores"),
		snapshots:       h.Counter("distributed.snapshots"),
		stragglerRounds: h.Counter("distributed.straggler_rounds"),
		excludedSlow:    h.Counter("distributed.excluded_slow"),
		numFaults:       h.Counter("distributed.numerical_faults"),
		guardSkipped:    h.Counter("distributed.guard_skipped"),
		guardRestores:   h.Counter("distributed.guard_restores"),
		byzAttacks:      h.Counter("distributed.byzantine_attacks"),
		quarExcluded:    h.Counter("distributed.quarantine_excluded"),
		quarantines:     h.Counter("distributed.quarantines"),
		readmissions:    h.Counter("distributed.readmissions"),
		rounds:          h.Counter("distributed.averaging_rounds"),
		steps:           h.Counter("distributed.steps"),
		bytesSent:       h.Counter("distributed.bytes_sent"),
		snapshotBytes:   h.Counter("distributed.snapshot_bytes"),
		linkDropped:     h.Counter("distributed.link_dropped"),
		linkSlowHops:    h.Counter("distributed.link_slow_hops"),
		linkExcluded:    h.Counter("distributed.link_excluded"),
		partRounds:      h.Counter("distributed.partitioned_rounds"),
		topoHeals:       h.Counter("distributed.topo_heals"),
		topoDegraded:    h.Counter("distributed.topo_degraded"),
		epochs:          h.Counter("distributed.membership_epochs"),
		joins:           h.Counter("distributed.joins"),
		leaves:          h.Counter("distributed.leaves"),
		catchups:        h.Counter("distributed.catchups"),
		commRounds:      h.Counter("distributed.comm_rounds"),
		simSeconds:      h.Gauge("distributed.sim_seconds"),
		aggSeconds:      h.Gauge("distributed.agg_seconds"),
		commSeconds:     h.Gauge("distributed.comm_seconds"),
	}
	d.stepSeconds = make([]*obs.Histogram, workers)
	for w := range d.stepSeconds {
		if h != nil {
			d.stepSeconds[w] = h.Histogram(fmt.Sprintf("distributed.worker%02d.step_seconds", w), stepBuckets)
		}
	}
	return d
}

// span opens a root span on the run's tracer (nil-safe).
func (d *distObs) span(name string, startS float64) *obs.Span {
	return d.h.Start(name, startS)
}

// observeSteps records each worker's simulated compute seconds for the
// round, in worker-id order so the histogram sums are bit-deterministic.
func (d *distObs) observeSteps(results []gradResult) {
	for _, r := range results {
		d.stepSeconds[r.wk.id].Observe(r.seconds)
	}
}
