package distributed

import (
	"math"
	"testing"

	"dlsys/internal/fault"
	"dlsys/internal/guard"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// numericalCfg configures sync training under numerical faults (poisoned
// batches and shuffled labels) with the given guard mode.
func numericalCfg(rate float64, mode guard.Mode) Config {
	return Config{
		Workers: 4, Arch: distArch, Epochs: 12, BatchSize: 16, LR: 0.1,
		AveragePeriod: 1, Fault: fault.NumericalRate(33, rate),
		Guard: &guard.Policy{Mode: mode},
	}
}

// Unguarded (Observe) training under NaN batch corruption must end with a
// poisoned model, while the same scenario with the guard enforcing ends
// finite and accurate — the aggregation screen is doing real work.
func TestGuardScreensPoisonedGradients(t *testing.T) {
	train, test := distDataset(31)
	y := nn.OneHot(train.Labels, 3)

	netObs, statsObs := mustTrain(t, 90, train.X, y, numericalCfg(0.15, guard.Observe))
	if statsObs.NumericalFaults == 0 {
		t.Fatal("injector fired no numerical faults at rate 0.15")
	}
	if tensor.AllFinite(netObs.ParamVector()) {
		t.Fatal("observe-mode training should have been poisoned by NaN batches")
	}

	netEnf, statsEnf := mustTrain(t, 90, train.X, y, numericalCfg(0.15, guard.Enforce))
	if statsEnf.GuardSkipped == 0 {
		t.Fatal("guard skipped nothing despite injected faults")
	}
	if !tensor.AllFinite(netEnf.ParamVector()) {
		t.Fatal("guarded training left non-finite parameters")
	}
	if acc := netEnf.Accuracy(test.X, test.Labels); acc < 0.8 {
		t.Fatalf("guarded accuracy %.3f under numerical faults", acc)
	}
}

// The guarded run must be bit-reproducible: same seeds → same counters and
// same final parameters, despite concurrent workers and injected faults.
func TestGuardedRunDeterministic(t *testing.T) {
	train, _ := distDataset(32)
	y := nn.OneHot(train.Labels, 3)
	netA, statsA := mustTrain(t, 91, train.X, y, numericalCfg(0.2, guard.Enforce))
	netB, statsB := mustTrain(t, 91, train.X, y, numericalCfg(0.2, guard.Enforce))
	if statsA.NumericalFaults != statsB.NumericalFaults || statsA.GuardSkipped != statsB.GuardSkipped {
		t.Fatalf("guard counters differ across identical runs: %+v vs %+v", statsA, statsB)
	}
	a, b := netA.ParamVector(), netB.ParamVector()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("guarded params differ at %d", i)
		}
	}
}

// Local SGD regime: poisoned local updates are healed by snapshot restore.
func TestLocalSGDGuardRestoresPoisonedWorkers(t *testing.T) {
	train, _ := distDataset(33)
	y := nn.OneHot(train.Labels, 3)
	cfg := numericalCfg(0.2, guard.Enforce)
	cfg.AveragePeriod = 4
	cfg.SnapshotPeriod = 1
	net, stats := mustTrain(t, 92, train.X, y, cfg)
	if stats.NumericalFaults == 0 {
		t.Fatal("no numerical faults fired")
	}
	if stats.GuardRestores == 0 {
		t.Fatal("no poisoned worker was restored in the Local SGD regime")
	}
	if !tensor.AllFinite(net.ParamVector()) {
		t.Fatal("guarded Local SGD left non-finite parameters")
	}
}
