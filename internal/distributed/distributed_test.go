package distributed

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

func distDataset(seed int64) (*data.Dataset, *data.Dataset) {
	rng := rand.New(rand.NewSource(seed))
	ds := data.GaussianMixture(rng, 640, 5, 3, 3.5)
	return ds.Split(rng, 0.8)
}

var distArch = nn.MLPConfig{In: 5, Hidden: []int{24}, Out: 3}

func mustTrain(t *testing.T, seed int64, x, y *tensor.Tensor, cfg Config) (*nn.Network, Stats) {
	t.Helper()
	net, stats, err := Train(seed, x, y, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return net, stats
}

func TestSyncSGDConverges(t *testing.T) {
	train, test := distDataset(1)
	y := nn.OneHot(train.Labels, 3)
	net, stats := mustTrain(t, 10, train.X, y, Config{
		Workers: 4, Arch: distArch, Epochs: 20, BatchSize: 16, LR: 0.1, AveragePeriod: 1,
	})
	if acc := net.Accuracy(test.X, test.Labels); acc < 0.85 {
		t.Fatalf("sync SGD accuracy %.3f", acc)
	}
	if stats.BytesSent == 0 || stats.AveragingRound == 0 {
		t.Fatal("no communication recorded")
	}
	if stats.Retransmissions != 0 || stats.Crashes != 0 || stats.Restores != 0 {
		t.Fatalf("fault-free run recorded faults: %+v", stats)
	}
}

func TestConfigErrors(t *testing.T) {
	train, _ := distDataset(1)
	y := nn.OneHot(train.Labels, 3)
	if _, _, err := Train(1, train.X, y, Config{Workers: 0, Arch: distArch, Epochs: 1, BatchSize: 16, LR: 0.1}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, _, err := Train(1, train.X, y, Config{Workers: 2, Arch: distArch, Epochs: 1, BatchSize: 0, LR: 0.1}); err == nil {
		t.Fatal("zero batch size accepted")
	}
	if _, _, err := Train(1, train.X, y, Config{Workers: 2, Arch: distArch, Epochs: -1, BatchSize: 16, LR: 0.1}); err == nil {
		t.Fatal("negative epochs accepted")
	}
	if _, _, err := Train(1, train.X, y, Config{Workers: 2, Arch: distArch, Epochs: 1, BatchSize: 16, LR: 0.1, DropSlowestK: 2}); err == nil {
		t.Fatal("DropSlowestK >= workers accepted")
	}
	if _, _, err := Train(1, train.X, y, Config{Workers: 2, Arch: distArch, Epochs: 1, BatchSize: 16, LR: 0.1,
		Fault: fault.Config{DropProb: 1.5}}); err == nil {
		t.Fatal("out-of-range fault probability accepted")
	}
}

func TestLocalSGDReducesBytesMonotonically(t *testing.T) {
	train, _ := distDataset(2)
	y := nn.OneHot(train.Labels, 3)
	var prev int64 = math.MaxInt64
	for _, h := range []int{2, 8, 32} {
		_, stats := mustTrain(t, 20, train.X, y, Config{
			Workers: 4, Arch: distArch, Epochs: 10, BatchSize: 16, LR: 0.1, AveragePeriod: h,
		})
		if stats.BytesSent >= prev {
			t.Fatalf("H=%d bytes %d did not shrink (prev %d)", h, stats.BytesSent, prev)
		}
		prev = stats.BytesSent
	}
}

func TestLocalSGDStillLearnsAtLargeH(t *testing.T) {
	train, test := distDataset(3)
	y := nn.OneHot(train.Labels, 3)
	net, _ := mustTrain(t, 30, train.X, y, Config{
		Workers: 4, Arch: distArch, Epochs: 20, BatchSize: 16, LR: 0.1, AveragePeriod: 16,
	})
	if acc := net.Accuracy(test.X, test.Labels); acc < 0.8 {
		t.Fatalf("local SGD H=16 accuracy %.3f", acc)
	}
}

func TestTopKSparsificationSavesBytes(t *testing.T) {
	train, test := distDataset(4)
	y := nn.OneHot(train.Labels, 3)
	_, dense := mustTrain(t, 40, train.X, y, Config{
		Workers: 4, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1, AveragePeriod: 1, TopK: 1,
	})
	netS, sparse := mustTrain(t, 40, train.X, y, Config{
		Workers: 4, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1, AveragePeriod: 1, TopK: 0.05,
	})
	if sparse.BytesSent >= dense.BytesSent/3 {
		t.Fatalf("top-5%% bytes %d vs dense %d: insufficient saving", sparse.BytesSent, dense.BytesSent)
	}
	if acc := netS.Accuracy(test.X, test.Labels); acc < 0.8 {
		t.Fatalf("top-k accuracy %.3f (error feedback should preserve convergence)", acc)
	}
}

func TestQuantizedGradientsSaveBytesAndConverge(t *testing.T) {
	train, test := distDataset(5)
	y := nn.OneHot(train.Labels, 3)
	_, dense := mustTrain(t, 50, train.X, y, Config{
		Workers: 4, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1, AveragePeriod: 1,
	})
	netQ, quant := mustTrain(t, 50, train.X, y, Config{
		Workers: 4, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1, AveragePeriod: 1, QuantBits: 8,
	})
	if quant.BytesSent >= dense.BytesSent {
		t.Fatalf("8-bit gradients should cut bytes: %d vs %d", quant.BytesSent, dense.BytesSent)
	}
	if acc := netQ.Accuracy(test.X, test.Labels); acc < 0.85 {
		t.Fatalf("quantized-gradient accuracy %.3f", acc)
	}
}

// With H=1, no compression, and plain SGD, Local SGD's parameter averaging
// equals sequential big-batch SGD — exact simulator validation.
func TestSyncEqualsSequentialBigBatch(t *testing.T) {
	train, _ := distDataset(6)
	n := train.N() - train.N()%4 // divisible by workers so shards are equal
	tr4 := train.Subset(seqIdx(n))
	y := nn.OneHot(tr4.Labels, 3)

	workers := 4
	perWorker := 8
	net, _ := mustTrain(t, 60, tr4.X, y, Config{
		Workers: workers, Arch: distArch, Epochs: 1, BatchSize: perWorker, LR: 0.05, AveragePeriod: 1,
	})

	// Sequential reference: same init (seed 60), batches formed by
	// concatenating the workers' round-robin shards, big-batch SGD.
	ref := nn.NewMLP(rand.New(rand.NewSource(60)), distArch)
	reftr := nn.NewTrainer(ref, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(0.05), rand.New(rand.NewSource(999)))
	shards := shardIndices(n, workers)
	// Shuffle each shard exactly as Train did: every worker owns an RNG
	// derived from (seed, workerID) and uses it only for its own shard.
	for w := range shards {
		wrng := rand.New(rand.NewSource(fault.WorkerSeed(60, w)))
		wrng.Shuffle(len(shards[w]), func(i, j int) {
			shards[w][i], shards[w][j] = shards[w][j], shards[w][i]
		})
	}
	stepsPerEpoch := (len(shards[0]) + perWorker - 1) / perWorker
	for step := 0; step < stepsPerEpoch; step++ {
		var idx []int
		for w := 0; w < workers; w++ {
			start := (step * perWorker) % len(shards[w])
			end := start + perWorker
			if end > len(shards[w]) {
				end = len(shards[w])
			}
			idx = append(idx, shards[w][start:end]...)
		}
		bx, by := nn.GatherBatch(tr4.X, y, idx)
		reftr.Step(bx, by)
	}
	a := net.ParamVector()
	b := ref.ParamVector()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("sync SGD diverges from big-batch SGD at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func seqIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestStepTimeModelPriorityFaster(t *testing.T) {
	arch := nn.MLPConfig{In: 256, Hidden: []int{512, 512, 512}, Out: 10}
	fifo := StepTimeModel(arch, device.EdgeDevice, false)
	prio := StepTimeModel(arch, device.EdgeDevice, true)
	if prio >= fifo {
		t.Fatalf("priority (%.6fs) should beat FIFO (%.6fs)", prio, fifo)
	}
	// Priority can never beat pure compute or pure transfer alone.
	if prio <= 0 {
		t.Fatal("non-positive step time")
	}
}

func TestCompressGradientErrorFeedback(t *testing.T) {
	g := []float64{10, 0.1, 0.2, -9, 0.05}
	res := make([]float64, 5)
	compressGradient(g, res, 0.4, 0) // keep top 2 of 5
	if g[0] != 10 || g[3] != -9 {
		t.Fatalf("top-k should keep the largest: %v", g)
	}
	if g[1] != 0 || g[2] != 0 || g[4] != 0 {
		t.Fatalf("dropped coords should be zero: %v", g)
	}
	if res[1] != 0.1 || res[2] != 0.2 || res[4] != 0.05 {
		t.Fatalf("residual should hold dropped values: %v", res)
	}
	// Next round: residual is added back.
	g2 := []float64{0, 0, 0, 0, 0}
	compressGradient(g2, res, 1, 0)
	if g2[1] != 0.1 || g2[2] != 0.2 {
		t.Fatalf("error feedback not applied: %v", g2)
	}
}

func TestQuantizeInPlaceBounds(t *testing.T) {
	g := []float64{1.0, -0.5, 0.25, 0}
	orig := append([]float64(nil), g...)
	quantizeInPlace(g, 8)
	step := 1.0 / 127
	for i := range g {
		if math.Abs(g[i]-orig[i]) > step/2+1e-12 {
			t.Fatalf("quantization error too large at %d: %g vs %g", i, g[i], orig[i])
		}
	}
}

func TestErrorFeedbackMattersAtAggressiveTopK(t *testing.T) {
	train, test := distDataset(7)
	y := nn.OneHot(train.Labels, 3)
	run := func(noEF bool) float64 {
		net, _ := mustTrain(t, 70, train.X, y, Config{
			Workers: 4, Arch: distArch, Epochs: 15, BatchSize: 16, LR: 0.1,
			AveragePeriod: 1, TopK: 0.01, NoErrorFeedback: noEF,
		})
		return net.Accuracy(test.X, test.Labels)
	}
	withEF := run(false)
	withoutEF := run(true)
	t.Logf("top-1%%: with error feedback %.3f, without %.3f", withEF, withoutEF)
	if withEF < withoutEF {
		t.Fatalf("error feedback should not hurt: %.3f vs %.3f", withEF, withoutEF)
	}
}

func TestCompressGradientNilResidual(t *testing.T) {
	g := []float64{10, 0.1, 0.2, -9, 0.05}
	compressGradient(g, nil, 0.4, 0)
	if g[0] != 10 || g[3] != -9 || g[1] != 0 {
		t.Fatalf("nil-residual compression wrong: %v", g)
	}
}
