// Package distributed simulates data-parallel distributed training in a
// single process, reproducing the communication-efficiency techniques of
// Part 1 of the tutorial (§2.1): synchronous gradient averaging, Local SGD
// (average parameters every H steps), top-k gradient sparsification with
// error feedback, low-bit gradient quantization, and priority-based
// parameter propagation. Worker replicas are exact and deterministic; the
// network is replaced by byte accounting plus the analytic link model in
// internal/device, which preserves the communication/accuracy tradeoffs the
// real systems exhibit.
//
// The simulator is fault-tolerant: an internal/fault injector can crash
// workers (they rejoin from CRC-checked snapshots, internal/checkpoint),
// slow them down (mitigated by drop-slowest-k a.k.a. backup-worker
// aggregation), and drop or corrupt messages (survived by retransmission
// with exponential backoff). Every failure scenario derives from the fault
// seed, so runs are bit-reproducible, faults and all. Workers compute in
// parallel goroutines with per-worker RNG streams, so execution order
// cannot perturb results.
package distributed

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"dlsys/internal/checkpoint"
	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/guard"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/robust"
	"dlsys/internal/sim"
	"dlsys/internal/tensor"
)

// Config controls a simulated distributed training run.
type Config struct {
	Workers   int
	Arch      nn.MLPConfig
	Epochs    int     // passes over the full (sharded) dataset
	BatchSize int     // per-worker batch size
	LR        float64 // plain SGD learning rate on every worker
	// AveragePeriod is H in Local SGD: parameters are averaged across
	// workers every H local steps. H=1 with no compression is exactly
	// synchronous gradient averaging.
	AveragePeriod int
	// TopK, in (0, 1], is the fraction of gradient entries communicated
	// per step (1 = dense). Only used when AveragePeriod == 1, i.e. the
	// gradient-exchange regime. Dropped coordinates accumulate in a local
	// error-feedback residual.
	TopK float64
	// QuantBits quantizes communicated gradient values to this many bits
	// (0 or 32 disables). Applied after top-k selection.
	QuantBits int
	// NoErrorFeedback disables the error-feedback residual: coordinates
	// dropped by top-k are discarded instead of accumulated for the next
	// round. Exists for the ablation showing why error feedback matters.
	NoErrorFeedback bool

	// Fault configures the deterministic fault injector. The zero value is
	// a perfect world and reproduces the historical fault-free behaviour.
	Fault fault.Config
	// Device drives the simulated clock (compute and link times). Zero
	// value selects device.GPUSmall.
	Device device.Profile
	// MaxRetries bounds the send attempts per gradient/model upload within
	// one round (default 4); a sender that exhausts them times out and is
	// excluded from that round's average.
	MaxRetries int
	// RetryBackoffS is the base exponential-backoff delay, in simulated
	// seconds, inserted before each retransmission (default 1ms).
	RetryBackoffS float64
	// DropSlowestK enables straggler mitigation: each averaging round the
	// k slowest workers are excluded from aggregation (the backup-worker
	// pattern — the round completes at the pace of the fastest survivors).
	// Excluded gradients fold into the error-feedback residual when it is
	// enabled, so their work is deferred rather than lost.
	DropSlowestK int
	// SnapshotPeriod is how many averaging rounds pass between global
	// model snapshots (default 5 when faults are enabled). Crashed workers
	// rejoin by restoring the newest snapshot whose CRC verifies.
	SnapshotPeriod int

	// Topology selects the collective communication pattern for averaging
	// rounds. The zero value keeps the historical parameter-server star
	// bit-for-bit; the explicit Topo* collectives price per-hop costs with
	// device.TransferTime on the simulated clock, heal around injected
	// link faults, and degrade to the all-to-all fallback when healing
	// would break the contribution quorum.
	Topology Topology
	// GroupSize is the intra-group ring width for TopoHier (default
	// ceil(sqrt(members)), minimum 2). Ignored by the other topologies.
	GroupSize int
	// Churn is the deterministic elastic-membership schedule: each event
	// makes one worker join or leave at the start of its round. Joiners
	// catch up from the newest CRC-valid snapshot. An empty schedule keeps
	// membership static (the historical behaviour).
	Churn []ChurnEvent
	// SnapshotKeep bounds the checkpoint ring: only the newest N global
	// snapshots stay resident (default 2), so large-n runs with periodic
	// snapshots hold bounded memory.
	SnapshotKeep int

	// Guard, when non-nil, screens worker contributions for numerical
	// faults before they reach the aggregate: a worker whose loss or
	// gradient is non-finite is excluded from the round (sync regime), and
	// a worker whose parameters went non-finite is restored from the
	// newest snapshot (Local SGD regime). With guard.Observe the faults
	// are counted but allowed through — the unguarded baseline.
	Guard *guard.Policy

	// Obs, when non-nil, receives live metrics (counters mirroring every
	// Stats field, per-worker step-latency histograms) and sync-round spans
	// stamped from the simulated clock. Nil disables instrumentation at
	// near-zero cost.
	Obs *obs.Handle

	// Aggregator combines worker contributions each averaging round:
	// gradients in the synchronous regime, parameter vectors under Local
	// SGD. Nil selects the plain mean and reproduces the historical
	// behaviour bit-for-bit (no aggregation cost is charged to the
	// simulated clock). A non-nil aggregator — robust.CoordMedian,
	// robust.TrimmedMean, robust.Krum, robust.NormClip, or robust.Mean as
	// the accounted baseline — additionally charges its FLOPs cost model
	// as simulated aggregation time and emits an "aggregate" span.
	Aggregator robust.Aggregator
	// Reputation, when non-nil, enables the per-worker reputation tracker:
	// an EMA of each worker's distance to the aggregate. Persistent
	// offenders are quarantined (excluded from aggregation, still
	// receiving updates) and readmitted after a probation window, with
	// every transition recorded in the replay-fingerprinted Stats ledger.
	Reputation *robust.ReputationConfig

	// Kernel, when non-nil, is the shared simulation kernel the run takes
	// its clock from, letting training compose with other kernel-driven
	// components (the serving fleet, scheduled fault windows) on one
	// timeline. Nil creates a private kernel and reproduces the historical
	// standalone behaviour bit-for-bit.
	Kernel *sim.Kernel
}

// Stats reports what a run cost and how it progressed.
type Stats struct {
	BytesSent      int64     // total worker→server + server→worker traffic
	AveragingRound int       // parameter/gradient exchanges performed
	Steps          int       // per-worker optimizer steps
	EpochLoss      []float64 // mean worker-0 loss per epoch

	// Reliability counters (all zero in a fault-free run).
	Retransmissions int     // message attempts beyond the first
	DroppedMessages int     // attempts lost in flight
	Corruptions     int     // attempts rejected by the receiver's CRC
	Timeouts        int     // uploads abandoned after MaxRetries attempts
	Crashes         int     // worker crash events
	Rejoins         int     // workers that came back after a crash
	Restores        int     // snapshot restores performed on rejoin
	Snapshots       int     // global snapshots taken
	SnapshotBytes   int64   // bytes written as snapshots
	StragglerRounds int     // rounds where >=1 participant straggled
	ExcludedSlow    int     // worker-rounds excluded by DropSlowestK
	SimSeconds      float64 // simulated wall-clock on Config.Device
	AggSeconds      float64 // simulated time spent in the (explicit) aggregator

	// Topology counters (all zero under the default parameter-server star
	// with static membership).
	LinkDropped       int     // hop attempts lost to link faults
	LinkSlowHops      int     // hops priced over a degraded (slowed) link
	LinkExcluded      int     // member-rounds a link failure or partition excluded from contributing
	PartitionedRounds int     // rounds in which an active partition severed >=1 member
	TopoHeals         int     // successful reroutes around dead links or a partitioned side
	TopoDegraded      int     // rounds degraded to the all-to-all fallback to preserve quorum
	MembershipEpochs  int     // distinct member sets the topology was (re)built for
	Joins             int     // elastic-membership joins executed
	Leaves            int     // elastic-membership leaves executed
	CatchUps          int     // joiners that caught up from a CRC-valid snapshot
	CommRounds        int     // collective exchanges executed
	CommSeconds       float64 // simulated time spent inside collective exchanges

	// Numerical-fault counters (all zero without numerical fault config).
	NumericalFaults int // batches poisoned / labels shuffled by the injector
	GuardSkipped    int // worker contributions excluded by the guard
	GuardRestores   int // worker models rolled back after poisoned updates

	// Byzantine counters (all zero without adversarial fault config).
	ByzantineAttacks   int // poisoned uploads injected by adversarial workers
	QuarantineExcluded int // worker-rounds excluded while quarantined
	Quarantines        int // quarantine events recorded in the ledger
	Readmissions       int // probation expiries readmitting workers
	// Quarantine is the replay-fingerprinted quarantine event ledger (nil
	// unless Config.Reputation is set).
	Quarantine *robust.Ledger
}

const wireBytesPerFloat = 4 // gradients/parameters travel as float32

// Train runs the configured algorithm over x/y and returns the final
// (consensus) model plus stats. Training is deterministic for a given seed
// and fault seed, regardless of worker execution order. It is the
// standalone wrapper over the kernel-driven Job API: build the job, start
// it, drain the kernel, collect the result. With a shared Config.Kernel,
// draining runs every component's pending events, so composed experiments
// use NewJob/Start/Result directly instead.
func Train(seed int64, x, y *tensor.Tensor, cfg Config) (*nn.Network, Stats, error) {
	j, err := NewJob(seed, x, y, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	j.Start()
	j.k.Run()
	return j.Result()
}

type worker struct {
	id       int
	net      *nn.Network
	trainer  *nn.Trainer
	rng      *rand.Rand // per-worker stream: batch shuffles only
	shard    []int
	residual []float64 // error-feedback accumulator for dropped coordinates
	downTo   int       // round before which the worker is down (0 = up)
	absent   bool      // elastically left (or not yet joined) via the churn schedule
	lastLoss float64
}

func (w *worker) nextBatch(x, y *tensor.Tensor, step, bs int) (*tensor.Tensor, *tensor.Tensor) {
	start := (step * bs) % len(w.shard)
	end := start + bs
	if end > len(w.shard) {
		end = len(w.shard)
	}
	return nn.GatherBatch(x, y, w.shard[start:end])
}

func activeLoss(w *worker) float64 { return w.lastLoss }

// liveWorkers applies crash and rejoin transitions for the round and
// returns the up workers in id order.
func liveWorkers(workers []*worker, inj *fault.Injector, store *checkpoint.Store, round int, stats *Stats, ins *distObs) []*worker {
	var active []*worker
	for _, wk := range workers {
		if wk.absent {
			continue // elastically departed (or not yet joined)
		}
		if wk.downTo > round {
			continue // still down
		}
		if wk.downTo > 0 {
			// Rejoin: restore the newest verifiable snapshot. A corrupted
			// newer snapshot is detected by its CRC and skipped.
			if _, skipped, err := store.Restore(wk.net); err == nil {
				stats.Restores++
				stats.Corruptions += skipped
				ins.restores.Inc()
				ins.corrupts.Add(int64(skipped))
			}
			stats.Rejoins++
			ins.rejoins.Inc()
			wk.downTo = 0
			for i := range wk.residual {
				wk.residual[i] = 0 // crash wiped worker memory
			}
		}
		if inj.Crashes(wk.id, round) {
			stats.Crashes++
			ins.crashes.Inc()
			wk.downTo = round + inj.RestartDelay()
			continue
		}
		active = append(active, wk)
	}
	return active
}

// gradResult is one worker's contribution to a synchronous round.
type gradResult struct {
	wk        *worker
	loss      float64
	grad      []float64
	seconds   float64 // simulated compute time incl. straggle factor
	injected  int     // numerical faults injected into this worker's batch
	poisoned  bool    // loss or gradient is non-finite
	byzantine bool    // gradient adversarially corrupted (finite, so it
	// slips past the guard — only robust aggregation defends)
}

// computeGrads runs every active worker's forward/backward in parallel
// goroutines. Determinism holds because workers share no mutable state and
// results are consumed in worker-id order.
func computeGrads(active []*worker, x, y *tensor.Tensor, cfg Config, prof device.Profile, inj *fault.Injector, step, round int, flopsPerExample int64, localStep bool) []gradResult {
	results := make([]gradResult, len(active))
	var wg sync.WaitGroup
	for i, wk := range active {
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			bx, by := wk.nextBatch(x, y, step, cfg.BatchSize)
			r := gradResult{wk: wk}
			// Numerical fault injection: the draws are keyed by
			// (worker, round), so concurrent execution order cannot
			// change which batches get poisoned.
			if inj.CorruptsBatch(wk.id, round) {
				inj.CorruptBatchValues(bx.Data, wk.id, round)
				r.injected++
			}
			if inj.LabelNoise(wk.id, round) {
				inj.ShuffleLabels(by.Data, by.Dim(0), by.Dim(1), wk.id, round)
				r.injected++
			}
			// Colluding workers poison their batch labels with a shared
			// rotation before computing, so the coalition's gradients all
			// push the same wrong way.
			if inj.ColludesBatch(wk.id, round) {
				inj.ColludeShuffleLabels(by.Data, by.Dim(0), by.Dim(1), round)
			}
			var loss float64
			if localStep {
				loss = wk.trainer.Step(bx, by)
			} else {
				loss = wk.trainer.ComputeGrad(bx, by)
			}
			wk.lastLoss = loss
			r.loss = loss
			if !localStep {
				r.grad = wk.net.GradVector()
				// Byzantine corruption happens on the upload, after the
				// honest local computation; the result stays finite.
				r.byzantine = inj.CorruptGradient(r.grad, wk.id, round)
				r.poisoned = math.IsNaN(loss) || math.IsInf(loss, 0) || !tensor.AllFinite(r.grad)
			}
			r.seconds = prof.ComputeTime(flopsPerExample*int64(bx.Dim(0)), 0.5) * inj.StraggleFactor(wk.id, round)
			results[i] = r
		}(i, wk)
	}
	wg.Wait()
	return results
}

// syncRound executes one synchronous gradient-exchange round with fault
// handling. Returns worker-ordered first participant's loss and whether the
// round produced an update.
func syncRound(active []*worker, x, y *tensor.Tensor, cfg Config, net *transport, clk *jobClock, step, round, modelSize int, flopsPerExample int64, agg robust.Aggregator, chargeAgg bool, rep *robust.Reputation, stats *Stats, span *obs.Span) (float64, bool) {
	roundStart := clk.now()
	rep.BeginRound(round)
	results := computeGrads(active, x, y, cfg, net.prof, net.inj, step, round, flopsPerExample, false)
	net.obs.observeSteps(results)
	included := screenRound(results, cfg, net, flopsPerExample, rep, stats)

	// Each included worker compresses and uploads its gradient; lost or
	// corrupted transmissions are retried with exponential backoff until
	// the per-round retry budget runs out.
	avgGrad := make([]float64, modelSize)
	grads := make([][]float64, 0, len(included))
	ids := make([]int, 0, len(included))
	var computeS, uplinkS float64
	for _, r := range included {
		if r.seconds > computeS {
			computeS = r.seconds
		}
		residual := r.wk.residual
		if cfg.NoErrorFeedback {
			residual = nil
		}
		sent := compressGradient(r.grad, residual, cfg.TopK, cfg.QuantBits)
		ok, elapsed := net.send(r.wk.id, 2*round, sent, stats)
		if elapsed > uplinkS {
			uplinkS = elapsed
		}
		if !ok {
			stats.Timeouts++
			net.obs.timeouts.Inc()
			if residual != nil {
				// The compressed gradient never arrived; park it locally.
				for i, g := range r.grad {
					residual[i] += g
				}
			}
			continue
		}
		grads = append(grads, r.grad)
		ids = append(ids, r.wk.id)
	}
	clk.advance(computeS + uplinkS)
	computeSpan := span.Child("compute", roundStart)
	computeSpan.End(roundStart + computeS)
	if len(grads) == 0 {
		return 0, false // every upload timed out: no update this round
	}
	// Robust aggregation of the delivered gradients (worker-id order). An
	// explicitly configured aggregator is charged its FLOPs cost on the
	// simulated clock — robustness costs time, and X9 measures it.
	if chargeAgg {
		aggS := net.prof.ComputeTime(agg.FLOPs(len(grads), modelSize), 0.5)
		aggSpan := span.Child("aggregate", roundStart+computeS+uplinkS)
		aggSpan.End(roundStart + computeS + uplinkS + aggS)
		clk.advance(aggS)
		stats.AggSeconds += aggS
	}
	agg.Aggregate(avgGrad, grads)
	observeDistances(rep, ids, grads, avgGrad)

	// Broadcast of the averaged (already compressed) update. The server
	// persists until every live worker has the round's update.
	bb := broadcastBytes(avgGrad, cfg, len(active))
	stats.BytesSent += bb
	net.obs.bytesSent.Add(bb)
	var downlinkS float64
	for _, wk := range active {
		_, elapsed := net.broadcast(wk.id, 2*round+1, perWorkerBroadcastBytes(avgGrad, cfg), stats)
		if elapsed > downlinkS {
			downlinkS = elapsed
		}
	}
	clk.advance(downlinkS)
	commSpan := span.Child("comm", roundStart+computeS)
	commSpan.End(roundStart + computeS + uplinkS + downlinkS)
	for _, wk := range active {
		wk.net.SetGradVector(avgGrad)
		wk.trainer.Opt.Step(wk.net.Params())
		wk.net.PostStep()
	}
	stats.AveragingRound++
	net.obs.rounds.Inc()
	return results[0].loss, true
}

// screenRound applies the per-round contribution screens in their
// historical order — straggler and numerical-fault tallies, the numerical
// guard, reputation quarantine, then drop-slowest-k — and returns the
// contributions admitted to aggregation. Shared by the parameter-server
// star and the collective-topology sync paths.
func screenRound(results []gradResult, cfg Config, net *transport, flopsPerExample int64, rep *robust.Reputation, stats *Stats) []gradResult {
	straggled := false
	for _, r := range results {
		stats.NumericalFaults += r.injected
		net.obs.numFaults.Add(int64(r.injected))
		if r.byzantine {
			stats.ByzantineAttacks++
			net.obs.byzAttacks.Inc()
		}
		if r.seconds > net.prof.ComputeTime(flopsPerExample*int64(cfg.BatchSize), 0.5)*1.5 {
			straggled = true
		}
	}
	if straggled {
		stats.StragglerRounds++
		net.obs.stragglerRounds.Inc()
	}

	// Numerical guard: a poisoned contribution (non-finite loss or
	// gradient) is excluded before aggregation — one NaN in the average
	// poisons every replica. The poisoned gradient is NOT folded into the
	// residual: deferring it would just re-inject the poison later.
	screened := results
	if cfg.Guard != nil && cfg.Guard.Mode == guard.Enforce {
		kept := make([]gradResult, 0, len(results))
		for _, r := range results {
			if r.poisoned {
				stats.GuardSkipped++
				net.obs.guardSkipped.Inc()
				continue
			}
			kept = append(kept, r)
		}
		screened = kept
	}

	// Quarantine: workers the reputation tracker has excluded do not
	// contribute this round. Their gradients are NOT folded into the
	// residual — a quarantined gradient is suspect by definition, and
	// deferring it would re-inject the poison on readmission.
	if rep != nil {
		kept := make([]gradResult, 0, len(screened))
		for _, r := range screened {
			if rep.Quarantined(r.wk.id) {
				stats.QuarantineExcluded++
				net.obs.quarExcluded.Inc()
				continue
			}
			kept = append(kept, r)
		}
		screened = kept
	}

	// Straggler mitigation: the aggregation round closes after the fastest
	// len(screened)-k workers report — the k slowest are cut out.
	included := screened
	if k := cfg.DropSlowestK; k > 0 && len(screened) > k {
		order := make([]int, len(screened))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ra, rb := screened[order[a]], screened[order[b]]
			if ra.seconds != rb.seconds {
				return ra.seconds < rb.seconds
			}
			return ra.wk.id < rb.wk.id
		})
		included = make([]gradResult, 0, len(screened)-k)
		for _, oi := range order[:len(screened)-k] {
			included = append(included, screened[oi])
		}
		sort.Slice(included, func(a, b int) bool { return included[a].wk.id < included[b].wk.id })
		for _, oi := range order[len(screened)-k:] {
			r := screened[oi]
			stats.ExcludedSlow++
			net.obs.excludedSlow.Inc()
			if !cfg.NoErrorFeedback {
				// Defer the dropped worker's gradient instead of losing it.
				for i, g := range r.grad {
					r.wk.residual[i] += g
				}
			}
		}
	}

	return included
}

// syncRoundCollective is syncRound over an explicit collective topology:
// instead of the parameter-server star, the admitted gradients are
// reduce-broadcast across cfg.Topology, with per-hop costs priced by
// device.TransferTime and link faults retried, healed around, or degraded
// to the all-to-all fallback by the transport. A member the exchange
// excluded (dead links, partition) folds its gradient into the
// error-feedback residual — its work is deferred like a timed-out star
// upload — but still receives the aggregate: the collective's broadcast
// sweep keeps every active replica in lockstep.
func syncRoundCollective(active []*worker, x, y *tensor.Tensor, cfg Config, net *transport, clk *jobClock, step, round, modelSize int, flopsPerExample int64, agg robust.Aggregator, chargeAgg bool, rep *robust.Reputation, stats *Stats, span *obs.Span) (float64, bool) {
	roundStart := clk.now()
	rep.BeginRound(round)
	results := computeGrads(active, x, y, cfg, net.prof, net.inj, step, round, flopsPerExample, false)
	net.obs.observeSteps(results)
	included := screenRound(results, cfg, net, flopsPerExample, rep, stats)

	// Compress every admitted gradient first: the collective moves one
	// uniform payload (segmented by the topology), sized by the largest
	// compressed contribution.
	var computeS float64
	var payload int64
	for _, r := range included {
		if r.seconds > computeS {
			computeS = r.seconds
		}
		residual := r.wk.residual
		if cfg.NoErrorFeedback {
			residual = nil
		}
		if b := compressGradient(r.grad, residual, cfg.TopK, cfg.QuantBits); b > payload {
			payload = b
		}
	}
	members := make([]int, len(active))
	for i, wk := range active {
		members[i] = wk.id
	}
	excluded, commS, _ := net.exchange(cfg.Topology, members, payload, round, cfg.GroupSize, stats)
	stats.CommRounds++
	net.obs.commRounds.Inc()
	stats.CommSeconds += commS
	clk.advance(computeS + commS)
	computeSpan := span.Child("compute", roundStart)
	computeSpan.End(roundStart + computeS)
	commSpan := span.Child("comm", roundStart+computeS)
	commSpan.End(roundStart + computeS + commS)

	avgGrad := make([]float64, modelSize)
	grads := make([][]float64, 0, len(included))
	ids := make([]int, 0, len(included))
	for _, r := range included {
		if excluded[r.wk.id] {
			if !cfg.NoErrorFeedback {
				// The collective never carried this member's contribution;
				// park it locally like a timed-out upload.
				for i, g := range r.grad {
					r.wk.residual[i] += g
				}
			}
			continue
		}
		grads = append(grads, r.grad)
		ids = append(ids, r.wk.id)
	}
	if len(grads) == 0 {
		return 0, false // nothing survived the exchange: no update this round
	}
	if chargeAgg {
		aggS := net.prof.ComputeTime(agg.FLOPs(len(grads), modelSize), 0.5)
		aggSpan := span.Child("aggregate", roundStart+computeS+commS)
		aggSpan.End(roundStart + computeS + commS + aggS)
		clk.advance(aggS)
		stats.AggSeconds += aggS
	}
	agg.Aggregate(avgGrad, grads)
	observeDistances(rep, ids, grads, avgGrad)
	for _, wk := range active {
		wk.net.SetGradVector(avgGrad)
		wk.trainer.Opt.Step(wk.net.Params())
		wk.net.PostStep()
	}
	stats.AveragingRound++
	net.obs.rounds.Inc()
	return results[0].loss, true
}

// localRound executes one Local SGD step on every active worker in
// parallel and accounts its simulated compute time. Under an enforcing
// guard, a worker whose parameters went non-finite (it already applied a
// poisoned update locally) is rolled back to the newest verifiable global
// snapshot instead of shipping NaNs into the next average.
func localRound(active []*worker, x, y *tensor.Tensor, cfg Config, net *transport, clk *jobClock, store *checkpoint.Store, step, round int, flopsPerExample int64, stats *Stats) {
	results := computeGrads(active, x, y, cfg, net.prof, net.inj, step, round, flopsPerExample, true)
	net.obs.observeSteps(results)
	var computeS float64
	straggled := false
	for _, r := range results {
		stats.NumericalFaults += r.injected
		net.obs.numFaults.Add(int64(r.injected))
		if r.seconds > computeS {
			computeS = r.seconds
		}
		if r.seconds > net.prof.ComputeTime(flopsPerExample*int64(cfg.BatchSize), 0.5)*1.5 {
			straggled = true
		}
	}
	if straggled {
		stats.StragglerRounds++
		net.obs.stragglerRounds.Inc()
	}
	if cfg.Guard != nil && cfg.Guard.Mode == guard.Enforce {
		var buf []float64
		for _, r := range results {
			buf = r.wk.net.ParamVectorInto(buf)
			if !tensor.AllFinite(buf) {
				if _, _, err := store.Restore(r.wk.net); err == nil {
					stats.GuardRestores++
					net.obs.guardRestores.Inc()
				}
			}
		}
	}
	clk.advance(computeS)
}

// averageRound is Local SGD's model-averaging exchange with fault
// handling: every live worker ships its parameters up (with retries) and
// receives the aggregate back. Workers whose upload times out still
// receive the aggregate, which re-synchronises any post-crash drift;
// quarantined workers are excluded from contributing but receive it too,
// so a readmitted worker rejoins in sync (mirroring the crash-rejoin
// path). Byzantine workers corrupt their uploaded parameter vector.
func averageRound(active []*worker, cfg Config, net *transport, clk *jobClock, round, modelSize int, agg robust.Aggregator, chargeAgg bool, rep *robust.Reputation, stats *Stats) {
	rep.BeginRound(round)
	modelBytes := int64(modelSize) * wireBytesPerFloat
	avg := make([]float64, modelSize)
	vecs := make([][]float64, 0, len(active))
	ids := make([]int, 0, len(active))
	var uplinkS float64
	for _, wk := range active {
		if rep.Quarantined(wk.id) {
			stats.QuarantineExcluded++
			net.obs.quarExcluded.Inc()
			continue
		}
		ok, elapsed := net.send(wk.id, 2*round, modelBytes, stats)
		if elapsed > uplinkS {
			uplinkS = elapsed
		}
		if !ok {
			stats.Timeouts++
			net.obs.timeouts.Inc()
			continue
		}
		v := wk.net.ParamVectorInto(nil)
		if net.inj.CorruptGradient(v, wk.id, round) {
			stats.ByzantineAttacks++
			net.obs.byzAttacks.Inc()
		}
		vecs = append(vecs, v)
		ids = append(ids, wk.id)
	}
	clk.advance(uplinkS)
	if len(vecs) == 0 {
		return
	}
	if chargeAgg {
		aggS := net.prof.ComputeTime(agg.FLOPs(len(vecs), modelSize), 0.5)
		clk.advance(aggS)
		stats.AggSeconds += aggS
	}
	agg.Aggregate(avg, vecs)
	observeDistances(rep, ids, vecs, avg)
	var downlinkS float64
	for _, wk := range active {
		stats.BytesSent += modelBytes
		net.obs.bytesSent.Add(modelBytes)
		_, elapsed := net.broadcast(wk.id, 2*round+1, modelBytes, stats)
		if elapsed > downlinkS {
			downlinkS = elapsed
		}
		wk.net.SetParamVector(avg)
	}
	clk.advance(downlinkS)
	stats.AveragingRound++
	net.obs.rounds.Inc()
}

// averageRoundCollective is Local SGD's model-averaging exchange over an
// explicit collective topology: one reduce-broadcast of the full parameter
// vector replaces the star's upload/download pair. Members the exchange
// excluded (dead links, partition) contribute nothing this round but still
// receive the aggregate, like quarantined workers; Byzantine members
// corrupt the parameters they feed into the reduction.
func averageRoundCollective(active []*worker, cfg Config, net *transport, clk *jobClock, round, modelSize int, agg robust.Aggregator, chargeAgg bool, rep *robust.Reputation, stats *Stats) {
	rep.BeginRound(round)
	modelBytes := int64(modelSize) * wireBytesPerFloat
	members := make([]int, len(active))
	for i, wk := range active {
		members[i] = wk.id
	}
	excluded, commS, _ := net.exchange(cfg.Topology, members, modelBytes, round, cfg.GroupSize, stats)
	stats.CommRounds++
	net.obs.commRounds.Inc()
	stats.CommSeconds += commS
	clk.advance(commS)

	avg := make([]float64, modelSize)
	vecs := make([][]float64, 0, len(active))
	ids := make([]int, 0, len(active))
	for _, wk := range active {
		if rep.Quarantined(wk.id) {
			stats.QuarantineExcluded++
			net.obs.quarExcluded.Inc()
			continue
		}
		if excluded[wk.id] {
			continue
		}
		v := wk.net.ParamVectorInto(nil)
		if net.inj.CorruptGradient(v, wk.id, round) {
			stats.ByzantineAttacks++
			net.obs.byzAttacks.Inc()
		}
		vecs = append(vecs, v)
		ids = append(ids, wk.id)
	}
	if len(vecs) == 0 {
		return
	}
	if chargeAgg {
		aggS := net.prof.ComputeTime(agg.FLOPs(len(vecs), modelSize), 0.5)
		clk.advance(aggS)
		stats.AggSeconds += aggS
	}
	agg.Aggregate(avg, vecs)
	observeDistances(rep, ids, vecs, avg)
	for _, wk := range active {
		wk.net.SetParamVector(avg)
	}
	stats.AveragingRound++
	net.obs.rounds.Inc()
}

// observeDistances feeds the reputation tracker each contributor's
// Euclidean distance to the aggregate (ids in worker-id order, matching
// vecs). Nil-safe: without a tracker it is a no-op.
func observeDistances(rep *robust.Reputation, ids []int, vecs [][]float64, aggregate []float64) {
	if rep == nil || len(vecs) == 0 {
		return
	}
	dists := make([]float64, len(vecs))
	for i, v := range vecs {
		var s float64
		for j := range v {
			d := v[j] - aggregate[j]
			s += d * d
		}
		dists[i] = math.Sqrt(s)
	}
	rep.Observe(ids, dists)
}

// takeSnapshot captures the consensus model, possibly corrupting the
// stored payload (which a later Restore detects via CRC and skips).
func takeSnapshot(store *checkpoint.Store, inj *fault.Injector, step int, net *nn.Network, stats *Stats, ins *distObs) {
	snap := checkpoint.TakeSnapshot(step, net)
	if inj.Corrupts(-1, step, 0) {
		inj.CorruptPayload(snap.Payload, -1, step, 0)
	}
	store.Put(snap)
	stats.Snapshots++
	stats.SnapshotBytes += snap.Bytes()
	ins.snapshots.Inc()
	ins.snapshotBytes.Add(snap.Bytes())
}

// transport simulates the cluster links: per-attempt loss/corruption from
// the fault injector, retry with exponential backoff, byte accounting per
// attempt (retransmissions cost real bandwidth), and simulated seconds
// from the device profile.
type transport struct {
	inj        *fault.Injector
	prof       device.Profile
	maxRetries int
	backoffS   float64
	obs        *distObs // always non-nil; build with newDistObs (nil handle → no-ops)
}

func (t *transport) attemptTime(bytes int64) float64 {
	return t.prof.SendTime(bytes)
}

// send attempts a worker upload up to maxRetries times. Returns whether
// the message was delivered plus the simulated seconds spent.
func (t *transport) send(worker, msgKey int, bytes int64, stats *Stats) (bool, float64) {
	var elapsed float64
	for attempt := 0; attempt < t.maxRetries; attempt++ {
		if attempt > 0 {
			stats.Retransmissions++
			t.obs.retrans.Inc()
			elapsed += t.backoffS * float64(int64(1)<<(attempt-1))
		}
		stats.BytesSent += bytes
		t.obs.bytesSent.Add(bytes)
		elapsed += t.attemptTime(bytes)
		if t.inj.Corrupts(worker, msgKey, attempt) {
			stats.Corruptions++
			t.obs.corrupts.Inc()
			continue // receiver's CRC rejects the payload → retry
		}
		if t.inj.Drops(worker, msgKey, attempt) {
			stats.DroppedMessages++
			t.obs.drops.Inc()
			continue
		}
		return true, elapsed
	}
	return false, elapsed
}

// broadcast is the server→worker path. The server retries past the
// per-round budget (it persists across rounds), so delivery is guaranteed;
// the attempt cap is only a safeguard against pathological configs with
// loss probability ~1.
func (t *transport) broadcast(worker, msgKey int, bytes int64, stats *Stats) (bool, float64) {
	var elapsed float64
	const hardCap = 64
	for attempt := 0; attempt < hardCap; attempt++ {
		if attempt > 0 {
			stats.Retransmissions++
			t.obs.retrans.Inc()
			stats.BytesSent += bytes // each re-send crosses the link again
			t.obs.bytesSent.Add(bytes)
			backoff := attempt
			if backoff > 10 {
				backoff = 10
			}
			elapsed += t.backoffS * float64(int64(1)<<(backoff-1))
		}
		elapsed += t.attemptTime(bytes)
		if t.inj.Corrupts(worker, msgKey, attempt) {
			stats.Corruptions++
			t.obs.corrupts.Inc()
			continue
		}
		if t.inj.Drops(worker, msgKey, attempt) {
			stats.DroppedMessages++
			t.obs.drops.Inc()
			continue
		}
		return true, elapsed
	}
	return true, elapsed
}

func shardIndices(n, workers int) [][]int {
	shards := make([][]int, workers)
	for i := 0; i < n; i++ {
		w := i % workers
		shards[w] = append(shards[w], i)
	}
	return shards
}

func averageParams(workers []*worker) {
	avg := workers[0].net.ParamVector()
	var scratch []float64
	for _, wk := range workers[1:] {
		scratch = wk.net.ParamVectorInto(scratch)
		for i := range avg {
			avg[i] += scratch[i]
		}
	}
	for i := range avg {
		avg[i] /= float64(len(workers))
	}
	for _, wk := range workers {
		wk.net.SetParamVector(avg)
	}
}

// compressGradient applies error feedback + top-k + quantization to g IN
// PLACE (so the averaged gradient reflects what was actually communicated)
// and returns the bytes a real system would send for it. A nil residual
// disables error feedback (dropped coordinates are lost).
//
// Degenerate knobs clamp rather than misbehave: topK outside (0, 1) sends
// the dense gradient (Train pre-clamps, but the function holds its own
// contract), and the quantizer width is clamped to [1, 16] bits — 0 and
// anything >= 32 disable quantization entirely.
func compressGradient(g, residual []float64, topK float64, bits int) int64 {
	if len(g) == 0 {
		return 0
	}
	if topK <= 0 || topK > 1 {
		topK = 1
	}
	bits = effectiveBits(bits)
	// Error feedback: add back what previous rounds dropped.
	if residual != nil {
		for i := range g {
			g[i] += residual[i]
			residual[i] = 0
		}
	}
	k := len(g)
	if topK < 1 {
		k = int(topK * float64(len(g)))
		if k < 1 {
			k = 1
		}
		// Select the k largest-magnitude coordinates.
		idx := make([]int, len(g))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return math.Abs(g[idx[a]]) > math.Abs(g[idx[b]])
		})
		keep := make(map[int]bool, k)
		for _, i := range idx[:k] {
			keep[i] = true
		}
		for i := range g {
			if !keep[i] {
				if residual != nil {
					residual[i] = g[i] // remember for next round
				}
				g[i] = 0
			}
		}
	}
	if bits > 0 {
		quantizeInPlace(g, bits)
	}
	valueBytes := int64(k) * wireBytesPerFloat
	if bits > 0 {
		valueBytes = (int64(k)*int64(bits) + 7) / 8
	}
	indexBytes := int64(0)
	if topK < 1 {
		indexBytes = int64(k) * 4
	}
	return valueBytes + indexBytes
}

// effectiveBits maps the configured QuantBits to the width actually
// applied: 0 (and anything >= 32) means "no quantization", negatives are
// treated as disabled too, and widths above 16 clamp to 16 — the widest
// the symmetric linear quantizer meaningfully supports on float32 wires.
func effectiveBits(bits int) int {
	if bits <= 0 || bits >= 32 {
		return 0
	}
	if bits > 16 {
		return 16
	}
	return bits
}

// quantizeInPlace applies symmetric linear quantization to the nonzero
// entries of g. The width is clamped to [1, 16] so a degenerate caller
// cannot trigger a negative shift.
func quantizeInPlace(g []float64, bits int) {
	if bits < 1 {
		bits = 1
	}
	if bits > 16 {
		bits = 16
	}
	var m float64
	for _, v := range g {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	if m == 0 {
		return
	}
	levels := float64(int64(1)<<(bits-1) - 1)
	if levels < 1 {
		levels = 1
	}
	step := m / levels
	for i, v := range g {
		g[i] = math.Round(v/step) * step
	}
}

// perWorkerBroadcastBytes accounts the server→one-worker traffic for the
// averaged update under the same compression settings.
func perWorkerBroadcastBytes(avg []float64, cfg Config) int64 {
	nz := 0
	for _, v := range avg {
		if v != 0 {
			nz++
		}
	}
	per := int64(nz) * wireBytesPerFloat
	if bits := effectiveBits(cfg.QuantBits); bits > 0 {
		per = (int64(nz)*int64(bits) + 7) / 8
	}
	if cfg.TopK < 1 {
		per += int64(nz) * 4
	}
	return per
}

// broadcastBytes accounts the server→workers traffic for the averaged
// update under the same compression settings.
func broadcastBytes(avg []float64, cfg Config, workers int) int64 {
	return perWorkerBroadcastBytes(avg, cfg) * int64(workers)
}

// StepTimeModel computes the simulated per-step wall-clock time of
// data-parallel training on the given device profile, with and without
// priority-based parameter propagation (E8). With FIFO propagation the next
// forward pass waits for the whole parameter transfer; priority propagation
// ships the first layers first so the forward pass overlaps the tail of the
// transfer, hiding most of the communication.
func StepTimeModel(arch nn.MLPConfig, prof device.Profile, priority bool) float64 {
	// Per-layer compute times and parameter bytes.
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, arch)
	var layers []struct {
		compute float64
		bytes   int64
	}
	for _, l := range net.Layers {
		var entry struct {
			compute float64
			bytes   int64
		}
		if fc, ok := l.(nn.FLOPsCounter); ok {
			entry.compute = prof.ComputeTime(3*fc.FLOPs(32), 0.5)
		}
		for _, p := range l.Params() {
			entry.bytes += int64(p.Value.Size()) * wireBytesPerFloat
		}
		layers = append(layers, entry)
	}
	bw := prof.LinkBandwidth
	if !priority {
		var transfer, compute float64
		for _, e := range layers {
			transfer += float64(e.bytes) / bw
			compute += e.compute
		}
		return prof.LinkLatencyS + transfer + compute
	}
	// Priority: layer i's compute can start once layers 0..i have arrived.
	var arrived float64 // time the i-th layer's params finish arriving
	var done float64    // time the i-th layer's compute finishes
	arrived = prof.LinkLatencyS
	for _, e := range layers {
		arrived += float64(e.bytes) / bw
		start := math.Max(arrived, done)
		done = start + e.compute
	}
	return done
}
