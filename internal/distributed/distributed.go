// Package distributed simulates data-parallel distributed training in a
// single process, reproducing the communication-efficiency techniques of
// Part 1 of the tutorial (§2.1): synchronous gradient averaging, Local SGD
// (average parameters every H steps), top-k gradient sparsification with
// error feedback, low-bit gradient quantization, and priority-based
// parameter propagation. Worker replicas are exact and deterministic; the
// network is replaced by byte accounting plus the analytic link model in
// internal/device, which preserves the communication/accuracy tradeoffs the
// real systems exhibit.
package distributed

import (
	"math"
	"math/rand"
	"sort"

	"dlsys/internal/device"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Config controls a simulated distributed training run.
type Config struct {
	Workers   int
	Arch      nn.MLPConfig
	Epochs    int     // passes over the full (sharded) dataset
	BatchSize int     // per-worker batch size
	LR        float64 // plain SGD learning rate on every worker
	// AveragePeriod is H in Local SGD: parameters are averaged across
	// workers every H local steps. H=1 with no compression is exactly
	// synchronous gradient averaging.
	AveragePeriod int
	// TopK, in (0, 1], is the fraction of gradient entries communicated
	// per step (1 = dense). Only used when AveragePeriod == 1, i.e. the
	// gradient-exchange regime. Dropped coordinates accumulate in a local
	// error-feedback residual.
	TopK float64
	// QuantBits quantizes communicated gradient values to this many bits
	// (0 or 32 disables). Applied after top-k selection.
	QuantBits int
	// NoErrorFeedback disables the error-feedback residual: coordinates
	// dropped by top-k are discarded instead of accumulated for the next
	// round. Exists for the ablation showing why error feedback matters.
	NoErrorFeedback bool
}

// Stats reports what a run cost and how it progressed.
type Stats struct {
	BytesSent      int64     // total worker→server + server→worker traffic
	AveragingRound int       // parameter/gradient exchanges performed
	Steps          int       // per-worker optimizer steps
	EpochLoss      []float64 // mean worker-0 loss per epoch
}

const wireBytesPerFloat = 4 // gradients/parameters travel as float32

// Train runs the configured algorithm over x/y and returns the final
// (consensus) model plus stats. Training is deterministic for a given seed.
func Train(seed int64, x, y *tensor.Tensor, cfg Config) (*nn.Network, Stats) {
	if cfg.Workers < 1 {
		panic("distributed: need at least one worker")
	}
	if cfg.AveragePeriod < 1 {
		cfg.AveragePeriod = 1
	}
	if cfg.TopK <= 0 || cfg.TopK > 1 {
		cfg.TopK = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// All workers start from the same initialisation.
	global := nn.NewMLP(rand.New(rand.NewSource(seed)), cfg.Arch)
	workers := make([]*worker, cfg.Workers)
	shards := shardIndices(x.Dim(0), cfg.Workers)
	for w := range workers {
		net := nn.NewMLP(rand.New(rand.NewSource(seed)), cfg.Arch)
		net.SetParamVector(global.ParamVector())
		workers[w] = &worker{
			net:      net,
			trainer:  nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(cfg.LR), rng),
			shard:    shards[w],
			residual: make([]float64, net.NumParams()),
		}
	}

	var stats Stats
	modelSize := global.NumParams()
	stepsPerEpoch := (len(shards[0]) + cfg.BatchSize - 1) / cfg.BatchSize
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for w := range workers {
			rng.Shuffle(len(workers[w].shard), func(i, j int) {
				s := workers[w].shard
				s[i], s[j] = s[j], s[i]
			})
		}
		var epochLoss float64
		for step := 0; step < stepsPerEpoch; step++ {
			if cfg.AveragePeriod == 1 {
				// Gradient-exchange regime (sync SGD, optionally compressed).
				avgGrad := make([]float64, modelSize)
				for _, wk := range workers {
					bx, by := wk.nextBatch(x, y, step, cfg.BatchSize)
					loss := wk.trainer.ComputeGrad(bx, by)
					if wk == workers[0] {
						epochLoss += loss
					}
					g := wk.net.GradVector()
					residual := wk.residual
					if cfg.NoErrorFeedback {
						residual = nil
					}
					sent := compressGradient(g, residual, cfg.TopK, cfg.QuantBits)
					stats.BytesSent += sent
					for i := range avgGrad {
						avgGrad[i] += g[i]
					}
				}
				for i := range avgGrad {
					avgGrad[i] /= float64(cfg.Workers)
				}
				// Broadcast of the averaged (already compressed) update.
				stats.BytesSent += broadcastBytes(avgGrad, cfg)
				for _, wk := range workers {
					wk.net.SetGradVector(avgGrad)
					wk.trainer.Opt.Step(wk.net.Params())
					wk.net.PostStep()
				}
				stats.AveragingRound++
			} else {
				// Local SGD regime.
				for _, wk := range workers {
					bx, by := wk.nextBatch(x, y, step, cfg.BatchSize)
					loss := wk.trainer.Step(bx, by)
					if wk == workers[0] {
						epochLoss += loss
					}
				}
				globalStep := epoch*stepsPerEpoch + step + 1
				if globalStep%cfg.AveragePeriod == 0 {
					averageParams(workers)
					// Up and down: every worker ships its full model and
					// receives the average.
					stats.BytesSent += int64(cfg.Workers) * 2 * int64(modelSize) * wireBytesPerFloat
					stats.AveragingRound++
				}
			}
			stats.Steps++
		}
		stats.EpochLoss = append(stats.EpochLoss, epochLoss/float64(stepsPerEpoch))
	}
	// Final consensus.
	averageParams(workers)
	global.SetParamVector(workers[0].net.ParamVector())
	return global, stats
}

type worker struct {
	net      *nn.Network
	trainer  *nn.Trainer
	shard    []int
	residual []float64 // error-feedback accumulator for dropped coordinates
}

func (w *worker) nextBatch(x, y *tensor.Tensor, step, bs int) (*tensor.Tensor, *tensor.Tensor) {
	start := (step * bs) % len(w.shard)
	end := start + bs
	if end > len(w.shard) {
		end = len(w.shard)
	}
	return nn.GatherBatch(x, y, w.shard[start:end])
}

func shardIndices(n, workers int) [][]int {
	shards := make([][]int, workers)
	for i := 0; i < n; i++ {
		w := i % workers
		shards[w] = append(shards[w], i)
	}
	return shards
}

func averageParams(workers []*worker) {
	avg := workers[0].net.ParamVector()
	for _, wk := range workers[1:] {
		v := wk.net.ParamVector()
		for i := range avg {
			avg[i] += v[i]
		}
	}
	for i := range avg {
		avg[i] /= float64(len(workers))
	}
	for _, wk := range workers {
		wk.net.SetParamVector(avg)
	}
}

// compressGradient applies error feedback + top-k + quantization to g IN
// PLACE (so the averaged gradient reflects what was actually communicated)
// and returns the bytes a real system would send for it. A nil residual
// disables error feedback (dropped coordinates are lost).
func compressGradient(g, residual []float64, topK float64, bits int) int64 {
	// Error feedback: add back what previous rounds dropped.
	if residual != nil {
		for i := range g {
			g[i] += residual[i]
			residual[i] = 0
		}
	}
	k := len(g)
	if topK < 1 {
		k = int(topK * float64(len(g)))
		if k < 1 {
			k = 1
		}
		// Select the k largest-magnitude coordinates.
		idx := make([]int, len(g))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return math.Abs(g[idx[a]]) > math.Abs(g[idx[b]])
		})
		keep := make(map[int]bool, k)
		for _, i := range idx[:k] {
			keep[i] = true
		}
		for i := range g {
			if !keep[i] {
				if residual != nil {
					residual[i] = g[i] // remember for next round
				}
				g[i] = 0
			}
		}
	}
	if bits > 0 && bits < 32 {
		quantizeInPlace(g, bits)
	}
	valueBytes := int64(k) * wireBytesPerFloat
	if bits > 0 && bits < 32 {
		valueBytes = (int64(k)*int64(bits) + 7) / 8
	}
	indexBytes := int64(0)
	if topK < 1 {
		indexBytes = int64(k) * 4
	}
	return valueBytes + indexBytes
}

// quantizeInPlace applies symmetric linear quantization to the nonzero
// entries of g.
func quantizeInPlace(g []float64, bits int) {
	var m float64
	for _, v := range g {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	if m == 0 {
		return
	}
	levels := float64(int64(1)<<(bits-1) - 1)
	if levels < 1 {
		levels = 1
	}
	step := m / levels
	for i, v := range g {
		g[i] = math.Round(v/step) * step
	}
}

// broadcastBytes accounts the server→workers traffic for the averaged
// update under the same compression settings.
func broadcastBytes(avg []float64, cfg Config) int64 {
	nz := 0
	for _, v := range avg {
		if v != 0 {
			nz++
		}
	}
	per := int64(nz) * wireBytesPerFloat
	if cfg.QuantBits > 0 && cfg.QuantBits < 32 {
		per = (int64(nz)*int64(cfg.QuantBits) + 7) / 8
	}
	if cfg.TopK < 1 {
		per += int64(nz) * 4
	}
	return per * int64(cfg.Workers)
}

// StepTimeModel computes the simulated per-step wall-clock time of
// data-parallel training on the given device profile, with and without
// priority-based parameter propagation (E8). With FIFO propagation the next
// forward pass waits for the whole parameter transfer; priority propagation
// ships the first layers first so the forward pass overlaps the tail of the
// transfer, hiding most of the communication.
func StepTimeModel(arch nn.MLPConfig, prof device.Profile, priority bool) float64 {
	// Per-layer compute times and parameter bytes.
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, arch)
	var layers []struct {
		compute float64
		bytes   int64
	}
	for _, l := range net.Layers {
		var entry struct {
			compute float64
			bytes   int64
		}
		if fc, ok := l.(nn.FLOPsCounter); ok {
			entry.compute = prof.ComputeTime(3*fc.FLOPs(32), 0.5)
		}
		for _, p := range l.Params() {
			entry.bytes += int64(p.Value.Size()) * wireBytesPerFloat
		}
		layers = append(layers, entry)
	}
	bw := prof.LinkBandwidth
	if !priority {
		var transfer, compute float64
		for _, e := range layers {
			transfer += float64(e.bytes) / bw
			compute += e.compute
		}
		return prof.LinkLatencyS + transfer + compute
	}
	// Priority: layer i's compute can start once layers 0..i have arrived.
	var arrived float64 // time the i-th layer's params finish arriving
	var done float64    // time the i-th layer's compute finishes
	arrived = prof.LinkLatencyS
	for _, e := range layers {
		arrived += float64(e.bytes) / bw
		start := math.Max(arrived, done)
		done = start + e.compute
	}
	return done
}
