package distributed

import (
	"math"
	"math/bits"

	"dlsys/internal/device"
)

// Topology selects the collective communication pattern used for averaging
// rounds. The zero value (TopoDefault) keeps the historical parameter-server
// star bit-for-bit; the explicit topologies replace the star with a
// reduce-broadcast collective whose per-hop costs are priced by
// device.TransferTime and charged to the simulated clock, so time-per-round
// scales with worker count the way the real pattern does instead of O(n²).
type Topology string

const (
	// TopoDefault is the historical parameter-server star: every worker
	// uploads to a central server which broadcasts the aggregate back.
	TopoDefault Topology = ""
	// TopoAllToAll is the full mesh: m-1 serialized phases in which every
	// member exchanges the whole payload with one peer. O(n) phases of
	// O(n) concurrent full-payload hops — the baseline the scalable
	// topologies beat, and the maximally-connected fallback they degrade
	// to when healing cannot preserve quorum.
	TopoAllToAll Topology = "all-to-all"
	// TopoRing is ring all-reduce: 2(m-1) phases in which each member
	// passes a 1/m segment to its successor (reduce-scatter, then
	// all-gather). Per-member traffic is independent of m.
	TopoRing Topology = "ring"
	// TopoTree is a binary-tree reduce then broadcast: 2·depth phases of
	// full-payload hops, the latency-optimal pattern for small payloads.
	TopoTree Topology = "tree"
	// TopoHier is the two-level hierarchy: ring all-reduce inside fixed
	// groups, tree reduce-broadcast across group leaders, then a binomial
	// broadcast back inside each group. GroupSize picks the group width
	// (default ceil(sqrt(m))).
	TopoHier Topology = "hier"
)

// Topologies lists the explicit collective topologies (not TopoDefault), in
// the order experiments sweep them.
func Topologies() []Topology {
	return []Topology{TopoAllToAll, TopoRing, TopoTree, TopoHier}
}

func (t Topology) valid() bool {
	switch t {
	case TopoDefault, TopoAllToAll, TopoRing, TopoTree, TopoHier:
		return true
	}
	return false
}

// ChurnEvent schedules one elastic-membership transition: at the start of
// Round, Worker joins (catching up from the newest CRC-valid snapshot) or
// leaves the run. A worker whose earliest event is a join starts the run
// absent. Config.Validate rejects out-of-range workers, duplicate events,
// and inconsistent sequences (joining while present, leaving while absent).
type ChurnEvent struct {
	Round  int
	Worker int
	Join   bool
}

// hop is one directed transfer inside a collective phase.
type hop struct {
	src, dst int
	bytes    int64
}

// degradeSalt offsets the phase sequence numbers of the all-to-all fallback
// walk, so its per-hop fault draws are independent of the failed primary
// walk's (otherwise the same dead links would kill the fallback too).
const degradeSalt = 1 << 12

func ceilDiv(a int64, b int) int64 {
	if b <= 0 {
		return a
	}
	return (a + int64(b) - 1) / int64(b)
}

// heapDepth is the depth of index i in a 0-based binary heap.
func heapDepth(i int) int { return bits.Len(uint(i+1)) - 1 }

// hierGroupSize resolves the intra-group width for TopoHier: the configured
// size clamped to the member count, defaulting to ceil(sqrt(m)) (minimum 2).
func hierGroupSize(groupSize, m int) int {
	gs := groupSize
	if gs < 2 {
		gs = int(math.Ceil(math.Sqrt(float64(m))))
		if gs < 2 {
			gs = 2
		}
	}
	if gs > m {
		gs = m
	}
	return gs
}

// phaseHops enumerates the collective's phases over the live members
// (ascending worker ids), calling visit once per phase with that phase's
// concurrent hops. seq numbers the phases so per-hop fault draws are unique
// across the round. The hops slice is reused between phases.
func phaseHops(kind Topology, members []int, payload int64, groupSize int, visit func(seq int, hops []hop)) {
	m := len(members)
	if m < 2 {
		return
	}
	seq := 0
	buf := make([]hop, 0, m)
	emit := func() {
		visit(seq, buf)
		seq++
		buf = buf[:0]
	}
	switch kind {
	case TopoAllToAll:
		// Phase p: member i exchanges the full payload with member i+p.
		for p := 1; p < m; p++ {
			for i := 0; i < m; i++ {
				buf = append(buf, hop{members[i], members[(i+p)%m], payload})
			}
			emit()
		}
	case TopoRing:
		// Reduce-scatter then all-gather: 2(m-1) phases, each member
		// passing a 1/m segment to its successor.
		seg := ceilDiv(payload, m)
		for s := 0; s < 2*(m-1); s++ {
			for i := 0; i < m; i++ {
				buf = append(buf, hop{members[i], members[(i+1)%m], seg})
			}
			emit()
		}
	case TopoTree:
		// Heap-indexed binary tree over the members array: reduce from the
		// deepest level up to the root, then broadcast back down.
		maxD := heapDepth(m - 1)
		for d := maxD; d >= 1; d-- {
			for i := 1; i < m; i++ {
				if heapDepth(i) == d {
					buf = append(buf, hop{members[i], members[(i-1)/2], payload})
				}
			}
			emit()
		}
		for d := 1; d <= maxD; d++ {
			for i := 1; i < m; i++ {
				if heapDepth(i) == d {
					buf = append(buf, hop{members[(i-1)/2], members[i], payload})
				}
			}
			emit()
		}
	case TopoHier:
		gs := hierGroupSize(groupSize, m)
		var groups [][]int
		for i := 0; i < m; i += gs {
			end := i + gs
			if end > m {
				end = m
			}
			groups = append(groups, members[i:end])
		}
		maxGs := gs
		// Intra-group ring all-reduce; groups run concurrently, phases
		// aligned across groups.
		for s := 0; s < 2*(maxGs-1); s++ {
			for _, g := range groups {
				if s >= 2*(len(g)-1) {
					continue
				}
				seg := ceilDiv(payload, len(g))
				for i := range g {
					buf = append(buf, hop{g[i], g[(i+1)%len(g)], seg})
				}
			}
			emit()
		}
		// Tree reduce-broadcast over group leaders.
		leaders := make([]int, len(groups))
		for i, g := range groups {
			leaders[i] = g[0]
		}
		k := len(leaders)
		if k >= 2 {
			maxD := heapDepth(k - 1)
			for d := maxD; d >= 1; d-- {
				for i := 1; i < k; i++ {
					if heapDepth(i) == d {
						buf = append(buf, hop{leaders[i], leaders[(i-1)/2], payload})
					}
				}
				emit()
			}
			for d := 1; d <= maxD; d++ {
				for i := 1; i < k; i++ {
					if heapDepth(i) == d {
						buf = append(buf, hop{leaders[(i-1)/2], leaders[i], payload})
					}
				}
				emit()
			}
		}
		// Binomial broadcast from each leader back into its group.
		for s := 0; 1<<s < maxGs; s++ {
			for _, g := range groups {
				lo, hi := 1<<s, 2<<s
				if hi > len(g) {
					hi = len(g)
				}
				for r := lo; r < hi; r++ {
					buf = append(buf, hop{g[r-1<<s], g[r], payload})
				}
			}
			emit()
		}
	}
}

// hop prices one topology hop: slow-link latency multiplication, per-attempt
// link-drop retries with exponential backoff, and — once the retry budget
// exhausts — a single healing reroute around the dead link (the ring skips
// to the next live peer, the tree re-parents under the grandparent),
// modelled as one relayed attempt at twice the wire time. Returns whether
// the payload ultimately got through and the simulated seconds spent.
func (t *transport) hop(src, dst int, bytes int64, round, seq int, stats *Stats) (bool, float64) {
	slow := t.inj.LinkSlow(src, dst, round)
	if slow > 1 {
		stats.LinkSlowHops++
		t.obs.linkSlowHops.Inc()
	}
	base := device.TransferTime(t.prof, t.prof, bytes) * slow
	var elapsed float64
	for attempt := 0; attempt < t.maxRetries; attempt++ {
		if attempt > 0 {
			stats.Retransmissions++
			t.obs.retrans.Inc()
			elapsed += t.backoffS * float64(int64(1)<<(attempt-1))
		}
		stats.BytesSent += bytes
		t.obs.bytesSent.Add(bytes)
		elapsed += base
		if t.inj.LinkDrops(src, dst, round, seq, attempt) {
			stats.LinkDropped++
			t.obs.linkDropped.Inc()
			continue
		}
		return true, elapsed
	}
	stats.BytesSent += 2 * bytes
	t.obs.bytesSent.Add(2 * bytes)
	elapsed += 2 * base
	if !t.inj.LinkDrops(src, dst, round, seq, t.maxRetries) {
		stats.TopoHeals++
		t.obs.topoHeals.Inc()
		return true, elapsed
	}
	stats.LinkDropped++
	t.obs.linkDropped.Inc()
	return false, elapsed
}

// walk prices one traversal of the topology's phases over the live members,
// returning the members whose contribution dead links lost plus the
// simulated seconds elapsed. Hops within a phase run concurrently (the
// phase costs its slowest hop); phases serialize.
func (t *transport) walk(kind Topology, live []int, payload int64, round, groupSize, salt int, stats *Stats) (map[int]bool, float64) {
	lost := make(map[int]bool)
	failed := make(map[int]int)
	var total float64
	phaseHops(kind, live, payload, groupSize, func(seq int, hops []hop) {
		var phaseS float64
		for _, h := range hops {
			ok, s := t.hop(h.src, h.dst, h.bytes, round, salt+seq, stats)
			if s > phaseS {
				phaseS = s
			}
			if ok {
				continue
			}
			if kind == TopoAllToAll {
				// Full mesh: one dead edge only loses one peer's copy; the
				// contribution is lost only when most peers never got it.
				failed[h.src]++
				if 2*failed[h.src] > len(live)-1 {
					lost[h.src] = true
				}
			} else {
				lost[h.src] = true
			}
		}
		total += phaseS
	})
	return lost, total
}

// exchange executes one collective reduce-broadcast of payload bytes over
// the topology spanning members (ascending worker ids). It prices every
// phase on the simulated clock, heals around dead links, excludes members a
// partition or unhealable link cut off, and — when healing would leave
// fewer than half the members contributing (the convergence invariant) —
// degrades the whole round to the all-to-all fallback. Returns the members
// whose contribution was excluded, the simulated seconds elapsed, and
// whether the round degraded.
func (t *transport) exchange(kind Topology, members []int, payload int64, round, groupSize int, stats *Stats) (excluded map[int]bool, elapsed float64, degraded bool) {
	excluded = make(map[int]bool)
	if len(members) < 2 {
		return excluded, 0, false
	}
	live := members
	var cut []int
	if start, ok := t.inj.PartitionAt(round); ok {
		var side0, side1 []int
		for _, w := range members {
			if t.inj.PartitionSide(w, start) == 0 {
				side0 = append(side0, w)
			} else {
				side1 = append(side1, w)
			}
		}
		maj, min := side0, side1
		if len(side1) > len(side0) {
			maj, min = side1, side0
		}
		if len(min) > 0 {
			live, cut = maj, min
			stats.PartitionedRounds++
			t.obs.partRounds.Inc()
			// The topology heals around the unreachable side: the ring
			// skips to the next live peer, the tree re-parents orphaned
			// subtrees onto the majority. All-to-all has no rerouting to
			// do — the cut members are simply unreachable there too.
			if kind != TopoAllToAll {
				stats.TopoHeals += len(min)
				t.obs.topoHeals.Add(int64(len(min)))
			}
			for _, w := range min {
				excluded[w] = true
			}
		}
	}
	if len(live) >= 2 {
		lost, s := t.walk(kind, live, payload, round, groupSize, 0, stats)
		elapsed += s
		for w := range lost {
			excluded[w] = true
		}
		// Convergence invariant: at least half the members must contribute
		// to the aggregate. When healing could not preserve that quorum,
		// the round re-runs over the maximally-connected all-to-all mesh,
		// which tolerates individual dead links.
		if kind != TopoAllToAll && 2*(len(members)-len(excluded)) < len(members) {
			degraded = true
			stats.TopoDegraded++
			t.obs.topoDegraded.Inc()
			lost2, s2 := t.walk(TopoAllToAll, live, payload, round, groupSize, degradeSalt, stats)
			elapsed += s2
			excluded = make(map[int]bool)
			for _, w := range cut {
				excluded[w] = true
			}
			for w := range lost2 {
				excluded[w] = true
			}
		}
	}
	stats.LinkExcluded += len(excluded)
	t.obs.linkExcluded.Add(int64(len(excluded)))
	return excluded, elapsed, degraded
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
