package distributed

import (
	"errors"
	"math"
	"testing"

	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/robust"
)

// byzCfg is an 8-worker synchronous run with one sign-flipping adversary.
func byzCfg(workers int, agg robust.Aggregator, rep *robust.ReputationConfig) Config {
	return Config{
		Workers: workers, Arch: distArch, Epochs: 4, BatchSize: 16, LR: 0.1,
		AveragePeriod: 1,
		Fault:         fault.Byzantine(40, fault.KindSignFlip, 1),
		Aggregator:    agg,
		Reputation:    rep,
	}
}

func TestConfigValidateTable(t *testing.T) {
	base := Config{Workers: 4, Arch: distArch, Epochs: 1, BatchSize: 16, LR: 0.1}
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string // "" means valid
	}{
		{"valid", func(c *Config) {}, ""},
		{"zero-values-mean-defaults", func(c *Config) { c.AveragePeriod, c.TopK, c.MaxRetries = 0, 0, 0 }, ""},
		{"workers-zero", func(c *Config) { c.Workers = 0 }, "Workers"},
		{"workers-negative", func(c *Config) { c.Workers = -3 }, "Workers"},
		{"epochs-negative", func(c *Config) { c.Epochs = -1 }, "Epochs"},
		{"batch-zero", func(c *Config) { c.BatchSize = 0 }, "BatchSize"},
		{"lr-negative", func(c *Config) { c.LR = -0.1 }, "LR"},
		{"period-negative", func(c *Config) { c.AveragePeriod = -2 }, "AveragePeriod"},
		{"topk-negative", func(c *Config) { c.TopK = -0.5 }, "TopK"},
		{"quant-negative", func(c *Config) { c.QuantBits = -4 }, "QuantBits"},
		{"retries-negative", func(c *Config) { c.MaxRetries = -1 }, "MaxRetries"},
		{"backoff-negative", func(c *Config) { c.RetryBackoffS = -1e-3 }, "RetryBackoffS"},
		{"snapshot-negative", func(c *Config) { c.SnapshotPeriod = -5 }, "SnapshotPeriod"},
		{"dropk-equals-workers", func(c *Config) { c.DropSlowestK = 4 }, "DropSlowestK"},
		{"dropk-negative", func(c *Config) { c.DropSlowestK = -1 }, "DropSlowestK"},
		{"reputation-decay", func(c *Config) { c.Reputation = &robust.ReputationConfig{Decay: 1.5} }, "Reputation.Decay"},
		{"reputation-threshold", func(c *Config) { c.Reputation = &robust.ReputationConfig{Threshold: -1} }, "Reputation.Threshold"},
		{"reputation-patience", func(c *Config) { c.Reputation = &robust.ReputationConfig{Patience: -1} }, "Reputation.Patience"},
		{"reputation-probation", func(c *Config) { c.Reputation = &robust.ReputationConfig{Probation: -1} }, "Reputation.Probation"},
		{"byzantine-worker-out-of-range", func(c *Config) { c.Fault = fault.Byzantine(1, fault.KindSignFlip, 9) }, "Fault.ByzantineWorkers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("want *ConfigError, got %v (%T)", err, err)
			}
			if ce.Field != tc.field {
				t.Fatalf("Field = %q, want %q (err: %v)", ce.Field, tc.field, err)
			}
		})
	}
	// Fault-config errors pass through Validate untyped but non-nil.
	bad := base
	bad.Fault = fault.Config{DropProb: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range fault probability accepted")
	}
}

// TestByzantineReplaysBitIdentically is the cross-worker-count determinism
// regression: with Byzantine faults, robust aggregation, and reputation
// tracking all enabled, the same seed replays bit-identically — same
// Stats, same epoch losses, same parameters, same ledger fingerprint — at
// both 4 and 8 workers, each run twice.
func TestByzantineReplaysBitIdentically(t *testing.T) {
	train, _ := distDataset(12)
	y := nn.OneHot(train.Labels, 3)
	for _, workers := range []int{4, 8} {
		cfg := byzCfg(workers, robust.CoordMedian{}, &robust.ReputationConfig{})
		netA, statsA := mustTrain(t, 120, train.X, y, cfg)
		netB, statsB := mustTrain(t, 120, train.X, y, cfg)
		if statsA.ByzantineAttacks == 0 {
			t.Fatalf("workers=%d: no Byzantine attacks fired", workers)
		}
		if statsA.ByzantineAttacks != statsB.ByzantineAttacks ||
			statsA.Quarantines != statsB.Quarantines ||
			statsA.QuarantineExcluded != statsB.QuarantineExcluded ||
			statsA.Readmissions != statsB.Readmissions ||
			statsA.BytesSent != statsB.BytesSent ||
			statsA.Steps != statsB.Steps ||
			statsA.SimSeconds != statsB.SimSeconds {
			t.Fatalf("workers=%d: stats diverged:\nA: %+v\nB: %+v", workers, statsA, statsB)
		}
		for i := range statsA.EpochLoss {
			la, lb := statsA.EpochLoss[i], statsB.EpochLoss[i]
			if la != lb && !(math.IsNaN(la) && math.IsNaN(lb)) {
				t.Fatalf("workers=%d: epoch %d loss %v != %v", workers, i, la, lb)
			}
		}
		if statsA.Quarantine.Fingerprint() != statsB.Quarantine.Fingerprint() {
			t.Fatalf("workers=%d: ledger fingerprints diverged", workers)
		}
		pa, pb := netA.ParamVector(), netB.ParamVector()
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("workers=%d: params diverged at %d", workers, i)
			}
		}
	}
}

func TestRobustAggregationDefendsSignFlip(t *testing.T) {
	train, test := distDataset(13)
	y := nn.OneHot(train.Labels, 3)
	cleanNet, _ := mustTrain(t, 130, train.X, y, byzCfg(8, nil, nil))
	_ = cleanNet
	meanNet, meanStats := mustTrain(t, 130, train.X, y, func() Config {
		c := byzCfg(8, robust.Mean{}, nil)
		return c
	}())
	medNet, _ := mustTrain(t, 130, train.X, y, byzCfg(8, robust.CoordMedian{}, nil))
	if meanStats.ByzantineAttacks == 0 {
		t.Fatal("adversary never fired")
	}
	meanAcc := meanNet.Accuracy(test.X, test.Labels)
	medAcc := medNet.Accuracy(test.X, test.Labels)
	if medAcc < 0.8 {
		t.Fatalf("coordinate median failed to defend: acc %.3f", medAcc)
	}
	if meanAcc >= medAcc {
		t.Fatalf("mean (%.3f) should be hurt more than median (%.3f) by sign-flip", meanAcc, medAcc)
	}
}

func TestReputationQuarantinesAdversaryInTrain(t *testing.T) {
	train, _ := distDataset(14)
	y := nn.OneHot(train.Labels, 3)
	_, stats := mustTrain(t, 140, train.X, y, byzCfg(8, robust.CoordMedian{}, &robust.ReputationConfig{}))
	if stats.Quarantine == nil {
		t.Fatal("no quarantine ledger attached to stats")
	}
	if got := stats.Quarantine.OffenderString(); got != "1" {
		t.Fatalf("offenders = %q, want exactly the adversary \"1\"", got)
	}
	if stats.QuarantineExcluded == 0 {
		t.Fatal("quarantined adversary was never excluded from a round")
	}
	// Attack-free control: zero quarantines, zero false positives.
	clean := byzCfg(8, robust.CoordMedian{}, &robust.ReputationConfig{})
	clean.Fault = fault.Config{}
	_, cleanStats := mustTrain(t, 140, train.X, y, clean)
	if cleanStats.Quarantines != 0 || cleanStats.Quarantine.OffenderString() != "" {
		t.Fatalf("attack-free run quarantined workers: %+v", cleanStats.Quarantine.Offenders())
	}
}

func TestLocalSGDByzantineQuarantine(t *testing.T) {
	train, _ := distDataset(15)
	y := nn.OneHot(train.Labels, 3)
	cfg := byzCfg(4, robust.CoordMedian{}, &robust.ReputationConfig{Probation: 4})
	cfg.AveragePeriod = 2
	cfg.Epochs = 10
	_, stats := mustTrain(t, 150, train.X, y, cfg)
	if stats.ByzantineAttacks == 0 {
		t.Fatal("Local SGD regime: adversary never corrupted an upload")
	}
	if got := stats.Quarantine.OffenderString(); got != "1" {
		t.Fatalf("offenders = %q, want \"1\"", got)
	}
	if stats.Readmissions == 0 {
		t.Fatal("probation never expired — readmission path untested")
	}
}

func TestCompressGradientEdgeCases(t *testing.T) {
	mk := func() []float64 { return []float64{4, -3, 2, -1, 0.5, 0.25} }

	t.Run("topk-zero-is-dense", func(t *testing.T) {
		g := mk()
		bytes := compressGradient(g, nil, 0, 0)
		if bytes != int64(len(g))*wireBytesPerFloat {
			t.Fatalf("topK=0 bytes = %d, want dense %d", bytes, int64(len(g))*wireBytesPerFloat)
		}
		for i, v := range g {
			if v != mk()[i] {
				t.Fatalf("dense path mutated g[%d]", i)
			}
		}
	})

	t.Run("topk-negative-is-dense", func(t *testing.T) {
		g := mk()
		if bytes := compressGradient(g, nil, -0.5, 0); bytes != int64(len(g))*wireBytesPerFloat {
			t.Fatalf("negative topK not clamped to dense: %d bytes", bytes)
		}
	})

	t.Run("topk-above-one-is-dense", func(t *testing.T) {
		g := mk()
		if bytes := compressGradient(g, nil, 1.5, 0); bytes != int64(len(g))*wireBytesPerFloat {
			t.Fatalf("topK>1 not clamped to dense: %d bytes", bytes)
		}
	})

	t.Run("topk-keeps-largest", func(t *testing.T) {
		g := mk()
		residual := make([]float64, len(g))
		compressGradient(g, residual, 0.34, 0) // k = 2 of 6
		if g[0] != 4 || g[1] != -3 {
			t.Fatalf("largest coordinates not kept: %v", g)
		}
		for i := 2; i < len(g); i++ {
			if g[i] != 0 {
				t.Fatalf("coordinate %d not dropped: %v", i, g)
			}
			if residual[i] != mk()[i] {
				t.Fatalf("dropped coordinate %d not parked in residual", i)
			}
		}
	})

	t.Run("bits-negative-disables", func(t *testing.T) {
		g := mk()
		if bytes := compressGradient(g, nil, 1, -8); bytes != int64(len(g))*wireBytesPerFloat {
			t.Fatalf("negative bits changed byte accounting: %d", bytes)
		}
		for i, v := range g {
			if v != mk()[i] {
				t.Fatalf("negative bits quantized g[%d]", i)
			}
		}
	})

	t.Run("bits-over-16-clamp", func(t *testing.T) {
		g := mk()
		bytes := compressGradient(g, nil, 1, 24)
		want := (int64(len(g))*16 + 7) / 8
		if bytes != want {
			t.Fatalf("bits=24 bytes = %d, want clamped-to-16 %d", bytes, want)
		}
	})

	t.Run("bits-32-disables", func(t *testing.T) {
		g := mk()
		if bytes := compressGradient(g, nil, 1, 32); bytes != int64(len(g))*wireBytesPerFloat {
			t.Fatalf("bits=32 should disable quantization: %d bytes", bytes)
		}
	})

	t.Run("quantize-clamps-without-panic", func(t *testing.T) {
		for _, bits := range []int{-3, 0, 1, 16, 99} {
			g := mk()
			quantizeInPlace(g, bits) // must not panic on any width
			for i, v := range g {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("bits=%d produced non-finite g[%d]", bits, i)
				}
			}
		}
		// bits=1 collapses to sign * max magnitude levels.
		g := mk()
		quantizeInPlace(g, 1)
		for i, v := range g {
			if math.Abs(v) > 4 {
				t.Fatalf("bits=1 g[%d]=%g exceeds max magnitude", i, v)
			}
		}
	})

	t.Run("empty-gradient", func(t *testing.T) {
		if bytes := compressGradient(nil, nil, 0.5, 8); bytes < 0 {
			t.Fatalf("empty gradient negative bytes %d", bytes)
		}
		quantizeInPlace(nil, 8)
	})
}
