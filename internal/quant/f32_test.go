package quant

import (
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
)

func trainF32TestMLP(t *testing.T) (*nn.Network, *data.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	ds := data.GaussianMixture(rng, 800, 8, 4, 2.5)
	net := nn.NewMLP(rng, nn.MLPConfig{In: 8, Hidden: []int{16}, Out: 4})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(ds.X, nn.OneHot(ds.Labels, 4), nn.TrainConfig{Epochs: 10, BatchSize: 32})
	return net, ds
}

func TestF32MLPTracksFullModel(t *testing.T) {
	net, ds := trainF32TestMLP(t)
	f32 := CompileF32MLP(net)
	fullAcc := net.Accuracy(ds.X, ds.Labels)
	f32Acc := f32.Accuracy(ds.X, ds.Labels)
	if f32Acc < fullAcc-0.02 {
		t.Fatalf("f32 accuracy %g fell more than noise below full %g", f32Acc, fullAcc)
	}
	// Predictions should agree on nearly every row: float32 rounding only
	// flips argmaxes that were already near-ties.
	full := net.Predict(ds.X)
	fp := f32.Predict(ds.X)
	disagree := 0
	for i := range full {
		if full[i] != fp[i] {
			disagree++
		}
	}
	if disagree > len(full)/50 {
		t.Fatalf("f32 disagrees with full on %d/%d rows", disagree, len(full))
	}
}

func TestF32MLPBytesHalved(t *testing.T) {
	net, _ := trainF32TestMLP(t)
	f32 := CompileF32MLP(net)
	// Half the float64 in-memory model; identical to the fp32 pricing the
	// serving cost model already charges the full tier.
	if got := f32.Bytes(); got != net.ParamBytes(64)/2 || got != net.ParamBytes(32) {
		t.Fatalf("f32 bytes %d, want %d", got, net.ParamBytes(32))
	}
}

func TestCompileF32MLPRejectsUnsupportedLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, nn.MLPConfig{In: 4, Hidden: []int{4}, Out: 2, Dropout: 0.5})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-Dense/ReLU network")
		}
	}()
	CompileF32MLP(net)
}
