package quant

import (
	"container/heap"
	"fmt"
	"sort"
)

// HuffmanTable maps symbols to canonical Huffman code lengths. Together
// with the packed bitstream it is sufficient to reconstruct the symbols
// exactly (lossless), which is how Deep-Compression-style pipelines squeeze
// quantization codes further without accuracy impact.
type HuffmanTable struct {
	// Lengths[sym] is the code length in bits for each symbol that occurs;
	// absent symbols have length 0.
	Lengths map[uint16]int
	// codes is derived canonically from Lengths.
	codes map[uint16]huffCode
}

type huffCode struct {
	bits uint32
	len  int
}

type huffNode struct {
	freq        int
	sym         uint16
	leaf        bool
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any     { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }

// BuildHuffman computes canonical code lengths for the symbol distribution
// of codes. It panics on empty input.
func BuildHuffman(codes []uint16) *HuffmanTable {
	if len(codes) == 0 {
		panic("quant: BuildHuffman on empty input")
	}
	freq := map[uint16]int{}
	for _, c := range codes {
		freq[c]++
	}
	h := make(huffHeap, 0, len(freq))
	for sym, f := range freq {
		h = append(h, &huffNode{freq: f, sym: sym, leaf: true})
	}
	heap.Init(&h)
	if h.Len() == 1 {
		// Single distinct symbol: assign it a 1-bit code.
		t := &HuffmanTable{Lengths: map[uint16]int{h[0].sym: 1}}
		t.assignCanonical()
		return t
	}
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{freq: a.freq + b.freq, sym: minSym(a, b), left: a, right: b})
	}
	t := &HuffmanTable{Lengths: map[uint16]int{}}
	var walk func(n *huffNode, depth int)
	walk = func(n *huffNode, depth int) {
		if n.leaf {
			t.Lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(h[0], 0)
	t.assignCanonical()
	return t
}

func minSym(a, b *huffNode) uint16 {
	if a.sym < b.sym {
		return a.sym
	}
	return b.sym
}

// assignCanonical derives canonical codes from the length table: symbols
// sorted by (length, symbol) receive consecutive code values.
func (t *HuffmanTable) assignCanonical() {
	type entry struct {
		sym uint16
		len int
	}
	entries := make([]entry, 0, len(t.Lengths))
	for sym, l := range t.Lengths {
		entries = append(entries, entry{sym, l})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].len != entries[j].len {
			return entries[i].len < entries[j].len
		}
		return entries[i].sym < entries[j].sym
	})
	t.codes = make(map[uint16]huffCode, len(entries))
	var code uint32
	prevLen := 0
	for _, e := range entries {
		code <<= uint(e.len - prevLen)
		t.codes[e.sym] = huffCode{bits: code, len: e.len}
		code++
		prevLen = e.len
	}
}

// Encode packs codes into a Huffman bitstream. Returns the packed bytes and
// the exact bit count (the final byte may be partially used).
func (t *HuffmanTable) Encode(codes []uint16) (packed []byte, bitLen int) {
	var buf []byte
	var acc uint64
	var nbits int
	for _, sym := range codes {
		hc, ok := t.codes[sym]
		if !ok {
			panic(fmt.Sprintf("quant: symbol %d not in Huffman table", sym))
		}
		acc = acc<<uint(hc.len) | uint64(hc.bits)
		nbits += hc.len
		bitLen += hc.len
		for nbits >= 8 {
			nbits -= 8
			buf = append(buf, byte(acc>>uint(nbits)))
		}
	}
	if nbits > 0 {
		buf = append(buf, byte(acc<<(8-uint(nbits))))
	}
	return buf, bitLen
}

// Decode reconstructs exactly n symbols from a packed bitstream.
func (t *HuffmanTable) Decode(packed []byte, n int) []uint16 {
	// Build a reverse map from (len, bits) to symbol.
	rev := make(map[huffCode]uint16, len(t.codes))
	maxLen := 0
	for sym, hc := range t.codes {
		rev[hc] = sym
		if hc.len > maxLen {
			maxLen = hc.len
		}
	}
	out := make([]uint16, 0, n)
	var acc uint32
	var accLen int
	bitPos := 0
	for len(out) < n {
		if bitPos >= len(packed)*8 && accLen == 0 {
			panic("quant: Huffman bitstream exhausted")
		}
		// Pull one bit.
		byteIdx := bitPos / 8
		bit := (packed[byteIdx] >> (7 - uint(bitPos%8))) & 1
		bitPos++
		acc = acc<<1 | uint32(bit)
		accLen++
		if sym, ok := rev[huffCode{bits: acc, len: accLen}]; ok {
			out = append(out, sym)
			acc, accLen = 0, 0
		} else if accLen > maxLen {
			panic("quant: invalid Huffman bitstream")
		}
	}
	return out
}

// HuffmanBytes returns the compressed size in bytes for codes: the packed
// bitstream plus a 4-byte-per-entry length table.
func HuffmanBytes(codes []uint16) int64 {
	t := BuildHuffman(codes)
	_, bits := t.Encode(codes)
	return int64((bits+7)/8) + int64(len(t.Lengths))*4
}
