package quant

import (
	"math"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// IntDense is a Dense layer lowered to integer-only arithmetic: weights are
// symmetric int8, activations are quantized to int8 per batch, and the
// matrix product accumulates in int32 — the inference path the tutorial
// cites for integer networks (Jacob et al., WAGE).
type IntDense struct {
	W      []int8 // [in*out], row-major like the float weights
	In     int
	Out    int
	WScale float64 // weight = WScale * int8
	B      []float64
}

// IntMLP is an integer-only inference network: alternating IntDense and
// ReLU, mirroring an nn MLP built by nn.NewMLP (without batchnorm/dropout).
type IntMLP struct {
	Layers []*IntDense
}

// CompileIntMLP lowers a float MLP to the integer inference path. Only
// Dense and ReLU layers are supported; anything else panics. The panic is
// deliberate (constructor-style misuse): the layer set is fixed at build
// time by the programmer, never by runtime data, so an unsupported layer is
// a programming error rather than an input to validate.
func CompileIntMLP(net *nn.Network) *IntMLP {
	m := &IntMLP{}
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *nn.Dense:
			m.Layers = append(m.Layers, lowerDense(v))
		case *nn.ReLU:
			// handled implicitly between IntDense layers
		default:
			panic("quant: CompileIntMLP supports Dense+ReLU networks only")
		}
	}
	return m
}

func lowerDense(d *nn.Dense) *IntDense {
	w := d.W.Value
	scale := w.AbsMax() / 127
	if scale == 0 {
		scale = 1
	}
	out := &IntDense{
		W:      make([]int8, w.Size()),
		In:     d.In(),
		Out:    d.Out(),
		WScale: scale,
		B:      append([]float64(nil), d.B.Value.Data...),
	}
	for i, v := range w.Data {
		q := math.Round(v / scale)
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		out.W[i] = int8(q)
	}
	return out
}

// Forward runs integer-only inference on a [batch, in] input, returning
// float logits. Each layer quantizes its input symmetrically to int8,
// multiplies in int32, then rescales.
func (m *IntMLP) Forward(x *tensor.Tensor) *tensor.Tensor {
	cur := x
	for li, l := range m.Layers {
		batch := cur.Dim(0)
		// Quantize activations symmetrically per batch.
		aScale := cur.AbsMax() / 127
		if aScale == 0 {
			aScale = 1
		}
		qa := make([]int8, cur.Size())
		for i, v := range cur.Data {
			q := math.Round(v / aScale)
			if q > 127 {
				q = 127
			}
			if q < -127 {
				q = -127
			}
			qa[i] = int8(q)
		}
		out := tensor.New(batch, l.Out)
		rescale := aScale * l.WScale
		for b := 0; b < batch; b++ {
			arow := qa[b*l.In : (b+1)*l.In]
			orow := out.Row(b)
			for j := 0; j < l.Out; j++ {
				var acc int32
				for k := 0; k < l.In; k++ {
					acc += int32(arow[k]) * int32(l.W[k*l.Out+j])
				}
				orow[j] = float64(acc)*rescale + l.B[j]
			}
		}
		// ReLU between layers, not after the final logits.
		if li < len(m.Layers)-1 {
			for i, v := range out.Data {
				if v < 0 {
					out.Data[i] = 0
				}
			}
		}
		cur = out
	}
	return cur
}

// Predict returns argmax classes from the integer inference path.
func (m *IntMLP) Predict(x *tensor.Tensor) []int {
	out := m.Forward(x)
	preds := make([]int, out.Dim(0))
	for i := range preds {
		preds[i] = out.ArgMaxRow(i)
	}
	return preds
}

// Accuracy measures argmax accuracy of the integer path.
func (m *IntMLP) Accuracy(x *tensor.Tensor, labels []int) float64 {
	preds := m.Predict(x)
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Bytes returns the integer model's storage: int8 weights + float64 biases.
func (m *IntMLP) Bytes() int64 {
	var b int64
	for _, l := range m.Layers {
		b += int64(len(l.W)) + int64(len(l.B))*8 + 8 // weights + biases + scale
	}
	return b
}
