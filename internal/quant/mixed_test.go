package quant

import (
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
)

func TestUniformAssignmentBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(rng, nn.MLPConfig{In: 4, Hidden: []int{8}, Out: 2})
	a32 := UniformAssignment(net, 32)
	a8 := UniformAssignment(net, 8)
	if a8.Bytes(net) >= a32.Bytes(net) {
		t.Fatal("8-bit assignment should be smaller")
	}
	// Unassigned params default to 32 bits.
	partial := MixedAssignment{}
	if partial.Bytes(net) != a32.Bytes(net) {
		t.Fatal("default width should be 32")
	}
}

func TestLayerSensitivityNonNegativeAtHighBits(t *testing.T) {
	net, train, _, _ := trainSmallMLP(t)
	loss := nn.NewSoftmaxCrossEntropy()
	y := nn.OneHot(train.Labels, 3)
	sens, err := LayerSensitivity(net, loss, train.X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != len(net.Params()) {
		t.Fatalf("sensitivity entries %d != params %d", len(sens), len(net.Params()))
	}
	// Quantizing to 2 bits should hurt (or at least not help much) for the
	// majority of tensors.
	hurt := 0
	for _, v := range sens {
		if v > 0 {
			hurt++
		}
	}
	if hurt < len(sens)/2 {
		t.Fatalf("only %d/%d tensors sensitive to 2-bit quantization", hurt, len(sens))
	}
	// The probe must leave the network unchanged.
	for _, p := range net.Params() {
		for _, v := range p.Value.Data {
			if v != v { // NaN guard
				t.Fatal("probe corrupted weights")
			}
		}
	}
}

func TestMixedSearchRespectsBudget(t *testing.T) {
	net, train, _, _ := trainSmallMLP(t)
	loss := nn.NewSoftmaxCrossEntropy()
	y := nn.OneHot(train.Labels, 3)
	candidates := []int{8, 4, 2}
	full := UniformAssignment(net, 8).Bytes(net)
	budget := full * 6 / 10
	a, ok, err := MixedPrecisionSearch(net, loss, train.X, y, budget, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("search failed")
	}
	if got := a.Bytes(net); got > budget {
		t.Fatalf("assignment %d bytes exceeds budget %d", got, budget)
	}
	// At least one tensor must remain above the floor and one below the top.
	var atTop, belowTop int
	for _, bits := range a {
		if bits == 8 {
			atTop++
		} else {
			belowTop++
		}
	}
	if belowTop == 0 {
		t.Fatal("nothing was squeezed")
	}
}

func TestMixedSearchUnreachableBudget(t *testing.T) {
	net, train, _, _ := trainSmallMLP(t)
	loss := nn.NewSoftmaxCrossEntropy()
	y := nn.OneHot(train.Labels, 3)
	if _, ok, err := MixedPrecisionSearch(net, loss, train.X, y, 10, []int{8, 2}); err != nil || ok {
		t.Fatalf("10-byte budget should be unreachable (ok=%v err=%v)", ok, err)
	}
	// Malformed candidate ladders are errors, not panics.
	if _, _, err := MixedPrecisionSearch(net, loss, train.X, y, 10, []int{8}); err == nil {
		t.Fatal("single candidate width accepted")
	}
	if _, _, err := MixedPrecisionSearch(net, loss, train.X, y, 10, []int{8, 0}); err == nil {
		t.Fatal("zero-bit candidate accepted")
	}
}

func TestMixedBeatsOrMatchesUniformAtEqualBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ds := data.GaussianMixture(rng, 800, 6, 3, 2.5)
	train, test := ds.Split(rng, 0.8)
	cfg := nn.MLPConfig{In: 6, Hidden: []int{32, 32}, Out: 3}
	net := nn.NewMLP(rng, cfg)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(train.X, nn.OneHot(train.Labels, 3), nn.TrainConfig{Epochs: 30, BatchSize: 32})

	// Budget sits between uniform-4 and uniform-2: mixed can spend it
	// unevenly, uniform has to fall back to 2 bits everywhere.
	candidates := []int{8, 4, 2}
	budget := UniformAssignment(net, 4).Bytes(net)*8/10 + UniformAssignment(net, 2).Bytes(net)*2/10
	mixedAcc, uniAcc, mBytes, uBytes, err := MixedVsUniform(
		rand.New(rand.NewSource(1)), net, cfg, nn.NewSoftmaxCrossEntropy(),
		train.X, nn.OneHot(train.Labels, 3), test.X, test.Labels, budget, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if mBytes > budget || uBytes > budget {
		t.Fatalf("budget violated: mixed %d uniform %d budget %d", mBytes, uBytes, budget)
	}
	t.Logf("budget %d: mixed %.3f (%dB) vs uniform %.3f (%dB)", budget, mixedAcc, mBytes, uniAcc, uBytes)
	if mixedAcc < uniAcc-0.02 {
		t.Fatalf("mixed precision (%.3f) should not lose to uniform (%.3f) at equal budget", mixedAcc, uniAcc)
	}
}
