package quant

import (
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// F32Dense is a Dense layer lowered to float32 storage: weights and biases
// are rounded once at compile time, and inference runs entirely in float32
// through the tensor engine's f32 kernel tier. Half the in-memory bytes of
// the float64 model at a fraction of int8's accuracy risk — the middle
// rung of the serving precision ladder (f64 → f32 → int8).
type F32Dense struct {
	W *tensor.Tensor32 // [in, out]
	B *tensor.Tensor32 // [1, out]
}

// F32MLP is a float32 inference network: alternating F32Dense and ReLU,
// mirroring an nn MLP built by nn.NewMLP (without batchnorm/dropout).
type F32MLP struct {
	Layers []*F32Dense
}

// CompileF32MLP lowers a float64 MLP to float32 inference. Only Dense and
// ReLU layers are supported; anything else panics (constructor-style
// misuse, same contract as CompileIntMLP).
func CompileF32MLP(net *nn.Network) *F32MLP {
	m := &F32MLP{}
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *nn.Dense:
			m.Layers = append(m.Layers, &F32Dense{
				W: tensor.ToFloat32(v.W.Value),
				B: tensor.ToFloat32(v.B.Value),
			})
		case *nn.ReLU:
			// handled implicitly between F32Dense layers
		default:
			panic("quant: CompileF32MLP supports Dense+ReLU networks only")
		}
	}
	return m
}

// Forward runs float32 inference on a [batch, in] float64 input, returning
// float32 logits. The input is rounded to float32 once at the boundary;
// everything after stays in float32.
func (m *F32MLP) Forward(x *tensor.Tensor) *tensor.Tensor32 {
	cur := tensor.ToFloat32(x)
	for li, l := range m.Layers {
		out := tensor.MatMul32(cur, l.W)
		tensor.AddRowVector32InPlace(out, l.B)
		// ReLU between layers, not after the final logits.
		if li < len(m.Layers)-1 {
			tensor.ReLU32InPlace(out)
		}
		cur = out
	}
	return cur
}

// Predict returns argmax classes from the float32 inference path.
func (m *F32MLP) Predict(x *tensor.Tensor) []int {
	out := m.Forward(x)
	preds := make([]int, out.Dim(0))
	for i := range preds {
		preds[i] = out.ArgMaxRow(i)
	}
	return preds
}

// Accuracy measures argmax accuracy of the float32 path.
func (m *F32MLP) Accuracy(x *tensor.Tensor, labels []int) float64 {
	preds := m.Predict(x)
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Bytes returns the float32 model's storage: 4 bytes per weight and bias.
func (m *F32MLP) Bytes() int64 {
	var b int64
	for _, l := range m.Layers {
		b += int64(l.W.Size())*4 + int64(l.B.Size())*4
	}
	return b
}
