// Package quant implements the neural-network compression techniques from
// Part 1 of the tutorial (§2.1): linear scalar quantization down to 1 bit,
// k-means codebook (vector) quantization, lossless Huffman coding of
// quantization codes, and an integer-only inference path. Each scheme
// reports its exact storage footprint so experiments can chart the
// accuracy-vs-size tradeoff.
package quant

import (
	"fmt"
	"math"
	"math/rand"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Linear holds a tensor quantized with affine (asymmetric) linear
// quantization: value ≈ Scale·code + Zero, codes in [0, 2^Bits).
type Linear struct {
	Codes []uint16
	Bits  int
	Scale float64
	Zero  float64
	Shape []int
}

// QuantizeLinear quantizes t to the given bit width. The maximum absolute
// reconstruction error is Scale/2 (half a quantization step). Bit widths
// outside [1,16] are a caller error, reported rather than panicking: widths
// often arrive from config files and experiment sweeps, so the library
// boundary validates them.
func QuantizeLinear(t *tensor.Tensor, bits int) (*Linear, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("quant: bits %d out of [1,16]", bits)
	}
	lo, hi := t.Min(), t.Max()
	levels := float64(uint32(1)<<bits - 1)
	scale := (hi - lo) / levels
	if scale == 0 {
		scale = 1 // constant tensor: all codes 0, zero = lo
	}
	q := &Linear{
		Codes: make([]uint16, t.Size()),
		Bits:  bits,
		Scale: scale,
		Zero:  lo,
		Shape: append([]int(nil), t.Shape()...),
	}
	for i, v := range t.Data {
		c := math.Round((v - lo) / scale)
		if c < 0 {
			c = 0
		}
		if c > levels {
			c = levels
		}
		q.Codes[i] = uint16(c)
	}
	return q, nil
}

// Dequantize reconstructs the tensor.
func (q *Linear) Dequantize() *tensor.Tensor {
	t := tensor.New(q.Shape...)
	for i, c := range q.Codes {
		t.Data[i] = q.Scale*float64(c) + q.Zero
	}
	return t
}

// Bytes returns the packed storage size: Bits per code plus the 16-byte
// scale/zero header.
func (q *Linear) Bytes() int64 {
	return (int64(len(q.Codes))*int64(q.Bits)+7)/8 + 16
}

// MaxError returns the worst-case reconstruction error bound, Scale/2.
func (q *Linear) MaxError() float64 { return q.Scale / 2 }

// Codebook holds a tensor quantized against a learned codebook (k-means
// "vector quantization" in its scalar-codebook form, as used by Deep
// Compression): value ≈ Codebook[code].
type Codebook struct {
	Codes    []uint16
	Centers  []float64
	Shape    []int
	CodeBits int
}

// QuantizeKMeans learns a k-entry codebook over t's values with Lloyd's
// algorithm and assigns each value to its nearest center. A codebook size
// outside [2, 65536] is reported as an error.
func QuantizeKMeans(rng *rand.Rand, t *tensor.Tensor, k, iters int) (*Codebook, error) {
	if k < 2 || k > 65536 {
		return nil, fmt.Errorf("quant: k %d out of [2,65536]", k)
	}
	if t.Size() < k {
		k = t.Size()
	}
	// Initialise centers at evenly-spaced quantiles for determinism and
	// good coverage.
	sorted := append([]float64(nil), t.Data...)
	insertionSortF(sorted)
	centers := make([]float64, k)
	for c := range centers {
		idx := c * (len(sorted) - 1) / (k - 1)
		centers[c] = sorted[idx]
	}
	codes := make([]uint16, t.Size())
	for iter := 0; iter < iters; iter++ {
		// Assign.
		changed := false
		for i, v := range t.Data {
			best := nearestCenter(centers, v)
			if codes[i] != uint16(best) {
				codes[i] = uint16(best)
				changed = true
			}
		}
		// Update.
		sum := make([]float64, k)
		cnt := make([]int, k)
		for i, v := range t.Data {
			sum[codes[i]] += v
			cnt[codes[i]]++
		}
		for c := range centers {
			if cnt[c] > 0 {
				centers[c] = sum[c] / float64(cnt[c])
			} else {
				// Re-seed an empty cluster at a random value.
				centers[c] = t.Data[rng.Intn(t.Size())]
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	// Final assignment against the updated centers.
	for i, v := range t.Data {
		codes[i] = uint16(nearestCenter(centers, v))
	}
	bits := 1
	for (1 << bits) < k {
		bits++
	}
	return &Codebook{Codes: codes, Centers: centers, Shape: append([]int(nil), t.Shape()...), CodeBits: bits}, nil
}

func nearestCenter(centers []float64, v float64) int {
	best, bestD := 0, math.Abs(centers[0]-v)
	for c := 1; c < len(centers); c++ {
		if d := math.Abs(centers[c] - v); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// insertionSortF sorts in place; sizes here are small enough that the
// simple algorithm is fine and avoids importing sort for a float slice.
func insertionSortF(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Dequantize reconstructs the tensor from the codebook.
func (q *Codebook) Dequantize() *tensor.Tensor {
	t := tensor.New(q.Shape...)
	for i, c := range q.Codes {
		t.Data[i] = q.Centers[c]
	}
	return t
}

// Bytes returns packed code storage plus the float64 codebook.
func (q *Codebook) Bytes() int64 {
	return (int64(len(q.Codes))*int64(q.CodeBits)+7)/8 + int64(len(q.Centers))*8
}

// QuantizeNetwork returns a copy of the network's weights after a
// quantize-dequantize round trip at the given bit width ("simulated
// quantization"), leaving net untouched, plus the quantized storage size.
// Callers apply the returned state dict to a clone to measure accuracy. An
// out-of-range bit width is reported as an error before any work is done.
func QuantizeNetwork(net *nn.Network, bits int) (state map[string][]float64, bytes int64, err error) {
	state = net.StateDict()
	for _, p := range net.Params() {
		q, err := QuantizeLinear(p.Value, bits)
		if err != nil {
			return nil, 0, err
		}
		bytes += q.Bytes()
		state[p.Name] = q.Dequantize().Data
	}
	return state, bytes, nil
}

// QuantizeNetworkKMeans is QuantizeNetwork with a k-means codebook per
// parameter tensor.
func QuantizeNetworkKMeans(rng *rand.Rand, net *nn.Network, k, iters int) (state map[string][]float64, bytes int64, err error) {
	state = net.StateDict()
	for _, p := range net.Params() {
		q, err := QuantizeKMeans(rng, p.Value, k, iters)
		if err != nil {
			return nil, 0, err
		}
		bytes += q.Bytes()
		state[p.Name] = q.Dequantize().Data
	}
	return state, bytes, nil
}
