package quant

import (
	"fmt"
	"math/rand"
	"sort"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// MixedAssignment maps each parameter (by name) to a bit width — the
// memory-driven mixed-precision setting of Rusci et al. (§2.1): different
// layers tolerate different precision, so a global byte budget is better
// spent unevenly.
type MixedAssignment map[string]int

// Bytes returns the packed storage cost of the assignment over the
// network's parameters.
func (a MixedAssignment) Bytes(net *nn.Network) int64 {
	var total int64
	for _, p := range net.Params() {
		bits, ok := a[p.Name]
		if !ok {
			bits = 32
		}
		total += (int64(p.Value.Size())*int64(bits)+7)/8 + 16
	}
	return total
}

// ApplyMixed returns a state dict with each parameter quantize-dequantized
// at its assigned width. Widths of 32 and above mean "keep full precision";
// anything else must be a valid quantization width or the assignment is
// rejected.
func ApplyMixed(net *nn.Network, a MixedAssignment) (map[string][]float64, error) {
	state := net.StateDict()
	for _, p := range net.Params() {
		bits, ok := a[p.Name]
		if !ok || bits >= 32 {
			continue
		}
		q, err := QuantizeLinear(p.Value, bits)
		if err != nil {
			return nil, fmt.Errorf("quant: assignment for %s: %w", p.Name, err)
		}
		state[p.Name] = q.Dequantize().Data
	}
	return state, nil
}

// UniformAssignment gives every parameter the same width.
func UniformAssignment(net *nn.Network, bits int) MixedAssignment {
	a := MixedAssignment{}
	for _, p := range net.Params() {
		a[p.Name] = bits
	}
	return a
}

// LayerSensitivity measures, per parameter tensor, the loss increase caused
// by quantizing ONLY that tensor to the probe width — the signal that
// drives the mixed-precision search. Lower sensitivity = safe to squeeze.
// An invalid probe width is reported before any parameter is touched.
func LayerSensitivity(net *nn.Network, loss nn.Loss, x, y *tensor.Tensor, probeBits int) (map[string]float64, error) {
	base := evalLoss(net, loss, x, y)
	out := map[string]float64{}
	for _, p := range net.Params() {
		orig := append([]float64(nil), p.Value.Data...)
		q, err := QuantizeLinear(p.Value, probeBits)
		if err != nil {
			return nil, err
		}
		copy(p.Value.Data, q.Dequantize().Data)
		out[p.Name] = evalLoss(net, loss, x, y) - base
		copy(p.Value.Data, orig)
	}
	return out, nil
}

func evalLoss(net *nn.Network, loss nn.Loss, x, y *tensor.Tensor) float64 {
	return loss.Forward(net.Forward(x, false), y)
}

// MixedPrecisionSearch greedily assigns bit widths under a byte budget:
// starting from every tensor at the highest candidate width, it repeatedly
// drops the LEAST sensitive remaining tensor one step down the candidate
// ladder until the budget is met. Returns the assignment, whether the
// budget was achievable, and an error for malformed inputs (fewer than two
// candidate widths, or a candidate outside the quantizable range).
func MixedPrecisionSearch(net *nn.Network, loss nn.Loss, x, y *tensor.Tensor, budget int64, candidates []int) (MixedAssignment, bool, error) {
	if len(candidates) < 2 {
		return nil, false, fmt.Errorf("quant: need at least two candidate widths, got %d", len(candidates))
	}
	sorted := append([]int(nil), candidates...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	sens, err := LayerSensitivity(net, loss, x, y, sorted[len(sorted)-1])
	if err != nil {
		return nil, false, err
	}

	a := UniformAssignment(net, sorted[0])
	level := map[string]int{} // index into sorted per param
	sizes := map[string]int{}
	for _, p := range net.Params() {
		level[p.Name] = 0
		sizes[p.Name] = p.Value.Size()
	}
	for a.Bytes(net) > budget {
		// Drop the parameter with the least sensitivity PER BYTE SAVED:
		// squeezing a huge insensitive tensor beats squeezing a tiny one.
		bestName := ""
		bestScore := 0.0
		for _, p := range net.Params() {
			lv := level[p.Name]
			if lv >= len(sorted)-1 {
				continue
			}
			saved := float64(sizes[p.Name]) * float64(sorted[lv]-sorted[lv+1]) / 8
			if saved <= 0 {
				continue
			}
			score := sens[p.Name] / saved
			if bestName == "" || score < bestScore {
				bestName, bestScore = p.Name, score
			}
		}
		if bestName == "" {
			return a, false, nil // everything already at the floor
		}
		level[bestName]++
		a[bestName] = sorted[level[bestName]]
	}
	return a, true, nil
}

// MixedVsUniform runs the standard comparison: accuracy of the searched
// mixed assignment against the best uniform assignment fitting the same
// budget. Returns (mixedAcc, uniformAcc, mixedBytes, uniformBytes).
func MixedVsUniform(rng *rand.Rand, net *nn.Network, cfg nn.MLPConfig, loss nn.Loss,
	calibX, calibY, testX *tensor.Tensor, testLabels []int, budget int64, candidates []int) (float64, float64, int64, int64, error) {
	mixed, ok, err := MixedPrecisionSearch(net, loss, calibX, calibY, budget, candidates)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("quant: budget %d unreachable", budget)
	}
	mstate, err := ApplyMixed(net, mixed)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	mnet := nn.NewMLP(rng, cfg)
	mnet.LoadStateDict(mstate)
	mixedAcc := mnet.Accuracy(testX, testLabels)

	// Best uniform width that fits the budget.
	uniBits := 0
	for _, b := range candidates {
		if UniformAssignment(net, b).Bytes(net) <= budget && b > uniBits {
			uniBits = b
		}
	}
	if uniBits == 0 {
		return 0, 0, 0, 0, fmt.Errorf("quant: no uniform width fits budget %d", budget)
	}
	uni := UniformAssignment(net, uniBits)
	ustate, err := ApplyMixed(net, uni)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	unet := nn.NewMLP(rng, cfg)
	unet.LoadStateDict(ustate)
	return mixedAcc, unet.Accuracy(testX, testLabels), mixed.Bytes(net), uni.Bytes(net), nil
}
