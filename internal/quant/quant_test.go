package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dlsys/internal/data"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// mustLinear and mustKMeans unwrap the error returns for the in-range
// widths these tests use.
func mustLinear(t *testing.T, x *tensor.Tensor, bits int) *Linear {
	t.Helper()
	q, err := QuantizeLinear(x, bits)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func mustKMeans(t *testing.T, rng *rand.Rand, x *tensor.Tensor, k, iters int) *Codebook {
	t.Helper()
	q, err := QuantizeKMeans(rng, x, k, iters)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQuantizeLinearErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 0, 2, 50, 20)
	for _, bits := range []int{1, 2, 4, 8, 16} {
		q := mustLinear(t, x, bits)
		back := q.Dequantize()
		bound := q.MaxError() + 1e-12
		for i := range x.Data {
			if e := math.Abs(x.Data[i] - back.Data[i]); e > bound {
				t.Fatalf("bits=%d: error %g exceeds bound %g", bits, e, bound)
			}
		}
	}
}

func TestQuantizeLinearMonotoneErrorInBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandNormal(rng, 0, 1, 100, 10)
	prev := math.Inf(1)
	for _, bits := range []int{1, 2, 4, 8} {
		q := mustLinear(t, x, bits)
		back := q.Dequantize()
		var mse float64
		for i := range x.Data {
			d := x.Data[i] - back.Data[i]
			mse += d * d
		}
		if mse >= prev {
			t.Fatalf("MSE not decreasing with bits: %g at %d bits (prev %g)", mse, bits, prev)
		}
		prev = mse
	}
}

func TestQuantizeLinearConstantTensor(t *testing.T) {
	x := tensor.Full(3.14, 4, 4)
	q := mustLinear(t, x, 8)
	back := q.Dequantize()
	if !tensor.Equal(x, back, 1e-12) {
		t.Fatal("constant tensor should reconstruct exactly")
	}
}

func TestQuantizeLinearBytesScaleWithBits(t *testing.T) {
	x := tensor.New(1000)
	b8 := mustLinear(t, x, 8).Bytes()
	b4 := mustLinear(t, x, 4).Bytes()
	b1 := mustLinear(t, x, 1).Bytes()
	if b8 != 1016 || b4 != 516 || b1 != 141 {
		t.Fatalf("bytes: b8=%d b4=%d b1=%d", b8, b4, b1)
	}
}

func TestQuantizeLinearPropertyQuick(t *testing.T) {
	f := func(vals []float64, bitsRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		bits := int(bitsRaw%16) + 1
		x := tensor.FromSlice(append([]float64(nil), vals...), len(vals))
		q, err := QuantizeLinear(x, bits)
		if err != nil {
			return false
		}
		back := q.Dequantize()
		bound := q.MaxError() * (1 + 1e-9)
		for i := range vals {
			if math.Abs(vals[i]-back.Data[i]) > bound+1e-300 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansCodebookBeatsLinearAtSameBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Bimodal distribution: k-means should place centers at the modes,
	// beating uniform linear levels.
	x := tensor.New(2000)
	for i := range x.Data {
		if i%2 == 0 {
			x.Data[i] = -3 + 0.1*rng.NormFloat64()
		} else {
			x.Data[i] = 5 + 0.1*rng.NormFloat64()
		}
	}
	lin := mustLinear(t, x, 1) // 2 levels
	km := mustKMeans(t, rng, x, 2, 20)
	mse := func(back *tensor.Tensor) float64 {
		var s float64
		for i := range x.Data {
			d := x.Data[i] - back.Data[i]
			s += d * d
		}
		return s
	}
	if mse(km.Dequantize()) >= mse(lin.Dequantize()) {
		t.Fatal("k-means should beat linear quantization on bimodal data")
	}
}

func TestKMeansMoreCentersLowerError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandNormal(rng, 0, 1, 1500)
	var prev float64 = math.Inf(1)
	for _, k := range []int{2, 4, 16, 64} {
		km := mustKMeans(t, rng, x, k, 15)
		back := km.Dequantize()
		var mse float64
		for i := range x.Data {
			d := x.Data[i] - back.Data[i]
			mse += d * d
		}
		if mse >= prev {
			t.Fatalf("k=%d MSE %g did not improve on %g", k, mse, prev)
		}
		prev = mse
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codes := make([]uint16, 5000)
	for i := range codes {
		// Skewed distribution so Huffman actually compresses.
		codes[i] = uint16(rng.ExpFloat64() * 3)
	}
	table := BuildHuffman(codes)
	packed, bits := table.Encode(codes)
	if len(packed) != (bits+7)/8 {
		t.Fatalf("packed %d bytes for %d bits", len(packed), bits)
	}
	decoded := table.Decode(packed, len(codes))
	for i := range codes {
		if decoded[i] != codes[i] {
			t.Fatalf("round trip mismatch at %d: %d != %d", i, decoded[i], codes[i])
		}
	}
	// Skewed data must compress below fixed 16-bit and below 8-bit.
	if bits >= len(codes)*8 {
		t.Fatalf("no compression: %d bits for %d skewed symbols", bits, len(codes))
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	codes := []uint16{7, 7, 7, 7}
	table := BuildHuffman(codes)
	packed, _ := table.Encode(codes)
	decoded := table.Decode(packed, 4)
	for _, d := range decoded {
		if d != 7 {
			t.Fatal("single-symbol round trip failed")
		}
	}
}

func TestHuffmanRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		codes := make([]uint16, len(raw))
		for i, b := range raw {
			codes[i] = uint16(b % 17)
		}
		table := BuildHuffman(codes)
		packed, _ := table.Encode(codes)
		decoded := table.Decode(packed, len(codes))
		for i := range codes {
			if decoded[i] != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// trainSmallMLP trains a small classifier for the network-level tests.
func trainSmallMLP(t *testing.T) (*nn.Network, *data.Dataset, *data.Dataset, nn.MLPConfig) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	ds := data.GaussianMixture(rng, 500, 4, 3, 4)
	train, test := ds.Split(rng, 0.8)
	cfg := nn.MLPConfig{In: 4, Hidden: []int{16}, Out: 3}
	net := nn.NewMLP(rng, cfg)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(train.X, nn.OneHot(train.Labels, 3), nn.TrainConfig{Epochs: 25, BatchSize: 32})
	return net, train, test, cfg
}

func TestQuantizeNetworkPreservesAccuracyAt8Bits(t *testing.T) {
	net, _, test, cfg := trainSmallMLP(t)
	base := net.Accuracy(test.X, test.Labels)
	state, bytes, err := QuantizeNetwork(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	qnet := nn.NewMLP(rand.New(rand.NewSource(1)), cfg)
	qnet.LoadStateDict(state)
	qacc := qnet.Accuracy(test.X, test.Labels)
	if qacc < base-0.05 {
		t.Fatalf("8-bit accuracy dropped: %.3f vs %.3f", qacc, base)
	}
	if bytes >= net.ParamBytes(32) {
		t.Fatalf("8-bit model (%d B) not smaller than float32 (%d B)", bytes, net.ParamBytes(32))
	}
}

func TestIntMLPMatchesFloatAccuracy(t *testing.T) {
	net, _, test, _ := trainSmallMLP(t)
	base := net.Accuracy(test.X, test.Labels)
	im := CompileIntMLP(net)
	iacc := im.Accuracy(test.X, test.Labels)
	if iacc < base-0.05 {
		t.Fatalf("int8 inference accuracy %.3f vs float %.3f", iacc, base)
	}
	if im.Bytes() >= net.ParamBytes(32) {
		t.Fatalf("int8 model not smaller: %d vs %d", im.Bytes(), net.ParamBytes(32))
	}
}

func TestIntMLPForwardCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{8}, Out: 3})
	im := CompileIntMLP(net)
	x := tensor.RandNormal(rng, 0, 1, 10, 5)
	fo := net.Forward(x, false)
	io := im.Forward(x)
	// Relative agreement within a few percent of the dynamic range.
	scale := fo.AbsMax()
	for i := range fo.Data {
		if math.Abs(fo.Data[i]-io.Data[i]) > 0.05*scale+1e-6 {
			t.Fatalf("int path diverges at %d: %g vs %g", i, io.Data[i], fo.Data[i])
		}
	}
}

func TestQuantizeBadRangesReturnErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandNormal(rng, 0, 1, 4, 4)
	for _, bits := range []int{0, -1, 17, 32} {
		if _, err := QuantizeLinear(x, bits); err == nil {
			t.Fatalf("bits=%d accepted", bits)
		}
	}
	for _, k := range []int{0, 1, 65537} {
		if _, err := QuantizeKMeans(rng, x, k, 5); err == nil {
			t.Fatalf("k=%d accepted", k)
		}
	}
	net := nn.NewMLP(rng, nn.MLPConfig{In: 3, Hidden: []int{4}, Out: 2})
	if _, _, err := QuantizeNetwork(net, 0); err == nil {
		t.Fatal("QuantizeNetwork accepted bits=0")
	}
	if _, _, err := QuantizeNetworkKMeans(rng, net, 1, 5); err == nil {
		t.Fatal("QuantizeNetworkKMeans accepted k=1")
	}
}
