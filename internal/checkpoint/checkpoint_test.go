package checkpoint

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/device"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// deepMLP builds an n-block Dense+ReLU chain for checkpointing tests.
func deepMLP(rng *rand.Rand, blocks, width int) *nn.Network {
	var layers []nn.Layer
	prev := width
	for i := 0; i < blocks; i++ {
		layers = append(layers,
			nn.NewDense(rng, name("fc", i), prev, width),
			nn.NewReLU(name("relu", i)))
	}
	layers = append(layers, nn.NewDense(rng, "head", width, 3))
	return nn.NewNetwork(layers...)
}

func name(p string, i int) string { return p + string(rune('a'+i)) }

func uniformModel(n int) CostModel {
	cm := CostModel{}
	for i := 0; i < n; i++ {
		cm.Sizes = append(cm.Sizes, 100)
		cm.Costs = append(cm.Costs, 1000)
	}
	return cm
}

func TestStoreAllVsSqrtNMemory(t *testing.T) {
	cm := uniformModel(36)
	all := cm.PeakMemory(StoreAll(36))
	sq := cm.PeakMemory(SqrtN(36))
	if sq >= all/2 {
		t.Fatalf("sqrt(n) memory %d not well below store-all %d", sq, all)
	}
	if cm.RecomputeFLOPs(StoreAll(36)) != 0 {
		t.Fatal("store-all should not recompute")
	}
	if cm.RecomputeFLOPs(SqrtN(36)) == 0 {
		t.Fatal("sqrt(n) must recompute something")
	}
	// Sublinear scaling: memory grows ~sqrt with depth.
	m36 := cm.PeakMemory(SqrtN(36))
	cm144 := uniformModel(144)
	m144 := cm144.PeakMemory(SqrtN(144))
	if float64(m144) > 2.6*float64(m36) {
		t.Fatalf("memory should grow ~2x from n=36 to n=144 (sqrt), got %d -> %d", m36, m144)
	}
}

func TestRecomputeAtMostOneExtraForward(t *testing.T) {
	cm := uniformModel(49)
	var totalC int64
	for _, c := range cm.Costs {
		totalC += c
	}
	if extra := cm.RecomputeFLOPs(SqrtN(49)); extra > totalC {
		t.Fatalf("recompute %d exceeds one forward %d", extra, totalC)
	}
}

func TestOptimalPlanRespectsBudget(t *testing.T) {
	cm := uniformModel(32)
	// The single-recompute scheme needs at least ~2·√n·size ≈ 1150 here.
	for _, budget := range []int64{1300, 1600, 2000, 3200} {
		plan, ok := cm.OptimalPlan(budget)
		if !ok {
			t.Fatalf("no plan found for budget %d", budget)
		}
		if got := cm.PeakMemory(plan); got > budget {
			t.Fatalf("budget %d violated: peak %d", budget, got)
		}
	}
}

func TestOptimalPlanBeatsOrMatchesSqrtN(t *testing.T) {
	cm := uniformModel(36)
	sq := SqrtN(36)
	budget := cm.PeakMemory(sq)
	opt, ok := cm.OptimalPlan(budget)
	if !ok {
		t.Fatal("optimal plan infeasible at sqrt(n)'s own budget")
	}
	if cm.RecomputeFLOPs(opt) > cm.RecomputeFLOPs(sq) {
		t.Fatalf("optimal recompute %d worse than sqrt(n) %d at same budget",
			cm.RecomputeFLOPs(opt), cm.RecomputeFLOPs(sq))
	}
}

func TestOptimalPlanInfeasibleBudget(t *testing.T) {
	cm := uniformModel(8)
	if _, ok := cm.OptimalPlan(50); ok {
		t.Fatal("budget below a single activation must be infeasible")
	}
}

func TestOptimalPlanUsesStoreAllWhenRoomy(t *testing.T) {
	cm := uniformModel(8)
	plan, ok := cm.OptimalPlan(1 << 30)
	if !ok || cm.RecomputeFLOPs(plan) != 0 {
		t.Fatal("with a huge budget the plan should store everything")
	}
}

// The core correctness property: checkpointed training produces the exact
// gradients of standard training.
func TestRunnerGradientsMatchStandardBackprop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	blocks := 8
	net := deepMLP(rng, blocks, 16)
	x := tensor.RandNormal(rng, 0, 1, 12, 16)
	y := nn.OneHot([]int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}, 3)

	// Reference gradients.
	ref := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(0), rng)
	refLoss := ref.ComputeGrad(x, y)
	refGrads := net.GradVector()

	for _, plan := range []Plan{StoreAll(len(net.Layers)), SqrtN(len(net.Layers))} {
		r := &Runner{Net: net, Plan: plan}
		loss := r.Run(x, nn.NewSoftmaxCrossEntropy(), y)
		if math.Abs(loss-refLoss) > 1e-12 {
			t.Fatalf("loss mismatch: %g vs %g", loss, refLoss)
		}
		got := net.GradVector()
		for i := range got {
			if math.Abs(got[i]-refGrads[i]) > 1e-12 {
				t.Fatalf("gradient mismatch at %d: %g vs %g", i, got[i], refGrads[i])
			}
		}
	}
}

func TestRunnerMemoryOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := deepMLP(rng, 16, 32)
	x := tensor.RandNormal(rng, 0, 1, 8, 32)
	labels := make([]int, 8)
	y := nn.OneHot(labels, 3)

	all := &Runner{Net: net, Plan: StoreAll(len(net.Layers))}
	all.Run(x, nn.NewSoftmaxCrossEntropy(), y)
	sq := &Runner{Net: net, Plan: SqrtN(len(net.Layers))}
	sq.Run(x, nn.NewSoftmaxCrossEntropy(), y)

	if sq.PeakFloats >= all.PeakFloats {
		t.Fatalf("sqrt(n) peak %d not below store-all %d", sq.PeakFloats, all.PeakFloats)
	}
	if all.ExtraForwards != 0 {
		t.Fatalf("store-all recomputed %d forwards", all.ExtraForwards)
	}
	if sq.ExtraForwards == 0 {
		t.Fatal("sqrt(n) should recompute forwards")
	}
}

func TestRunnerTrainsToConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := deepMLP(rng, 4, 16)
	// Tiny classification task on random separable data.
	x := tensor.RandNormal(rng, 0, 1, 60, 16)
	labels := make([]int, 60)
	for i := range labels {
		if x.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	y := nn.OneHot(labels, 3)
	r := &Runner{Net: net, Plan: SqrtN(len(net.Layers))}
	opt := nn.NewAdam(0.01)
	loss := nn.NewSoftmaxCrossEntropy()
	var first, last float64
	for step := 0; step < 120; step++ {
		l := r.Run(x, loss, y)
		opt.Step(net.Params())
		net.PostStep()
		if step == 0 {
			first = l
		}
		last = l
	}
	if last > first/3 {
		t.Fatalf("checkpointed training failed to converge: %g -> %g", first, last)
	}
}

func TestFromNetworkCostModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := deepMLP(rng, 3, 8)
	cm := FromNetwork(net, []int{8}, 4)
	if len(cm.Sizes) != len(net.Layers) {
		t.Fatalf("size entries %d != layers %d", len(cm.Sizes), len(net.Layers))
	}
	// Every Dense/ReLU output here is batch*width floats except the head.
	for i := 0; i < len(cm.Sizes)-1; i++ {
		if cm.Sizes[i] != 4*8 {
			t.Fatalf("layer %d activation %d, want 32", i, cm.Sizes[i])
		}
	}
	if cm.Sizes[len(cm.Sizes)-1] != 4*3 {
		t.Fatal("head activation wrong")
	}
}

func TestOffloadModel(t *testing.T) {
	devBytes, extra := OffloadModel(device.GPUSmall, 1e9, 0.5)
	if devBytes != 5e8 {
		t.Fatalf("device bytes %d", devBytes)
	}
	want := 2 * (device.GPUSmall.LinkLatencyS + 5e8/device.GPUSmall.LinkBandwidth)
	if math.Abs(extra-want) > 1e-12 {
		t.Fatalf("extra seconds %g, want %g", extra, want)
	}
	// Monotone: more offload, more time, less memory.
	d0, t0 := OffloadModel(device.GPUSmall, 1e9, 0)
	d1, t1 := OffloadModel(device.GPUSmall, 1e9, 1)
	if d1 >= d0 || t1 <= t0 {
		t.Fatal("offload monotonicity violated")
	}
}

func TestSegmentsPartitionChain(t *testing.T) {
	p := SqrtN(10)
	segs := p.Segments()
	prevEnd := -1
	for _, s := range segs {
		if s[0] != prevEnd {
			t.Fatalf("segments not contiguous: %v", segs)
		}
		prevEnd = s[1]
	}
	if prevEnd != 9 {
		t.Fatalf("segments do not cover chain: %v", segs)
	}
}
