package checkpoint

import (
	"math/rand"
	"testing"

	"dlsys/internal/nn"
)

// The store is a true ring: capacity never grows, the oldest snapshot is
// displaced (payload released) as new ones arrive, and eviction is
// accounted so experiments can report the storage a bounded ring saved.
func TestStoreRingEviction(t *testing.T) {
	st := NewStore(3)
	if st.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", st.Cap())
	}
	var totalBytes int64
	for step := 1; step <= 10; step++ {
		snap := SnapshotVector(step, []float64{float64(step)})
		totalBytes += snap.Bytes()
		st.Put(snap)
		wantLen := step
		if wantLen > 3 {
			wantLen = 3
		}
		if st.Len() != wantLen {
			t.Fatalf("after put %d: Len = %d, want %d", step, st.Len(), wantLen)
		}
	}
	if st.Evicted() != 7 {
		t.Fatalf("Evicted = %d, want 7", st.Evicted())
	}
	// Each 1-param snapshot is 8 payload + 12 header bytes.
	if want := int64(7 * 20); st.EvictedBytes() != want {
		t.Fatalf("EvictedBytes = %d, want %d", st.EvictedBytes(), want)
	}
	// The three newest survive, oldest first.
	latest, ok := st.Latest()
	if !ok || latest.Step != 10 {
		t.Fatalf("Latest = (%v, %v), want step 10", latest.Step, ok)
	}
	for i, wantStep := range []int{8, 9, 10} {
		if got := st.at(i).Step; got != wantStep {
			t.Fatalf("slot %d holds step %d, want %d", i, got, wantStep)
		}
	}
}

// Restore still walks newest→oldest across the ring's wrap point, skipping
// CRC failures.
func TestStoreRingRestoreSkipsCorruptAcrossWrap(t *testing.T) {
	net := nn.NewMLP(rand.New(rand.NewSource(1)), snapArch)
	st := NewStore(2)
	// Fill past capacity so the ring has wrapped, then corrupt the newest.
	for step := 1; step <= 5; step++ {
		net.ParamVector() // no-op touch; each snapshot captures current params
		st.Put(TakeSnapshot(step, net))
	}
	newest, _ := st.Latest()
	if newest.Step != 5 {
		t.Fatalf("newest step %d, want 5", newest.Step)
	}
	st.at(st.Len() - 1).Payload[3] ^= 0x10
	got, skipped, err := st.Restore(net)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if skipped != 1 || got.Step != 4 {
		t.Fatalf("restored step %d with %d skipped, want step 4 / 1 skipped", got.Step, skipped)
	}
}

func TestStoreRingAllCorruptFails(t *testing.T) {
	net := nn.NewMLP(rand.New(rand.NewSource(2)), snapArch)
	st := NewStore(2)
	for step := 1; step <= 2; step++ {
		snap := TakeSnapshot(step, net)
		snap.Payload[0] ^= 0xFF
		st.Put(snap)
	}
	if _, skipped, err := st.Restore(net); err == nil || skipped != 2 {
		t.Fatalf("restore of all-corrupt store: err=%v skipped=%d", err, skipped)
	}
}

// An evicted slot must not pin its payload: the ring releases the
// reference at eviction time rather than waiting for the overwrite.
func TestStoreRingReleasesEvictedPayloads(t *testing.T) {
	st := NewStore(1)
	st.Put(SnapshotVector(1, make([]float64, 1024)))
	held := &st.ring[0]
	st.Put(SnapshotVector(2, make([]float64, 1024)))
	if held.Step != 2 {
		t.Fatalf("slot holds step %d after overwrite, want 2", held.Step)
	}
	if st.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", st.Evicted())
	}
}
