package checkpoint

// This file adds model-state snapshots: the crash-recovery complement to
// the package's activation recomputation. A Snapshot is a CRC-protected
// serialization of a network's parameter vector; distributed training
// takes one periodically and a crashed worker rejoins by restoring the
// latest one, with corruption (a bit flip in flight or at rest) detected
// by the checksum rather than silently poisoning the model.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"dlsys/internal/nn"
)

// ErrCorrupt is returned when a snapshot's payload fails its CRC.
var ErrCorrupt = errors.New("checkpoint: snapshot payload fails CRC")

// Snapshot is one CRC-protected capture of a model's parameters.
type Snapshot struct {
	Step    int    // training step/round at which it was taken
	Payload []byte // little-endian float64 parameter vector
	CRC     uint32 // crc32 (IEEE) over Payload
}

// TakeSnapshot serializes the network's current parameter vector.
func TakeSnapshot(step int, net *nn.Network) Snapshot {
	return SnapshotVector(step, net.ParamVector())
}

// SnapshotVector serializes an already-flattened parameter vector.
func SnapshotVector(step int, params []float64) Snapshot {
	payload := make([]byte, 8*len(params))
	for i, v := range params {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
	}
	return Snapshot{Step: step, Payload: payload, CRC: crc32.ChecksumIEEE(payload)}
}

// Bytes returns the snapshot's wire/storage size including the header.
func (s Snapshot) Bytes() int64 { return int64(len(s.Payload)) + 12 }

// Verify reports whether the payload still matches its checksum.
func (s Snapshot) Verify() bool { return crc32.ChecksumIEEE(s.Payload) == s.CRC }

// Params decodes the parameter vector, first verifying the CRC.
func (s Snapshot) Params() ([]float64, error) {
	if !s.Verify() {
		return nil, ErrCorrupt
	}
	if len(s.Payload)%8 != 0 {
		return nil, fmt.Errorf("checkpoint: snapshot payload %d bytes is not a float64 vector", len(s.Payload))
	}
	params := make([]float64, len(s.Payload)/8)
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(s.Payload[8*i:]))
	}
	return params, nil
}

// Restore verifies the CRC and writes the snapshot's parameters back into
// the network. The network must have the same parameter count.
func (s Snapshot) Restore(net *nn.Network) error {
	params, err := s.Params()
	if err != nil {
		return err
	}
	if got, want := len(params), net.NumParams(); got != want {
		return fmt.Errorf("checkpoint: snapshot holds %d params, network has %d", got, want)
	}
	net.SetParamVector(params)
	return nil
}

// Store keeps a bounded history of snapshots in a fixed-capacity ring and
// restores from the newest one that still verifies, so a corrupted latest
// snapshot degrades to the previous good one instead of failing recovery
// outright. The ring never grows past its retention bound: an evicted
// slot's payload reference is released immediately (not merely trimmed off
// a shared backing array), so long elastic runs with periodic snapshots
// hold memory proportional to keep, not to rounds elapsed.
type Store struct {
	keep         int
	ring         []Snapshot // fixed capacity keep; slot next is the oldest when full
	next         int        // slot the next Put writes
	n            int        // resident snapshots (<= keep)
	evicted      int        // snapshots displaced over the store's lifetime
	evictedBytes int64      // their total payload+header bytes
}

// NewStore builds a store retaining the last keep snapshots (min 1).
func NewStore(keep int) *Store {
	if keep < 1 {
		keep = 1
	}
	return &Store{keep: keep, ring: make([]Snapshot, keep)}
}

// Put records a snapshot, evicting the oldest beyond the retention bound
// and freeing the evicted payload.
func (st *Store) Put(s Snapshot) {
	if st.n == st.keep {
		old := &st.ring[st.next]
		st.evicted++
		st.evictedBytes += old.Bytes()
		old.Payload = nil // release, don't wait for the overwrite below
	} else {
		st.n++
	}
	st.ring[st.next] = s
	st.next = (st.next + 1) % st.keep
}

// Len returns the number of retained snapshots.
func (st *Store) Len() int { return st.n }

// Cap returns the retention bound.
func (st *Store) Cap() int { return st.keep }

// Evicted returns how many snapshots the retention bound has displaced
// over the store's lifetime.
func (st *Store) Evicted() int { return st.evicted }

// EvictedBytes returns the total size of displaced snapshots — the storage
// traffic a bounded ring saved relative to keeping full history resident.
func (st *Store) EvictedBytes() int64 { return st.evictedBytes }

// at returns the i-th retained snapshot, oldest first (i in [0, Len)).
func (st *Store) at(i int) *Snapshot {
	return &st.ring[(st.next-st.n+i+st.keep)%st.keep]
}

// Latest returns the newest retained snapshot (unverified).
func (st *Store) Latest() (Snapshot, bool) {
	if st.n == 0 {
		return Snapshot{}, false
	}
	return *st.at(st.n - 1), true
}

// Restore writes the newest verifiable snapshot into the network and
// returns it, along with how many newer snapshots failed their CRC and
// were skipped. It returns an error only when no retained snapshot
// verifies.
func (st *Store) Restore(net *nn.Network) (Snapshot, int, error) {
	skipped := 0
	for i := st.n - 1; i >= 0; i-- {
		if err := st.at(i).Restore(net); err == nil {
			return *st.at(i), skipped, nil
		}
		skipped++
	}
	return Snapshot{}, skipped, fmt.Errorf("checkpoint: no verifiable snapshot among %d retained: %w", st.n, ErrCorrupt)
}
