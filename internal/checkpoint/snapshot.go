package checkpoint

// This file adds model-state snapshots: the crash-recovery complement to
// the package's activation recomputation. A Snapshot is a CRC-protected
// serialization of a network's parameter vector; distributed training
// takes one periodically and a crashed worker rejoins by restoring the
// latest one, with corruption (a bit flip in flight or at rest) detected
// by the checksum rather than silently poisoning the model.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"dlsys/internal/nn"
)

// ErrCorrupt is returned when a snapshot's payload fails its CRC.
var ErrCorrupt = errors.New("checkpoint: snapshot payload fails CRC")

// Snapshot is one CRC-protected capture of a model's parameters.
type Snapshot struct {
	Step    int    // training step/round at which it was taken
	Payload []byte // little-endian float64 parameter vector
	CRC     uint32 // crc32 (IEEE) over Payload
}

// TakeSnapshot serializes the network's current parameter vector.
func TakeSnapshot(step int, net *nn.Network) Snapshot {
	return SnapshotVector(step, net.ParamVector())
}

// SnapshotVector serializes an already-flattened parameter vector.
func SnapshotVector(step int, params []float64) Snapshot {
	payload := make([]byte, 8*len(params))
	for i, v := range params {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
	}
	return Snapshot{Step: step, Payload: payload, CRC: crc32.ChecksumIEEE(payload)}
}

// Bytes returns the snapshot's wire/storage size including the header.
func (s Snapshot) Bytes() int64 { return int64(len(s.Payload)) + 12 }

// Verify reports whether the payload still matches its checksum.
func (s Snapshot) Verify() bool { return crc32.ChecksumIEEE(s.Payload) == s.CRC }

// Params decodes the parameter vector, first verifying the CRC.
func (s Snapshot) Params() ([]float64, error) {
	if !s.Verify() {
		return nil, ErrCorrupt
	}
	if len(s.Payload)%8 != 0 {
		return nil, fmt.Errorf("checkpoint: snapshot payload %d bytes is not a float64 vector", len(s.Payload))
	}
	params := make([]float64, len(s.Payload)/8)
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(s.Payload[8*i:]))
	}
	return params, nil
}

// Restore verifies the CRC and writes the snapshot's parameters back into
// the network. The network must have the same parameter count.
func (s Snapshot) Restore(net *nn.Network) error {
	params, err := s.Params()
	if err != nil {
		return err
	}
	if got, want := len(params), net.NumParams(); got != want {
		return fmt.Errorf("checkpoint: snapshot holds %d params, network has %d", got, want)
	}
	net.SetParamVector(params)
	return nil
}

// Store keeps a bounded history of snapshots and restores from the newest
// one that still verifies, so a corrupted latest snapshot degrades to the
// previous good one instead of failing recovery outright.
type Store struct {
	keep  int
	snaps []Snapshot // oldest first
}

// NewStore builds a store retaining the last keep snapshots (min 1).
func NewStore(keep int) *Store {
	if keep < 1 {
		keep = 1
	}
	return &Store{keep: keep}
}

// Put records a snapshot, evicting the oldest beyond the retention bound.
func (st *Store) Put(s Snapshot) {
	st.snaps = append(st.snaps, s)
	if len(st.snaps) > st.keep {
		st.snaps = st.snaps[len(st.snaps)-st.keep:]
	}
}

// Len returns the number of retained snapshots.
func (st *Store) Len() int { return len(st.snaps) }

// Latest returns the newest retained snapshot (unverified).
func (st *Store) Latest() (Snapshot, bool) {
	if len(st.snaps) == 0 {
		return Snapshot{}, false
	}
	return st.snaps[len(st.snaps)-1], true
}

// Restore writes the newest verifiable snapshot into the network and
// returns it, along with how many newer snapshots failed their CRC and
// were skipped. It returns an error only when no retained snapshot
// verifies.
func (st *Store) Restore(net *nn.Network) (Snapshot, int, error) {
	skipped := 0
	for i := len(st.snaps) - 1; i >= 0; i-- {
		if err := st.snaps[i].Restore(net); err == nil {
			return st.snaps[i], skipped, nil
		}
		skipped++
	}
	return Snapshot{}, skipped, fmt.Errorf("checkpoint: no verifiable snapshot among %d retained: %w", len(st.snaps), ErrCorrupt)
}
