package checkpoint

import (
	"errors"
	"math/rand"
	"testing"

	"dlsys/internal/nn"
)

var snapArch = nn.MLPConfig{In: 6, Hidden: []int{16, 8}, Out: 3}

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	net := nn.NewMLP(rand.New(rand.NewSource(1)), snapArch)
	want := net.ParamVector()
	snap := TakeSnapshot(42, net)
	if snap.Step != 42 {
		t.Fatalf("step %d != 42", snap.Step)
	}
	if !snap.Verify() {
		t.Fatal("fresh snapshot fails its own CRC")
	}

	other := nn.NewMLP(rand.New(rand.NewSource(2)), snapArch)
	if err := snap.Restore(other); err != nil {
		t.Fatalf("restore: %v", err)
	}
	got := other.ParamVector()
	if len(got) != len(want) {
		t.Fatalf("param count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored param %d is %g, want bit-identical %g", i, got[i], want[i])
		}
	}
}

func TestCorruptedSnapshotRejected(t *testing.T) {
	net := nn.NewMLP(rand.New(rand.NewSource(3)), snapArch)
	snap := TakeSnapshot(1, net)
	snap.Payload[17] ^= 0x40 // single bit flip anywhere must be caught
	if snap.Verify() {
		t.Fatal("CRC missed a bit flip")
	}
	before := net.ParamVector()
	err := snap.Restore(net)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("restore of corrupt snapshot returned %v, want ErrCorrupt", err)
	}
	after := net.ParamVector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("failed restore must not touch the network")
		}
	}
}

func TestSnapshotSizeMismatchRejected(t *testing.T) {
	small := nn.NewMLP(rand.New(rand.NewSource(4)), nn.MLPConfig{In: 2, Hidden: []int{3}, Out: 2})
	big := nn.NewMLP(rand.New(rand.NewSource(5)), snapArch)
	snap := TakeSnapshot(0, small)
	if err := snap.Restore(big); err == nil {
		t.Fatal("mismatched parameter count accepted")
	}
}

func TestSnapshotVector(t *testing.T) {
	params := []float64{1.5, -2.25, 0, 3e-9}
	snap := SnapshotVector(7, params)
	got, err := snap.Params()
	if err != nil {
		t.Fatalf("params: %v", err)
	}
	for i := range params {
		if got[i] != params[i] {
			t.Fatalf("decoded %g != %g", got[i], params[i])
		}
	}
	if snap.Bytes() != int64(8*len(params))+12 {
		t.Fatalf("bytes %d", snap.Bytes())
	}
}

func TestStoreFallsBackToPreviousGoodSnapshot(t *testing.T) {
	netA := nn.NewMLP(rand.New(rand.NewSource(6)), snapArch)
	netB := nn.NewMLP(rand.New(rand.NewSource(7)), snapArch)
	good := TakeSnapshot(1, netA)
	bad := TakeSnapshot(2, netB)
	bad.Payload[3] ^= 1 // corrupt the newer snapshot

	st := NewStore(2)
	st.Put(good)
	st.Put(bad)

	target := nn.NewMLP(rand.New(rand.NewSource(8)), snapArch)
	restored, skipped, err := st.Restore(target)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if skipped != 1 {
		t.Fatalf("skipped %d snapshots, want 1", skipped)
	}
	if restored.Step != 1 {
		t.Fatalf("restored step %d, want the older good snapshot", restored.Step)
	}
	want := netA.ParamVector()
	got := target.ParamVector()
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("fallback restore not bit-identical to the good snapshot")
		}
	}
}

func TestStoreAllCorruptErrors(t *testing.T) {
	net := nn.NewMLP(rand.New(rand.NewSource(9)), snapArch)
	snap := TakeSnapshot(1, net)
	snap.Payload[0] ^= 1
	st := NewStore(3)
	st.Put(snap)
	if _, _, err := st.Restore(net); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestStoreRetentionBound(t *testing.T) {
	net := nn.NewMLP(rand.New(rand.NewSource(10)), snapArch)
	st := NewStore(2)
	for i := 0; i < 5; i++ {
		st.Put(TakeSnapshot(i, net))
	}
	if st.Len() != 2 {
		t.Fatalf("store retains %d, want 2", st.Len())
	}
	latest, ok := st.Latest()
	if !ok || latest.Step != 4 {
		t.Fatalf("latest step %d, want 4", latest.Step)
	}
}
