package checkpoint

import (
	"errors"
	"math/rand"
	"testing"

	"dlsys/internal/fault"
	"dlsys/internal/nn"
)

// Storage-corruption injection: bits flip in snapshots at rest (using the
// deterministic fault injector's payload corruption, not a hand-picked
// byte), and the store must skip every CRC-invalid entry and restore the
// newest snapshot that still verifies.
func TestStoreSkipsInjectorCorruptedSnapshots(t *testing.T) {
	inj := fault.NewInjector(fault.Config{Seed: 99, CorruptProb: 1})
	net := nn.NewMLP(rand.New(rand.NewSource(11)), snapArch)
	st := NewStore(4)

	// Four training rounds, each with distinct parameters.
	var vectors [][]float64
	for round := 0; round < 4; round++ {
		params := net.ParamVector()
		for i := range params {
			params[i] += float64(round)
		}
		net.SetParamVector(params)
		vectors = append(vectors, params)
		st.Put(TakeSnapshot(round, net))
	}

	// The two newest snapshots rot on disk: one injected bit flip each.
	for _, idx := range []int{2, 3} {
		snap := st.at(idx)
		inj.CorruptPayload(snap.Payload, 0, snap.Step, 0)
		if snap.Verify() {
			t.Fatalf("CRC missed the injected flip in snapshot %d", snap.Step)
		}
	}

	target := nn.NewMLP(rand.New(rand.NewSource(12)), snapArch)
	got, skipped, err := st.Restore(target)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if skipped != 2 {
		t.Fatalf("skipped %d corrupt snapshots, want 2", skipped)
	}
	if got.Step != 1 {
		t.Fatalf("restored step %d, want newest valid (1)", got.Step)
	}
	restored := target.ParamVector()
	for i, v := range vectors[1] {
		if restored[i] != v {
			t.Fatalf("param %d is %g, want bit-identical %g from round 1", i, restored[i], v)
		}
	}
}

// When every retained snapshot is corrupted, Restore must fail loudly with
// ErrCorrupt and leave the target untouched.
func TestStoreAllCorruptFailsLoudly(t *testing.T) {
	inj := fault.NewInjector(fault.Config{Seed: 100, CorruptProb: 1})
	net := nn.NewMLP(rand.New(rand.NewSource(13)), snapArch)
	st := NewStore(3)
	for round := 0; round < 3; round++ {
		st.Put(TakeSnapshot(round, net))
		inj.CorruptPayload(st.at(round).Payload, 0, round, 0)
	}
	target := nn.NewMLP(rand.New(rand.NewSource(14)), snapArch)
	before := target.ParamVector()
	_, skipped, err := st.Restore(target)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	if skipped != 3 {
		t.Fatalf("skipped %d, want 3", skipped)
	}
	after := target.ParamVector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("failed restore must not touch the network")
		}
	}
}
