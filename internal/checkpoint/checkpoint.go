// Package checkpoint implements the training-time-vs-memory tradeoff of
// Part 1 of the tutorial (§2.3): activation recomputation with store-all,
// sqrt(n) equidistant, and budget-constrained optimal checkpoint placement
// (the Checkmate idea specialised to layer chains), plus an analytic model
// of offloading intermediate results to host memory over a PCIe-like link.
//
// The executable part (Run) performs real recompute-in-backward training
// steps on an nn.Network and produces gradients bit-identical to the
// standard path while storing only the planned subset of activations.
package checkpoint

import (
	"math"

	"dlsys/internal/device"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Plan marks which layer OUTPUTS are retained during the forward pass.
// Keep[i] corresponds to the output of layer i; the network input is always
// retained implicitly. len(Keep) must equal the number of layers, and the
// last layer's output is always treated as kept (it feeds the loss).
type Plan struct {
	Keep []bool
}

// StoreAll retains every activation — the memory ceiling, zero recompute.
func StoreAll(n int) Plan {
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	return Plan{Keep: keep}
}

// SqrtN retains every ⌈√n⌉-th activation (Chen et al.'s sublinear-memory
// heuristic), giving O(√n) memory at one extra forward pass.
func SqrtN(n int) Plan {
	keep := make([]bool, n)
	stride := int(math.Ceil(math.Sqrt(float64(n))))
	for i := 0; i < n; i++ {
		if (i+1)%stride == 0 {
			keep[i] = true
		}
	}
	keep[n-1] = true
	return Plan{Keep: keep}
}

// Segments returns the checkpoint segment boundaries: each segment is the
// half-open layer range (start, end] whose interior activations are
// recomputed from the activation at index start (-1 = network input).
func (p Plan) Segments() [][2]int {
	var segs [][2]int
	start := -1
	for i, k := range p.Keep {
		if k || i == len(p.Keep)-1 {
			segs = append(segs, [2]int{start, i})
			start = i
		}
	}
	return segs
}

// CostModel describes a layer chain for planning: Sizes[i] is the float
// count of layer i's output activation, Costs[i] its forward FLOPs.
type CostModel struct {
	Sizes []int64
	Costs []int64
}

// FromNetwork derives a CostModel for a batch size from a network whose
// layers implement OutputShaper, starting from the per-example input shape.
func FromNetwork(net *nn.Network, inShape []int, batch int) CostModel {
	cm := CostModel{}
	shape := inShape
	for _, l := range net.Layers {
		os, ok := l.(nn.OutputShaper)
		if !ok {
			panic("checkpoint: layer " + l.Name() + " does not report output shape")
		}
		shape = os.OutputShape(shape)
		floats := int64(batch)
		for _, d := range shape {
			floats *= int64(d)
		}
		cm.Sizes = append(cm.Sizes, floats)
		var c int64
		if fc, ok := l.(nn.FLOPsCounter); ok {
			c = fc.FLOPs(batch)
		}
		cm.Costs = append(cm.Costs, c)
	}
	return cm
}

// PeakMemory returns the peak activation floats alive under the plan:
// all kept activations plus, during backward, the largest fully
// rematerialised segment.
func (cm CostModel) PeakMemory(p Plan) int64 {
	var kept int64
	for i, k := range p.Keep {
		if k {
			kept += cm.Sizes[i]
		}
	}
	var maxSeg int64
	for _, seg := range p.Segments() {
		var s int64
		for i := seg[0] + 1; i <= seg[1]; i++ {
			if !p.Keep[i] || i == seg[1] {
				s += cm.Sizes[i]
			}
		}
		if s > maxSeg {
			maxSeg = s
		}
	}
	return kept + maxSeg
}

// RecomputeFLOPs returns the extra forward FLOPs the plan pays during
// backward: every non-kept interior activation is recomputed once.
func (cm CostModel) RecomputeFLOPs(p Plan) int64 {
	var extra int64
	for _, seg := range p.Segments() {
		for i := seg[0] + 1; i < seg[1]; i++ {
			if !p.Keep[i] {
				extra += cm.Costs[i]
			}
		}
	}
	return extra
}

// OptimalPlan finds a checkpoint placement minimising recompute FLOPs
// subject to PeakMemory ≤ budget, by dynamic programming over checkpoint
// positions: dp[i] is, for every reachable kept-size, the cheapest
// recompute for a plan whose last checkpoint is layer i, subject to every
// segment's rematerialised size staying within maxSeg. The outer loop scans
// all O(n²) candidate maxSeg values (contiguous interval sums), so the
// result is exact for chains. Returns store-all if it fits, and false if
// no placement fits the budget.
func (cm CostModel) OptimalPlan(budget int64) (Plan, bool) {
	n := len(cm.Sizes)
	if cm.PeakMemory(StoreAll(n)) <= budget {
		return StoreAll(n), true
	}
	// Candidate maxSeg values.
	seen := map[int64]bool{}
	var candidates []int64
	for a := 0; a < n; a++ {
		var s int64
		for b := a; b < n; b++ {
			s += cm.Sizes[b]
			if !seen[s] {
				seen[s] = true
				candidates = append(candidates, s)
			}
		}
	}
	var best Plan
	bestRecompute := int64(-1)
	var bestPeak int64
	for _, maxSeg := range candidates {
		if maxSeg > budget {
			continue
		}
		plan, ok := cm.minRecomputePlan(maxSeg, budget-maxSeg)
		if !ok {
			continue
		}
		r := cm.RecomputeFLOPs(plan)
		p := cm.PeakMemory(plan)
		if p > budget {
			continue
		}
		if bestRecompute < 0 || r < bestRecompute || (r == bestRecompute && p < bestPeak) {
			best, bestRecompute, bestPeak = plan, r, p
		}
	}
	return best, bestRecompute >= 0
}

// minRecomputePlan finds the checkpoint set minimising recompute FLOPs such
// that (a) every segment's rematerialised sum is ≤ maxSeg and (b) the total
// kept size is ≤ keptBudget. Recompute and kept size are both additive
// along the chain of checkpoints, so this is a bi-criteria shortest path:
// each node keeps its Pareto frontier of (recompute, kept) states. The
// frontier is capped defensively (paretoCap) — in practice layer chains
// yield tiny frontiers because sizes repeat.
func (cm CostModel) minRecomputePlan(maxSeg, keptBudget int64) (Plan, bool) {
	n := len(cm.Sizes)
	type state struct {
		recompute int64
		kept      int64
		prev      int // previous checkpoint layer (-1 = network input)
		prevIdx   int // index into dp[prev]'s frontier
	}
	const paretoCap = 256
	dp := make([][]state, n)
	insert := func(i int, s state) {
		if s.kept > keptBudget {
			return
		}
		// Drop s if dominated; drop states s dominates.
		out := dp[i][:0]
		for _, e := range dp[i] {
			if e.recompute <= s.recompute && e.kept <= s.kept {
				return // dominated by an existing state: discard s
			}
			if !(s.recompute <= e.recompute && s.kept <= e.kept) {
				out = append(out, e)
			}
		}
		dp[i] = append(out, s)
		if len(dp[i]) > paretoCap {
			dp[i] = dp[i][:paretoCap]
		}
	}
	for i := 0; i < n; i++ {
		if cm.intervalSize(0, i) <= maxSeg {
			insert(i, state{recompute: cm.intervalCost(0, i-1), kept: cm.Sizes[i], prev: -1})
		}
		for j := 0; j < i; j++ {
			if cm.intervalSize(j+1, i) > maxSeg {
				continue
			}
			edgeR := cm.intervalCost(j+1, i-1)
			for idx, e := range dp[j] {
				insert(i, state{
					recompute: e.recompute + edgeR,
					kept:      e.kept + cm.Sizes[i],
					prev:      j, prevIdx: idx,
				})
			}
		}
	}
	if len(dp[n-1]) == 0 {
		return Plan{}, false
	}
	best := 0
	for idx, e := range dp[n-1] {
		if e.recompute < dp[n-1][best].recompute {
			best = idx
		}
	}
	keep := make([]bool, n)
	i, idx := n-1, best
	for i >= 0 {
		keep[i] = true
		s := dp[i][idx]
		i, idx = s.prev, s.prevIdx
	}
	return Plan{Keep: keep}, true
}

// intervalSize sums Sizes[a..b] (inclusive); empty when a > b.
func (cm CostModel) intervalSize(a, b int) int64 {
	var s int64
	for i := a; i <= b; i++ {
		s += cm.Sizes[i]
	}
	return s
}

// intervalCost sums Costs[a..b] (inclusive); empty when a > b.
func (cm CostModel) intervalCost(a, b int) int64 {
	var s int64
	for i := a; i <= b; i++ {
		s += cm.Costs[i]
	}
	return s
}

// Runner executes real checkpointed training steps on a network.
type Runner struct {
	Net  *nn.Network
	Plan Plan
	// PeakFloats records the highest number of activation floats stored
	// simultaneously during the last Run (kept checkpoints + the segment
	// being rematerialised).
	PeakFloats int64
	// ExtraForwards counts recomputed layer forwards during the last Run.
	ExtraForwards int
}

// Run performs one full forward/backward with recomputation under the plan
// and leaves gradients accumulated on the network (like Trainer.ComputeGrad,
// but with bounded activation memory). Returns the loss. The network must
// consist of deterministic layers (no Dropout).
func (r *Runner) Run(x *tensor.Tensor, loss nn.Loss, y *tensor.Tensor) float64 {
	layers := r.Net.Layers
	n := len(layers)
	if len(r.Plan.Keep) != n {
		panic("checkpoint: plan length != layer count")
	}
	r.Net.ZeroGrad()
	r.PeakFloats = 0
	r.ExtraForwards = 0

	// Forward in inference mode, retaining only planned activations.
	kept := make(map[int]*tensor.Tensor) // -1 = input
	kept[-1] = x
	var keptFloats int64
	h := x
	for i, l := range layers {
		h = l.Forward(h, false)
		if r.Plan.Keep[i] || i == n-1 {
			kept[i] = h
			keptFloats += int64(h.Size())
		}
	}
	r.track(keptFloats)
	lossVal := loss.Forward(h, y)
	dout := loss.Backward()

	// Backward over segments, last to first, rematerialising interiors.
	segs := r.Plan.Segments()
	for si := len(segs) - 1; si >= 0; si-- {
		seg := segs[si]
		start, end := seg[0], seg[1]
		// Recompute the segment in training mode from its checkpoint so the
		// layers repopulate their backward caches.
		var segFloats int64
		a := kept[start]
		for i := start + 1; i <= end; i++ {
			a = layers[i].Forward(a, true)
			segFloats += int64(a.Size())
			if i < end {
				r.ExtraForwards++
			}
		}
		r.track(keptFloats + segFloats)
		for i := end; i > start; i-- {
			dout = layers[i].Backward(dout)
		}
		// Release this segment's checkpoint.
		if t, ok := kept[end]; ok && end != n-1 {
			keptFloats -= int64(t.Size())
			delete(kept, end)
		}
	}
	return lossVal
}

func (r *Runner) track(f int64) {
	if f > r.PeakFloats {
		r.PeakFloats = f
	}
}

// OffloadModel estimates the offloading tradeoff (§2.3): keeping a fraction
// of activation bytes on the device and streaming the rest to host memory.
// Returns the device-resident activation bytes and the extra seconds per
// step spent writing and re-reading the offloaded bytes over the link.
func OffloadModel(prof device.Profile, activationBytes int64, offloadFrac float64) (deviceBytes int64, extraSeconds float64) {
	if offloadFrac < 0 || offloadFrac > 1 {
		panic("checkpoint: offload fraction out of [0,1]")
	}
	off := int64(float64(activationBytes) * offloadFrac)
	deviceBytes = activationBytes - off
	// Each offloaded byte crosses the link twice: spill after forward,
	// fill before backward.
	extraSeconds = 2 * (prof.LinkLatencyS + float64(off)/prof.LinkBandwidth)
	return deviceBytes, extraSeconds
}
