package pipeline

import (
	"strings"
	"testing"
)

func TestRunDefaultsTrainOnly(t *testing.T) {
	l, err := Run(Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Accuracy < 0.9 {
		t.Fatalf("accuracy %.3f", l.Accuracy)
	}
	if l.TrainFLOPs == 0 || l.ModelBytes == 0 || l.InferenceFLOPs == 0 {
		t.Fatalf("ledger incomplete: %+v", l)
	}
	if len(l.Stages) != 1 || !strings.HasPrefix(l.Stages[0], "train") {
		t.Fatalf("stages %v", l.Stages)
	}
	if l.TrainCO2Grams <= 0 || l.TrainSeconds <= 0 {
		t.Fatal("deployment estimates missing")
	}
}

func TestFullCompressionPipeline(t *testing.T) {
	l, err := Run(Spec{
		Seed: 2, PruneSparsity: 0.5, DistillWidth: 8, QuantizeBits: 8, IntInference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"train", "prune", "distill", "quantize", "int8-deploy"}
	if len(l.Stages) != len(want) {
		t.Fatalf("stages %v", l.Stages)
	}
	for i, w := range want {
		if !strings.HasPrefix(l.Stages[i], w) {
			t.Fatalf("stage %d = %s, want %s*", i, l.Stages[i], w)
		}
	}
	if l.Accuracy < 0.8 {
		t.Fatalf("compressed pipeline accuracy %.3f", l.Accuracy)
	}
}

func TestCompressionShrinksDeployment(t *testing.T) {
	base, err := Run(Spec{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(Spec{Seed: 3, DistillWidth: 8, QuantizeBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if small.ModelBytes >= base.ModelBytes/4 {
		t.Fatalf("compressed model %dB not well below base %dB", small.ModelBytes, base.ModelBytes)
	}
	if small.InferenceFLOPs >= base.InferenceFLOPs {
		t.Fatal("distilled model should be cheaper to run")
	}
	if small.Accuracy < base.Accuracy-0.1 {
		t.Fatalf("compression cost too much accuracy: %.3f vs %.3f", small.Accuracy, base.Accuracy)
	}
}

func TestCompareOrdersAndErrors(t *testing.T) {
	ls, err := Compare(Spec{Seed: 4}, Spec{Seed: 4, QuantizeBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 {
		t.Fatalf("got %d ledgers", len(ls))
	}
	if ls[1].ModelBytes >= ls[0].ModelBytes {
		t.Fatal("4-bit pipeline should be smaller")
	}
	if _, err := Compare(Spec{Seed: 5, PruneSparsity: 2}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestLedgerString(t *testing.T) {
	l, err := Run(Spec{Seed: 6, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := l.String()
	for _, want := range []string{"acc=", "trainGFLOPs=", "size="} {
		if !strings.Contains(s, want) {
			t.Fatalf("ledger string missing %q: %s", want, s)
		}
	}
}

func TestInvalidSpecs(t *testing.T) {
	if _, err := Run(Spec{QuantizeBits: 20}); err == nil {
		t.Fatal("bits=20 should be rejected")
	}
	if _, err := Run(Spec{PruneSparsity: -0.1}); err == nil {
		t.Fatal("negative sparsity should be rejected")
	}
}
