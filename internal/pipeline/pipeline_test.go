package pipeline

import (
	"strings"
	"testing"

	"dlsys/internal/fault"
)

func TestRunDefaultsTrainOnly(t *testing.T) {
	l, err := Run(Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Accuracy < 0.9 {
		t.Fatalf("accuracy %.3f", l.Accuracy)
	}
	if l.TrainFLOPs == 0 || l.ModelBytes == 0 || l.InferenceFLOPs == 0 {
		t.Fatalf("ledger incomplete: %+v", l)
	}
	if len(l.Stages) != 1 || !strings.HasPrefix(l.Stages[0], "train") {
		t.Fatalf("stages %v", l.Stages)
	}
	if l.TrainCO2Grams <= 0 || l.TrainSeconds <= 0 {
		t.Fatal("deployment estimates missing")
	}
}

func TestFullCompressionPipeline(t *testing.T) {
	l, err := Run(Spec{
		Seed: 2, PruneSparsity: 0.5, DistillWidth: 8, QuantizeBits: 8, IntInference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"train", "prune", "distill", "quantize", "int8-deploy"}
	if len(l.Stages) != len(want) {
		t.Fatalf("stages %v", l.Stages)
	}
	for i, w := range want {
		if !strings.HasPrefix(l.Stages[i], w) {
			t.Fatalf("stage %d = %s, want %s*", i, l.Stages[i], w)
		}
	}
	if l.Accuracy < 0.8 {
		t.Fatalf("compressed pipeline accuracy %.3f", l.Accuracy)
	}
}

func TestCompressionShrinksDeployment(t *testing.T) {
	base, err := Run(Spec{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(Spec{Seed: 3, DistillWidth: 8, QuantizeBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if small.ModelBytes >= base.ModelBytes/4 {
		t.Fatalf("compressed model %dB not well below base %dB", small.ModelBytes, base.ModelBytes)
	}
	if small.InferenceFLOPs >= base.InferenceFLOPs {
		t.Fatal("distilled model should be cheaper to run")
	}
	if small.Accuracy < base.Accuracy-0.1 {
		t.Fatalf("compression cost too much accuracy: %.3f vs %.3f", small.Accuracy, base.Accuracy)
	}
}

func TestCompareOrdersAndErrors(t *testing.T) {
	ls, err := Compare(Spec{Seed: 4}, Spec{Seed: 4, QuantizeBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 {
		t.Fatalf("got %d ledgers", len(ls))
	}
	if ls[1].ModelBytes >= ls[0].ModelBytes {
		t.Fatal("4-bit pipeline should be smaller")
	}
	if _, err := Compare(Spec{Seed: 5, PruneSparsity: 2}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestLedgerString(t *testing.T) {
	l, err := Run(Spec{Seed: 6, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := l.String()
	for _, want := range []string{"acc=", "trainGFLOPs=", "size="} {
		if !strings.Contains(s, want) {
			t.Fatalf("ledger string missing %q: %s", want, s)
		}
	}
}

func TestInvalidSpecs(t *testing.T) {
	if _, err := Run(Spec{QuantizeBits: 20}); err == nil {
		t.Fatal("bits=20 should be rejected")
	}
	if _, err := Run(Spec{PruneSparsity: -0.1}); err == nil {
		t.Fatal("negative sparsity should be rejected")
	}
	if _, err := Run(Spec{FaultRate: 1.5}); err == nil {
		t.Fatal("fault rate > 1 should be rejected")
	}
	if _, err := Run(Spec{Epochs: -1}); err == nil {
		t.Fatal("negative epochs should be rejected")
	}
}

// With every optional stage failing, the pipeline must still ship the
// plain trained model — same accuracy and size as a train-only run —
// and record each degradation.
func TestAllStagesDegradedShipsBaseModel(t *testing.T) {
	base, err := Run(Spec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Run(Spec{
		Seed: 7, PruneSparsity: 0.5, DistillWidth: 8, QuantizeBits: 8, IntInference: true,
		FaultRate: 1,
	})
	if err != nil {
		t.Fatalf("fully degraded pipeline must not error: %v", err)
	}
	if len(l.Degraded) != 4 {
		t.Fatalf("degraded %v, want all 4 optional stages", l.Degraded)
	}
	for _, s := range l.Stages[1:] {
		if !strings.HasSuffix(s, "(failed→fallback)") {
			t.Fatalf("stage %q not marked as fallback", s)
		}
	}
	if l.Accuracy != base.Accuracy {
		t.Fatalf("fallback accuracy %.4f != train-only %.4f", l.Accuracy, base.Accuracy)
	}
	if l.ModelBytes != base.ModelBytes {
		t.Fatalf("fallback size %dB != train-only %dB", l.ModelBytes, base.ModelBytes)
	}
}

func TestDegradationDeterministic(t *testing.T) {
	spec := Spec{
		Seed: 8, PruneSparsity: 0.5, DistillWidth: 8, QuantizeBits: 8,
		FaultRate: 0.5, FaultSeed: 99,
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Degraded) != len(b.Degraded) {
		t.Fatalf("same fault seed degraded %v vs %v", a.Degraded, b.Degraded)
	}
	for i := range a.Degraded {
		if a.Degraded[i] != b.Degraded[i] {
			t.Fatalf("same fault seed degraded %v vs %v", a.Degraded, b.Degraded)
		}
	}
	if a.Accuracy != b.Accuracy || a.ModelBytes != b.ModelBytes {
		t.Fatal("same spec + fault seed must reproduce the ledger")
	}
}

func TestFaultFreeRunHasNoDegradation(t *testing.T) {
	l, err := Run(Spec{Seed: 9, PruneSparsity: 0.5, QuantizeBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Degraded) != 0 {
		t.Fatalf("zero fault rate degraded stages: %v", l.Degraded)
	}
}

// When several optional stages fail in one run, the degradations must be
// recorded in stage order, and the shipped model must be exactly the last
// successful stage's output. The exact-equality comparison against a
// distill-only pipeline is valid because fault injection happens before a
// stage's body runs: failed stages consume no RNG.
func TestPartialDegradationOrderAndFallbackModel(t *testing.T) {
	// Find a fault seed where prune and quantize fail but distill
	// succeeds — a pure-hash search, so the pick is deterministic.
	const rate = 0.6
	var faultSeed int64 = -1
	for s := int64(1); s < 4096; s++ {
		inj := fault.NewInjector(fault.Config{Seed: s})
		if inj.Chance(fault.KindStage, 0, stagePrune, 0, rate) &&
			!inj.Chance(fault.KindStage, 0, stageDistill, 0, rate) &&
			inj.Chance(fault.KindStage, 0, stageQuantize, 0, rate) {
			faultSeed = s
			break
		}
	}
	if faultSeed < 0 {
		t.Fatal("no seed in [1,4096) fails prune+quantize while passing distill")
	}

	l, err := Run(Spec{
		Seed: 10, PruneSparsity: 0.5, DistillWidth: 8, QuantizeBits: 8,
		FaultRate: rate, FaultSeed: faultSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Degraded) != 2 ||
		!strings.HasPrefix(l.Degraded[0], "prune:") ||
		!strings.HasPrefix(l.Degraded[1], "quantize:") {
		t.Fatalf("degraded %v, want [prune, quantize] in stage order", l.Degraded)
	}
	wantStages := []string{"train", "prune(failed→fallback)", "distill", "quantize(failed→fallback)"}
	if len(l.Stages) != len(wantStages) {
		t.Fatalf("stages %v", l.Stages)
	}
	for i, w := range wantStages {
		if !strings.HasPrefix(l.Stages[i], w) {
			t.Fatalf("stage %d = %q, want %s*", i, l.Stages[i], w)
		}
	}

	ref, err := Run(Spec{Seed: 10, DistillWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if l.Accuracy != ref.Accuracy {
		t.Fatalf("degraded accuracy %.6f != distill-only %.6f", l.Accuracy, ref.Accuracy)
	}
	if l.ModelBytes != ref.ModelBytes {
		t.Fatalf("degraded size %dB != distill-only %dB", l.ModelBytes, ref.ModelBytes)
	}
}

// runStage must convert a mid-stage panic into an error so the caller can
// fall back instead of crashing the pipeline.
func TestRunStageRecoversPanics(t *testing.T) {
	err := runStage("boom", 0, nil, 0, func() error {
		panic("stage exploded")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}
