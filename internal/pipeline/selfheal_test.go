package pipeline

import (
	"math"
	"testing"
)

// A self-healing pipeline under numerical faults must ship a usable model
// and surface the incidents in its ledger; the same spec without SelfHeal
// (observe) must record the incidents without remediating.
func TestSelfHealingPipelineSurvivesNumericalFaults(t *testing.T) {
	base := Spec{Seed: 41, Epochs: 15, Hidden: []int{24}, NumericalFaultRate: 0.1}

	healed := base
	healed.SelfHeal = true
	lh, err := Run(healed)
	if err != nil {
		t.Fatal(err)
	}
	if lh.Incidents == 0 {
		t.Fatal("no incidents recorded at fault rate 0.1")
	}
	if math.IsNaN(lh.Accuracy) || lh.Accuracy < 0.7 {
		t.Fatalf("self-healing pipeline accuracy %.3f", lh.Accuracy)
	}

	observed, err := Run(base) // SelfHeal off: observe only
	if err != nil {
		t.Fatal(err)
	}
	if observed.Incidents == 0 {
		t.Fatal("observe mode recorded no incidents")
	}
	if observed.Rollbacks != 0 {
		t.Fatal("observe mode must not roll back")
	}
}

// Same spec, same seeds → identical self-healing trace.
func TestSelfHealingPipelineDeterministic(t *testing.T) {
	spec := Spec{Seed: 43, Epochs: 12, Hidden: []int{24}, SelfHeal: true, NumericalFaultRate: 0.15}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Incidents != b.Incidents || a.Rollbacks != b.Rollbacks || a.Accuracy != b.Accuracy {
		t.Fatalf("self-healing trace not deterministic:\nA: %+v\nB: %+v", a, b)
	}
}

func TestNumericalFaultRateValidated(t *testing.T) {
	if _, err := Run(Spec{Seed: 1, NumericalFaultRate: 1.5}); err == nil {
		t.Fatal("out-of-range numerical fault rate accepted")
	}
}
