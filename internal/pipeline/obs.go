package pipeline

import (
	"dlsys/internal/obs"
)

// pipeObs holds the pre-resolved instruments for one pipeline run. The
// stage/degradation counters mirror the Ledger's Stages/Degraded lists
// one-to-one — experiment X8 asserts they reconcile exactly — and each
// executed stage gets a child span on an ordinal clock (stage index), the
// pipeline's only deterministic notion of time before device seconds are
// derived at the end.
type pipeObs struct {
	h *obs.Handle

	stages, degraded     *obs.Counter
	incidents, rollbacks *obs.Counter

	root *obs.Span
}

func newPipeObs(h *obs.Handle) *pipeObs {
	return &pipeObs{
		h:         h,
		stages:    h.Counter("pipeline.stages"),
		degraded:  h.Counter("pipeline.degraded"),
		incidents: h.Counter("pipeline.incidents"),
		rollbacks: h.Counter("pipeline.rollbacks"),
		root:      h.Start("pipeline.run", 0),
	}
}

// stage records one executed (or failed-and-fallen-back) stage: the counter
// mirrors the Ledger.Stages append and the span covers [idx, idx+1] on the
// ordinal stage clock.
func (o *pipeObs) stage(name string, idx int) {
	o.stages.Inc()
	sp := o.root.Child("pipeline.stage."+name, float64(idx))
	sp.End(float64(idx + 1))
}

// finish closes the root span at the final stage count.
func (o *pipeObs) finish(stageCount int) {
	o.root.End(float64(stageCount))
}
