// Package pipeline implements the declarative-interface opportunity from
// Part 1's "Data Management Opportunities": a training/deployment pipeline
// is SPECIFIED (dataset, architecture, compression, deployment target) and
// the engine executes it end to end, returning a ledger of every metric in
// the tutorial's tradeoff framework — accuracy, training cost, model size,
// inference cost, and carbon footprint — so alternatives can be compared
// like query plans.
package pipeline

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distill"
	"dlsys/internal/green"
	"dlsys/internal/nn"
	"dlsys/internal/prune"
	"dlsys/internal/quant"
)

// Spec declares a pipeline. Zero values mean "skip that stage".
type Spec struct {
	// Data
	Examples int // synthetic Gaussian-mixture examples (default 1000)
	Features int // default 8
	Classes  int // default 4
	Sep      float64
	Seed     int64

	// Model + training
	Hidden    []int
	Epochs    int
	BatchSize int
	LR        float64

	// Compression stages (applied in order: prune → distill → quantize)
	PruneSparsity float64 // 0 = skip; prune + brief fine-tune
	DistillWidth  int     // 0 = skip; distill into an MLP of this width
	QuantizeBits  int     // 0 = skip; quantize-dequantize weights
	IntInference  bool    // compile the int8 path for deployment metrics

	// Deployment target for time/energy estimates
	Device device.Profile // zero → device.GPUSmall
	Region green.Region   // zero → green.MixedUS
}

// Ledger reports every tradeoff metric for the executed pipeline.
type Ledger struct {
	Accuracy       float64
	TrainFLOPs     int64
	TrainSeconds   float64 // on the declared device
	TrainCO2Grams  float64
	ModelBytes     int64 // deployed representation
	InferenceFLOPs int64 // per single example
	InferenceUs    float64
	Stages         []string // human-readable trace of what ran
}

// String renders the ledger as one comparison row.
func (l Ledger) String() string {
	return fmt.Sprintf("acc=%.3f trainGFLOPs=%.2f train=%.3gs co2=%.3gg size=%dB infFLOPs=%d inf=%.3gus %v",
		l.Accuracy, float64(l.TrainFLOPs)/1e9, l.TrainSeconds, l.TrainCO2Grams,
		l.ModelBytes, l.InferenceFLOPs, l.InferenceUs, l.Stages)
}

func (s *Spec) defaults() {
	if s.Examples == 0 {
		s.Examples = 1000
	}
	if s.Features == 0 {
		s.Features = 8
	}
	if s.Classes == 0 {
		s.Classes = 4
	}
	if s.Sep == 0 {
		s.Sep = 3
	}
	if len(s.Hidden) == 0 {
		s.Hidden = []int{32, 32}
	}
	if s.Epochs == 0 {
		s.Epochs = 25
	}
	if s.BatchSize == 0 {
		s.BatchSize = 32
	}
	if s.LR == 0 {
		s.LR = 0.01
	}
	if s.Device.Name == "" {
		s.Device = device.GPUSmall
	}
	if s.Region.Name == "" {
		s.Region = green.MixedUS
	}
}

// Run executes the declared pipeline and returns its ledger.
func Run(spec Spec) (Ledger, error) {
	spec.defaults()
	if spec.PruneSparsity < 0 || spec.PruneSparsity >= 1 {
		return Ledger{}, fmt.Errorf("pipeline: prune sparsity %g out of [0,1)", spec.PruneSparsity)
	}
	if spec.QuantizeBits < 0 || spec.QuantizeBits > 16 && spec.QuantizeBits != 32 {
		return Ledger{}, fmt.Errorf("pipeline: quantize bits %d out of range", spec.QuantizeBits)
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	ds := data.GaussianMixture(rng, spec.Examples, spec.Features, spec.Classes, spec.Sep)
	train, test := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, spec.Classes)

	var ledger Ledger
	cfg := nn.MLPConfig{In: spec.Features, Hidden: spec.Hidden, Out: spec.Classes}
	net := nn.NewMLP(rng, cfg)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(spec.LR), rng)
	stats := tr.Fit(train.X, y, nn.TrainConfig{Epochs: spec.Epochs, BatchSize: spec.BatchSize})
	ledger.TrainFLOPs += stats.FLOPs
	ledger.Stages = append(ledger.Stages, fmt.Sprintf("train(%v,%dep)", spec.Hidden, spec.Epochs))

	if spec.PruneSparsity > 0 {
		prune.GlobalPrune(rng, net, spec.PruneSparsity, prune.Magnitude)
		s := tr.Fit(train.X, y, nn.TrainConfig{Epochs: spec.Epochs / 5, BatchSize: spec.BatchSize})
		ledger.TrainFLOPs += s.FLOPs
		ledger.Stages = append(ledger.Stages, fmt.Sprintf("prune(%.0f%%)", spec.PruneSparsity*100))
	}

	deployed := net
	deployedCfg := cfg
	if spec.DistillWidth > 0 {
		sCfg := nn.MLPConfig{In: spec.Features, Hidden: []int{spec.DistillWidth}, Out: spec.Classes}
		student := nn.NewMLP(rng, sCfg)
		ds := distill.Distill(rng, net, student, train.X, y, distill.Config{
			Alpha: 0.3, T: 3, Epochs: spec.Epochs, BatchSize: spec.BatchSize, LR: spec.LR,
		})
		ledger.TrainFLOPs += ds.FLOPs
		deployed = student
		deployedCfg = sCfg
		ledger.Stages = append(ledger.Stages, fmt.Sprintf("distill(w=%d)", spec.DistillWidth))
	}

	ledger.ModelBytes = deployed.ParamBytes(32)
	if spec.PruneSparsity > 0 && spec.DistillWidth == 0 {
		// The pruned network deploys in a sparse format.
		ledger.ModelBytes = prune.NonzeroParamBytes(deployed)
	}
	if spec.QuantizeBits > 0 && spec.QuantizeBits < 32 {
		state, bytes := quant.QuantizeNetwork(deployed, spec.QuantizeBits)
		qnet := nn.NewMLP(rand.New(rand.NewSource(spec.Seed+2)), deployedCfg)
		qnet.LoadStateDict(state)
		deployed = qnet
		ledger.ModelBytes = bytes
		ledger.Stages = append(ledger.Stages, fmt.Sprintf("quantize(%db)", spec.QuantizeBits))
	}

	if spec.IntInference {
		im := quant.CompileIntMLP(deployed)
		ledger.Accuracy = im.Accuracy(test.X, test.Labels)
		ledger.ModelBytes = im.Bytes()
		ledger.Stages = append(ledger.Stages, "int8-deploy")
	} else {
		ledger.Accuracy = deployed.Accuracy(test.X, test.Labels)
	}

	ledger.InferenceFLOPs = deployed.FLOPs(1)
	ledger.InferenceUs = spec.Device.ComputeTime(ledger.InferenceFLOPs, 0.5) * 1e6
	ledger.TrainSeconds = spec.Device.ComputeTime(ledger.TrainFLOPs, 0.5)
	fp := green.Estimate(ledger.TrainFLOPs, spec.Device, spec.Region, 0.5)
	ledger.TrainCO2Grams = fp.CO2Grams
	return ledger, nil
}

// Compare runs several specs and returns their ledgers in order — the
// "query plans for ML pipelines" comparison the declarative framing buys.
func Compare(specs ...Spec) ([]Ledger, error) {
	out := make([]Ledger, 0, len(specs))
	for i, s := range specs {
		l, err := Run(s)
		if err != nil {
			return nil, fmt.Errorf("pipeline %d: %w", i, err)
		}
		out = append(out, l)
	}
	return out, nil
}
