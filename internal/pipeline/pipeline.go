// Package pipeline implements the declarative-interface opportunity from
// Part 1's "Data Management Opportunities": a training/deployment pipeline
// is SPECIFIED (dataset, architecture, compression, deployment target) and
// the engine executes it end to end, returning a ledger of every metric in
// the tutorial's tradeoff framework — accuracy, training cost, model size,
// inference cost, and carbon footprint — so alternatives can be compared
// like query plans.
//
// Execution degrades gracefully: optional compression stages (prune,
// distill, quantize, int8 deployment) that fail — whether by an injected
// fault (Spec.FaultRate) or an internal panic — fall back to the model
// from before the stage, and the degradation is recorded in the Ledger
// rather than aborting the pipeline.
package pipeline

import (
	"fmt"
	"math/rand"

	"dlsys/internal/checkpoint"
	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distill"
	"dlsys/internal/fault"
	"dlsys/internal/green"
	"dlsys/internal/guard"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/prune"
	"dlsys/internal/quant"
	"dlsys/internal/tensor"
)

// Spec declares a pipeline. Zero values mean "skip that stage".
type Spec struct {
	// Data
	Examples int // synthetic Gaussian-mixture examples (default 1000)
	Features int // default 8
	Classes  int // default 4
	Sep      float64
	Seed     int64

	// Model + training
	Hidden    []int
	Epochs    int
	BatchSize int
	LR        float64

	// Compression stages (applied in order: prune → distill → quantize)
	PruneSparsity float64 // 0 = skip; prune + brief fine-tune
	DistillWidth  int     // 0 = skip; distill into an MLP of this width
	QuantizeBits  int     // 0 = skip; quantize-dequantize weights
	IntInference  bool    // compile the int8 path for deployment metrics

	// FaultRate is the deterministic per-stage failure probability for the
	// optional compression stages. A failed stage falls back to the
	// pre-stage model and is recorded in Ledger.Degraded — the pipeline
	// ships a bigger model rather than no model.
	FaultRate float64
	// FaultSeed seeds stage-failure injection (default: Seed).
	FaultSeed int64

	// SelfHeal wraps the training stage in the self-healing guard
	// (internal/guard, Enforce mode): poisoned batches are skipped,
	// divergence triggers LR backoff, and repeated faults roll the model
	// back to the last healthy checkpoint. Incidents are surfaced in the
	// ledger.
	SelfHeal bool
	// NumericalFaultRate injects numerical faults (poisoned batches,
	// label-noise bursts, LR spikes at fault.NumericalRate proportions)
	// into the training stage. Without SelfHeal the faults are observed
	// but not remediated.
	NumericalFaultRate float64

	// Deployment target for time/energy estimates
	Device device.Profile // zero → device.GPUSmall
	Region green.Region   // zero → green.MixedUS

	// Obs, when non-nil, receives live stage/degradation counters
	// (mirroring the Ledger's Stages/Degraded lists exactly), per-stage
	// spans on the ordinal stage clock, and — via the guard, when the
	// training stage is guarded — incident metrics. Nil disables
	// instrumentation at near-zero cost.
	Obs *obs.Handle
}

// Ledger reports every tradeoff metric for the executed pipeline.
type Ledger struct {
	Accuracy       float64
	TrainFLOPs     int64
	TrainSeconds   float64 // on the declared device
	TrainCO2Grams  float64
	ModelBytes     int64 // deployed representation
	InferenceFLOPs int64 // per single example
	InferenceUs    float64
	Stages         []string // human-readable trace of what ran
	Degraded       []string // optional stages that failed and fell back

	// Self-healing trace (zero when the guard is not engaged).
	Incidents int // numerical-fault incidents detected during training
	Rollbacks int // checkpoint rollbacks performed during training
}

// String renders the ledger as one comparison row.
func (l Ledger) String() string {
	s := fmt.Sprintf("acc=%.3f trainGFLOPs=%.2f train=%.3gs co2=%.3gg size=%dB infFLOPs=%d inf=%.3gus %v",
		l.Accuracy, float64(l.TrainFLOPs)/1e9, l.TrainSeconds, l.TrainCO2Grams,
		l.ModelBytes, l.InferenceFLOPs, l.InferenceUs, l.Stages)
	if len(l.Degraded) > 0 {
		s += fmt.Sprintf(" degraded=%v", l.Degraded)
	}
	if l.Incidents > 0 {
		s += fmt.Sprintf(" incidents=%d rollbacks=%d", l.Incidents, l.Rollbacks)
	}
	return s
}

func (s *Spec) defaults() {
	if s.Examples == 0 {
		s.Examples = 1000
	}
	if s.Features == 0 {
		s.Features = 8
	}
	if s.Classes == 0 {
		s.Classes = 4
	}
	if s.Sep == 0 {
		s.Sep = 3
	}
	if len(s.Hidden) == 0 {
		s.Hidden = []int{32, 32}
	}
	if s.Epochs == 0 {
		s.Epochs = 25
	}
	if s.BatchSize == 0 {
		s.BatchSize = 32
	}
	if s.LR == 0 {
		s.LR = 0.01
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = s.Seed
	}
	if s.Device.Name == "" {
		s.Device = device.GPUSmall
	}
	if s.Region.Name == "" {
		s.Region = green.MixedUS
	}
}

// validate returns an error for any out-of-range field instead of letting
// a downstream stage panic.
func (s *Spec) validate() error {
	if s.Examples < 0 || s.Features < 0 || s.Classes < 0 {
		return fmt.Errorf("pipeline: negative data dimensions (%d examples, %d features, %d classes)",
			s.Examples, s.Features, s.Classes)
	}
	if s.Epochs < 0 || s.BatchSize < 0 {
		return fmt.Errorf("pipeline: negative training knob (epochs %d, batch %d)", s.Epochs, s.BatchSize)
	}
	if s.PruneSparsity < 0 || s.PruneSparsity >= 1 {
		return fmt.Errorf("pipeline: prune sparsity %g out of [0,1)", s.PruneSparsity)
	}
	if s.DistillWidth < 0 {
		return fmt.Errorf("pipeline: negative distill width %d", s.DistillWidth)
	}
	if s.QuantizeBits < 0 || s.QuantizeBits > 16 && s.QuantizeBits != 32 {
		return fmt.Errorf("pipeline: quantize bits %d out of range", s.QuantizeBits)
	}
	if s.FaultRate < 0 || s.FaultRate > 1 {
		return fmt.Errorf("pipeline: fault rate %g out of [0,1]", s.FaultRate)
	}
	if s.NumericalFaultRate < 0 || s.NumericalFaultRate > 1 {
		return fmt.Errorf("pipeline: numerical fault rate %g out of [0,1]", s.NumericalFaultRate)
	}
	return nil
}

// Stage indices for deterministic fault injection: each optional stage has
// a stable slot in the injector's hash stream.
const (
	stagePrune = iota
	stageDistill
	stageQuantize
	stageIntInfer
)

// runStage executes one optional pipeline stage, converting panics into
// errors and injecting deterministic failures at the spec's FaultRate. On
// any failure the caller falls back to the pre-stage model; the returned
// error says why.
func runStage(name string, idx int, inj *fault.Injector, rate float64, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: stage %s panicked: %v", name, r)
		}
	}()
	if inj.Chance(fault.KindStage, 0, idx, 0, rate) {
		return fmt.Errorf("pipeline: stage %s failed (injected fault)", name)
	}
	return f()
}

// degrade records a failed optional stage in the ledger and metrics.
func degrade(l *Ledger, o *pipeObs, name string, err error) {
	l.Stages = append(l.Stages, name+"(failed→fallback)")
	l.Degraded = append(l.Degraded, fmt.Sprintf("%s: %v", name, err))
	o.stage(name+".failed", len(l.Stages)-1)
	o.degraded.Inc()
}

// Run executes the declared pipeline and returns its ledger.
func Run(spec Spec) (Ledger, error) {
	spec.defaults()
	if err := spec.validate(); err != nil {
		return Ledger{}, err
	}
	o := newPipeObs(spec.Obs)
	inj := fault.NewInjector(fault.Config{Seed: spec.FaultSeed})
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	ds := data.GaussianMixture(rng, spec.Examples, spec.Features, spec.Classes, spec.Sep)
	train, test := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, spec.Classes)

	var ledger Ledger
	cfg := nn.MLPConfig{In: spec.Features, Hidden: spec.Hidden, Out: spec.Classes}
	net, err := nn.NewMLPChecked(rng, cfg)
	if err != nil {
		return Ledger{}, fmt.Errorf("pipeline: %w", err)
	}
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(spec.LR), rng)
	if spec.SelfHeal || spec.NumericalFaultRate > 0 {
		// Guarded training stage: detection always runs; remediation only
		// under SelfHeal. This keeps the guarded/unguarded comparison on an
		// identical data and injection path.
		mode := guard.Observe
		if spec.SelfHeal {
			mode = guard.Enforce
		}
		g := guard.New(tr, guard.Policy{Mode: mode, Schema: guard.NewBatchSchema(train.X, 6), Obs: spec.Obs})
		var ninj *fault.Injector
		if spec.NumericalFaultRate > 0 {
			ninj = fault.NewInjector(fault.NumericalRate(spec.FaultSeed, spec.NumericalFaultRate))
		}
		stats := g.Fit(train.X, y, guard.FitConfig{
			Epochs: spec.Epochs, BatchSize: spec.BatchSize,
			Inject: func(step int, bx, by *tensor.Tensor) {
				if ninj.CorruptsBatch(0, step) {
					ninj.CorruptBatchValues(bx.Data, 0, step)
				}
				if ninj.LabelNoise(0, step) {
					ninj.ShuffleLabels(by.Data, by.Dim(0), by.Dim(1), 0, step)
				}
			},
			LRSpike: func(step int) float64 { return ninj.LRSpikeFactor(0, step) },
		})
		ledger.TrainFLOPs += stats.FLOPs
		ledger.Incidents = g.Ledger().Len()
		ledger.Rollbacks = g.Ledger().Rollbacks
		o.incidents.Add(int64(ledger.Incidents))
		o.rollbacks.Add(int64(ledger.Rollbacks))
		name := "train-guarded"
		if !spec.SelfHeal {
			name = "train-observed"
		}
		ledger.Stages = append(ledger.Stages, fmt.Sprintf("%s(%v,%dep)", name, spec.Hidden, spec.Epochs))
		o.stage(name, len(ledger.Stages)-1)
	} else {
		stats := tr.Fit(train.X, y, nn.TrainConfig{Epochs: spec.Epochs, BatchSize: spec.BatchSize})
		ledger.TrainFLOPs += stats.FLOPs
		ledger.Stages = append(ledger.Stages, fmt.Sprintf("train(%v,%dep)", spec.Hidden, spec.Epochs))
		o.stage("train", len(ledger.Stages)-1)
	}

	if spec.PruneSparsity > 0 {
		// Keep a CRC-checked snapshot so a failed prune restores the dense
		// model exactly.
		pre := checkpoint.TakeSnapshot(0, net)
		err := runStage("prune", stagePrune, inj, spec.FaultRate, func() error {
			if err := prune.GlobalPrune(rng, net, spec.PruneSparsity, prune.Magnitude); err != nil {
				return err
			}
			s := tr.Fit(train.X, y, nn.TrainConfig{Epochs: spec.Epochs / 5, BatchSize: spec.BatchSize})
			ledger.TrainFLOPs += s.FLOPs
			return nil
		})
		if err != nil {
			clearMasks(net)
			if rerr := pre.Restore(net); rerr != nil {
				return Ledger{}, fmt.Errorf("pipeline: prune fallback failed: %w", rerr)
			}
			degrade(&ledger, o, "prune", err)
		} else {
			ledger.Stages = append(ledger.Stages, fmt.Sprintf("prune(%.0f%%)", spec.PruneSparsity*100))
			o.stage("prune", len(ledger.Stages)-1)
		}
	}

	deployed := net
	deployedCfg := cfg
	pruneHeld := spec.PruneSparsity > 0 && len(ledger.Degraded) == 0
	if spec.DistillWidth > 0 {
		sCfg := nn.MLPConfig{In: spec.Features, Hidden: []int{spec.DistillWidth}, Out: spec.Classes}
		student := nn.NewMLP(rng, sCfg)
		err := runStage("distill", stageDistill, inj, spec.FaultRate, func() error {
			ds := distill.Distill(rng, net, student, train.X, y, distill.Config{
				Alpha: 0.3, T: 3, Epochs: spec.Epochs, BatchSize: spec.BatchSize, LR: spec.LR,
			})
			ledger.TrainFLOPs += ds.FLOPs
			return nil
		})
		if err != nil {
			degrade(&ledger, o, "distill", err) // deployed stays the teacher
		} else {
			deployed = student
			deployedCfg = sCfg
			ledger.Stages = append(ledger.Stages, fmt.Sprintf("distill(w=%d)", spec.DistillWidth))
			o.stage("distill", len(ledger.Stages)-1)
		}
	}

	ledger.ModelBytes = deployed.ParamBytes(32)
	if pruneHeld && deployed == net {
		// The pruned network deploys in a sparse format.
		ledger.ModelBytes = prune.NonzeroParamBytes(deployed)
	}
	if spec.QuantizeBits > 0 && spec.QuantizeBits < 32 {
		var qnet *nn.Network
		var qbytes int64
		err := runStage("quantize", stageQuantize, inj, spec.FaultRate, func() error {
			state, bytes, err := quant.QuantizeNetwork(deployed, spec.QuantizeBits)
			if err != nil {
				return err
			}
			qnet = nn.NewMLP(rand.New(rand.NewSource(spec.Seed+2)), deployedCfg)
			qnet.LoadStateDict(state)
			qbytes = bytes
			return nil
		})
		if err != nil {
			degrade(&ledger, o, "quantize", err) // ship the float model
		} else {
			deployed = qnet
			ledger.ModelBytes = qbytes
			ledger.Stages = append(ledger.Stages, fmt.Sprintf("quantize(%db)", spec.QuantizeBits))
			o.stage("quantize", len(ledger.Stages)-1)
		}
	}

	intDeployed := false
	if spec.IntInference {
		var im *quant.IntMLP
		err := runStage("int8-deploy", stageIntInfer, inj, spec.FaultRate, func() error {
			im = quant.CompileIntMLP(deployed)
			return nil
		})
		if err != nil {
			degrade(&ledger, o, "int8-deploy", err) // fall back to the float path
		} else {
			ledger.Accuracy = im.Accuracy(test.X, test.Labels)
			ledger.ModelBytes = im.Bytes()
			ledger.Stages = append(ledger.Stages, "int8-deploy")
			o.stage("int8-deploy", len(ledger.Stages)-1)
			intDeployed = true
		}
	}
	if !intDeployed {
		ledger.Accuracy = deployed.Accuracy(test.X, test.Labels)
	}

	ledger.InferenceFLOPs = deployed.FLOPs(1)
	ledger.InferenceUs = spec.Device.ComputeTime(ledger.InferenceFLOPs, 0.5) * 1e6
	ledger.TrainSeconds = spec.Device.ComputeTime(ledger.TrainFLOPs, 0.5)
	fp := green.Estimate(ledger.TrainFLOPs, spec.Device, spec.Region, 0.5)
	ledger.TrainCO2Grams = fp.CO2Grams
	o.finish(len(ledger.Stages))
	return ledger, nil
}

// clearMasks removes pruning masks so a restored parameter snapshot is
// exactly the pre-prune dense model.
func clearMasks(net *nn.Network) {
	for _, l := range net.Layers {
		if d, ok := l.(*nn.Dense); ok {
			_ = d.SetMask(nil) // clearing a mask cannot fail
		}
	}
}

// Compare runs several specs and returns their ledgers in order — the
// "query plans for ML pipelines" comparison the declarative framing buys.
func Compare(specs ...Spec) ([]Ledger, error) {
	out := make([]Ledger, 0, len(specs))
	for i, s := range specs {
		l, err := Run(s)
		if err != nil {
			return nil, fmt.Errorf("pipeline %d: %w", i, err)
		}
		out = append(out, l)
	}
	return out, nil
}
