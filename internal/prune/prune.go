// Package prune implements the neural-network pruning techniques from
// Part 1 of the tutorial (§2.1): unstructured magnitude pruning, saliency
// (loss-gradient) pruning, random pruning as a control baseline, structured
// filter/unit pruning, and the iterative prune-and-retrain schedule of
// Han et al. Pruned weights are held at zero through further training via
// masks on nn.Dense layers.
package prune

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Criterion scores each weight; the lowest-scoring weights are pruned.
type Criterion int

// Pruning criteria.
const (
	// Magnitude prunes the smallest |w| — "low-magnitude parameters are
	// unnecessary".
	Magnitude Criterion = iota
	// Saliency prunes by |w·∂L/∂w|, a first-order estimate of each
	// weight's effect on the loss. Gradients must be populated (call
	// Trainer.ComputeGrad on a representative batch first).
	Saliency
	// Random prunes uniformly at random — the control baseline that
	// magnitude/saliency must beat.
	Random
)

// Sparsity reports the fraction of masked (zero) weights across all Dense
// layers of a network. Layers without masks count as fully dense.
func Sparsity(net *nn.Network) float64 {
	var zero, total int
	for _, l := range net.Layers {
		d, ok := l.(*nn.Dense)
		if !ok {
			continue
		}
		total += d.W.Value.Size()
		if m := d.Mask(); m != nil {
			for _, v := range m.Data {
				if v == 0 {
					zero++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zero) / float64(total)
}

// GlobalPrune masks the lowest-scoring fraction of each Dense layer's
// weights (biases are never pruned). Scoring is layer-wise: weight
// magnitudes are not comparable across layers with different fan-in scales,
// and cross-layer ranking tends to wipe out whole layers — the standard
// remedy is a per-layer budget. Masks are rebuilt from scratch, so the
// target sparsity is absolute, not incremental. Sparsities outside [0, 1)
// are a caller error, reported rather than panicking: targets usually come
// from sweep configs, so the library boundary validates them.
func GlobalPrune(rng *rand.Rand, net *nn.Network, sparsity float64, crit Criterion) error {
	if sparsity < 0 || sparsity >= 1 {
		return fmt.Errorf("prune: sparsity %g out of [0, 1)", sparsity)
	}
	for _, l := range net.Layers {
		d, ok := l.(*nn.Dense)
		if !ok {
			continue
		}
		n := d.W.Value.Size()
		scores := make([]float64, n)
		for i, w := range d.W.Value.Data {
			switch crit {
			case Magnitude:
				scores[i] = math.Abs(w)
			case Saliency:
				scores[i] = math.Abs(w * d.W.Grad.Data[i])
			case Random:
				scores[i] = rng.Float64()
			}
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
		mask := tensor.Full(1, d.W.Value.Shape()...)
		for _, i := range order[:int(sparsity*float64(n))] {
			mask.Data[i] = 0
		}
		if err := d.SetMask(mask); err != nil {
			return err
		}
	}
	return nil
}

// PruneUnits performs structured pruning: it removes (masks entire columns
// for) the lowest-L2-norm output units of the given Dense layer, the
// MLP analogue of filter-level CNN pruning. Returns the indices pruned.
func PruneUnits(d *nn.Dense, fraction float64) ([]int, error) {
	in, out := d.In(), d.Out()
	norms := make([]float64, out)
	for j := 0; j < out; j++ {
		var s float64
		for i := 0; i < in; i++ {
			w := d.W.Value.Data[i*out+j]
			s += w * w
		}
		norms[j] = math.Sqrt(s)
	}
	order := make([]int, out)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return norms[order[a]] < norms[order[b]] })
	k := int(fraction * float64(out))
	mask := d.Mask()
	if mask == nil {
		mask = tensor.Full(1, in, out)
	}
	pruned := order[:k]
	for _, j := range pruned {
		for i := 0; i < in; i++ {
			mask.Data[i*out+j] = 0
		}
	}
	if err := d.SetMask(mask); err != nil {
		return nil, err
	}
	return pruned, nil
}

// IterativeConfig controls prune-and-retrain scheduling.
type IterativeConfig struct {
	TargetSparsity float64
	Steps          int // number of prune/retrain rounds
	RetrainEpochs  int // epochs of fine-tuning after each round
	BatchSize      int
	Criterion      Criterion
}

// IterativePrune runs the Han-et-al. schedule: repeatedly prune a slice of
// the remaining weights and fine-tune, reaching TargetSparsity after Steps
// rounds. Sparsity follows a cubic ramp, which prunes gently at first.
// Returns the per-round sparsity and training loss, or an error if the
// target sparsity is outside [0, 1).
func IterativePrune(rng *rand.Rand, tr *nn.Trainer, x, y *tensor.Tensor, cfg IterativeConfig) (sparsities, losses []float64, err error) {
	for step := 1; step <= cfg.Steps; step++ {
		frac := cfg.TargetSparsity * (1 - math.Pow(1-float64(step)/float64(cfg.Steps), 3))
		if cfg.Criterion == Saliency {
			tr.ComputeGrad(x, y)
		}
		if err := GlobalPrune(rng, tr.Net, frac, cfg.Criterion); err != nil {
			return nil, nil, err
		}
		stats := tr.Fit(x, y, nn.TrainConfig{Epochs: cfg.RetrainEpochs, BatchSize: cfg.BatchSize})
		sparsities = append(sparsities, Sparsity(tr.Net))
		losses = append(losses, stats.FinalLoss())
	}
	return sparsities, losses, nil
}

// NonzeroParamBytes returns the storage for a pruned network in a sparse
// format: 4 bytes (float32) per surviving weight plus 4 bytes of index per
// surviving weight, plus dense biases.
func NonzeroParamBytes(net *nn.Network) int64 {
	var bytes int64
	for _, l := range net.Layers {
		switch d := l.(type) {
		case *nn.Dense:
			nz := 0
			if m := d.Mask(); m != nil {
				for _, v := range m.Data {
					if v != 0 {
						nz++
					}
				}
			} else {
				nz = d.W.Value.Size()
			}
			bytes += int64(nz)*8 + int64(d.B.Value.Size())*4
		default:
			for _, p := range l.Params() {
				bytes += int64(p.Value.Size()) * 4
			}
		}
	}
	return bytes
}
