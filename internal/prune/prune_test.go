package prune

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
)

func trainedNet(t *testing.T, seed int64) (*nn.Trainer, *data.Dataset, *data.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := data.GaussianMixture(rng, 600, 6, 3, 4)
	train, test := ds.Split(rng, 0.8)
	net := nn.NewMLP(rng, nn.MLPConfig{In: 6, Hidden: []int{32}, Out: 3})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(train.X, nn.OneHot(train.Labels, 3), nn.TrainConfig{Epochs: 25, BatchSize: 32})
	return tr, train, test
}

// mustPrune unwraps GlobalPrune's error for the in-range sparsities these
// tests use.
func mustPrune(t *testing.T, rng *rand.Rand, net *nn.Network, sparsity float64, crit Criterion) {
	t.Helper()
	if err := GlobalPrune(rng, net, sparsity, crit); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalPruneReachesSparsity(t *testing.T) {
	tr, _, _ := trainedNet(t, 1)
	mustPrune(t, rand.New(rand.NewSource(2)), tr.Net, 0.7, Magnitude)
	if s := Sparsity(tr.Net); math.Abs(s-0.7) > 0.02 {
		t.Fatalf("sparsity %.3f, want ~0.7", s)
	}
}

func TestGlobalPruneZeroesWeights(t *testing.T) {
	tr, _, _ := trainedNet(t, 3)
	mustPrune(t, rand.New(rand.NewSource(4)), tr.Net, 0.5, Magnitude)
	for _, l := range tr.Net.Layers {
		d, ok := l.(*nn.Dense)
		if !ok {
			continue
		}
		m := d.Mask()
		if m == nil {
			t.Fatal("mask not installed")
		}
		for i, v := range m.Data {
			if v == 0 && d.W.Value.Data[i] != 0 {
				t.Fatal("masked weight nonzero")
			}
		}
	}
}

func TestPrunedWeightsStayZeroThroughTraining(t *testing.T) {
	tr, train, _ := trainedNet(t, 5)
	mustPrune(t, rand.New(rand.NewSource(6)), tr.Net, 0.6, Magnitude)
	tr.Fit(train.X, nn.OneHot(train.Labels, 3), nn.TrainConfig{Epochs: 5, BatchSize: 32})
	for _, l := range tr.Net.Layers {
		d, ok := l.(*nn.Dense)
		if !ok {
			continue
		}
		m := d.Mask()
		for i, v := range m.Data {
			if v == 0 && d.W.Value.Data[i] != 0 {
				t.Fatalf("pruned weight %d resurrected to %g", i, d.W.Value.Data[i])
			}
		}
	}
	if s := Sparsity(tr.Net); s < 0.55 {
		t.Fatalf("sparsity decayed to %.3f", s)
	}
}

func TestModeratePruningPreservesAccuracy(t *testing.T) {
	tr, train, test := trainedNet(t, 7)
	base := tr.Net.Accuracy(test.X, test.Labels)
	mustPrune(t, rand.New(rand.NewSource(8)), tr.Net, 0.5, Magnitude)
	// Brief fine-tune, as the technique prescribes.
	tr.Fit(train.X, nn.OneHot(train.Labels, 3), nn.TrainConfig{Epochs: 5, BatchSize: 32})
	pruned := tr.Net.Accuracy(test.X, test.Labels)
	if pruned < base-0.05 {
		t.Fatalf("50%% pruning lost accuracy: %.3f -> %.3f", base, pruned)
	}
}

func TestMagnitudeBeatsRandomAtHighSparsity(t *testing.T) {
	accAfter := func(crit Criterion, seed int64) float64 {
		tr, _, test := trainedNet(t, 11)
		mustPrune(t, rand.New(rand.NewSource(seed)), tr.Net, 0.7, crit)
		// No fine-tune: measure the immediate damage.
		return tr.Net.Accuracy(test.X, test.Labels)
	}
	mag := accAfter(Magnitude, 1)
	randomAvg := (accAfter(Random, 2) + accAfter(Random, 3) + accAfter(Random, 4)) / 3
	if mag <= randomAvg {
		t.Fatalf("magnitude (%.3f) should beat random (%.3f) at 70%% sparsity", mag, randomAvg)
	}
}

func TestSaliencyPruning(t *testing.T) {
	tr, train, test := trainedNet(t, 13)
	tr.ComputeGrad(train.X, nn.OneHot(train.Labels, 3))
	mustPrune(t, rand.New(rand.NewSource(14)), tr.Net, 0.7, Saliency)
	if s := Sparsity(tr.Net); math.Abs(s-0.7) > 0.02 {
		t.Fatalf("saliency sparsity %.3f", s)
	}
	tr.Fit(train.X, nn.OneHot(train.Labels, 3), nn.TrainConfig{Epochs: 5, BatchSize: 32})
	if acc := tr.Net.Accuracy(test.X, test.Labels); acc < 0.85 {
		t.Fatalf("saliency-pruned accuracy %.3f", acc)
	}
}

func TestPruneUnitsStructured(t *testing.T) {
	tr, _, _ := trainedNet(t, 15)
	var hidden *nn.Dense
	for _, l := range tr.Net.Layers {
		if d, ok := l.(*nn.Dense); ok {
			hidden = d
			break
		}
	}
	pruned, err := PruneUnits(hidden, 0.25)
	if err != nil {
		t.Fatalf("PruneUnits: %v", err)
	}
	if len(pruned) != hidden.Out()/4 {
		t.Fatalf("pruned %d units, want %d", len(pruned), hidden.Out()/4)
	}
	// Whole columns must be zero.
	for _, j := range pruned {
		for i := 0; i < hidden.In(); i++ {
			if hidden.W.Value.Data[i*hidden.Out()+j] != 0 {
				t.Fatalf("unit %d not fully pruned", j)
			}
		}
	}
}

func TestIterativePruneRampsToTarget(t *testing.T) {
	tr, train, test := trainedNet(t, 17)
	sparsities, losses, err := IterativePrune(rand.New(rand.NewSource(18)), tr, train.X, nn.OneHot(train.Labels, 3), IterativeConfig{
		TargetSparsity: 0.8, Steps: 4, RetrainEpochs: 4, BatchSize: 32, Criterion: Magnitude,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sparsities) != 4 || len(losses) != 4 {
		t.Fatal("wrong round count")
	}
	for i := 1; i < len(sparsities); i++ {
		if sparsities[i] < sparsities[i-1]-1e-9 {
			t.Fatalf("sparsity not monotone: %v", sparsities)
		}
	}
	if math.Abs(sparsities[3]-0.8) > 0.02 {
		t.Fatalf("final sparsity %.3f, want ~0.8", sparsities[3])
	}
	if acc := tr.Net.Accuracy(test.X, test.Labels); acc < 0.8 {
		t.Fatalf("iteratively pruned accuracy %.3f", acc)
	}
}

func TestNonzeroParamBytesShrinks(t *testing.T) {
	tr, _, _ := trainedNet(t, 19)
	before := NonzeroParamBytes(tr.Net)
	mustPrune(t, rand.New(rand.NewSource(20)), tr.Net, 0.9, Magnitude)
	after := NonzeroParamBytes(tr.Net)
	if after >= before/2 {
		t.Fatalf("sparse bytes %d not much below dense %d", after, before)
	}
}

func TestGlobalPruneBadSparsityErrors(t *testing.T) {
	tr, _, _ := trainedNet(t, 21)
	for _, sp := range []float64{1.0, 1.5, -0.1} {
		if err := GlobalPrune(rand.New(rand.NewSource(1)), tr.Net, sp, Magnitude); err == nil {
			t.Fatalf("sparsity %g accepted", sp)
		}
	}
	// And the iterative schedule surfaces the same error rather than
	// panicking mid-run.
	tr2, train, _ := trainedNet(t, 22)
	_, _, err := IterativePrune(rand.New(rand.NewSource(2)), tr2, train.X, nn.OneHot(train.Labels, 3), IterativeConfig{
		TargetSparsity: 1.2, Steps: 2, RetrainEpochs: 1, BatchSize: 32, Criterion: Magnitude,
	})
	if err == nil {
		t.Fatal("IterativePrune accepted target sparsity 1.2")
	}
}
