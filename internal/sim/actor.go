package sim

import "sort"

// Actor is a named participant in the simulation — "trainer", "serve",
// "chaos". Actors exist so that composed experiments can attribute every
// event on the shared timeline to the subsystem that scheduled it: the
// kernel log (and hence the replay fingerprint) records the actor name on
// each execution, and per-actor fired counts let invariant checks assert
// that, say, the fault scheduler actually drove the windows it declared.
type Actor struct {
	k     *Kernel
	name  string
	fired int
}

// Actor returns the named actor, creating it on first use. Actor identity
// is per-kernel; the same name always returns the same *Actor.
func (k *Kernel) Actor(name string) *Actor {
	if a, ok := k.actors[name]; ok {
		return a
	}
	a := &Actor{k: k, name: name}
	k.actors[name] = a
	return a
}

// Actors returns the registered actor names in sorted order.
func (k *Kernel) Actors() []string {
	names := make([]string, 0, len(k.actors))
	for n := range k.actors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name returns the actor's name.
func (a *Actor) Name() string { return a.name }

// Fired returns how many of this actor's events have executed.
func (a *Actor) Fired() int { return a.fired }

// At schedules fn at absolute time t under this actor's name.
func (a *Actor) At(t float64, fn func(stamp float64)) *Event {
	return a.k.At(t, a.name, fn)
}

// After schedules fn d seconds from now under this actor's name.
func (a *Actor) After(d float64, fn func(stamp float64)) *Event {
	return a.k.After(d, a.name, fn)
}

// Every schedules a periodic event under this actor's name; see
// Kernel.Every for the cadence and termination contract.
func (a *Actor) Every(start, period float64, fn func(now float64) bool) *Event {
	return a.k.Every(start, period, a.name, fn)
}
