package sim

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []string
	k.At(3, "c", func(float64) { order = append(order, "c") })
	k.At(1, "a", func(float64) { order = append(order, "a") })
	k.At(2, "b", func(float64) { order = append(order, "b") })
	if n := k.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
	if k.Now() != 3 {
		t.Fatalf("clock at %g after run, want 3", k.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, "tie", func(float64) { order = append(order, i) })
	}
	k.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("same-time events ran in order %v, want scheduling order", order)
		}
	}
}

func TestStampIsScheduledTime(t *testing.T) {
	k := New()
	var stamps []float64
	// The first event advances the clock past the second's scheduled time;
	// the second must still run, stamped with its own instant.
	k.At(1, "w", func(stamp float64) {
		stamps = append(stamps, stamp)
		k.Advance(10)
	})
	k.At(2, "w", func(stamp float64) { stamps = append(stamps, stamp) })
	k.Run()
	if stamps[0] != 1 || stamps[1] != 2 {
		t.Fatalf("stamps %v, want [1 2]", stamps)
	}
	if k.Now() != 11 {
		t.Fatalf("clock %g, want 11 (advance dominates later stamp)", k.Now())
	}
}

// TestPastSchedulingKeepsStamp pins the composition contract: an event
// scheduled behind the clock (a fine-grained chain overtaken by a
// coarse-grained handler's Advance) runs next, with its true stamp, before
// anything scheduled later — and the clock never rewinds for it.
func TestPastSchedulingKeepsStamp(t *testing.T) {
	k := New()
	k.AdvanceTo(100)
	var order []float64
	k.At(200, "future", func(s float64) { order = append(order, s) })
	k.At(5, "late", func(s float64) { order = append(order, s) })
	k.Run()
	if len(order) != 2 || order[0] != 5 || order[1] != 200 {
		t.Fatalf("execution stamps %v, want [5 200] (past event first, true stamp)", order)
	}
	if k.Now() != 200 {
		t.Fatalf("clock %g, want 200 (never rewound by the past event)", k.Now())
	}
}

func TestAdvanceNeverRewinds(t *testing.T) {
	k := New()
	k.Advance(5)
	k.Advance(-3)
	k.AdvanceTo(2)
	if k.Now() != 5 {
		t.Fatalf("clock %g, want 5 (negative/backward moves ignored)", k.Now())
	}
}

func TestPeriodicAndCancel(t *testing.T) {
	k := New()
	fires := 0
	ev := k.Every(10, 10, "tick", func(now float64) bool {
		fires++
		return fires < 100
	})
	k.At(45, "stop", func(float64) { ev.Cancel() })
	k.Run()
	// Fires at 10, 20, 30, 40, then cancelled at 45 before the t=50 firing.
	if fires != 4 {
		t.Fatalf("periodic fired %d times, want 4 (cancelled at t=45)", fires)
	}
}

func TestPeriodicStopsWhenFalse(t *testing.T) {
	k := New()
	var stamps []float64
	k.Every(0, 2.5, "tick", func(now float64) bool {
		stamps = append(stamps, now)
		return len(stamps) < 3
	})
	k.Run()
	want := []float64{0, 2.5, 5}
	if len(stamps) != 3 {
		t.Fatalf("fired %d times, want 3", len(stamps))
	}
	for i, w := range want {
		if stamps[i] != w {
			t.Fatalf("stamps %v, want %v", stamps, want)
		}
	}
}

func TestPeriodicNonPositivePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every with period 0 did not panic")
		}
	}()
	New().Every(0, 0, "bad", func(float64) bool { return true })
}

func TestRunUntil(t *testing.T) {
	k := New()
	ran := 0
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		k.At(tt, "w", func(float64) { ran++ })
	}
	if n := k.RunUntil(3); n != 3 {
		t.Fatalf("RunUntil(3) ran %d events, want 3", n)
	}
	if k.Now() != 3 {
		t.Fatalf("clock %g after RunUntil(3), want 3", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("%d events pending, want 2", k.Pending())
	}
	k.Run()
	if ran != 5 {
		t.Fatalf("%d events ran in total, want 5", ran)
	}
}

func TestRunUntilAdvancesPastLastEvent(t *testing.T) {
	k := New()
	k.At(1, "w", func(float64) {})
	k.RunUntil(50)
	if k.Now() != 50 {
		t.Fatalf("clock %g, want 50", k.Now())
	}
}

func TestActors(t *testing.T) {
	k := New()
	a := k.Actor("trainer")
	b := k.Actor("serve")
	if k.Actor("trainer") != a {
		t.Fatal("Actor is not idempotent per name")
	}
	a.At(1, func(float64) {})
	a.After(2, func(float64) {})
	b.At(3, func(float64) {})
	k.Run()
	if a.Fired() != 2 || b.Fired() != 1 {
		t.Fatalf("fired counts trainer=%d serve=%d, want 2 and 1", a.Fired(), b.Fired())
	}
	names := k.Actors()
	if len(names) != 2 || names[0] != "serve" || names[1] != "trainer" {
		t.Fatalf("Actors() = %v, want sorted [serve trainer]", names)
	}
}

// run drives a small mixed scenario and returns the kernel's fingerprint.
func run(t *testing.T) (uint64, int) {
	t.Helper()
	k := New()
	chaos := k.Actor("chaos")
	work := k.Actor("work")
	total := 0.0
	chaos.Every(5, 7, func(now float64) bool {
		work.After(1.5, func(stamp float64) { total += stamp })
		return now < 60
	})
	work.At(0, func(float64) { k.Advance(3) })
	n := k.Run()
	if math.IsNaN(total) {
		t.Fatal("scenario produced NaN")
	}
	return k.Fingerprint(), n
}

func TestReplayFingerprint(t *testing.T) {
	fp1, n1 := run(t)
	fp2, n2 := run(t)
	if fp1 != fp2 || n1 != n2 {
		t.Fatalf("two identical runs diverged: fp %x vs %x, events %d vs %d", fp1, fp2, n1, n2)
	}
	// A perturbed scenario must change the fingerprint.
	k := New()
	k.Actor("chaos").At(1, func(float64) {})
	k.Run()
	if k.Fingerprint() == fp1 {
		t.Fatal("different scenarios produced identical fingerprints")
	}
}

func TestCancelledEventsExcludedFromFingerprint(t *testing.T) {
	build := func(cancelExtra bool) uint64 {
		k := New()
		k.At(1, "a", func(float64) {})
		ev := k.At(2, "b", func(float64) { panic("cancelled event ran") })
		if cancelExtra {
			ev.Cancel()
		} else {
			ev.Cancel()
		}
		k.At(3, "c", func(float64) {})
		k.Run()
		return k.Fingerprint()
	}
	base := build(false)
	k := New()
	k.At(1, "a", func(float64) {})
	k.At(3, "c", func(float64) {})
	k.Run()
	// Note: sequence numbers differ (the cancelled event consumed seq 1),
	// so the fingerprints legitimately differ; what must hold is that the
	// cancelled event never executes and both runs are deterministic.
	if build(true) != base {
		t.Fatal("identical cancel scenarios diverged")
	}
	if k.Processed() != 2 {
		t.Fatalf("processed %d, want 2", k.Processed())
	}
}
