// Package sim is the deterministic discrete-event simulation kernel that
// the distributed-training and serving simulators share. The tutorial's
// systems half argues that reliability is a property of the composed stack,
// not of individually hardened components; composing those components
// requires them to agree on what time it is. The kernel provides exactly
// that: one virtual clock, a priority-queue event loop with stable
// tie-breaking, and named actors, so that training rounds, request
// arrivals, and scheduled fault windows interleave on a single timeline and
// two runs of the same scenario are bit-identical.
//
// Determinism contract:
//
//   - Events are ordered by (time, sequence number). The sequence number is
//     assigned at scheduling time, so two events scheduled for the same
//     instant always execute in the order they were scheduled, regardless
//     of map iteration or goroutine interleavings upstream.
//   - Handlers run on the caller's goroutine; the kernel itself spawns
//     nothing and holds no locks. Concurrency inside a handler (e.g. the
//     parallel gradient computation in internal/distributed) is the
//     handler's business and must not touch the kernel.
//   - Advance models work performed *inside* an event (a coarse-grained
//     style of DES): a handler advances the clock by the simulated duration
//     of its computation, and later events are popped at
//     max(clock, event time), i.e. an event whose scheduled instant has
//     been overtaken still runs, stamped with its own scheduled time.
//
// The kernel log (actor, stamp, seq of every executed event) feeds a
// replay fingerprint, giving composed experiments such as X10 a fourth
// fingerprint to cross-check beyond metrics, traces, and ledgers.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math"
)

// Clock is the read-only view of simulated time that components take as a
// dependency. *Kernel satisfies it; so does any fixed stand-in in tests.
type Clock interface {
	// Now returns the current simulated time in seconds.
	Now() float64
}

// Event is one scheduled occurrence. The zero value is meaningless; events
// are created by the Kernel's scheduling methods and retained by callers
// only to Cancel them.
type Event struct {
	t        float64
	seq      uint64
	actor    string
	fn       func(stamp float64)
	every    func(now float64) bool // periodic callback, nil for one-shots
	period   float64
	canceled bool
}

// Cancel marks the event so it is skipped when popped. Cancelling an
// already-executed or nil event is a no-op. Cancelled events still consume
// their queue slot but do not appear in the execution log or fingerprint.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// eventQueue is a min-heap on (t, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Kernel is the discrete-event loop: a virtual clock plus a priority queue
// of pending events. Not safe for concurrent use — drive it from one
// goroutine (handlers may fan out internally as long as they rejoin before
// returning).
type Kernel struct {
	now       float64
	seq       uint64
	queue     eventQueue
	processed int
	actors    map[string]*Actor
	log       logHash
}

// logHash incrementally fingerprints the execution log so replay
// verification costs O(1) memory regardless of run length.
type logHash struct {
	h       uint64
	started bool
}

func (l *logHash) init() {
	if !l.started {
		l.h = fnv.New64a().Sum64() // FNV-1a offset basis
		l.started = true
	}
}

// word folds one 64-bit value into the hash byte by byte, little-endian.
// Splitting into bytes keeps the stream identical in spirit to the textual
// log (every bit of every field reaches the FNV state) while avoiding the
// fmt round-trip that dominated Step at million-event scale.
func (l *logHash) word(v uint64) {
	for i := 0; i < 8; i++ {
		l.h ^= v & 0xff
		l.h *= 1099511628211
		v >>= 8
	}
}

// event folds one executed event — actor name, scheduled stamp, sequence
// number — into the log hash without allocating.
func (l *logHash) event(actor string, t float64, seq uint64) {
	l.init()
	for i := 0; i < len(actor); i++ {
		l.h ^= uint64(actor[i])
		l.h *= 1099511628211
	}
	l.word(math.Float64bits(t))
	l.word(seq)
}

// New builds an empty kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{actors: map[string]*Actor{}}
}

// Now returns the current simulated time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Processed returns how many events have executed so far (cancelled events
// excluded).
func (k *Kernel) Processed() int { return k.processed }

// Pending returns how many events are queued (including cancelled ones not
// yet popped).
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run at absolute time t, stamped with t. The time may
// lie behind the current clock: with coarse-grained handlers that Advance
// the clock past other components' scheduled instants, an overtaken event
// simply becomes the next to pop and runs with its own (true) stamp — the
// clock itself never rewinds. Fine-grained event chains (request arrivals)
// therefore keep exact timestamps when composed with coarse-grained ones
// (training rounds).
func (k *Kernel) At(t float64, actor string, fn func(stamp float64)) *Event {
	ev := &Event{t: t, seq: k.seq, actor: actor, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return ev
}

// After schedules fn to run d seconds from the current clock. Negative d
// clamps to zero.
func (k *Kernel) After(d float64, actor string, fn func(stamp float64)) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, actor, fn)
}

// Every schedules fn to first run at start and then every period seconds,
// for as long as fn returns true. Each firing is stamped with its scheduled
// instant; the next firing is scheduled relative to that stamp (fixed-rate,
// not fixed-delay), so a handler that advances the clock does not skew the
// cadence. A non-positive period panics: it would loop forever at one
// instant.
func (k *Kernel) Every(start, period float64, actor string, fn func(now float64) bool) *Event {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every(%q) with non-positive period %g", actor, period))
	}
	ev := &Event{t: start, seq: k.seq, actor: actor, every: fn, period: period}
	k.seq++
	heap.Push(&k.queue, ev)
	return ev
}

// Advance moves the clock forward by d seconds, modelling work performed
// inside the currently running event (or between events, for standalone
// use). Negative d is clamped to zero — simulated time never rewinds.
func (k *Kernel) Advance(d float64) {
	if d > 0 {
		k.now += d
	}
}

// AdvanceTo moves the clock to absolute time t if t is ahead of it.
func (k *Kernel) AdvanceTo(t float64) {
	if t > k.now {
		k.now = t
	}
}

// Step pops and executes the earliest pending event, returning false when
// the queue is empty. The clock is set to max(now, event time) before the
// handler runs; the handler receives the event's own scheduled stamp.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.t > k.now {
			k.now = ev.t
		}
		k.processed++
		k.log.event(ev.actor, ev.t, ev.seq)
		if a, ok := k.actors[ev.actor]; ok {
			a.fired++
		}
		if ev.every != nil {
			if ev.every(ev.t) && !ev.canceled {
				// Reuse the same Event so the caller's handle keeps
				// working for Cancel across reschedules. The next firing
				// is start+n*period even if the clock has moved past it —
				// fixed-rate, catching up rather than skewing.
				ev.t += ev.period
				ev.seq = k.seq
				k.seq++
				heap.Push(&k.queue, ev)
			}
			return true
		}
		ev.fn(ev.t)
		return true
	}
	return false
}

// Run executes events until the queue drains, returning how many ran.
func (k *Kernel) Run() int {
	n := 0
	for k.Step() {
		n++
	}
	return n
}

// RunUntil executes events whose scheduled time is <= t, then advances the
// clock to t (if ahead) and returns how many events ran. Events scheduled
// beyond t stay queued.
func (k *Kernel) RunUntil(t float64) int {
	n := 0
	for len(k.queue) > 0 {
		// Peek: heap minimum is index 0.
		if k.queue[0].canceled {
			heap.Pop(&k.queue)
			continue
		}
		if k.queue[0].t > t {
			break
		}
		if k.Step() {
			n++
		}
	}
	k.AdvanceTo(t)
	return n
}

// Fingerprint returns the FNV-1a hash of the execution log so far: for
// every executed event, its actor name, scheduled stamp, and sequence
// number. Two runs of the same scenario must produce identical
// fingerprints; any divergence in ordering, timing, or event population
// shows up here even if downstream metrics happen to agree.
func (k *Kernel) Fingerprint() uint64 {
	k.log.init()
	return k.log.h
}
