package data

import (
	"math/rand"

	"dlsys/internal/tensor"
)

// CensusConfig controls BiasedCensus generation for the fairness
// experiments (E21-E24).
type CensusConfig struct {
	N int
	// Bias in [0, 1] injects label bias against the protected group: with
	// probability Bias, a protected-group example whose merit would earn a
	// positive label is flipped to negative (historical discrimination
	// baked into training labels).
	Bias float64
	// GroupFrac is the fraction of examples in the protected group
	// (default 0.4).
	GroupFrac float64
	// Leakage in [0, 1] is how strongly the proxy features encode group
	// membership (default 0.8): even with the protected attribute excluded
	// from the features, the model can infer it — the "retina" effect the
	// tutorial describes.
	Leakage float64
}

// CensusData is a census-like tabular dataset with a protected binary
// attribute. Features deliberately EXCLUDE the protected attribute; Group
// records it per example for auditing. TrueMerit holds the unbiased label
// before bias injection, so experiments can measure how far a model strays
// from the fair ground truth.
type CensusData struct {
	*Dataset
	Group     []int // 0 = reference group, 1 = protected group
	TrueMerit []int // unbiased label
}

// BiasedCensus generates a synthetic income-classification dataset with
// injectable historical bias. Features: years of education, experience,
// hours/week, plus two proxy features correlated with group membership
// (e.g. neighbourhood, industry code).
func BiasedCensus(rng *rand.Rand, cfg CensusConfig) *CensusData {
	if cfg.GroupFrac == 0 {
		cfg.GroupFrac = 0.4
	}
	if cfg.Leakage == 0 {
		cfg.Leakage = 0.8
	}
	const dim = 5
	x := tensor.New(cfg.N, dim)
	labels := make([]int, cfg.N)
	group := make([]int, cfg.N)
	merit := make([]int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		g := 0
		if rng.Float64() < cfg.GroupFrac {
			g = 1
		}
		group[i] = g
		edu := rng.NormFloat64()   // standardised years of education
		exp := rng.NormFloat64()   // standardised experience
		hours := rng.NormFloat64() // standardised hours/week
		score := 0.9*edu + 0.7*exp + 0.4*hours + 0.3*rng.NormFloat64()
		m := 0
		if score > 0 {
			m = 1
		}
		merit[i] = m
		label := m
		if g == 1 && m == 1 && rng.Float64() < cfg.Bias {
			label = 0 // historical discrimination: qualified but denied
		}
		labels[i] = label
		// Proxy features leak group membership.
		proxy1 := cfg.Leakage*float64(g) + (1-cfg.Leakage)*rng.NormFloat64()
		proxy2 := cfg.Leakage*float64(1-g) + (1-cfg.Leakage)*rng.NormFloat64()
		row := x.Row(i)
		row[0], row[1], row[2], row[3], row[4] = edu, exp, hours, proxy1, proxy2
	}
	return &CensusData{
		Dataset:   &Dataset{X: x, Labels: labels, Classes: 2},
		Group:     group,
		TrueMerit: merit,
	}
}

// SplitCensus splits a CensusData preserving group/merit alignment.
func (c *CensusData) SplitCensus(rng *rand.Rand, trainFrac float64) (train, test *CensusData) {
	n := c.N()
	perm := rng.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	return c.subsetCensus(perm[:nTrain]), c.subsetCensus(perm[nTrain:])
}

func (c *CensusData) subsetCensus(idx []int) *CensusData {
	ds := c.Dataset.subset(idx)
	group := make([]int, len(idx))
	merit := make([]int, len(idx))
	for bi, i := range idx {
		group[bi] = c.Group[i]
		merit[bi] = c.TrueMerit[i]
	}
	return &CensusData{Dataset: ds, Group: group, TrueMerit: merit}
}
