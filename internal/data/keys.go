package data

import (
	"math"
	"math/rand"
	"sort"
)

// KeyDistribution names a synthetic key distribution for the learned-index
// experiments (E13/E14). The distributions mirror the standard learned-index
// evaluation sets: smooth (uniform), skewed (zipf-like gaps), and heavy-
// tailed (lognormal).
type KeyDistribution string

// Key distributions supported by GenerateKeys.
const (
	Uniform   KeyDistribution = "uniform"
	ZipfGaps  KeyDistribution = "zipf"
	Lognormal KeyDistribution = "lognormal"
)

// DistError is the typed error GenerateKeys returns for a distribution
// name it does not recognise.
type DistError struct {
	Dist KeyDistribution
}

func (e *DistError) Error() string {
	return "data: unknown key distribution " + string(e.Dist)
}

// GenerateKeys returns n distinct uint64 keys drawn from the named
// distribution, sorted ascending. An unknown distribution yields a typed
// *DistError.
func GenerateKeys(rng *rand.Rand, dist KeyDistribution, n int) ([]uint64, error) {
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	add := func(k uint64) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	switch dist {
	case Uniform:
		for len(keys) < n {
			add(rng.Uint64() >> 16) // keep headroom for "missing key" probes
		}
	case ZipfGaps:
		// Cumulative zipf-distributed gaps: long stretches of dense keys
		// separated by rare huge jumps — a hard, highly-skewed CDF.
		z := rand.NewZipf(rng, 1.3, 1, 1<<20)
		var cur uint64
		for len(keys) < n {
			cur += z.Uint64() + 1
			add(cur)
		}
	case Lognormal:
		for len(keys) < n {
			v := math.Exp(rng.NormFloat64()*2 + 10)
			add(uint64(v * 1000))
		}
	default:
		return nil, &DistError{Dist: dist}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys, nil
}

// NegativeKeys returns n keys guaranteed absent from the sorted key set,
// drawn between existing keys — the adversarial case for filters.
func NegativeKeys(rng *rand.Rand, keys []uint64, n int) []uint64 {
	present := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		present[k] = true
	}
	out := make([]uint64, 0, n)
	maxKey := keys[len(keys)-1]
	for len(out) < n {
		k := rng.Uint64() % (maxKey + 2)
		if !present[k] {
			out = append(out, k)
		}
	}
	return out
}

// CorrelatedTuples generates rows over three correlated numeric attributes
// for the selectivity-estimation experiment (E15). a ~ U[0,1);
// b = clamp(a + strength-scaled noise); c = clamp(a·b + noise). Histograms
// assuming attribute independence systematically mis-estimate conjunctive
// selectivities on this data.
func CorrelatedTuples(rng *rand.Rand, n int, corr float64) [][3]float64 {
	noise := 1 - corr
	rows := make([][3]float64, n)
	for i := range rows {
		a := rng.Float64()
		b := clamp01(corr*a + noise*rng.Float64())
		c := clamp01(corr*a*b + noise*rng.Float64())
		rows[i] = [3]float64{a, b, c}
	}
	return rows
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
