// Package data generates the deterministic synthetic datasets used across
// dlsys experiments. Real workloads from the tutorial's citations (MNIST,
// ImageNet, census data, production key sets) are substituted with
// laptop-scale synthetic equivalents that preserve the statistical
// structure each technique exploits: cluster structure for classifiers,
// localized discriminative pixels for saliency, skew for learned indexes,
// attribute correlation for selectivity estimation, and injectable group
// bias for fairness.
package data

import (
	"math"
	"math/rand"

	"dlsys/internal/tensor"
)

// Dataset is a labelled classification dataset. X has examples along the
// leading axis (rank 2 for tabular data, rank 4 NCHW for images).
type Dataset struct {
	X       *tensor.Tensor
	Labels  []int
	Classes int
}

// N returns the number of examples.
func (d *Dataset) N() int { return len(d.Labels) }

// Split partitions the dataset into train and test subsets with the given
// train fraction, shuffling with rng first.
func (d *Dataset) Split(rng *rand.Rand, trainFrac float64) (train, test *Dataset) {
	n := d.N()
	perm := rng.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	return d.subset(perm[:nTrain]), d.subset(perm[nTrain:])
}

// Subset returns a new dataset containing the given example indices.
func (d *Dataset) Subset(idx []int) *Dataset { return d.subset(idx) }

func (d *Dataset) subset(idx []int) *Dataset {
	exSize := d.X.Size() / d.X.Dim(0)
	shape := append([]int{len(idx)}, d.X.Shape()[1:]...)
	x := tensor.New(shape...)
	labels := make([]int, len(idx))
	for bi, i := range idx {
		copy(x.Data[bi*exSize:(bi+1)*exSize], d.X.Data[i*exSize:(i+1)*exSize])
		labels[bi] = d.Labels[i]
	}
	return &Dataset{X: x, Labels: labels, Classes: d.Classes}
}

// GaussianMixture generates n points in dim dimensions from `classes`
// spherical Gaussians whose centers are drawn uniformly from
// [-sep, sep]^dim; each class has unit within-class standard deviation.
// Larger sep makes the problem easier.
func GaussianMixture(rng *rand.Rand, n, dim, classes int, sep float64) *Dataset {
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = (2*rng.Float64() - 1) * sep
		}
	}
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for j := 0; j < dim; j++ {
			x.Data[i*dim+j] = centers[c][j] + rng.NormFloat64()
		}
	}
	return &Dataset{X: x, Labels: labels, Classes: classes}
}

// TwoMoons generates the classic two interleaving half-circles with additive
// Gaussian noise — a minimal dataset that is not linearly separable.
func TwoMoons(rng *rand.Rand, n int, noise float64) *Dataset {
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		theta := math.Pi * rng.Float64()
		var px, py float64
		if i%2 == 0 {
			px, py = math.Cos(theta), math.Sin(theta)
			labels[i] = 0
		} else {
			px, py = 1-math.Cos(theta), 0.5-math.Sin(theta)
			labels[i] = 1
		}
		x.Data[i*2] = px + noise*rng.NormFloat64()
		x.Data[i*2+1] = py + noise*rng.NormFloat64()
	}
	return &Dataset{X: x, Labels: labels, Classes: 2}
}

// DigitsConfig controls SyntheticDigits generation.
type DigitsConfig struct {
	N       int
	Size    int     // image side length (default 8)
	Classes int     // default 4
	Noise   float64 // pixel noise std (default 0.25)
}

// SyntheticDigits generates [N, 1, Size, Size] images where each class has a
// distinct bright glyph (horizontal bar, vertical bar, diagonal, square
// outline) on a noisy background. The glyph pixels are the ground-truth
// discriminative region, which the saliency experiments (E28) check against.
func SyntheticDigits(rng *rand.Rand, cfg DigitsConfig) (*Dataset, [][]bool) {
	if cfg.Size == 0 {
		cfg.Size = 8
	}
	if cfg.Classes == 0 {
		cfg.Classes = 4
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.25
	}
	s := cfg.Size
	masks := glyphMasks(s, cfg.Classes)
	x := tensor.New(cfg.N, 1, s, s)
	labels := make([]int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		c := i % cfg.Classes
		labels[i] = c
		base := i * s * s
		for p := 0; p < s*s; p++ {
			v := cfg.Noise * rng.NormFloat64()
			if masks[c][p] {
				v += 1.0
			}
			x.Data[base+p] = v
		}
	}
	return &Dataset{X: x, Labels: labels, Classes: cfg.Classes}, masks
}

// glyphMasks returns, for each class, a boolean mask over the s×s pixels
// marking that class's glyph.
func glyphMasks(s, classes int) [][]bool {
	masks := make([][]bool, classes)
	for c := range masks {
		m := make([]bool, s*s)
		mid := s / 2
		switch c % 4 {
		case 0: // horizontal bar
			for x := 0; x < s; x++ {
				m[mid*s+x] = true
			}
		case 1: // vertical bar
			for y := 0; y < s; y++ {
				m[y*s+mid] = true
			}
		case 2: // main diagonal
			for d := 0; d < s; d++ {
				m[d*s+d] = true
			}
		case 3: // square outline
			for d := 1; d < s-1; d++ {
				m[1*s+d] = true
				m[(s-2)*s+d] = true
				m[d*s+1] = true
				m[d*s+(s-2)] = true
			}
		}
		masks[c] = m
	}
	return masks
}

// Standardize rescales each feature of a rank-2 dataset to zero mean and
// unit variance in place, returning the per-feature means and stds so test
// data can be transformed consistently.
func Standardize(x *tensor.Tensor) (mean, std []float64) {
	m, n := x.Dim(0), x.Dim(1)
	mean = make([]float64, n)
	std = make([]float64, n)
	for j := 0; j < n; j++ {
		var mu float64
		for i := 0; i < m; i++ {
			mu += x.Data[i*n+j]
		}
		mu /= float64(m)
		var v float64
		for i := 0; i < m; i++ {
			d := x.Data[i*n+j] - mu
			v += d * d
		}
		sd := math.Sqrt(v / float64(m))
		if sd == 0 {
			sd = 1
		}
		mean[j], std[j] = mu, sd
		for i := 0; i < m; i++ {
			x.Data[i*n+j] = (x.Data[i*n+j] - mu) / sd
		}
	}
	return mean, std
}

// ApplyStandardize applies a previously-computed standardization to x.
func ApplyStandardize(x *tensor.Tensor, mean, std []float64) {
	m, n := x.Dim(0), x.Dim(1)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			x.Data[i*n+j] = (x.Data[i*n+j] - mean[j]) / std[j]
		}
	}
}

// RegressionConfig controls Regression generation.
type RegressionConfig struct {
	N     int
	Dim   int
	Noise float64 // target noise std
	// Nonlinear adds a sin transform of the first feature, making linear
	// models underfit.
	Nonlinear bool
}

// Regression generates a regression dataset y = w·x (+ sin term) + noise,
// returning inputs, targets (shape [n, 1]), and the true weights.
func Regression(rng *rand.Rand, cfg RegressionConfig) (x, y *tensor.Tensor, w []float64) {
	x = tensor.New(cfg.N, cfg.Dim)
	y = tensor.New(cfg.N, 1)
	w = make([]float64, cfg.Dim)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	for i := 0; i < cfg.N; i++ {
		var t float64
		for j := 0; j < cfg.Dim; j++ {
			v := rng.NormFloat64()
			x.Set(v, i, j)
			t += w[j] * v
		}
		if cfg.Nonlinear {
			t += 2 * math.Sin(3*x.At(i, 0))
		}
		y.Data[i] = t + cfg.Noise*rng.NormFloat64()
	}
	return x, y, w
}
