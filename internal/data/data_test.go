package data

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// must unwraps (value, error) pairs whose arguments are valid by
// construction; a failure is a test bug, so it panics.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestGaussianMixtureShapeAndBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := GaussianMixture(rng, 300, 4, 3, 5)
	if ds.N() != 300 || ds.X.Dim(1) != 4 || ds.Classes != 3 {
		t.Fatalf("bad dataset: n=%d dim=%d classes=%d", ds.N(), ds.X.Dim(1), ds.Classes)
	}
	counts := make([]int, 3)
	for _, l := range ds.Labels {
		counts[l]++
	}
	for c, cnt := range counts {
		if cnt != 100 {
			t.Fatalf("class %d count %d, want 100", c, cnt)
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := GaussianMixture(rng, 100, 2, 2, 3)
	tr, te := ds.Split(rng, 0.8)
	if tr.N() != 80 || te.N() != 20 {
		t.Fatalf("split sizes %d/%d", tr.N(), te.N())
	}
}

func TestTwoMoonsNotLinearlySeparableButClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := TwoMoons(rng, 200, 0.05)
	if ds.N() != 200 || ds.Classes != 2 {
		t.Fatal("bad two moons")
	}
	// Class 0 points lie on the upper moon (mean y > 0.25 of class 1).
	var y0, y1 float64
	var n0, n1 int
	for i, l := range ds.Labels {
		if l == 0 {
			y0 += ds.X.At(i, 1)
			n0++
		} else {
			y1 += ds.X.At(i, 1)
			n1++
		}
	}
	if y0/float64(n0) <= y1/float64(n1) {
		t.Fatal("moons not separated vertically on average")
	}
}

func TestSyntheticDigitsGlyphBrighter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds, masks := SyntheticDigits(rng, DigitsConfig{N: 40})
	s := 8
	for i := 0; i < ds.N(); i++ {
		c := ds.Labels[i]
		var in, out float64
		var nin, nout int
		for p := 0; p < s*s; p++ {
			v := ds.X.Data[i*s*s+p]
			if masks[c][p] {
				in += v
				nin++
			} else {
				out += v
				nout++
			}
		}
		if in/float64(nin) < out/float64(nout)+0.5 {
			t.Fatalf("example %d: glyph not bright (in=%g out=%g)", i, in/float64(nin), out/float64(nout))
		}
	}
}

func TestStandardize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := GaussianMixture(rng, 500, 3, 2, 10)
	mean, std := Standardize(ds.X)
	if len(mean) != 3 || len(std) != 3 {
		t.Fatal("wrong stat lengths")
	}
	m, n := ds.X.Dim(0), ds.X.Dim(1)
	for j := 0; j < n; j++ {
		var mu, v float64
		for i := 0; i < m; i++ {
			mu += ds.X.At(i, j)
		}
		mu /= float64(m)
		for i := 0; i < m; i++ {
			d := ds.X.At(i, j) - mu
			v += d * d
		}
		v /= float64(m)
		if math.Abs(mu) > 1e-9 || math.Abs(v-1) > 1e-9 {
			t.Fatalf("feature %d not standardized: mu=%g var=%g", j, mu, v)
		}
	}
}

func TestGenerateKeysSortedDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, dist := range []KeyDistribution{Uniform, ZipfGaps, Lognormal} {
		keys := must(GenerateKeys(rng, dist, 5000))
		if len(keys) != 5000 {
			t.Fatalf("%s: got %d keys", dist, len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] <= keys[i-1] {
				t.Fatalf("%s: keys not strictly ascending at %d", dist, i)
			}
		}
	}
}

func TestNegativeKeysAbsent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := must(GenerateKeys(rng, Uniform, 1000))
	present := make(map[uint64]bool)
	for _, k := range keys {
		present[k] = true
	}
	for _, k := range NegativeKeys(rng, keys, 500) {
		if present[k] {
			t.Fatalf("negative key %d is present", k)
		}
	}
}

func TestCorrelatedTuplesCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := CorrelatedTuples(rng, 5000, 0.9)
	// Pearson correlation between a and b should be high.
	var ma, mb float64
	for _, r := range rows {
		ma += r[0]
		mb += r[1]
	}
	ma /= float64(len(rows))
	mb /= float64(len(rows))
	var cov, va, vb float64
	for _, r := range rows {
		cov += (r[0] - ma) * (r[1] - mb)
		va += (r[0] - ma) * (r[0] - ma)
		vb += (r[1] - mb) * (r[1] - mb)
	}
	corr := cov / math.Sqrt(va*vb)
	if corr < 0.7 {
		t.Fatalf("a-b correlation %g, want > 0.7", corr)
	}
}

func TestBiasedCensusInjectsBias(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	unbiased := BiasedCensus(rng, CensusConfig{N: 4000, Bias: 0})
	biased := BiasedCensus(rand.New(rand.NewSource(9)), CensusConfig{N: 4000, Bias: 0.8})

	posRate := func(c *CensusData, g int) float64 {
		var pos, n int
		for i, l := range c.Labels {
			if c.Group[i] == g {
				n++
				pos += l
			}
		}
		return float64(pos) / float64(n)
	}
	// Without bias, positive rates are close across groups.
	gap0 := math.Abs(posRate(unbiased, 0) - posRate(unbiased, 1))
	gapB := math.Abs(posRate(biased, 0) - posRate(biased, 1))
	if gap0 > 0.08 {
		t.Fatalf("unbiased gap too large: %g", gap0)
	}
	if gapB < gap0+0.15 {
		t.Fatalf("bias injection ineffective: gap0=%g gapB=%g", gap0, gapB)
	}
	// Labels never exceed merit for the protected group (bias only denies).
	for i := range biased.Labels {
		if biased.Group[i] == 1 && biased.Labels[i] > biased.TrueMerit[i] {
			t.Fatal("bias should only flip positive→negative")
		}
	}
}

func TestCensusSplitAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := BiasedCensus(rng, CensusConfig{N: 1000, Bias: 0.5})
	tr, te := c.SplitCensus(rng, 0.7)
	if tr.N() != 700 || te.N() != 300 {
		t.Fatalf("split sizes %d/%d", tr.N(), te.N())
	}
	if len(tr.Group) != 700 || len(tr.TrueMerit) != 700 {
		t.Fatal("aux arrays misaligned")
	}
}

func TestRegressionGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y, w := Regression(rng, RegressionConfig{N: 2000, Dim: 3, Noise: 0.1})
	if x.Dim(0) != 2000 || y.Dim(1) != 1 || len(w) != 3 {
		t.Fatal("shapes wrong")
	}
	// Least squares on the generated data should recover w closely.
	// Solve (XᵀX)β = Xᵀy with 3x3 Gaussian elimination.
	var xtx [3][4]float64
	for i := 0; i < 2000; i++ {
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				xtx[a][b] += x.At(i, a) * x.At(i, b)
			}
			xtx[a][3] += x.At(i, a) * y.Data[i]
		}
	}
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(xtx[r][col]) > math.Abs(xtx[p][col]) {
				p = r
			}
		}
		xtx[col], xtx[p] = xtx[p], xtx[col]
		for r := col + 1; r < 3; r++ {
			f := xtx[r][col] / xtx[col][col]
			for c := col; c < 4; c++ {
				xtx[r][c] -= f * xtx[col][c]
			}
		}
	}
	var beta [3]float64
	for r := 2; r >= 0; r-- {
		s := xtx[r][3]
		for c := r + 1; c < 3; c++ {
			s -= xtx[r][c] * beta[c]
		}
		beta[r] = s / xtx[r][r]
	}
	for j := 0; j < 3; j++ {
		if math.Abs(beta[j]-w[j]) > 0.05 {
			t.Fatalf("weight %d: recovered %g, true %g", j, beta[j], w[j])
		}
	}
}

func TestRegressionNonlinearHurtsLinearFit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	_, yLin, _ := Regression(rng, RegressionConfig{N: 500, Dim: 2, Noise: 0.01})
	_, yNon, _ := Regression(rand.New(rand.NewSource(12)), RegressionConfig{N: 500, Dim: 2, Noise: 0.01, Nonlinear: true})
	// The nonlinear targets must actually differ.
	diff := 0.0
	for i := range yLin.Data {
		diff += math.Abs(yLin.Data[i] - yNon.Data[i])
	}
	if diff/float64(len(yLin.Data)) < 0.5 {
		t.Fatal("nonlinear term had no effect")
	}
}

func TestGenerateKeysUnknownDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_, err := GenerateKeys(rng, KeyDistribution("cauchy"), 10)
	if err == nil {
		t.Fatal("unknown distribution accepted")
	}
	var de *DistError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a *DistError", err)
	}
	if de.Dist != "cauchy" {
		t.Fatalf("DistError names %q, want cauchy", de.Dist)
	}
}
