package device

import "testing"

func TestServeTimeWeightBoundRegime(t *testing.T) {
	// A small MLP served one example at a time is memory-bound: halving the
	// streamed bytes should nearly halve the service time.
	full := EdgeDevice.ServeTime(8000, 3000, 0.5)
	quant := EdgeDevice.ServeTime(2000, 3000, 0.5)
	if quant >= full {
		t.Fatalf("smaller model not faster to serve: %g vs %g", quant, full)
	}
	if ratio := full / quant; ratio < 2 {
		t.Fatalf("4x fewer bytes should cut weight-bound serve time >2x, got %.2fx", ratio)
	}
}

func TestServeTimeIncludesCompute(t *testing.T) {
	withCompute := CPUServer.ServeTime(1000, 1e9, 0.5)
	memOnly := CPUServer.MemTime(1000)
	if withCompute <= memOnly {
		t.Fatal("serve time must include the arithmetic term")
	}
	want := memOnly + CPUServer.ComputeTime(1e9, 0.5)
	if withCompute != want {
		t.Fatalf("serve time %g != mem+compute %g", withCompute, want)
	}
}
