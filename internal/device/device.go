// Package device models heterogeneous hardware with analytic cost models.
// The tutorial's techniques are evaluated on GPUs/TPUs/edge devices we do
// not have; this package substitutes device profiles (FLOP throughput,
// memory bandwidth and capacity, interconnect bandwidth and latency, power
// draw) so that compute/communication/memory tradeoffs produce the same
// crossovers the real hardware would, in simulated seconds.
package device

import "fmt"

// Profile describes one simulated device.
type Profile struct {
	Name          string
	FLOPsPerSec   float64 // peak arithmetic throughput
	MemBandwidth  float64 // bytes/sec to device memory
	MemCapacity   int64   // bytes of device memory
	LinkBandwidth float64 // bytes/sec to peer devices / host
	LinkLatencyS  float64 // per-message latency in seconds
	Watts         float64 // power draw under load
	IdleWatts     float64 // power draw when idle
}

// Catalog of representative device profiles. Numbers are order-of-magnitude
// public figures, not measurements; experiments only rely on their ratios.
var (
	// CPUServer approximates a 32-core server CPU.
	CPUServer = Profile{
		Name: "cpu-server", FLOPsPerSec: 2e12, MemBandwidth: 100e9,
		MemCapacity: 256 << 30, LinkBandwidth: 12e9, LinkLatencyS: 5e-6,
		Watts: 250, IdleWatts: 80,
	}
	// GPUSmall approximates a mid-range training accelerator.
	GPUSmall = Profile{
		Name: "gpu-small", FLOPsPerSec: 30e12, MemBandwidth: 600e9,
		MemCapacity: 16 << 30, LinkBandwidth: 16e9, LinkLatencyS: 8e-6,
		Watts: 200, IdleWatts: 40,
	}
	// GPULarge approximates a flagship training accelerator.
	GPULarge = Profile{
		Name: "gpu-large", FLOPsPerSec: 150e12, MemBandwidth: 2e12,
		MemCapacity: 80 << 30, LinkBandwidth: 50e9, LinkLatencyS: 5e-6,
		Watts: 400, IdleWatts: 60,
	}
	// TPULike approximates a systolic-array accelerator.
	TPULike = Profile{
		Name: "tpu-like", FLOPsPerSec: 250e12, MemBandwidth: 1.2e12,
		MemCapacity: 32 << 30, LinkBandwidth: 100e9, LinkLatencyS: 2e-6,
		Watts: 280, IdleWatts: 50,
	}
	// EdgeDevice approximates a phone-class inference chip.
	EdgeDevice = Profile{
		Name: "edge", FLOPsPerSec: 1e12, MemBandwidth: 30e9,
		MemCapacity: 4 << 30, LinkBandwidth: 100e6, LinkLatencyS: 1e-3,
		Watts: 5, IdleWatts: 0.5,
	}
	// ClusterNode approximates one node of a commodity training cluster:
	// accelerator-class compute behind a datacenter Ethernet NIC, so
	// inter-node links are bandwidth-bound for realistic gradient payloads.
	// This is the profile the collective-topology experiments scale on —
	// its bandwidth/latency ratio puts the ring/mesh crossover at the
	// payload sizes real data-parallel training ships.
	ClusterNode = Profile{
		Name: "cluster-node", FLOPsPerSec: 40e12, MemBandwidth: 800e9,
		MemCapacity: 64 << 30, LinkBandwidth: 2.5e9, LinkLatencyS: 1e-5,
		Watts: 350, IdleWatts: 60,
	}
)

// Catalog lists all built-in profiles.
func Catalog() []Profile {
	return []Profile{CPUServer, GPUSmall, GPULarge, TPULike, EdgeDevice, ClusterNode}
}

// ComputeTime returns the seconds needed to execute the given FLOPs at an
// assumed fraction of peak (efficiency in (0, 1]).
func (p Profile) ComputeTime(flops int64, efficiency float64) float64 {
	if efficiency <= 0 || efficiency > 1 {
		panic(fmt.Sprintf("device: efficiency %g out of (0,1]", efficiency))
	}
	return float64(flops) / (p.FLOPsPerSec * efficiency)
}

// MemTime returns the seconds to move bytes through device memory.
func (p Profile) MemTime(bytes int64) float64 {
	return float64(bytes) / p.MemBandwidth
}

// SendTime returns the seconds for one message of the given size over the
// profile's own link: per-message latency plus serialization. It is the
// per-attempt cost the distributed trainer's retrying transport pays.
func (p Profile) SendTime(bytes int64) float64 {
	return p.LinkLatencyS + float64(bytes)/p.LinkBandwidth
}

// ServeTime returns the seconds for one inference request executed locally
// on the device: the model's weights stream through device memory once (the
// weight-bound small-batch serving regime) plus the arithmetic at the given
// efficiency. This is the per-request cost model the serving simulator
// charges each replica — compressed variants are faster precisely because
// fewer bytes stream per request.
func (p Profile) ServeTime(modelBytes, flops int64, efficiency float64) float64 {
	return p.MemTime(modelBytes) + p.ComputeTime(flops, efficiency)
}

// TransferTime returns the seconds to send bytes over the device's
// interconnect, including per-message latency. Bandwidth is the minimum of
// the two endpoints' link bandwidths.
func TransferTime(from, to Profile, bytes int64) float64 {
	bw := from.LinkBandwidth
	if to.LinkBandwidth < bw {
		bw = to.LinkBandwidth
	}
	return from.LinkLatencyS + to.LinkLatencyS + float64(bytes)/bw
}

// EnergyJoules returns the energy for running the device under load for
// busySeconds and idle for idleSeconds.
func (p Profile) EnergyJoules(busySeconds, idleSeconds float64) float64 {
	return p.Watts*busySeconds + p.IdleWatts*idleSeconds
}

// StepTime estimates one training-step time for a model on this device:
// compute-bound term plus a memory-traffic term for reading parameters and
// writing activations. It is the simulator primitive used by the
// parallelization planner.
func (p Profile) StepTime(flops, paramBytes, activationBytes int64, efficiency float64) float64 {
	compute := p.ComputeTime(flops, efficiency)
	traffic := p.MemTime(paramBytes + activationBytes)
	// Compute and memory traffic overlap imperfectly; take max plus 10% of
	// the smaller term, a standard roofline-style approximation.
	if compute > traffic {
		return compute + 0.1*traffic
	}
	return traffic + 0.1*compute
}
