package device

import (
	"math"
	"testing"
)

func TestComputeTimeScalesInversely(t *testing.T) {
	tSmall := GPUSmall.ComputeTime(1e12, 0.5)
	tLarge := GPULarge.ComputeTime(1e12, 0.5)
	if tLarge >= tSmall {
		t.Fatalf("larger GPU should be faster: %g vs %g", tLarge, tSmall)
	}
	ratio := tSmall / tLarge
	want := GPULarge.FLOPsPerSec / GPUSmall.FLOPsPerSec
	if math.Abs(ratio-want)/want > 1e-9 {
		t.Fatalf("speedup ratio %g, want %g", ratio, want)
	}
}

func TestComputeTimeBadEfficiencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CPUServer.ComputeTime(1, 0)
}

func TestTransferTimeUsesMinBandwidthPlusLatencies(t *testing.T) {
	bytes := int64(1e9)
	got := TransferTime(GPULarge, EdgeDevice, bytes)
	want := GPULarge.LinkLatencyS + EdgeDevice.LinkLatencyS + 1e9/EdgeDevice.LinkBandwidth
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("transfer time %g, want %g", got, want)
	}
	// Zero-byte transfers still pay latency.
	if lat := TransferTime(GPUSmall, GPUSmall, 0); lat <= 0 {
		t.Fatal("latency not charged")
	}
}

func TestEnergyJoules(t *testing.T) {
	e := EdgeDevice.EnergyJoules(10, 5)
	want := 5.0*10 + 0.5*5
	if math.Abs(e-want) > 1e-12 {
		t.Fatalf("energy %g, want %g", e, want)
	}
}

func TestStepTimeRoofline(t *testing.T) {
	// Compute-bound: huge FLOPs, tiny bytes.
	cb := GPUSmall.StepTime(1e15, 1e3, 1e3, 1)
	if cb < GPUSmall.ComputeTime(1e15, 1) {
		t.Fatal("compute-bound step cannot beat pure compute time")
	}
	// Memory-bound: tiny FLOPs, huge bytes.
	mb := GPUSmall.StepTime(1e3, 1e12, 0, 1)
	if mb < GPUSmall.MemTime(1e12) {
		t.Fatal("memory-bound step cannot beat pure transfer time")
	}
}

func TestCatalogDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Catalog() {
		if seen[p.Name] {
			t.Fatalf("duplicate profile name %s", p.Name)
		}
		seen[p.Name] = true
		if p.FLOPsPerSec <= 0 || p.Watts <= 0 || p.MemCapacity <= 0 {
			t.Fatalf("profile %s has non-positive fields", p.Name)
		}
	}
}
