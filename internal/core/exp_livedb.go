package core

import (
	"fmt"
	"math/rand"
	"time"

	"dlsys/internal/fault"
	"dlsys/internal/learned"
	"dlsys/internal/livedb"
	"dlsys/internal/obs"
	"dlsys/internal/sim"
)

// X11 stresses the online index-maintenance engine across a drift-schedule
// × fault-rate matrix: three key-distribution drift shapes (steady,
// gradual, flash) crossed with two corrupted-insert regimes (clean,
// bursty). Every cell runs the same guarded maintenance loop — monitor,
// retrain, validate, swap or roll back, degrade down the fallback ladder —
// and four invariants are checked across the whole matrix: (a) 100% query
// availability with the served-tier mix recorded; (b) no validated and
// swapped index ever exceeds its declared max search window at runtime;
// (c) obs counters reconcile exactly with the engine's stats and the
// retrain/rollback ledger, and two runs of each cell produce bit-identical
// kernel/ledger/registry fingerprints; (d) wherever a retrain swapped, the
// learned path re-attains its latency and memory win over the B-tree
// baseline, measured live on the post-swap index.

func init() {
	register(Experiment{
		ID: "X11", Section: "3",
		Title: "Drift-hardened online learned indexes under live traffic",
		Claim: "Across a drift-schedule × fault-rate matrix, online index maintenance keeps 100% availability down the fallback ladder, never serves a validated index past its declared search window, reconciles counters exactly with the retrain/rollback ledger with bit-identical replay, and re-attains the learned-vs-B-tree latency/memory win after every retrain",
		Run:   runX11,
	})
}

// x11Drifts and x11Faults are the matrix axes.
var x11Drifts = []string{"steady", "gradual", "flash"}
var x11Faults = []string{"clean", "bursty"}

// x11Cell is the outcome of one matrix cell, run twice.
type x11Cell struct {
	drift, faults string

	stats livedb.Stats
	wl    livedb.WorkloadStats

	kernelFP, ledgerFP, regFP [2]uint64

	reconciled bool
	detail     string

	serving          bool
	learnedS, btreeS float64
	lookups          int
	lmem, bmem       int64
}

// x11CellConfig lays the drift phases and fault windows onto the cell's
// timeline. T is the nominal day length (Ops/Rate); clusters sit inside
// the clustered key population's space so clean inserts stay within the
// schema fence, and corrupt bursts flip high bits that land far outside it.
func x11CellConfig(drift, faultMode string, ops int, rate float64, seed int64) livedb.WorkloadConfig {
	T := float64(ops) / rate
	cfg := livedb.WorkloadConfig{
		Seed:         seed,
		Ops:          ops,
		Rate:         rate,
		ClusterWidth: 1 << 38,
	}
	switch drift {
	case "steady":
		cfg.Phases = []livedb.Phase{{StartS: 0}}
	case "gradual":
		cfg.Phases = []livedb.Phase{
			{StartS: 0},
			{StartS: 0.3 * T, Clusters: []uint64{5 << 40}, HardNegFrac: 0.25},
			{StartS: 0.6 * T, Clusters: []uint64{5 << 40, 11 << 40}, HardNegFrac: 0.45},
		}
	case "flash":
		cfg.Phases = []livedb.Phase{
			{StartS: 0},
			{StartS: 0.5 * T, Clusters: []uint64{13 << 40}, HardNegFrac: 0.7},
		}
	}
	if faultMode == "bursty" {
		cfg.Faults = fault.Config{Seed: seed + 7, Schedule: []fault.Window{
			{Kind: fault.KindCorrupt, StartS: 0.15 * T, EndS: 0.3 * T, Prob: 0.25},
			{Kind: fault.KindCorrupt, StartS: 0.65 * T, EndS: 0.75 * T, Prob: 0.25},
		}}
	}
	return cfg
}

// runX11Cell runs one cell twice on fresh kernels/handles and collects its
// stats, fingerprints, reconciliation verdict, and the live crossover
// sample.
func runX11Cell(drift, faultMode string, nKeys, ops int, rate float64) (*x11Cell, error) {
	c := &x11Cell{drift: drift, faults: faultMode, reconciled: true}
	seed := int64(300 + 10*len(drift) + len(faultMode))
	initial := learned.ClusteredKeys(rand.New(rand.NewSource(seed)), nKeys, 4, 1<<44)

	for rep := 0; rep < 2; rep++ {
		k := sim.New()
		h := obs.NewHandle()
		eng, err := livedb.NewEngine(initial, livedb.Config{
			Seed: seed, Kernel: k, Obs: h,
		})
		if err != nil {
			return nil, err
		}
		wcfg := x11CellConfig(drift, faultMode, ops, rate, seed+1)
		wcfg.Space = initial[len(initial)-1]
		wl, err := livedb.NewWorkload(eng, initial, wcfg)
		if err != nil {
			return nil, err
		}
		eng.Start()
		wl.Start()
		k.Run()

		// Post-run live probe sweep at the final index: identical in both
		// reps, so it is part of the replayed timeline — it populates the
		// crossover sample even when the last swap landed at the day's end.
		if eng.State() == livedb.StateServing {
			for i := 0; i < len(initial); i += 37 {
				eng.Lookup(initial[i])
			}
		}

		c.kernelFP[rep] = k.Fingerprint()
		c.ledgerFP[rep] = eng.Ledger().Fingerprint()
		c.regFP[rep] = h.Reg.Fingerprint()
		if rep > 0 {
			continue
		}
		c.stats = eng.Stats()
		c.wl = wl.Stats()
		c.serving = eng.State() == livedb.StateServing
		c.learnedS, c.btreeS, c.lookups = eng.LearnedWin()
		c.lmem, c.bmem = eng.LearnedMemoryBytes(), eng.BTreeMemoryBytes()

		// Invariant (c), counter half: the shared registry reconciles
		// exactly with the engine's stats mirror and the maintenance ledger.
		st, led := c.stats, eng.Ledger()
		r := &reconciler{h: h}
		r.eq("livedb.lookups", int64(st.Lookups))
		r.eq("livedb.range_scans", int64(st.RangeScans))
		r.eq("livedb.inserts", int64(st.Stored))
		r.eq("livedb.duplicates", int64(st.Duplicates))
		r.eq("livedb.bloom_fp", int64(st.BloomFP))
		r.eq("livedb.bloom_tn", int64(st.BloomTN))
		r.eq("livedb.degraded_probes", int64(st.DegradedProbes))
		r.eq("livedb.window_violations", int64(st.WindowViolations))
		r.eq("livedb.retrains", int64(st.Retrains))
		r.eq("livedb.swaps", int64(st.Swaps))
		r.eq("livedb.rollbacks", int64(st.Rollbacks))
		r.eq("livedb.cooldowns", int64(st.Cooldowns))
		r.eq("livedb.quarantined", int64(st.Quarantined))
		r.eq("livedb.drift_flags", int64(st.DriftFlags))
		r.eq("livedb.snapshots", int64(st.Snapshots))
		r.eq("livedb.snapshots_skipped", int64(st.SnapshotsSkipped))
		for tier := livedb.TierLearned; int(tier) < livedb.NumTiers; tier++ {
			r.eq("livedb.tier."+tier.String()+".served", int64(st.TierServed[tier]))
			hist := h.Reg.Histogram("livedb.tier."+tier.String()+".latency_seconds", nil)
			r.check(hist.Count() == int64(st.TierServed[tier]),
				fmt.Sprintf("tier %s latency count %d want %d", tier, hist.Count(), st.TierServed[tier]))
		}
		r.check(led.Count(livedb.EvRetrainStart) == st.Retrains, "ledger retrains != stats")
		r.check(led.Count(livedb.EvSwap) == st.Swaps, "ledger swaps != stats")
		r.check(led.Count(livedb.EvRollback) == st.Rollbacks, "ledger rollbacks != stats")
		r.check(led.Count(livedb.EvCooldownEnd) == st.Cooldowns, "ledger cooldowns != stats")
		r.check(led.SumN(livedb.EvRollback) == st.Quarantined, "ledger quarantined != stats")
		c.reconciled, c.detail = r.result()
	}
	return c, nil
}

// replayOK is invariant (c), replay half: both reps bit-identical.
func (c *x11Cell) replayOK() bool {
	return c.kernelFP[0] == c.kernelFP[1] &&
		c.ledgerFP[0] == c.ledgerFP[1] &&
		c.regFP[0] == c.regFP[1]
}

// availOK is invariant (a): every query answered by exactly one tier and
// every answer agreeing with the client-side oracle of acked writes.
func (c *x11Cell) availOK() bool {
	return c.stats.ServedTotal() == c.stats.Queries() && c.wl.Mismatches == 0
}

// winOK is invariant (d) for one cell with at least one swap: the post-swap
// learned path beats the modeled B-tree on measured service time and is at
// least 4x smaller in memory.
func (c *x11Cell) winOK() bool {
	return c.lookups > 0 && c.learnedS < c.btreeS && c.lmem*4 <= c.bmem
}

func (c *x11Cell) tierMix() string {
	st := c.stats
	return fmt.Sprintf("learned=%d delta=%d btree=%d scan=%d",
		st.TierServed[livedb.TierLearned], st.TierServed[livedb.TierDelta],
		st.TierServed[livedb.TierBTree], st.TierServed[livedb.TierScan])
}

func runX11(scale Scale) *Table {
	t := &Table{ID: "X11", Title: "Drift-hardened online learned indexes",
		Claim:   "across drift × fault cells: 100% availability down the fallback ladder, declared search windows honored, exact counter/ledger reconciliation with bit-identical replay, learned latency/memory win re-attained after retrains",
		Columns: []string{"check", "detail", "ok"}}

	nKeys, ops, rate := 2000, 1600, 400.0
	if scale == Full {
		nKeys, ops, rate = 6000, 6000, 400.0
	}

	var cells []*x11Cell
	for _, drift := range x11Drifts {
		for _, fm := range x11Faults {
			c, err := runX11Cell(drift, fm, nKeys, ops, rate)
			if err != nil {
				t.AddRow("cell-"+drift+"-"+fm, err.Error(), yesNo(false))
				t.Shape = "cell run failed"
				return t
			}
			cells = append(cells, c)
		}
	}

	t.AddRow("matrix",
		fmt.Sprintf("drift=%v x faults=%v keys=%d ops/cell=%d", x11Drifts, x11Faults, nKeys, ops),
		yesNo(len(cells) == len(x11Drifts)*len(x11Faults)))

	allAvail, allWindow, allRecon := true, true, true
	swapsSeen, winChecked, winOK := 0, 0, true
	burstyQuarantines := 0
	for _, c := range cells {
		cellOK := c.availOK() && c.stats.WindowViolations == 0 && c.reconciled && c.replayOK()
		t.AddRow("cell-"+c.drift+"-"+c.faults,
			fmt.Sprintf("retrains=%d swaps=%d rollbacks=%d quarantined=%d corrupted=%d mismatches=%d %s",
				c.stats.Retrains, c.stats.Swaps, c.stats.Rollbacks, c.stats.Quarantined,
				c.wl.CorruptedSent, c.wl.Mismatches, c.tierMix()),
			yesNo(cellOK))
		allAvail = allAvail && c.availOK()
		allWindow = allWindow && c.stats.WindowViolations == 0
		allRecon = allRecon && c.reconciled && c.replayOK()
		swapsSeen += c.stats.Swaps
		if c.stats.Swaps > 0 && c.serving {
			winChecked++
			winOK = winOK && c.winOK()
		}
		if c.faults == "bursty" {
			burstyQuarantines += c.stats.Quarantined
		}
	}

	t.AddRow("invariant-a-availability",
		fmt.Sprintf("every query served by exactly one ladder tier, 0 oracle mismatches across %d cells", len(cells)),
		yesNo(allAvail))
	t.AddRow("invariant-b-window-contract",
		"0 probes past the declared max search window on any validated index",
		yesNo(allWindow))
	t.AddRow("invariant-c-reconcile-replay",
		"counters == stats == ledger in every cell; kernel/ledger/registry fingerprints bit-identical across reps",
		yesNo(allRecon))
	t.AddRow("invariant-d-learned-win",
		fmt.Sprintf("post-retrain learned tier beat the B-tree in %d/%d swap cells (swaps total=%d, bursty quarantined=%d)",
			winChecked, len(cells), swapsSeen, burstyQuarantines),
		yesNo(swapsSeen > 0 && winChecked > 0 && winOK && burstyQuarantines > 0))

	t.Shape = "every cell keeps the ladder fully available under drift and corrupted-insert bursts; rollbacks quarantine exactly the fence violators, swaps re-attain the learned win, and the whole matrix replays bit-identically"
	return t
}

// LiveIndexPerf is one X11 performance sample: throughput of the composed
// index-maintenance simulation. The CI bench step appends these to the
// repo's performance trajectory (BENCH_X11.json).
type LiveIndexPerf struct {
	WallS        float64 `json:"wall_s"`
	Queries      int     `json:"queries"`
	QueriesPerS  float64 `json:"queries_per_sec"`
	Retrains     int     `json:"retrains"`
	Swaps        int     `json:"swaps"`
	Rollbacks    int     `json:"rollbacks"`
	AvailOK      bool    `json:"avail_ok"`
	LearnedWinOK bool    `json:"learned_win_ok"`
}

// LiveIndexBenchmark times the hardest X11 cell (flash drift × bursty
// faults) once, uninstrumented apart from the engine's own stats, and
// reports query throughput plus the maintenance outcome.
func LiveIndexBenchmark(scale Scale) (LiveIndexPerf, error) {
	nKeys, ops, rate := 2000, 1600, 400.0
	if scale == Full {
		nKeys, ops, rate = 6000, 6000, 400.0
	}
	start := time.Now()
	c, err := runX11Cell("flash", "bursty", nKeys, ops, rate)
	if err != nil {
		return LiveIndexPerf{}, err
	}
	wall := time.Since(start).Seconds()
	q := c.stats.Queries()
	return LiveIndexPerf{
		WallS:        wall,
		Queries:      q,
		QueriesPerS:  float64(q) / wall,
		Retrains:     c.stats.Retrains,
		Swaps:        c.stats.Swaps,
		Rollbacks:    c.stats.Rollbacks,
		AvailOK:      c.availOK(),
		LearnedWinOK: c.stats.Swaps == 0 || !c.serving || c.winOK(),
	}, nil
}
