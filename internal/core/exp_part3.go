package core

import (
	"fmt"
	"math"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distill"
	"dlsys/internal/fairness"
	"dlsys/internal/green"
	"dlsys/internal/interpret"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

func init() {
	register(Experiment{
		ID: "E21", Section: "4.1",
		Title: "Label bias propagates into models; reweighing mitigates",
		Claim: "The demographic-parity gap grows with injected bias; reweighed training shrinks it at small accuracy cost",
		Run:   runE21,
	})
	register(Experiment{
		ID: "E22", Section: "4.1",
		Title: "Adversarial debiasing strips protected attributes",
		Claim: "With the adversarial penalty, a probe recovers the protected attribute barely better than chance",
		Run:   runE22,
	})
	register(Experiment{
		ID: "E23", Section: "4.1",
		Title: "Post-training neuron ablation",
		Claim: "Ablating group-correlated neurons trades accuracy for smaller parity gaps",
		Run:   runE23,
	})
	register(Experiment{
		ID: "E24", Section: "4.1",
		Title: "Per-group threshold post-processing",
		Claim: "Group-specific thresholds drive the TPR gap to ~0",
		Run:   runE24,
	})
	register(Experiment{
		ID: "E25", Section: "4.2",
		Title: "t-SNE vs PCA cluster visualization",
		Claim: "t-SNE preserves nonlinear local structure that linear PCA mixes",
		Run:   runE25,
	})
	register(Experiment{
		ID: "E26", Section: "4.2",
		Title: "LIME local fidelity",
		Claim: "Local linear surrogates are faithful near the input and decay with neighbourhood radius",
		Run:   runE26,
	})
	register(Experiment{
		ID: "E27", Section: "4.2",
		Title: "Global surrogates: trees and distilled students",
		Claim: "Surrogates agree with the network far above chance; distilled students edge out shallow trees",
		Run:   runE27,
	})
	register(Experiment{
		ID: "E28", Section: "4.2",
		Title: "Saliency localises responsible inputs",
		Claim: "Gradient saliency concentrates on the ground-truth discriminative pixels; activation maximization recovers class templates",
		Run:   runE28,
	})
	register(Experiment{
		ID: "E29", Section: "4.2",
		Title: "Model-intermediates store (Mistique-style)",
		Claim: "Quantization + dedup stores activations ~8x smaller than floats with bounded error",
		Run:   runE29,
	})
	register(Experiment{
		ID: "E30", Section: "4.3",
		Title: "Carbon footprint across hardware and regions",
		Claim: "The same training job varies >=10x in gCO2e across placements",
		Run:   runE30,
	})
	register(Experiment{
		ID: "E31", Section: "4.3",
		Title: "Footprint growth with model scale",
		Claim: "Training footprint grows superlinearly with model width (FLOPs x epochs to converge)",
		Run:   runE31,
	})
	register(Experiment{
		ID: "E32", Section: "4.3",
		Title: "Carbon-aware job scheduling",
		Claim: "Filling clean slots first cuts fleet emissions 2-5x at equal throughput",
		Run:   runE32,
	})
}

func censusSplit(scale Scale, bias float64, seed int64) (train, test *data.CensusData) {
	n := 5000
	if scale == Full {
		n = 20000
	}
	rng := rand.New(rand.NewSource(seed))
	c := data.BiasedCensus(rng, data.CensusConfig{N: n, Bias: bias})
	return c.SplitCensus(rng, 0.7)
}

func trainCensus(train *data.CensusData, seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
	t := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	t.Fit(train.X, nn.OneHot(train.Labels, 2), nn.TrainConfig{Epochs: 20, BatchSize: 64})
	return net
}

func runE21(scale Scale) *Table {
	t := &Table{ID: "E21", Title: "Bias vs mitigation", Claim: "gap grows with beta; reweighing shrinks it",
		Columns: []string{"injected_bias", "plain_gap", "plain_acc", "reweighed_gap", "reweighed_acc"}}
	for _, beta := range []float64{0, 0.3, 0.6, 0.9} {
		train, test := censusSplit(scale, beta, 60)
		plain := trainCensus(train, 61)
		rPlain := fairness.Evaluate(plain.Predict(test.X), test.TrueMerit, test.Group)

		rng := rand.New(rand.NewSource(62))
		fair := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
		w := fairness.Reweigh(train.Labels, train.Group)
		fairness.TrainWeighted(rng, fair, train.X, train.Labels, w, 2, 20, 64, 0.01)
		rFair := fairness.Evaluate(fair.Predict(test.X), test.TrueMerit, test.Group)
		t.AddRow(beta, rPlain.DemographicParityGap(), rPlain.Accuracy,
			rFair.DemographicParityGap(), rFair.Accuracy)
	}
	t.Shape = "plain gap rises with beta; reweighed gap consistently lower at small accuracy cost"
	return t
}

func runE22(scale Scale) *Table {
	train, test := censusSplit(scale, 0.5, 63)
	t := &Table{ID: "E22", Title: "Adversarial debiasing", Claim: "probe accuracy approaches chance",
		Columns: []string{"lambda", "probe_accuracy(mean/3 seeds)", "task_accuracy"}}
	// Adversarial min-max training is notoriously seed-sensitive; average a
	// few runs so the lambda trend is visible through the noise.
	const seeds = 3
	for _, lambda := range []float64{0, 0.5, 1.5, 3} {
		var probe, task float64
		for s := int64(0); s < seeds; s++ {
			m := fairness.TrainAdversarial(rand.New(rand.NewSource(64+s)), train.X, train.Labels, train.Group, 2,
				fairness.AdversarialConfig{Encoder: []int{16, 8}, Lambda: lambda, Epochs: 20, BatchSize: 64, LR: 0.01})
			probe += m.AdversaryAccuracy(rand.New(rand.NewSource(65+s)), test.X, test.Group, 20)
			task += accuracy(m.PredictTask(test.X), test.Labels)
		}
		t.AddRow(lambda, probe/seeds, task/seeds)
	}
	t.Shape = "probe accuracy drops substantially for every lambda>0 versus lambda=0 (min-max training is noisy in lambda); task accuracy dips mildly"
	return t
}

func accuracy(preds, labels []int) float64 {
	c := 0
	for i := range preds {
		if preds[i] == labels[i] {
			c++
		}
	}
	return float64(c) / float64(len(preds))
}

func runE23(scale Scale) *Table {
	t := &Table{ID: "E23", Title: "Neuron ablation", Claim: "gap shrinks as correlated units are removed",
		Columns: []string{"ablated_frac", "parity_gap", "accuracy"}}
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		train, test := censusSplit(scale, 0.8, 66)
		net := trainCensus(train, 67)
		if frac > 0 {
			fairness.AblateCorrelatedUnits(net, train.X, train.Group, frac)
		}
		r := fairness.Evaluate(net.Predict(test.X), test.TrueMerit, test.Group)
		t.AddRow(frac, r.DemographicParityGap(), r.Accuracy)
	}
	t.Shape = "heavier ablation reduces the gap while accuracy decays"
	return t
}

func runE24(scale Scale) *Table {
	train, test := censusSplit(scale, 0.8, 68)
	net := trainCensus(train, 69)
	scores := fairness.PositiveScores(net, test.X)
	t := &Table{ID: "E24", Title: "Threshold post-processing", Claim: "per-group thresholds equalise opportunity",
		Columns: []string{"policy", "tpr_gap", "parity_gap", "accuracy"}}
	single := fairness.ApplyThresholds(scores, test.Group, [2]float64{0.5, 0.5})
	rs := fairness.Evaluate(single, test.TrueMerit, test.Group)
	t.AddRow("single-threshold", rs.EqualOpportunityGap(), rs.DemographicParityGap(), rs.Accuracy)
	th := fairness.EqualOpportunityThresholds(scores, test.TrueMerit, test.Group)
	adj := fairness.ApplyThresholds(scores, test.Group, th)
	ra := fairness.Evaluate(adj, test.TrueMerit, test.Group)
	t.AddRow(fmt.Sprintf("per-group %v", th), ra.EqualOpportunityGap(), ra.DemographicParityGap(), ra.Accuracy)
	t.Shape = "per-group thresholds drive the TPR gap to ~0"
	return t
}

func runE25(scale Scale) *Table {
	n := 150
	if scale == Full {
		n = 400
	}
	rng := rand.New(rand.NewSource(70))
	// Nonlinear rings lifted to 20 dimensions.
	raw := tensor.New(n, 20)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		r := 1 + 2*float64(c) + 0.05*rng.NormFloat64()
		theta := 2 * math.Pi * rng.Float64()
		a, b := r*math.Cos(theta), r*math.Sin(theta)
		for j := 0; j < 20; j++ {
			raw.Set(math.Sin(a*float64(j+1)/3)+math.Cos(b*float64(j+1)/4), i, j)
		}
	}
	t := &Table{ID: "E25", Title: "t-SNE vs PCA vs Isomap vs LLE", Claim: "nonlinear methods separate nonlinear clusters",
		Columns: []string{"method", "same_class_nbr_frac", "nbr_preservation"}}
	add := func(name string, emb *tensor.Tensor) {
		t.AddRow(name, interpret.SameClassNeighborFraction(emb, labels, 8),
			interpret.NeighborPreservation(raw, emb, 8))
	}
	add("pca", interpret.PCA(raw, 2))
	add("isomap", interpret.Isomap(raw, 10, 2))
	add("lle", interpret.LLE(raw, 10, 2))
	add("t-sne", interpret.TSNE(raw, interpret.TSNEConfig{Perplexity: 15, Iters: 300, LR: 50, Seed: 71}))
	t.Shape = "t-SNE purity clearly above the rest; Isomap edges PCA and LLE is comparable on this data — local-similarity preservation (t-SNE) is what separates these clusters"
	return t
}

func runE26(scale Scale) *Table {
	train, test, cfg, epochs := benchData(scale, 72)
	// A smooth (tanh) classifier: ReLU nets are piecewise linear with
	// scale-free kinks, which caps local fidelity even for tiny radii; a
	// smooth surface shows the radius-decay shape cleanly.
	rng := rand.New(rand.NewSource(73))
	net := nn.NewNetwork(
		nn.NewDenseXavier(rng, "fc0", cfg.In, 32),
		nn.NewTanh("tanh0"),
		nn.NewDenseXavier(rng, "fc1", 32, cfg.Out),
	)
	nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng).
		Fit(train.X, nn.OneHot(train.Labels, cfg.Out), nn.TrainConfig{Epochs: epochs, BatchSize: 32})
	// Least-confident test row: the interesting boundary case.
	probs := nn.Softmax(net.Forward(test.X, false))
	row, conf := 0, math.Inf(1)
	for i := 0; i < probs.Dim(0); i++ {
		if c := probs.Row(i)[probs.ArgMaxRow(i)]; c < conf {
			conf, row = c, i
		}
	}
	class := net.Predict(test.X)[row]
	t := &Table{ID: "E26", Title: "LIME fidelity", Claim: "fidelity decays with radius",
		Columns: []string{"sigma", "kernel_width", "fidelity"}}
	for _, sigma := range []float64{0.1, 0.3, 1.0, 3.0} {
		exp := interpret.LIME(rand.New(rand.NewSource(74)), net, test.X.Row(row), class,
			interpret.LIMEConfig{Samples: 800, KernelWidth: 2 * sigma, Sigma: sigma})
		t.AddRow(sigma, 2*sigma, exp.Fidelity)
	}
	t.Shape = "fidelity near 1 locally, decaying as the neighbourhood grows"
	return t
}

func runE27(scale Scale) *Table {
	train, test, cfg, epochs := benchData(scale, 75)
	net := trainRef(train, cfg, epochs, 76)
	t := &Table{ID: "E27", Title: "Global surrogates", Claim: "agreement far above chance",
		Columns: []string{"surrogate", "agreement_with_network"}}
	tree := interpret.TreeSurrogate(net, train.X, cfg.Out, 6)
	t.AddRow("decision-tree(d<=6)", interpret.AgreementTree(net, tree, test.X))
	student := nn.NewMLP(rand.New(rand.NewSource(77)), nn.MLPConfig{In: cfg.In, Hidden: []int{8}, Out: cfg.Out})
	distill.Distill(rand.New(rand.NewSource(78)), net, student, train.X,
		nn.OneHot(train.Labels, cfg.Out), distill.Config{Alpha: 0.1, T: 3, Epochs: epochs, BatchSize: 32, LR: 0.01})
	t.AddRow("distilled-student(w=8)", distill.Agreement(net, student, test.X))
	t.AddRow("chance", 1.0/float64(cfg.Out))
	t.Shape = "both surrogates agree >>> chance; student typically edges out the shallow tree"
	return t
}

func runE28(scale Scale) *Table {
	n := 240
	if scale == Full {
		n = 480
	}
	rng := rand.New(rand.NewSource(79))
	ds, masks := data.SyntheticDigits(rng, data.DigitsConfig{N: n})
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := nn.NewNetwork(
		nn.NewConv2D(rng, "c1", g, 4),
		nn.NewReLU("r1"),
		nn.NewFlatten("f"),
		nn.NewDense(rng, "out", 4*64, 4),
	)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.005), rng)
	tr.Fit(ds.X, nn.OneHot(ds.Labels, 4), nn.TrainConfig{Epochs: 50, BatchSize: 16})

	t := &Table{ID: "E28", Title: "Saliency localization", Claim: "attribution concentrates on the glyph",
		Columns: []string{"class", "glyph_area_frac", "saliency_mass", "concentration"}}
	for c := 0; c < 4; c++ {
		var mass float64
		count := 0
		for i := c; i < 60; i += 4 {
			x := tensor.FromSlice(append([]float64(nil), ds.X.Data[i*64:(i+1)*64]...), 1, 1, 8, 8)
			sal := interpret.Saliency(net, x, ds.Labels[i])
			mass += interpret.SaliencyMass(sal, masks[c])
			count++
		}
		mass /= float64(count)
		area := 0
		for _, m := range masks[c] {
			if m {
				area++
			}
		}
		frac := float64(area) / 64
		t.AddRow(c, frac, mass, mass/frac)
	}
	t.Shape = "concentration ratio > 1 for every class, averaging well above 1.5"
	return t
}

func runE29(scale Scale) *Table {
	return runModelstoreExperiment(scale)
}

func runE30(scale Scale) *Table {
	t := &Table{ID: "E30", Title: "Footprint by placement", Claim: ">=10x spread across placements",
		Columns: []string{"device", "region", "hours", "kwh", "gco2e"}}
	flops := int64(1e18)
	for _, prof := range []device.Profile{device.GPULarge, device.GPUSmall, device.TPULike} {
		for _, region := range []green.Region{green.Hydro, green.MixedUS, green.CoalHeavy} {
			fp := green.Estimate(flops, prof, region, 0.5)
			t.AddRow(prof.Name, region.Name, fp.Hours, fp.EnergyKWh, fp.CO2Grams)
		}
	}
	t.Shape = "gCO2e spans well over an order of magnitude across placements"
	return t
}

func runE31(scale Scale) *Table {
	train, _, cfg, epochs := benchData(scale, 80)
	y := nn.OneHot(train.Labels, cfg.Out)
	t := &Table{ID: "E31", Title: "Footprint vs model scale", Claim: "superlinear growth in width",
		Columns: []string{"width", "params", "train_gflops", "gco2e_mixed_us"}}
	for _, w := range []int{16, 32, 64, 128} {
		arch := nn.MLPConfig{In: cfg.In, Hidden: []int{w, w}, Out: cfg.Out}
		rng := rand.New(rand.NewSource(81))
		net := nn.NewMLP(rng, arch)
		tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
		stats := tr.Fit(train.X, y, nn.TrainConfig{Epochs: epochs, BatchSize: 32})
		fp := green.Estimate(stats.FLOPs*1e6, device.GPUSmall, green.MixedUS, 0.5) // scaled to datacenter-size runs
		t.AddRow(w, net.NumParams(), float64(stats.FLOPs)/1e9, fp.CO2Grams)
	}
	t.Shape = "gCO2e grows faster than linearly in width (params grow ~quadratically)"
	return t
}

func runE32(scale Scale) *Table {
	jobs := make([]green.Job, 12)
	for i := range jobs {
		jobs[i] = green.Job{Name: fmt.Sprintf("train-%d", i), FLOPs: 1e17}
	}
	slots := []green.Slot{
		{Device: device.GPULarge, Region: green.CoalHeavy, CapacityHours: 1000},
		{Device: device.GPULarge, Region: green.Hydro, CapacityHours: 1000},
		{Device: device.GPUSmall, Region: green.MixedUS, CapacityHours: 1000},
		{Device: device.TPULike, Region: green.WindSolar, CapacityHours: 1000},
	}
	_, naive := green.ScheduleNaive(jobs, slots)
	_, aware := green.ScheduleCarbonAware(jobs, slots)
	t := &Table{ID: "E32", Title: "Carbon-aware scheduling", Claim: "2-5x CO2 cut at equal throughput",
		Columns: []string{"scheduler", "total_gco2e", "vs_naive"}}
	t.AddRow("naive-round-robin", naive, 1.0)
	t.AddRow("carbon-aware", aware, aware/naive)
	t.Shape = "carbon-aware total well below half of naive"
	return t
}

// runModelstoreExperiment lives in its own function so exp_part3.go stays
// within the fairness/interpret/green import set; see exp_modelstore.go.
