package core

import "testing"

// TestX14FleetClaims pins the X14 acceptance criteria at Quick scale:
// the budgets-off arm collapses metastably after the flash crowd, the
// full control plane recovers within the stated virtual-time bound and
// holds the per-tenant availability floor, the autoscaler and cache
// leave evidence, every obs counter reconciles exactly with the request
// ledger, and the day replays bit-identically. Every check rides on
// deterministic simulated quantities, so one run suffices.
func TestX14FleetClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("X14 overload day skipped in -short mode")
	}
	e, ok := Get("X14")
	if !ok {
		t.Fatal("X14 not registered")
	}
	tab := e.Run(Quick)
	t.Log("\n" + tab.Render())
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}
	want := map[string]bool{
		"scale":                             false,
		"metastable-collapse (budgets off)": false,
		"recovery (full control plane)":     false,
		"tenant-isolation":                  false,
		"elasticity+cache":                  false,
		"reconcile":                         false,
		"replay":                            false,
	}
	for _, row := range tab.Rows {
		check := row[col["check"]]
		if _, known := want[check]; !known {
			t.Errorf("unexpected row %q", check)
			continue
		}
		want[check] = true
		if row[col["ok"]] != "yes" {
			t.Errorf("%s failed: %s", check, row[col["detail"]])
		}
	}
	for check, seen := range want {
		if !seen {
			t.Errorf("missing row %q", check)
		}
	}
}

// TestX14BenchmarkSmoke keeps the perf-sample path compiling and sane at
// a tiny scale indirectly via FleetBenchmark's Quick arm.
func TestX14BenchmarkSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("X14 bench smoke skipped in -short mode")
	}
	p, err := FleetBenchmark(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if p.Requests != x14Requests(Quick) || p.WallS <= 0 || p.Events <= 0 {
		t.Fatalf("degenerate perf sample %+v", p)
	}
}
