package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/guard"
	"dlsys/internal/learned"
	"dlsys/internal/livedb"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/robust"
	"dlsys/internal/serve"
	"dlsys/internal/sim"
)

// X10 composes the whole stack into one "day in production": a guarded,
// Byzantine-robust distributed training job, a multi-tier serving fleet,
// an event-driven multi-tenant serving Fleet with its overload control
// plane, and an online learned-index maintenance engine share a single
// discrete-event kernel, while a declarative fault schedule walks the day
// through scheduled crashes, a straggler window, a flash crowd on the
// serving side, an open-ended Byzantine coalition, a numerical-fault
// burst, a corrupted-insert burst against the live index, and a flash
// crowd plus a tenant retry storm against the fleet. Six global
// invariants are checked across the composed system: (1) serving
// availability stays above a floor for the whole day; (2) training does
// not silently diverge — the final held-out loss stays within a small
// factor of the fault-free baseline, and every guard/quarantine incident
// reconciles with a scheduled fault; (3) the shared metric registry
// reconciles EXACTLY with all four subsystems' own ledgers; (4) the full
// day — metrics, traces, request ledger, quarantine ledger, index ledger,
// fleet ledger, and the kernel's event log — replays bit-identically;
// (5) the live index keeps 100% query availability down its fallback
// ladder while rolling back the corrupted burst and re-validating a
// retrained index; (6) every fleet tenant holds an availability floor
// through the crowd and the storm — the overload control plane isolates
// the abusive tenant.

func init() {
	register(Experiment{
		ID: "X10", Section: "3",
		Title: "A day in production: composed training + serving + fleet + live index under scheduled chaos",
		Claim: "Training, serving, the event-driven multi-tenant fleet, and online index maintenance composed on one simulation kernel survive a scheduled day of crashes, stragglers, flash crowds, a Byzantine coalition, a numerical-fault burst, a corrupted-insert burst, and a tenant retry storm: availability holds its floors (globally and per fleet tenant), training does not silently diverge, the index rides its fallback ladder without dropping a query, every counter reconciles exactly with the subsystem ledgers, and the whole day replays bit-identically",
		Run:   runX10,
	})
}

const (
	// x10AvailabilityFloor is the fraction of the day's requests that must
	// be served despite the scheduled chaos.
	x10AvailabilityFloor = 0.75
	// x10DivergenceCap bounds the final held-out loss relative to the
	// fault-free baseline: past it, training silently diverged.
	x10DivergenceCap = 5.0
	// x10LossFloor keeps the divergence ratio meaningful when the
	// fault-free loss is very small.
	x10LossFloor = 0.02
	// x10TenantFloor is the whole-day availability floor every fleet
	// tenant must hold despite the fleet's flash crowd and tenant 0's
	// retry storm.
	x10TenantFloor = 0.5
)

// chaosDay is the outcome of one composed production-day run.
type chaosDay struct {
	stats distributed.Stats
	res   serve.Result
	fres  serve.FleetResult
	loss  float64 // held-out loss of the final consensus model

	dbStats livedb.Stats
	dbWl    livedb.WorkloadStats

	processed int
	actors    []string

	regFP, traceFP, serveFP, repFP, kernelFP, dbFP, fleetFP uint64

	reconciled bool
	detail     string
}

// x10Scenario is the composed production day, fixed at construction time:
// the day length and every fault window derive from a fault-free probe of
// the same training job, so the schedule lands inside the run and run() is
// a pure function of its handle — the replay invariant depends on that.
type x10Scenario struct {
	dayS      float64 // fault-free training duration = the scheduled day
	cleanLoss float64 // held-out loss of the fault-free probe
	requests  int
	rate      float64
	run       func(h *obs.Handle) (*chaosDay, error)
}

func newX10Scenario(scale Scale) (*x10Scenario, error) {
	n, epochs, requests := 480, 10, 600
	if scale == Full {
		n, epochs, requests = 1600, 16, 2400
	}
	rng := rand.New(rand.NewSource(200))
	ds := data.GaussianMixture(rng, n, 6, 3, 3.2)
	train, test := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, 3)
	testY := nn.OneHot(test.Labels, 3)
	arch := nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3}

	heldOut := func(net *nn.Network) float64 {
		tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(0), rand.New(rand.NewSource(1)))
		return tr.ComputeGrad(test.X, testY)
	}

	baseTrain := distributed.Config{
		Workers: 8, Arch: arch, Epochs: epochs, BatchSize: 16, LR: 0.1,
		AveragePeriod: 1, SnapshotPeriod: 3,
		Aggregator: robust.CoordMedian{},
		Guard:      &guard.Policy{Mode: guard.Enforce},
	}

	// Fault-free probe: fixes the day length the schedule is laid out on
	// (faults only lengthen the day, so windows placed inside the probe
	// duration land inside the real run) and the divergence baseline.
	probeNet, probeStats, err := distributed.Train(201, train.X, y, baseTrain)
	if err != nil {
		return nil, fmt.Errorf("x10 probe: %w", err)
	}
	day := probeStats.SimSeconds
	cleanLoss := math.Max(heldOut(probeNet), x10LossFloor)

	variants, eval, err := serve.BuildVariants(serve.VariantsConfig{
		Seed: 210, Examples: n, Epochs: epochs,
	})
	if err != nil {
		return nil, fmt.Errorf("x10 variants: %w", err)
	}
	mk := func(v serve.Variant) serve.Replica {
		return serve.Replica{Variant: v, Device: device.EdgeDevice, Efficiency: 0.5}
	}
	fleet := []serve.Replica{mk(variants[0]), mk(variants[0]), mk(variants[1]), mk(variants[2]), mk(variants[3])}
	// The serving day spans the training day: fixed request count, rate
	// derived from the probe duration.
	rate := float64(requests) / day

	// The production-day schedule, in absolute kernel seconds. Training and
	// serving each get their own injector (separate seeds, separate draw
	// streams) but the windows are laid out on the one shared timeline.
	trainFaults := fault.Config{Seed: 202, Schedule: []fault.Window{
		// Morning: worker 3 crash-loops, rejoining from snapshots.
		{Kind: fault.KindCrash, Workers: []int{3}, StartS: 0.05 * day, EndS: 0.20 * day, Prob: 0.6},
		// Midday: cluster-wide straggler weather.
		{Kind: fault.KindStraggle, StartS: 0.20 * day, EndS: 0.45 * day, Prob: 0.4, Factor: 4},
		// Afternoon, open-ended: workers 5 and 6 turn Byzantine.
		{Kind: fault.KindSignFlip, Workers: []int{5, 6}, StartS: 0.50 * day},
		// Evening: a numerical-fault burst the guard must screen.
		{Kind: fault.KindBatchCorrupt, StartS: 0.70 * day, EndS: 0.95 * day, Prob: 0.5},
	}}
	serveFaults := fault.Config{Seed: 211, Schedule: []fault.Window{
		// Mid-morning: replica 1 becomes crash-prone.
		{Kind: fault.KindCrash, Workers: []int{1}, StartS: 0.15 * day, EndS: 0.25 * day, Prob: 0.05},
		// Midday flash crowd: arrivals spike 6x.
		{Kind: fault.KindArrival, StartS: 0.30 * day, EndS: 0.40 * day, Factor: 6},
		// Afternoon: fleet-wide straggling.
		{Kind: fault.KindStraggle, StartS: 0.55 * day, EndS: 0.70 * day, Prob: 0.3, Factor: 6},
	}}

	// The event-driven multi-tenant fleet shares the same day. Request
	// volume and service time scale off the probe duration so it runs at
	// rho = 0.8 on its four initial replicas (per-item service is 0.4x
	// ServiceS at full batch, so capacity = 10/ServiceS); its own flash
	// crowd lands on the midday spike and tenant 0 turns abusive in the
	// late afternoon. The full overload control plane is on.
	fleetReqs := 2400
	if scale == Full {
		fleetReqs = 9600
	}
	fleetRate := float64(fleetReqs) / day
	fltCfg := serve.FleetConfig{
		Seed: 230,
		Faults: fault.Config{Seed: 231, Schedule: []fault.Window{
			// Midday flash crowd, aligned with the serving tier's.
			{Kind: fault.KindArrival, StartS: 0.30 * day, EndS: 0.40 * day, Factor: 4},
			// Late afternoon: tenant 0's clients retry x3 as aggressively.
			{Kind: fault.KindRetryStorm, Workers: []int{0}, StartS: 0.55 * day, EndS: 0.70 * day, Factor: 3},
		}},
		Tenants:     8,
		Requests:    fleetReqs,
		ArrivalRate: fleetRate,
		Replicas:    4,
		ServiceS:    8 / fleetRate,
	}
	fltCfg.Admission.Adaptive = true
	fltCfg.Autoscale.MaxReplicas = 8
	fltCfg.Autoscale.IntervalS = day / 50
	fltCfg.Autoscale.LagS = day / 25
	fltCfg.Autoscale.CooldownS = day / 25

	// The live learned index shares the same day: its maintenance cadence
	// scales with the probe duration so retrains, rollbacks, and the swap
	// all land inside the run, and its corrupted-insert burst sits in the
	// early afternoon between the flash crowd and the straggler weather.
	idxOps := 600
	if scale == Full {
		idxOps = 1800
	}
	idxKeys := learned.ClusteredKeys(rand.New(rand.NewSource(220)), 4*n, 4, 1<<44)
	idxCfg := livedb.Config{
		Seed:          221,
		MaintainEvery: day / 60,
		RetrainS:      day / 24,
		CooldownS:     day / 40,
	}
	idxWl := livedb.WorkloadConfig{
		Seed:         222,
		Ops:          idxOps,
		Rate:         float64(idxOps) / day,
		ClusterWidth: 1 << 38,
		Space:        idxKeys[len(idxKeys)-1],
		Phases: []livedb.Phase{
			{StartS: 0},
			// Afternoon drift: inserts and hard-negative lookups move to a
			// fresh cluster the initial index never saw.
			{StartS: 0.45 * day, Clusters: []uint64{9 << 40}, HardNegFrac: 0.4},
		},
		Faults: fault.Config{Seed: 223, Schedule: []fault.Window{
			// Early afternoon: a corrupted-insert burst against the index.
			{Kind: fault.KindCorrupt, StartS: 0.40 * day, EndS: 0.60 * day, Prob: 0.25},
		}},
	}

	run := func(h *obs.Handle) (*chaosDay, error) {
		k := sim.New()

		trainCfg := baseTrain
		trainCfg.Fault = trainFaults
		trainCfg.Reputation = &robust.ReputationConfig{}
		trainCfg.Obs = h
		trainCfg.Kernel = k
		job, err := distributed.NewJob(201, train.X, y, trainCfg)
		if err != nil {
			return nil, err
		}
		srv, err := serve.NewServer(serve.Config{
			Seed:          212,
			Faults:        serveFaults,
			Replicas:      fleet,
			ArrivalRate:   rate,
			Requests:      requests,
			HedgeQuantile: 0.9,
			Fallback:      true,
			EvalX:         eval.X,
			EvalLabels:    eval.Labels,
			Obs:           h,
			Kernel:        k,
		})
		if err != nil {
			return nil, err
		}

		ecfg := idxCfg
		ecfg.Kernel = k
		ecfg.Obs = h
		eng, err := livedb.NewEngine(idxKeys, ecfg)
		if err != nil {
			return nil, err
		}
		wl, err := livedb.NewWorkload(eng, idxKeys, idxWl)
		if err != nil {
			return nil, err
		}

		fc := fltCfg
		fc.Kernel = k
		fc.Obs = h
		flt, err := serve.NewFleet(fc)
		if err != nil {
			return nil, err
		}

		// All four subsystems schedule their first event at t=0, then the
		// kernel interleaves the whole day deterministically.
		job.Start()
		srv.Start()
		eng.Start()
		wl.Start()
		flt.Start()
		k.Run()

		net, stats, err := job.Result()
		if err != nil {
			return nil, err
		}
		res := srv.Result()
		fres := flt.Result()

		d := &chaosDay{
			stats:     stats,
			res:       res,
			fres:      fres,
			loss:      heldOut(net),
			dbStats:   eng.Stats(),
			dbWl:      wl.Stats(),
			processed: k.Processed(),
			actors:    k.Actors(),
			serveFP:   res.Fingerprint(),
			kernelFP:  k.Fingerprint(),
			dbFP:      eng.Ledger().Fingerprint(),
			fleetFP:   fres.LedgerFP,
		}
		if stats.Quarantine != nil {
			d.repFP = stats.Quarantine.Fingerprint()
		}
		if h == nil {
			d.reconciled = true
			return d, nil
		}
		d.regFP = h.Reg.Fingerprint()
		d.traceFP = h.Tracer.Fingerprint()

		// Invariant 3: every counter on the SHARED registry reconciles
		// exactly with the subsystem's own ledger — all four subsystems
		// wrote into one handle for the whole day.
		r := &reconciler{h: h}
		r.eq("distributed.retransmissions", int64(stats.Retransmissions))
		r.eq("distributed.dropped_messages", int64(stats.DroppedMessages))
		r.eq("distributed.corruptions", int64(stats.Corruptions))
		r.eq("distributed.timeouts", int64(stats.Timeouts))
		r.eq("distributed.crashes", int64(stats.Crashes))
		r.eq("distributed.rejoins", int64(stats.Rejoins))
		r.eq("distributed.restores", int64(stats.Restores))
		r.eq("distributed.snapshots", int64(stats.Snapshots))
		r.eq("distributed.snapshot_bytes", stats.SnapshotBytes)
		r.eq("distributed.straggler_rounds", int64(stats.StragglerRounds))
		r.eq("distributed.excluded_slow", int64(stats.ExcludedSlow))
		r.eq("distributed.numerical_faults", int64(stats.NumericalFaults))
		r.eq("distributed.guard_skipped", int64(stats.GuardSkipped))
		r.eq("distributed.guard_restores", int64(stats.GuardRestores))
		r.eq("distributed.averaging_rounds", int64(stats.AveragingRound))
		r.eq("distributed.steps", int64(stats.Steps))
		r.eq("distributed.bytes_sent", stats.BytesSent)
		r.gaugeEq("distributed.sim_seconds", stats.SimSeconds)
		r.eq("serve.served", int64(res.Served))
		r.eq("serve.shed", int64(res.Shed))
		r.eq("serve.failed", int64(res.Failed))
		r.eq("serve.hedges_launched", int64(res.HedgesLaunched))
		r.eq("serve.hedge_wins", int64(res.HedgeWins))
		r.eq("serve.breaker_opened", int64(res.BreakerOpened))
		r.eq("serve.breaker_reclosed", int64(res.BreakerReclosed))
		for tier := serve.TierFull; tier < serve.Tier(4); tier++ {
			r.eq("serve.tier."+tier.String()+".served", int64(res.TierCounts[tier]))
			hist := h.Reg.Histogram("serve.tier."+tier.String()+".latency_seconds", nil)
			r.check(hist.Count() == int64(res.TierCounts[tier]),
				fmt.Sprintf("tier %s latency count %d want %d", tier, hist.Count(), res.TierCounts[tier]))
			var want float64
			for _, rec := range res.Records {
				if rec.Outcome == serve.Served && rec.Tier == tier {
					want += rec.LatencyS
				}
			}
			r.check(hist.Sum() == want,
				fmt.Sprintf("tier %s latency sum %g want %g", tier, hist.Sum(), want))
		}
		st, led := d.dbStats, eng.Ledger()
		r.eq("livedb.lookups", int64(st.Lookups))
		r.eq("livedb.range_scans", int64(st.RangeScans))
		r.eq("livedb.inserts", int64(st.Stored))
		r.eq("livedb.duplicates", int64(st.Duplicates))
		r.eq("livedb.retrains", int64(st.Retrains))
		r.eq("livedb.swaps", int64(st.Swaps))
		r.eq("livedb.rollbacks", int64(st.Rollbacks))
		r.eq("livedb.quarantined", int64(st.Quarantined))
		for tier := livedb.TierLearned; int(tier) < livedb.NumTiers; tier++ {
			r.eq("livedb.tier."+tier.String()+".served", int64(st.TierServed[tier]))
		}
		r.check(led.Count(livedb.EvRetrainStart) == st.Retrains, "index ledger retrains != stats")
		r.check(led.Count(livedb.EvSwap) == st.Swaps, "index ledger swaps != stats")
		r.check(led.Count(livedb.EvRollback) == st.Rollbacks, "index ledger rollbacks != stats")
		r.check(led.SumN(livedb.EvRollback) == st.Quarantined, "index ledger quarantined != stats")
		r.eq("fleet.arrived", int64(fres.Requests))
		r.eq("fleet.served", int64(fres.Served))
		r.eq("fleet.shed", int64(fres.Shed))
		r.eq("fleet.failed", int64(fres.Failed))
		r.eq("fleet.retries", int64(fres.Retries))
		r.eq("fleet.retries_denied", int64(fres.RetriesDenied))
		r.eq("fleet.cache_hits", int64(fres.CacheHits))
		r.eq("fleet.cache_misses", int64(fres.CacheMisses))
		r.eq("fleet.scale_up_replicas", int64(fres.ScaleUpReplicas))
		r.eq("fleet.scale_down_replicas", int64(fres.ScaleDownReplicas))
		for i, ts := range fres.Tenants {
			r.eq(serve.TenantCounterName(i, "arrived"), int64(ts.Arrived))
			r.eq(serve.TenantCounterName(i, "served"), int64(ts.Served))
			r.eq(serve.TenantCounterName(i, "shed"), int64(ts.Shed))
			r.eq(serve.TenantCounterName(i, "failed"), int64(ts.Failed))
		}
		r.check(h.Tracer.Len() > 0, "no spans recorded")
		d.reconciled, d.detail = r.result()
		return d, nil
	}

	return &x10Scenario{dayS: day, cleanLoss: cleanLoss, requests: requests, rate: rate, run: run}, nil
}

// offendersWithin reports whether every quarantined worker is in the
// scheduled coalition (nil ledger = nobody quarantined = vacuously true).
func offendersWithin(led *robust.Ledger, coalition ...int) bool {
	if led == nil {
		return true
	}
	for _, w := range led.Offenders() {
		ok := false
		for _, c := range coalition {
			if w == c {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func runX10(scale Scale) *Table {
	t := &Table{ID: "X10", Title: "A day in production",
		Claim:   "composed training + serving + fleet + live index on one kernel survive scheduled chaos: availability floors hold (globally and per fleet tenant), no silent training divergence, the index ladder never drops a query, exact cross-subsystem reconciliation, bit-identical replay",
		Columns: []string{"check", "detail", "ok"}}

	sc, err := newX10Scenario(scale)
	if err != nil {
		t.AddRow("scenario", err.Error(), yesNo(false))
		t.Shape = "scenario construction failed"
		return t
	}

	h1 := obs.NewHandle()
	d1, err1 := sc.run(h1)
	h2 := obs.NewHandle()
	d2, err2 := sc.run(h2)
	if err1 != nil || err2 != nil {
		t.AddRow("run", fmt.Sprintf("%v / %v", err1, err2), yesNo(false))
		t.Shape = "composed run failed"
		return t
	}

	t.AddRow("timeline",
		fmt.Sprintf("day=%.4gs sim=%.4gs events=%d actors=%v",
			sc.dayS, d1.stats.SimSeconds, d1.processed, d1.actors),
		yesNo(d1.processed > 0 && len(d1.actors) == 7))

	t.AddRow("chaos-observed",
		fmt.Sprintf("crashes=%d straggler_rounds=%d byzantine=%d numerical=%d guard_skipped=%d quarantines=%d offenders=%s",
			d1.stats.Crashes, d1.stats.StragglerRounds, d1.stats.ByzantineAttacks,
			d1.stats.NumericalFaults, d1.stats.GuardSkipped,
			d1.stats.Quarantines, d1.stats.Quarantine.OffenderString()),
		yesNo(d1.stats.Crashes > 0 && d1.stats.StragglerRounds > 0 &&
			d1.stats.ByzantineAttacks > 0 && d1.stats.NumericalFaults > 0))

	avail := d1.res.Availability
	complete := d1.res.Served+d1.res.Shed+d1.res.Failed == sc.requests
	// The flash crowd pushes the top tier past capacity; the fleet must
	// absorb it by degrading some requests to cheaper tiers (or shedding)
	// rather than failing — degraded > 0 is the evidence the spike bit.
	degraded := d1.res.Served - d1.res.TierCounts[serve.TierFull]
	okAvail := avail >= x10AvailabilityFloor && complete && degraded > 0
	t.AddRow("invariant-1-availability",
		fmt.Sprintf("availability=%.4g floor=%.4g served=%d shed=%d failed=%d of %d degraded=%d hedges=%d",
			avail, x10AvailabilityFloor, d1.res.Served, d1.res.Shed, d1.res.Failed,
			sc.requests, degraded, d1.res.HedgesLaunched),
		yesNo(okAvail))

	ratio := d1.loss / sc.cleanLoss
	okLoss := !math.IsNaN(ratio) && !math.IsInf(ratio, 0) && ratio <= x10DivergenceCap
	// Guard incidents must reconcile with the injected faults: the guard
	// only fires where the schedule poisoned a batch, and the quarantine
	// ledger names only scheduled coalition members.
	okIncidents := d1.stats.GuardSkipped > 0 &&
		d1.stats.GuardSkipped <= d1.stats.NumericalFaults &&
		d1.stats.Quarantines >= 1 &&
		offendersWithin(d1.stats.Quarantine, 5, 6)
	t.AddRow("invariant-2-integrity",
		fmt.Sprintf("held_out=%.4g clean=%.4g ratio=%.4g cap=%.4g", d1.loss, sc.cleanLoss, ratio, x10DivergenceCap),
		yesNo(okLoss && okIncidents))

	detail := d1.detail
	if detail == "" {
		detail = "every counter exact on the shared registry"
	}
	t.AddRow("invariant-3-reconcile", detail, yesNo(d1.reconciled && d2.reconciled))

	replay := d1.regFP == d2.regFP && d1.traceFP == d2.traceFP &&
		d1.serveFP == d2.serveFP && d1.repFP == d2.repFP &&
		d1.kernelFP == d2.kernelFP && d1.dbFP == d2.dbFP &&
		d1.fleetFP == d2.fleetFP
	t.AddRow("invariant-4-replay",
		fmt.Sprintf("reg=%016x trace=%016x ledger=%016x quarantine=%016x kernel=%016x index=%016x fleet=%016x",
			d1.regFP, d1.traceFP, d1.serveFP, d1.repFP, d1.kernelFP, d1.dbFP, d1.fleetFP),
		yesNo(replay))

	// Invariant 5: the live index never dropped a query — every lookup and
	// range scan was answered by exactly one ladder tier and agreed with
	// the client-side oracle of acked writes — while the corrupted burst
	// forced at least one rollback that quarantined exactly the injected
	// keys, a later retrain re-validated and swapped, and no validated
	// index was ever probed past its declared search window.
	dbOK := d1.dbStats.ServedTotal() == d1.dbStats.Queries() &&
		d1.dbWl.Mismatches == 0 &&
		d1.dbWl.CorruptedSent > 0 &&
		d1.dbStats.Quarantined == d1.dbWl.CorruptedSent &&
		d1.dbStats.Rollbacks > 0 && d1.dbStats.Swaps > 0 &&
		d1.dbStats.WindowViolations == 0
	t.AddRow("invariant-5-index",
		fmt.Sprintf("queries=%d mismatches=%d retrains=%d swaps=%d rollbacks=%d quarantined=%d corrupted=%d learned=%d delta=%d btree=%d scan=%d",
			d1.dbStats.Queries(), d1.dbWl.Mismatches, d1.dbStats.Retrains,
			d1.dbStats.Swaps, d1.dbStats.Rollbacks, d1.dbStats.Quarantined,
			d1.dbWl.CorruptedSent,
			d1.dbStats.TierServed[livedb.TierLearned], d1.dbStats.TierServed[livedb.TierDelta],
			d1.dbStats.TierServed[livedb.TierBTree], d1.dbStats.TierServed[livedb.TierScan]),
		yesNo(dbOK))

	// Invariant 6: the fleet's overload control plane holds every tenant
	// above the availability floor through its flash crowd and tenant 0's
	// retry storm, finalizes every request, and the retries counter shows
	// the storm actually bit.
	minTenant := 1.0
	for _, ts := range d1.fres.Tenants {
		if ts.Availability < minTenant {
			minTenant = ts.Availability
		}
	}
	fleetComplete := d1.fres.Served+d1.fres.Shed+d1.fres.Failed == d1.fres.Requests
	t.AddRow("invariant-6-tenants",
		fmt.Sprintf("min_tenant_availability=%.4g floor=%.4g overall=%.4g tenants=%d retries=%d denied=%d served=%d of %d",
			minTenant, x10TenantFloor, d1.fres.Availability, len(d1.fres.Tenants),
			d1.fres.Retries, d1.fres.RetriesDenied, d1.fres.Served, d1.fres.Requests),
		yesNo(fleetComplete && len(d1.fres.Tenants) == 8 &&
			minTenant >= x10TenantFloor && d1.fres.Retries > 0))

	t.Shape = "one shared kernel drives all four subsystems through the scheduled day; availability holds its floors globally and per fleet tenant, training stays near the fault-free loss with guard and quarantine incidents matching the schedule, the live index rides its fallback ladder through the corrupted burst without dropping a query, all counters reconcile exactly, and every fingerprint replays bit-identically"
	return t
}

// ChaosDayPerf is one X10 performance sample: how fast the composed
// simulation runs. The CI bench step appends these to the repo's
// performance trajectory (BENCH_X10.json).
type ChaosDayPerf struct {
	WallS        float64 `json:"wall_s"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// ChaosDayBenchmark times one uninstrumented composed production day and
// reports kernel-event throughput. Scenario construction (the probe run,
// variant training) is excluded: the sample measures the composed
// simulation itself.
func ChaosDayBenchmark(scale Scale) (ChaosDayPerf, error) {
	sc, err := newX10Scenario(scale)
	if err != nil {
		return ChaosDayPerf{}, err
	}
	start := time.Now()
	d, err := sc.run(nil)
	if err != nil {
		return ChaosDayPerf{}, err
	}
	wall := time.Since(start).Seconds()
	return ChaosDayPerf{WallS: wall, Events: d.processed, EventsPerSec: float64(d.processed) / wall}, nil
}
