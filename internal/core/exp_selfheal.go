package core

import (
	"fmt"
	"math"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/fault"
	"dlsys/internal/guard"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// X7 studies self-healing training under numerical faults: batches poisoned
// with NaN/Inf/huge values, shuffled labels, and transient learning-rate
// spikes, all drawn from a deterministic schedule. The guard is swept in
// both modes over increasing fault rates — Observe follows the identical
// data and injection path but never intervenes, so it is the fair
// "unguarded" baseline. The claim: where the unguarded run diverges, the
// guarded one finishes near the fault-free loss, and the incident ledger
// replays bit-identically under the same seed.

func init() {
	register(Experiment{
		ID: "X7", Section: "2.3",
		Title: "Self-healing training under numerical faults",
		Claim: "Numerical-fault guards (schema checks, NaN/spike/explosion detection, checkpoint rollback) keep training convergent at fault rates that make an unguarded run diverge, with a deterministic incident ledger",
		Run:   runX7,
	})
}

// selfHealResult summarises one guarded (or observed) training run.
type selfHealResult struct {
	CleanLoss   float64 // cross-entropy on held-out clean data after training
	Accuracy    float64
	Incidents   int
	Rollbacks   int
	Fingerprint uint64
}

// runSelfHeal trains one MLP on train under an injected numerical-fault
// schedule with the given guard mode, then scores it on clean held-out data.
// Everything is seeded, so the same arguments reproduce the same result and
// the same ledger fingerprint.
func runSelfHeal(train, test *data.Dataset, rate float64, mode guard.Mode, epochs int) selfHealResult {
	net := nn.NewMLP(rand.New(rand.NewSource(171)), nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rand.New(rand.NewSource(172)))
	g := guard.New(tr, guard.Policy{Mode: mode, Schema: guard.NewBatchSchema(train.X, 6)})

	var inj *fault.Injector
	if rate > 0 {
		inj = fault.NewInjector(fault.NumericalRate(173, rate))
	}
	g.Fit(train.X, nn.OneHot(train.Labels, 3), guard.FitConfig{
		Epochs: epochs, BatchSize: 16,
		Inject: func(step int, bx, by *tensor.Tensor) {
			if inj.CorruptsBatch(0, step) {
				inj.CorruptBatchValues(bx.Data, 0, step)
			}
			if inj.LabelNoise(0, step) {
				inj.ShuffleLabels(by.Data, by.Dim(0), by.Dim(1), 0, step)
			}
		},
		LRSpike: func(step int) float64 { return inj.LRSpikeFactor(0, step) },
	})

	// Score on clean data: a forward pass over the held-out set. A poisoned
	// model shows up here as a non-finite loss.
	loss := tr.ComputeGrad(test.X, nn.OneHot(test.Labels, 3))
	return selfHealResult{
		CleanLoss:   loss,
		Accuracy:    net.Accuracy(test.X, test.Labels),
		Incidents:   g.Ledger().Len(),
		Rollbacks:   g.Ledger().Rollbacks,
		Fingerprint: g.Ledger().Fingerprint(),
	}
}

func runX7(scale Scale) *Table {
	n, epochs := 480, 12
	if scale == Full {
		n, epochs = 1600, 25
	}
	rng := rand.New(rand.NewSource(170))
	ds := data.GaussianMixture(rng, n, 6, 3, 2.5)
	train, test := ds.Split(rng, 0.8)

	t := &Table{ID: "X7", Title: "Self-healing training under numerical faults",
		Claim:   "guarded training converges at fault rates where unguarded diverges; the incident ledger replays identically",
		Columns: []string{"fault_rate", "mode", "clean_loss", "diverged", "accuracy", "incidents", "rollbacks", "fingerprint"}}

	// Fault-free reference first: divergence is defined against it (a
	// poisoned model can end up non-finite, or merely orders of magnitude
	// worse when dead NaN weights leave a constant predictor behind).
	base := runSelfHeal(train, test, 0, guard.Enforce, epochs)
	diverged := func(loss float64) string {
		if math.IsNaN(loss) || math.IsInf(loss, 0) || loss > 10*base.CleanLoss {
			return "yes"
		}
		return "no"
	}
	addRow := func(rateLabel any, modeLabel string, r selfHealResult) {
		t.AddRow(rateLabel, modeLabel, r.CleanLoss, diverged(r.CleanLoss),
			r.Accuracy, r.Incidents, r.Rollbacks, fmt.Sprintf("%016x", r.Fingerprint))
	}
	addRow(0.0, "enforce", base)
	for _, rate := range []float64{0.02, 0.05, 0.1} {
		addRow(rate, "enforce", runSelfHeal(train, test, rate, guard.Enforce, epochs))
		addRow(rate, "observe", runSelfHeal(train, test, rate, guard.Observe, epochs))
	}

	// Replay determinism: the highest-rate guarded run again, same seeds —
	// the ledger fingerprint must match the row above.
	addRow("0.1/replay", "enforce", runSelfHeal(train, test, 0.1, guard.Enforce, epochs))

	t.Shape = "observe diverges (non-finite or ≫ fault-free clean loss) once faults fire while enforce stays near the fault-free loss at every rate; the replay row repeats the 0.1-rate fingerprint exactly"
	return t
}
