package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/planner"
)

// X12 studies elastic, topology-aware distributed training: a weak-scaling
// matrix of collective topologies (all-to-all mesh, ring all-reduce,
// binary-tree reduce-broadcast, two-level hierarchy) × failure scenarios
// (clean, link faults, worker churn, both) at n up to 256 workers. The
// claims: every topology converges within 1.5x of the clean mesh's loss
// under every scenario; per-round simulated communication time of ring and
// tree beats the mesh at n >= 64 (and the planner's analytic CollectiveTime
// model predicts the measured times); forced dead links degrade the
// topology to the mesh fallback rather than losing quorum; the topology
// Stats ledger reconciles exactly with the live obs counters; and the whole
// instrumented scenario replays bit-identically.

func init() {
	register(Experiment{
		ID: "X12", Section: "2.1",
		Title: "Elastic topology-aware distributed training",
		Claim: "Across n ∈ {8..256} × {mesh, ring, tree, hier} × {clean, link faults, churn, both}: loss stays within 1.5x of the clean mesh, ring/tree beat the mesh's simulated time per round at n >= 64 (matching the planner's analytic model), quorum loss degrades to the mesh fallback, stats reconcile exactly with obs counters, and runs replay bit-identically",
		Run:   runX12,
	})
}

// x12LossFloor keeps vs_clean ratios meaningful when the clean loss is tiny.
const x12LossFloor = 0.05

var x12Scenarios = []string{"clean", "faults", "churn", "both"}

func x12Ns(scale Scale) []int {
	if scale == Full {
		return []int{8, 64, 256}
	}
	return []int{8, 64}
}

// x12Churn is the deterministic elastic-membership schedule at scale n:
// n/8 workers leave at round 3 and rejoin at round 12 (catching up from
// snapshots), and worker 1 is a fresh joiner that first appears at round 6.
// Worker 0 never churns — it reports the epoch loss.
func x12Churn(n int) []distributed.ChurnEvent {
	leavers := n / 8
	if leavers < 1 {
		leavers = 1
	}
	var evs []distributed.ChurnEvent
	for i := 0; i < leavers; i++ {
		w := 2 + i
		evs = append(evs,
			distributed.ChurnEvent{Round: 3, Worker: w, Join: false},
			distributed.ChurnEvent{Round: 12, Worker: w, Join: true})
	}
	evs = append(evs, distributed.ChurnEvent{Round: 6, Worker: 1, Join: true})
	return evs
}

var x12Arch = nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 3}

// x12Config builds one convergence-matrix cell: 16 rounds (8 epochs × 2
// steps) so the churn schedule's round-12 rejoins land mid-run.
func x12Config(n int, topo distributed.Topology, scen string) distributed.Config {
	cfg := distributed.Config{
		Workers: n, Arch: x12Arch, Epochs: 8, BatchSize: 8, LR: 0.1,
		AveragePeriod: 1, Topology: topo, Device: device.ClusterNode,
		SnapshotPeriod: 2,
	}
	if scen == "faults" || scen == "both" {
		cfg.Fault = fault.LinkRate(137, 0.12)
	}
	if scen == "churn" || scen == "both" {
		cfg.Churn = x12Churn(n)
	}
	return cfg
}

func lastLoss(stats distributed.Stats) float64 {
	if len(stats.EpochLoss) == 0 {
		return math.NaN()
	}
	return stats.EpochLoss[len(stats.EpochLoss)-1]
}

func runX12(scale Scale) *Table {
	t := &Table{ID: "X12", Title: "Elastic topology-aware distributed training",
		Claim:   "collective topologies survive link faults and churn within 1.5x clean-mesh loss; ring/tree beat the mesh per round at n >= 64 matching the planner model; quorum loss degrades to the mesh; stats reconcile with obs; replay is bit-identical",
		Columns: []string{"cell", "detail", "ok"}}

	topos := distributed.Topologies()
	allConv, anyHeals := true, false

	// Phase 1: convergence matrix — n × topology × scenario. The clean mesh
	// is each n's baseline; every other cell must land within 1.5x.
	for _, n := range x12Ns(scale) {
		rng := rand.New(rand.NewSource(200 + int64(n)))
		ds := data.GaussianMixture(rng, 16*n, 5, 3, 3.2)
		y := nn.OneHot(ds.Labels, 3)

		var baseLoss float64
		for _, topo := range topos {
			for _, scen := range x12Scenarios {
				_, stats, err := distributed.Train(201, ds.X, y, x12Config(n, topo, scen))
				cell := fmt.Sprintf("conv-n%d-%s-%s", n, topo, scen)
				if err != nil {
					t.AddRow(cell, err.Error(), yesNo(false))
					allConv = false
					continue
				}
				loss := lastLoss(stats)
				if topo == distributed.TopoAllToAll && scen == "clean" {
					baseLoss = math.Max(loss, x12LossFloor)
				}
				ratio := math.Max(loss, x12LossFloor) / baseLoss
				ok := !math.IsNaN(loss) && ratio <= 1.5
				allConv = allConv && ok
				if stats.TopoHeals > 0 {
					anyHeals = true
				}
				detail := fmt.Sprintf("loss=%.4f vs_clean=%.3f comm_s=%.4g heals=%d degraded=%d excl=%d joins=%d leaves=%d catchups=%d epochs=%d",
					loss, ratio, stats.CommSeconds, stats.TopoHeals, stats.TopoDegraded,
					stats.LinkExcluded, stats.Joins, stats.Leaves, stats.CatchUps, stats.MembershipEpochs)
				t.AddRow(cell, detail, yesNo(ok))

				// Churn cells must execute the full schedule.
				if scen == "churn" || scen == "both" {
					wantLeaves := len(x12Churn(n)) / 2
					churnOK := stats.Leaves == wantLeaves && stats.Joins == wantLeaves+1 &&
						stats.CatchUps == stats.Joins && stats.MembershipEpochs >= 4
					allConv = allConv && churnOK
					if !churnOK {
						t.AddRow(cell+"-churn-ledger",
							fmt.Sprintf("leaves=%d joins=%d catchups=%d epochs=%d (want %d/%d/%d/>=4)",
								stats.Leaves, stats.Joins, stats.CatchUps, stats.MembershipEpochs,
								wantLeaves, wantLeaves+1, wantLeaves+1),
							yesNo(false))
					}
				}
			}
		}
	}
	t.AddRow("invariant-a-convergence",
		"every topology × scenario cell within 1.5x of its n's clean mesh loss; churn ledgers exact",
		yesNo(allConv))

	// Phase 2: forced quorum loss. At LinkDropProb 0.55 with a 2-attempt
	// budget the ring cannot keep half its members; the round must degrade
	// to the mesh fallback instead of silently under-aggregating.
	degCfg := x12Config(8, distributed.TopoRing, "clean")
	degCfg.Fault = fault.Config{Seed: 138, LinkDropProb: 0.55}
	degCfg.MaxRetries = 2
	rngD := rand.New(rand.NewSource(208))
	dsD := data.GaussianMixture(rngD, 16*8, 5, 3, 3.2)
	_, degStats, degErr := distributed.Train(201, dsD.X, nn.OneHot(dsD.Labels, 3), degCfg)
	degOK := degErr == nil && degStats.TopoDegraded > 0 && !math.IsNaN(lastLoss(degStats))
	t.AddRow("invariant-b-degradation",
		fmt.Sprintf("ring at 55%% link loss: degraded=%d heals=%d dropped=%d loss=%.4f",
			degStats.TopoDegraded, degStats.TopoHeals, degStats.LinkDropped, lastLoss(degStats)),
		yesNo(degOK))

	// Phase 3: weak-scaling timing on a ~25k-parameter model (realistic
	// gradient payloads make inter-node links bandwidth-bound). Ring and
	// tree must beat the mesh per round from n=64 up, and the planner's
	// closed-form CollectiveTime must predict each measured per-round time.
	archT := nn.MLPConfig{In: 32, Hidden: []int{192, 96}, Out: 4}
	payload := int64(nn.NewMLP(rand.New(rand.NewSource(1)), archT).NumParams()) * 4
	timingOK, modelOK := true, true
	for _, n := range x12Ns(scale) {
		rngT := rand.New(rand.NewSource(210 + int64(n)))
		dsT := data.GaussianMixture(rngT, 16*n, 32, 4, 3.0)
		yT := nn.OneHot(dsT.Labels, 4)
		perRound := map[distributed.Topology]float64{}
		for _, topo := range topos {
			_, stats, err := distributed.Train(211, dsT.X, yT, distributed.Config{
				Workers: n, Arch: archT, Epochs: 1, BatchSize: 8, LR: 0.05,
				AveragePeriod: 1, Topology: topo, Device: device.ClusterNode,
			})
			cell := fmt.Sprintf("time-n%d-%s", n, topo)
			if err != nil || stats.CommRounds == 0 {
				t.AddRow(cell, fmt.Sprintf("err=%v comm_rounds=%d", err, stats.CommRounds), yesNo(false))
				timingOK = false
				continue
			}
			measured := stats.CommSeconds / float64(stats.CommRounds)
			perRound[topo] = measured
			pred := planner.CollectiveTime(string(topo), n, payload, device.ClusterNode, 0)
			predRatio := pred / measured
			cellModelOK := predRatio > 0.95 && predRatio < 1.05
			modelOK = modelOK && cellModelOK
			t.AddRow(cell,
				fmt.Sprintf("round_s=%.6g planner_pred=%.6g pred_ratio=%.4f", measured, pred, predRatio),
				yesNo(cellModelOK))
		}
		if n >= 64 {
			fasterOK := perRound[distributed.TopoRing] < perRound[distributed.TopoAllToAll] &&
				perRound[distributed.TopoTree] < perRound[distributed.TopoAllToAll]
			timingOK = timingOK && fasterOK
			t.AddRow(fmt.Sprintf("time-n%d-crossover", n),
				fmt.Sprintf("ring=%.6g tree=%.6g hier=%.6g < mesh=%.6g",
					perRound[distributed.TopoRing], perRound[distributed.TopoTree],
					perRound[distributed.TopoHier], perRound[distributed.TopoAllToAll]),
				yesNo(fasterOK))
		}
	}
	t.AddRow("invariant-c-scaling",
		"ring and tree beat the mesh's simulated time per round at n >= 64; planner model within 5% everywhere",
		yesNo(timingOK && modelOK))

	// Phase 4: ledger reconciliation — the topology Stats block must equal
	// the live obs counters exactly on a faulty, churning, instrumented run.
	hR := obs.NewHandle()
	recCfg := x12Config(16, distributed.TopoRing, "both")
	recCfg.Obs = hR
	rngR := rand.New(rand.NewSource(216))
	dsR := data.GaussianMixture(rngR, 16*16, 5, 3, 3.2)
	_, recStats, recErr := distributed.Train(201, dsR.X, nn.OneHot(dsR.Labels, 3), recCfg)
	recOK := recErr == nil
	for _, pair := range []struct {
		name string
		want int
	}{
		{"distributed.link_dropped", recStats.LinkDropped},
		{"distributed.link_slow_hops", recStats.LinkSlowHops},
		{"distributed.link_excluded", recStats.LinkExcluded},
		{"distributed.partitioned_rounds", recStats.PartitionedRounds},
		{"distributed.topo_heals", recStats.TopoHeals},
		{"distributed.topo_degraded", recStats.TopoDegraded},
		{"distributed.membership_epochs", recStats.MembershipEpochs},
		{"distributed.joins", recStats.Joins},
		{"distributed.leaves", recStats.Leaves},
		{"distributed.catchups", recStats.CatchUps},
		{"distributed.comm_rounds", recStats.CommRounds},
		{"distributed.retransmissions", recStats.Retransmissions},
	} {
		if got := hR.Reg.Counter(pair.name).Value(); got != int64(pair.want) {
			recOK = false
			t.AddRow("recon-"+pair.name, fmt.Sprintf("counter=%d stats=%d", got, pair.want), yesNo(false))
		}
	}
	if g := hR.Reg.Gauge("distributed.comm_seconds").Value(); g != recStats.CommSeconds {
		recOK = false
		t.AddRow("recon-comm_seconds", fmt.Sprintf("gauge=%g stats=%g", g, recStats.CommSeconds), yesNo(false))
	}
	t.AddRow("invariant-d-reconciliation",
		fmt.Sprintf("12 topology counters + comm_seconds gauge equal their Stats fields exactly (heals=%d excl=%d)",
			recStats.TopoHeals, recStats.LinkExcluded),
		yesNo(recOK))

	// Phase 5: replay — the same instrumented faulty+churn scenario twice;
	// metric and trace fingerprints must match bit-for-bit.
	var prints [2]string
	replayOK := true
	for i := 0; i < 2; i++ {
		h := obs.NewHandle()
		cfg := x12Config(16, distributed.TopoHier, "both")
		cfg.Obs = h
		_, stats, err := distributed.Train(201, dsR.X, nn.OneHot(dsR.Labels, 3), cfg)
		if err != nil {
			replayOK = false
			t.AddRow(fmt.Sprintf("replay/%d", i+1), err.Error(), yesNo(false))
			continue
		}
		prints[i] = fmt.Sprintf("%016x:%016x:%d:%g",
			h.Reg.Fingerprint(), h.Tracer.Fingerprint(), stats.BytesSent, stats.CommSeconds)
	}
	replayOK = replayOK && prints[0] == prints[1]
	t.AddRow("invariant-e-replay", fmt.Sprintf("rep1=%s rep2=%s", prints[0], prints[1]), yesNo(replayOK))

	t.Shape = "all cells converge within 1.5x of the clean mesh with heals observed (" + yesNo(anyHeals) +
		"); ring/tree beat the mesh at n >= 64 and the planner model predicts the measured times; " +
		"quorum loss degrades to the mesh; stats reconcile exactly; replays are bit-identical"
	return t
}

// TopologyPerf is one X12 performance sample: wall time and simulated-round
// throughput of the hardest convergence cell (largest n, ring topology,
// link faults + churn together). The CI bench step appends these to the
// repo's performance trajectory (BENCH_X12.json).
type TopologyPerf struct {
	WallS       float64 `json:"wall_s"`
	Workers     int     `json:"workers"`
	Rounds      int     `json:"rounds"`
	RoundsPerS  float64 `json:"rounds_per_sec"`
	CommSimS    float64 `json:"comm_sim_s"`
	Heals       int     `json:"heals"`
	Degraded    int     `json:"degraded"`
	Joins       int     `json:"joins"`
	CatchUps    int     `json:"catchups"`
	ConvergeOK  bool    `json:"converge_ok"`
	ReconcileOK bool    `json:"reconcile_ok"`
}

// TopologyBenchmark times the hardest X12 cell — the largest configured n
// on the ring with link faults and churn — and reports round throughput
// plus the robustness outcome.
func TopologyBenchmark(scale Scale) (TopologyPerf, error) {
	ns := x12Ns(scale)
	n := ns[len(ns)-1]
	rng := rand.New(rand.NewSource(200 + int64(n)))
	ds := data.GaussianMixture(rng, 16*n, 5, 3, 3.2)
	y := nn.OneHot(ds.Labels, 3)
	h := obs.NewHandle()
	cfg := x12Config(n, distributed.TopoRing, "both")
	cfg.Obs = h
	start := time.Now()
	_, stats, err := distributed.Train(201, ds.X, y, cfg)
	if err != nil {
		return TopologyPerf{}, err
	}
	wall := time.Since(start).Seconds()
	loss := lastLoss(stats)
	return TopologyPerf{
		WallS:       wall,
		Workers:     n,
		Rounds:      stats.Steps,
		RoundsPerS:  float64(stats.Steps) / wall,
		CommSimS:    stats.CommSeconds,
		Heals:       stats.TopoHeals,
		Degraded:    stats.TopoDegraded,
		Joins:       stats.Joins,
		CatchUps:    stats.CatchUps,
		ConvergeOK:  !math.IsNaN(loss) && !math.IsInf(loss, 0),
		ReconcileOK: h.Reg.Counter("distributed.topo_heals").Value() == int64(stats.TopoHeals),
	}, nil
}
