package core

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/modelstore"
	"dlsys/internal/nn"
)

// runModelstoreExperiment (E29) stores the hidden activations of several
// snapshot "versions" of a model — later versions share most early-layer
// behaviour — and reports the store's footprint against naive float
// storage.
func runModelstoreExperiment(scale Scale) *Table {
	n := 256
	if scale == Full {
		n = 1024
	}
	rng := rand.New(rand.NewSource(90))
	ds := data.GaussianMixture(rng, n, 8, 4, 3)
	cfg := nn.MLPConfig{In: 8, Hidden: []int{64, 64}, Out: 4}
	net := nn.NewMLP(rng, cfg)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	y := nn.OneHot(ds.Labels, 4)

	store := modelstore.NewStore()
	t := &Table{ID: "E29", Title: "Intermediates store", Claim: "quantize+dedup ~5x+ smaller, bounded error",
		Columns: []string{"after_version", "naive_mb", "stored_mb", "ratio", "max_err_v_last"}}
	for v := 0; v < 4; v++ {
		tr.Fit(ds.X, y, nn.TrainConfig{Epochs: 5, BatchSize: 32})
		// Record every hidden activation for this version.
		h := ds.X
		for li, l := range net.Layers {
			h = l.Forward(h, false)
			if _, ok := l.(*nn.ReLU); ok {
				if err := store.Put(fmt.Sprintf("v%d", v), fmt.Sprintf("layer%d", li), h); err != nil {
					panic(err) // hidden activations are rank 2 by construction
				}
			}
		}
		maxErr, _ := store.MaxError(fmt.Sprintf("v%d", v), "layer1")
		t.AddRow(fmt.Sprintf("v%d", v),
			float64(store.NaiveBytes())/1e6,
			float64(store.StoredBytes())/1e6,
			store.CompressionRatio(), maxErr)
	}
	t.Shape = "compression ratio stays >= ~5x as versions accumulate; reconstruction error bounded"
	return t
}
