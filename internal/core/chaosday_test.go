package core

import "testing"

// TestX10ProductionDayClaims pins the X10 acceptance criteria: the
// composed production day — guarded Byzantine-robust training, the
// serving fleet, the event-driven multi-tenant fleet, and the online
// learned-index engine on one simulation kernel, under the scheduled
// chaos of crashes, stragglers, flash crowds, a Byzantine coalition, a
// numerical-fault burst, a corrupted-insert burst, and a tenant retry
// storm — holds all six global invariants: availability above the floor
// with the load spike visibly absorbed by tier degradation, no silent
// training divergence with guard and quarantine incidents reconciling
// with the schedule, exact cross-subsystem counter-vs-ledger
// reconciliation on the shared registry, bit-identical
// metric/trace/ledger/kernel/index/fleet fingerprints across two runs,
// the live index riding its fallback ladder through the corrupted burst
// without dropping a query, and every fleet tenant holding its
// availability floor through the retry storm. Every check is on
// deterministic simulated quantities, so one run suffices.
func TestX10ProductionDayClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("X10 composed day skipped in -short mode")
	}
	e, ok := Get("X10")
	if !ok {
		t.Fatal("X10 not registered")
	}
	tab := e.Run(Quick)
	t.Log("\n" + tab.Render())
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}

	wantChecks := []string{
		"timeline", "chaos-observed",
		"invariant-1-availability", "invariant-2-integrity",
		"invariant-3-reconcile", "invariant-4-replay",
		"invariant-5-index", "invariant-6-tenants",
	}
	if len(tab.Rows) != len(wantChecks) {
		t.Fatalf("X10 produced %d rows, want %d: %v", len(tab.Rows), len(wantChecks), tab.Rows)
	}
	for i, row := range tab.Rows {
		if row[col["check"]] != wantChecks[i] {
			t.Errorf("row %d is %q, want %q", i, row[col["check"]], wantChecks[i])
			continue
		}
		if row[col["ok"]] != "yes" {
			t.Errorf("%s failed: %s", row[col["check"]], row[col["detail"]])
		}
	}
}

// TestChaosDayBenchmark checks the perf-trajectory sample the CI bench
// step records: a finite wall time and a kernel-event throughput
// consistent with the processed-event count.
func TestChaosDayBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("X10 bench sample skipped in -short mode")
	}
	perf, err := ChaosDayBenchmark(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if perf.WallS <= 0 || perf.Events <= 0 {
		t.Fatalf("degenerate sample %+v", perf)
	}
	if got := perf.EventsPerSec * perf.WallS; got < float64(perf.Events)*0.99 || got > float64(perf.Events)*1.01 {
		t.Fatalf("throughput %g inconsistent with events=%d wall=%gs", perf.EventsPerSec, perf.Events, perf.WallS)
	}
}
