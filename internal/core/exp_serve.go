package core

import (
	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/serve"
)

// X6 studies robust model serving: a replica fleet hosting the
// full-precision model plus its compressed fallback tiers is swept over
// fault rate x offered load, with graceful degradation toggled. The claim
// under test is the serving-side mirror of the training-side X5: with
// admission control, retries/hedging, circuit breakers, and tiered
// fallback, availability falls gracefully — not off a cliff — while the
// accuracy of the actually-served mix degrades by a small, reported
// amount.

func init() {
	register(Experiment{
		ID: "X6", Section: "2.1",
		Title: "Robust model serving with compressed fallback tiers",
		Claim: "Under replica faults and overload, degradation to quantized/distilled/pruned fallbacks keeps availability strictly above a full-precision-only fleet, at a small served-accuracy cost; breakers provably open and re-close",
		Run:   runX6,
	})
}

func runX6(scale Scale) *Table {
	requests := 600
	examples, epochs := 800, 15
	if scale == Full {
		requests = 2400
		examples, epochs = 2000, 30
	}
	variants, eval, err := serve.BuildVariants(serve.VariantsConfig{
		Seed: 160, Examples: examples, Epochs: epochs,
	})
	t := &Table{ID: "X6", Title: "Robust model serving",
		Claim:   "availability falls gracefully with fault rate and load when fallback tiers absorb overload and breaker-isolated failures",
		Columns: []string{"fault_rate", "load", "fallback", "avail", "p50_us", "p99_us", "shed", "hedge_wins", "br_open", "br_close", "served_acc"}}
	if err != nil {
		t.AddRow("err", err.Error(), "-", "-", "-", "-", "-", "-", "-", "-", "-")
		return t
	}

	// 2x full + one replica per compressed tier, all edge-class devices.
	mk := func(v serve.Variant) serve.Replica {
		return serve.Replica{Variant: v, Device: device.EdgeDevice, Efficiency: 0.5}
	}
	fleet := []serve.Replica{mk(variants[0]), mk(variants[0]), mk(variants[1]), mk(variants[2]), mk(variants[3])}
	serviceFull := fleet[0].ServiceS()

	for _, rate := range []float64{0, 0.05, 0.2} {
		for _, load := range []float64{0.6, 1.3} {
			for _, fallback := range []bool{false, true} {
				srv, err := serve.NewServer(serve.Config{
					Seed:     161,
					Faults:   fault.Rate(161, rate),
					Replicas: fleet,
					// Load is offered relative to the two full
					// replicas' fault-free capacity, identically for
					// both fallback settings.
					ArrivalRate:   load * 2 / serviceFull,
					Requests:      requests,
					HedgeQuantile: 0.9,
					Fallback:      fallback,
					EvalX:         eval.X,
					EvalLabels:    eval.Labels,
				})
				if err != nil {
					t.AddRow(rate, load, fallback, "err", err.Error(), "-", "-", "-", "-", "-", "-")
					continue
				}
				res := srv.Run()
				t.AddRow(rate, load, fallback,
					res.Availability, res.P50S*1e6, res.P99S*1e6,
					res.Shed, res.HedgeWins,
					res.BreakerOpened, res.BreakerReclosed, res.MixAccuracy)
			}
		}
	}
	t.Shape = "at fault 0.2 the fallback fleet's availability is strictly above full-only at every load; served accuracy dips only a few points below the full model; breakers both open and re-close at nonzero fault rates"
	return t
}
