package core

import (
	"fmt"
	"math/rand"

	"dlsys/internal/checkpoint"
	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distill"
	"dlsys/internal/distributed"
	"dlsys/internal/ensemble"
	"dlsys/internal/nn"
	"dlsys/internal/planner"
	"dlsys/internal/prune"
	"dlsys/internal/quant"
)

// benchData builds the shared classification workload for the Part 1
// experiments and trains a reference network on it.
func benchData(scale Scale, seed int64) (train, test *data.Dataset, cfg nn.MLPConfig, epochs int) {
	n, hidden, ep := 600, 32, 20
	if scale == Full {
		n, hidden, ep = 2400, 64, 40
	}
	rng := rand.New(rand.NewSource(seed))
	ds := data.GaussianMixture(rng, n, 8, 4, 3)
	tr, te := ds.Split(rng, 0.8)
	return tr, te, nn.MLPConfig{In: 8, Hidden: []int{hidden, hidden}, Out: 4}, ep
}

func trainRef(train *data.Dataset, cfg nn.MLPConfig, epochs int, seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewMLP(rng, cfg)
	t := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	t.Fit(train.X, nn.OneHot(train.Labels, cfg.Out), nn.TrainConfig{Epochs: epochs, BatchSize: 32})
	return net
}

func init() {
	register(Experiment{
		ID: "E1", Section: "2.1",
		Title: "Linear quantization: bits vs accuracy vs model size",
		Claim: "Quantization shrinks models roughly linearly in bit width; accuracy is flat down to ~8 bits and degrades below",
		Run:   runE1,
	})
	register(Experiment{
		ID: "E2", Section: "2.1",
		Title: "Codebook (k-means) quantization + Huffman coding",
		Claim: "Learned codebooks trade codebook size for accuracy; Huffman coding shrinks codes losslessly",
		Run:   runE2,
	})
	register(Experiment{
		ID: "E3", Section: "2.1",
		Title: "Pruning: sparsity vs accuracy across criteria",
		Claim: "Accuracy is stable up to high sparsity then falls off; magnitude/saliency criteria beat random",
		Run:   runE3,
	})
	register(Experiment{
		ID: "E4", Section: "2.1",
		Title: "Knowledge distillation into smaller students",
		Claim: "A distilled student tracks the teacher's function better than an identical student trained from scratch",
		Run:   runE4,
	})
	register(Experiment{
		ID: "E5", Section: "2.1",
		Title: "Ensemble training strategies: cost vs accuracy vs memory",
		Claim: "Snapshot/FGE/TreeNets/MotherNets cut training cost below K-from-scratch at a small accuracy cost; TreeNets/MotherNets also cut memory",
		Run:   runE5,
	})
	register(Experiment{
		ID: "E6", Section: "2.1",
		Title: "Local SGD: averaging period vs bytes vs accuracy",
		Claim: "Communication falls proportionally to the averaging period H while accuracy degrades slowly",
		Run:   runE6,
	})
	register(Experiment{
		ID: "E7", Section: "2.1",
		Title: "Gradient compression: top-k and low-bit gradients",
		Claim: "Sparsified/quantized gradients cut bytes by 10-100x with little accuracy loss (error feedback)",
		Run:   runE7,
	})
	register(Experiment{
		ID: "E8", Section: "2.1",
		Title: "Priority-based parameter propagation",
		Claim: "Priority propagation overlaps communication with computation, cutting simulated step time vs FIFO",
		Run:   runE8,
	})
	register(Experiment{
		ID: "E9", Section: "2.2",
		Title: "FlexFlow-style strategy search: effort vs step time",
		Claim: "Simulator-guided search finds placements near the exhaustive optimum; more search effort buys lower step time",
		Run:   runE9,
	})
	register(Experiment{
		ID: "E10", Section: "2.2",
		Title: "MorphNet-style resizing under FLOP budgets",
		Claim: "Importance-driven width reallocation meets the budget and competes with uniform scaling",
		Run:   runE10,
	})
	register(Experiment{
		ID: "E11", Section: "2.3",
		Title: "Activation checkpointing: memory vs recompute",
		Claim: "sqrt(n) checkpointing cuts activation memory to ~sqrt(n) at <= one extra forward; DP placement matches the budget with minimal recompute",
		Run:   runE11,
	})
	register(Experiment{
		ID: "E12", Section: "2.3",
		Title: "Offloading intermediate results to host memory",
		Claim: "Device memory falls linearly with the offloaded fraction; step time grows with transferred bytes",
		Run:   runE12,
	})
}

func runE1(scale Scale) *Table {
	train, test, cfg, epochs := benchData(scale, 1)
	net := trainRef(train, cfg, epochs, 2)
	base := net.Accuracy(test.X, test.Labels)
	t := &Table{ID: "E1", Title: "Quantization sweep", Claim: "flat to ~8 bits, degrades below",
		Columns: []string{"bits", "size_bytes", "accuracy", "acc_drop"}}
	t.AddRow(32, net.ParamBytes(32), base, 0.0)
	for _, bits := range []int{16, 8, 4, 2, 1} {
		state, bytes, err := quant.QuantizeNetwork(net, bits)
		if err != nil {
			t.AddRow(bits, int64(0), 0.0, 0.0)
			continue
		}
		qnet := nn.NewMLP(rand.New(rand.NewSource(3)), cfg)
		qnet.LoadStateDict(state)
		acc := qnet.Accuracy(test.X, test.Labels)
		t.AddRow(bits, bytes, acc, base-acc)
	}
	t.Shape = "size shrinks ~linearly with bits; accuracy flat until low bit widths"
	return t
}

func runE2(scale Scale) *Table {
	train, test, cfg, epochs := benchData(scale, 4)
	net := trainRef(train, cfg, epochs, 5)
	base := net.Accuracy(test.X, test.Labels)
	t := &Table{ID: "E2", Title: "Codebook quantization", Claim: "bigger codebooks restore accuracy",
		Columns: []string{"codebook", "raw_bytes", "huffman_bytes", "accuracy", "acc_drop"}}
	rng := rand.New(rand.NewSource(6))
	for _, k := range []int{2, 4, 16, 64, 256} {
		var rawBytes, huffBytes int64
		state := net.StateDict()
		for _, p := range net.Params() {
			cb, err := quant.QuantizeKMeans(rng, p.Value, k, 12)
			if err != nil {
				panic(err) // k is drawn from the in-range sweep above
			}
			rawBytes += cb.Bytes()
			huffBytes += quant.HuffmanBytes(cb.Codes) + int64(len(cb.Centers))*8
			state[p.Name] = cb.Dequantize().Data
		}
		qnet := nn.NewMLP(rand.New(rand.NewSource(7)), cfg)
		qnet.LoadStateDict(state)
		acc := qnet.Accuracy(test.X, test.Labels)
		t.AddRow(k, rawBytes, huffBytes, acc, base-acc)
	}
	t.Shape = "accuracy rises with codebook size; Huffman pays off only when codes are skewed (k-means yields near-uniform codes, so its table overhead shows here)"
	return t
}

func runE3(scale Scale) *Table {
	t := &Table{ID: "E3", Title: "Pruning sweep", Claim: "flat then cliff; informed criteria beat random",
		Columns: []string{"sparsity", "criterion", "accuracy", "sparse_bytes"}}
	for _, crit := range []struct {
		name string
		c    prune.Criterion
	}{{"magnitude", prune.Magnitude}, {"saliency", prune.Saliency}, {"random", prune.Random}} {
		for _, sp := range []float64{0, 0.5, 0.7, 0.9, 0.95} {
			train, test, cfg, epochs := benchData(scale, 8)
			net := trainRef(train, cfg, epochs, 9)
			tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.005), rand.New(rand.NewSource(10)))
			if sp > 0 {
				if crit.c == prune.Saliency {
					tr.ComputeGrad(train.X, nn.OneHot(train.Labels, cfg.Out))
				}
				if err := prune.GlobalPrune(rand.New(rand.NewSource(11)), net, sp, crit.c); err != nil {
					panic(err) // sparsities are drawn from the in-range sweep above
				}
				tr.Fit(train.X, nn.OneHot(train.Labels, cfg.Out), nn.TrainConfig{Epochs: 3, BatchSize: 32})
			}
			t.AddRow(sp, crit.name, net.Accuracy(test.X, test.Labels), prune.NonzeroParamBytes(net))
		}
	}
	t.Shape = "accuracy stable to ~70-90% sparsity then drops; random degrades first"
	return t
}

func runE4(scale Scale) *Table {
	// A harder task than the shared benchData mixture, so small students
	// visibly benefit from the teacher's dark knowledge. Enough data that
	// the wide teacher generalises better than any student.
	// The setting where transfer robustly matters: students only have a
	// small labeled subset, while the teacher (trained on everything)
	// provides soft labels over the full unlabeled pool — Hinton et al.'s
	// "transferring the function" framing.
	n := 1200
	if scale == Full {
		n = 4800
	}
	rng := rand.New(rand.NewSource(12))
	ds := data.GaussianMixture(rng, n, 8, 4, 2.2)
	train, test := ds.Split(rng, 0.8)
	cfg := nn.MLPConfig{In: 8, Hidden: []int{64, 64}, Out: 4}
	epochs := 40
	teacher := trainRef(train, cfg, epochs, 13)
	tacc := teacher.Accuracy(test.X, test.Labels)

	// Labeled subset for the scratch students: 10% of the pool.
	subsetIdx := make([]int, 0, train.N()/10)
	for i := 0; i < train.N(); i += 10 {
		subsetIdx = append(subsetIdx, i)
	}
	subset := train.Subset(subsetIdx)
	subY := nn.OneHot(subset.Labels, cfg.Out)
	// Distilled students learn from the full pool labeled by the teacher.
	teacherHard := nn.OneHot(teacher.Predict(train.X), cfg.Out)

	t := &Table{ID: "E4", Title: "Distillation", Claim: "teacher-labeled distillation beats label-starved scratch training",
		Columns: []string{"student_width", "scratch_acc(10%labels)", "distilled_acc", "scratch_agreement", "distilled_agreement"}}
	for _, w := range []int{4, 8, 16} {
		sCfg := nn.MLPConfig{In: cfg.In, Hidden: []int{w}, Out: cfg.Out}
		scratch := nn.NewMLP(rand.New(rand.NewSource(14)), sCfg)
		str := nn.NewTrainer(scratch, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rand.New(rand.NewSource(15)))
		str.Fit(subset.X, subY, nn.TrainConfig{Epochs: epochs, BatchSize: 16})
		student := nn.NewMLP(rand.New(rand.NewSource(14)), sCfg) // same init as scratch
		distill.Distill(rand.New(rand.NewSource(16)), teacher, student, train.X, teacherHard, distill.Config{
			Alpha: 0.2, T: 3, Epochs: epochs, BatchSize: 32, LR: 0.01,
		})
		t.AddRow(w, scratch.Accuracy(test.X, test.Labels), student.Accuracy(test.X, test.Labels),
			distill.Agreement(teacher, scratch, test.X),
			distill.Agreement(teacher, student, test.X))
	}
	t.AddRow("teacher", tacc, tacc, 1.0, 1.0)
	t.Shape = "distilled students reach near-teacher accuracy and high agreement; label-starved scratch students trail"
	return t
}

func runE5(scale Scale) *Table {
	train, test, cfg, epochs := benchData(scale, 17)
	y := nn.OneHot(train.Labels, cfg.Out)
	ecfg := ensemble.TrainConfig{K: 3, Arch: cfg, Epochs: epochs, BatchSize: 32, LR: 0.01}
	t := &Table{ID: "E5", Title: "Ensemble strategies", Claim: "shortcuts cut training cost, shared-structure methods cut memory",
		Columns: []string{"method", "train_gflops", "params", "accuracy"}}
	add := func(name string, r ensemble.Result) {
		t.AddRow(name, float64(r.FLOPs)/1e9, r.Committee.NumParams(),
			ensemble.Accuracy(r.Committee, test.X, test.Labels))
	}
	add("independent", ensemble.TrainIndependent(18, train.X, y, ecfg))
	add("snapshot", ensemble.TrainSnapshot(19, train.X, y, ecfg))
	add("fge", ensemble.TrainFGE(20, train.X, y, ecfg))
	add("treenets", ensemble.TrainTreeNet(21, train.X, y, ecfg))
	add("mothernets", ensemble.TrainMotherNets(22, train.X, y, ensemble.MotherNetsConfig{
		Members:      []nn.MLPConfig{cfg, cfg, cfg},
		MotherEpochs: epochs / 2, FineTuneEpochs: epochs / 5, BatchSize: 32, LR: 0.01,
	}))
	t.Shape = "independent: max cost & accuracy; snapshot/FGE ~K x cheaper; treenets/mothernets also fewer params"
	return t
}

func runE6(scale Scale) *Table {
	train, test, cfg, epochs := benchData(scale, 23)
	y := nn.OneHot(train.Labels, cfg.Out)
	t := &Table{ID: "E6", Title: "Local SGD", Claim: "bytes ~ 1/H, accuracy degrades slowly",
		Columns: []string{"H", "mbytes_sent", "rounds", "accuracy"}}
	for _, h := range []int{1, 4, 16, 64} {
		net, stats, err := distributed.Train(24, train.X, y, distributed.Config{
			Workers: 4, Arch: cfg, Epochs: epochs, BatchSize: 16, LR: 0.1, AveragePeriod: h,
		})
		if err != nil {
			t.AddRow(h, "err", "err", err.Error())
			continue
		}
		t.AddRow(h, float64(stats.BytesSent)/1e6, stats.AveragingRound, net.Accuracy(test.X, test.Labels))
	}
	t.Shape = "bytes fall ~1/H; accuracy loss grows gently with H"
	return t
}

func runE7(scale Scale) *Table {
	train, test, cfg, epochs := benchData(scale, 25)
	y := nn.OneHot(train.Labels, cfg.Out)
	t := &Table{ID: "E7", Title: "Gradient compression", Claim: "large byte savings, small accuracy loss",
		Columns: []string{"scheme", "mbytes_sent", "accuracy"}}
	run := func(name string, topK float64, bits int) {
		net, stats, err := distributed.Train(26, train.X, y, distributed.Config{
			Workers: 4, Arch: cfg, Epochs: epochs, BatchSize: 16, LR: 0.1,
			AveragePeriod: 1, TopK: topK, QuantBits: bits,
		})
		if err != nil {
			t.AddRow(name, "err", err.Error())
			return
		}
		t.AddRow(name, float64(stats.BytesSent)/1e6, net.Accuracy(test.X, test.Labels))
	}
	run("dense fp32", 1, 0)
	run("top-10%", 0.10, 0)
	run("top-1%", 0.01, 0)
	run("8-bit", 1, 8)
	run("4-bit", 1, 4)
	run("top-10% + 8-bit", 0.10, 8)
	t.Shape = "compressed schemes cut bytes 5-100x; accuracy within a few points of dense"
	return t
}

func runE8(scale Scale) *Table {
	t := &Table{ID: "E8", Title: "Priority propagation", Claim: "priority hides communication behind compute",
		Columns: []string{"model", "fifo_ms", "priority_ms", "speedup"}}
	archs := []nn.MLPConfig{
		{In: 256, Hidden: []int{512, 512}, Out: 10},
		{In: 512, Hidden: []int{1024, 1024, 1024}, Out: 10},
		{In: 1024, Hidden: []int{2048, 2048, 2048, 2048}, Out: 10},
	}
	for i, arch := range archs {
		fifo := distributed.StepTimeModel(arch, device.EdgeDevice, false)
		prio := distributed.StepTimeModel(arch, device.EdgeDevice, true)
		t.AddRow(fmt.Sprintf("mlp-%d", i+1), fifo*1e3, prio*1e3, fifo/prio)
	}
	t.Shape = "priority step time strictly below FIFO; gap widens with model size"
	return t
}

func runE9(scale Scale) *Table {
	arch := nn.MLPConfig{In: 256, Hidden: []int{512, 256, 128}, Out: 10}
	ops := planner.OpChain(arch, 32)
	devs := []device.Profile{device.GPULarge, device.GPUSmall, device.CPUServer}
	t := &Table{ID: "E9", Title: "Strategy search", Claim: "search effort buys step time; MCMC ~ optimal",
		Columns: []string{"method", "simulations", "step_ms", "vs_optimal"}}
	opt := planner.ExhaustiveSearch(ops, devs)
	add := func(name string, r planner.SearchResult) {
		t.AddRow(name, r.Simulations, r.BestTime*1e3, r.BestTime/opt.BestTime)
	}
	add("exhaustive", opt)
	add("greedy", planner.GreedySearch(ops, devs))
	add("random-100", planner.RandomSearch(rand.New(rand.NewSource(27)), ops, devs, 100))
	add("mcmc-100", planner.MCMCSearch(rand.New(rand.NewSource(28)), ops, devs, 100))
	add("mcmc-2000", planner.MCMCSearch(rand.New(rand.NewSource(29)), ops, devs, 2000))
	t.Shape = "mcmc-2000 within a few % of optimal; diminishing returns beyond"
	return t
}

func runE10(scale Scale) *Table {
	train, test, cfg, epochs := benchData(scale, 30)
	y := nn.OneHot(train.Labels, cfg.Out)
	full := planner.MLPFLOPs(cfg.In, cfg.Hidden, cfg.Out)
	t := &Table{ID: "E10", Title: "MorphNet resizing", Claim: "morphed widths meet budgets, rival uniform scaling",
		Columns: []string{"budget", "morph_widths", "morph_acc", "uniform_acc"}}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		budget := int64(float64(full) * frac)
		res := planner.Morph(31, train.X, y, planner.MorphConfig{
			Base: cfg, BudgetFLOPs: budget, Iters: 2, TrainEpochs: epochs / 3, BatchSize: 32, LR: 0.01,
		})
		uw := planner.UniformScale(cfg.In, cfg.Hidden, cfg.Out, budget)
		urng := rand.New(rand.NewSource(32))
		unet := nn.NewMLP(urng, nn.MLPConfig{In: cfg.In, Hidden: uw, Out: cfg.Out})
		nn.NewTrainer(unet, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), urng).
			Fit(train.X, y, nn.TrainConfig{Epochs: 2 * epochs / 3, BatchSize: 32})
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), fmt.Sprintf("%v", res.Widths),
			res.Net.Accuracy(test.X, test.Labels), unet.Accuracy(test.X, test.Labels))
	}
	t.Shape = "morphed nets meet every budget with accuracy >= uniform - epsilon"
	return t
}

func runE11(scale Scale) *Table {
	blocks := 16
	if scale == Full {
		blocks = 32
	}
	rng := rand.New(rand.NewSource(33))
	var layers []nn.Layer
	width := 64
	for i := 0; i < blocks; i++ {
		layers = append(layers,
			nn.NewDense(rng, fmt.Sprintf("fc%d", i), width, width),
			nn.NewReLU(fmt.Sprintf("relu%d", i)))
	}
	layers = append(layers, nn.NewDense(rng, "head", width, 4))
	net := nn.NewNetwork(layers...)
	cm := checkpoint.FromNetwork(net, []int{width}, 32)

	t := &Table{ID: "E11", Title: "Checkpointing", Claim: "sqrt memory at bounded recompute; DP fits budgets",
		Columns: []string{"strategy", "peak_kfloats", "recompute_mflops", "extra_fwd_frac"}}
	var fwd int64
	for _, c := range cm.Costs {
		fwd += c
	}
	for _, p := range []struct {
		name string
		plan checkpoint.Plan
	}{
		{"store-all", checkpoint.StoreAll(len(net.Layers))},
		{"sqrt(n)", checkpoint.SqrtN(len(net.Layers))},
	} {
		t.AddRow(p.name, float64(cm.PeakMemory(p.plan))/1e3,
			float64(cm.RecomputeFLOPs(p.plan))/1e6,
			float64(cm.RecomputeFLOPs(p.plan))/float64(fwd))
	}
	all := checkpoint.StoreAll(len(net.Layers))
	for _, frac := range []float64{0.75, 0.5, 0.35} {
		budget := int64(float64(cm.PeakMemory(all)) * frac)
		plan, ok := cm.OptimalPlan(budget)
		name := fmt.Sprintf("dp@%.0f%%all", frac*100)
		if !ok {
			t.AddRow(name, "infeasible", "-", "-")
			continue
		}
		t.AddRow(name, float64(cm.PeakMemory(plan))/1e3,
			float64(cm.RecomputeFLOPs(plan))/1e6,
			float64(cm.RecomputeFLOPs(plan))/float64(fwd))
	}
	t.Shape = "sqrt(n) cuts peak memory several-fold at <=1 extra forward; DP meets tighter budgets"
	return t
}

func runE12(scale Scale) *Table {
	t := &Table{ID: "E12", Title: "Offloading", Claim: "memory linear down, time linear up",
		Columns: []string{"offload_frac", "device_mb", "extra_ms_per_step"}}
	actBytes := int64(1 << 30) // 1 GiB of activations
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		devBytes, extra := checkpoint.OffloadModel(device.GPUSmall, actBytes, frac)
		t.AddRow(frac, float64(devBytes)/1e6, extra*1e3)
	}
	t.Shape = "device bytes fall linearly; extra step time rises linearly in offloaded bytes"
	return t
}
