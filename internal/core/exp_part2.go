package core

import (
	"fmt"
	"math"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/db"
	"dlsys/internal/explore"
	"dlsys/internal/learned"
)

func init() {
	register(Experiment{
		ID: "E13", Section: "3",
		Title: "Learned index (RMI) vs B-tree",
		Claim: "Learned indexes learn the key-position mapping: far smaller, competitive lookups on learnable CDFs",
		Run:   runE13,
	})
	register(Experiment{
		ID: "E14", Section: "3",
		Title: "Learned Bloom filter vs classic Bloom filter",
		Claim: "With learnable key structure, a classifier + small backup filter competes with a classic filter's memory at matched FPR",
		Run:   runE14,
	})
	register(Experiment{
		ID: "E15", Section: "3",
		Title: "Neural selectivity estimation vs histograms",
		Claim: "On correlated attributes, the learned estimator's q-error beats independence-assuming histograms",
		Run:   runE15,
	})
	register(Experiment{
		ID: "E16", Section: "3",
		Title: "RL knob tuning vs grid search",
		Claim: "Q-learning approaches the grid-search optimum with far fewer configuration evaluations",
		Run:   runE16,
	})
	register(Experiment{
		ID: "E17", Section: "3",
		Title: "Learned cost model for join ordering",
		Claim: "Plans from a learned cost model stay near the DP optimum and avoid greedy's worst cases",
		Run:   runE17,
	})
	register(Experiment{
		ID: "E18", Section: "3",
		Title: "RL-guided data exploration",
		Claim: "An RL agent reaches high-interest views in fewer queries than a random analyst",
		Run:   runE18,
	})
	register(Experiment{
		ID: "E19", Section: "3",
		Title: "Learned embeddings for similarity search",
		Claim: "kNN in a learned embedding space retrieves same-class neighbours far better than raw attributes",
		Run:   runE19,
	})
	register(Experiment{
		ID: "E20", Section: "3",
		Title: "Autoencoder tabular compression",
		Claim: "A latent-factor autoencoder beats per-column quantize+Huffman on correlated tables",
		Run:   runE20,
	})
}

func runE13(scale Scale) *Table {
	n := 50000
	if scale == Full {
		n = 500000
	}
	t := &Table{ID: "E13", Title: "Learned index vs B-tree", Claim: "10-100x smaller, bounded search windows",
		Columns: []string{"distribution", "keys", "btree_kb", "rmi_kb", "size_ratio", "max_window", "all_found"}}
	rng := rand.New(rand.NewSource(40))
	for _, dist := range []data.KeyDistribution{data.Uniform, data.ZipfGaps, data.Lognormal} {
		keys, err := data.GenerateKeys(rng, dist, n)
		if err != nil {
			panic(err) // dist ranges over the supported set
		}
		bt := db.BulkLoadBTree(keys)
		rmi, err := learned.BuildRMI(keys, 512)
		if err != nil {
			panic(err) // keys generated non-empty, leaves positive
		}
		found := true
		for i := 0; i < len(keys); i += 97 {
			if pos, ok := rmi.Lookup(keys, keys[i]); !ok || pos != i {
				found = false
				break
			}
		}
		t.AddRow(string(dist), len(keys), float64(bt.MemoryBytes())/1024,
			float64(rmi.MemoryBytes())/1024,
			float64(bt.MemoryBytes())/float64(rmi.MemoryBytes()),
			rmi.MaxSearchWindow(), found)
	}
	t.Shape = "RMI 10-100x smaller than the B-tree on every distribution; every present key found"
	return t
}

func runE14(scale Scale) *Table {
	n := 4000
	if scale == Full {
		n = 20000
	}
	rng := rand.New(rand.NewSource(41))
	keys := learned.ClusteredKeys(rng, n, 4, 1<<30)
	trainNegs := data.NegativeKeys(rng, keys, n)
	testNegs := data.NegativeKeys(rng, keys, 4*n)

	lb, err := learned.BuildLearnedBloom(rng, keys, trainNegs, learned.LearnedBloomConfig{
		Hidden: 12, Epochs: 40, LR: 0.01, TargetFPR: 0.03, BackupFPR: 0.03,
	})
	if err != nil {
		panic(err) // BackupFPR is a fixed in-range constant
	}
	lfpr := lb.MeasuredFPR(testNegs)
	classic, err := db.NewBloom(len(keys), math.Max(lfpr, 1e-4))
	if err != nil {
		panic(err) // fpr floored into (0,1)
	}
	for _, k := range keys {
		classic.Add(k)
	}
	cfpr := classic.MeasuredFPR(testNegs)

	t := &Table{ID: "E14", Title: "Learned vs classic Bloom", Claim: "competitive memory at matched FPR, zero false negatives",
		Columns: []string{"filter", "bytes", "measured_fpr", "false_negatives"}}
	fn := 0
	for _, k := range keys {
		if !lb.MayContain(k) {
			fn++
		}
	}
	t.AddRow("learned+backup", lb.MemoryBytes(), lfpr, fn)
	t.AddRow("classic", classic.MemoryBytes(), cfpr, 0)
	t.Shape = "learned filter keeps the zero-false-negative contract at a usable FPR on structured keys"
	return t
}

func runE15(scale Scale) *Table {
	rows, queries, epochs := 6000, 1200, 50
	if scale == Full {
		rows, queries, epochs = 20000, 3000, 80
	}
	rng := rand.New(rand.NewSource(42))
	tuples := data.CorrelatedTuples(rng, rows, 0.9)
	tab := db.NewTable("t", "a", "b", "c")
	for _, r := range tuples {
		tab.Append(r[0], r[1], r[2])
	}
	est := learned.TrainSelectivityEstimator(rng, tab, learned.SelectivityConfig{
		Hidden: []int{32, 32}, Queries: queries, Epochs: epochs, LR: 0.005, BatchSize: 64,
	})
	hist, err := db.NewIndependentEstimator(tab, 32)
	if err != nil {
		panic(err) // non-empty table, positive bucket count
	}
	histEst := func(preds []db.Pred) float64 {
		sel, err := hist.Estimate(preds)
		if err != nil {
			panic(err) // queries are drawn over the table's own columns
		}
		return sel
	}

	t := &Table{ID: "E15", Title: "Selectivity estimation", Claim: "learned beats AVI histograms on correlated data",
		Columns: []string{"estimator", "median_qerror", "p95_qerror", "bytes"}}
	qrng := rand.New(rand.NewSource(43))
	m, p := learned.QErrorStats(qrng, tab, est.Estimate, 300)
	t.AddRow("neural", m, p, est.MemoryBytes())
	qrng = rand.New(rand.NewSource(43))
	m, p = learned.QErrorStats(qrng, tab, histEst, 300)
	t.AddRow("histogram-AVI", m, p, int64(3*33*8))
	t.Shape = "neural median and p95 q-error clearly below histograms"
	return t
}

func runE16(scale Scale) *Table {
	units := 20
	gridEnv := learned.NewKnobEnv(rand.New(rand.NewSource(44)), units, 0)
	_, gridVal := learned.GridSearch(gridEnv, 1)
	coarseEnv := learned.NewKnobEnv(rand.New(rand.NewSource(45)), units, 0)
	_, coarseVal := learned.GridSearch(coarseEnv, 5)
	rlEnv := learned.NewKnobEnv(rand.New(rand.NewSource(46)), units, 0.5)
	_, rlVal := learned.NewQTuner().Run(rand.New(rand.NewSource(47)), rlEnv, 12, 8)

	t := &Table{ID: "E16", Title: "Knob tuning", Claim: "RL near-optimal with far fewer evaluations",
		Columns: []string{"tuner", "evaluations", "best_throughput", "frac_of_optimum"}}
	t.AddRow("grid(step=1)", gridEnv.Evaluations(), gridVal, 1.0)
	t.AddRow("grid(step=5)", coarseEnv.Evaluations(), coarseVal, coarseVal/gridVal)
	t.AddRow("q-learning", rlEnv.Evaluations(), rlVal, rlVal/gridVal)
	t.Shape = "RL reaches >=95% of optimum with a fraction of grid's evaluations"
	return t
}

func runE17(scale Scale) *Table {
	trials := 20
	if scale == Full {
		trials = 60
	}
	rng := rand.New(rand.NewSource(48))
	model := learned.TrainJoinCostModel(rng, 200, 7, 40)
	t := &Table{ID: "E17", Title: "Join ordering", Claim: "learned plans near DP optimum, beating naive orders",
		Columns: []string{"planner", "geomean_cost_vs_optimal", "worst_cost_vs_optimal"}}
	var sumLogL, worstL, sumLogG, worstG, sumLogN, worstN float64
	worstL, worstG, worstN = 1, 1, 1
	for i := 0; i < trials; i++ {
		g := learned.RandomJoinGraph(rng, 6)
		_, opt := g.DPOptimal()
		_, greedy := g.GreedyOrder()
		_, lcost := model.PlanGreedy(g)
		// Naive order: join in index order.
		naive := g.PlanCost([]int{0, 1, 2, 3, 4, 5})
		rl, rg, rn := lcost/opt, greedy/opt, naive/opt
		sumLogL += math.Log(rl)
		sumLogG += math.Log(rg)
		sumLogN += math.Log(rn)
		worstL = math.Max(worstL, rl)
		worstG = math.Max(worstG, rg)
		worstN = math.Max(worstN, rn)
	}
	n := float64(trials)
	t.AddRow("dp-optimal", 1.0, 1.0)
	t.AddRow("greedy-true-cost", math.Exp(sumLogG/n), worstG)
	t.AddRow("learned-cost-model", math.Exp(sumLogL/n), worstL)
	t.AddRow("naive-order", math.Exp(sumLogN/n), worstN)
	t.Shape = "learned planner's geomean within a small factor of optimal, orders of magnitude below naive"
	return t
}

func runE18(scale Scale) *Table {
	rows := 4000
	if scale == Full {
		rows = 12000
	}
	rng := rand.New(rand.NewSource(49))
	tab := db.NewTable("sales", "f", "g", "v")
	for i := 0; i < rows; i++ {
		f := rng.Float64()
		g := rng.Float64() * 10
		v := 5 + 0.1*rng.NormFloat64()
		if f > 0.8 {
			v = 5 + 4*g + rng.NormFloat64()
		}
		tab.Append(f, g, v)
	}
	gt, err := explore.NewViewGrid(tab, "f", "g", "v", 6, 4)
	if err != nil {
		panic(err) // columns match the schema built above
	}
	target := gt.MaxScore() * 0.9

	t := &Table{ID: "E18", Title: "Guided exploration", Claim: "RL reaches the insight in fewer queries",
		Columns: []string{"agent", "hit_rate", "avg_queries_to_insight"}}
	trials := 6
	measure := func(run func(seed int64, g *explore.ViewGrid) explore.SessionResult) (float64, float64) {
		hits, total := 0, 0
		for s := 0; s < trials; s++ {
			g, err := explore.NewViewGrid(tab, "f", "g", "v", 6, 4)
			if err != nil {
				panic(err) // columns match the schema built above
			}
			r := run(int64(s), g)
			if r.QueriesToHit > 0 {
				hits++
				total += r.QueriesToHit
			}
		}
		if hits == 0 {
			return 0, 0
		}
		return float64(hits) / float64(trials), float64(total) / float64(hits)
	}
	rlHit, rlQ := measure(func(seed int64, g *explore.ViewGrid) explore.SessionResult {
		return explore.QLearnExplore(rand.New(rand.NewSource(100+seed)), g, 8, 12, target)
	})
	rwHit, rwQ := measure(func(seed int64, g *explore.ViewGrid) explore.SessionResult {
		return explore.RandomWalk(rand.New(rand.NewSource(200+seed)), g, 96, target)
	})
	t.AddRow("q-learning", rlHit, rlQ)
	t.AddRow("random-walk", rwHit, rwQ)
	t.Shape = "RL hit rate >= random at comparable or fewer distinct queries"
	return t
}

func runE19(scale Scale) *Table {
	n := 300
	if scale == Full {
		n = 800
	}
	rng := rand.New(rand.NewSource(50))
	x, labels := explore.RingsDataset(rng, n, 3, 0.1)
	emb := explore.TrainRingEmbedder(rng, x, labels, 3, 60)
	t := &Table{ID: "E19", Title: "Embedding similarity", Claim: "embedding space clusters entities by latent class",
		Columns: []string{"representation", "precision@10"}}
	t.AddRow("raw-attributes", explore.PrecisionAtK(x, labels, 10))
	t.AddRow("learned-embedding", explore.PrecisionAtK(emb.Embed(x), labels, 10))
	t.Shape = "embedding precision far above raw-attribute cosine similarity"
	return t
}

func runE20(scale Scale) *Table {
	rows := 2000
	if scale == Full {
		rows = 8000
	}
	rng := rand.New(rand.NewSource(51))
	x := explore.CorrelatedTable(rng, rows, 8, 0.01)
	ae := explore.TrainAutoencoder(rng, x, explore.AEConfig{
		InDim: 8, Hidden: 24, LatentDim: 2, Epochs: 120, LR: 0.005, BatchSize: 64,
	})
	t := &Table{ID: "E20", Title: "AE compression", Claim: "joint latent beats per-column coding on correlated data",
		Columns: []string{"codec", "bytes", "bytes_per_value", "mse"}}
	latent, aeBytes, err := ae.Compress(x, 12)
	if err != nil {
		panic(err) // 12 bits is in range by construction
	}
	aeMSE := explore.ReconstructionMSE(x, ae.Decompress(latent))
	t.AddRow("autoencoder(2d latent,12b)", aeBytes, float64(aeBytes)/float64(x.Size()), aeMSE)
	for _, bits := range []int{4, 6, 8, 12} {
		b, mse, err := explore.ColumnQuantBaseline(x, bits)
		if err != nil {
			panic(err) // bit widths are drawn from the in-range sweep above
		}
		t.AddRow(fmt.Sprintf("column-quant+huffman(%db)", bits), b, float64(b)/float64(x.Size()), mse)
	}
	t.Shape = "autoencoder dominates the low-bit baselines (fewer bytes AND lower MSE than 4-6 bit columns)"
	return t
}
