package core

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/guard"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/pipeline"
	"dlsys/internal/serve"
	"dlsys/internal/tensor"
)

// X8 studies the deterministic observability layer: the faulty scenarios of
// X5 (distributed training), X6 (serving), and X7 (self-healing training)
// are replayed with live metrics and tracing attached. Three claims are
// checked: (1) the metric registry and span trace fingerprint bit-identically
// across same-seed replays, because every instrument is updated from
// deterministic call sites and every span is stamped from a simulated clock;
// (2) the counters reconcile EXACTLY with each subsystem's own ledger,
// because they are incremented at the same code sites; (3) instrumentation
// costs under 5% wall-clock on the compute-dominated experiment paths.

func init() {
	register(Experiment{
		ID: "X8", Section: "2.3",
		Title: "Deterministic observability: metrics and tracing replay bit-identically",
		Claim: "Metrics and spans recorded from simulated clocks replay bit-identically under the same seed, reconcile exactly with the subsystem ledgers, and cost under 5% on compute-dominated paths",
		Run:   runX8,
	})
}

// reconciler collects counter-vs-ledger mismatches for one scenario run.
type reconciler struct {
	h          *obs.Handle
	mismatches []string
}

func (r *reconciler) eq(name string, want int64) {
	if got := r.h.Reg.Counter(name).Value(); got != want {
		r.mismatches = append(r.mismatches, fmt.Sprintf("%s=%d want %d", name, got, want))
	}
}

func (r *reconciler) gaugeEq(name string, want float64) {
	if got := r.h.Reg.Gauge(name).Value(); got != want {
		r.mismatches = append(r.mismatches, fmt.Sprintf("%s=%g want %g", name, got, want))
	}
}

func (r *reconciler) check(cond bool, detail string) {
	if !cond {
		r.mismatches = append(r.mismatches, detail)
	}
}

func (r *reconciler) result() (bool, string) {
	return len(r.mismatches) == 0, strings.Join(r.mismatches, "; ")
}

// obsScenario is one instrumented replay target. run executes the scenario
// against the handle (nil = uninstrumented baseline for the overhead
// measurement) and reports whether every counter reconciled with the
// subsystem's own ledger.
type obsScenario struct {
	name string
	run  func(h *obs.Handle) (reconciled bool, detail string)
}

// x8Scenarios builds the instrumented replays of the X5/X6/X7 paths. All
// inputs are generated up front so the closures are pure functions of the
// handle — the replay-determinism assertion depends on that.
func x8Scenarios(scale Scale) []obsScenario {
	n, epochs := 480, 10
	requests := 600
	if scale == Full {
		n, epochs = 1600, 25
		requests = 2400
	}

	// X5 path: distributed training under a faulty schedule.
	rng := rand.New(rand.NewSource(150))
	ds := data.GaussianMixture(rng, n, 6, 3, 3.2)
	train, test := ds.Split(rng, 0.8)
	_ = test
	y := nn.OneHot(train.Labels, 3)
	arch := nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3}
	distScenario := func(name string, averagePeriod int) obsScenario {
		return obsScenario{name: name, run: func(h *obs.Handle) (bool, string) {
			_, stats, err := distributed.Train(151, train.X, y, distributed.Config{
				Workers: 4, Arch: arch, Epochs: epochs, BatchSize: 16, LR: 0.1,
				AveragePeriod: averagePeriod, TopK: 0.25,
				Fault: fault.Rate(152, 0.1), SnapshotPeriod: 3, DropSlowestK: 1,
				Obs: h,
			})
			if err != nil {
				return false, err.Error()
			}
			if h == nil {
				return true, ""
			}
			r := &reconciler{h: h}
			r.eq("distributed.retransmissions", int64(stats.Retransmissions))
			r.eq("distributed.dropped_messages", int64(stats.DroppedMessages))
			r.eq("distributed.corruptions", int64(stats.Corruptions))
			r.eq("distributed.timeouts", int64(stats.Timeouts))
			r.eq("distributed.crashes", int64(stats.Crashes))
			r.eq("distributed.rejoins", int64(stats.Rejoins))
			r.eq("distributed.restores", int64(stats.Restores))
			r.eq("distributed.snapshots", int64(stats.Snapshots))
			r.eq("distributed.snapshot_bytes", stats.SnapshotBytes)
			r.eq("distributed.straggler_rounds", int64(stats.StragglerRounds))
			r.eq("distributed.excluded_slow", int64(stats.ExcludedSlow))
			r.eq("distributed.numerical_faults", int64(stats.NumericalFaults))
			r.eq("distributed.guard_skipped", int64(stats.GuardSkipped))
			r.eq("distributed.guard_restores", int64(stats.GuardRestores))
			r.eq("distributed.averaging_rounds", int64(stats.AveragingRound))
			r.eq("distributed.steps", int64(stats.Steps))
			r.eq("distributed.bytes_sent", stats.BytesSent)
			r.gaugeEq("distributed.sim_seconds", stats.SimSeconds)
			r.check(h.Tracer.Len() > 0, "no spans recorded")
			return r.result()
		}}
	}

	// X6 path: variant building plus a replica fleet under faults and
	// overload — the same compute balance as the X6 benchmark, so the
	// overhead measurement reflects the path the claim is about.
	serveScenario := obsScenario{name: "serve", run: func(h *obs.Handle) (bool, string) {
		variants, eval, err := serve.BuildVariants(serve.VariantsConfig{
			Seed: 160, Examples: n, Epochs: epochs,
		})
		if err != nil {
			return false, err.Error()
		}
		mk := func(v serve.Variant) serve.Replica {
			return serve.Replica{Variant: v, Device: device.EdgeDevice, Efficiency: 0.5}
		}
		fleet := []serve.Replica{mk(variants[0]), mk(variants[0]), mk(variants[1]), mk(variants[2]), mk(variants[3])}
		srv, err := serve.NewServer(serve.Config{
			Seed:          161,
			Faults:        fault.Rate(161, 0.2),
			Replicas:      fleet,
			ArrivalRate:   1.3 * 2 / fleet[0].ServiceS(),
			Requests:      requests,
			HedgeQuantile: 0.9,
			Fallback:      true,
			EvalX:         eval.X,
			EvalLabels:    eval.Labels,
			Obs:           h,
		})
		if err != nil {
			return false, err.Error()
		}
		res := srv.Run()
		if h == nil {
			return true, ""
		}
		r := &reconciler{h: h}
		r.eq("serve.served", int64(res.Served))
		r.eq("serve.shed", int64(res.Shed))
		r.eq("serve.failed", int64(res.Failed))
		r.eq("serve.hedges_launched", int64(res.HedgesLaunched))
		r.eq("serve.hedge_wins", int64(res.HedgeWins))
		r.eq("serve.breaker_opened", int64(res.BreakerOpened))
		r.eq("serve.breaker_reclosed", int64(res.BreakerReclosed))
		for t := serve.TierFull; t < serve.Tier(4); t++ {
			r.eq("serve.tier."+t.String()+".served", int64(res.TierCounts[t]))
			hist := h.Reg.Histogram("serve.tier."+t.String()+".latency_seconds", nil)
			r.check(hist.Count() == int64(res.TierCounts[t]),
				fmt.Sprintf("tier %s latency count %d want %d", t, hist.Count(), res.TierCounts[t]))
			// The histogram sum must equal the ledger's latencies added in
			// the same (request) order — bit-identical, not approximately.
			var want float64
			for _, rec := range res.Records {
				if rec.Outcome == serve.Served && rec.Tier == t {
					want += rec.LatencyS
				}
			}
			r.check(hist.Sum() == want,
				fmt.Sprintf("tier %s latency sum %g want %g", t, hist.Sum(), want))
		}
		r.check(h.Tracer.Len() == requests, fmt.Sprintf("spans %d want one per request (%d)", h.Tracer.Len(), requests))
		return r.result()
	}}

	// X7 path: guarded training under numerical faults.
	grng := rand.New(rand.NewSource(170))
	gds := data.GaussianMixture(grng, n, 6, 3, 2.5)
	gtrain, _ := gds.Split(grng, 0.8)
	gy := nn.OneHot(gtrain.Labels, 3)
	guardScenario := obsScenario{name: "selfheal", run: func(h *obs.Handle) (bool, string) {
		net := nn.NewMLP(rand.New(rand.NewSource(171)), nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3})
		tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rand.New(rand.NewSource(172)))
		g := guard.New(tr, guard.Policy{Mode: guard.Enforce, Schema: guard.NewBatchSchema(gtrain.X, 6), Obs: h})
		inj := fault.NewInjector(fault.NumericalRate(173, 0.2))
		g.Fit(gtrain.X, gy, guard.FitConfig{
			Epochs: epochs, BatchSize: 16,
			Inject: func(step int, bx, by *tensor.Tensor) {
				if inj.CorruptsBatch(0, step) {
					inj.CorruptBatchValues(bx.Data, 0, step)
				}
				if inj.LabelNoise(0, step) {
					inj.ShuffleLabels(by.Data, by.Dim(0), by.Dim(1), 0, step)
				}
			},
			LRSpike: func(step int) float64 { return inj.LRSpikeFactor(0, step) },
		})
		if h == nil {
			return true, ""
		}
		l := g.Ledger()
		r := &reconciler{h: h}
		r.eq("guard.incidents", int64(l.Len()))
		r.eq("guard.skipped", int64(l.Skipped))
		r.eq("guard.clipped", int64(l.Clipped))
		r.eq("guard.backoffs", int64(l.Backoffs))
		r.eq("guard.rollbacks", int64(l.Rollbacks))
		r.eq("guard.drifts", int64(l.Drifts))
		r.eq("guard.observed", int64(l.Observed))
		rollbackSpans := 0
		for _, sp := range h.Tracer.Spans() {
			if sp.Name == "guard.rollback" {
				rollbackSpans++
			}
		}
		r.check(rollbackSpans == l.Rollbacks,
			fmt.Sprintf("rollback spans %d want %d", rollbackSpans, l.Rollbacks))
		return r.result()
	}}

	// X5's pipeline rows: compression stages failing and falling back, plus
	// a guarded training stage feeding incidents through the same handle.
	pipeScenario := obsScenario{name: "pipeline", run: func(h *obs.Handle) (bool, string) {
		l, err := pipeline.Run(pipeline.Spec{
			Seed: 153, Epochs: epochs, PruneSparsity: 0.5, DistillWidth: 8,
			QuantizeBits: 8, FaultRate: 0.5,
			SelfHeal: true, NumericalFaultRate: 0.05,
			Obs: h,
		})
		if err != nil {
			return false, err.Error()
		}
		if h == nil {
			return true, ""
		}
		r := &reconciler{h: h}
		r.eq("pipeline.stages", int64(len(l.Stages)))
		r.eq("pipeline.degraded", int64(len(l.Degraded)))
		r.eq("pipeline.incidents", int64(l.Incidents))
		r.eq("pipeline.rollbacks", int64(l.Rollbacks))
		r.eq("guard.incidents", int64(l.Incidents)) // guard shares the handle
		stageSpans := 0
		for _, sp := range h.Tracer.Spans() {
			if strings.HasPrefix(sp.Name, "pipeline.stage.") {
				stageSpans++
			}
		}
		r.check(stageSpans == len(l.Stages),
			fmt.Sprintf("stage spans %d want %d", stageSpans, len(l.Stages)))
		return r.result()
	}}

	return []obsScenario{
		distScenario("train-sync", 1),
		distScenario("train-local", 4),
		serveScenario,
		guardScenario,
		pipeScenario,
	}
}

// bestOf returns the fastest of repeated runs of fn — the standard defence
// against scheduler noise in wall-clock comparisons. Short scenarios repeat
// until enough total time accumulates for the minimum to be trustworthy.
func bestOf(fn func()) time.Duration {
	const (
		minReps  = 3
		maxReps  = 100
		minTotal = 200 * time.Millisecond
	)
	best, total := time.Duration(0), time.Duration(0)
	for i := 0; i < maxReps && (i < minReps || total < minTotal); i++ {
		start := time.Now()
		fn()
		d := time.Since(start)
		total += d
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

func runX8(scale Scale) *Table {
	t := &Table{ID: "X8", Title: "Deterministic observability",
		Claim:   "metrics and traces replay bit-identically, reconcile exactly with subsystem ledgers, and cost <5% on compute-dominated paths",
		Columns: []string{"scenario", "metric_fp", "trace_fp", "replay", "reconciled", "spans", "overhead_pct"}}

	for _, sc := range x8Scenarios(scale) {
		h1 := obs.NewHandle()
		ok1, detail := sc.run(h1)
		h2 := obs.NewHandle()
		ok2, _ := sc.run(h2)
		replay := h1.Reg.Fingerprint() == h2.Reg.Fingerprint() &&
			h1.Tracer.Fingerprint() == h2.Tracer.Fingerprint()
		reconciled := ok1 && ok2
		if detail == "" {
			detail = "ok"
		}

		// Overhead: fastest-of-3 instrumented vs fastest-of-3 bare. The
		// scenarios are compute-dominated (training / full simulations), so
		// the handful of atomic updates per step must disappear into noise.
		instr := bestOf(func() { sc.run(obs.NewHandle()) })
		bare := bestOf(func() { sc.run(nil) })
		overheadPct := 100 * (instr.Seconds() - bare.Seconds()) / bare.Seconds()

		t.AddRow(sc.name,
			fmt.Sprintf("%016x", h1.Reg.Fingerprint()),
			fmt.Sprintf("%016x", h1.Tracer.Fingerprint()),
			yesNo(replay), yesNo(reconciled), h1.Tracer.Len(), overheadPct)
	}
	t.Shape = "every scenario replays with identical metric and trace fingerprints, every counter reconciles exactly with its subsystem ledger, and measured overhead stays under 5%"
	return t
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
