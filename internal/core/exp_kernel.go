package core

import (
	"math/rand"
	"time"

	"dlsys/internal/tensor"
)

// X13: the tensor-engine kernel benchmark. Unlike X10–X12 — which time
// composed simulations — X13 times the compute substrate every other
// experiment bottoms out in: the GEMM kernel hierarchy (reference → tiled
// → pooled → batched → f32). The sample both starts the roadmap's raw
// kernel perf trajectory and re-verifies the determinism contract on the
// machine that produced the numbers: the speedups only count if the fast
// tiers returned bit-identical results.

// KernelPerf is one X13 performance sample: wall time and throughput of
// each kernel tier on an n³ GEMM, the speedups over the serial reference,
// and whether the fast float64 tiers were bit-identical to it. The CI
// bench step appends these to the repo's performance trajectory
// (BENCH_X13.json).
type KernelPerf struct {
	N          int     `json:"n"`
	WallS      float64 `json:"wall_s"` // total benchmark wall time
	NaiveGFS   float64 `json:"naive_gflops"`
	TiledGFS   float64 `json:"tiled_gflops"`
	PooledGFS  float64 `json:"pooled_gflops"`
	BatchedGFS float64 `json:"batched_gflops"`
	F32GFS     float64 `json:"f32_gflops"`
	TiledX     float64 `json:"tiled_speedup"`
	PooledX    float64 `json:"pooled_speedup"`
	BitExact   bool    `json:"bitexact"` // fast f64 tiers matched the reference
}

// kernelN picks the GEMM size: the documented 1024³ at full scale, a
// quick 256³ cell otherwise.
func kernelN(scale Scale) int {
	if scale == Full {
		return 1024
	}
	return 256
}

// KernelBenchmark times every tier of the GEMM hierarchy on one n³
// product and cross-checks the bit-exactness contract on the measured
// outputs.
func KernelBenchmark(scale Scale) (KernelPerf, error) {
	n := kernelN(scale)
	rng := rand.New(rand.NewSource(300 + int64(n)))
	a := tensor.RandNormal(rng, 0, 1, n, n)
	b := tensor.RandNormal(rng, 0, 1, n, n)
	flops := 2 * float64(n) * float64(n) * float64(n)
	start := time.Now()

	t0 := time.Now()
	ref := tensor.MatMulRef(a, b)
	naiveS := time.Since(t0).Seconds()

	t0 = time.Now()
	tiled := tensor.MatMulTiled(a, b)
	tiledS := time.Since(t0).Seconds()

	t0 = time.Now()
	pooled := tensor.MatMul(a, b)
	pooledS := time.Since(t0).Seconds()

	// Batched: 4 slices of (n/2)³ keeps the work comparable while
	// exercising the rank-3 storage walk.
	const bt = 4
	h := n / 2
	ab := tensor.New(bt, h, h)
	bb := tensor.New(bt, h, h)
	for i := range ab.Data {
		ab.Data[i] = a.Data[i%len(a.Data)]
	}
	for i := range bb.Data {
		bb.Data[i] = b.Data[i%len(b.Data)]
	}
	t0 = time.Now()
	tensor.BatMul(ab, bb)
	batchedS := time.Since(t0).Seconds()
	batchedFLOPs := 2 * float64(bt) * float64(h) * float64(h) * float64(h)

	a32, b32 := tensor.ToFloat32(a), tensor.ToFloat32(b)
	t0 = time.Now()
	tensor.MatMul32(a32, b32)
	f32S := time.Since(t0).Seconds()

	bitexact := tensor.Equal(tiled, ref, 0) && tensor.Equal(pooled, ref, 0)
	return KernelPerf{
		N:          n,
		WallS:      time.Since(start).Seconds(),
		NaiveGFS:   flops / naiveS / 1e9,
		TiledGFS:   flops / tiledS / 1e9,
		PooledGFS:  flops / pooledS / 1e9,
		BatchedGFS: batchedFLOPs / batchedS / 1e9,
		F32GFS:     flops / f32S / 1e9,
		TiledX:     naiveS / tiledS,
		PooledX:    naiveS / pooledS,
		BitExact:   bitexact,
	}, nil
}
