package core

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/pipeline"
)

// X5 studies fault-tolerant distributed training: a deterministic fault
// schedule (crashes, stragglers, dropped and corrupted messages) is swept
// over increasing rates, and the run must degrade gracefully — accuracy
// stays near the fault-free baseline while retransmissions, snapshot
// restores, and simulated wall-clock absorb the damage. Error feedback is
// toggled because excluded stragglers fold their gradients into the
// residual, so the recovery story depends on it.

func init() {
	register(Experiment{
		ID: "X5", Section: "2.1",
		Title: "Fault-tolerant distributed training",
		Claim: "Under crashes, stragglers, and message loss, retries plus checkpoint recovery keep accuracy near the fault-free run at the cost of extra bytes and simulated time",
		Run:   runX5,
	})
}

func runX5(scale Scale) *Table {
	n, epochs := 480, 12
	if scale == Full {
		n, epochs = 1600, 25
	}
	rng := rand.New(rand.NewSource(150))
	ds := data.GaussianMixture(rng, n, 6, 3, 3.2)
	train, test := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, 3)
	arch := nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3}

	t := &Table{ID: "X5", Title: "Fault-tolerant distributed training",
		Claim:   "accuracy degrades gracefully with fault rate; bytes and simulated time rise",
		Columns: []string{"fault_rate", "error_fb", "accuracy", "mbytes", "retrans", "crashes", "restores", "sim_s"}}
	for _, rate := range []float64{0, 0.05, 0.1, 0.2} {
		for _, ef := range []bool{true, false} {
			if rate == 0 && !ef {
				continue // error feedback is moot without exclusions
			}
			net, stats, err := distributed.Train(151, train.X, y, distributed.Config{
				Workers: 4, Arch: arch, Epochs: epochs, BatchSize: 16, LR: 0.1,
				AveragePeriod: 1, TopK: 0.25, NoErrorFeedback: !ef,
				Fault: fault.Rate(152, rate), SnapshotPeriod: 3, DropSlowestK: 1,
			})
			if err != nil {
				t.AddRow(rate, ef, "err", err.Error(), "-", "-", "-", "-")
				continue
			}
			t.AddRow(rate, ef, net.Accuracy(test.X, test.Labels),
				float64(stats.BytesSent)/1e6, stats.Retransmissions,
				stats.Crashes, stats.Restores, stats.SimSeconds)
		}
	}

	// Pipeline-level robustness: optional compression stages fail at the
	// same rates and the pipeline ships a fallback model instead of dying.
	for _, rate := range []float64{0, 0.5} {
		l, err := pipeline.Run(pipeline.Spec{
			Seed: 153, Epochs: epochs, PruneSparsity: 0.5, DistillWidth: 8,
			QuantizeBits: 8, FaultRate: rate,
		})
		label := fmt.Sprintf("pipe/%g", rate)
		if err != nil {
			t.AddRow(label, "-", "err", err.Error(), "-", "-", "-", "-")
			continue
		}
		t.AddRow(label, "-", l.Accuracy,
			float64(l.ModelBytes)/1e6, "-", "-", len(l.Degraded), "-")
	}
	t.Shape = "accuracy stays within a few points of fault-free as the rate grows; mbytes and sim_s climb with the fault rate; degraded pipelines still ship a working model"
	return t
}
