package core

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/guard"
)

// The ISSUE's acceptance criteria for self-healing training, checked at
// quick scale: pick a fault rate where the unguarded (Observe) run diverges
// — non-finite clean loss or >10x the fault-free loss — and show that the
// guarded (Enforce) run at the same rate on the same injection schedule
// finishes within 1.2x of the fault-free final loss, and that replaying the
// same seed reproduces the identical incident ledger fingerprint.
func TestX7SelfHealClaims(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	ds := data.GaussianMixture(rng, 480, 6, 3, 2.5)
	train, test := ds.Split(rng, 0.8)
	const rate, epochs = 0.1, 12

	clean := runSelfHeal(train, test, 0, guard.Enforce, epochs)
	if math.IsNaN(clean.CleanLoss) || clean.Incidents != 0 {
		t.Fatalf("fault-free run: loss %v, incidents %d", clean.CleanLoss, clean.Incidents)
	}

	observed := runSelfHeal(train, test, rate, guard.Observe, epochs)
	diverged := math.IsNaN(observed.CleanLoss) || math.IsInf(observed.CleanLoss, 0) ||
		observed.CleanLoss > 10*clean.CleanLoss
	if !diverged {
		t.Fatalf("unguarded run did not diverge at rate %g: clean loss %v (fault-free %v)",
			rate, observed.CleanLoss, clean.CleanLoss)
	}
	if observed.Incidents == 0 {
		t.Fatal("observe mode recorded no incidents despite injected faults")
	}
	if observed.Rollbacks != 0 {
		t.Fatal("observe mode must never roll back")
	}

	guarded := runSelfHeal(train, test, rate, guard.Enforce, epochs)
	if math.IsNaN(guarded.CleanLoss) || math.IsInf(guarded.CleanLoss, 0) {
		t.Fatalf("guarded run diverged: clean loss %v", guarded.CleanLoss)
	}
	if guarded.CleanLoss > 1.2*clean.CleanLoss {
		t.Fatalf("guarded clean loss %.4f exceeds 1.2x fault-free %.4f",
			guarded.CleanLoss, clean.CleanLoss)
	}
	if guarded.Incidents == 0 {
		t.Fatal("guarded run recorded no incidents despite injected faults")
	}

	replay := runSelfHeal(train, test, rate, guard.Enforce, epochs)
	if replay.Fingerprint != guarded.Fingerprint {
		t.Fatalf("ledger fingerprints differ across identical runs: %016x vs %016x",
			guarded.Fingerprint, replay.Fingerprint)
	}
	if replay.CleanLoss != guarded.CleanLoss || replay.Incidents != guarded.Incidents ||
		replay.Rollbacks != guarded.Rollbacks {
		t.Fatalf("replay not deterministic:\nA: %+v\nB: %+v", guarded, replay)
	}
}

// The X7 table itself must carry the claim's shape: every enforce row
// finite, at least one observe row diverged, and the replay row repeating
// the 0.1-rate fingerprint.
func TestX7TableShape(t *testing.T) {
	e, ok := Get("X7")
	if !ok {
		t.Fatal("X7 not registered")
	}
	tab := e.Run(Quick)
	if len(tab.Rows) != 8 {
		t.Fatalf("X7 rows = %d, want 8", len(tab.Rows))
	}
	var fpAtRate01, fpReplay string
	observedDiverged := false
	for _, row := range tab.Rows {
		rate, mode, diverged, fp := row[0], row[1], row[3], row[7]
		if mode == "enforce" && diverged == "yes" {
			t.Fatalf("enforce row diverged at rate %s", rate)
		}
		if mode == "observe" && diverged == "yes" {
			observedDiverged = true
		}
		if rate == "0.1" && mode == "enforce" {
			fpAtRate01 = fp
		}
		if rate == "0.1/replay" {
			fpReplay = fp
		}
	}
	if !observedDiverged {
		t.Fatal("no observe row diverged")
	}
	if fpAtRate01 == "" || fpAtRate01 != fpReplay {
		t.Fatalf("replay fingerprint %s != original %s", fpReplay, fpAtRate01)
	}
}
