package core

import "testing"

// TestKernelBenchmark checks the perf-trajectory sample the CI bench step
// records for X13: finite per-tier throughput, speedups consistent with
// the tier throughputs, and — the part that makes the numbers count — the
// fast float64 tiers bit-identical to the serial reference.
func TestKernelBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("X13 bench sample skipped in -short mode")
	}
	perf, err := KernelBenchmark(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if perf.N != 256 {
		t.Fatalf("quick scale ran n=%d, want 256", perf.N)
	}
	if perf.WallS <= 0 || perf.NaiveGFS <= 0 || perf.TiledGFS <= 0 ||
		perf.PooledGFS <= 0 || perf.BatchedGFS <= 0 || perf.F32GFS <= 0 {
		t.Fatalf("degenerate sample %+v", perf)
	}
	if got := perf.TiledGFS / perf.NaiveGFS; got < perf.TiledX*0.99 || got > perf.TiledX*1.01 {
		t.Fatalf("tiled speedup %g inconsistent with throughputs %g/%g", perf.TiledX, perf.TiledGFS, perf.NaiveGFS)
	}
	if got := perf.PooledGFS / perf.NaiveGFS; got < perf.PooledX*0.99 || got > perf.PooledX*1.01 {
		t.Fatalf("pooled speedup %g inconsistent with throughputs %g/%g", perf.PooledX, perf.PooledGFS, perf.NaiveGFS)
	}
	if !perf.BitExact {
		t.Fatal("fast float64 tiers diverged from the serial reference")
	}
}
