package core

import "testing"

// TestX11LiveIndexClaims pins the X11 acceptance criteria: across the
// drift-schedule × fault-rate matrix, the online index-maintenance engine
// holds all four invariants — (a) 100% availability with every answer
// matching the client-side oracle, (b) no validated index serving past its
// declared max search window, (c) exact counter/stats/ledger
// reconciliation with bit-identical kernel/ledger/registry replay in every
// cell, and (d) the learned latency/memory win re-attained live after
// retrains, with corrupted bursts quarantined on rollback. Every check is
// on deterministic simulated quantities, so one run suffices.
func TestX11LiveIndexClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("X11 drift matrix skipped in -short mode")
	}
	e, ok := Get("X11")
	if !ok {
		t.Fatal("X11 not registered")
	}
	tab := e.Run(Quick)
	t.Log("\n" + tab.Render())
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}

	wantChecks := []string{
		"matrix",
		"cell-steady-clean", "cell-steady-bursty",
		"cell-gradual-clean", "cell-gradual-bursty",
		"cell-flash-clean", "cell-flash-bursty",
		"invariant-a-availability", "invariant-b-window-contract",
		"invariant-c-reconcile-replay", "invariant-d-learned-win",
	}
	if len(tab.Rows) != len(wantChecks) {
		t.Fatalf("X11 produced %d rows, want %d: %v", len(tab.Rows), len(wantChecks), tab.Rows)
	}
	for i, row := range tab.Rows {
		if row[col["check"]] != wantChecks[i] {
			t.Errorf("row %d is %q, want %q", i, row[col["check"]], wantChecks[i])
			continue
		}
		if row[col["ok"]] != "yes" {
			t.Errorf("%s failed: %s", row[col["check"]], row[col["detail"]])
		}
	}
}

// TestLiveIndexBenchmark checks the perf-trajectory sample the CI bench
// step records for X11: a finite wall time, a query throughput consistent
// with the query count, and a maintenance outcome that kept availability.
func TestLiveIndexBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("X11 bench sample skipped in -short mode")
	}
	perf, err := LiveIndexBenchmark(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if perf.WallS <= 0 || perf.Queries <= 0 {
		t.Fatalf("degenerate sample %+v", perf)
	}
	if got := perf.QueriesPerS * perf.WallS; got < float64(perf.Queries)*0.99 || got > float64(perf.Queries)*1.01 {
		t.Fatalf("throughput %g inconsistent with queries=%d wall=%gs", perf.QueriesPerS, perf.Queries, perf.WallS)
	}
	if !perf.AvailOK {
		t.Fatal("bench cell lost availability")
	}
}
