// Package core ties dlsys together: it encodes the tutorial's tradeoff
// framework (which metrics each technique improves and which it sacrifices)
// and hosts the experiment registry — one runnable experiment per claimed
// tradeoff or comparison in the paper, each regenerating a results table.
// Because the tutorial contains no numbered tables or figures, these
// experiments ARE the reproduction targets; EXPERIMENTS.md records their
// expected and measured shapes.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Metric names the axes of the tutorial's tradeoff space (Part 1's
// quality-related and resource-related metrics, extended by Part 3's
// responsibility metrics).
type Metric string

// The metrics dlsys tracks.
const (
	Accuracy      Metric = "accuracy"
	TrainingTime  Metric = "training-time"
	InferenceTime Metric = "inference-time"
	Memory        Metric = "memory"
	Communication Metric = "communication"
	OptimizeTime  Metric = "optimization-time"
	Energy        Metric = "energy"
	Fairness      Metric = "fairness"
	Transparency  Metric = "transparency"
	Reliability   Metric = "reliability"
)

// Technique classifies one implemented method by the tradeoff it strikes —
// the organising framework of Part 1 of the tutorial, extended to Parts 2
// and 3.
type Technique struct {
	Name     string
	Package  string // implementing dlsys package
	Improves []Metric
	Costs    []Metric
	Section  string // tutorial section that surveys it
}

// Techniques returns the classification of every technique implemented in
// dlsys, mirroring the tutorial's framework.
func Techniques() []Technique {
	return []Technique{
		{"linear quantization", "quant", []Metric{Memory, InferenceTime}, []Metric{Accuracy}, "2.1"},
		{"k-means codebook quantization", "quant", []Metric{Memory}, []Metric{Accuracy, OptimizeTime}, "2.1"},
		{"huffman coding", "quant", []Metric{Memory}, nil, "2.1"},
		{"integer-only inference", "quant", []Metric{InferenceTime, Memory}, []Metric{Accuracy}, "2.1"},
		{"magnitude pruning", "prune", []Metric{Memory, InferenceTime}, []Metric{Accuracy, TrainingTime}, "2.1"},
		{"saliency pruning", "prune", []Metric{Memory, InferenceTime}, []Metric{Accuracy, TrainingTime}, "2.1"},
		{"knowledge distillation", "distill", []Metric{Memory, InferenceTime}, []Metric{TrainingTime}, "2.1"},
		{"snapshot ensembles", "ensemble", []Metric{TrainingTime}, []Metric{Accuracy}, "2.1"},
		{"fast geometric ensembles", "ensemble", []Metric{TrainingTime}, []Metric{Accuracy}, "2.1"},
		{"treenets", "ensemble", []Metric{TrainingTime, Memory, InferenceTime}, []Metric{Accuracy}, "2.1"},
		{"mothernets", "ensemble", []Metric{TrainingTime, Memory}, []Metric{Accuracy}, "2.1"},
		{"local sgd", "distributed", []Metric{Communication}, []Metric{Accuracy}, "2.1"},
		{"gradient sparsification", "distributed", []Metric{Communication}, []Metric{Accuracy}, "2.1"},
		{"gradient quantization", "distributed", []Metric{Communication}, []Metric{Accuracy}, "2.1"},
		{"priority propagation", "distributed", []Metric{TrainingTime}, nil, "2.1"},
		{"retry with exponential backoff", "distributed", []Metric{Reliability}, []Metric{Communication, TrainingTime}, "2.1"},
		{"backup workers (drop-slowest-k)", "distributed", []Metric{TrainingTime, Reliability}, []Metric{Accuracy}, "2.1"},
		{"deterministic fault injection", "fault", []Metric{Reliability, Transparency}, nil, "2.1"},
		{"numerical-fault guards (NaN/spike/explosion detection)", "guard", []Metric{Reliability}, []Metric{TrainingTime}, "2.3"},
		{"input schema and drift validation", "guard", []Metric{Reliability, Transparency}, []Metric{TrainingTime}, "2.3"},
		{"checkpoint rollback with optimizer reset", "guard", []Metric{Reliability}, []Metric{Memory, TrainingTime}, "2.3"},
		{"replayable incident ledger", "guard", []Metric{Transparency, Reliability}, nil, "2.3"},
		{"model-state checkpointing", "checkpoint", []Metric{Reliability}, []Metric{Memory, TrainingTime}, "2.3"},
		{"graceful pipeline degradation", "pipeline", []Metric{Reliability}, []Metric{Accuracy, Memory}, "3"},
		{"deadline-aware load shedding", "serve", []Metric{Reliability, InferenceTime}, nil, "2.1"},
		{"request retry with hedging", "serve", []Metric{Reliability, InferenceTime}, []Metric{Communication}, "2.1"},
		{"per-replica circuit breakers", "serve", []Metric{Reliability}, nil, "2.1"},
		{"tiered model fallback", "serve", []Metric{Reliability, InferenceTime}, []Metric{Accuracy}, "2.1"},
		{"flexflow-style search", "planner", []Metric{TrainingTime}, []Metric{OptimizeTime}, "2.2"},
		{"morphnet resizing", "planner", []Metric{InferenceTime, Memory}, []Metric{OptimizeTime}, "2.2"},
		{"activation checkpointing", "checkpoint", []Metric{Memory}, []Metric{TrainingTime}, "2.3"},
		{"activation offloading", "checkpoint", []Metric{Memory}, []Metric{TrainingTime}, "2.3"},
		{"learned index", "learned", []Metric{Memory, InferenceTime}, []Metric{OptimizeTime}, "3"},
		{"learned bloom filter", "learned", []Metric{Memory}, []Metric{OptimizeTime}, "3"},
		{"neural selectivity estimation", "learned", []Metric{Accuracy}, []Metric{OptimizeTime, Memory}, "3"},
		{"rl knob tuning", "learned", []Metric{OptimizeTime}, nil, "3"},
		{"learned join cost model", "learned", []Metric{OptimizeTime}, []Metric{Accuracy}, "3"},
		{"rl-guided exploration", "explore", []Metric{OptimizeTime}, nil, "3"},
		{"deep embeddings for similarity", "explore", []Metric{Accuracy}, []Metric{TrainingTime}, "3"},
		{"autoencoder compression", "explore", []Metric{Memory}, []Metric{TrainingTime, Accuracy}, "3"},
		{"reweighing", "fairness", []Metric{Fairness}, []Metric{Accuracy}, "4.1"},
		{"adversarial debiasing", "fairness", []Metric{Fairness}, []Metric{Accuracy, TrainingTime}, "4.1"},
		{"neuron ablation debiasing", "fairness", []Metric{Fairness}, []Metric{Accuracy}, "4.1"},
		{"threshold post-processing", "fairness", []Metric{Fairness}, nil, "4.1"},
		{"pca / t-sne", "interpret", []Metric{Transparency}, []Metric{OptimizeTime}, "4.2"},
		{"lime", "interpret", []Metric{Transparency}, []Metric{InferenceTime}, "4.2"},
		{"surrogate models", "interpret", []Metric{Transparency}, []Metric{Accuracy}, "4.2"},
		{"saliency / activation maximization", "interpret", []Metric{Transparency}, nil, "4.2"},
		{"intermediates store", "modelstore", []Metric{Memory, Transparency}, nil, "4.2"},
		{"carbon accounting", "green", []Metric{Energy}, nil, "4.3"},
		{"carbon-aware scheduling", "green", []Metric{Energy}, nil, "4.3"},
	}
}

// Scale selects experiment problem sizes: Quick keeps each experiment in
// the low seconds for tests and benches; Full is the CLI default.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota
	Full
)

// Table is one regenerated result table.
type Table struct {
	ID      string
	Title   string
	Claim   string // the tutorial statement the experiment checks
	Columns []string
	Rows    [][]string
	// Shape records whether the qualitative expectation held when the
	// table was generated (set by the experiment itself).
	Shape string
}

// AddRow appends a formatted row; values format with %v, floats with %.4g.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render pretty-prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, v := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Shape != "" {
		fmt.Fprintf(&b, "shape: %s\n", t.Shape)
	}
	return b.String()
}

// Experiment is one registered reproduction target.
type Experiment struct {
	ID      string
	Title   string
	Claim   string
	Section string
	Run     func(scale Scale) *Table
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs panic at init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("core: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment: the claim reproductions E1..E32 in numeric
// order, then the ablations A1..An, then the extension studies X1..Xn.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	rank := func(id string) int {
		switch id[0] {
		case 'E':
			return 0
		case 'A':
			return 1
		default:
			return 2
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank(out[i].ID), rank(out[j].ID)
		if ri != rj {
			return ri < rj
		}
		return expNum(out[i].ID) < expNum(out[j].ID)
	})
	return out
}

// Extensions returns only the X-series studies: systems the tutorial cites
// that go beyond its explicit tradeoff claims (statistics caching, entity
// matching, natural-language querying, ...).
func Extensions() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if e.ID[0] == 'X' {
			out = append(out, e)
		}
	}
	return out
}

// Claims returns only the E-series claim-reproduction experiments.
func Claims() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if e.ID[0] == 'E' {
			out = append(out, e)
		}
	}
	return out
}

// Ablations returns only the A-series design-choice ablations.
func Ablations() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if e.ID[0] == 'A' {
			out = append(out, e)
		}
	}
	return out
}

func expNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}
