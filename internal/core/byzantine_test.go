package core

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestX9ByzantineClaims pins the X9 acceptance criteria: with 1 of 8
// workers adversarial, mean aggregation's final held-out loss diverges
// (> 3x attack-free, or non-finite) under every attack kind, while
// coordinate median, trimmed mean, and Krum each finish within 1.5x of the
// attack-free baseline; NormClip alone fails under the amplified
// sign-flip; the quarantine ledger names exactly the true offender with
// zero false positives on the attack-free run; robust aggregation costs
// measurable but bounded simulated time; and two same-seed instrumented
// runs produce identical metric, trace, and ledger fingerprints. Every
// check here is on deterministic simulated quantities, so a single run
// suffices.
func TestX9ByzantineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("X9 matrix skipped in -short mode")
	}
	e, ok := Get("X9")
	if !ok {
		t.Fatal("X9 not registered")
	}
	tab := e.Run(Quick)
	t.Log("\n" + tab.Render())
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}

	// ratio parses vs_clean, mapping "inf" (divergence to non-finite loss)
	// to +Inf so "> bound" comparisons behave.
	ratio := func(row []string) float64 {
		s := row[col["vs_clean"]]
		if s == "inf" {
			return math.Inf(1)
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable vs_clean %q in row %v", s, row)
		}
		return v
	}
	byAgg := map[string][][]string{}
	for _, row := range tab.Rows {
		byAgg[row[col["aggregator"]]] = append(byAgg[row[col["aggregator"]]], row)
	}
	attackKinds := []string{"sign-flip", "scale-attack", "drift-attack", "collude"}

	// Mean diverges under every attack kind.
	for _, row := range byAgg["mean"] {
		atk := row[col["attack"]]
		if atk == "none" {
			continue
		}
		if r := ratio(row); !(r > 3) {
			t.Errorf("mean under %s: vs_clean %.4g, want > 3 (divergence)", atk, r)
		}
	}

	// The robust rules stay within 1.5x of their own attack-free baseline
	// under every attack kind.
	for _, agg := range []string{"coordmedian", "trimmed(1)", "krum(1)"} {
		rows := byAgg[agg]
		if len(rows) != 5 {
			t.Fatalf("%s has %d rows, want 5", agg, len(rows))
		}
		for _, row := range rows {
			if r := ratio(row); !(r <= 1.5) {
				t.Errorf("%s under %s: vs_clean %.4g, want <= 1.5", agg, row[col["attack"]], r)
			}
		}
	}

	// NormClip alone fails under sign-flip: its clip threshold (the mean
	// participant norm) is adversary-inflatable.
	for _, row := range byAgg["normclip"] {
		if row[col["attack"]] == "sign-flip" {
			if r := ratio(row); !(r > 1.5) {
				t.Errorf("normclip under sign-flip: vs_clean %.4g, want > 1.5 (it must fail)", r)
			}
		}
	}

	// Robust aggregation costs measurable but bounded simulated time:
	// strictly more agg_s than the mean baseline, strictly less than 1% of
	// the run's total simulated seconds.
	aggS := func(rows [][]string) (float64, float64) {
		a, err := strconv.ParseFloat(rows[0][col["agg_s"]], 64)
		if err != nil {
			t.Fatalf("unparseable agg_s %q", rows[0][col["agg_s"]])
		}
		s, err := strconv.ParseFloat(rows[0][col["sim_s"]], 64)
		if err != nil {
			t.Fatalf("unparseable sim_s %q", rows[0][col["sim_s"]])
		}
		return a, s
	}
	meanAggS, _ := aggS(byAgg["mean"])
	if meanAggS <= 0 {
		t.Errorf("mean baseline charged no aggregation time")
	}
	for _, agg := range []string{"coordmedian", "trimmed(1)", "krum(1)"} {
		a, s := aggS(byAgg[agg])
		if a <= meanAggS {
			t.Errorf("%s agg_s %.3g not measurably above mean's %.3g", agg, a, meanAggS)
		}
		if a >= 0.01*s {
			t.Errorf("%s agg_s %.3g exceeds 1%% of sim_s %.3g — overhead not bounded", agg, a, s)
		}
	}

	// Quarantine: exactly the true offender under every attack kind, and
	// zero quarantines (no false positives) on the attack-free run.
	repRows := byAgg["rep/coordmedian"]
	if len(repRows) != 5 {
		t.Fatalf("rep/coordmedian has %d rows, want 5", len(repRows))
	}
	for _, row := range repRows {
		atk := row[col["attack"]]
		offenders := row[col["offenders"]]
		quar := row[col["quar"]]
		if atk == "none" {
			if quar != "0" || offenders != "" {
				t.Errorf("attack-free run quarantined %q (%s events) — false positives", offenders, quar)
			}
			continue
		}
		if offenders != "7" {
			t.Errorf("quarantine under %s named %q, want exactly the adversary \"7\"", atk, offenders)
		}
		if quar == "0" {
			t.Errorf("quarantine under %s recorded no events", atk)
		}
	}
	seen := map[string]bool{}
	for _, row := range repRows {
		seen[row[col["attack"]]] = true
	}
	for _, atk := range attackKinds {
		if !seen[atk] {
			t.Errorf("quarantine rows missing attack kind %s", atk)
		}
	}

	// Replay: the two instrumented same-seed runs carry identical
	// metric:trace:ledger fingerprint triples.
	var replays []string
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[col["aggregator"]], "replay/") {
			replays = append(replays, row[col["fingerprint"]])
		}
	}
	if len(replays) != 2 {
		t.Fatalf("want 2 replay rows, got %d", len(replays))
	}
	if replays[0] != replays[1] {
		t.Errorf("same-seed runs produced different fingerprints:\n%s\n%s", replays[0], replays[1])
	}
	if parts := strings.Split(replays[0], ":"); len(parts) != 3 {
		t.Errorf("fingerprint %q is not a metric:trace:ledger triple", replays[0])
	}
}
