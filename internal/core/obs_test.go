package core

import (
	"strconv"
	"testing"
)

// TestX8ObservabilityClaims pins the three X8 acceptance criteria: every
// instrumented scenario replays with bit-identical metric and trace
// fingerprints, every counter reconciles exactly with its subsystem's own
// ledger, and instrumentation overhead stays under 5% on the
// compute-dominated experiment paths. Fingerprint and reconciliation checks
// are deterministic and asserted on every attempt; the overhead column is a
// wall-clock measurement, so a row only needs to land under the bound on one
// of a few attempts to absorb scheduler noise.
func TestX8ObservabilityClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("X8 replay skipped in -short mode")
	}
	e, ok := Get("X8")
	if !ok {
		t.Fatal("X8 not registered")
	}

	const (
		attempts      = 3
		overheadBound = 5.0 // percent, per the X8 claim
	)
	overheadOK := map[string]bool{}
	var scenarios []string
	for attempt := 0; attempt < attempts; attempt++ {
		tab := e.Run(Quick)
		if attempt == 0 {
			t.Log("\n" + tab.Render())
		}
		col := map[string]int{}
		for i, c := range tab.Columns {
			col[c] = i
		}
		if len(tab.Rows) != 5 {
			t.Fatalf("X8 produced %d rows, want 5 scenarios", len(tab.Rows))
		}
		allUnder := true
		for _, row := range tab.Rows {
			name := row[col["scenario"]]
			if attempt == 0 {
				scenarios = append(scenarios, name)
			}
			// Deterministic claims: hold on every single run.
			if row[col["replay"]] != "yes" {
				t.Fatalf("%s did not replay bit-identically:\n%s", name, tab.Render())
			}
			if row[col["reconciled"]] != "yes" {
				t.Fatalf("%s counters did not reconcile with the subsystem ledger:\n%s", name, tab.Render())
			}
			if spans, err := strconv.Atoi(row[col["spans"]]); err != nil || spans <= 0 {
				t.Fatalf("%s recorded no spans (%q)", name, row[col["spans"]])
			}
			for _, fp := range []string{"metric_fp", "trace_fp"} {
				v := row[col[fp]]
				if len(v) != 16 || v == "0000000000000000" {
					t.Fatalf("%s has an implausible %s %q", name, fp, v)
				}
			}
			// Noisy claim: under the bound on at least one attempt.
			pct, err := strconv.ParseFloat(row[col["overhead_pct"]], 64)
			if err != nil {
				t.Fatalf("%s overhead unparsable: %v", name, err)
			}
			if pct < overheadBound {
				overheadOK[name] = true
			}
			if !overheadOK[name] {
				allUnder = false
			}
		}
		if allUnder {
			return
		}
	}
	for _, name := range scenarios {
		if !overheadOK[name] {
			t.Fatalf("%s overhead stayed at or above %.1f%% across %d attempts", name, overheadBound, attempts)
		}
	}
}

// TestExperimentReplayDeterminism runs the fault/serving/self-healing
// experiments twice in-process and asserts the rendered tables are
// byte-identical — the regression guard for the determinism the whole
// observability layer is built on. Any hidden global state, map-order
// dependence, or wall-clock leakage in these paths shows up here as a diff.
func TestExperimentReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replay sweep skipped in -short mode")
	}
	for _, id := range []string{"X5", "X6", "X7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Get(id)
			if !ok {
				t.Fatalf("%s not registered", id)
			}
			first := e.Run(Quick).Render()
			second := e.Run(Quick).Render()
			if first != second {
				t.Fatalf("%s is not replay-deterministic:\n--- first ---\n%s\n--- second ---\n%s", id, first, second)
			}
		})
	}
}
