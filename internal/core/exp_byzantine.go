package core

import (
	"fmt"
	"math"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/distributed"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/robust"
)

// X9 studies Byzantine-robust distributed training: an aggregator × attack
// matrix with 1 of 8 workers adversarial. The attacks (sign-flip, scale,
// stealthy drift, coordinated collusion) are all finite-valued, so they
// slip past the numerical guards of X6 — the plain mean diverges under
// every one of them, while coordinate median, trimmed mean, and Krum stay
// within a small factor of the attack-free loss. Norm clipping is the
// cautionary tale: its clip threshold is the mean participant norm, which
// the adversary inflates, so it fails under the amplified sign-flip. A
// reputation tracker (EMA of distance-to-aggregate) quarantines exactly
// the true offender with zero false positives on attack-free runs, and the
// whole scenario — metrics, traces, quarantine ledger — replays
// bit-identically under the same seed.

func init() {
	register(Experiment{
		ID: "X9", Section: "3",
		Title: "Byzantine-robust distributed training",
		Claim: "With 1 of 8 workers adversarial, mean aggregation diverges under every finite-valued attack while coordinate median, trimmed mean, and Krum stay near the attack-free loss; reputation-based quarantine identifies exactly the true offenders; runs replay bit-identically",
		Run:   runX9,
	})
}

// x9LossFloor keeps vs_clean ratios meaningful when the attack-free loss
// is very small.
const x9LossFloor = 0.02

func runX9(scale Scale) *Table {
	n, epochs := 480, 8
	if scale == Full {
		n, epochs = 1600, 16
	}
	rng := rand.New(rand.NewSource(190))
	ds := data.GaussianMixture(rng, n, 6, 3, 3.2)
	train, test := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, 3)
	testY := nn.OneHot(test.Labels, 3)
	arch := nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3}

	const adversary = 7 // worker 0 stays honest: it reports EpochLoss

	attacks := []struct {
		name string
		kind fault.Kind
	}{
		{"none", 0},
		{"sign-flip", fault.KindSignFlip},
		{"scale-attack", fault.KindScaleAttack},
		{"drift-attack", fault.KindDriftAttack},
		{"collude", fault.KindCollude},
	}
	aggregators := []robust.Aggregator{
		robust.Mean{}, robust.CoordMedian{}, robust.TrimmedMean{Trim: 1},
		robust.Krum{F: 1}, robust.NormClip{},
	}

	base := func(kind fault.Kind, agg robust.Aggregator, rep *robust.ReputationConfig) distributed.Config {
		cfg := distributed.Config{
			Workers: 8, Arch: arch, Epochs: epochs, BatchSize: 16, LR: 0.1,
			AveragePeriod: 1, Aggregator: agg, Reputation: rep,
		}
		if kind != 0 {
			cfg.Fault = fault.Byzantine(192, kind, adversary)
			// Amplify the scale and drift attacks past the point a 1/8
			// dilution absorbs: at the defaults the mean merely takes a
			// large-but-stable step, which understates the threat the
			// robust rules are defending against.
			cfg.Fault.ScaleAttackFactor = 1e4
			cfg.Fault.DriftAttackBias = 6
		}
		return cfg
	}
	// heldOut scores the trained model on clean held-out data; a wrecked
	// model shows up as a large or non-finite loss.
	heldOut := func(net *nn.Network) float64 {
		tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewSGD(0), rand.New(rand.NewSource(1)))
		return tr.ComputeGrad(test.X, testY)
	}

	t := &Table{ID: "X9", Title: "Byzantine-robust distributed training",
		Claim:   "mean diverges under every attack at f=1/8; median/trimmed/krum stay near attack-free; normclip fails under sign-flip; quarantine names exactly the offender; runs replay bit-identically",
		Columns: []string{"aggregator", "attack", "loss", "vs_clean", "acc", "quar", "offenders", "fingerprint", "agg_s", "sim_s"}}

	// Phase 1: aggregator × attack matrix, no reputation tracker — the
	// aggregation rule alone carries the defence.
	for _, agg := range aggregators {
		var clean float64
		for _, atk := range attacks {
			net, stats, err := distributed.Train(191, train.X, y, base(atk.kind, agg, nil))
			if err != nil {
				t.AddRow(agg.Name(), atk.name, "err", err.Error(), "-", "-", "-", "-", "-", "-")
				continue
			}
			loss := heldOut(net)
			if atk.name == "none" {
				clean = math.Max(loss, x9LossFloor)
			}
			ratio := loss / clean
			vs := fmt.Sprintf("%.4g", ratio)
			if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
				vs = "inf"
			}
			t.AddRow(agg.Name(), atk.name, loss, vs,
				net.Accuracy(test.X, test.Labels), "-", "-", "-",
				fmt.Sprintf("%.8g", stats.AggSeconds),
				fmt.Sprintf("%.8g", stats.SimSeconds))
		}
	}

	// Phase 2: reputation-based quarantine under coordinate median. The
	// ledger must name exactly the adversary under every attack kind, and
	// nobody on the attack-free run.
	for _, atk := range attacks {
		_, stats, err := distributed.Train(191, train.X, y, base(atk.kind, robust.CoordMedian{}, &robust.ReputationConfig{}))
		label := "rep/coordmedian"
		if err != nil {
			t.AddRow(label, atk.name, "err", err.Error(), "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(label, atk.name, "-", "-", "-",
			stats.Quarantines, stats.Quarantine.OffenderString(),
			fmt.Sprintf("%016x", stats.Quarantine.Fingerprint()), "-", "-")
	}

	// Phase 3: replay determinism. The same instrumented scenario runs
	// twice; metric, trace, and ledger fingerprints must all match.
	for i := 1; i <= 2; i++ {
		h := obs.NewHandle()
		cfg := base(fault.KindSignFlip, robust.CoordMedian{}, &robust.ReputationConfig{})
		cfg.Obs = h
		_, stats, err := distributed.Train(191, train.X, y, cfg)
		label := fmt.Sprintf("replay/%d", i)
		if err != nil {
			t.AddRow(label, "sign-flip", "err", err.Error(), "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(label, "sign-flip", "-", "-", "-",
			stats.Quarantines, stats.Quarantine.OffenderString(),
			fmt.Sprintf("%016x:%016x:%016x",
				h.Reg.Fingerprint(), h.Tracer.Fingerprint(), stats.Quarantine.Fingerprint()),
			"-", "-")
	}

	t.Shape = "mean's vs_clean exceeds 3x (or inf) under every attack; coordmedian, trimmed, and krum stay within 1.5x; normclip exceeds 1.5x under sign-flip; quarantine offenders are exactly the adversary with none on attack-free runs; both replay fingerprints match; robust sim_s stays within a small factor of mean's"
	return t
}
