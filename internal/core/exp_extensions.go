package core

import (
	"math/rand"

	"dlsys/internal/db"
	"dlsys/internal/green"
	"dlsys/internal/match"
	"dlsys/internal/nlq"
)

// The X-series implements systems the tutorial cites around its central
// claims: Data-Canopy-style statistics caching (exploration, §3), learned
// entity matching (data integration, §3), and natural-language querying
// (§3). Each is compared against the natural classical baseline.

func init() {
	register(Experiment{
		ID: "X1", Section: "3",
		Title: "Statistics cache for exploratory sessions (Data Canopy)",
		Claim: "Chunked basic aggregates let overlapping exploratory queries reuse work, cutting rows scanned by multiples",
		Run:   runX1,
	})
	register(Experiment{
		ID: "X2", Section: "3",
		Title: "Learned entity matching vs similarity-threshold rule",
		Claim: "A classifier over per-attribute similarities learns attribute reliability and beats the best uniform threshold",
		Run:   runX2,
	})
	register(Experiment{
		ID: "X4", Section: "4.3",
		Title: "Temporal carbon shifting (follow the renewables)",
		Claim: "Deferring flexible jobs into the grid's clean hours cuts emissions without violating deadlines",
		Run:   runX4,
	})
	register(Experiment{
		ID: "X3", Section: "3",
		Title: "Natural-language querying of the column store",
		Claim: "A learned intent parser handles paraphrases and synonyms that keyword matching cannot",
		Run:   runX3,
	})
}

func runX1(scale Scale) *Table {
	n := 50000
	queries := 60
	if scale == Full {
		n = 400000
		queries = 200
	}
	rng := rand.New(rand.NewSource(130))
	tab := db.NewTable("t", "x", "y")
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		tab.Append(x, 0.8*x+0.2*rng.NormFloat64())
	}
	t := &Table{ID: "X1", Title: "Statistics cache", Claim: "work reuse across overlapping queries",
		Columns: []string{"queries_so_far", "canopy_rows_scanned", "naive_rows_scanned", "saving"}}
	c, err := db.NewCanopy(tab, 512)
	if err != nil {
		panic(err) // positive chunk size
	}
	var naive int64
	for q := 1; q <= queries; q++ {
		lo := rng.Intn(n / 2)
		hi := lo + n/3
		c.Mean("x", lo, hi)
		db.NaiveMean(tab, "x", lo, hi, &naive)
		if q == queries/4 || q == queries/2 || q == queries {
			t.AddRow(q, c.RowsScanned(), naive, float64(naive)/float64(c.RowsScanned()))
		}
	}
	t.Shape = "the saving factor grows as the session proceeds and chunks get reused"
	return t
}

func runX2(scale Scale) *Table {
	entities := 800
	if scale == Full {
		entities = 4000
	}
	rng := rand.New(rand.NewSource(131))
	cfg := match.CorpusConfig{
		Entities:    entities,
		Attrs:       4,
		NoiseByAttr: []float64{0.05, 0.4, 1.5, 6.0},
		MissingRate: 0.15,
	}
	train := match.GenerateCorpus(rng, cfg)
	test := match.GenerateCorpus(rng, cfg)
	xTrain, yTrain := match.Pairs(rng, train, 3)
	xTest, yTest := match.Pairs(rng, test, 3)

	m := match.TrainMatcher(rand.New(rand.NewSource(132)), xTrain, yTrain, 20)
	rule := match.FitRule(xTrain, yTrain, cfg.Attrs)

	t := &Table{ID: "X2", Title: "Entity matching", Claim: "learned similarity weighting beats uniform thresholds",
		Columns: []string{"matcher", "test_f1"}}
	t.AddRow("learned (MLP over similarities)", match.F1(m.Predict(xTest), yTest))
	t.AddRow("best-uniform-threshold rule", match.F1(rule.Predict(xTest), yTest))
	t.Shape = "learned F1 clearly above the tuned uniform rule under heterogeneous attribute noise"
	return t
}

func runX3(scale Scale) *Table {
	perIntent := 25
	if scale == Full {
		perIntent = 60
	}
	s := nlq.Schema{
		Columns: []string{"salary", "age"},
		Synonyms: map[string][]string{
			"salary": {"salary", "pay", "income", "wage"},
			"age":    {"age", "years"},
		},
	}
	train := nlq.GenerateUtterances(rand.New(rand.NewSource(133)), s, perIntent)
	test := nlq.GenerateUtterances(rand.New(rand.NewSource(134)), s, 8)
	p := nlq.TrainParser(rand.New(rand.NewSource(135)), s, train, 40)
	kb := &nlq.KeywordBaseline{Schema: s}

	t := &Table{ID: "X3", Title: "NL querying", Claim: "learned parser handles paraphrases",
		Columns: []string{"parser", "exact_parse_accuracy"}}
	t.AddRow("learned intent classifier", nlq.Accuracy(p.Parse, test))
	t.AddRow("keyword baseline", nlq.Accuracy(kb.Parse, test))
	t.Shape = "learned parser near-perfect on held-out paraphrases; keyword matcher fails on synonyms"
	return t
}

func runX4(scale Scale) *Table {
	curve := green.DiurnalCurve(green.MixedUS, 0.6)
	jobs := []green.DeferrableJob{
		{Name: "nightly-train", DurationHours: 3, DeadlineHour: 24, EnergyKWh: 50},
		{Name: "embedding-refresh", DurationHours: 2, DeadlineHour: 16, EnergyKWh: 20},
		{Name: "batch-eval", DurationHours: 1, DeadlineHour: 20, EnergyKWh: 5},
		{Name: "urgent-retrain", DurationHours: 2, DeadlineHour: 2, EnergyKWh: 8},
	}
	t := &Table{ID: "X4", Title: "Temporal carbon shifting", Claim: "clean-hour deferral cuts CO2",
		Columns: []string{"job", "deadline_h", "best_start_h", "immediate_gco2e", "shifted_gco2e"}}
	for _, j := range jobs {
		start, shifted := green.BestWindow(curve, j)
		t.AddRow(j.Name, j.DeadlineHour, start, green.WindowCO2(curve, j, 0), shifted)
	}
	imm, sh := green.TemporalSavings(curve, jobs)
	t.AddRow("TOTAL", "-", "-", imm, sh)
	t.Shape = "flexible jobs shift toward the midday solar peak; total emissions drop; the deadline-bound job stays put"
	return t
}
