package core

import (
	"fmt"
	"time"

	"dlsys/internal/fault"
	"dlsys/internal/obs"
	"dlsys/internal/serve"
)

// X14 is the overload-robustness study on the event-driven serving fleet:
// a planet-scale day (>=1.2M requests at Full scale, eight Zipf-weighted
// tenants) hit by a x4 flash crowd. With the overload control plane off
// (no retry budgets, fixed queue cap, no autoscaling, no cache) the fleet
// enters METASTABLE collapse — the queue sits past the deadline horizon,
// every admitted request expires while consuming full service capacity,
// and client retries hold the system there long after the crowd has
// passed, pinning goodput below half its pre-crowd level at an offered
// load the fleet previously served in full. With the control plane on
// (retry budgets, CoDel + deadline-infeasibility admission, weighted-fair
// tenant caps, the deterministic autoscaler, and the hot-key cache)
// goodput recovers to >=95% of the pre-crowd level within 0.4 virtual
// seconds of the crowd's end and every tenant holds an availability
// floor. The instrumented run reconciles every obs counter exactly with
// the fleet's O(1) request ledger, and the whole day — ledger, kernel
// event log, and metric registry — replays bit-identically.

func init() {
	register(Experiment{
		ID: "X14", Section: "3",
		Title: "Overload-robust planet-scale serving: retry budgets, tenant isolation, and metastable-failure recovery",
		Claim: "an event-driven fleet sweeping >=1M requests in wall seconds shows metastable collapse after a flash crowd when retry budgets are off (post-crowd goodput under half the pre-crowd level), while the full overload control plane recovers to >=95% within 0.4 virtual seconds of the crowd's end, holds per-tenant availability floors, reconciles obs counters exactly with the request ledger, and replays bit-identically",
		Run:   runX14,
	})
}

const (
	// x14CrowdStartS..x14CrowdEndS is the flash-crowd window (absolute
	// virtual seconds); arrivals compress x4 inside it.
	x14CrowdStartS = 0.5
	x14CrowdEndS   = 0.8
	// x14RecoverByS is the stated recovery bound: goodput must be back to
	// x14RecoverFrac of the pre-crowd level by this virtual time, i.e.
	// within 0.4 virtual seconds of the crowd's end.
	x14RecoverByS   = 1.2
	x14RecoverFrac  = 0.95
	x14CollapseFrac = 0.5
	// x14TenantFloor is the whole-day availability floor every tenant must
	// hold under the full control plane, crowd included.
	x14TenantFloor = 0.5
)

// x14Config is the shared overload day: 10 replicas (~25k req/s capacity
// at full batch), 20k req/s offered (rho = 0.8), and the x4 flash crowd.
// fullPlane toggles the whole control plane at once — the budgets-off arm
// also reverts to the legacy fixed queue cap, a static fleet, and no
// cache, isolating the metastability mechanism the control plane breaks.
func x14Config(requests int, fullPlane bool, h *obs.Handle) serve.FleetConfig {
	cfg := serve.FleetConfig{
		Seed: 300,
		Faults: fault.Config{
			Seed: 300,
			Schedule: []fault.Window{
				{Kind: fault.KindArrival, StartS: x14CrowdStartS, EndS: x14CrowdEndS, Factor: 4},
			},
		},
		Obs:         h,
		Tenants:     8,
		Requests:    requests,
		ArrivalRate: 20000,
		Replicas:    10,
		ServiceS:    1e-3,
		DeadlineS:   0.02,
		BackoffS:    0.01,
		BucketS:     0.05,
	}
	if fullPlane {
		cfg.Admission.Adaptive = true
		cfg.Autoscale.MaxReplicas = 20
		cfg.Autoscale.IntervalS = 0.05
		cfg.Autoscale.LagS = 0.1
		cfg.Autoscale.CooldownS = 0.1
	} else {
		cfg.Budget.Disabled = true
		cfg.Autoscale.Disabled = true
		cfg.Cache.Disabled = true
	}
	return cfg
}

func x14Requests(scale Scale) int {
	if scale == Full {
		return 1_200_000
	}
	return 200_000
}

// x14Run executes one arm and returns the result plus the kernel and
// registry fingerprints for the replay row.
func x14Run(requests int, fullPlane bool) (serve.FleetResult, uint64, uint64, int, error) {
	h := obs.NewHandle()
	f, err := serve.NewFleet(x14Config(requests, fullPlane, h))
	if err != nil {
		return serve.FleetResult{}, 0, 0, 0, err
	}
	res := f.Run()
	return res, f.Kernel().Fingerprint(), h.Reg.Fingerprint(), f.Kernel().Processed(), nil
}

// x14Reconcile checks the X8-style exact contract on the fleet: every
// counter on the run's registry equals the ledger tally.
func x14Reconcile(h *obs.Handle, res serve.FleetResult) (bool, string) {
	r := &reconciler{h: h}
	r.eq("fleet.arrived", int64(res.Requests))
	r.eq("fleet.served", int64(res.Served))
	r.eq("fleet.shed", int64(res.Shed))
	r.eq("fleet.failed", int64(res.Failed))
	r.eq("fleet.retries", int64(res.Retries))
	r.eq("fleet.retries_denied", int64(res.RetriesDenied))
	r.eq("fleet.cache_hits", int64(res.CacheHits))
	r.eq("fleet.cache_misses", int64(res.CacheMisses))
	r.eq("fleet.scale_up_replicas", int64(res.ScaleUpReplicas))
	r.eq("fleet.scale_down_replicas", int64(res.ScaleDownReplicas))
	for i, ts := range res.Tenants {
		r.eq(serve.TenantCounterName(i, "arrived"), int64(ts.Arrived))
		r.eq(serve.TenantCounterName(i, "served"), int64(ts.Served))
		r.eq(serve.TenantCounterName(i, "shed"), int64(ts.Shed))
		r.eq(serve.TenantCounterName(i, "failed"), int64(ts.Failed))
	}
	return r.result()
}

func runX14(scale Scale) *Table {
	t := &Table{ID: "X14", Title: "Overload-robust planet-scale serving",
		Claim:   "metastable collapse without retry budgets; >=95% recovery within 0.4 virtual seconds with the full control plane; per-tenant floors; exact obs/ledger reconciliation; bit-identical replay",
		Columns: []string{"check", "detail", "ok"}}
	requests := x14Requests(scale)

	start := time.Now()
	// Budgets-off arm: the metastable collapse.
	off, offKFP, _, offEvents, err := x14Run(requests, false)
	if err != nil {
		t.AddRow("run-off", err.Error(), yesNo(false))
		t.Shape = "budgets-off arm failed"
		return t
	}
	// Full-plane arm, twice: recovery plus the replay fingerprints. The
	// second run reuses the reconcile handle so the registry fingerprint
	// comparison covers every instrument.
	on1, on1KFP, on1RFP, on1Events, err1 := x14Run(requests, true)
	h2 := obs.NewHandle()
	f2, err2 := serve.NewFleet(x14Config(requests, true, h2))
	if err1 != nil || err2 != nil {
		t.AddRow("run-on", fmt.Sprintf("%v / %v", err1, err2), yesNo(false))
		t.Shape = "full-plane arm failed"
		return t
	}
	on2 := f2.Run()
	wall := time.Since(start).Seconds()

	totalReq := 3 * requests
	complete := on1.Served+on1.Shed+on1.Failed == requests &&
		off.Served+off.Shed+off.Failed == requests
	t.AddRow("scale",
		fmt.Sprintf("requests/arm=%d tenants=%d events=%d+%d wall=%.3gs sim_req_per_wall_s=%.4g",
			requests, len(on1.Tenants), offEvents, on1Events, wall, float64(totalReq)/wall),
		yesNo(complete && len(on1.Tenants) == 8))

	preOff := off.GoodputOver(0.1, x14CrowdStartS)
	postOff := off.GoodputOver(1.0, 2.0)
	t.AddRow("metastable-collapse (budgets off)",
		fmt.Sprintf("pre=%.4g req/s post=%.4g req/s offered_post=%.4g retries=%d avail=%.4g",
			preOff, postOff, off.OfferedOver(1.0, 2.0), off.Retries, off.Availability),
		yesNo(preOff >= 15000 && postOff < x14CollapseFrac*preOff))

	preOn := on1.GoodputOver(0.1, x14CrowdStartS)
	recAt := on1.RecoveredBy(x14CrowdEndS, x14RecoverFrac*preOn)
	sustained := on1.GoodputOver(x14RecoverByS, 2.0)
	t.AddRow("recovery (full control plane)",
		fmt.Sprintf("pre=%.4g req/s recovered_at=%.3gs bound=%.3gs sustained=%.4g req/s retries=%d denied=%d",
			preOn, recAt, x14RecoverByS, sustained, on1.Retries, on1.RetriesDenied),
		yesNo(recAt >= 0 && recAt <= x14RecoverByS && sustained >= x14RecoverFrac*preOn &&
			on1.RetriesDenied > 0))

	minAvail := 1.0
	for _, ts := range on1.Tenants {
		if ts.Availability < minAvail {
			minAvail = ts.Availability
		}
	}
	t.AddRow("tenant-isolation",
		fmt.Sprintf("min_tenant_availability=%.4g floor=%.4g overall=%.4g", minAvail, x14TenantFloor, on1.Availability),
		yesNo(minAvail >= x14TenantFloor))

	hitRate := 0.0
	if on1.CacheHits+on1.CacheMisses > 0 {
		hitRate = float64(on1.CacheHits) / float64(on1.CacheHits+on1.CacheMisses)
	}
	t.AddRow("elasticity+cache",
		fmt.Sprintf("scale_up=%d scale_down=%d peak=%d final=%d cache_hit_rate=%.4g",
			on1.ScaleUpReplicas, on1.ScaleDownReplicas, on1.PeakReplicas, on1.FinalReplicas, hitRate),
		yesNo(on1.ScaleUpReplicas > 0 && on1.ScaleDownReplicas > 0 &&
			on1.PeakReplicas > 10 && on1.PeakReplicas <= 20 && on1.CacheHits > 0))

	reconciled, detail := x14Reconcile(h2, on2)
	if detail == "" {
		detail = "every fleet counter exact against the request ledger"
	}
	t.AddRow("reconcile", detail, yesNo(reconciled))

	replay := on1.LedgerFP == on2.LedgerFP &&
		on1KFP == f2.Kernel().Fingerprint() &&
		on1RFP == h2.Reg.Fingerprint() &&
		offKFP != on1KFP // arms must differ: the toggle changes the day
	t.AddRow("replay",
		fmt.Sprintf("ledger=%016x kernel=%016x registry=%016x", on1.LedgerFP, on1KFP, on1RFP),
		yesNo(replay))

	t.Shape = "the budgets-off arm collapses after the crowd and stays collapsed; the full control plane recovers within the stated bound, isolates tenants, reconciles exactly, and replays bit-identically"
	return t
}

// FleetPerf is one X14 performance sample: how fast the event-driven
// fleet pushes simulated requests. The CI bench step appends these to the
// repo's performance trajectory (BENCH_X14.json).
type FleetPerf struct {
	Requests     int     `json:"requests"`
	WallS        float64 `json:"wall_s"`
	ReqPerSec    float64 `json:"req_per_sec"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// FleetBenchmark times one full-control-plane overload day and reports
// simulated-request throughput; the CI guardrail holds ReqPerSec above
// 100k.
func FleetBenchmark(scale Scale) (FleetPerf, error) {
	requests := x14Requests(scale)
	f, err := serve.NewFleet(x14Config(requests, true, nil))
	if err != nil {
		return FleetPerf{}, err
	}
	start := time.Now()
	res := f.Run()
	wall := time.Since(start).Seconds()
	events := f.Kernel().Processed()
	return FleetPerf{
		Requests:     res.Requests,
		WallS:        wall,
		ReqPerSec:    float64(res.Requests) / wall,
		Events:       events,
		EventsPerSec: float64(events) / wall,
	}, nil
}
