package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dlsys/internal/checkpoint"
	"dlsys/internal/data"
	"dlsys/internal/db"
	"dlsys/internal/distill"
	"dlsys/internal/distributed"
	"dlsys/internal/ensemble"
	"dlsys/internal/fairness"
	"dlsys/internal/learned"
	"dlsys/internal/nn"
	"dlsys/internal/quant"
)

// The A-series ablates the design choices DESIGN.md calls out: why error
// feedback, why mixed precision, why DP checkpoint placement, which
// temperature, how many RMI leaves, how large a snapshot cycle, which
// fairness pre-processing.

func init() {
	register(Experiment{
		ID: "A1", Section: "2.1",
		Title: "Ablation: mixed-precision vs uniform quantization at equal budget",
		Claim: "Spending a byte budget unevenly across layers (sensitivity-driven) matches or beats the best uniform width",
		Run:   runA1,
	})
	register(Experiment{
		ID: "A2", Section: "2.1",
		Title: "Ablation: error feedback for top-k gradient compression",
		Claim: "Without the error-feedback residual, aggressive sparsification loses information and accuracy",
		Run:   runA2,
	})
	register(Experiment{
		ID: "A3", Section: "2.1",
		Title: "Ablation: distillation temperature",
		Claim: "Moderate temperatures (2-5) transfer dark knowledge best; T=1 reduces to hard labels",
		Run:   runA3,
	})
	register(Experiment{
		ID: "A4", Section: "3",
		Title: "Ablation: RMI second-level model count",
		Claim: "More leaves shrink search windows at linear memory cost — the index's central tuning knob",
		Run:   runA4,
	})
	register(Experiment{
		ID: "A5", Section: "2.3",
		Title: "Ablation: checkpointing strategies across network depth",
		Claim: "Store-all memory grows linearly with depth, sqrt(n) sublinearly; the DP plan dominates at every depth",
		Run:   runA5,
	})
	register(Experiment{
		ID: "A6", Section: "3",
		Title: "Ablation: Bloom filter bits/key vs false-positive rate",
		Claim: "Measured FPR tracks the theoretical (1-e^{-kn/m})^k curve",
		Run:   runA6,
	})
	register(Experiment{
		ID: "A7", Section: "2.1",
		Title: "Ablation: snapshot-ensemble cycle length",
		Claim: "Too-short cycles yield correlated snapshots; the budget divides best into a handful of cycles",
		Run:   runA7,
	})
	register(Experiment{
		ID: "A9", Section: "2",
		Title: "Ablation: vectorized vs tuple-at-a-time query execution",
		Claim: "Batch (vectorized) execution removes per-tuple interpretation overhead — the DB technique the tutorial proposes carrying into DL pipelines",
		Run:   runA9,
	})
	register(Experiment{
		ID: "A8", Section: "4.1",
		Title: "Ablation: reweighing vs preferential sampling",
		Claim: "Weight-based and sampling-based pre-processing achieve similar parity gains",
		Run:   runA8,
	})
}

func runA1(scale Scale) *Table {
	rng := rand.New(rand.NewSource(101))
	ds := data.GaussianMixture(rng, 2000, 6, 3, 2.5)
	train, test := ds.Split(rng, 0.6)
	cfg := nn.MLPConfig{In: 6, Hidden: []int{32, 32}, Out: 3}
	net := nn.NewMLP(rng, cfg)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(train.X, nn.OneHot(train.Labels, 3), nn.TrainConfig{Epochs: 30, BatchSize: 32})

	t := &Table{ID: "A1", Title: "Mixed vs uniform precision", Claim: "mixed >= uniform at equal budget",
		Columns: []string{"budget_frac_of_8bit", "mixed_acc", "uniform_acc", "mixed_bytes", "uniform_bytes"}}
	full := quant.UniformAssignment(net, 8).Bytes(net)
	for _, frac := range []float64{0.6, 0.45, 0.3} {
		budget := int64(float64(full) * frac)
		mAcc, uAcc, mB, uB, err := quant.MixedVsUniform(
			rand.New(rand.NewSource(102)), net, cfg, nn.NewSoftmaxCrossEntropy(),
			train.X, nn.OneHot(train.Labels, 3), test.X, test.Labels, budget, []int{8, 4, 2})
		if err != nil {
			t.AddRow(frac, "err", "err", 0, 0)
			continue
		}
		t.AddRow(frac, mAcc, uAcc, mB, uB)
	}
	t.Shape = "mixed accuracy >= uniform (within noise) at every budget; clearly ahead at tight budgets"
	return t
}

func runA2(scale Scale) *Table {
	train, test, cfg, epochs := benchData(scale, 103)
	y := nn.OneHot(train.Labels, cfg.Out)
	t := &Table{ID: "A2", Title: "Error feedback ablation", Claim: "EF preserves convergence under sparsity",
		Columns: []string{"topk", "with_ef_acc", "without_ef_acc"}}
	for _, topK := range []float64{0.10, 0.02, 0.005} {
		run := func(noEF bool) float64 {
			net, _, err := distributed.Train(104, train.X, y, distributed.Config{
				Workers: 4, Arch: cfg, Epochs: epochs, BatchSize: 16, LR: 0.1,
				AveragePeriod: 1, TopK: topK, NoErrorFeedback: noEF,
			})
			if err != nil {
				return math.NaN()
			}
			return net.Accuracy(test.X, test.Labels)
		}
		t.AddRow(fmt.Sprintf("%.1f%%", topK*100), run(false), run(true))
	}
	t.Shape = "with-EF accuracy >= without-EF, and the gap grows as top-k tightens"
	return t
}

func runA3(scale Scale) *Table {
	rng := rand.New(rand.NewSource(105))
	n := 1200
	if scale == Full {
		n = 4800
	}
	ds := data.GaussianMixture(rng, n, 8, 4, 2.2)
	train, test := ds.Split(rng, 0.8)
	cfg := nn.MLPConfig{In: 8, Hidden: []int{64, 64}, Out: 4}
	teacher := trainRef(train, cfg, 40, 106)
	teacherHard := nn.OneHot(teacher.Predict(train.X), cfg.Out)

	t := &Table{ID: "A3", Title: "Distillation temperature", Claim: "moderate T transfers best",
		Columns: []string{"T", "student_acc", "teacher_agreement"}}
	for _, T := range []float64{1, 2, 3, 5, 10} {
		student := nn.NewMLP(rand.New(rand.NewSource(107)), nn.MLPConfig{In: 8, Hidden: []int{8}, Out: 4})
		distill.Distill(rand.New(rand.NewSource(108)), teacher, student, train.X, teacherHard, distill.Config{
			Alpha: 0.2, T: T, Epochs: 40, BatchSize: 32, LR: 0.01,
		})
		t.AddRow(T, student.Accuracy(test.X, test.Labels), distill.Agreement(teacher, student, test.X))
	}
	t.Shape = "agreement/accuracy peak at moderate temperatures"
	return t
}

func runA4(scale Scale) *Table {
	n := 100000
	if scale == Full {
		n = 500000
	}
	rng := rand.New(rand.NewSource(109))
	keys, err := data.GenerateKeys(rng, data.Lognormal, n)
	if err != nil {
		panic(err) // supported distribution
	}
	t := &Table{ID: "A4", Title: "RMI leaves", Claim: "leaves trade memory for window size",
		Columns: []string{"leaves", "memory_bytes", "max_window", "all_found"}}
	for _, leaves := range []int{8, 64, 512, 4096} {
		idx, err := learned.BuildRMI(keys, leaves)
		if err != nil {
			panic(err) // keys generated non-empty, leaves positive
		}
		found := true
		for i := 0; i < len(keys); i += 997 {
			if _, ok := idx.Lookup(keys, keys[i]); !ok {
				found = false
				break
			}
		}
		t.AddRow(leaves, idx.MemoryBytes(), idx.MaxSearchWindow(), found)
	}
	t.Shape = "memory grows ~linearly in leaves while the worst search window shrinks"
	return t
}

func runA5(scale Scale) *Table {
	t := &Table{ID: "A5", Title: "Checkpointing vs depth", Claim: "sqrt memory scaling; DP dominates",
		Columns: []string{"depth", "store_all_kfloats", "sqrt_kfloats", "dp_same_budget_kfloats", "sqrt_recompute_frac", "dp_recompute_frac"}}
	for _, blocks := range []int{8, 16, 32, 64} {
		rng := rand.New(rand.NewSource(110))
		var layers []nn.Layer
		width := 32
		for i := 0; i < blocks; i++ {
			layers = append(layers,
				nn.NewDense(rng, fmt.Sprintf("fc%d", i), width, width),
				nn.NewReLU(fmt.Sprintf("relu%d", i)))
		}
		layers = append(layers, nn.NewDense(rng, "head", width, 4))
		net := nn.NewNetwork(layers...)
		cm := checkpoint.FromNetwork(net, []int{width}, 16)
		var fwd int64
		for _, c := range cm.Costs {
			fwd += c
		}
		all := checkpoint.StoreAll(len(net.Layers))
		sq := checkpoint.SqrtN(len(net.Layers))
		dp, ok := cm.OptimalPlan(cm.PeakMemory(sq))
		if !ok {
			t.AddRow(blocks, "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(blocks,
			float64(cm.PeakMemory(all))/1e3,
			float64(cm.PeakMemory(sq))/1e3,
			float64(cm.PeakMemory(dp))/1e3,
			float64(cm.RecomputeFLOPs(sq))/float64(fwd),
			float64(cm.RecomputeFLOPs(dp))/float64(fwd))
	}
	t.Shape = "store-all grows ~linearly with depth, sqrt(n) sublinearly; DP recompute <= sqrt recompute at the same peak"
	return t
}

func runA6(scale Scale) *Table {
	rng := rand.New(rand.NewSource(111))
	nKeys := 20000
	keys, err := data.GenerateKeys(rng, data.Uniform, nKeys)
	if err != nil {
		panic(err) // supported distribution
	}
	absent := data.NegativeKeys(rng, keys, 40000)
	t := &Table{ID: "A6", Title: "Bloom bits/key vs FPR", Claim: "measured tracks theory",
		Columns: []string{"bits_per_key", "k_hashes", "measured_fpr", "theoretical_fpr"}}
	for _, bpk := range []float64{4, 8, 12, 16} {
		m := uint64(bpk * float64(nKeys))
		k := int(math.Round(bpk * math.Ln2))
		if k < 1 {
			k = 1
		}
		f := db.NewBloomBits(m, k)
		for _, key := range keys {
			f.Add(key)
		}
		theory := math.Pow(1-math.Exp(-float64(k)*float64(nKeys)/float64(m)), float64(k))
		t.AddRow(bpk, k, f.MeasuredFPR(absent), theory)
	}
	t.Shape = "measured FPR within ~2x of the analytic curve at every bits/key point"
	return t
}

func runA7(scale Scale) *Table {
	// A hard task (heavy class overlap) with a tight epoch budget, so that
	// cycle length visibly matters.
	rng := rand.New(rand.NewSource(112))
	n := 900
	if scale == Full {
		n = 3600
	}
	ds := data.GaussianMixture(rng, n, 8, 6, 1.5)
	train, test := ds.Split(rng, 0.8)
	cfg := nn.MLPConfig{In: 8, Hidden: []int{32, 32}, Out: 6}
	y := nn.OneHot(train.Labels, 6)
	t := &Table{ID: "A7", Title: "Snapshot cycle length", Claim: "cycle length controls snapshot diversity",
		Columns: []string{"cycles(K)", "epochs_per_cycle", "accuracy", "mean_pairwise_disagreement"}}
	totalEpochs := 24
	for _, k := range []int{2, 4, 8, 24} {
		res := ensemble.TrainSnapshot(113, train.X, y, ensemble.TrainConfig{
			K: k, Arch: cfg, Epochs: totalEpochs, BatchSize: 32, LR: 0.02,
		})
		members := res.Committee.(*ensemble.Ensemble).Members
		var dis float64
		pairs := 0
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				dis += 1 - distill.Agreement(members[i], members[j], test.X)
				pairs++
			}
		}
		if pairs > 0 {
			dis /= float64(pairs)
		}
		t.AddRow(k, totalEpochs/k, ensemble.Accuracy(res.Committee, test.X, test.Labels), dis)
	}
	t.Shape = "shorter cycles (more snapshots) raise pairwise disagreement — they reach back into the early, weaker trajectory — while ensemble accuracy stays flat: diversity from under-converged members does not pay"
	return t
}

func runA8(scale Scale) *Table {
	train, test := censusSplit(scale, 0.8, 114)
	t := &Table{ID: "A8", Title: "Reweighing vs sampling", Claim: "both pre-processing routes shrink the gap",
		Columns: []string{"method", "parity_gap", "accuracy_on_merit"}}

	base := trainCensus(train, 115)
	r := fairness.Evaluate(base.Predict(test.X), test.TrueMerit, test.Group)
	t.AddRow("none", r.DemographicParityGap(), r.Accuracy)

	rng := rand.New(rand.NewSource(116))
	rw := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
	fairness.TrainWeighted(rng, rw, train.X, train.Labels, fairness.Reweigh(train.Labels, train.Group), 2, 20, 64, 0.01)
	r = fairness.Evaluate(rw.Predict(test.X), test.TrueMerit, test.Group)
	t.AddRow("reweighing", r.DemographicParityGap(), r.Accuracy)

	idx := fairness.PreferentialSample(rng, train.Labels, train.Group)
	res := train.Subset(idx)
	resLabels := make([]int, len(idx))
	for i, j := range idx {
		resLabels[i] = train.Labels[j]
	}
	ps := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
	nn.NewTrainer(ps, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng).
		Fit(res.X, nn.OneHot(resLabels, 2), nn.TrainConfig{Epochs: 20, BatchSize: 64})
	r = fairness.Evaluate(ps.Predict(test.X), test.TrueMerit, test.Group)
	t.AddRow("preferential-sampling", r.DemographicParityGap(), r.Accuracy)
	t.Shape = "both interventions land far below the unmitigated gap with similar accuracy"
	return t
}

func runA9(scale Scale) *Table {
	rng := rand.New(rand.NewSource(117))
	n := 200000
	if scale == Full {
		n = 1000000
	}
	tab := db.NewTable("t", "a", "b", "v")
	for i := 0; i < n; i++ {
		tab.Append(rng.Float64(), rng.Float64(), rng.NormFloat64())
	}
	preds := []db.Pred{{Col: "a", Lo: 0.2, Hi: 0.8}, {Col: "b", Lo: 0.2, Hi: 0.8}}
	t := &Table{ID: "A9", Title: "Vectorized execution", Claim: "batching removes per-tuple overhead",
		Columns: []string{"engine", "ms_per_query", "answer_mean"}}
	const reps = 5
	// Warm both paths once.
	db.VectorizedQuery(tab, db.AggMean, "v", preds)
	db.TupleAtATimeQuery(tab, db.AggMean, "v", preds)
	start := time.Now()
	var vAns float64
	for r := 0; r < reps; r++ {
		v, err := db.VectorizedQuery(tab, db.AggMean, "v", preds)
		if err != nil {
			panic(err) // fixed valid query
		}
		vAns = v
	}
	vMS := float64(time.Since(start).Microseconds()) / 1000 / reps
	start = time.Now()
	var tAns float64
	for r := 0; r < reps; r++ {
		v, err := db.TupleAtATimeQuery(tab, db.AggMean, "v", preds)
		if err != nil {
			panic(err) // fixed valid query
		}
		tAns = v
	}
	tMS := float64(time.Since(start).Microseconds()) / 1000 / reps
	t.AddRow("vectorized", vMS, vAns)
	t.AddRow("tuple-at-a-time", tMS, tAns)
	t.Shape = "identical answers; vectorized noticeably faster per query"
	return t
}
