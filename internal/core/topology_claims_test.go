package core

import (
	"strings"
	"testing"
)

// TestX12TopologyClaims pins the X12 acceptance criteria: across the
// weak-scaling matrix every topology × scenario cell converges within
// 1.5x of its n's clean all-to-all loss with churn ledgers exact, a ring
// under sustained link loss degrades to the mesh and still converges,
// ring/tree beat the mesh's simulated time per round at n ≥ 64 with the
// planner's analytic model matching the measured times, the topology
// counters reconcile exactly with obs, and the hardest cell replays
// bit-identically. Every check is on deterministic simulated quantities,
// so one run suffices.
func TestX12TopologyClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("X12 weak-scaling matrix skipped in -short mode")
	}
	e, ok := Get("X12")
	if !ok {
		t.Fatal("X12 not registered")
	}
	tab := e.Run(Quick)
	t.Log("\n" + tab.Render())
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}

	// Quick scale: 2 n values × 4 topologies × 4 scenarios convergence
	// cells, the five lettered invariants, and the per-n timing rows.
	wantInvariants := []string{
		"invariant-a-convergence", "invariant-b-degradation",
		"invariant-c-scaling", "invariant-d-reconciliation",
		"invariant-e-replay",
	}
	seen := map[string]bool{}
	conv, timing := 0, 0
	for _, row := range tab.Rows {
		cell := row[col["cell"]]
		seen[cell] = true
		switch {
		case strings.HasPrefix(cell, "conv-"):
			conv++
		case strings.HasPrefix(cell, "time-"):
			timing++
		}
		if row[col["ok"]] != "yes" {
			t.Errorf("%s failed: %s", cell, row[col["detail"]])
		}
	}
	if conv != 2*4*4 {
		t.Errorf("matrix has %d convergence cells, want 32", conv)
	}
	if timing < 2*4+1 {
		t.Errorf("matrix has %d timing rows, want per-topology rounds at both n plus the crossover", timing)
	}
	for _, inv := range wantInvariants {
		if !seen[inv] {
			t.Errorf("invariant row %q missing", inv)
		}
	}
}

// TestTopologyBenchmark checks the perf-trajectory sample the CI bench
// step records for X12: a finite wall time, a round throughput consistent
// with the round count, and a robustness outcome that converged and
// reconciled.
func TestTopologyBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("X12 bench sample skipped in -short mode")
	}
	perf, err := TopologyBenchmark(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if perf.WallS <= 0 || perf.Rounds <= 0 || perf.Workers < 8 {
		t.Fatalf("degenerate sample %+v", perf)
	}
	if got := perf.RoundsPerS * perf.WallS; got < float64(perf.Rounds)*0.99 || got > float64(perf.Rounds)*1.01 {
		t.Fatalf("throughput %g inconsistent with rounds=%d wall=%gs", perf.RoundsPerS, perf.Rounds, perf.WallS)
	}
	if perf.Joins == 0 || perf.CatchUps == 0 {
		t.Fatalf("bench cell saw no churn: %+v", perf)
	}
	if !perf.ConvergeOK || !perf.ReconcileOK {
		t.Fatalf("bench cell lost convergence or reconciliation: %+v", perf)
	}
}
