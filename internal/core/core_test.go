package core

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	claims := Claims()
	if len(claims) != 32 {
		t.Fatalf("registered %d claim experiments, want 32", len(claims))
	}
	for i, e := range claims {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Fatalf("claim %d has ID %s, want %s", i, e.ID, want)
		}
	}
	abl := Ablations()
	if len(abl) != 9 {
		t.Fatalf("registered %d ablations, want 9", len(abl))
	}
	for i, e := range abl {
		want := "A" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Fatalf("ablation %d has ID %s, want %s", i, e.ID, want)
		}
	}
	for _, e := range All() {
		if e.Title == "" || e.Claim == "" || e.Section == "" || e.Run == nil {
			t.Fatalf("%s is incompletely described", e.ID)
		}
	}
	ext := Extensions()
	if len(ext) != 13 {
		t.Fatalf("registered %d extensions, want 13", len(ext))
	}
	// Order: claims, then ablations, then extensions.
	if All()[0].ID != "E1" || All()[32].ID != "A1" || All()[41].ID != "X1" {
		t.Fatalf("ordering wrong: %s, %s, %s", All()[0].ID, All()[32].ID, All()[41].ID)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("E999"); ok {
		t.Fatal("unknown experiment should not resolve")
	}
}

func TestTechniquesCoverAllSections(t *testing.T) {
	sections := map[string]bool{}
	packages := map[string]bool{}
	for _, tech := range Techniques() {
		if tech.Name == "" || tech.Package == "" {
			t.Fatal("incomplete technique entry")
		}
		if len(tech.Improves) == 0 {
			t.Fatalf("%s improves nothing", tech.Name)
		}
		sections[tech.Section] = true
		packages[tech.Package] = true
	}
	for _, s := range []string{"2.1", "2.2", "2.3", "3", "4.1", "4.2", "4.3"} {
		if !sections[s] {
			t.Fatalf("no techniques from tutorial section %s", s)
		}
	}
	for _, p := range []string{"quant", "prune", "distill", "ensemble", "distributed",
		"planner", "checkpoint", "learned", "explore", "fairness", "interpret", "modelstore",
		"green", "fault", "pipeline", "serve"} {
		if !packages[p] {
			t.Fatalf("package %s not represented in the technique framework", p)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Claim: "c", Columns: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	out := tab.Render()
	for _, want := range []string{"X — demo", "a", "bb", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// Every experiment must run at Quick scale and produce a plausible table.
// Heavier shape assertions live in the per-package tests; here we check the
// harness end to end.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(Quick)
			if tab == nil {
				t.Fatal("nil table")
			}
			if tab.ID != e.ID {
				t.Fatalf("table ID %s != experiment ID %s", tab.ID, e.ID)
			}
			if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, r := range tab.Rows {
				if len(r) != len(tab.Columns) {
					t.Fatalf("row width %d != %d columns", len(r), len(tab.Columns))
				}
			}
			if tab.Shape == "" {
				t.Fatal("experiment did not record its expected shape")
			}
		})
	}
}

// X6's acceptance criteria must hold deterministically: at fault rate 0.2
// the fallback fleet's availability is strictly above the full-only
// fleet's at every load, breakers both open and re-close, and the served
// mix's measured accuracy degrades by a bounded amount.
func TestX6FallbackClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("X6 sweep skipped in -short mode")
	}
	e, ok := Get("X6")
	if !ok {
		t.Fatal("X6 not registered")
	}
	tab := e.Run(Quick)
	t.Log("\n" + tab.Render())
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}
	f := func(row []string, name string) float64 {
		v, err := strconv.ParseFloat(row[col[name]], 64)
		if err != nil {
			t.Fatalf("column %s unparsable in row %v: %v", name, row, err)
		}
		return v
	}
	avail := map[string]map[bool]float64{} // "rate/load" -> fallback -> availability
	var opened, reclosed float64
	for _, row := range tab.Rows {
		key := row[col["fault_rate"]] + "/" + row[col["load"]]
		fb := row[col["fallback"]] == "true"
		if avail[key] == nil {
			avail[key] = map[bool]float64{}
		}
		avail[key][fb] = f(row, "avail")
		if fb {
			opened += f(row, "br_open")
			reclosed += f(row, "br_close")
			if acc := f(row, "served_acc"); acc < 0.70 || acc > 1 {
				t.Fatalf("served-mix accuracy %.3f out of the bounded range at %s", acc, key)
			}
		}
	}
	for _, load := range []string{"0.6", "1.3"} {
		key := "0.2/" + load
		if avail[key][true] <= avail[key][false] {
			t.Fatalf("at %s fallback availability %.3f not strictly above full-only %.3f",
				key, avail[key][true], avail[key][false])
		}
	}
	if opened == 0 || reclosed == 0 {
		t.Fatalf("breakers must both open and re-close: opened %v reclosed %v", opened, reclosed)
	}
}
