package match

import (
	"math"
	"math/rand"
	"testing"
)

func testCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Entities: 800,
		Attrs:    4,
		// Attribute 0 is highly reliable, attribute 3 is junk.
		NoiseByAttr: []float64{0.05, 0.4, 1.5, 6.0},
		MissingRate: 0.15,
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := GenerateCorpus(rng, testCorpusConfig())
	if len(c.A) != 800 || len(c.B) != 800 || c.NumAttrs != 4 {
		t.Fatalf("corpus shape wrong: %d/%d/%d", len(c.A), len(c.B), c.NumAttrs)
	}
	// Source B has some missing values; source A none.
	missing := 0
	for _, r := range c.B {
		for _, v := range r.Attrs {
			if math.IsNaN(v) {
				missing++
			}
		}
	}
	if missing == 0 {
		t.Fatal("no missing values injected")
	}
}

func TestPairFeaturesRanges(t *testing.T) {
	a := Record{Attrs: []float64{1, 2}}
	b := Record{Attrs: []float64{1, math.NaN()}}
	f := PairFeatures(a, b)
	if len(f) != 4 {
		t.Fatalf("feature len %d", len(f))
	}
	if f[0] != 1 { // identical attribute → similarity 1
		t.Fatalf("identical attr similarity %g", f[0])
	}
	if f[2] != 0.5 || f[3] != 1 {
		t.Fatalf("missing attr encoding %v", f)
	}
	for _, v := range f {
		if v < 0 || v > 1 {
			t.Fatalf("feature out of range: %v", f)
		}
	}
}

func TestF1HandComputed(t *testing.T) {
	preds := []int{1, 1, 0, 0}
	labels := []int{1, 0, 1, 0}
	// tp=1 fp=1 fn=1 → P=R=0.5 → F1=0.5.
	if got := F1(preds, labels); got != 0.5 {
		t.Fatalf("F1 %g", got)
	}
	if F1([]int{0, 0}, []int{1, 1}) != 0 {
		t.Fatal("no-TP F1 should be 0")
	}
}

func TestLearnedMatcherBeatsUniformRule(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := testCorpusConfig()
	train := GenerateCorpus(rng, cfg)
	test := GenerateCorpus(rng, cfg)

	xTrain, yTrain := Pairs(rng, train, 3)
	xTest, yTest := Pairs(rng, test, 3)

	m := TrainMatcher(rand.New(rand.NewSource(3)), xTrain, yTrain, 20)
	learnedF1 := F1(m.Predict(xTest), yTest)

	rule := FitRule(xTrain, yTrain, cfg.Attrs)
	ruleF1 := F1(rule.Predict(xTest), yTest)

	t.Logf("F1: learned %.3f, uniform rule %.3f", learnedF1, ruleF1)
	if learnedF1 <= ruleF1 {
		t.Fatalf("learned matcher (%.3f) should beat the uniform rule (%.3f) under heterogeneous noise", learnedF1, ruleF1)
	}
	if learnedF1 < 0.85 {
		t.Fatalf("learned matcher F1 %.3f too low", learnedF1)
	}
}

func TestRuleBaselineIsBestUniformThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := GenerateCorpus(rng, testCorpusConfig())
	x, y := Pairs(rng, c, 3)
	rule := FitRule(x, y, 4)
	base := F1(rule.Predict(x), y)
	// Any other threshold should not beat the fitted one on train data.
	for _, th := range []float64{0.2, 0.4, 0.6, 0.8} {
		alt := &RuleBaseline{Threshold: th, attrs: 4}
		if F1(alt.Predict(x), y) > base+1e-9 {
			t.Fatalf("threshold %g beats the fitted rule", th)
		}
	}
}
