// Package match implements learned entity matching (Part 2's "enhancing
// data integration through more accurate entity matching", Mudgal et al.):
// record pairs from two dirty sources are featurised by per-attribute
// similarities and classified as match/non-match by a small network, which
// learns per-attribute reliability weights a hand-tuned similarity
// threshold cannot express.
package match

import (
	"math"
	"math/rand"
	"sort"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Record is one source's view of an entity: numeric attributes, some
// possibly missing (NaN).
type Record struct {
	EntityID int // ground truth, used only for labelling pairs
	Attrs    []float64
}

// Corpus is a pair of sources describing an overlapping entity set.
type Corpus struct {
	A, B     []Record
	NumAttrs int
}

// CorpusConfig controls synthetic corpus generation.
type CorpusConfig struct {
	Entities int
	Attrs    int
	// NoiseByAttr scales per-attribute corruption: some attributes are
	// reliable, others noisy — the structure the learned matcher exploits.
	NoiseByAttr []float64
	// MissingRate is the probability an attribute is NaN in source B.
	MissingRate float64
}

// GenerateCorpus creates two sources over the same entities with
// heterogeneous attribute noise.
func GenerateCorpus(rng *rand.Rand, cfg CorpusConfig) *Corpus {
	if len(cfg.NoiseByAttr) != cfg.Attrs {
		panic("match: NoiseByAttr length must equal Attrs")
	}
	c := &Corpus{NumAttrs: cfg.Attrs}
	for e := 0; e < cfg.Entities; e++ {
		truth := make([]float64, cfg.Attrs)
		for a := range truth {
			truth[a] = rng.NormFloat64() * 3
		}
		mk := func(missing bool) Record {
			r := Record{EntityID: e, Attrs: make([]float64, cfg.Attrs)}
			for a := range r.Attrs {
				r.Attrs[a] = truth[a] + cfg.NoiseByAttr[a]*rng.NormFloat64()
				if missing && rng.Float64() < cfg.MissingRate {
					r.Attrs[a] = math.NaN()
				}
			}
			return r
		}
		c.A = append(c.A, mk(false))
		c.B = append(c.B, mk(true))
	}
	return c
}

// PairFeatures encodes a candidate record pair: per-attribute |difference|
// squashed to (0, 1] similarity, plus a missing indicator per attribute.
func PairFeatures(a, b Record) []float64 {
	f := make([]float64, 2*len(a.Attrs))
	for i := range a.Attrs {
		if math.IsNaN(a.Attrs[i]) || math.IsNaN(b.Attrs[i]) {
			f[2*i] = 0.5 // unknown similarity
			f[2*i+1] = 1 // missing flag
			continue
		}
		f[2*i] = 1 / (1 + math.Abs(a.Attrs[i]-b.Attrs[i]))
	}
	return f
}

// Pairs samples labelled training pairs: every true match plus `negRatio`
// random non-matches per match.
func Pairs(rng *rand.Rand, c *Corpus, negRatio int) (x *tensor.Tensor, labels []int) {
	type pair struct {
		a, b  int
		label int
	}
	var ps []pair
	for i := range c.A {
		ps = append(ps, pair{i, i, 1})
		for k := 0; k < negRatio; k++ {
			j := rng.Intn(len(c.B))
			if j == i {
				continue
			}
			ps = append(ps, pair{i, j, 0})
		}
	}
	rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
	x = tensor.New(len(ps), 2*c.NumAttrs)
	labels = make([]int, len(ps))
	for r, p := range ps {
		copy(x.Row(r), PairFeatures(c.A[p.a], c.B[p.b]))
		labels[r] = p.label
	}
	return x, labels
}

// Matcher is a trained match/non-match classifier.
type Matcher struct {
	net *nn.Network
}

// TrainMatcher fits the matcher on labelled pairs.
func TrainMatcher(rng *rand.Rand, x *tensor.Tensor, labels []int, epochs int) *Matcher {
	net := nn.NewMLP(rng, nn.MLPConfig{In: x.Dim(1), Hidden: []int{16}, Out: 2})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(x, nn.OneHot(labels, 2), nn.TrainConfig{Epochs: epochs, BatchSize: 64})
	return &Matcher{net: net}
}

// Predict classifies pairs.
func (m *Matcher) Predict(x *tensor.Tensor) []int { return m.net.Predict(x) }

// RuleBaseline predicts a match when the MEAN attribute similarity exceeds
// the threshold that maximises F1 on the training pairs — the strongest
// uniform-weight rule.
type RuleBaseline struct {
	Threshold float64
	attrs     int
}

// FitRule selects the best uniform threshold on training data.
func FitRule(x *tensor.Tensor, labels []int, attrs int) *RuleBaseline {
	n := x.Dim(0)
	sims := make([]float64, n)
	for i := 0; i < n; i++ {
		sims[i] = meanSim(x.Row(i), attrs)
	}
	cands := append([]float64(nil), sims...)
	sort.Float64s(cands)
	best, bestF1 := 0.5, -1.0
	for _, th := range cands {
		preds := make([]int, n)
		for i := range preds {
			if sims[i] >= th {
				preds[i] = 1
			}
		}
		if f1 := F1(preds, labels); f1 > bestF1 {
			bestF1, best = f1, th
		}
	}
	return &RuleBaseline{Threshold: best, attrs: attrs}
}

func meanSim(features []float64, attrs int) float64 {
	var s float64
	for i := 0; i < attrs; i++ {
		s += features[2*i]
	}
	return s / float64(attrs)
}

// Predict applies the rule.
func (r *RuleBaseline) Predict(x *tensor.Tensor) []int {
	preds := make([]int, x.Dim(0))
	for i := range preds {
		if meanSim(x.Row(i), r.attrs) >= r.Threshold {
			preds[i] = 1
		}
	}
	return preds
}

// F1 computes the F1 score of binary predictions against labels.
func F1(preds, labels []int) float64 {
	var tp, fp, fn float64
	for i := range preds {
		switch {
		case preds[i] == 1 && labels[i] == 1:
			tp++
		case preds[i] == 1 && labels[i] == 0:
			fp++
		case preds[i] == 0 && labels[i] == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	p := tp / (tp + fp)
	r := tp / (tp + fn)
	return 2 * p * r / (p + r)
}
