// Package robust implements Byzantine-robust aggregation for simulated
// distributed training (internal/distributed): pluggable rules that combine
// per-worker gradient or parameter vectors while tolerating a minority of
// adversarial contributions, plus a reputation tracker that quarantines
// persistent offenders and readmits them through a probation window.
//
// The aggregators reproduce the standard robust-aggregation families:
// coordinate-wise median and trimmed mean (Yin et al., "Byzantine-Robust
// Distributed Learning"), Krum and Multi-Krum (Blanchard et al., "Machine
// Learning with Adversaries"), and norm clipping — alongside the plain mean
// baseline that a single poisoned gradient corrupts. Every aggregator is a
// deterministic pure function of its inputs (ties broken by index), so
// robust runs replay bit-identically like everything else in dlsys.
//
// Each aggregator also carries a FLOPs cost model, which the distributed
// simulator charges to its virtual clock: robustness costs measurable but
// bounded step time, and experiment X9 asserts exactly that.
package robust

import (
	"fmt"
	"math"
	"sort"

	"dlsys/internal/tensor"
)

// Aggregator combines per-worker vectors into one update. Implementations
// must be deterministic pure functions of vecs (callers pass vectors in
// worker-id order and every vector has len(out) entries) and must not
// mutate the input vectors.
type Aggregator interface {
	// Name identifies the rule in tables and ledgers.
	Name() string
	// FLOPs is the cost model charged to the simulated clock for one
	// aggregation of n vectors of dimension d.
	FLOPs(n, d int) int64
	// Aggregate writes the combined vector into out. With no input
	// vectors, out is zeroed.
	Aggregate(out []float64, vecs [][]float64)
}

func zero(out []float64) {
	for i := range out {
		out[i] = 0
	}
}

// Mean is the non-robust baseline: the plain arithmetic mean, summed in
// input order. It reproduces bit-for-bit the historical averaging of
// distributed.Train — and is corrupted by a single poisoned vector.
type Mean struct{}

// Name implements Aggregator.
func (Mean) Name() string { return "mean" }

// FLOPs implements Aggregator: one add per entry plus the divide.
func (Mean) FLOPs(n, d int) int64 { return int64(n+1) * int64(d) }

// Aggregate implements Aggregator.
func (Mean) Aggregate(out []float64, vecs [][]float64) {
	zero(out)
	if len(vecs) == 0 {
		return
	}
	for _, v := range vecs {
		for i, x := range v {
			out[i] += x
		}
	}
	n := float64(len(vecs))
	for i := range out {
		out[i] /= n
	}
}

// CoordMedian is the coordinate-wise median: each output entry is the
// median of that coordinate across workers (mean of the two middle values
// for an even count). It tolerates up to half the inputs being arbitrary.
type CoordMedian struct{}

// Name implements Aggregator.
func (CoordMedian) Name() string { return "coordmedian" }

// FLOPs implements Aggregator: a per-coordinate sort of n values.
func (CoordMedian) FLOPs(n, d int) int64 { return sortFLOPs(n) * int64(d) }

// Aggregate implements Aggregator.
func (CoordMedian) Aggregate(out []float64, vecs [][]float64) {
	zero(out)
	if len(vecs) == 0 {
		return
	}
	col := make([]float64, len(vecs))
	for i := range out {
		for w, v := range vecs {
			col[w] = v[i]
		}
		sort.Float64s(col)
		mid := len(col) / 2
		if len(col)%2 == 1 {
			out[i] = col[mid]
		} else {
			out[i] = (col[mid-1] + col[mid]) / 2
		}
	}
}

// TrimmedMean drops the Trim lowest and Trim highest values of every
// coordinate and averages the rest. Trim is clamped so at least one value
// survives; Trim <= 0 degenerates to the plain mean of the sorted column.
type TrimmedMean struct {
	Trim int
}

// Name implements Aggregator.
func (t TrimmedMean) Name() string { return fmt.Sprintf("trimmed(%d)", t.Trim) }

// FLOPs implements Aggregator: a per-coordinate sort plus the kept sum.
func (t TrimmedMean) FLOPs(n, d int) int64 { return (sortFLOPs(n) + int64(n)) * int64(d) }

// Aggregate implements Aggregator.
func (t TrimmedMean) Aggregate(out []float64, vecs [][]float64) {
	zero(out)
	if len(vecs) == 0 {
		return
	}
	n := len(vecs)
	k := t.Trim
	if k < 0 {
		k = 0
	}
	if 2*k >= n {
		k = (n - 1) / 2
	}
	col := make([]float64, n)
	for i := range out {
		for w, v := range vecs {
			col[w] = v[i]
		}
		sort.Float64s(col)
		var sum float64
		for _, x := range col[k : n-k] {
			sum += x
		}
		out[i] = sum / float64(n-2*k)
	}
}

// Krum selects the single vector whose summed squared distance to its
// n−F−2 nearest neighbours is smallest (Blanchard et al.): a vector far
// from the honest cluster cannot win. F is the assumed number of Byzantine
// workers; ties break toward the lower index.
type Krum struct {
	F int
}

// Name implements Aggregator.
func (k Krum) Name() string { return fmt.Sprintf("krum(%d)", k.F) }

// FLOPs implements Aggregator: all pairwise distances dominate.
func (k Krum) FLOPs(n, d int) int64 { return 3 * int64(n) * int64(n) * int64(d) }

// Aggregate implements Aggregator.
func (k Krum) Aggregate(out []float64, vecs [][]float64) {
	zero(out)
	if len(vecs) == 0 {
		return
	}
	best := krumOrder(vecs, k.F)[0]
	copy(out, vecs[best])
}

// MultiKrum averages the M best-scored vectors under the Krum criterion
// (in index order), trading a little of Krum's robustness for lower
// selection variance. M is clamped to [1, n].
type MultiKrum struct {
	F int
	M int
}

// Name implements Aggregator.
func (k MultiKrum) Name() string { return fmt.Sprintf("multikrum(%d,%d)", k.F, k.M) }

// FLOPs implements Aggregator.
func (k MultiKrum) FLOPs(n, d int) int64 { return 3*int64(n)*int64(n)*int64(d) + int64(k.M)*int64(d) }

// Aggregate implements Aggregator.
func (k MultiKrum) Aggregate(out []float64, vecs [][]float64) {
	zero(out)
	if len(vecs) == 0 {
		return
	}
	m := k.M
	if m < 1 {
		m = 1
	}
	if m > len(vecs) {
		m = len(vecs)
	}
	chosen := append([]int(nil), krumOrder(vecs, k.F)[:m]...)
	sort.Ints(chosen) // average in index order for determinism
	for _, w := range chosen {
		for i, x := range vecs[w] {
			out[i] += x
		}
	}
	for i := range out {
		out[i] /= float64(m)
	}
}

// krumOrder returns vector indices sorted by ascending Krum score: the sum
// of squared distances to each vector's n−f−2 nearest neighbours (clamped
// to at least one neighbour). Ties break toward the lower index.
func krumOrder(vecs [][]float64, f int) []int {
	n := len(vecs)
	m := n - f - 2
	if m < 1 {
		m = 1
	}
	if m > n-1 {
		m = n - 1
	}
	d2 := pairwiseD2(vecs)
	scores := make([]float64, n)
	neigh := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		neigh = neigh[:0]
		for j := 0; j < n; j++ {
			if j != i {
				neigh = append(neigh, d2[i][j])
			}
		}
		sort.Float64s(neigh)
		var s float64
		for _, x := range neigh[:m] {
			s += x
		}
		scores[i] = s
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	return order
}

// krumGramWorkers is the fleet size above which the pairwise distance
// matrix switches from direct differences to the Gram-matrix identity
// ‖vi−vj‖² = ‖vi‖² + ‖vj‖² − 2⟨vi,vj⟩ computed through one fused
// V·Vᵀ product on the tensor engine. The identity reassociates the
// arithmetic (it is not bit-identical to direct differences, only equal
// within rounding), so small historical fleets — X9 runs 8 workers —
// keep the exact original computation, and the O(n²d) GEMM only takes
// over where it pays.
const krumGramWorkers = 24

// pairwiseD2 returns the symmetric matrix of squared Euclidean distances
// between all vector pairs, with zeros on the diagonal.
func pairwiseD2(vecs [][]float64) [][]float64 {
	n := len(vecs)
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	if n >= krumGramWorkers && len(vecs[0]) > 0 {
		d := len(vecs[0])
		v := tensor.New(n, d)
		for i, row := range vecs {
			copy(v.Data[i*d:(i+1)*d], row)
		}
		g := tensor.MatMulTransB(v, v)
		for i := 0; i < n; i++ {
			gii := g.Data[i*n+i]
			for j := i + 1; j < n; j++ {
				s := gii + g.Data[j*n+j] - 2*g.Data[i*n+j]
				if s < 0 {
					s = 0 // cancellation can push a tiny distance negative
				}
				d2[i][j], d2[j][i] = s, s
			}
		}
		return d2
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			vi, vj := vecs[i], vecs[j]
			for c := range vi {
				diff := vi[c] - vj[c]
				s += diff * diff
			}
			d2[i][j], d2[j][i] = s, s
		}
	}
	return d2
}

// NormClip rescales every vector whose norm exceeds Factor times the MEAN
// participant norm down to that threshold, then averages. The mean-norm
// threshold is deliberately non-robust — an adversary that inflates its own
// norm drags the clip threshold up with it, which is exactly why NormClip
// alone fails under the amplified sign-flip attack (experiment X9) while
// still taming plain scale attacks.
type NormClip struct {
	// Factor scales the mean-norm threshold (default 1).
	Factor float64
}

// Name implements Aggregator.
func (NormClip) Name() string { return "normclip" }

// FLOPs implements Aggregator: norms, scaling, and the mean.
func (NormClip) FLOPs(n, d int) int64 { return 3 * int64(n) * int64(d) }

// Aggregate implements Aggregator.
func (c NormClip) Aggregate(out []float64, vecs [][]float64) {
	zero(out)
	if len(vecs) == 0 {
		return
	}
	factor := c.Factor
	if factor <= 0 {
		factor = 1
	}
	var meanNorm float64
	norms := make([]float64, len(vecs))
	for w, v := range vecs {
		var s float64
		for _, x := range v {
			s += x * x
		}
		norms[w] = math.Sqrt(s)
		meanNorm += norms[w]
	}
	meanNorm /= float64(len(vecs))
	tau := factor * meanNorm
	for w, v := range vecs {
		scale := 1.0
		if norms[w] > tau && norms[w] > 0 {
			scale = tau / norms[w]
		}
		for i, x := range v {
			out[i] += scale * x
		}
	}
	n := float64(len(vecs))
	for i := range out {
		out[i] /= n
	}
}

// sortFLOPs approximates the comparison cost of sorting n values.
func sortFLOPs(n int) int64 {
	if n < 2 {
		return 1
	}
	return int64(float64(n) * math.Log2(float64(n)))
}
