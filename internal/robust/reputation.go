package robust

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// ReputationConfig tunes the per-worker reputation tracker. The zero value
// gets sensible defaults via withDefaults (mirroring guard.Policy).
type ReputationConfig struct {
	// Decay is the EMA coefficient on the previous score: score =
	// Decay*score + (1-Decay)*relDist. Default 0.7.
	Decay float64
	// Threshold is the score above which a round counts as an offense.
	// Scores are relative distances (worker's distance to the aggregate
	// divided by the median worker distance), so honest workers hover
	// near 1 while Byzantine uploads land orders of magnitude out. The
	// default of 8 is deliberately loose: batch noise can push an honest
	// worker to 3-5x the median for a few rounds, and a false quarantine
	// costs an honest contribution. Default 8.
	Threshold float64
	// Patience is how many consecutive offenses trigger quarantine.
	// Default 3.
	Patience int
	// Probation is how many rounds a quarantined worker sits out before
	// being readmitted (its score reset), mirroring the crash-rejoin
	// path. Default 8.
	Probation int
	// Warmup is how many initial rounds are observed but never punished,
	// letting scores settle. Default 2.
	Warmup int
}

func (c ReputationConfig) withDefaults() ReputationConfig {
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.7
	}
	if c.Threshold <= 0 {
		c.Threshold = 8
	}
	if c.Patience < 1 {
		c.Patience = 3
	}
	if c.Probation < 1 {
		c.Probation = 8
	}
	if c.Warmup < 0 {
		c.Warmup = 2
	}
	return c
}

// Event is one quarantine-ledger entry.
type Event struct {
	Round  int
	Worker int
	Kind   string // EventQuarantine or EventReadmit
	Score  float64
}

// Ledger event kinds.
const (
	EventQuarantine = "quarantine"
	EventReadmit    = "readmit"
)

// Ledger records quarantine and readmission events in occurrence order,
// with an FNV-1a fingerprint for replay verification (mirroring
// guard.Ledger).
type Ledger struct {
	events []Event
}

func (l *Ledger) record(ev Event) {
	if l != nil {
		l.events = append(l.events, ev)
	}
}

// Events returns the recorded events in occurrence order.
func (l *Ledger) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Quarantines counts quarantine events.
func (l *Ledger) Quarantines() int { return l.count(EventQuarantine) }

// Readmissions counts readmit events.
func (l *Ledger) Readmissions() int { return l.count(EventReadmit) }

func (l *Ledger) count(kind string) int {
	if l == nil {
		return 0
	}
	n := 0
	for _, ev := range l.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// Offenders returns the sorted, deduplicated set of workers that were ever
// quarantined — with a correctly tuned tracker, exactly the Byzantine set.
func (l *Ledger) Offenders() []int {
	if l == nil {
		return nil
	}
	seen := map[int]bool{}
	for _, ev := range l.events {
		if ev.Kind == EventQuarantine {
			seen[ev.Worker] = true
		}
	}
	out := make([]int, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// OffenderString renders Offenders as a comma-joined list ("" when empty).
func (l *Ledger) OffenderString() string {
	offs := l.Offenders()
	parts := make([]string, len(offs))
	for i, w := range offs {
		parts[i] = fmt.Sprintf("%d", w)
	}
	return strings.Join(parts, ",")
}

// Fingerprint returns an FNV-1a hash over every recorded event. Two runs
// of the same seeded scenario must produce identical fingerprints.
func (l *Ledger) Fingerprint() uint64 {
	h := fnv.New64a()
	if l != nil {
		for _, ev := range l.events {
			fmt.Fprintf(h, "%d|%d|%s|%.17g\n", ev.Round, ev.Worker, ev.Kind, ev.Score)
		}
	}
	return h.Sum64()
}

// Reputation tracks a per-worker EMA of relative distance-to-aggregate and
// quarantines persistent offenders. It is deterministic: scores depend only
// on the sequence of Observe calls, and expiries are processed in sorted
// worker order. Not safe for concurrent use; the distributed coordinator
// drives it from the single-threaded round loop.
type Reputation struct {
	cfg    ReputationConfig
	round  int
	score  map[int]float64
	streak map[int]int // consecutive offense count
	until  map[int]int // quarantined through round (exclusive)
	ledger Ledger
}

// NewReputation builds a tracker with defaults applied.
func NewReputation(cfg ReputationConfig) *Reputation {
	return &Reputation{
		cfg:    cfg.withDefaults(),
		score:  map[int]float64{},
		streak: map[int]int{},
		until:  map[int]int{},
	}
}

// Ledger returns the quarantine event ledger.
func (r *Reputation) Ledger() *Ledger {
	if r == nil {
		return nil
	}
	return &r.ledger
}

// BeginRound advances the tracker to the given round and readmits workers
// whose probation has expired, in sorted worker order for determinism.
func (r *Reputation) BeginRound(round int) {
	if r == nil {
		return
	}
	r.round = round
	var expired []int
	for w, until := range r.until {
		if round >= until {
			expired = append(expired, w)
		}
	}
	sort.Ints(expired)
	for _, w := range expired {
		delete(r.until, w)
		r.score[w] = 0
		r.streak[w] = 0
		r.ledger.record(Event{Round: round, Worker: w, Kind: EventReadmit})
	}
}

// Quarantined reports whether the worker is currently excluded.
func (r *Reputation) Quarantined(worker int) bool {
	if r == nil {
		return false
	}
	until, ok := r.until[worker]
	return ok && r.round < until
}

// Observe feeds one round's worker→aggregate distances into the tracker:
// workers[i] uploaded a vector at Euclidean distance dists[i] from the
// aggregated result. Distances are normalised by their median (so honest
// workers score near 1 regardless of gradient scale), folded into each
// worker's EMA, and persistent offenders are quarantined for the
// configured probation. Callers pass workers in ascending id order.
func (r *Reputation) Observe(workers []int, dists []float64) {
	if r == nil || len(workers) == 0 || len(workers) != len(dists) {
		return
	}
	med := medianOf(dists)
	if med <= 0 {
		med = 1
	}
	for i, w := range workers {
		rel := dists[i] / med
		r.score[w] = r.cfg.Decay*r.score[w] + (1-r.cfg.Decay)*rel
		if r.round < r.cfg.Warmup {
			continue
		}
		if r.score[w] > r.cfg.Threshold {
			r.streak[w]++
			if r.streak[w] >= r.cfg.Patience && !r.Quarantined(w) {
				r.until[w] = r.round + 1 + r.cfg.Probation
				r.ledger.record(Event{Round: r.round, Worker: w, Kind: EventQuarantine, Score: r.score[w]})
			}
		} else {
			r.streak[w] = 0
		}
	}
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
