package robust

import (
	"math"
	"math/rand"
	"testing"
)

// The Gram-matrix distance path (n >= krumGramWorkers) must agree with
// direct pairwise differences within floating-point reassociation error,
// and must not change Krum's selections on a clearly-separated fleet.

func directD2(vecs [][]float64) [][]float64 {
	n := len(vecs)
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for c := range vecs[i] {
				diff := vecs[i][c] - vecs[j][c]
				s += diff * diff
			}
			d2[i][j], d2[j][i] = s, s
		}
	}
	return d2
}

func TestPairwiseD2GramMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, d = 32, 64 // n >= krumGramWorkers triggers the Gram path
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, d)
		for c := range vecs[i] {
			vecs[i][c] = rng.NormFloat64()
		}
	}
	gram := pairwiseD2(vecs)
	direct := directD2(vecs)
	for i := 0; i < n; i++ {
		if gram[i][i] != 0 {
			t.Fatalf("diagonal %d nonzero: %g", i, gram[i][i])
		}
		for j := 0; j < n; j++ {
			diff := math.Abs(gram[i][j] - direct[i][j])
			scale := 1 + direct[i][j]
			if diff > 1e-9*scale {
				t.Fatalf("d2[%d][%d]: gram %g vs direct %g", i, j, gram[i][j], direct[i][j])
			}
		}
	}
}

func TestKrumGramPathSelectsHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, d, f = 32, 16, 4
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, d)
		for c := range vecs[i] {
			vecs[i][c] = 1 + 0.01*rng.NormFloat64()
		}
	}
	// f Byzantine workers push far away.
	for i := 0; i < f; i++ {
		for c := range vecs[i] {
			vecs[i][c] = 100
		}
	}
	out := make([]float64, d)
	Krum{F: f}.Aggregate(out, vecs)
	for c, v := range out {
		if math.Abs(v-1) > 0.1 {
			t.Fatalf("Krum over the Gram path picked a poisoned vector: out[%d]=%g", c, v)
		}
	}
	// Below the Gram threshold the original arithmetic must be untouched:
	// an 8-worker order computed now must equal the direct computation.
	small := vecs[:8]
	got := krumOrder(small, 1)
	direct := directD2(small)
	scores := make([]float64, 8)
	for i := range small {
		neigh := make([]float64, 0, 7)
		for j := range small {
			if j != i {
				neigh = append(neigh, direct[i][j])
			}
		}
		// n-f-2 = 5 nearest neighbours
		for a := range neigh {
			for b := a + 1; b < len(neigh); b++ {
				if neigh[b] < neigh[a] {
					neigh[a], neigh[b] = neigh[b], neigh[a]
				}
			}
		}
		for _, x := range neigh[:5] {
			scores[i] += x
		}
	}
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	if got[0] != best {
		t.Fatalf("small-fleet Krum order head %d != direct computation %d", got[0], best)
	}
}
