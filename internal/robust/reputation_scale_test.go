package robust

import (
	"strconv"
	"strings"
	"testing"
)

// driveQuarantines runs a 100-worker scenario where a fixed offender set
// uploads at 50x the honest distance every round, and returns the tracker.
func driveQuarantines(rounds int, offenders map[int]bool) *Reputation {
	const n = 100
	rep := NewReputation(ReputationConfig{})
	workers := make([]int, n)
	dists := make([]float64, n)
	for i := range workers {
		workers[i] = i
	}
	for round := 0; round < rounds; round++ {
		rep.BeginRound(round)
		for i := range workers {
			if offenders[i] {
				dists[i] = 50
			} else {
				// Honest spread around the median, deterministic per (worker, round).
				dists[i] = 1 + 0.1*float64((i*7+round*3)%11)
			}
		}
		rep.Observe(workers, dists)
	}
	return rep
}

// At n=100 the tracker quarantines exactly the offender coalition, the
// ledger fingerprint replays bit-identically, and OffenderString is sorted
// numerically (not lexically) and stable across runs.
func TestReputationHundredWorkersDeterministic(t *testing.T) {
	offenders := map[int]bool{3: true, 41: true, 77: true, 9: true, 100 - 1: true}
	rep1 := driveQuarantines(30, offenders)
	rep2 := driveQuarantines(30, offenders)

	led1, led2 := rep1.Ledger(), rep2.Ledger()
	if led1.Fingerprint() != led2.Fingerprint() {
		t.Fatalf("ledger fingerprints differ across identical runs: %x vs %x",
			led1.Fingerprint(), led2.Fingerprint())
	}
	got := led1.Offenders()
	if len(got) != len(offenders) {
		t.Fatalf("quarantined %v, want exactly the %d-member coalition", got, len(offenders))
	}
	for _, w := range got {
		if !offenders[w] {
			t.Fatalf("honest worker %d quarantined", w)
		}
	}
	// Sorted numerically: 3,9,41,77,99 — a lexical sort would yield 3,41,77,9,99.
	if s := led1.OffenderString(); s != "3,9,41,77,99" {
		t.Fatalf("OffenderString = %q, want numeric order 3,9,41,77,99", s)
	}
	if led1.OffenderString() != led2.OffenderString() {
		t.Fatal("OffenderString unstable across identical runs")
	}
}

// Offenders stays sorted and deduplicated at arbitrary n, regardless of the
// order quarantine events landed in the ledger.
func TestOffenderStringSortedAtArbitraryN(t *testing.T) {
	var led Ledger
	// Record in adversarial (descending, with repeats) order.
	for _, w := range []int{250, 11, 103, 2, 103, 40, 11} {
		led.record(Event{Round: 1, Worker: w, Kind: EventQuarantine})
	}
	led.record(Event{Round: 2, Worker: 103, Kind: EventReadmit})
	s := led.OffenderString()
	if s != "2,11,40,103,250" {
		t.Fatalf("OffenderString = %q, want deduplicated ascending 2,11,40,103,250", s)
	}
	parts := strings.Split(s, ",")
	prev := -1
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= prev {
			t.Fatalf("OffenderString %q is not strictly ascending integers", s)
		}
		prev = v
	}
}
