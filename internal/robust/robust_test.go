package robust

import (
	"math"
	"sync"
	"testing"
)

func vecs(rows ...[]float64) [][]float64 { return rows }

func almostEq(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("out[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMeanMatchesArithmeticMean(t *testing.T) {
	out := make([]float64, 2)
	Mean{}.Aggregate(out, vecs([]float64{1, 2}, []float64{3, 4}, []float64{5, 6}))
	almostEq(t, out, []float64{3, 4}, 0)
}

func TestMeanEmptyZeroes(t *testing.T) {
	out := []float64{7, 7}
	Mean{}.Aggregate(out, nil)
	almostEq(t, out, []float64{0, 0}, 0)
}

func TestCoordMedianIgnoresOutlier(t *testing.T) {
	out := make([]float64, 2)
	CoordMedian{}.Aggregate(out, vecs(
		[]float64{1, 1}, []float64{1.1, 0.9}, []float64{1e6, -1e6},
	))
	almostEq(t, out, []float64{1.1, 0.9}, 0)
}

func TestCoordMedianEvenCount(t *testing.T) {
	out := make([]float64, 1)
	CoordMedian{}.Aggregate(out, vecs([]float64{1}, []float64{3}, []float64{2}, []float64{100}))
	almostEq(t, out, []float64{2.5}, 1e-12)
}

func TestTrimmedMeanDropsExtremes(t *testing.T) {
	out := make([]float64, 1)
	TrimmedMean{Trim: 1}.Aggregate(out, vecs(
		[]float64{-1e9}, []float64{1}, []float64{2}, []float64{1e9},
	))
	almostEq(t, out, []float64{1.5}, 1e-12)
}

func TestTrimmedMeanClampsTrim(t *testing.T) {
	out := make([]float64, 1)
	// Trim 5 of 3 vectors would drop everything; clamp keeps the median.
	TrimmedMean{Trim: 5}.Aggregate(out, vecs([]float64{1}, []float64{2}, []float64{50}))
	almostEq(t, out, []float64{2}, 1e-12)
}

func TestKrumRejectsOutlier(t *testing.T) {
	out := make([]float64, 2)
	in := vecs(
		[]float64{1, 0}, []float64{1.05, 0.02}, []float64{0.98, -0.01},
		[]float64{1.02, 0.01}, []float64{-500, 500},
	)
	Krum{F: 1}.Aggregate(out, in)
	// The winner must be one of the honest cluster, never the outlier.
	if out[0] < 0 {
		t.Fatalf("krum selected the outlier: %v", out)
	}
}

func TestMultiKrumAveragesHonest(t *testing.T) {
	out := make([]float64, 1)
	MultiKrum{F: 1, M: 3}.Aggregate(out, vecs(
		[]float64{1}, []float64{1.1}, []float64{0.9}, []float64{1e6},
	))
	almostEq(t, out, []float64{1}, 1e-9)
}

func TestNormClipTamesScaleButNotSignFlip(t *testing.T) {
	honest := []float64{1, 0}
	// Scale attack: same direction, huge norm. Clipping to the mean norm
	// keeps the aggregate pointed the honest way.
	out := make([]float64, 2)
	NormClip{}.Aggregate(out, vecs(honest, honest, honest, []float64{1000, 0}))
	if out[0] <= 0 {
		t.Fatalf("normclip failed to tame scale attack: %v", out)
	}
	// Amplified sign-flip: the adversary inflates the mean-norm threshold
	// enough that its negated mass survives clipping and flips the sum.
	NormClip{}.Aggregate(out, vecs(honest, honest, honest, []float64{-1000, 0}))
	if out[0] >= 0 {
		t.Fatalf("normclip unexpectedly defeated amplified sign-flip: %v", out)
	}
}

func TestAggregatorsDoNotMutateInputs(t *testing.T) {
	aggs := []Aggregator{Mean{}, CoordMedian{}, TrimmedMean{Trim: 1}, Krum{F: 1}, MultiKrum{F: 1, M: 2}, NormClip{}}
	for _, a := range aggs {
		in := vecs([]float64{1, 2}, []float64{3, 4}, []float64{-50, 60}, []float64{5, 6})
		want := vecs([]float64{1, 2}, []float64{3, 4}, []float64{-50, 60}, []float64{5, 6})
		out := make([]float64, 2)
		a.Aggregate(out, in)
		for w := range in {
			for i := range in[w] {
				if in[w][i] != want[w][i] {
					t.Fatalf("%s mutated input vec %d", a.Name(), w)
				}
			}
		}
	}
}

func TestAggregatorFLOPsPositiveAndOrdered(t *testing.T) {
	n, d := 8, 1000
	mean := Mean{}.FLOPs(n, d)
	med := CoordMedian{}.FLOPs(n, d)
	krum := Krum{F: 1}.FLOPs(n, d)
	if mean <= 0 || med <= 0 || krum <= 0 {
		t.Fatalf("non-positive FLOPs: mean=%d med=%d krum=%d", mean, med, krum)
	}
	if krum <= mean {
		t.Fatalf("krum (%d) should cost more than mean (%d)", krum, mean)
	}
}

func TestAggregatorsDeterministicUnderConcurrency(t *testing.T) {
	in := make([][]float64, 8)
	for w := range in {
		v := make([]float64, 64)
		for i := range v {
			v[i] = math.Sin(float64(w*64+i)) * float64(1+w)
		}
		in[w] = v
	}
	for _, a := range []Aggregator{Mean{}, CoordMedian{}, TrimmedMean{Trim: 1}, Krum{F: 1}, NormClip{}} {
		ref := make([]float64, 64)
		a.Aggregate(ref, in)
		var wg sync.WaitGroup
		outs := make([][]float64, 16)
		for g := range outs {
			outs[g] = make([]float64, 64)
			wg.Add(1)
			go func(dst []float64) {
				defer wg.Done()
				a.Aggregate(dst, in)
			}(outs[g])
		}
		wg.Wait()
		for g := range outs {
			for i := range ref {
				if outs[g][i] != ref[i] {
					t.Fatalf("%s: concurrent run %d diverged at %d", a.Name(), g, i)
				}
			}
		}
	}
}

func TestReputationQuarantinesPersistentOffender(t *testing.T) {
	rep := NewReputation(ReputationConfig{})
	workers := []int{0, 1, 2, 3}
	for round := 0; round < 12; round++ {
		rep.BeginRound(round)
		// Worker 3 is 50x farther from the aggregate than everyone else.
		rep.Observe(workers, []float64{1, 1.1, 0.9, 50})
	}
	led := rep.Ledger()
	if got := led.OffenderString(); got != "3" {
		t.Fatalf("offenders = %q, want \"3\"", got)
	}
	if led.Quarantines() < 1 {
		t.Fatalf("expected at least one quarantine event")
	}
	if !rep.Quarantined(3) && led.Readmissions() == 0 {
		t.Fatalf("worker 3 neither quarantined nor readmitted")
	}
}

func TestReputationReadmitsAfterProbation(t *testing.T) {
	rep := NewReputation(ReputationConfig{Probation: 3, Warmup: 0, Patience: 1})
	workers := []int{0, 1, 2}
	// Two bad rounds for worker 2, then honest behaviour.
	for round := 0; round < 10; round++ {
		rep.BeginRound(round)
		d := []float64{1, 1, 1}
		if round < 2 {
			d[2] = 100
		}
		rep.Observe(workers, d)
	}
	led := rep.Ledger()
	if led.Quarantines() != 1 {
		t.Fatalf("quarantines = %d, want 1", led.Quarantines())
	}
	if led.Readmissions() != 1 {
		t.Fatalf("readmissions = %d, want 1 (probation should expire)", led.Readmissions())
	}
	if rep.Quarantined(2) {
		t.Fatalf("worker 2 should be readmitted by round 9")
	}
}

// TestReputationProbationExit pins the full probation lifecycle round by
// round: a transient offender is quarantined exactly when its streak
// reaches Patience, sits out exactly Probation rounds, is readmitted by
// BeginRound with score and streak reset, and a single post-readmission
// spike (streak 1 < Patience) never re-quarantines it.
func TestReputationProbationExit(t *testing.T) {
	rep := NewReputation(ReputationConfig{Probation: 4, Warmup: 0, Patience: 2})
	workers := []int{0, 1, 2}
	for round := 0; round < 15; round++ {
		rep.BeginRound(round)
		// Offense rounds 0-1 trigger quarantine at round 1 (streak =
		// Patience), so the exclusion window is rounds 2-5 and
		// BeginRound(6) readmits.
		if got, want := rep.Quarantined(2), round >= 2 && round < 6; got != want {
			t.Fatalf("round %d: Quarantined(2) = %v, want %v", round, got, want)
		}
		d := []float64{1, 1, 1}
		switch {
		case round < 2:
			d[2] = 100 // persistent offense: quarantined on the 2nd
		case round == 7:
			d[2] = 30 // one spike after readmission: streak 1, forgiven
		}
		rep.Observe(workers, d)
	}
	led := rep.Ledger()
	evs := led.Events()
	if len(evs) != 2 {
		t.Fatalf("ledger has %d events, want 2 (quarantine+readmit): %v", len(evs), evs)
	}
	if evs[0].Kind != EventQuarantine || evs[0].Worker != 2 || evs[0].Round != 1 {
		t.Fatalf("first event %+v, want quarantine of worker 2 at round 1", evs[0])
	}
	if evs[1].Kind != EventReadmit || evs[1].Worker != 2 || evs[1].Round != 6 {
		t.Fatalf("second event %+v, want readmit of worker 2 at round 6", evs[1])
	}
	if led.Quarantines() != 1 || led.Readmissions() != 1 {
		t.Fatalf("quarantines=%d readmissions=%d, want 1 and 1 (no re-quarantine)",
			led.Quarantines(), led.Readmissions())
	}
	if rep.Quarantined(2) {
		t.Fatal("worker 2 still quarantined at the end of the run")
	}
}

func TestReputationNoFalsePositivesWhenHonest(t *testing.T) {
	rep := NewReputation(ReputationConfig{})
	workers := []int{0, 1, 2, 3}
	for round := 0; round < 20; round++ {
		rep.BeginRound(round)
		rep.Observe(workers, []float64{1, 1.05, 0.95, 1.02})
	}
	if n := rep.Ledger().Quarantines(); n != 0 {
		t.Fatalf("honest run produced %d quarantines", n)
	}
	if fp := rep.Ledger().Fingerprint(); fp != (&Ledger{}).Fingerprint() {
		t.Fatalf("empty ledger fingerprint mismatch")
	}
}

func TestLedgerFingerprintReplays(t *testing.T) {
	build := func() *Reputation {
		rep := NewReputation(ReputationConfig{Probation: 2, Warmup: 0, Patience: 1})
		for round := 0; round < 8; round++ {
			rep.BeginRound(round)
			rep.Observe([]int{0, 1, 2}, []float64{1, 1, float64(10 * (round%3 + 1))})
		}
		return rep
	}
	a, b := build(), build()
	if a.Ledger().Fingerprint() != b.Ledger().Fingerprint() {
		t.Fatalf("same scenario produced different ledger fingerprints")
	}
	if len(a.Ledger().Events()) == 0 {
		t.Fatalf("scenario should have produced events")
	}
}

func TestNilSafety(t *testing.T) {
	var rep *Reputation
	rep.BeginRound(0)
	rep.Observe([]int{0}, []float64{1})
	if rep.Quarantined(0) {
		t.Fatalf("nil reputation quarantined a worker")
	}
	var led *Ledger
	if led.Fingerprint() != (&Ledger{}).Fingerprint() {
		t.Fatalf("nil ledger fingerprint differs from empty")
	}
	if led.Offenders() != nil || led.Quarantines() != 0 || led.OffenderString() != "" {
		t.Fatalf("nil ledger not empty")
	}
}
