package explore

import (
	"math/rand"

	"dlsys/internal/nn"
	"dlsys/internal/quant"
	"dlsys/internal/tensor"
)

// Autoencoder compresses tabular rows through a narrow latent bottleneck:
// encoder → latent (quantized for storage) → decoder. On correlated columns
// the latent captures the shared factor, beating column-by-column
// compression at equal reconstruction error — the DeepSqueeze claim.
type Autoencoder struct {
	enc, dec  *nn.Network
	LatentDim int
}

// AEConfig controls training.
type AEConfig struct {
	InDim     int
	Hidden    int
	LatentDim int
	Epochs    int
	LR        float64
	BatchSize int
}

// TrainAutoencoder fits encoder and decoder jointly on x by MSE.
func TrainAutoencoder(rng *rand.Rand, x *tensor.Tensor, cfg AEConfig) *Autoencoder {
	enc := nn.NewNetwork(
		nn.NewDense(rng, "enc.fc0", cfg.InDim, cfg.Hidden),
		nn.NewTanh("enc.tanh0"),
		nn.NewDense(rng, "enc.fc1", cfg.Hidden, cfg.LatentDim),
		nn.NewTanh("enc.tanh1"),
	)
	dec := nn.NewNetwork(
		nn.NewDense(rng, "dec.fc0", cfg.LatentDim, cfg.Hidden),
		nn.NewTanh("dec.tanh0"),
		nn.NewDense(rng, "dec.fc1", cfg.Hidden, cfg.InDim),
	)
	opt := nn.NewAdam(cfg.LR)
	mse := nn.NewMSE()
	n := x.Dim(0)
	bs := cfg.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	params := append(enc.Params(), dec.Params()...)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			bx, _ := nn.GatherBatch(x, x, perm[start:end])
			enc.ZeroGrad()
			dec.ZeroGrad()
			z := enc.Forward(bx, true)
			out := dec.Forward(z, true)
			mse.Forward(out, bx)
			dz := dec.Backward(mse.Backward())
			enc.Backward(dz)
			opt.Step(params)
		}
	}
	return &Autoencoder{enc: enc, dec: dec, LatentDim: cfg.LatentDim}
}

// Compress encodes rows, quantizes the latent at the given bit width, and
// returns the quantized latent plus the storage bytes (packed codes plus
// the decoder network, amortised over the rows). An out-of-range bit width
// is reported as an error.
func (ae *Autoencoder) Compress(x *tensor.Tensor, bits int) (latent *quant.Linear, bytes int64, err error) {
	z := ae.enc.Forward(x, false)
	latent, err = quant.QuantizeLinear(z, bits)
	if err != nil {
		return nil, 0, err
	}
	bytes = latent.Bytes() + ae.dec.ParamBytes(32)
	return latent, bytes, nil
}

// Decompress reconstructs rows from a quantized latent.
func (ae *Autoencoder) Decompress(latent *quant.Linear) *tensor.Tensor {
	return ae.dec.Forward(latent.Dequantize(), false)
}

// ReconstructionMSE measures mean squared error per value between the
// original and a reconstruction.
func ReconstructionMSE(orig, recon *tensor.Tensor) float64 {
	var s float64
	for i := range orig.Data {
		d := orig.Data[i] - recon.Data[i]
		s += d * d
	}
	return s / float64(orig.Size())
}

// ColumnQuantBaseline compresses each column independently with linear
// quantization + Huffman coding, returning total bytes and the
// reconstruction MSE — the classical baseline the autoencoder must beat on
// correlated data.
func ColumnQuantBaseline(x *tensor.Tensor, bits int) (bytes int64, mse float64, err error) {
	rows, cols := x.Dim(0), x.Dim(1)
	var se float64
	for c := 0; c < cols; c++ {
		col := tensor.New(rows)
		for r := 0; r < rows; r++ {
			col.Data[r] = x.At(r, c)
		}
		q, err := quant.QuantizeLinear(col, bits)
		if err != nil {
			return 0, 0, err
		}
		bytes += quant.HuffmanBytes(q.Codes) + 16
		back := q.Dequantize()
		for r := 0; r < rows; r++ {
			d := col.Data[r] - back.Data[r]
			se += d * d
		}
	}
	return bytes, se / float64(x.Size()), nil
}

// CorrelatedTable generates rows whose columns are all smooth functions of
// one latent factor plus small noise — maximally compressible jointly,
// poorly compressible column-by-column at high fidelity.
func CorrelatedTable(rng *rand.Rand, rows, cols int, noise float64) *tensor.Tensor {
	x := tensor.New(rows, cols)
	for r := 0; r < rows; r++ {
		t := rng.Float64()*2 - 1
		for c := 0; c < cols; c++ {
			v := t
			if c%2 == 1 {
				v = t * t
			}
			x.Set(v*float64(1+c%3)+noise*rng.NormFloat64(), r, c)
		}
	}
	return x
}
