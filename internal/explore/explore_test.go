package explore

import (
	"errors"
	"math/rand"
	"testing"

	"dlsys/internal/db"
)

// must unwraps (value, error) pairs whose arguments are valid by
// construction; a failure is a test bug, so it panics.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// insightTable builds a table with a hidden insight: within a narrow band
// of `f`, groups of `g` have wildly different `v` means; elsewhere `v` is
// flat.
func insightTable(rng *rand.Rand, n int) *db.Table {
	t := db.NewTable("sales", "f", "g", "v")
	for i := 0; i < n; i++ {
		f := rng.Float64()
		g := rng.Float64() * 10
		v := 5 + 0.1*rng.NormFloat64()
		if f > 0.8 { // the insight region
			v = 5 + 4*g + rng.NormFloat64()
		}
		t.Append(f, g, v)
	}
	return t
}

func TestViewGridScoresDetectInsight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := insightTable(rng, 4000)
	g := must(NewViewGrid(tab, "f", "g", "v", 5, 4))
	max := g.MaxScore()
	if max < 0.2 {
		t.Fatalf("max interestingness %g too low — insight not visible", max)
	}
	// The insight row (top f quantile) should dominate a boring row.
	boring := g.Score(0, 1)
	insight := g.Score(4, 1)
	if insight <= boring {
		t.Fatalf("insight view (%.3f) should beat boring view (%.3f)", insight, boring)
	}
}

func TestViewGridCachesEvaluations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := insightTable(rng, 1000)
	g := must(NewViewGrid(tab, "f", "g", "v", 4, 3))
	g.Score(1, 1)
	g.Score(1, 1)
	g.Score(1, 1)
	if g.Evaluations() != 1 {
		t.Fatalf("evaluations %d, want 1 (cached)", g.Evaluations())
	}
}

func TestQLearnExploreFindsInsightFasterThanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := insightTable(rng, 4000)
	// Ground-truth max score (on a throwaway grid).
	gt := must(NewViewGrid(tab, "f", "g", "v", 6, 4))
	target := gt.MaxScore() * 0.9

	trials := 6
	var rlQueries, rwQueries, rlHits, rwHits int
	for s := 0; s < trials; s++ {
		grl := must(NewViewGrid(tab, "f", "g", "v", 6, 4))
		rl := QLearnExplore(rand.New(rand.NewSource(int64(100+s))), grl, 8, 12, target)
		if rl.QueriesToHit > 0 {
			rlHits++
			rlQueries += rl.QueriesToHit
		}
		grw := must(NewViewGrid(tab, "f", "g", "v", 6, 4))
		rw := RandomWalk(rand.New(rand.NewSource(int64(200+s))), grw, 96, target)
		if rw.QueriesToHit > 0 {
			rwHits++
			rwQueries += rw.QueriesToHit
		}
	}
	if rlHits == 0 {
		t.Fatal("RL agent never found the insight")
	}
	// RL should find the insight at least as reliably, in no more queries
	// on average.
	if rwHits > 0 && rlHits >= rwHits && float64(rlQueries)/float64(rlHits) > 1.5*float64(rwQueries)/float64(rwHits) {
		t.Fatalf("RL needed %d avg queries vs random %d", rlQueries/rlHits, rwQueries/rwHits)
	}
}

func TestEmbeddingImprovesSimilaritySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, labels := RingsDataset(rng, 300, 3, 0.1)
	emb := TrainRingEmbedder(rng, x, labels, 3, 60)
	rawPrec := PrecisionAtK(x, labels, 10)
	embedded := emb.Embed(x)
	embPrec := PrecisionAtK(embedded, labels, 10)
	t.Logf("precision@10: raw %.3f, embedded %.3f", rawPrec, embPrec)
	if embPrec <= rawPrec {
		t.Fatalf("embedding precision %.3f should beat raw %.3f", embPrec, rawPrec)
	}
	if embPrec < 0.7 {
		t.Fatalf("embedding precision %.3f too low", embPrec)
	}
}

func TestCosineKNNExcludesSelfAndOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, _ := RingsDataset(rng, 50, 2, 0.05)
	nbrs := CosineKNN(x, x.Row(7), 5, 7)
	if len(nbrs) != 5 {
		t.Fatalf("got %d neighbours", len(nbrs))
	}
	for _, j := range nbrs {
		if j == 7 {
			t.Fatal("self returned as neighbour")
		}
	}
}

func TestAutoencoderBeatsColumnQuantOnCorrelatedData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := CorrelatedTable(rng, 2000, 8, 0.01)
	ae := TrainAutoencoder(rng, x, AEConfig{
		InDim: 8, Hidden: 24, LatentDim: 2, Epochs: 120, LR: 0.005, BatchSize: 64,
	})
	latent, aeBytes, err := ae.Compress(x, 12)
	if err != nil {
		t.Fatal(err)
	}
	recon := ae.Decompress(latent)
	aeMSE := ReconstructionMSE(x, recon)

	// Find the column-quant bit width with comparable (or worse) error and
	// compare bytes.
	for _, bits := range []int{8, 10, 12} {
		bBytes, bMSE, err := ColumnQuantBaseline(x, bits)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("AE: %d B @ MSE %.6f | colquant %d-bit: %d B @ MSE %.6f", aeBytes, aeMSE, bits, bBytes, bMSE)
		if bMSE >= aeMSE && bBytes <= aeBytes {
			t.Fatalf("baseline dominates AE at %d bits", bits)
		}
	}
	// The AE must compress below the 12-bit baseline while keeping error in
	// the same ballpark (within 4x of 8-bit baseline error).
	b12Bytes, _, _ := ColumnQuantBaseline(x, 12)
	if aeBytes >= b12Bytes {
		t.Fatalf("AE bytes %d not below 12-bit column baseline %d", aeBytes, b12Bytes)
	}
}

func TestAutoencoderRoundTripShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := CorrelatedTable(rng, 100, 4, 0.05)
	ae := TrainAutoencoder(rng, x, AEConfig{InDim: 4, Hidden: 8, LatentDim: 2, Epochs: 10, LR: 0.01, BatchSize: 32})
	latent, _, err := ae.Compress(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	recon := ae.Decompress(latent)
	if recon.Dim(0) != 100 || recon.Dim(1) != 4 {
		t.Fatalf("reconstruction shape %v", recon.Shape())
	}
}

func TestNewViewGridRejectsUnknownColumns(t *testing.T) {
	tab := db.NewTable("t", "f", "g", "v")
	must(0, tab.Append(1, 2, 3))
	for _, cols := range [][3]string{
		{"ghost", "g", "v"}, {"f", "ghost", "v"}, {"f", "g", "ghost"},
	} {
		_, err := NewViewGrid(tab, cols[0], cols[1], cols[2], 2, 2)
		if err == nil {
			t.Fatalf("grid over %v built despite unknown column", cols)
		}
		var ae *db.ArgError
		if !errors.As(err, &ae) {
			t.Fatalf("error %v is not a *db.ArgError", err)
		}
	}
}
