package explore

import (
	"math"
	"math/rand"
	"sort"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Embedder extracts a learned representation from a trained classifier's
// hidden layer and uses it for cosine-similarity search — the
// "deep data embeddings enhance similarity search" claim of Part 2.
type Embedder struct {
	net      *nn.Network
	cutLayer int // embed = output of Layers[cutLayer]
}

// NewEmbedder wraps a trained network, embedding at the given layer index.
func NewEmbedder(net *nn.Network, cutLayer int) *Embedder {
	return &Embedder{net: net, cutLayer: cutLayer}
}

// Embed maps a batch of rows into embedding space.
func (e *Embedder) Embed(x *tensor.Tensor) *tensor.Tensor {
	h := x
	for i := 0; i <= e.cutLayer; i++ {
		h = e.net.Layers[i].Forward(h, false)
	}
	return h
}

// CosineKNN returns the indices of the k nearest rows of corpus to query
// row q by cosine similarity.
func CosineKNN(corpus *tensor.Tensor, q []float64, k int, excludeSelf int) []int {
	type scored struct {
		idx int
		sim float64
	}
	var all []scored
	qn := norm(q)
	for i := 0; i < corpus.Dim(0); i++ {
		if i == excludeSelf {
			continue
		}
		row := corpus.Row(i)
		s := dot(row, q) / (norm(row)*qn + 1e-12)
		all = append(all, scored{i, s})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].sim > all[b].sim })
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].idx
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// PrecisionAtK measures retrieval quality: the average fraction of each
// row's k nearest neighbours (in the given representation) that share the
// row's label.
func PrecisionAtK(repr *tensor.Tensor, labels []int, k int) float64 {
	var total float64
	n := repr.Dim(0)
	for i := 0; i < n; i++ {
		nbrs := CosineKNN(repr, repr.Row(i), k, i)
		hit := 0
		for _, j := range nbrs {
			if labels[j] == labels[i] {
				hit++
			}
		}
		total += float64(hit) / float64(len(nbrs))
	}
	return total / float64(n)
}

// RingsDataset generates entities on concentric rings: the latent class is
// the radius band, while the raw 2-D coordinates point in random
// directions — cosine similarity on raw attributes is uninformative, but a
// trained classifier's hidden layer recovers the class structure.
func RingsDataset(rng *rand.Rand, n, classes int, noise float64) (*tensor.Tensor, []int) {
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		radius := 1 + float64(c)*1.5 + noise*rng.NormFloat64()
		theta := 2 * math.Pi * rng.Float64()
		x.Data[i*2] = radius * math.Cos(theta)
		x.Data[i*2+1] = radius * math.Sin(theta)
	}
	return x, labels
}

// TrainRingEmbedder trains a classifier on the rings data and returns an
// embedder at its last hidden activation.
func TrainRingEmbedder(rng *rand.Rand, x *tensor.Tensor, labels []int, classes, epochs int) *Embedder {
	net := nn.NewMLP(rng, nn.MLPConfig{In: 2, Hidden: []int{32, 16}, Out: classes})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(x, nn.OneHot(labels, classes), nn.TrainConfig{Epochs: epochs, BatchSize: 32})
	// Layers: fc0, relu0, fc1, relu1, fc2 → embed at relu1 (index 3).
	return NewEmbedder(net, 3)
}
