// Package explore implements the data-exploration techniques surveyed in
// Part 2 of the tutorial: a reinforcement-learning agent that guides an
// exploration session over a column store toward "interesting" views
// (ATENA-style), learned entity embeddings that enhance similarity search,
// and an autoencoder-based tabular compressor (DeepSqueeze/Bit-Swap-style)
// benchmarked against a classical quantize+Huffman baseline.
package explore

import (
	"math"
	"math/rand"

	"dlsys/internal/db"
)

// ViewGrid is an exploration session's search space: a 2-D lattice of
// candidate views over a table (aggregate of one column grouped and
// filtered by another). Each cell's interestingness is the normalised
// deviation of the view's statistics from the table's global behaviour.
type ViewGrid struct {
	Rows, Cols    int
	scores        [][]float64
	evaluated     [][]bool
	evalCount     int
	table         *db.Table
	filterColName string
	groupCol      string
	valCol        string
	rowQuants     []float64 // filter bucket bounds per grid row
	colBuckets    []float64 // group bucket widths per grid column
}

// NewViewGrid builds the candidate-view lattice: rows filter the table to a
// quantile slice of filterCol; columns vary the group-by bucket width on
// groupCol. The aggregate inspected is the mean of valCol per group. All
// three column names are validated here, so the per-view queries cannot
// fail later in the session.
func NewViewGrid(t *db.Table, filterCol, groupCol, valCol string, rows, cols int) (*ViewGrid, error) {
	if _, err := t.Column(valCol); err != nil {
		return nil, err
	}
	g := &ViewGrid{
		Rows: rows, Cols: cols,
		table:    t,
		groupCol: groupCol,
		valCol:   valCol,
	}
	var err error
	if g.rowQuants, err = t.ColumnQuantiles(filterCol, rows); err != nil {
		return nil, err
	}
	g.colBuckets = make([]float64, cols)
	q, err := t.ColumnQuantiles(groupCol, 1)
	if err != nil {
		return nil, err
	}
	span := q[len(q)-1] - q[0]
	if span <= 0 {
		span = 1
	}
	for c := 0; c < cols; c++ {
		g.colBuckets[c] = span / float64(int(4)<<uint(c)) // geometrically finer buckets
	}
	g.scores = make([][]float64, rows)
	g.evaluated = make([][]bool, rows)
	for r := range g.scores {
		g.scores[r] = make([]float64, cols)
		g.evaluated[r] = make([]bool, cols)
	}
	g.filterColName = filterCol
	return g, nil
}

// Score evaluates view (r, c), issuing the underlying queries on first
// access and caching afterwards. Interestingness is the coefficient of
// variation of the view's group means — flat views are boring, views where
// groups differ strongly are insights.
func (g *ViewGrid) Score(r, c int) float64 {
	if g.evaluated[r][c] {
		return g.scores[r][c]
	}
	g.evaluated[r][c] = true
	g.evalCount++
	lo, hi := g.rowQuants[r], g.rowQuants[r+1]
	sub := filterTable(g.table, g.filterColName, lo, hi)
	if sub.Rows() < 4 {
		return 0
	}
	// Column names were validated at construction and the filtered table
	// shares the schema, so the query cannot fail.
	means, _ := sub.GroupMeans(g.groupCol, g.valCol, g.colBuckets[c])
	if len(means) < 2 {
		return 0
	}
	var sum, n float64
	for _, m := range means {
		sum += m
		n++
	}
	mu := sum / n
	var v float64
	for _, m := range means {
		v += (m - mu) * (m - mu)
	}
	sd := math.Sqrt(v / n)
	score := sd / (math.Abs(mu) + 1e-9)
	if score > 1 {
		score = 1
	}
	g.scores[r][c] = score
	return score
}

// Evaluations returns how many distinct views have been queried so far.
func (g *ViewGrid) Evaluations() int { return g.evalCount }

// MaxScore evaluates every view (exhaustively) and returns the maximum.
// Intended for computing the ground truth when sizing experiments.
func (g *ViewGrid) MaxScore() float64 {
	best := 0.0
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if s := g.Score(r, c); s > best {
				best = s
			}
		}
	}
	return best
}

func filterTable(t *db.Table, col string, lo, hi float64) *db.Table {
	out := db.NewTable(t.Name+"_f", t.Columns()...)
	cols := t.Columns()
	vals := make([]float64, len(cols))
	cdata := make([][]float64, len(cols))
	// Names come from Columns() and the filter column was validated at
	// grid construction; row widths match by construction.
	for i, c := range cols {
		cdata[i], _ = t.Column(c)
	}
	f, _ := t.Column(col)
	for r := 0; r < t.Rows(); r++ {
		if f[r] < lo || f[r] > hi {
			continue
		}
		for i := range cols {
			vals[i] = cdata[i][r]
		}
		_ = out.Append(vals...)
	}
	return out
}

// SessionResult reports an exploration run.
type SessionResult struct {
	BestScore    float64
	QueriesToHit int // evaluations until reaching the target (0 if never)
}

// RandomWalk explores by uniformly random view hops — the unguided-analyst
// baseline.
func RandomWalk(rng *rand.Rand, g *ViewGrid, steps int, target float64) SessionResult {
	var res SessionResult
	for s := 0; s < steps; s++ {
		r, c := rng.Intn(g.Rows), rng.Intn(g.Cols)
		score := g.Score(r, c)
		if score > res.BestScore {
			res.BestScore = score
		}
		if res.QueriesToHit == 0 && score >= target {
			res.QueriesToHit = g.Evaluations()
		}
	}
	return res
}

// QLearnExplore trains a Q-learning agent that moves between neighbouring
// views (the structure real exploration sessions have: analysts drill
// in/out and slide filters). The agent learns which direction of the lattice
// is promising and reaches high-interest views in fewer distinct queries.
func QLearnExplore(rng *rand.Rand, g *ViewGrid, episodes, stepsPerEpisode int, target float64) SessionResult {
	type state [2]int
	q := map[state][4]float64{}
	moves := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	var res SessionResult
	for ep := 0; ep < episodes; ep++ {
		cur := state{rng.Intn(g.Rows), rng.Intn(g.Cols)}
		for s := 0; s < stepsPerEpisode; s++ {
			var a int
			if rng.Float64() < 0.25 {
				a = rng.Intn(4)
			} else {
				qs := q[cur]
				a = 0
				for i := 1; i < 4; i++ {
					if qs[i] > qs[a] {
						a = i
					}
				}
			}
			next := state{cur[0] + moves[a][0], cur[1] + moves[a][1]}
			if next[0] < 0 || next[0] >= g.Rows || next[1] < 0 || next[1] >= g.Cols {
				continue
			}
			score := g.Score(next[0], next[1])
			if score > res.BestScore {
				res.BestScore = score
			}
			if res.QueriesToHit == 0 && score >= target {
				res.QueriesToHit = g.Evaluations()
			}
			qs := q[cur]
			nq := q[next]
			maxNext := nq[0]
			for i := 1; i < 4; i++ {
				if nq[i] > maxNext {
					maxNext = nq[i]
				}
			}
			qs[a] += 0.4 * (score + 0.8*maxNext - qs[a])
			q[cur] = qs
			cur = next
		}
	}
	return res
}
