package nn

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/tensor"
)

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	block := NewResidualMLPBlock(rng, "res", 6)
	x := tensor.RandNormal(rng, 0, 1, 4, 6)
	// Keep ReLU inputs away from the kink.
	for i, v := range x.Data {
		if math.Abs(v) < 0.05 {
			x.Data[i] = 0.1
		}
	}
	checkLayerGradients(t, block, x, 1e-4)
}

func TestResidualIdentityAtZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	block := NewResidualMLPBlock(rng, "res", 5)
	for _, p := range block.Params() {
		p.Value.Zero()
	}
	x := tensor.RandNormal(rng, 0, 1, 3, 5)
	out := block.Forward(x, false)
	if !tensor.Equal(out, x, 0) {
		t.Fatal("zeroed residual block should be the identity")
	}
}

func TestDeepResidualNetTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := data.TwoMoons(rng, 400, 0.08)
	train, test := ds.Split(rng, 0.75)
	layers := []Layer{NewDense(rng, "in", 2, 16), NewReLU("relu-in")}
	for b := 0; b < 6; b++ {
		layers = append(layers, NewResidualMLPBlock(rng, "res"+string(rune('0'+b)), 16))
	}
	layers = append(layers, NewDense(rng, "head", 16, 2))
	net := NewNetwork(layers...)
	tr := NewTrainer(net, NewSoftmaxCrossEntropy(), NewAdam(0.01), rng)
	tr.Fit(train.X, OneHot(train.Labels, 2), TrainConfig{Epochs: 50, BatchSize: 32})
	if acc := net.Accuracy(test.X, test.Labels); acc < 0.93 {
		t.Fatalf("14-layer residual net accuracy %.3f", acc)
	}
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bad := NewResidual("bad", NewDense(rng, "fc", 4, 7))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape change")
		}
	}()
	bad.Forward(tensor.New(2, 4), false)
}

func TestSaveLoadMLPRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := MLPConfig{In: 4, Hidden: []int{8, 8}, Out: 3, BatchNm: true}
	net := NewMLP(rng, cfg)
	// Train briefly so batch-norm running stats are non-trivial.
	ds := data.GaussianMixture(rng, 200, 4, 3, 3)
	NewTrainer(net, NewSoftmaxCrossEntropy(), NewAdam(0.01), rng).
		Fit(ds.X, OneHot(ds.Labels, 3), TrainConfig{Epochs: 5, BatchSize: 32})

	blob, err := SaveMLP(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	restored, gotCfg, err := LoadMLP(blob)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg.In != cfg.In || len(gotCfg.Hidden) != 2 {
		t.Fatalf("config mismatch: %+v", gotCfg)
	}
	x := tensor.RandNormal(rng, 0, 1, 10, 4)
	if !tensor.Equal(net.Forward(x, false), restored.Forward(x, false), 1e-12) {
		t.Fatal("restored network diverges from original")
	}
}

func TestLoadMLPGarbageErrors(t *testing.T) {
	if _, _, err := LoadMLP([]byte("not a snapshot")); err == nil {
		t.Fatal("expected decode error")
	}
}
