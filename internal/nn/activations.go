package nn

import (
	"math"

	"dlsys/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	name string
	mask []bool // which inputs were positive
	n    int
}

// NewReLU creates a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	if train {
		if cap(r.mask) < x.Size() {
			r.mask = make([]bool, x.Size())
		}
		r.mask = r.mask[:x.Size()]
		r.n = x.Size()
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			if train {
				r.mask[i] = true
			}
		} else if train {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape()...)
	for i, v := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// ActivationFloats implements ActivationSizer. The boolean mask is charged
// as one float per element to keep the accounting simple and conservative.
func (r *ReLU) ActivationFloats(batch int) int64 {
	if batch <= 0 || r.n == 0 {
		return 0
	}
	return int64(r.n)
}

// OutputShape implements OutputShaper.
func (r *ReLU) OutputShape(in []int) []int { return in }

// Sigmoid applies 1/(1+e^-x) element-wise.
type Sigmoid struct {
	name string
	y    *tensor.Tensor
}

// NewSigmoid creates a Sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.name }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.Apply(x, func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	if train {
		s.y = out
	} else {
		s.y = nil
	}
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape()...)
	for i, v := range dout.Data {
		y := s.y.Data[i]
		dx.Data[i] = v * y * (1 - y)
	}
	s.y = nil
	return dx
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutputShape implements OutputShaper.
func (s *Sigmoid) OutputShape(in []int) []int { return in }

// Tanh applies tanh element-wise.
type Tanh struct {
	name string
	y    *tensor.Tensor
}

// NewTanh creates a Tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (t *Tanh) Name() string { return t.name }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.Apply(x, math.Tanh)
	if train {
		t.y = out
	} else {
		t.y = nil
	}
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dout.Shape()...)
	for i, v := range dout.Data {
		y := t.y.Data[i]
		dx.Data[i] = v * (1 - y*y)
	}
	t.y = nil
	return dx
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// OutputShape implements OutputShaper.
func (t *Tanh) OutputShape(in []int) []int { return in }

// Softmax converts a batch of logit rows into probability rows. It is used
// for inference output; training should use the fused SoftmaxCrossEntropy
// loss, which is numerically stabler and cheaper.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Rank() != 2 {
		panic("nn: Softmax requires rank-2 logits")
	}
	m, n := logits.Dim(0), logits.Dim(1)
	out := tensor.New(m, n)
	for i := 0; i < m; i++ {
		row := logits.Row(i)
		orow := out.Row(i)
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// SoftmaxTemperature is Softmax with logits divided by temperature T first.
// T > 1 softens the distribution; used by knowledge distillation.
func SoftmaxTemperature(logits *tensor.Tensor, T float64) *tensor.Tensor {
	return Softmax(tensor.Scale(1/T, logits))
}
