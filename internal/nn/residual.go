package nn

import (
	"math/rand"

	"dlsys/internal/tensor"
)

// newZeroRand returns a deterministic RNG used where initial weights are
// immediately overwritten (deserialization).
func newZeroRand() *rand.Rand { return rand.New(rand.NewSource(0)) }

// Residual wraps an inner layer stack with an identity skip connection:
// y = x + F(x). Input and output widths must match. Residual connections
// are what let the "dozens of layers" networks the tutorial describes train
// at depth: the identity path keeps gradients flowing.
type Residual struct {
	name  string
	Inner []Layer
}

// NewResidual creates a residual block around the given inner layers.
func NewResidual(name string, inner ...Layer) *Residual {
	return &Residual{name: name, Inner: inner}
}

// NewResidualMLPBlock builds the standard two-layer residual block
// Dense→ReLU→Dense of the given width.
func NewResidualMLPBlock(rng *rand.Rand, name string, width int) *Residual {
	return NewResidual(name,
		NewDense(rng, name+".fc0", width, width),
		NewReLU(name+".relu"),
		NewDense(rng, name+".fc1", width, width),
	)
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	h := x
	for _, l := range r.Inner {
		h = l.Forward(h, train)
	}
	if !h.SameShape(x) {
		panic("nn: residual inner stack changed the shape")
	}
	return tensor.Add(x, h)
}

// Backward implements Layer: the gradient splits between the skip path
// (identity) and the inner stack.
func (r *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dh := dout
	for i := len(r.Inner) - 1; i >= 0; i-- {
		dh = r.Inner[i].Backward(dh)
	}
	return tensor.Add(dout, dh)
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	var ps []*Param
	for _, l := range r.Inner {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// FLOPs implements FLOPsCounter.
func (r *Residual) FLOPs(batch int) int64 {
	var total int64
	for _, l := range r.Inner {
		if fc, ok := l.(FLOPsCounter); ok {
			total += fc.FLOPs(batch)
		}
	}
	return total
}

// OutputShape implements OutputShaper (identity by construction).
func (r *Residual) OutputShape(in []int) []int { return in }

// PostStep implements PostStepper for pruned inner layers.
func (r *Residual) PostStep() {
	for _, l := range r.Inner {
		if ps, ok := l.(PostStepper); ok {
			ps.PostStep()
		}
	}
}
