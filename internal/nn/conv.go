package nn

import (
	"math"
	"math/rand"

	"dlsys/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs implemented by im2col
// lowering followed by a matrix multiplication. The kernel parameter has
// shape [outC, inC*KH*KW] (already flattened for the GEMM) and the bias has
// shape [1, outC].
type Conv2D struct {
	name string
	Geom tensor.ConvGeom
	OutC int
	W, B *Param

	cols  *tensor.Tensor // cached im2col matrix
	batch int

	// scratch is the inference-path im2col buffer, reused across eval
	// forwards of the same batch shape so steady-state serving allocates
	// only the layer output. The training path keeps its own fresh matrix
	// (it must survive until Backward).
	scratch *tensor.Tensor
}

// NewConv2D creates a convolution layer with He-initialised kernels.
func NewConv2D(rng *rand.Rand, name string, g tensor.ConvGeom, outC int) *Conv2D {
	fanIn := g.InC * g.KH * g.KW
	return &Conv2D{
		name: name,
		Geom: g,
		OutC: outC,
		W:    NewParam(name+".W", tensor.HeInitShape(rng, fanIn, outC, fanIn)),
		B:    NewParam(name+".b", tensor.New(1, outC)),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Forward implements Layer. Input must be [N, InC, InH, InW]; output is
// [N, OutC, OutH, OutW].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	var cols *tensor.Tensor // [N*OH*OW, InC*KH*KW]
	if train {
		cols = tensor.Im2Col(x, c.Geom)
		c.cols = cols
		c.batch = n
	} else {
		c.scratch = tensor.Im2ColInto(c.scratch, x, c.Geom)
		cols = c.scratch
		c.cols = nil
	}
	// [N*OH*OW, OutC] = cols · Wᵀ
	prod := tensor.MatMulTransB(cols, c.W.Value)
	oh, ow := c.Geom.OutH(), c.Geom.OutW()
	out := tensor.New(n, c.OutC, oh, ow)
	// Scatter [N*OH*OW, OutC] into NCHW order, adding bias.
	hw := oh * ow
	for b := 0; b < n; b++ {
		for p := 0; p < hw; p++ {
			row := prod.Row(b*hw + p)
			for oc := 0; oc < c.OutC; oc++ {
				out.Data[((b*c.OutC)+oc)*hw+p] = row[oc] + c.B.Value.Data[oc]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D.Backward without training Forward")
	}
	n := c.batch
	oh, ow := c.Geom.OutH(), c.Geom.OutW()
	hw := oh * ow
	// Gather dout (NCHW) into [N*OH*OW, OutC].
	dprod := tensor.New(n*hw, c.OutC)
	for b := 0; b < n; b++ {
		for p := 0; p < hw; p++ {
			row := dprod.Row(b*hw + p)
			for oc := 0; oc < c.OutC; oc++ {
				row[oc] = dout.Data[((b*c.OutC)+oc)*hw+p]
			}
		}
	}
	// dW = dprodᵀ · cols ; db = column sums of dprod.
	c.W.Grad.AddInPlace(tensor.MatMulTransA(dprod, c.cols))
	c.B.Grad.AddInPlace(tensor.SumRows(dprod))
	// dcols = dprod · W ; dx = Col2Im(dcols).
	dcols := tensor.MatMul(dprod, c.W.Value)
	dx := tensor.Col2Im(dcols, n, c.Geom)
	c.cols = nil
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// FLOPs implements FLOPsCounter.
func (c *Conv2D) FLOPs(batch int) int64 {
	positions := int64(c.Geom.OutH()) * int64(c.Geom.OutW())
	perPos := 2 * int64(c.Geom.InC*c.Geom.KH*c.Geom.KW) * int64(c.OutC)
	return int64(batch) * positions * (perPos + int64(c.OutC))
}

// ActivationFloats implements ActivationSizer: the im2col matrix dominates.
func (c *Conv2D) ActivationFloats(batch int) int64 {
	return int64(batch) * int64(c.Geom.OutH()*c.Geom.OutW()) * int64(c.Geom.InC*c.Geom.KH*c.Geom.KW)
}

// OutputShape implements OutputShaper.
func (c *Conv2D) OutputShape(in []int) []int {
	return []int{c.OutC, c.Geom.OutH(), c.Geom.OutW()}
}

// MaxPool2D performs max pooling with a square window and equal stride over
// NCHW inputs.
type MaxPool2D struct {
	name          string
	Window        int
	C, InH, InW   int
	argmax        []int // flat input index of each output's max
	inShape       []int
	outH, outW, n int
}

// NewMaxPool2D creates a pooling layer for inputs with the given channel
// count and spatial size.
func NewMaxPool2D(name string, c, inH, inW, window int) *MaxPool2D {
	return &MaxPool2D{name: name, Window: window, C: c, InH: inH, InW: inW}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.name }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	oh, ow := m.InH/m.Window, m.InW/m.Window
	out := tensor.New(n, m.C, oh, ow)
	if train {
		m.argmax = make([]int, out.Size())
		m.inShape = x.Shape()
		m.outH, m.outW, m.n = oh, ow, n
	}
	oi := 0
	for b := 0; b < n; b++ {
		for c := 0; c < m.C; c++ {
			base := ((b * m.C) + c) * m.InH * m.InW
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for wy := 0; wy < m.Window; wy++ {
						iy := oy*m.Window + wy
						for wx := 0; wx < m.Window; wx++ {
							ix := ox*m.Window + wx
							idx := base + iy*m.InW + ix
							if v := x.Data[idx]; v > best {
								best = v
								bestIdx = idx
							}
						}
					}
					out.Data[oi] = best
					if train {
						m.argmax[oi] = bestIdx
					}
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.inShape...)
	for oi, idx := range m.argmax {
		dx.Data[idx] += dout.Data[oi]
	}
	m.argmax = nil
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutputShape implements OutputShaper.
func (m *MaxPool2D) OutputShape(in []int) []int {
	return []int{m.C, m.InH / m.Window, m.InW / m.Window}
}

// Flatten reshapes [N, ...] to [N, prod(...)]. It is shape bookkeeping
// only; data is shared.
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten creates a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = x.Shape()
	}
	return x.Reshape(x.Dim(0), -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutputShape implements OutputShaper.
func (f *Flatten) OutputShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}
