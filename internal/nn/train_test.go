package nn

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/tensor"
)

func TestMLPConvergesOnGaussianMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ds := data.GaussianMixture(rng, 600, 4, 3, 4)
	train, test := ds.Split(rng, 0.8)
	net := NewMLP(rng, MLPConfig{In: 4, Hidden: []int{32}, Out: 3})
	tr := NewTrainer(net, NewSoftmaxCrossEntropy(), NewAdam(0.01), rng)
	stats := tr.Fit(train.X, OneHot(train.Labels, 3), TrainConfig{Epochs: 30, BatchSize: 32})
	if acc := net.Accuracy(test.X, test.Labels); acc < 0.9 {
		t.Fatalf("test accuracy %.3f < 0.9 (final loss %.4f)", acc, stats.FinalLoss())
	}
	if stats.Steps == 0 || stats.FLOPs == 0 {
		t.Fatal("stats not recorded")
	}
	// Loss should broadly decrease.
	if stats.EpochLoss[len(stats.EpochLoss)-1] > stats.EpochLoss[0]*0.5 {
		t.Fatalf("loss did not halve: %v -> %v", stats.EpochLoss[0], stats.FinalLoss())
	}
}

func TestMLPSolvesTwoMoons(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := data.TwoMoons(rng, 400, 0.08)
	train, test := ds.Split(rng, 0.75)
	net := NewMLP(rng, MLPConfig{In: 2, Hidden: []int{24, 24}, Out: 2})
	tr := NewTrainer(net, NewSoftmaxCrossEntropy(), NewAdam(0.02), rng)
	tr.Fit(train.X, OneHot(train.Labels, 2), TrainConfig{Epochs: 60, BatchSize: 32})
	if acc := net.Accuracy(test.X, test.Labels); acc < 0.95 {
		t.Fatalf("two-moons accuracy %.3f < 0.95", acc)
	}
}

func TestCNNLearnsSyntheticDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds, _ := data.SyntheticDigits(rng, data.DigitsConfig{N: 240})
	train, test := ds.Split(rng, 0.8)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := NewNetwork(
		NewConv2D(rng, "conv1", g, 4),
		NewReLU("relu1"),
		NewMaxPool2D("pool1", 4, 8, 8, 2),
		NewFlatten("flat"),
		NewDense(rng, "fc1", 4*4*4, 4),
	)
	tr := NewTrainer(net, NewSoftmaxCrossEntropy(), NewAdam(0.01), rng)
	tr.Fit(train.X, OneHot(train.Labels, 4), TrainConfig{Epochs: 25, BatchSize: 16})
	if acc := net.Accuracy(test.X, test.Labels); acc < 0.9 {
		t.Fatalf("CNN accuracy %.3f < 0.9", acc)
	}
}

func TestOptimizersAllConverge(t *testing.T) {
	base := rand.New(rand.NewSource(3))
	ds := data.GaussianMixture(base, 300, 3, 2, 4)
	for _, tc := range []struct {
		name string
		opt  func() Optimizer
		lr   float64
	}{
		{"sgd", func() Optimizer { return NewSGD(0.1) }, 0.1},
		{"momentum", func() Optimizer { return NewMomentum(0.05, 0.9) }, 0.05},
		{"adam", func() Optimizer { return NewAdam(0.01) }, 0.01},
	} {
		rng := rand.New(rand.NewSource(3))
		net := NewMLP(rng, MLPConfig{In: 3, Hidden: []int{16}, Out: 2})
		tr := NewTrainer(net, NewSoftmaxCrossEntropy(), tc.opt(), rng)
		tr.Fit(ds.X, OneHot(ds.Labels, 2), TrainConfig{Epochs: 25, BatchSize: 32})
		if acc := net.Accuracy(ds.X, ds.Labels); acc < 0.9 {
			t.Fatalf("%s: train accuracy %.3f < 0.9", tc.name, acc)
		}
	}
}

func TestStateDictRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := MLPConfig{In: 4, Hidden: []int{8}, Out: 3, BatchNm: true}
	a := NewMLP(rng, cfg)
	// Touch batchnorm running stats by a training pass.
	x := tensor.RandNormal(rng, 0, 1, 16, 4)
	y := OneHot(make([]int, 16), 3)
	NewTrainer(a, NewSoftmaxCrossEntropy(), NewSGD(0.01), rng).Fit(x, y, TrainConfig{Epochs: 2, BatchSize: 8})

	b := NewMLP(rand.New(rand.NewSource(99)), cfg)
	b.LoadStateDict(a.StateDict())
	xt := tensor.RandNormal(rng, 0, 1, 8, 4)
	oa := a.Forward(xt, false)
	ob := b.Forward(xt, false)
	if !tensor.Equal(oa, ob, 1e-12) {
		t.Fatal("state dict round trip changed inference output")
	}
}

func TestParamAndGradVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewMLP(rng, MLPConfig{In: 3, Hidden: []int{4}, Out: 2})
	v := net.ParamVector()
	if len(v) != net.NumParams() {
		t.Fatalf("vector length %d != %d params", len(v), net.NumParams())
	}
	for i := range v {
		v[i] = float64(i)
	}
	net.SetParamVector(v)
	v2 := net.ParamVector()
	for i := range v2 {
		if v2[i] != float64(i) {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	g := make([]float64, len(v))
	for i := range g {
		g[i] = -float64(i)
	}
	net.SetGradVector(g)
	g2 := net.GradVector()
	for i := range g2 {
		if g2[i] != -float64(i) {
			t.Fatal("grad vector round trip failed")
		}
	}
}

func TestLRSchedules(t *testing.T) {
	c := ConstantLR(0.1)
	if c(0) != 0.1 || c(100) != 0.1 {
		t.Fatal("constant LR not constant")
	}
	s := StepDecayLR(1.0, 0.5, 10)
	if s(0) != 1.0 || s(10) != 0.5 || s(25) != 0.25 {
		t.Fatalf("step decay wrong: %g %g %g", s(0), s(10), s(25))
	}
	cos := CosineAnnealingLR(1.0, 100)
	if math.Abs(cos(0)-1.0) > 1e-12 || cos(100) != 0 || cos(50) > cos(10) {
		t.Fatal("cosine annealing wrong shape")
	}
	cyc := CyclicCosineLR(1.0, 10)
	if math.Abs(cyc(0)-cyc(10)) > 1e-12 {
		t.Fatal("cyclic LR should restart each cycle")
	}
	if cyc(9) > 0.1 {
		t.Fatalf("end of cycle LR %g should be near 0", cyc(9))
	}
}

func TestFLOPsAndBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewMLP(rng, MLPConfig{In: 10, Hidden: []int{20}, Out: 5})
	// fc0: 2*10*20+20 per example; fc1: 2*20*5+5.
	want := int64(1)*(2*10*20+20) + int64(1)*(2*20*5+5)
	if got := net.FLOPs(1); got != want {
		t.Fatalf("FLOPs=%d want %d", got, want)
	}
	params := 10*20 + 20 + 20*5 + 5
	if net.NumParams() != params {
		t.Fatalf("NumParams=%d want %d", net.NumParams(), params)
	}
	if net.ParamBytes(32) != int64(params*4) {
		t.Fatalf("ParamBytes(32)=%d", net.ParamBytes(32))
	}
	if net.ParamBytes(1) != int64((params+7)/8) {
		t.Fatalf("ParamBytes(1)=%d", net.ParamBytes(1))
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d, err := NewDropout(rng, "drop", 0.5)
	if err != nil {
		t.Fatalf("NewDropout: %v", err)
	}
	x := tensor.Full(1, 100, 10)
	outTrain := d.Forward(x, true)
	zeros := 0
	for _, v := range outTrain.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Fatalf("dropout zeroed %d of 1000, want ~500", zeros)
	}
	outEval := d.Forward(x, false)
	if !tensor.Equal(outEval, x, 0) {
		t.Fatal("eval-mode dropout should be identity")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	logits := tensor.RandNormal(rng, 0, 5, 7, 9)
	p := Softmax(logits)
	for i := 0; i < 7; i++ {
		var s float64
		for _, v := range p.Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
	// Temperature flattens: max prob at T=5 below max prob at T=1.
	p5 := SoftmaxTemperature(logits, 5)
	if p5.Max() >= p.Max() {
		t.Fatal("temperature should soften the distribution")
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bn := NewBatchNorm("bn", 3)
	// Train on shifted data so running stats move away from init.
	for i := 0; i < 50; i++ {
		x := tensor.RandNormal(rng, 5, 2, 16, 3)
		out := bn.Forward(x, true)
		bn.Backward(tensor.New(out.Shape()...))
	}
	mean, _ := bn.RunningStats()
	if mean[0] < 3 {
		t.Fatalf("running mean %g did not track data mean 5", mean[0])
	}
	// Inference on the same distribution should be ~standardized.
	x := tensor.RandNormal(rng, 5, 2, 512, 3)
	out := bn.Forward(x, false)
	if m := out.Mean(); math.Abs(m) > 0.3 {
		t.Fatalf("inference output mean %g, want ~0", m)
	}
}

func TestMLPRegressionWithMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x, y, _ := data.Regression(rng, data.RegressionConfig{N: 600, Dim: 4, Noise: 0.05, Nonlinear: true})
	net := NewMLP(rng, MLPConfig{In: 4, Hidden: []int{32, 32}, Out: 1})
	tr := NewTrainer(net, NewMSE(), NewAdam(0.005), rng)
	stats := tr.Fit(x, y, TrainConfig{Epochs: 120, BatchSize: 32})
	// Final MSE loss should approach the noise floor and certainly be far
	// below the target variance (~several units).
	if stats.FinalLoss() > 0.05 {
		t.Fatalf("regression loss %.4f did not converge", stats.FinalLoss())
	}
	// Loss decreased by >10x from the start.
	if stats.FinalLoss() > stats.EpochLoss[0]/10 {
		t.Fatalf("loss only fell from %.4f to %.4f", stats.EpochLoss[0], stats.FinalLoss())
	}
}
