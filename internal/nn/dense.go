package nn

import (
	"fmt"
	"math/rand"

	"dlsys/internal/tensor"
)

// Dense is a fully-connected layer computing y = xW + b over a batch of row
// vectors. W has shape [in, out], b has shape [1, out].
type Dense struct {
	name string
	W, B *Param
	// mask, when non-nil, is applied element-wise to W on every Forward and
	// to W's gradient on every Backward; the pruning package uses it to
	// keep pruned weights at zero through further training.
	mask *tensor.Tensor

	x *tensor.Tensor // cached input for backward
}

// NewDense creates a Dense layer with He-initialised weights, appropriate
// for ReLU networks.
func NewDense(rng *rand.Rand, name string, in, out int) *Dense {
	return &Dense{
		name: name,
		W:    NewParam(name+".W", tensor.HeInit(rng, in, out)),
		B:    NewParam(name+".b", tensor.New(1, out)),
	}
}

// NewDenseXavier creates a Dense layer with Xavier-initialised weights,
// appropriate for tanh/sigmoid networks.
func NewDenseXavier(rng *rand.Rand, name string, in, out int) *Dense {
	return &Dense{
		name: name,
		W:    NewParam(name+".W", tensor.XavierInit(rng, in, out)),
		B:    NewParam(name+".b", tensor.New(1, out)),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// In returns the input width.
func (d *Dense) In() int { return d.W.Value.Dim(0) }

// Out returns the output width.
func (d *Dense) Out() int { return d.W.Value.Dim(1) }

// SetMask installs (or clears, with nil) a 0/1 pruning mask with W's shape.
// The mask is applied immediately and on every subsequent forward/backward.
// A mask of the wrong shape is rejected with an error.
func (d *Dense) SetMask(m *tensor.Tensor) error {
	if m != nil && !m.SameShape(d.W.Value) {
		return fmt.Errorf("nn: mask shape %v != weight shape %v", m.Shape(), d.W.Value.Shape())
	}
	d.mask = m
	d.applyMask()
	return nil
}

// Mask returns the current pruning mask, or nil.
func (d *Dense) Mask() *tensor.Tensor { return d.mask }

// PostStep implements PostStepper: it re-zeroes masked weights that the
// optimizer may have perturbed (momentum and Adam state produce nonzero
// updates even for zero gradients).
func (d *Dense) PostStep() { d.applyMask() }

func (d *Dense) applyMask() {
	if d.mask == nil {
		return
	}
	for i := range d.W.Value.Data {
		d.W.Value.Data[i] *= d.mask.Data[i]
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.applyMask()
	if train {
		d.x = x
	} else {
		d.x = nil
	}
	return tensor.AddRowVector(tensor.MatMul(x, d.W.Value), d.B.Value)
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense.Backward without training Forward")
	}
	dw := tensor.MatMulTransA(d.x, dout)
	if d.mask != nil {
		for i := range dw.Data {
			dw.Data[i] *= d.mask.Data[i]
		}
	}
	d.W.Grad.AddInPlace(dw)
	d.B.Grad.AddInPlace(tensor.SumRows(dout))
	dx := tensor.MatMulTransB(dout, d.W.Value)
	d.x = nil
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// FLOPs implements FLOPsCounter: 2·in·out multiply-adds plus the bias add.
func (d *Dense) FLOPs(batch int) int64 {
	in, out := int64(d.In()), int64(d.Out())
	return int64(batch) * (2*in*out + out)
}

// ActivationFloats implements ActivationSizer: the cached input.
func (d *Dense) ActivationFloats(batch int) int64 {
	return int64(batch) * int64(d.In())
}

// OutputShape implements OutputShaper.
func (d *Dense) OutputShape(in []int) []int { return []int{d.Out()} }
