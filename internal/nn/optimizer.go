package nn

import "math"

// Optimizer updates parameters from their accumulated gradients. Step must
// be followed by ZeroGrad on the network (the Trainer does this).
type Optimizer interface {
	Step(params []*Param)
	// SetLR changes the learning rate (used by schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// StateResetter is implemented by optimizers that carry per-parameter state
// (momentum velocity, Adam moments). Checkpoint rollback calls ResetState so
// stale state accumulated from diverging steps cannot re-poison the restored
// parameters.
type StateResetter interface {
	ResetState()
}

// SGD is plain stochastic gradient descent with optional L2 weight decay.
type SGD struct {
	lr          float64
	WeightDecay float64
}

// NewSGD creates a plain SGD optimizer.
func NewSGD(lr float64) *SGD { return &SGD{lr: lr} }

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + o.WeightDecay*p.Value.Data[i]
			p.Value.Data[i] -= o.lr * g
		}
	}
}

// SetLR implements Optimizer.
func (o *SGD) SetLR(lr float64) { o.lr = lr }

// LR implements Optimizer.
func (o *SGD) LR() float64 { return o.lr }

// Momentum is SGD with classical momentum.
type Momentum struct {
	lr, Beta    float64
	WeightDecay float64
	velocity    map[*Param][]float64
}

// NewMomentum creates a momentum optimizer (beta is typically 0.9).
func NewMomentum(lr, beta float64) *Momentum {
	return &Momentum{lr: lr, Beta: beta, velocity: make(map[*Param][]float64)}
}

// Step implements Optimizer.
func (o *Momentum) Step(params []*Param) {
	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float64, p.Value.Size())
			o.velocity[p] = v
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + o.WeightDecay*p.Value.Data[i]
			v[i] = o.Beta*v[i] - o.lr*g
			p.Value.Data[i] += v[i]
		}
	}
}

// ResetState implements StateResetter: it discards all velocity.
func (o *Momentum) ResetState() { o.velocity = make(map[*Param][]float64) }

// SetLR implements Optimizer.
func (o *Momentum) SetLR(lr float64) { o.lr = lr }

// LR implements Optimizer.
func (o *Momentum) LR() float64 { return o.lr }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	lr, Beta1, Beta2, Eps float64
	WeightDecay           float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam creates an Adam optimizer with standard defaults
// (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, p.Value.Size())
			o.m[p] = m
			o.v[p] = make([]float64, p.Value.Size())
		}
		v := o.v[p]
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + o.WeightDecay*p.Value.Data[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.Value.Data[i] -= o.lr * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
}

// ResetState implements StateResetter: it discards both moment estimates and
// the bias-correction step count.
func (o *Adam) ResetState() {
	o.t = 0
	o.m = make(map[*Param][]float64)
	o.v = make(map[*Param][]float64)
}

// SetLR implements Optimizer.
func (o *Adam) SetLR(lr float64) { o.lr = lr }

// LR implements Optimizer.
func (o *Adam) LR() float64 { return o.lr }

// LRSchedule maps a global step/epoch index to a learning rate.
type LRSchedule func(epoch int) float64

// ConstantLR returns a schedule that always yields lr.
func ConstantLR(lr float64) LRSchedule { return func(int) float64 { return lr } }

// StepDecayLR decays lr by factor every period epochs.
func StepDecayLR(lr, factor float64, period int) LRSchedule {
	return func(epoch int) float64 {
		return lr * math.Pow(factor, float64(epoch/period))
	}
}

// CosineAnnealingLR anneals from lr to ~0 over total epochs.
func CosineAnnealingLR(lr float64, total int) LRSchedule {
	return func(epoch int) float64 {
		if epoch >= total {
			return 0
		}
		return lr / 2 * (1 + math.Cos(math.Pi*float64(epoch)/float64(total)))
	}
}

// CyclicCosineLR implements the snapshot-ensembles schedule: the cosine
// annealing restarts every cycleLen epochs, so the model repeatedly
// converges into (different) local minima. A snapshot is taken at the end
// of each cycle, where the LR is near zero.
func CyclicCosineLR(lr float64, cycleLen int) LRSchedule {
	return func(epoch int) float64 {
		pos := epoch % cycleLen
		return lr / 2 * (1 + math.Cos(math.Pi*float64(pos)/float64(cycleLen)))
	}
}
