package nn

import (
	"fmt"
	"math/rand"

	"dlsys/internal/tensor"
)

// Network is an ordered sequence of layers trained end to end.
type Network struct {
	Layers []Layer
}

// NewNetwork creates a network from the given layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// MLPConfig describes a multi-layer perceptron: input width, hidden widths,
// and output width (number of classes or regression targets).
type MLPConfig struct {
	In      int
	Hidden  []int
	Out     int
	Dropout float64 // 0 disables
	BatchNm bool
}

// Validate checks the config describes a constructible network: positive
// widths everywhere and a dropout rate in [0, 1). Callers that accept
// configs from untrusted input (distributed specs, pipelines) validate at
// construction so no layer constructor can fail downstream.
func (cfg MLPConfig) Validate() error {
	if cfg.In < 1 {
		return fmt.Errorf("nn: MLP input width %d < 1", cfg.In)
	}
	if cfg.Out < 1 {
		return fmt.Errorf("nn: MLP output width %d < 1", cfg.Out)
	}
	for i, h := range cfg.Hidden {
		if h < 1 {
			return fmt.Errorf("nn: MLP hidden width %d (layer %d) < 1", h, i)
		}
	}
	if cfg.Dropout < 0 || cfg.Dropout >= 1 {
		return fmt.Errorf("nn: MLP dropout rate %g out of [0, 1)", cfg.Dropout)
	}
	return nil
}

// NewMLP builds a ReLU MLP per the config. Layer names are deterministic
// ("fc0", "relu0", ...) so state dictionaries are portable between
// identically-configured networks. Invalid configs panic; use
// NewMLPChecked when the config comes from untrusted input.
func NewMLP(rng *rand.Rand, cfg MLPConfig) *Network {
	net, err := NewMLPChecked(rng, cfg)
	if err != nil {
		panic(err)
	}
	return net
}

// NewMLPChecked is NewMLP returning the config-validation error instead of
// panicking.
func NewMLPChecked(rng *rand.Rand, cfg MLPConfig) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var layers []Layer
	prev := cfg.In
	for i, h := range cfg.Hidden {
		layers = append(layers, NewDense(rng, fmt.Sprintf("fc%d", i), prev, h))
		if cfg.BatchNm {
			layers = append(layers, NewBatchNorm(fmt.Sprintf("bn%d", i), h))
		}
		layers = append(layers, NewReLU(fmt.Sprintf("relu%d", i)))
		if cfg.Dropout > 0 {
			// The validated rate cannot make NewDropout fail.
			drop, _ := NewDropout(rng, fmt.Sprintf("drop%d", i), cfg.Dropout)
			layers = append(layers, drop)
		}
		prev = h
	}
	layers = append(layers, NewDense(rng, fmt.Sprintf("fc%d", len(cfg.Hidden)), prev, cfg.Out))
	return NewNetwork(layers...), nil
}

// Forward runs the network on a batch, returning the final output (logits
// for classifiers). When train is true, every layer caches for backward.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dout through all layers in reverse, accumulating
// parameter gradients, and returns the gradient w.r.t. the network input.
func (n *Network) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// PostStepper is implemented by layers that must restore invariants after
// an optimizer update (e.g. masked Dense layers re-zeroing pruned weights,
// which momentum-carrying optimizers would otherwise perturb).
type PostStepper interface {
	PostStep()
}

// PostStep invokes PostStep on every layer that implements PostStepper.
// Trainers call it after each optimizer step.
func (n *Network) PostStep() {
	for _, l := range n.Layers {
		if ps, ok := l.(PostStepper); ok {
			ps.PostStep()
		}
	}
}

// ZeroGrad clears every parameter gradient.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Size()
	}
	return total
}

// ParamBytes returns the model size in bytes at the given precision
// (bits per weight), e.g. 32 for float32 deployment, 8 for int8.
func (n *Network) ParamBytes(bits int) int64 {
	return (int64(n.NumParams())*int64(bits) + 7) / 8
}

// FLOPs estimates the forward-pass floating point operations for a batch.
func (n *Network) FLOPs(batch int) int64 {
	var total int64
	for _, l := range n.Layers {
		if fc, ok := l.(FLOPsCounter); ok {
			total += fc.FLOPs(batch)
		}
	}
	return total
}

// Predict returns the argmax class for each row of x.
func (n *Network) Predict(x *tensor.Tensor) []int {
	out := n.Forward(x, false)
	preds := make([]int, out.Dim(0))
	for i := range preds {
		preds[i] = out.ArgMaxRow(i)
	}
	return preds
}

// Accuracy returns the fraction of rows of x whose argmax prediction equals
// the label.
func (n *Network) Accuracy(x *tensor.Tensor, labels []int) float64 {
	preds := n.Predict(x)
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// ParamVector flattens all parameter values into a single slice in layer
// order. Used by distributed training and ensemble interpolation.
func (n *Network) ParamVector() []float64 {
	return n.ParamVectorInto(make([]float64, 0, n.NumParams()))
}

// ParamVectorInto flattens the parameters into dst, reusing its capacity,
// and returns the (possibly regrown) slice. Loops that repeatedly snapshot
// or average models use it to avoid a fresh allocation per call.
func (n *Network) ParamVectorInto(dst []float64) []float64 {
	dst = dst[:0]
	for _, p := range n.Params() {
		dst = append(dst, p.Value.Data...)
	}
	return dst
}

// SetParamVector writes a flat vector (from ParamVector of an identically
// shaped network) back into the parameters.
func (n *Network) SetParamVector(v []float64) {
	off := 0
	for _, p := range n.Params() {
		m := copy(p.Value.Data, v[off:off+p.Value.Size()])
		off += m
	}
	if off != len(v) {
		panic(fmt.Sprintf("nn: SetParamVector length %d != model size %d", len(v), off))
	}
}

// GradVector flattens all parameter gradients into a single slice.
func (n *Network) GradVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.Grad.Data...)
	}
	return out
}

// SetGradVector overwrites all parameter gradients from a flat vector.
func (n *Network) SetGradVector(v []float64) {
	off := 0
	for _, p := range n.Params() {
		off += copy(p.Grad.Data, v[off:off+p.Grad.Size()])
	}
	if off != len(v) {
		panic(fmt.Sprintf("nn: SetGradVector length %d != model size %d", len(v), off))
	}
}

// StateDict captures all parameter values keyed by name (plus batch-norm
// running statistics under ".running_mean"/".running_var" suffixes).
func (n *Network) StateDict() map[string][]float64 {
	sd := make(map[string][]float64)
	for _, p := range n.Params() {
		sd[p.Name] = append([]float64(nil), p.Value.Data...)
	}
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			mean, variance := bn.RunningStats()
			sd[bn.Name()+".running_mean"] = append([]float64(nil), mean...)
			sd[bn.Name()+".running_var"] = append([]float64(nil), variance...)
		}
	}
	return sd
}

// LoadStateDict restores parameters (and batch-norm statistics) captured by
// StateDict on an identically-architected network. Unknown keys are ignored;
// missing keys leave the current value in place.
func (n *Network) LoadStateDict(sd map[string][]float64) {
	for _, p := range n.Params() {
		if v, ok := sd[p.Name]; ok {
			copy(p.Value.Data, v)
		}
	}
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			mean, haveM := sd[bn.Name()+".running_mean"]
			variance, haveV := sd[bn.Name()+".running_var"]
			if haveM && haveV {
				bn.SetRunningStats(mean, variance)
			}
		}
	}
}

// CloneMLP builds a fresh MLP with the same configuration and copies this
// network's state into it. It requires that n was built by NewMLP with cfg.
func CloneMLP(n *Network, rng *rand.Rand, cfg MLPConfig) *Network {
	c := NewMLP(rng, cfg)
	c.LoadStateDict(n.StateDict())
	return c
}
