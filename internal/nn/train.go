package nn

import (
	"math/rand"

	"dlsys/internal/tensor"
)

// TrainConfig controls a training run.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Schedule  LRSchedule // nil keeps the optimizer's LR untouched
	// OnEpochEnd, when non-nil, is invoked after each epoch with the epoch
	// index and the mean training loss; ensembles use it to take snapshots.
	OnEpochEnd func(epoch int, loss float64)
	// Silent reserved for future logging; the trainer never prints.
	Silent bool
}

// TrainStats summarises a completed training run with the resource metrics
// Part 1 of the tutorial is organised around.
type TrainStats struct {
	EpochLoss []float64 // mean loss per epoch
	Steps     int       // optimizer steps taken
	FLOPs     int64     // total estimated FLOPs (forward+backward)
	Examples  int64     // examples processed
}

// FinalLoss returns the last epoch's mean loss (0 if no epochs ran).
func (s TrainStats) FinalLoss() float64 {
	if len(s.EpochLoss) == 0 {
		return 0
	}
	return s.EpochLoss[len(s.EpochLoss)-1]
}

// Trainer runs mini-batch gradient descent on a network.
type Trainer struct {
	Net  *Network
	Loss Loss
	Opt  Optimizer
	RNG  *rand.Rand
}

// NewTrainer wires a network, loss, and optimizer together. The RNG drives
// batch shuffling only.
func NewTrainer(net *Network, loss Loss, opt Optimizer, rng *rand.Rand) *Trainer {
	return &Trainer{Net: net, Loss: loss, Opt: opt, RNG: rng}
}

// Fit trains on inputs x (rank ≥ 2, leading axis = examples) against targets
// y (rank-2, same leading axis) for the configured number of epochs.
func (t *Trainer) Fit(x, y *tensor.Tensor, cfg TrainConfig) TrainStats {
	n := x.Dim(0)
	bs := cfg.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var stats TrainStats
	// The backward pass costs roughly 2× the forward pass.
	flopsPerStep := 3 * t.Net.FLOPs(bs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Schedule != nil {
			t.Opt.SetLR(cfg.Schedule(epoch))
		}
		t.RNG.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			bx, by := gatherBatch(x, y, perm[start:end])
			epochLoss += t.Step(bx, by)
			batches++
			stats.Steps++
			stats.FLOPs += flopsPerStep * int64(end-start) / int64(bs)
			stats.Examples += int64(end - start)
		}
		epochLoss /= float64(batches)
		stats.EpochLoss = append(stats.EpochLoss, epochLoss)
		if cfg.OnEpochEnd != nil {
			cfg.OnEpochEnd(epoch, epochLoss)
		}
	}
	return stats
}

// Step runs one forward/backward/update on a single batch and returns the
// batch loss.
func (t *Trainer) Step(bx, by *tensor.Tensor) float64 {
	t.Net.ZeroGrad()
	out := t.Net.Forward(bx, true)
	loss := t.Loss.Forward(out, by)
	t.Net.Backward(t.Loss.Backward())
	t.Opt.Step(t.Net.Params())
	t.Net.PostStep()
	return loss
}

// ApplyUpdate applies the optimizer to the gradients currently accumulated
// on the network and restores layer invariants. Supervised training loops
// (guard.Trainer) split Step into ComputeGrad + ApplyUpdate so they can
// inspect — and possibly discard — gradients before they touch parameters.
func (t *Trainer) ApplyUpdate() {
	t.Opt.Step(t.Net.Params())
	t.Net.PostStep()
}

// ComputeGrad runs one forward/backward on a batch without updating
// parameters, leaving gradients accumulated on the network. Distributed
// training uses this to obtain per-worker gradients. Returns the loss.
func (t *Trainer) ComputeGrad(bx, by *tensor.Tensor) float64 {
	t.Net.ZeroGrad()
	out := t.Net.Forward(bx, true)
	loss := t.Loss.Forward(out, by)
	t.Net.Backward(t.Loss.Backward())
	return loss
}

// gatherBatch copies the selected example indices of x and y into fresh
// batch tensors. x may be rank 2 (tabular) or rank 4 (images).
func gatherBatch(x, y *tensor.Tensor, idx []int) (*tensor.Tensor, *tensor.Tensor) {
	exSize := x.Size() / x.Dim(0)
	shape := append([]int{len(idx)}, x.Shape()[1:]...)
	bx := tensor.New(shape...)
	for bi, i := range idx {
		copy(bx.Data[bi*exSize:(bi+1)*exSize], x.Data[i*exSize:(i+1)*exSize])
	}
	ySize := y.Dim(1)
	by := tensor.New(len(idx), ySize)
	for bi, i := range idx {
		copy(by.Data[bi*ySize:(bi+1)*ySize], y.Data[i*ySize:(i+1)*ySize])
	}
	return bx, by
}

// GatherBatch is the exported form of batch gathering for packages that
// orchestrate their own training loops (distributed, ensembles).
func GatherBatch(x, y *tensor.Tensor, idx []int) (*tensor.Tensor, *tensor.Tensor) {
	return gatherBatch(x, y, idx)
}

// OneHot encodes integer labels as one-hot rows with the given class count.
func OneHot(labels []int, classes int) *tensor.Tensor {
	out := tensor.New(len(labels), classes)
	for i, l := range labels {
		out.Data[i*classes+l] = 1
	}
	return out
}
