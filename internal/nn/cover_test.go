package nn

import (
	"math/rand"
	"testing"

	"dlsys/internal/tensor"
)

// Exercise the small Layer interface surface (Name, OutputShape,
// ActivationFloats) that other packages rely on for planning.
func TestLayerInterfaceSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	layers := []Layer{
		NewDense(rng, "d", 4, 8),
		NewDenseXavier(rng, "dx", 4, 8),
		NewReLU("r"),
		NewSigmoid("s"),
		NewTanh("t"),
		NewBatchNorm("bn", 8),
		mustDropout(NewDropout(rng, "do", 0.1)),
		NewConv2D(rng, "c", g, 3),
		NewMaxPool2D("p", 2, 6, 6, 2),
		NewFlatten("f"),
		NewResidualMLPBlock(rng, "res", 8),
	}
	for _, l := range layers {
		if l.Name() == "" {
			t.Fatalf("%T has empty name", l)
		}
	}
	// OutputShape chains for the MLP-ish layers.
	shapes := map[string][]int{
		"d":   {8},
		"r":   {4},
		"bn":  {4}, // identity over its input shape
		"do":  {4},
		"f":   {12},
		"res": {8},
		"s":   {4},
		"t":   {4},
	}
	for _, l := range layers {
		os, ok := l.(OutputShaper)
		if !ok {
			continue
		}
		if want, ok := shapes[l.Name()]; ok {
			in := []int{4}
			if l.Name() == "f" {
				in = []int{3, 2, 2}
			}
			if l.Name() == "res" {
				in = []int{8}
			}
			got := os.OutputShape(in)
			if len(got) != len(want) || got[0] != want[0] {
				t.Fatalf("%s OutputShape = %v, want %v", l.Name(), got, want)
			}
		}
	}
	// Conv/pool spatial shapes.
	conv := layers[7].(*Conv2D)
	if got := conv.OutputShape([]int{2, 6, 6}); got[0] != 3 || got[1] != 6 || got[2] != 6 {
		t.Fatalf("conv OutputShape %v", got)
	}
	pool := layers[8].(*MaxPool2D)
	if got := pool.OutputShape([]int{2, 6, 6}); got[1] != 3 || got[2] != 3 {
		t.Fatalf("pool OutputShape %v", got)
	}
}

func TestActivationSizers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(rng, "d", 4, 8)
	if d.ActivationFloats(16) != 64 {
		t.Fatalf("dense activation floats %d", d.ActivationFloats(16))
	}
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c := NewConv2D(rng, "c", g, 2)
	if c.ActivationFloats(2) != int64(2*16*9) {
		t.Fatalf("conv activation floats %d", c.ActivationFloats(2))
	}
	r := NewReLU("r")
	// Before any forward, ReLU reports zero retained floats.
	if r.ActivationFloats(4) != 0 {
		t.Fatal("fresh ReLU should report 0 activation floats")
	}
	r.Forward(tensor.New(4, 8), true)
	if r.ActivationFloats(4) != 32 {
		t.Fatalf("ReLU activation floats %d", r.ActivationFloats(4))
	}
}

func TestDenseMaskAccessorAndBadMask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(rng, "d", 3, 3)
	if d.Mask() != nil {
		t.Fatal("fresh layer should have no mask")
	}
	m := tensor.Full(1, 3, 3)
	if err := d.SetMask(m); err != nil {
		t.Fatalf("SetMask: %v", err)
	}
	if d.Mask() != m {
		t.Fatal("mask accessor broken")
	}
	if err := d.SetMask(nil); err != nil { // clearing is allowed
		t.Fatalf("SetMask(nil): %v", err)
	}
	if err := d.SetMask(tensor.Full(1, 2, 2)); err == nil {
		t.Fatal("expected error on bad mask shape")
	}
}

func TestBackwardWithoutForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for name, fn := range map[string]func(){
		"dense": func() { NewDense(rng, "d", 2, 2).Backward(tensor.New(1, 2)) },
		"bn":    func() { NewBatchNorm("bn", 2).Backward(tensor.New(1, 2)) },
		"conv": func() {
			g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1, Pad: 0}
			NewConv2D(rng, "c", g, 1).Backward(tensor.New(1, 1, 2, 2))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSetParamVectorLengthMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP(rng, MLPConfig{In: 2, Hidden: []int{2}, Out: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.SetParamVector(make([]float64, 3))
}

func TestDropoutBadRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewDropout(rng, "do", 1.0); err == nil {
		t.Fatal("expected error for rate 1.0")
	}
	if _, err := NewDropout(rng, "do", -0.1); err == nil {
		t.Fatal("expected error for negative rate")
	}
}

func TestMLPConfigValidate(t *testing.T) {
	bad := []MLPConfig{
		{In: 0, Out: 2},
		{In: 2, Out: 0},
		{In: 2, Hidden: []int{4, 0}, Out: 2},
		{In: 2, Out: 2, Dropout: 1},
		{In: 2, Out: 2, Dropout: -0.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should fail validation: %+v", i, cfg)
		}
		if _, err := NewMLPChecked(rand.New(rand.NewSource(1)), cfg); err == nil {
			t.Fatalf("NewMLPChecked should reject config %d", i)
		}
	}
	good := MLPConfig{In: 3, Hidden: []int{8}, Out: 2, Dropout: 0.2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	net, err := NewMLPChecked(rand.New(rand.NewSource(1)), good)
	if err != nil || net == nil {
		t.Fatalf("NewMLPChecked: %v", err)
	}
}

func TestNewMLPPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP(rand.New(rand.NewSource(1)), MLPConfig{In: 0, Out: 2})
}

// mustDropout unwraps NewDropout in tests where the rate is known-valid.
func mustDropout(d *Dropout, err error) *Dropout {
	if err != nil {
		panic(err)
	}
	return d
}

func TestTrainStatsFinalLossEmpty(t *testing.T) {
	var s TrainStats
	if s.FinalLoss() != 0 {
		t.Fatal("empty stats FinalLoss should be 0")
	}
}
