// Package nn implements a from-scratch neural-network engine: layers with
// explicit forward/backward passes, losses, optimizers, a training loop, and
// resource accounting (parameter counts, FLOPs, activation memory). It is
// the substrate for every deep-learning technique in dlsys: quantization,
// pruning, distillation, ensembles, distributed training, checkpointing,
// interpretability, and fairness interventions all operate on nn networks.
//
// The engine is deliberately eager and layer-local rather than a full
// autograd graph: each layer caches what its backward pass needs during
// Forward and releases it after Backward. That makes activation memory
// explicit — which is exactly what the checkpointing and offloading
// experiments need to measure.
package nn

import "dlsys/internal/tensor"

// Param is a trainable parameter: a value tensor and its gradient
// accumulator of the same shape.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam creates a parameter wrapping v with a zeroed gradient.
func NewParam(name string, v *tensor.Tensor) *Param {
	return &Param{Name: name, Value: v, Grad: tensor.New(v.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one stage of a network. Forward computes the layer's output for
// a batch and, when train is true, caches whatever Backward will need.
// Backward consumes the gradient of the loss with respect to the layer's
// output and returns the gradient with respect to its input, accumulating
// parameter gradients along the way.
type Layer interface {
	// Name identifies the layer for serialization and debugging.
	Name() string
	// Forward runs the layer on x. When train is false the layer may use a
	// cheaper inference path (e.g. BatchNorm running statistics) and must
	// not retain references to x.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates dout (dL/doutput) to dL/dinput. It must only be
	// called after a Forward with train=true.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// FLOPsCounter is implemented by layers that can estimate their forward-pass
// floating-point operations for a given batch size. The training cost is
// conventionally estimated as 3× the forward cost (forward + ~2× backward).
type FLOPsCounter interface {
	FLOPs(batch int) int64
}

// ActivationSizer is implemented by layers that report the number of
// float64 values they must keep alive between Forward and Backward for a
// given batch size. The checkpointing experiments use this to account
// training memory.
type ActivationSizer interface {
	ActivationFloats(batch int) int64
}

// OutputShaper reports the per-example output shape of a layer given its
// per-example input shape. Used to size downstream layers mechanically.
type OutputShaper interface {
	OutputShape(in []int) []int
}
