package nn

import (
	"math"

	"dlsys/internal/tensor"
)

// BatchNorm normalises each feature of a rank-2 [batch, features] input to
// zero mean and unit variance over the batch, then applies a learned affine
// transform (gamma, beta). During inference it uses exponentially-averaged
// running statistics.
type BatchNorm struct {
	name        string
	Gamma, Beta *Param
	Momentum    float64
	Eps         float64

	runningMean, runningVar []float64

	// caches for backward
	xhat   *tensor.Tensor
	invStd []float64
}

// NewBatchNorm creates a BatchNorm layer over the given feature width.
func NewBatchNorm(name string, features int) *BatchNorm {
	g := tensor.Full(1, 1, features)
	b := tensor.New(1, features)
	rv := make([]float64, features)
	for i := range rv {
		rv[i] = 1
	}
	return &BatchNorm{
		name:        name,
		Gamma:       NewParam(name+".gamma", g),
		Beta:        NewParam(name+".beta", b),
		Momentum:    0.9,
		Eps:         1e-5,
		runningMean: make([]float64, features),
		runningVar:  rv,
	}
}

// Name implements Layer.
func (bn *BatchNorm) Name() string { return bn.name }

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	m, n := x.Dim(0), x.Dim(1)
	out := tensor.New(m, n)
	if !train {
		for j := 0; j < n; j++ {
			invStd := 1 / math.Sqrt(bn.runningVar[j]+bn.Eps)
			g, b := bn.Gamma.Value.Data[j], bn.Beta.Value.Data[j]
			mu := bn.runningMean[j]
			for i := 0; i < m; i++ {
				out.Data[i*n+j] = g*(x.Data[i*n+j]-mu)*invStd + b
			}
		}
		return out
	}
	bn.xhat = tensor.New(m, n)
	bn.invStd = make([]float64, n)
	for j := 0; j < n; j++ {
		var mu float64
		for i := 0; i < m; i++ {
			mu += x.Data[i*n+j]
		}
		mu /= float64(m)
		var v float64
		for i := 0; i < m; i++ {
			d := x.Data[i*n+j] - mu
			v += d * d
		}
		v /= float64(m)
		invStd := 1 / math.Sqrt(v+bn.Eps)
		bn.invStd[j] = invStd
		g, b := bn.Gamma.Value.Data[j], bn.Beta.Value.Data[j]
		for i := 0; i < m; i++ {
			xh := (x.Data[i*n+j] - mu) * invStd
			bn.xhat.Data[i*n+j] = xh
			out.Data[i*n+j] = g*xh + b
		}
		bn.runningMean[j] = bn.Momentum*bn.runningMean[j] + (1-bn.Momentum)*mu
		bn.runningVar[j] = bn.Momentum*bn.runningVar[j] + (1-bn.Momentum)*v
	}
	return out
}

// Backward implements Layer, using the standard batch-norm gradient:
// dx = (gamma·invStd/m)·(m·dy − Σdy − x̂·Σ(dy·x̂)).
func (bn *BatchNorm) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if bn.xhat == nil {
		panic("nn: BatchNorm.Backward without training Forward")
	}
	m, n := dout.Dim(0), dout.Dim(1)
	dx := tensor.New(m, n)
	fm := float64(m)
	for j := 0; j < n; j++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < m; i++ {
			dy := dout.Data[i*n+j]
			sumDy += dy
			sumDyXhat += dy * bn.xhat.Data[i*n+j]
		}
		bn.Gamma.Grad.Data[j] += sumDyXhat
		bn.Beta.Grad.Data[j] += sumDy
		coef := bn.Gamma.Value.Data[j] * bn.invStd[j] / fm
		for i := 0; i < m; i++ {
			dy := dout.Data[i*n+j]
			xh := bn.xhat.Data[i*n+j]
			dx.Data[i*n+j] = coef * (fm*dy - sumDy - xh*sumDyXhat)
		}
	}
	bn.xhat = nil
	bn.invStd = nil
	return dx
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// OutputShape implements OutputShaper.
func (bn *BatchNorm) OutputShape(in []int) []int { return in }

// RunningStats exposes the inference statistics (for serialization).
func (bn *BatchNorm) RunningStats() (mean, variance []float64) {
	return bn.runningMean, bn.runningVar
}

// SetRunningStats overwrites the inference statistics (for deserialization).
func (bn *BatchNorm) SetRunningStats(mean, variance []float64) {
	copy(bn.runningMean, mean)
	copy(bn.runningVar, variance)
}
