package nn

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/tensor"
)

// numericalGrad estimates d(loss)/d(vals[i]) by central differences, where
// loss() re-evaluates the full forward pass after vals has been perturbed.
func numericalGrad(vals []float64, loss func() float64) []float64 {
	const h = 1e-6
	grad := make([]float64, len(vals))
	for i := range vals {
		orig := vals[i]
		vals[i] = orig + h
		lp := loss()
		vals[i] = orig - h
		lm := loss()
		vals[i] = orig
		grad[i] = (lp - lm) / (2 * h)
	}
	return grad
}

func maxRelErr(analytic, numeric []float64) float64 {
	var worst float64
	for i := range analytic {
		denom := math.Max(math.Abs(analytic[i])+math.Abs(numeric[i]), 1e-8)
		if e := math.Abs(analytic[i]-numeric[i]) / denom; e > worst {
			worst = e
		}
	}
	return worst
}

// checkLayerGradients verifies, for an arbitrary layer, that the analytic
// input gradient and every parameter gradient match central differences
// under a quadratic loss L = ½Σ out².
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	lossFn := func() float64 {
		out := layer.Forward(x, true)
		var s float64
		for _, v := range out.Data {
			s += v * v / 2
		}
		return s
	}
	// Analytic pass.
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	out := layer.Forward(x, true)
	dx := layer.Backward(out.Clone()) // dL/dout = out for the quadratic loss

	numX := numericalGrad(x.Data, lossFn)
	if e := maxRelErr(dx.Data, numX); e > tol {
		t.Fatalf("%s: input gradient rel err %g > %g", layer.Name(), e, tol)
	}
	for _, p := range layer.Params() {
		// Forward with train=true mutates caches; recompute analytic grad
		// freshly per parameter to keep caches consistent.
		for _, q := range layer.Params() {
			q.ZeroGrad()
		}
		o := layer.Forward(x, true)
		layer.Backward(o.Clone())
		num := numericalGrad(p.Value.Data, lossFn)
		if e := maxRelErr(p.Grad.Data, num); e > tol {
			t.Fatalf("%s: param %s gradient rel err %g > %g", layer.Name(), p.Name, e, tol)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewDense(rng, "d", 4, 3)
	x := tensor.RandNormal(rng, 0, 1, 5, 4)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestDenseMaskedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewDense(rng, "d", 4, 3)
	mask := tensor.New(4, 3)
	for i := range mask.Data {
		if rng.Float64() < 0.5 {
			mask.Data[i] = 1
		}
	}
	if err := layer.SetMask(mask); err != nil {
		t.Fatalf("SetMask: %v", err)
	}
	x := tensor.RandNormal(rng, 0, 1, 5, 4)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewReLU("r")
	// Keep inputs away from the kink at 0.
	x := tensor.RandNormal(rng, 0, 1, 6, 5)
	for i, v := range x.Data {
		if math.Abs(v) < 0.05 {
			x.Data[i] = 0.1
		}
	}
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestSigmoidTanhGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandNormal(rng, 0, 1, 4, 6)
	checkLayerGradients(t, NewSigmoid("s"), x.Clone(), 1e-5)
	checkLayerGradients(t, NewTanh("t"), x.Clone(), 1e-5)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	layer := NewConv2D(rng, "c", g, 3)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 5, 5)
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 2, KW: 2, Stride: 2, Pad: 0}
	layer := NewConv2D(rng, "c", g, 2)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 6, 6)
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layer := NewMaxPool2D("p", 2, 4, 4, 2)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 4, 4)
	// Separate ties so the argmax is stable under perturbation.
	for i := range x.Data {
		x.Data[i] += float64(i) * 1e-3
	}
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layer := NewBatchNorm("bn", 4)
	// Non-trivial gamma/beta.
	for i := range layer.Gamma.Value.Data {
		layer.Gamma.Value.Data[i] = 0.5 + rng.Float64()
		layer.Beta.Value.Data[i] = rng.NormFloat64()
	}
	x := tensor.RandNormal(rng, 0, 1, 8, 4)
	// The variance path amplifies central-difference rounding; 1e-3 still
	// catches any real formula error (which shows up as O(1) rel err).
	checkLayerGradients(t, layer, x, 2e-3)
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.RandNormal(rng, 0, 1, 4, 3)
	target := OneHot([]int{0, 2, 1, 2}, 3)
	loss := NewSoftmaxCrossEntropy()
	lossFn := func() float64 { return loss.Forward(logits, target) }
	lossFn()
	analytic := loss.Backward()
	num := numericalGrad(logits.Data, lossFn)
	if e := maxRelErr(analytic.Data, num); e > 1e-5 {
		t.Fatalf("softmax-CE gradient rel err %g", e)
	}
}

func TestMSEGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pred := tensor.RandNormal(rng, 0, 1, 4, 2)
	target := tensor.RandNormal(rng, 0, 1, 4, 2)
	loss := NewMSE()
	lossFn := func() float64 { return loss.Forward(pred, target) }
	lossFn()
	analytic := loss.Backward()
	num := numericalGrad(pred.Data, lossFn)
	if e := maxRelErr(analytic.Data, num); e > 1e-5 {
		t.Fatalf("MSE gradient rel err %g", e)
	}
}

func TestDistillLossGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := tensor.RandNormal(rng, 0, 1, 4, 3)
	hard := OneHot([]int{0, 1, 2, 0}, 3)
	teacher := Softmax(tensor.RandNormal(rng, 0, 1, 4, 3))
	loss := NewDistillLoss(0.3, 4)
	lossFn := func() float64 { return loss.ForwardDistill(logits, hard, teacher) }
	lossFn()
	analytic := loss.Backward()
	num := numericalGrad(logits.Data, lossFn)
	if e := maxRelErr(analytic.Data, num); e > 1e-5 {
		t.Fatalf("distill gradient rel err %g", e)
	}
}

// End-to-end gradient check: a two-layer MLP through the fused loss.
func TestNetworkEndToEndGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewMLP(rng, MLPConfig{In: 3, Hidden: []int{5}, Out: 2})
	x := tensor.RandNormal(rng, 0, 1, 4, 3)
	y := OneHot([]int{0, 1, 1, 0}, 2)
	loss := NewSoftmaxCrossEntropy()
	lossFn := func() float64 { return loss.Forward(net.Forward(x, true), y) }

	net.ZeroGrad()
	lossFn()
	net.Backward(loss.Backward())
	for _, p := range net.Params() {
		analytic := append([]float64(nil), p.Grad.Data...)
		num := numericalGrad(p.Value.Data, lossFn)
		if e := maxRelErr(analytic, num); e > 1e-4 {
			t.Fatalf("network param %s gradient rel err %g", p.Name, e)
		}
	}
}
