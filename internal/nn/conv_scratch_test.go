package nn

import (
	"math/rand"
	"testing"

	"dlsys/internal/tensor"
)

// The inference path must reuse its im2col scratch across eval forwards of
// the same shape and produce exactly the training-path activations.
func TestConv2DInferenceScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c := NewConv2D(rng, "conv", g, 4)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 8, 8)

	train := c.Forward(x, true)
	eval1 := c.Forward(x, false)
	if !tensor.Equal(train, eval1, 0) {
		t.Fatal("eval forward diverges from train forward")
	}
	buf := c.scratch
	if buf == nil {
		t.Fatal("eval forward did not populate the scratch buffer")
	}
	eval2 := c.Forward(x, false)
	if c.scratch != buf {
		t.Fatal("second eval forward reallocated the scratch buffer")
	}
	if !tensor.Equal(eval1, eval2, 0) {
		t.Fatal("repeated eval forward changed the output")
	}
	// A different batch size reshapes the scratch instead of corrupting it.
	y := tensor.RandNormal(rng, 0, 1, 3, 1, 8, 8)
	eval3 := c.Forward(y, false)
	if eval3.Dim(0) != 3 {
		t.Fatalf("batch-3 output shape %v", eval3.Shape())
	}
}
