package nn

import (
	"math"

	"dlsys/internal/tensor"
)

// Loss computes a scalar training loss from a batch of network outputs and
// targets, and the gradient of that loss with respect to the outputs.
type Loss interface {
	// Forward returns the mean loss over the batch.
	Forward(pred, target *tensor.Tensor) float64
	// Backward returns dL/dpred for the most recent Forward.
	Backward() *tensor.Tensor
}

// SoftmaxCrossEntropy fuses a softmax over logits with the cross-entropy
// loss against one-hot (or soft) target rows. The fused backward pass is the
// numerically-stable (p - t)/batch.
type SoftmaxCrossEntropy struct {
	probs, target *tensor.Tensor
}

// NewSoftmaxCrossEntropy creates the fused softmax + cross-entropy loss.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Forward implements Loss. target rows must sum to 1 (one-hot or soft).
func (l *SoftmaxCrossEntropy) Forward(logits, target *tensor.Tensor) float64 {
	l.probs = Softmax(logits)
	l.target = target
	m := logits.Dim(0)
	var loss float64
	for i := range l.probs.Data {
		if t := target.Data[i]; t > 0 {
			loss -= t * math.Log(math.Max(l.probs.Data[i], 1e-300))
		}
	}
	return loss / float64(m)
}

// Backward implements Loss.
func (l *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	m := l.probs.Dim(0)
	grad := tensor.Sub(l.probs, l.target)
	grad.ScaleInPlace(1 / float64(m))
	return grad
}

// Probs returns the softmax probabilities from the last Forward.
func (l *SoftmaxCrossEntropy) Probs() *tensor.Tensor { return l.probs }

// MSE is the mean squared error loss, 1/(2·batch)·Σ(pred−target)², whose
// gradient is (pred−target)/batch.
type MSE struct {
	diff *tensor.Tensor
}

// NewMSE creates a mean-squared-error loss.
func NewMSE() *MSE { return &MSE{} }

// Forward implements Loss.
func (l *MSE) Forward(pred, target *tensor.Tensor) float64 {
	l.diff = tensor.Sub(pred, target)
	m := pred.Dim(0)
	var s float64
	for _, v := range l.diff.Data {
		s += v * v
	}
	return s / (2 * float64(m))
}

// Backward implements Loss.
func (l *MSE) Backward() *tensor.Tensor {
	m := l.diff.Dim(0)
	return tensor.Scale(1/float64(m), l.diff)
}

// DistillLoss mixes hard-label cross-entropy with a soft-target term at
// temperature T, following Hinton et al.: L = α·CE(hard) + (1−α)·T²·CE(soft).
// The T² factor keeps gradient magnitudes comparable across temperatures.
type DistillLoss struct {
	Alpha, T   float64
	hard, soft *SoftmaxCrossEntropy
	logits     *tensor.Tensor
}

// NewDistillLoss creates a distillation loss with hard-label weight alpha
// and temperature T.
func NewDistillLoss(alpha, T float64) *DistillLoss {
	return &DistillLoss{Alpha: alpha, T: T, hard: NewSoftmaxCrossEntropy(), soft: NewSoftmaxCrossEntropy()}
}

// ForwardDistill computes the mixed loss. hardTarget is one-hot;
// teacherProbs are the teacher's temperature-softened probabilities.
func (l *DistillLoss) ForwardDistill(logits, hardTarget, teacherProbs *tensor.Tensor) float64 {
	l.logits = logits
	lh := l.hard.Forward(logits, hardTarget)
	ls := l.soft.Forward(tensor.Scale(1/l.T, logits), teacherProbs)
	return l.Alpha*lh + (1-l.Alpha)*l.T*l.T*ls
}

// Backward returns the gradient of the mixed loss w.r.t. the logits.
func (l *DistillLoss) Backward() *tensor.Tensor {
	gh := l.hard.Backward()
	gs := l.soft.Backward()
	// d(softened logits)/d(logits) contributes 1/T; with the T² scale the
	// soft term's gradient w.r.t. raw logits carries a net factor of T.
	out := tensor.Scale(l.Alpha, gh)
	out.AxpyInPlace((1-l.Alpha)*l.T, gs)
	return out
}
