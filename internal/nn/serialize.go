package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Snapshot is a portable serialized form of a network's state: the MLP
// configuration needed to rebuild the architecture plus the full state
// dictionary. It covers networks built by NewMLP; custom layer stacks
// should persist their own StateDict alongside their construction code.
type Snapshot struct {
	Config MLPConfig
	State  map[string][]float64
}

// SaveMLP serializes an MLP (built with NewMLP using cfg) to bytes.
func SaveMLP(net *Network, cfg MLPConfig) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(Snapshot{Config: cfg, State: net.StateDict()}); err != nil {
		return nil, fmt.Errorf("nn: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadMLP rebuilds a network from SaveMLP output. The returned network uses
// deterministic (then overwritten) initial weights, so no RNG is needed.
func LoadMLP(data []byte) (*Network, MLPConfig, error) {
	var snap Snapshot
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&snap); err != nil {
		return nil, MLPConfig{}, fmt.Errorf("nn: decoding snapshot: %w", err)
	}
	net := NewMLP(newZeroRand(), snap.Config)
	net.LoadStateDict(snap.State)
	return net, snap.Config, nil
}
