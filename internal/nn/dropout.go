package nn

import (
	"fmt"
	"math/rand"

	"dlsys/internal/tensor"
)

// Dropout randomly zeroes a fraction Rate of activations during training and
// rescales the survivors by 1/(1-Rate) (inverted dropout), so inference is a
// no-op.
type Dropout struct {
	name string
	Rate float64
	rng  *rand.Rand
	keep []bool
}

// NewDropout creates a dropout layer with the given drop rate in [0, 1).
// An out-of-range rate is a construction error, not a panic: callers
// building networks from untrusted specs surface it instead of crashing.
func NewDropout(rng *rand.Rand, name string, rate float64) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("nn: dropout rate %g out of [0, 1)", rate)
	}
	return &Dropout{name: name, Rate: rate, rng: rng}, nil
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate == 0 {
		return x
	}
	scale := 1 / (1 - d.Rate)
	out := tensor.New(x.Shape()...)
	d.keep = make([]bool, x.Size())
	for i, v := range x.Data {
		if d.rng.Float64() >= d.Rate {
			d.keep[i] = true
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.keep == nil {
		return dout
	}
	scale := 1 / (1 - d.Rate)
	dx := tensor.New(dout.Shape()...)
	for i, v := range dout.Data {
		if d.keep[i] {
			dx.Data[i] = v * scale
		}
	}
	d.keep = nil
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutputShape implements OutputShaper.
func (d *Dropout) OutputShape(in []int) []int { return in }
