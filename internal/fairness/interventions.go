package fairness

import (
	"math"
	"math/rand"
	"sort"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// TrainWeighted trains a classifier with per-example loss weights (the
// reweighing intervention): each example's gradient contribution is scaled
// by its weight, which restores statistical independence between label and
// protected group without touching the features.
func TrainWeighted(rng *rand.Rand, net *nn.Network, x *tensor.Tensor, labels []int, weights []float64, classes, epochs, batchSize int, lr float64) {
	y := nn.OneHot(labels, classes)
	opt := nn.NewAdam(lr)
	loss := nn.NewSoftmaxCrossEntropy()
	n := x.Dim(0)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for start := 0; start < n; start += batchSize {
			end := start + batchSize
			if end > n {
				end = n
			}
			idx := perm[start:end]
			bx, by := nn.GatherBatch(x, y, idx)
			net.ZeroGrad()
			out := net.Forward(bx, true)
			loss.Forward(out, by)
			g := loss.Backward()
			// Scale each example's gradient row by its weight.
			cols := g.Dim(1)
			for bi, i := range idx {
				w := weights[i]
				row := g.Row(bi)
				for c := 0; c < cols; c++ {
					row[c] *= w
				}
			}
			net.Backward(g)
			opt.Step(net.Params())
			net.PostStep()
		}
	}
}

// AdversarialConfig controls adversarial debiasing.
type AdversarialConfig struct {
	Encoder   []int   // hidden widths of the shared encoder
	Lambda    float64 // strength of the gradient-reversal penalty
	Epochs    int
	BatchSize int
	LR        float64
}

// AdversarialModel is the trained result: a shared encoder, a task head,
// and the adversary head that was trained to recover the protected
// attribute from the representation.
type AdversarialModel struct {
	Encoder   *nn.Network
	Predictor *nn.Network
	Adversary *nn.Network
}

// TrainAdversarial trains predictor and adversary simultaneously: the
// predictor minimises task loss, the adversary minimises group-recovery
// loss, and the encoder receives the predictor's gradient MINUS λ times the
// adversary's gradient (gradient reversal), scrubbing group information
// from the representation.
func TrainAdversarial(rng *rand.Rand, x *tensor.Tensor, labels, group []int, classes int, cfg AdversarialConfig) *AdversarialModel {
	in := x.Dim(1)
	var encLayers []nn.Layer
	prev := in
	for i, h := range cfg.Encoder {
		encLayers = append(encLayers,
			nn.NewDense(rng, encName("fc", i), prev, h),
			nn.NewReLU(encName("relu", i)))
		prev = h
	}
	m := &AdversarialModel{
		Encoder:   nn.NewNetwork(encLayers...),
		Predictor: nn.NewNetwork(nn.NewDense(rng, "pred.out", prev, classes)),
		Adversary: nn.NewNetwork(
			nn.NewDense(rng, "adv.fc", prev, 8),
			nn.NewReLU("adv.relu"),
			nn.NewDense(rng, "adv.out", 8, 2),
		),
	}
	y := nn.OneHot(labels, classes)
	gy := nn.OneHot(group, 2)
	encOpt := nn.NewAdam(cfg.LR)
	predOpt := nn.NewAdam(cfg.LR)
	advOpt := nn.NewAdam(cfg.LR)
	predLoss := nn.NewSoftmaxCrossEntropy()
	advLoss := nn.NewSoftmaxCrossEntropy()

	n := x.Dim(0)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Ramp the reversal strength from 0 to Lambda over training (the
		// DANN schedule): the encoder first learns the task, then is
		// progressively scrubbed. Jumping straight to a large Lambda makes
		// the min-max game oscillate.
		progress := float64(epoch) / float64(cfg.Epochs)
		lambda := cfg.Lambda * (2/(1+math.Exp(-5*progress)) - 1)
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			idx := perm[start:end]
			bx, by := nn.GatherBatch(x, y, idx)
			_, bg := nn.GatherBatch(x, gy, idx)

			m.Encoder.ZeroGrad()
			m.Predictor.ZeroGrad()
			m.Adversary.ZeroGrad()

			h := m.Encoder.Forward(bx, true)
			// Task head.
			pout := m.Predictor.Forward(h, true)
			predLoss.Forward(pout, by)
			dhPred := m.Predictor.Backward(predLoss.Backward())
			// Adversary head (on the same cached encoder activations the
			// backward pass below will consume once).
			aout := m.Adversary.Forward(h, true)
			advLoss.Forward(aout, bg)
			dhAdv := m.Adversary.Backward(advLoss.Backward())

			// Encoder: task gradient minus λ × adversary gradient.
			dh := dhPred.Clone()
			dh.AxpyInPlace(-lambda, dhAdv)
			m.Encoder.Backward(dh)

			encOpt.Step(m.Encoder.Params())
			predOpt.Step(m.Predictor.Params())
			advOpt.Step(m.Adversary.Params())
		}
	}
	return m
}

func encName(kind string, i int) string { return "enc." + kind + string(rune('0'+i)) }

// PredictTask returns the task predictions of the adversarial model.
func (m *AdversarialModel) PredictTask(x *tensor.Tensor) []int {
	h := m.Encoder.Forward(x, false)
	out := m.Predictor.Forward(h, false)
	preds := make([]int, out.Dim(0))
	for i := range preds {
		preds[i] = out.ArgMaxRow(i)
	}
	return preds
}

// AdversaryAccuracy measures how well a FRESH adversary can recover the
// protected attribute from the (frozen) representation — the leakage
// metric. It trains a probe on the representation and reports its accuracy.
func (m *AdversarialModel) AdversaryAccuracy(rng *rand.Rand, x *tensor.Tensor, group []int, epochs int) float64 {
	h := m.Encoder.Forward(x, false)
	probe := nn.NewMLP(rng, nn.MLPConfig{In: h.Dim(1), Hidden: []int{8}, Out: 2})
	tr := nn.NewTrainer(probe, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(h, nn.OneHot(group, 2), nn.TrainConfig{Epochs: epochs, BatchSize: 32})
	return probe.Accuracy(h, group)
}

// EqualOpportunityThresholds grid-searches per-group decision thresholds on
// positive-class scores to equalise opportunity: it finds the smallest
// achievable TPR gap, then — among all threshold pairs within a small
// tolerance of that gap — returns the most accurate. The tolerance rules
// out the degenerate "accept everyone" corner, which also has zero gap but
// destroys accuracy.
func EqualOpportunityThresholds(scores []float64, labels, group []int) [2]float64 {
	grid := thresholdGrid()
	minGap := math.Inf(1)
	for _, t0 := range grid {
		for _, t1 := range grid {
			r := Evaluate(ApplyThresholds(scores, group, [2]float64{t0, t1}), labels, group)
			if g := r.EqualOpportunityGap(); g < minGap {
				minGap = g
			}
		}
	}
	const tol = 0.02
	bestAcc := -1.0
	var best [2]float64
	for _, t0 := range grid {
		for _, t1 := range grid {
			r := Evaluate(ApplyThresholds(scores, group, [2]float64{t0, t1}), labels, group)
			if r.EqualOpportunityGap() <= minGap+tol && r.Accuracy > bestAcc {
				bestAcc = r.Accuracy
				best = [2]float64{t0, t1}
			}
		}
	}
	return best
}

func thresholdGrid() []float64 {
	g := make([]float64, 0, 41)
	for i := 0; i <= 40; i++ {
		g = append(g, float64(i)/40)
	}
	return g
}

// ApplyThresholds converts scores to 0/1 predictions using each example's
// group threshold.
func ApplyThresholds(scores []float64, group []int, th [2]float64) []int {
	preds := make([]int, len(scores))
	for i, s := range scores {
		if s >= th[group[i]] {
			preds[i] = 1
		}
	}
	return preds
}

// PositiveScores extracts P(class=1) for each row from a trained binary
// classifier.
func PositiveScores(net *nn.Network, x *tensor.Tensor) []float64 {
	probs := nn.Softmax(net.Forward(x, false))
	out := make([]float64, probs.Dim(0))
	for i := range out {
		out[i] = probs.At(i, 1)
	}
	return out
}

// AblateCorrelatedUnits implements the post-training debiasing the tutorial
// cites: it measures each last-hidden-layer unit's correlation with the
// protected attribute and zeroes the outgoing weights of the most
// correlated fraction. Returns the ablated unit indices.
func AblateCorrelatedUnits(net *nn.Network, x *tensor.Tensor, group []int, fraction float64) []int {
	// Locate the final Dense and the activations feeding it.
	lastDense := -1
	for i, l := range net.Layers {
		if _, ok := l.(*nn.Dense); ok {
			lastDense = i
		}
	}
	if lastDense <= 0 {
		panic("fairness: network has no hidden layer to ablate")
	}
	h := x
	for i := 0; i < lastDense; i++ {
		h = net.Layers[i].Forward(h, false)
	}
	units := h.Dim(1)
	corr := make([]float64, units)
	for u := 0; u < units; u++ {
		corr[u] = math.Abs(pointBiserial(h, u, group))
	}
	order := make([]int, units)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return corr[order[a]] > corr[order[b]] })
	k := int(fraction * float64(units))
	ablated := order[:k]
	head := net.Layers[lastDense].(*nn.Dense)
	for _, u := range ablated {
		for j := 0; j < head.Out(); j++ {
			head.W.Value.Data[u*head.Out()+j] = 0
		}
	}
	return ablated
}

// pointBiserial computes the correlation between activation column u and
// the binary group variable.
func pointBiserial(h *tensor.Tensor, u int, group []int) float64 {
	n := h.Dim(0)
	var m0, m1, n0, n1 float64
	for i := 0; i < n; i++ {
		v := h.At(i, u)
		if group[i] == 0 {
			m0 += v
			n0++
		} else {
			m1 += v
			n1++
		}
	}
	if n0 == 0 || n1 == 0 {
		return 0
	}
	m0 /= n0
	m1 /= n1
	var mu, sd float64
	for i := 0; i < n; i++ {
		mu += h.At(i, u)
	}
	mu /= float64(n)
	for i := 0; i < n; i++ {
		d := h.At(i, u) - mu
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(n))
	if sd == 0 {
		return 0
	}
	return (m1 - m0) / sd * math.Sqrt(n0*n1/(float64(n)*float64(n)))
}
