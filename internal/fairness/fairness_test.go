package fairness

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
)

func TestEvaluateHandComputed(t *testing.T) {
	//       group0: preds 1,0 labels 1,0  → pos .5, TPR 1, FPR 0
	//       group1: preds 0,0 labels 1,0  → pos 0,  TPR 0, FPR 0
	preds := []int{1, 0, 0, 0}
	labels := []int{1, 0, 1, 0}
	group := []int{0, 0, 1, 1}
	r := Evaluate(preds, labels, group)
	if r.PosRate[0] != 0.5 || r.PosRate[1] != 0 {
		t.Fatalf("pos rates %v", r.PosRate)
	}
	if r.TPR[0] != 1 || r.TPR[1] != 0 {
		t.Fatalf("TPR %v", r.TPR)
	}
	if r.DemographicParityGap() != 0.5 {
		t.Fatalf("DP gap %g", r.DemographicParityGap())
	}
	if r.DisparateImpact() != 0 {
		t.Fatalf("DI %g", r.DisparateImpact())
	}
	if r.EqualOpportunityGap() != 1 {
		t.Fatalf("EO gap %g", r.EqualOpportunityGap())
	}
	if r.Accuracy != 0.75 {
		t.Fatalf("accuracy %g", r.Accuracy)
	}
}

func TestMetricsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	preds := make([]int, 500)
	labels := make([]int, 500)
	group := make([]int, 500)
	for i := range preds {
		preds[i] = rng.Intn(2)
		labels[i] = rng.Intn(2)
		group[i] = rng.Intn(2)
	}
	r := Evaluate(preds, labels, group)
	for _, v := range []float64{
		r.DemographicParityGap(), r.DisparateImpact(),
		r.EqualOpportunityGap(), r.EqualizedOddsGap(), r.Accuracy,
	} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("metric out of range: %g", v)
		}
	}
}

func TestReweighRestoresIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := data.BiasedCensus(rng, data.CensusConfig{N: 6000, Bias: 0.7})
	w := Reweigh(c.Labels, c.Group)
	// Weighted positive rate should be ~equal across groups.
	var wp, wn [2]float64
	for i := range c.Labels {
		g := c.Group[i]
		wn[g] += w[i]
		if c.Labels[i] == 1 {
			wp[g] += w[i]
		}
	}
	r0 := wp[0] / wn[0]
	r1 := wp[1] / wn[1]
	if math.Abs(r0-r1) > 0.02 {
		t.Fatalf("weighted pos rates differ: %g vs %g", r0, r1)
	}
}

// trainBiased trains a plain classifier on biased labels.
func trainBiased(seed int64, bias float64) (*nn.Network, *data.CensusData, *data.CensusData) {
	rng := rand.New(rand.NewSource(seed))
	c := data.BiasedCensus(rng, data.CensusConfig{N: 6000, Bias: bias})
	train, test := c.SplitCensus(rng, 0.7)
	net := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(train.X, nn.OneHot(train.Labels, 2), nn.TrainConfig{Epochs: 20, BatchSize: 64})
	return net, train, test
}

func TestBiasedTrainingProducesBiasedModel(t *testing.T) {
	net, _, test := trainBiased(3, 0.8)
	r := Evaluate(net.Predict(test.X), test.TrueMerit, test.Group)
	if r.DemographicParityGap() < 0.1 {
		t.Fatalf("expected a large parity gap from biased labels, got %.3f", r.DemographicParityGap())
	}
	netFair, _, testFair := trainBiased(3, 0.0)
	rf := Evaluate(netFair.Predict(testFair.X), testFair.TrueMerit, testFair.Group)
	if rf.DemographicParityGap() >= r.DemographicParityGap() {
		t.Fatalf("unbiased training should have smaller gap: %.3f vs %.3f",
			rf.DemographicParityGap(), r.DemographicParityGap())
	}
}

func TestReweighedTrainingShrinksGap(t *testing.T) {
	baseline, train, test := trainBiased(4, 0.8)
	rBase := Evaluate(baseline.Predict(test.X), test.TrueMerit, test.Group)

	rng := rand.New(rand.NewSource(5))
	fair := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
	w := Reweigh(train.Labels, train.Group)
	TrainWeighted(rng, fair, train.X, train.Labels, w, 2, 20, 64, 0.01)
	rFair := Evaluate(fair.Predict(test.X), test.TrueMerit, test.Group)

	t.Logf("gap: baseline %.3f -> reweighed %.3f; acc %.3f -> %.3f",
		rBase.DemographicParityGap(), rFair.DemographicParityGap(), rBase.Accuracy, rFair.Accuracy)
	if rFair.DemographicParityGap() >= rBase.DemographicParityGap() {
		t.Fatalf("reweighing did not shrink the gap: %.3f vs %.3f",
			rFair.DemographicParityGap(), rBase.DemographicParityGap())
	}
	if rFair.Accuracy < rBase.Accuracy-0.1 {
		t.Fatalf("reweighing cost too much accuracy: %.3f vs %.3f", rFair.Accuracy, rBase.Accuracy)
	}
}

func TestAdversarialDebiasingReducesLeakage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := data.BiasedCensus(rng, data.CensusConfig{N: 5000, Bias: 0.5, Leakage: 0.9})
	train, test := c.SplitCensus(rng, 0.7)

	cfg := AdversarialConfig{Encoder: []int{16, 8}, Lambda: 0, Epochs: 20, BatchSize: 64, LR: 0.01}
	plain := TrainAdversarial(rand.New(rand.NewSource(7)), train.X, train.Labels, train.Group, 2, cfg)
	cfg.Lambda = 1.5
	debiased := TrainAdversarial(rand.New(rand.NewSource(7)), train.X, train.Labels, train.Group, 2, cfg)

	leakPlain := plain.AdversaryAccuracy(rand.New(rand.NewSource(8)), test.X, test.Group, 20)
	leakDebiased := debiased.AdversaryAccuracy(rand.New(rand.NewSource(8)), test.X, test.Group, 20)
	t.Logf("probe accuracy: plain %.3f, debiased %.3f", leakPlain, leakDebiased)
	if leakDebiased >= leakPlain-0.05 {
		t.Fatalf("adversarial training should cut leakage: %.3f vs %.3f", leakDebiased, leakPlain)
	}

	// Task accuracy should survive.
	taskAcc := accuracyOf(debiased.PredictTask(test.X), test.Labels)
	if taskAcc < 0.65 {
		t.Fatalf("debiased task accuracy %.3f too low", taskAcc)
	}
}

func accuracyOf(preds, labels []int) float64 {
	c := 0
	for i := range preds {
		if preds[i] == labels[i] {
			c++
		}
	}
	return float64(c) / float64(len(preds))
}

func TestEqualOpportunityThresholds(t *testing.T) {
	net, _, test := trainBiased(9, 0.8)
	scores := PositiveScores(net, test.X)

	single := ApplyThresholds(scores, test.Group, [2]float64{0.5, 0.5})
	rSingle := Evaluate(single, test.TrueMerit, test.Group)

	th := EqualOpportunityThresholds(scores, test.TrueMerit, test.Group)
	adjusted := ApplyThresholds(scores, test.Group, th)
	rAdj := Evaluate(adjusted, test.TrueMerit, test.Group)

	t.Logf("EO gap: single %.3f -> per-group %.3f (thresholds %v)",
		rSingle.EqualOpportunityGap(), rAdj.EqualOpportunityGap(), th)
	if rAdj.EqualOpportunityGap() > rSingle.EqualOpportunityGap() {
		t.Fatal("per-group thresholds should not worsen the TPR gap")
	}
	if rAdj.EqualOpportunityGap() > 0.1 {
		t.Fatalf("per-group thresholds left gap %.3f", rAdj.EqualOpportunityGap())
	}
}

func TestAblationShrinksGapMonotonicallyInFraction(t *testing.T) {
	var prevGap float64 = math.Inf(1)
	var prevAcc float64 = 2
	improvedOnce := false
	for _, frac := range []float64{0.25, 0.5} {
		net, train, test := trainBiased(10, 0.8)
		ablated := AblateCorrelatedUnits(net, train.X, train.Group, frac)
		if len(ablated) == 0 {
			t.Fatal("no units ablated")
		}
		r := Evaluate(net.Predict(test.X), test.TrueMerit, test.Group)
		if r.DemographicParityGap() < prevGap {
			improvedOnce = true
		}
		prevGap = r.DemographicParityGap()
		if r.Accuracy > prevAcc+0.05 {
			t.Fatal("accuracy should not increase with heavier ablation")
		}
		prevAcc = r.Accuracy
	}
	// At least verify ablation changes the model's behaviour sensibly.
	if !improvedOnce {
		t.Log("ablation did not shrink the gap on this seed (allowed, but log it)")
	}
}

func TestAblationZeroesOutgoingWeights(t *testing.T) {
	net, train, _ := trainBiased(11, 0.5)
	ablated := AblateCorrelatedUnits(net, train.X, train.Group, 0.5)
	var head *nn.Dense
	for _, l := range net.Layers {
		if d, ok := l.(*nn.Dense); ok {
			head = d
		}
	}
	for _, u := range ablated {
		for j := 0; j < head.Out(); j++ {
			if head.W.Value.Data[u*head.Out()+j] != 0 {
				t.Fatalf("unit %d not fully ablated", u)
			}
		}
	}
}
