package fairness

import (
	"math"
	"math/rand"
)

// GroupCalibration measures, per group, the expected calibration error of
// positive-class scores against labels: scores are bucketed and each
// bucket's mean score is compared with its empirical positive rate.
// A well-calibrated model has low ECE in BOTH groups; a gap between groups
// is itself a fairness failure (the tutorial's "equitable predictions
// across all groups").
type GroupCalibration struct {
	ECE [2]float64
}

// Gap returns |ECE₀ − ECE₁|.
func (c GroupCalibration) Gap() float64 { return math.Abs(c.ECE[0] - c.ECE[1]) }

// Calibration computes per-group expected calibration error with the given
// number of equal-width score buckets.
func Calibration(scores []float64, labels, group []int, buckets int) GroupCalibration {
	var out GroupCalibration
	for g := 0; g < 2; g++ {
		sumScore := make([]float64, buckets)
		sumLabel := make([]float64, buckets)
		count := make([]float64, buckets)
		var n float64
		for i, s := range scores {
			if group[i] != g {
				continue
			}
			b := int(s * float64(buckets))
			if b == buckets {
				b--
			}
			sumScore[b] += s
			sumLabel[b] += float64(labels[i])
			count[b]++
			n++
		}
		if n == 0 {
			continue
		}
		var ece float64
		for b := 0; b < buckets; b++ {
			if count[b] == 0 {
				continue
			}
			conf := sumScore[b] / count[b]
			acc := sumLabel[b] / count[b]
			ece += count[b] / n * math.Abs(conf-acc)
		}
		out.ECE[g] = ece
	}
	return out
}

// PreferentialSample returns example indices resampled (with replacement)
// so that label and group are statistically independent — the sampling
// counterpart of Reweigh for training APIs that cannot take weights. The
// output has the same length as the input data.
func PreferentialSample(rng *rand.Rand, labels, group []int) []int {
	w := Reweigh(labels, group)
	// Build the cumulative distribution over examples ∝ weights.
	cum := make([]float64, len(w))
	var total float64
	for i, v := range w {
		total += v
		cum[i] = total
	}
	out := make([]int, len(w))
	for i := range out {
		r := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = lo
	}
	return out
}
