package fairness

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
)

func TestCalibrationPerfectScores(t *testing.T) {
	// Scores equal to the true positive probability per bucket → ECE ~ 0.
	rng := rand.New(rand.NewSource(1))
	n := 20000
	scores := make([]float64, n)
	labels := make([]int, n)
	group := make([]int, n)
	for i := range scores {
		p := rng.Float64()
		scores[i] = p
		if rng.Float64() < p {
			labels[i] = 1
		}
		group[i] = i % 2
	}
	c := Calibration(scores, labels, group, 10)
	if c.ECE[0] > 0.03 || c.ECE[1] > 0.03 {
		t.Fatalf("perfectly calibrated scores got ECE %v", c.ECE)
	}
	if c.Gap() > 0.02 {
		t.Fatalf("gap %g should be ~0", c.Gap())
	}
}

func TestCalibrationDetectsGroupMiscalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 20000
	scores := make([]float64, n)
	labels := make([]int, n)
	group := make([]int, n)
	for i := range scores {
		p := rng.Float64()
		group[i] = i % 2
		if group[i] == 0 {
			scores[i] = p
		} else {
			// Systematically overconfident for group 1.
			scores[i] = math.Min(p+0.3, 1)
		}
		if rng.Float64() < p {
			labels[i] = 1
		}
	}
	c := Calibration(scores, labels, group, 10)
	if c.ECE[1] <= c.ECE[0]+0.1 {
		t.Fatalf("mis-calibration not detected: %v", c.ECE)
	}
	if c.Gap() < 0.1 {
		t.Fatalf("gap %g too small", c.Gap())
	}
}

func TestPreferentialSampleRestoresIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := data.BiasedCensus(rng, data.CensusConfig{N: 8000, Bias: 0.7})
	idx := PreferentialSample(rng, c.Labels, c.Group)
	if len(idx) != c.N() {
		t.Fatalf("sample size %d", len(idx))
	}
	var pos, n [2]float64
	for _, i := range idx {
		g := c.Group[i]
		n[g]++
		pos[g] += float64(c.Labels[i])
	}
	gap := math.Abs(pos[0]/n[0] - pos[1]/n[1])
	if gap > 0.04 {
		t.Fatalf("resampled positive-rate gap %g, want ~0", gap)
	}
}

func TestPreferentialSamplingTrainsFairerModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := data.BiasedCensus(rng, data.CensusConfig{N: 8000, Bias: 0.8})
	train, test := c.SplitCensus(rng, 0.7)

	base := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
	nn.NewTrainer(base, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng).
		Fit(train.X, nn.OneHot(train.Labels, 2), nn.TrainConfig{Epochs: 20, BatchSize: 64})
	rBase := Evaluate(base.Predict(test.X), test.TrueMerit, test.Group)

	idx := PreferentialSample(rng, train.Labels, train.Group)
	resampled := train.Subset(idx)
	resLabels := make([]int, len(idx))
	for i, j := range idx {
		resLabels[i] = train.Labels[j]
	}
	fair := nn.NewMLP(rng, nn.MLPConfig{In: 5, Hidden: []int{16}, Out: 2})
	nn.NewTrainer(fair, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng).
		Fit(resampled.X, nn.OneHot(resLabels, 2), nn.TrainConfig{Epochs: 20, BatchSize: 64})
	rFair := Evaluate(fair.Predict(test.X), test.TrueMerit, test.Group)

	t.Logf("gap: baseline %.3f -> preferential sampling %.3f", rBase.DemographicParityGap(), rFair.DemographicParityGap())
	if rFair.DemographicParityGap() >= rBase.DemographicParityGap() {
		t.Fatalf("sampling did not shrink the gap: %.3f vs %.3f",
			rFair.DemographicParityGap(), rBase.DemographicParityGap())
	}
}
