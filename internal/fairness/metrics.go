// Package fairness implements Part 3.1 of the tutorial: group fairness
// metrics (demographic parity, disparate impact, equalized odds, equal
// opportunity), and the mitigation techniques it surveys — pre-processing
// (reweighing), in-processing (adversarial debiasing), and post-processing
// (per-group thresholds and correlated-neuron ablation).
package fairness

import "math"

// Report summarises group fairness for binary predictions against binary
// labels and a binary protected attribute (group 1 = protected).
type Report struct {
	// PosRate[g] is P(ŷ=1 | group=g) — the selection rate.
	PosRate [2]float64
	// TPR[g] is P(ŷ=1 | y=1, group=g); FPR[g] is P(ŷ=1 | y=0, group=g).
	TPR, FPR [2]float64
	Accuracy float64
}

// Evaluate computes the report. preds and labels are 0/1; group identifies
// each example's protected-attribute value.
func Evaluate(preds, labels, group []int) Report {
	var pos, n, tp, fn, fp, tn [2]float64
	correct := 0
	for i := range preds {
		g := group[i]
		n[g]++
		if preds[i] == 1 {
			pos[g]++
		}
		switch {
		case labels[i] == 1 && preds[i] == 1:
			tp[g]++
		case labels[i] == 1 && preds[i] == 0:
			fn[g]++
		case labels[i] == 0 && preds[i] == 1:
			fp[g]++
		default:
			tn[g]++
		}
		if preds[i] == labels[i] {
			correct++
		}
	}
	var r Report
	for g := 0; g < 2; g++ {
		if n[g] > 0 {
			r.PosRate[g] = pos[g] / n[g]
		}
		if tp[g]+fn[g] > 0 {
			r.TPR[g] = tp[g] / (tp[g] + fn[g])
		}
		if fp[g]+tn[g] > 0 {
			r.FPR[g] = fp[g] / (fp[g] + tn[g])
		}
	}
	r.Accuracy = float64(correct) / float64(len(preds))
	return r
}

// DemographicParityGap is |P(ŷ=1|g=0) − P(ŷ=1|g=1)|; 0 is parity.
func (r Report) DemographicParityGap() float64 {
	return math.Abs(r.PosRate[0] - r.PosRate[1])
}

// DisparateImpact is the ratio min/max of selection rates; the "80% rule"
// flags values below 0.8.
func (r Report) DisparateImpact() float64 {
	lo, hi := r.PosRate[0], r.PosRate[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		return 1
	}
	return lo / hi
}

// EqualOpportunityGap is the absolute TPR difference between groups.
func (r Report) EqualOpportunityGap() float64 {
	return math.Abs(r.TPR[0] - r.TPR[1])
}

// EqualizedOddsGap is the maximum of the TPR and FPR gaps.
func (r Report) EqualizedOddsGap() float64 {
	tpr := math.Abs(r.TPR[0] - r.TPR[1])
	fpr := math.Abs(r.FPR[0] - r.FPR[1])
	if fpr > tpr {
		return fpr
	}
	return tpr
}

// Reweigh computes per-example weights that make label and group
// statistically independent in the training set (Kamiran & Calders):
// w(g, y) = P(g)·P(y) / P(g, y).
func Reweigh(labels, group []int) []float64 {
	n := float64(len(labels))
	var pg, py [2]float64
	var pgy [2][2]float64
	for i := range labels {
		pg[group[i]]++
		py[labels[i]]++
		pgy[group[i]][labels[i]]++
	}
	w := make([]float64, len(labels))
	for i := range labels {
		g, y := group[i], labels[i]
		joint := pgy[g][y] / n
		if joint == 0 {
			w[i] = 1
			continue
		}
		w[i] = (pg[g] / n) * (py[y] / n) / joint
	}
	return w
}
