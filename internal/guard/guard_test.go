package guard

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

func newTrainer(seed int64) (*nn.Trainer, *data.Dataset, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	ds := data.GaussianMixture(rng, 240, 6, 3, 4)
	net := nn.NewMLP(rand.New(rand.NewSource(seed+1)), nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rand.New(rand.NewSource(seed+2)))
	return tr, ds, nn.OneHot(ds.Labels, ds.Classes)
}

func TestNonFiniteBatchSkipped(t *testing.T) {
	tr, ds, y := newTrainer(1)
	g := New(tr, Policy{})
	bx, by := nn.GatherBatch(ds.X, y, []int{0, 1, 2, 3})
	before := append([]float64(nil), tr.Net.ParamVector()...)
	bx.Data[3] = math.NaN()
	_, applied := g.Step(bx, by)
	if applied {
		t.Fatal("NaN batch must not be applied")
	}
	after := tr.Net.ParamVector()
	for i := range before {
		if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
			t.Fatal("skipped step must leave parameters bit-identical")
		}
	}
	if g.Ledger().Skipped != 1 {
		t.Fatalf("ledger skipped = %d, want 1", g.Ledger().Skipped)
	}
}

func TestSchemaRejectsBadBatchBeforeCompute(t *testing.T) {
	tr, ds, y := newTrainer(2)
	schema := NewBatchSchema(ds.X, 6)
	g := New(tr, Policy{Schema: schema})
	bx, by := nn.GatherBatch(ds.X, y, []int{0, 1, 2, 3})
	bx.Data[0] = 1e12 // wildly out of schema range but finite
	_, applied := g.Step(bx, by)
	if applied {
		t.Fatal("out-of-range batch must be skipped")
	}
	if len(g.Ledger().Incidents) != 1 || g.Ledger().Incidents[0].Kind != KindBadBatch {
		t.Fatalf("want one bad-batch incident, got %v", g.Ledger().Incidents)
	}
}

func TestBatchSchemaChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := tensor.RandNormal(rng, 0, 1, 100, 4)
	s := NewBatchSchema(ref, 3)
	if s.Features != 4 {
		t.Fatalf("features = %d", s.Features)
	}
	ok4 := tensor.RandNormal(rng, 0, 1, 8, 4)
	if _, ok, _ := s.Check(ok4); !ok {
		t.Fatal("in-distribution batch rejected")
	}
	if reason, ok, _ := s.Check(tensor.New(8, 5)); ok || reason == "" {
		t.Fatal("feature mismatch accepted")
	}
	bad := tensor.RandNormal(rng, 0, 1, 8, 4)
	bad.Data[5] = math.Inf(1)
	if _, ok, _ := s.Check(bad); ok {
		t.Fatal("non-finite batch accepted")
	}
	shifted := tensor.RandNormal(rng, 50, 0.1, 8, 4)
	if _, ok, _ := s.Check(shifted); ok {
		t.Fatal("out-of-range batch accepted")
	}
	drift := tensor.RandNormal(rng, s.RefStd*4, 0.1, 8, 4)
	if _, ok, drifted := s.Check(drift); !ok || !drifted {
		t.Fatalf("drifted batch: ok=%v drifted=%v", ok, drifted)
	}
}

func TestRollbackRestoresBitIdenticalParams(t *testing.T) {
	tr, ds, y := newTrainer(4)
	g := New(tr, Policy{SnapshotEvery: 1, RollbackAfter: 3})
	// A few healthy steps; SnapshotEvery=1 snapshots after each.
	for i := 0; i < 5; i++ {
		bx, by := nn.GatherBatch(ds.X, y, []int{4 * i, 4*i + 1, 4*i + 2, 4*i + 3})
		if _, applied := g.Step(bx, by); !applied {
			t.Fatalf("healthy step %d skipped", i)
		}
	}
	want := append([]float64(nil), tr.Net.ParamVector()...)
	// Three consecutive poisoned batches escalate to rollback.
	for i := 0; i < 3; i++ {
		bx, by := nn.GatherBatch(ds.X, y, []int{0, 1, 2, 3})
		bx.Data[i] = math.NaN()
		g.Step(bx, by)
	}
	if g.Ledger().Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", g.Ledger().Rollbacks)
	}
	got := tr.Net.ParamVector()
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("param %d not bit-identical after rollback", i)
		}
	}
	if g.BaseLR() >= 0.01 {
		t.Fatalf("base LR %g not damped after rollback", g.BaseLR())
	}
}

func TestOptimizerStateResetDeterministic(t *testing.T) {
	// After ResetState, an optimizer must behave bit-identically to a
	// fresh one on the same gradient sequence.
	runTraj := func(opt nn.Optimizer, reset bool) []float64 {
		rng := rand.New(rand.NewSource(7))
		net := nn.NewMLP(rng, nn.MLPConfig{In: 4, Hidden: []int{8}, Out: 2})
		tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), opt, rand.New(rand.NewSource(8)))
		ds := data.GaussianMixture(rand.New(rand.NewSource(9)), 64, 4, 2, 3)
		y := nn.OneHot(ds.Labels, ds.Classes)
		if reset {
			// Pollute optimizer state, then reset it.
			bx, by := nn.GatherBatch(ds.X, y, []int{0, 1, 2, 3})
			snap := append([]float64(nil), net.ParamVector()...)
			tr.Step(bx, by)
			net.SetParamVector(snap)
			opt.(nn.StateResetter).ResetState()
		}
		for i := 0; i < 5; i++ {
			bx, by := nn.GatherBatch(ds.X, y, []int{4 * i, 4*i + 1, 4*i + 2, 4*i + 3})
			tr.Step(bx, by)
		}
		return net.ParamVector()
	}
	for _, tc := range []struct {
		name string
		mk   func() nn.Optimizer
	}{
		{"adam", func() nn.Optimizer { return nn.NewAdam(0.01) }},
		{"momentum", func() nn.Optimizer { return nn.NewMomentum(0.01, 0.9) }},
	} {
		fresh := runTraj(tc.mk(), false)
		reset := runTraj(tc.mk(), true)
		for i := range fresh {
			if math.Float64bits(fresh[i]) != math.Float64bits(reset[i]) {
				t.Fatalf("%s: trajectory diverges at param %d after ResetState", tc.name, i)
			}
		}
	}
}

func TestLossSpikeBacksOffLR(t *testing.T) {
	tr, ds, y := newTrainer(5)
	g := New(tr, Policy{WarmupSteps: 4, LossSpikeZ: 4})
	for i := 0; i < 8; i++ {
		bx, by := nn.GatherBatch(ds.X, y, []int{4 * i, 4*i + 1, 4*i + 2, 4*i + 3})
		g.Step(bx, by)
	}
	lrBefore := g.BaseLR()
	// Shuffled labels drive the loss far above baseline without NaNs.
	bx, by := nn.GatherBatch(ds.X, y, []int{0, 1, 2, 3})
	inj := fault.NewInjector(fault.Config{Seed: 11, LabelNoiseProb: 1})
	inj.ShuffleLabels(by.Data, 4, 3, 0, 0)
	for i := range bx.Data {
		bx.Data[i] *= 40 // push logits far off to force a large loss
	}
	_, applied := g.Step(bx, by)
	if applied {
		t.Fatal("spiking step must be discarded")
	}
	if g.BaseLR() >= lrBefore {
		t.Fatalf("LR %g not backed off from %g", g.BaseLR(), lrBefore)
	}
	if g.Ledger().Backoffs != 1 {
		t.Fatalf("backoffs = %d, want 1", g.Ledger().Backoffs)
	}
}

func TestGradExplosionClipped(t *testing.T) {
	tr, ds, y := newTrainer(6)
	g := New(tr, Policy{NormWindow: 4, ExplodeFactor: 5, LossSpikeZ: 1e9, WarmupSteps: 1 << 30})
	for i := 0; i < 6; i++ {
		bx, by := nn.GatherBatch(ds.X, y, []int{4 * i, 4*i + 1, 4*i + 2, 4*i + 3})
		g.Step(bx, by)
	}
	bx, by := nn.GatherBatch(ds.X, y, []int{0, 1, 2, 3})
	for i := range bx.Data {
		bx.Data[i] *= 1e4 // finite but explosive inputs
	}
	_, applied := g.Step(bx, by)
	if !applied {
		t.Fatal("clipped step should still apply")
	}
	if g.Ledger().Clipped != 1 {
		t.Fatalf("clipped = %d, want 1", g.Ledger().Clipped)
	}
	if !tensor.AllFinite(tr.Net.ParamVector()) {
		t.Fatal("parameters non-finite after clipped update")
	}
}

func TestLRSpikeRecoveredByRollback(t *testing.T) {
	tr, ds, y := newTrainer(8)
	g := New(tr, Policy{SnapshotEvery: 2, RollbackAfter: 2})
	inj := fault.NewInjector(fault.Config{Seed: 3, LRSpikeProb: 0.2, LRSpikeFactor: 1e6})
	stats := g.Fit(ds.X, y, FitConfig{
		Epochs: 4, BatchSize: 16,
		LRSpike: func(step int) float64 { return inj.LRSpikeFactor(0, step) },
	})
	if !tensor.AllFinite(tr.Net.ParamVector()) {
		t.Fatal("guarded training left non-finite parameters")
	}
	final := stats.FinalLoss()
	if math.IsNaN(final) || math.IsInf(final, 0) {
		t.Fatalf("final loss %v not finite", final)
	}
	if g.Ledger().Len() == 0 {
		t.Fatal("expected incidents under a 20% LR-spike rate")
	}
}

func TestFitReplayIdenticalLedger(t *testing.T) {
	run := func() (uint64, []float64) {
		tr, ds, y := newTrainer(9)
		g := New(tr, Policy{})
		inj := fault.NewInjector(fault.NumericalRate(17, 0.08))
		g.Fit(ds.X, y, FitConfig{
			Epochs: 3, BatchSize: 16,
			Inject: func(step int, bx, by *tensor.Tensor) {
				if inj.CorruptsBatch(0, step) {
					inj.CorruptBatchValues(bx.Data, 0, step)
				}
				if inj.LabelNoise(0, step) {
					inj.ShuffleLabels(by.Data, by.Dim(0), by.Dim(1), 0, step)
				}
			},
			LRSpike: func(step int) float64 { return inj.LRSpikeFactor(0, step) },
		})
		return g.Ledger().Fingerprint(), tr.Net.ParamVector()
	}
	fp1, p1 := run()
	fp2, p2 := run()
	if fp1 != fp2 {
		t.Fatalf("ledger fingerprints differ: %x vs %x", fp1, fp2)
	}
	for i := range p1 {
		if math.Float64bits(p1[i]) != math.Float64bits(p2[i]) {
			t.Fatalf("replayed parameters differ at %d", i)
		}
	}
}

func TestObserveModeNeverIntervenes(t *testing.T) {
	tr, ds, y := newTrainer(10)
	g := New(tr, Policy{Mode: Observe})
	bx, by := nn.GatherBatch(ds.X, y, []int{0, 1, 2, 3})
	bx.Data[0] = math.NaN()
	_, applied := g.Step(bx, by)
	if !applied {
		t.Fatal("observe mode must apply every update")
	}
	l := g.Ledger()
	if l.Observed == 0 {
		t.Fatal("observe mode should still record incidents")
	}
	if l.Skipped+l.Clipped+l.Backoffs+l.Rollbacks != 0 {
		t.Fatal("observe mode must not remediate")
	}
}

func TestIncidentStringAndKindNames(t *testing.T) {
	kinds := []IncidentKind{KindBadBatch, KindInputDrift, KindNonFiniteLoss,
		KindNonFiniteGrad, KindNonFiniteParam, KindLossSpike, KindGradExplosion, 0}
	for _, k := range kinds[:7] {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if kinds[7].String() != "unknown" {
		t.Fatal("zero kind should be unknown")
	}
	acts := []Action{ActionObserved, ActionFlagged, ActionSkipBatch, ActionClipGrad, ActionBackoffLR, ActionRollback}
	for _, a := range acts {
		if a.String() == "unknown" {
			t.Fatalf("action %d unnamed", a)
		}
	}
	in := Incident{Step: 3, Kind: KindLossSpike, Action: ActionBackoffLR, Value: 9.5}
	if in.String() == "" {
		t.Fatal("empty incident string")
	}
}
