package guard

import (
	"dlsys/internal/obs"
)

// guardObs holds the pre-resolved instruments for one guarded run. Counter
// names mirror the Ledger summary counters one-to-one — experiment X8
// asserts they reconcile exactly. Every field is a nil no-op for an
// un-instrumented run.
type guardObs struct {
	h *obs.Handle

	incidents                     *obs.Counter
	skipped, clipped, backoffs    *obs.Counter
	rollbacks, drifts, observedCt *obs.Counter
}

func newGuardObs(h *obs.Handle) *guardObs {
	return &guardObs{
		h:          h,
		incidents:  h.Counter("guard.incidents"),
		skipped:    h.Counter("guard.skipped"),
		clipped:    h.Counter("guard.clipped"),
		backoffs:   h.Counter("guard.backoffs"),
		rollbacks:  h.Counter("guard.rollbacks"),
		drifts:     h.Counter("guard.drifts"),
		observedCt: h.Counter("guard.observed"),
	}
}

// record mirrors one incident into the metrics, matching Ledger.record's
// switch exactly, and emits a zero-width rollback span on the guard's
// virtual clock (the global step counter).
func (o *guardObs) record(in Incident) {
	o.incidents.Inc()
	switch in.Action {
	case ActionSkipBatch:
		o.skipped.Inc()
	case ActionClipGrad:
		o.clipped.Inc()
	case ActionBackoffLR:
		o.backoffs.Inc()
	case ActionRollback:
		o.rollbacks.Inc()
		o.h.Emit("guard.rollback", float64(in.Step), float64(in.Step))
	case ActionFlagged:
		o.drifts.Inc()
	case ActionObserved:
		o.observedCt.Inc()
	}
}
