// Package guard implements self-healing training: numerical-fault
// detection (NaN/Inf scans, gradient-norm explosion, loss-spike z-scores,
// input-batch validation) wrapped around a trainer, with an escalating
// remediation policy — skip the poisoned batch, clip the gradient, back off
// the learning rate, and finally roll back to the last healthy checkpoint
// with a dampened optimizer. Every detection and remediation is recorded in
// a deterministic incident ledger, so a fault scenario replayed under the
// same seed produces a byte-identical audit trail.
package guard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// IncidentKind enumerates what a detector observed.
type IncidentKind uint8

// Detection classes, ordered by severity of what they imply.
const (
	KindBadBatch       IncidentKind = 1 + iota // input failed schema validation
	KindInputDrift                             // input stats drifted from reference (flag only)
	KindNonFiniteLoss                          // loss is NaN/Inf
	KindNonFiniteGrad                          // a gradient is NaN/Inf
	KindNonFiniteParam                         // a parameter went NaN/Inf after an update
	KindLossSpike                              // loss z-score exceeded threshold
	KindGradExplosion                          // gradient norm exploded vs rolling median
)

// String names the kind for logs and tables.
func (k IncidentKind) String() string {
	switch k {
	case KindBadBatch:
		return "bad-batch"
	case KindInputDrift:
		return "input-drift"
	case KindNonFiniteLoss:
		return "nonfinite-loss"
	case KindNonFiniteGrad:
		return "nonfinite-grad"
	case KindNonFiniteParam:
		return "nonfinite-param"
	case KindLossSpike:
		return "loss-spike"
	case KindGradExplosion:
		return "grad-explosion"
	}
	return "unknown"
}

// Action enumerates what the guard did about an incident.
type Action uint8

// Remediation actions, in escalation order.
const (
	ActionObserved  Action = 1 + iota // detected but not remediated (Observe mode)
	ActionFlagged                     // recorded only; no remediation warranted
	ActionSkipBatch                   // batch discarded before it touched parameters
	ActionClipGrad                    // gradient rescaled to the rolling median norm
	ActionBackoffLR                   // learning rate multiplied down
	ActionRollback                    // parameters restored from last healthy snapshot
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionObserved:
		return "observed"
	case ActionFlagged:
		return "flagged"
	case ActionSkipBatch:
		return "skip-batch"
	case ActionClipGrad:
		return "clip-grad"
	case ActionBackoffLR:
		return "backoff-lr"
	case ActionRollback:
		return "rollback"
	}
	return "unknown"
}

// Incident is one detection event and the guard's response to it.
type Incident struct {
	Step   int          // global step at which it was detected
	Kind   IncidentKind // what was detected
	Action Action       // what was done
	Value  float64      // the offending measurement (loss, norm, z-score, ...)
}

// String formats the incident for ledger printouts.
func (in Incident) String() string {
	return fmt.Sprintf("step %4d  %-15s → %-10s (%.4g)", in.Step, in.Kind, in.Action, in.Value)
}

// Ledger is the deterministic audit trail of a guarded training run.
type Ledger struct {
	Incidents []Incident

	// Counters, maintained by record for cheap summary access.
	Skipped   int // batches discarded
	Clipped   int // gradients clipped
	Backoffs  int // LR reductions
	Rollbacks int // checkpoint restores
	Drifts    int // input-drift flags
	Observed  int // incidents seen but not remediated
}

// record appends an incident and bumps the matching counter.
func (l *Ledger) record(in Incident) {
	l.Incidents = append(l.Incidents, in)
	switch in.Action {
	case ActionSkipBatch:
		l.Skipped++
	case ActionClipGrad:
		l.Clipped++
	case ActionBackoffLR:
		l.Backoffs++
	case ActionRollback:
		l.Rollbacks++
	case ActionFlagged:
		l.Drifts++
	case ActionObserved:
		l.Observed++
	}
}

// Len returns the number of recorded incidents.
func (l *Ledger) Len() int { return len(l.Incidents) }

// Fingerprint hashes the full incident sequence (steps, kinds, actions, and
// measured values) with FNV-1a. Two runs of the same seeded scenario must
// produce equal fingerprints — the replayability contract the X7 experiment
// asserts.
func (l *Ledger) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, in := range l.Incidents {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(in.Step)))
		h.Write(buf[:])
		h.Write([]byte{byte(in.Kind), byte(in.Action)})
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(in.Value))
		h.Write(buf[:])
	}
	return h.Sum64()
}
