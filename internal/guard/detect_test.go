package guard

import "testing"

// The explosion predicate's boundary semantics, per the Policy doc: norms
// strictly below ExplodeMinNorm are never explosions, a norm exactly at the
// floor is still eligible, and the relative test against the rolling median
// decides from there. The floor row at exactly ExplodeMinNorm is the
// regression case for the historical off-by-one (the floor comparison used
// to be strict, silently exempting the boundary itself).
func TestGradExplosionBoundary(t *testing.T) {
	const (
		factor  = 10.0
		minNorm = 1.0
	)
	cases := []struct {
		name   string
		norm   float64
		median float64
		want   bool
	}{
		{"well below floor", 0.5, 0.01, false},
		{"just below floor", minNorm - 1e-12, 0.01, false},
		{"exactly at floor, relative test fires", minNorm, 0.05, true},
		{"exactly at floor, relative test quiet", minNorm, 0.2, false},
		{"above floor, exactly factor times median", 2.0, 0.2, false},
		{"above floor, just past factor times median", 2.0 + 1e-9, 0.2, true},
		{"clear explosion", 50, 0.3, true},
		{"large norm, proportionally large median", 50, 20, false},
		{"zero median ties the relative test to the floor", minNorm, 0, true},
		{"zero median below the floor stays quiet", 0.99, 0, false},
	}
	for _, c := range cases {
		if got := gradExplosion(c.norm, c.median, factor, minNorm); got != c.want {
			t.Errorf("%s: gradExplosion(norm=%g, median=%g) = %v, want %v",
				c.name, c.norm, c.median, got, c.want)
		}
	}
}
