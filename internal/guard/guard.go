package guard

import (
	"math"

	"dlsys/internal/checkpoint"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/tensor"
)

// Mode selects whether detections are acted upon.
type Mode int

// Guard modes.
const (
	// Enforce detects and remediates: skip, clip, back off, roll back.
	Enforce Mode = iota
	// Observe detects and records incidents but never intervenes. An
	// Observe-mode trainer follows the exact same data and injection path
	// as an Enforce-mode one, which makes it the fair "unguarded" baseline
	// for self-healing experiments.
	Observe
)

// Policy configures detection thresholds and the remediation escalation.
// The zero value gets sensible defaults from New.
type Policy struct {
	Mode Mode

	// Detection.
	LossSpikeZ    float64 // z-score above which a loss is a spike (default 8)
	EMADecay      float64 // loss EMA decay (default 0.95)
	WarmupSteps   int     // healthy steps before spike detection arms (default 8)
	NormWindow    int     // rolling window of healthy gradient norms (default 16)
	ExplodeFactor float64 // norm > factor·median ⇒ explosion (default 10)
	// ExplodeMinNorm is an absolute floor: norms below it are never treated
	// as explosions, however small the rolling median gets late in training
	// (default 1). Set a tiny value to make the detector purely relative.
	ExplodeMinNorm float64
	Schema         *BatchSchema // nil disables input validation

	// Remediation.
	LRBackoff     float64 // LR multiplier on a loss spike (default 0.5)
	MinLR         float64 // floor under backoff/damping (default 1e-5)
	DampFactor    float64 // LR multiplier after a rollback (default 0.7)
	RollbackAfter int     // consecutive bad steps before rollback (default 3)

	// Checkpointing.
	SnapshotEvery int // healthy steps between snapshots (default 10)
	KeepSnapshots int // retained snapshots (default 3)

	// Obs, when non-nil, receives live incident/remediation counters
	// (mirroring the Ledger summary counters exactly) and a span per
	// rollback stamped with the global step. Nil disables instrumentation.
	Obs *obs.Handle
}

// withDefaults fills zero fields with the documented defaults.
func (p Policy) withDefaults() Policy {
	if p.LossSpikeZ == 0 {
		p.LossSpikeZ = 8
	}
	if p.EMADecay == 0 {
		p.EMADecay = 0.95
	}
	if p.WarmupSteps == 0 {
		p.WarmupSteps = 8
	}
	if p.NormWindow == 0 {
		p.NormWindow = 16
	}
	if p.ExplodeFactor == 0 {
		p.ExplodeFactor = 10
	}
	if p.ExplodeMinNorm == 0 {
		p.ExplodeMinNorm = 1
	}
	if p.LRBackoff == 0 {
		p.LRBackoff = 0.5
	}
	if p.MinLR == 0 {
		p.MinLR = 1e-5
	}
	if p.DampFactor == 0 {
		p.DampFactor = 0.7
	}
	if p.RollbackAfter == 0 {
		p.RollbackAfter = 3
	}
	if p.SnapshotEvery == 0 {
		p.SnapshotEvery = 10
	}
	if p.KeepSnapshots == 0 {
		p.KeepSnapshots = 3
	}
	return p
}

// Trainer wraps an nn.Trainer with self-healing supervision. Each step runs
// detect → remediate → (maybe) update, and every intervention lands in the
// incident ledger.
type Trainer struct {
	Inner  *nn.Trainer
	Policy Policy

	ledger    Ledger
	obs       *guardObs
	store     *checkpoint.Store
	lossMon   lossMonitor
	normWin   *normWindow
	baseLR    float64
	consecBad int
	step      int
	sinceSnap int
	paramBuf  []float64 // reused for post-update finiteness scans
}

// New wraps a trainer in a self-healing supervisor. An initial snapshot is
// taken immediately so rollback is always possible, and the optimizer's
// current LR becomes the base rate that backoff and damping operate on.
func New(inner *nn.Trainer, p Policy) *Trainer {
	p = p.withDefaults()
	g := &Trainer{
		Inner:   inner,
		Policy:  p,
		obs:     newGuardObs(p.Obs),
		store:   checkpoint.NewStore(p.KeepSnapshots),
		lossMon: lossMonitor{decay: p.EMADecay, warmup: p.WarmupSteps},
		normWin: newNormWindow(p.NormWindow),
		baseLR:  inner.Opt.LR(),
	}
	g.store.Put(checkpoint.TakeSnapshot(0, inner.Net))
	return g
}

// Ledger returns the incident audit trail.
func (g *Trainer) Ledger() *Ledger { return &g.ledger }

// BaseLR returns the current base learning rate (after any backoff/damping).
func (g *Trainer) BaseLR() float64 { return g.baseLR }

// Snapshot forces a checkpoint of the current parameters at the current step.
func (g *Trainer) Snapshot() { g.store.Put(checkpoint.TakeSnapshot(g.step, g.Inner.Net)) }

// Step runs one guarded step at the base learning rate. It returns the batch
// loss as computed (NaN/Inf included, so callers see the truth) and whether
// the parameter update was applied.
func (g *Trainer) Step(bx, by *tensor.Tensor) (loss float64, applied bool) {
	return g.StepLR(bx, by, 1)
}

// StepLR is Step with a transient learning-rate multiplier for this step
// only — the injection point for LR-spike faults. The guard's base LR
// bookkeeping (backoff, damping) is unaffected by the multiplier.
func (g *Trainer) StepLR(bx, by *tensor.Tensor, lrFactor float64) (loss float64, applied bool) {
	step := g.step
	g.step++
	enforce := g.Policy.Mode == Enforce
	g.Inner.Opt.SetLR(g.baseLR * lrFactor)

	// 1. Input validation: bad batches are discarded before any compute.
	if s := g.Policy.Schema; s != nil {
		_, ok, drifted := s.Check(bx)
		if !ok {
			if enforce {
				g.bad(step, KindBadBatch, ActionSkipBatch, 0)
				return math.NaN(), false
			}
			g.record(Incident{Step: step, Kind: KindBadBatch, Action: ActionObserved})
		} else if drifted {
			// Drift is a flag in both modes: the batch is usable, but the
			// shift is worth surfacing to operators.
			g.record(Incident{Step: step, Kind: KindInputDrift, Action: ActionFlagged, Value: bx.Mean()})
		}
	}

	// 2. Forward/backward without touching parameters.
	loss = g.Inner.ComputeGrad(bx, by)
	grads := g.Inner.Net.GradVector()
	norm, gradsFinite := tensor.Norm2Finite(grads)
	lossFinite := !math.IsNaN(loss) && !math.IsInf(loss, 0)

	// 3. Detect, in severity order; remediate when enforcing.
	switch {
	case !lossFinite || !gradsFinite:
		kind := KindNonFiniteLoss
		val := loss
		if lossFinite {
			kind = KindNonFiniteGrad
			val = 0
		}
		if !enforce {
			g.record(Incident{Step: step, Kind: kind, Action: ActionObserved, Value: val})
			break // fall through to the unguarded update
		}
		g.bad(step, kind, ActionSkipBatch, val)
		return loss, false

	case g.lossSpike(loss):
		z := g.lossMon.zscore(loss)
		if !enforce {
			g.record(Incident{Step: step, Kind: KindLossSpike, Action: ActionObserved, Value: z})
			break
		}
		// A spiking loss means the model is being driven somewhere bad:
		// discard the step and take smaller ones from here on.
		g.baseLR = math.Max(g.Policy.MinLR, g.baseLR*g.Policy.LRBackoff)
		g.bad(step, KindLossSpike, ActionBackoffLR, z)
		return loss, false

	case g.normWin.ready() && gradExplosion(norm, g.normWin.median(), g.Policy.ExplodeFactor, g.Policy.ExplodeMinNorm):
		if !enforce {
			g.record(Incident{Step: step, Kind: KindGradExplosion, Action: ActionObserved, Value: norm})
			break
		}
		// The direction is usable, the magnitude is not: rescale the
		// gradient to the healthy median norm and proceed.
		target := g.normWin.median()
		scale := target / norm
		for i := range grads {
			grads[i] *= scale
		}
		g.Inner.Net.SetGradVector(grads)
		g.record(Incident{Step: step, Kind: KindGradExplosion, Action: ActionClipGrad, Value: norm})
		g.applyHealthy(step, loss, target)
		return loss, true
	}

	if !enforce {
		// Observe mode always applies — it exists to show what an
		// unguarded trainer would have done. Monitors still only ingest
		// finite observations so the detectors keep functioning.
		g.Inner.ApplyUpdate()
		if lossFinite && gradsFinite {
			g.lossMon.observe(loss)
			g.normWin.add(norm)
		}
		return loss, true
	}

	g.applyHealthy(step, loss, norm)

	// 4. Post-update parameter scan: an update can overflow even from
	// finite gradients (e.g. under a spiked LR). Poisoned parameters can
	// only be fixed by rollback — skipping future batches won't un-NaN them.
	g.paramBuf = g.Inner.Net.ParamVectorInto(g.paramBuf)
	if !tensor.AllFinite(g.paramBuf) {
		g.rollback(step, KindNonFiniteParam, 0)
		return loss, false
	}
	return loss, true
}

// record lands an incident in the ledger and mirrors it into the run's
// metrics — the single chokepoint keeping the two reconciled exactly.
func (g *Trainer) record(in Incident) {
	g.ledger.record(in)
	g.obs.record(in)
}

// lossSpike reports whether the loss is a finite spike vs the EMA baseline.
func (g *Trainer) lossSpike(loss float64) bool {
	return g.lossMon.zscore(loss) > g.Policy.LossSpikeZ
}

// applyHealthy applies the pending update, feeds the monitors, resets the
// escalation counter, and takes a periodic snapshot.
func (g *Trainer) applyHealthy(step int, loss, norm float64) {
	g.Inner.ApplyUpdate()
	g.lossMon.observe(loss)
	g.normWin.add(norm)
	g.consecBad = 0
	g.sinceSnap++
	if g.sinceSnap >= g.Policy.SnapshotEvery {
		g.store.Put(checkpoint.TakeSnapshot(step, g.Inner.Net))
		g.sinceSnap = 0
	}
}

// bad records a remediated-but-skipped step and escalates to rollback after
// RollbackAfter consecutive bad steps.
func (g *Trainer) bad(step int, kind IncidentKind, action Action, val float64) {
	g.consecBad++
	if g.consecBad >= g.Policy.RollbackAfter {
		g.rollback(step, kind, val)
		return
	}
	g.record(Incident{Step: step, Kind: kind, Action: action, Value: val})
}

// rollback restores the newest verifiable snapshot, resets stateful
// optimizer moments, damps the base LR, and clears the detection baselines
// (post-rollback dynamics differ from pre-fault dynamics, so stale baselines
// would mis-fire).
func (g *Trainer) rollback(step int, kind IncidentKind, val float64) {
	if _, _, err := g.store.Restore(g.Inner.Net); err != nil {
		// No verifiable snapshot — record the attempt; training continues
		// from current parameters, which is the best remaining option.
		g.record(Incident{Step: step, Kind: kind, Action: ActionSkipBatch, Value: val})
		g.consecBad = 0
		return
	}
	if r, ok := g.Inner.Opt.(nn.StateResetter); ok {
		r.ResetState()
	}
	g.baseLR = math.Max(g.Policy.MinLR, g.baseLR*g.Policy.DampFactor)
	g.lossMon = lossMonitor{decay: g.Policy.EMADecay, warmup: g.Policy.WarmupSteps}
	g.normWin = newNormWindow(g.Policy.NormWindow)
	g.consecBad = 0
	g.record(Incident{Step: step, Kind: kind, Action: ActionRollback, Value: val})
}

// FitConfig controls a guarded training run.
type FitConfig struct {
	Epochs    int
	BatchSize int
	// Inject, when non-nil, may poison the gathered batch in place before
	// the step runs — the hook fault-injection experiments use.
	Inject func(step int, bx, by *tensor.Tensor)
	// LRSpike, when non-nil, returns a transient learning-rate multiplier
	// for the step (1 = no fault).
	LRSpike func(step int) float64
}

// Fit trains like nn.Trainer.Fit but through the guarded step. Epoch losses
// average only finite step losses; Steps counts applied updates.
func (g *Trainer) Fit(x, y *tensor.Tensor, cfg FitConfig) nn.TrainStats {
	n := x.Dim(0)
	bs := cfg.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var stats nn.TrainStats
	flopsPerStep := 3 * g.Inner.Net.FLOPs(bs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		g.Inner.RNG.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		finiteBatches := 0
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			bx, by := nn.GatherBatch(x, y, perm[start:end])
			if cfg.Inject != nil {
				cfg.Inject(g.step, bx, by)
			}
			lrFactor := 1.0
			if cfg.LRSpike != nil {
				lrFactor = cfg.LRSpike(g.step)
			}
			loss, applied := g.StepLR(bx, by, lrFactor)
			if !math.IsNaN(loss) && !math.IsInf(loss, 0) {
				epochLoss += loss
				finiteBatches++
			}
			if applied {
				stats.Steps++
			}
			stats.FLOPs += flopsPerStep * int64(end-start) / int64(bs)
			stats.Examples += int64(end - start)
		}
		if finiteBatches > 0 {
			epochLoss /= float64(finiteBatches)
		} else {
			epochLoss = math.NaN()
		}
		stats.EpochLoss = append(stats.EpochLoss, epochLoss)
	}
	return stats
}
