package guard

import (
	"math"
	"sort"

	"dlsys/internal/tensor"
)

// lossMonitor tracks an exponential moving average and variance of the
// training loss and flags spikes by z-score. It is only fed healthy
// observations (the guard withholds corrupt steps), so a burst of faults
// cannot drag the baseline toward the faulty regime and mask itself.
type lossMonitor struct {
	decay  float64 // EMA decay for mean/variance
	warmup int     // observations before spike detection activates
	n      int
	mean   float64
	varEMA float64
}

// observe feeds one healthy loss value.
func (m *lossMonitor) observe(loss float64) {
	m.n++
	if m.n == 1 {
		m.mean = loss
		return
	}
	d := loss - m.mean
	m.mean += (1 - m.decay) * d
	m.varEMA = m.decay*m.varEMA + (1-m.decay)*d*d
}

// zscore returns the spike z-score of a candidate loss against the baseline,
// or 0 while warming up. The standard deviation is floored at a fraction of
// the mean so near-constant early losses don't make every fluctuation an
// 8-sigma event.
func (m *lossMonitor) zscore(loss float64) float64 {
	if m.n < m.warmup {
		return 0
	}
	sd := math.Sqrt(m.varEMA)
	if floor := 0.05 * math.Abs(m.mean); sd < floor {
		sd = floor
	}
	if sd < 1e-6 {
		sd = 1e-6
	}
	return (loss - m.mean) / sd
}

// normWindow keeps a rolling window of healthy gradient norms; its median is
// the baseline that explosion detection and clipping target. The median (not
// the mean) keeps one legitimate large step from doubling the baseline.
type normWindow struct {
	vals []float64
	size int
	next int
	n    int
}

func newNormWindow(size int) *normWindow {
	return &normWindow{vals: make([]float64, size), size: size}
}

// add feeds one healthy gradient norm.
func (w *normWindow) add(v float64) {
	w.vals[w.next] = v
	w.next = (w.next + 1) % w.size
	if w.n < w.size {
		w.n++
	}
}

// ready reports whether enough observations exist to form a baseline.
func (w *normWindow) ready() bool { return w.n >= w.size/2 && w.n >= 2 }

// median returns the median of the retained norms (0 if empty).
func (w *normWindow) median() float64 {
	if w.n == 0 {
		return 0
	}
	tmp := append([]float64(nil), w.vals[:w.n]...)
	sort.Float64s(tmp)
	return tmp[len(tmp)/2]
}

// gradExplosion is the explosion predicate: a norm is an explosion when it
// is at least factor times the healthy rolling median AND not below the
// absolute floor minNorm. The floor comparison is inclusive — the Policy
// contract is that norms *below* the floor are never explosions, so a norm
// exactly at the floor is still eligible when the relative test fires.
func gradExplosion(norm, median, factor, minNorm float64) bool {
	return norm >= minNorm && norm > factor*median
}

// BatchSchema validates input batches before they reach the forward pass:
// feature-count, finiteness, value range, and (as a flag, not a gate) drift
// of the batch mean away from reference statistics.
type BatchSchema struct {
	Features int     // expected trailing feature count per example; 0 skips
	Min, Max float64 // allowed value range (inclusive)

	// Reference statistics for drift flagging; RefStd == 0 disables.
	RefMean, RefStd float64
	DriftSigma      float64 // flag when |batch mean − RefMean| > DriftSigma·RefStd
}

// NewBatchSchema infers a schema from reference (training) data: the feature
// count, a value range widened by half the observed span on each side, and
// the reference mean/std for drift flagging at driftSigma standard
// deviations.
func NewBatchSchema(ref *tensor.Tensor, driftSigma float64) *BatchSchema {
	s := ref.FiniteStats()
	span := s.Max - s.Min
	if span <= 0 {
		span = 1
	}
	mean := ref.Mean()
	var variance float64
	for _, v := range ref.Data {
		d := v - mean
		variance += d * d
	}
	if n := len(ref.Data); n > 0 {
		variance /= float64(n)
	}
	features := 0
	if ref.Rank() >= 2 {
		features = ref.Size() / ref.Dim(0)
	}
	return &BatchSchema{
		Features:   features,
		Min:        s.Min - span/2,
		Max:        s.Max + span/2,
		RefMean:    mean,
		RefStd:     math.Sqrt(variance),
		DriftSigma: driftSigma,
	}
}

// Check validates a batch. It returns ok=false with a reason when the batch
// must not be trained on, and drifted=true when the batch is usable but its
// statistics have moved away from the reference distribution.
func (s *BatchSchema) Check(bx *tensor.Tensor) (reason string, ok, drifted bool) {
	if s.Features > 0 && (bx.Rank() < 2 || bx.Size()/bx.Dim(0) != s.Features) {
		return "feature count mismatch", false, false
	}
	st := bx.FiniteStats()
	if !st.Finite() {
		return "non-finite input values", false, false
	}
	if st.Min < s.Min || st.Max > s.Max {
		return "values outside schema range", false, false
	}
	if s.RefStd > 0 && s.DriftSigma > 0 {
		if math.Abs(bx.Mean()-s.RefMean) > s.DriftSigma*s.RefStd {
			return "", true, true
		}
	}
	return "", true, false
}
