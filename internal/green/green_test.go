package green

import (
	"math"
	"strings"
	"testing"

	"dlsys/internal/device"
)

func TestEstimatePhysics(t *testing.T) {
	// 1e15 FLOPs at 50% of 1e12 FLOPs/s = 2000 s on the edge profile.
	fp := Estimate(1e15, device.EdgeDevice, MixedUS, 0.5)
	wantHours := 2000.0 / 3600
	if math.Abs(fp.Hours-wantHours) > 1e-9 {
		t.Fatalf("hours %g, want %g", fp.Hours, wantHours)
	}
	wantKWh := 5.0 * 2000 / 3.6e6 * MixedUS.PUE
	if math.Abs(fp.EnergyKWh-wantKWh) > 1e-12 {
		t.Fatalf("energy %g, want %g", fp.EnergyKWh, wantKWh)
	}
	if math.Abs(fp.CO2Grams-wantKWh*MixedUS.Intensity) > 1e-9 {
		t.Fatalf("CO2 %g", fp.CO2Grams)
	}
	if !strings.Contains(fp.String(), "gCO2e") {
		t.Fatal("String() should render the footprint")
	}
}

func TestRegionSpreadAtLeastTenX(t *testing.T) {
	var lo, hi float64 = math.Inf(1), 0
	for _, r := range Regions() {
		fp := Estimate(1e18, device.GPULarge, r, 0.5)
		if fp.CO2Grams < lo {
			lo = fp.CO2Grams
		}
		if fp.CO2Grams > hi {
			hi = fp.CO2Grams
		}
	}
	if hi/lo < 10 {
		t.Fatalf("region spread %.1fx, want >= 10x", hi/lo)
	}
}

func TestFootprintGrowsWithModelFLOPs(t *testing.T) {
	prev := 0.0
	for _, flops := range []int64{1e12, 1e14, 1e16} {
		fp := Estimate(flops, device.GPUSmall, MixedEU, 0.5)
		if fp.CO2Grams <= prev {
			t.Fatal("CO2 should grow with FLOPs")
		}
		prev = fp.CO2Grams
	}
}

func testSlots() []Slot {
	return []Slot{
		{Device: device.GPULarge, Region: CoalHeavy, CapacityHours: 1000},
		{Device: device.GPULarge, Region: Hydro, CapacityHours: 1000},
		{Device: device.GPUSmall, Region: MixedUS, CapacityHours: 1000},
	}
}

func testJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Name: "job", FLOPs: 1e17}
	}
	return jobs
}

func TestCarbonAwareBeatsNaive(t *testing.T) {
	jobs := testJobs(9)
	_, naive := ScheduleNaive(jobs, testSlots())
	_, aware := ScheduleCarbonAware(jobs, testSlots())
	if aware >= naive/2 {
		t.Fatalf("carbon-aware %.1f g should be at least 2x below naive %.1f g", aware, naive)
	}
}

func TestSchedulersPlaceAllJobs(t *testing.T) {
	jobs := testJobs(7)
	a1, _ := ScheduleNaive(jobs, testSlots())
	a2, _ := ScheduleCarbonAware(jobs, testSlots())
	if len(a1) != 7 || len(a2) != 7 {
		t.Fatalf("assignments %d / %d, want 7", len(a1), len(a2))
	}
}

func TestCapacityRespected(t *testing.T) {
	slots := []Slot{
		{Device: device.GPULarge, Region: Hydro, CapacityHours: 0.5},
		{Device: device.GPULarge, Region: CoalHeavy, CapacityHours: 1000},
	}
	// Each job ~0.37 h on GPULarge at eff 0.5: only one fits in hydro.
	jobs := testJobs(4)
	assigns, _ := ScheduleCarbonAware(jobs, slots)
	hydroHours := 0.0
	for _, a := range assigns {
		if a.Slot == 0 {
			hydroHours += a.Hours
		}
	}
	if hydroHours > 0.5+1e-9 {
		t.Fatalf("hydro capacity exceeded: %g h", hydroHours)
	}
}

func TestCleanestSlotFillsFirst(t *testing.T) {
	jobs := testJobs(2)
	assigns, _ := ScheduleCarbonAware(jobs, testSlots())
	for _, a := range assigns {
		if a.RegionName != Hydro.Name {
			t.Fatalf("job placed in %s before hydro was full", a.RegionName)
		}
	}
}

func TestDiurnalCurveShape(t *testing.T) {
	curve := DiurnalCurve(MixedUS, 0.5)
	midday := curve(13)
	midnight := curve(1)
	if midday >= midnight {
		t.Fatalf("midday intensity %g should be below midnight %g on a solar grid", midday, midnight)
	}
	if midnight != MixedUS.Intensity {
		t.Fatalf("night intensity %g should equal base %g", midnight, MixedUS.Intensity)
	}
	// Periodic.
	if math.Abs(curve(13)-curve(13+24)) > 1e-9 {
		t.Fatal("curve not periodic")
	}
}

func TestDiurnalCurveBadShare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DiurnalCurve(MixedUS, 1.0)
}

func TestBestWindowPrefersMidday(t *testing.T) {
	curve := DiurnalCurve(MixedUS, 0.6)
	job := DeferrableJob{Name: "train", DurationHours: 2, DeadlineHour: 24, EnergyKWh: 10}
	start, co2 := BestWindow(curve, job)
	// Optimal 2h window should straddle the 13:00 solar peak.
	if start < 10 || start > 14 {
		t.Fatalf("best start %g not near midday", start)
	}
	if immediate := WindowCO2(curve, job, 0); co2 >= immediate {
		t.Fatalf("shifted emissions %g should beat immediate %g", co2, immediate)
	}
}

func TestBestWindowRespectsDeadline(t *testing.T) {
	curve := DiurnalCurve(MixedUS, 0.6)
	// Deadline before the solar peak: the job cannot wait for midday.
	job := DeferrableJob{DurationHours: 2, DeadlineHour: 6, EnergyKWh: 10}
	start, _ := BestWindow(curve, job)
	if start+job.DurationHours > job.DeadlineHour+1e-9 {
		t.Fatalf("window [%g, %g] misses deadline %g", start, start+job.DurationHours, job.DeadlineHour)
	}
	// Duration exceeding the deadline: starts immediately.
	tight := DeferrableJob{DurationHours: 8, DeadlineHour: 4, EnergyKWh: 1}
	if s, _ := BestWindow(curve, tight); s != 0 {
		t.Fatalf("infeasible deadline should start at 0, got %g", s)
	}
}

func TestTemporalSavingsPositiveForFlexibleJobs(t *testing.T) {
	curve := DiurnalCurve(CoalHeavy, 0.5)
	jobs := []DeferrableJob{
		{Name: "nightly-train", DurationHours: 3, DeadlineHour: 24, EnergyKWh: 50},
		{Name: "batch-eval", DurationHours: 1, DeadlineHour: 20, EnergyKWh: 5},
		{Name: "urgent", DurationHours: 2, DeadlineHour: 2, EnergyKWh: 8},
	}
	immediate, shifted := TemporalSavings(curve, jobs)
	if shifted >= immediate {
		t.Fatalf("temporal shifting saved nothing: %g vs %g", shifted, immediate)
	}
	// Jobs start at hour 0 (night): deferring to midday should cut the
	// flexible jobs' emissions substantially.
	if shifted > immediate*0.85 {
		t.Fatalf("savings too small: %g vs %g", shifted, immediate)
	}
}
