// Package green implements the environmental-impact tooling of Part 3.3 of
// the tutorial: a carbon-footprint calculator in the style of the ML
// Emissions Calculator / Green Algorithms (energy from measured FLOPs and
// hardware power, datacenter PUE, regional grid carbon intensity), and a
// carbon-aware job scheduler compared against a placement-oblivious
// baseline.
package green

import (
	"fmt"
	"sort"

	"dlsys/internal/device"
)

// Region describes a datacenter location's grid. Intensity values are
// public order-of-magnitude figures (gCO2e per kWh); the calculator logic,
// not the constants, is the artifact.
type Region struct {
	Name      string
	Intensity float64 // gCO2e/kWh
	PUE       float64 // datacenter power usage effectiveness
}

// Representative regions, spanning the ~20× spread in grid intensity that
// makes placement matter.
var (
	Hydro     = Region{Name: "hydro-north", Intensity: 20, PUE: 1.1}
	WindSolar = Region{Name: "wind-solar", Intensity: 80, PUE: 1.15}
	MixedEU   = Region{Name: "mixed-eu", Intensity: 300, PUE: 1.3}
	MixedUS   = Region{Name: "mixed-us", Intensity: 420, PUE: 1.4}
	CoalHeavy = Region{Name: "coal-heavy", Intensity: 800, PUE: 1.6}
)

// Regions lists the built-in catalogue.
func Regions() []Region { return []Region{Hydro, WindSolar, MixedEU, MixedUS, CoalHeavy} }

// Footprint is a training run's environmental bill.
type Footprint struct {
	Hours      float64 // wall-clock hours on the device
	EnergyKWh  float64 // device energy including PUE overhead
	CO2Grams   float64
	Device     string
	RegionName string
}

// Estimate computes the footprint of executing the given FLOPs on a device
// in a region at the given utilisation efficiency.
func Estimate(flops int64, prof device.Profile, region Region, efficiency float64) Footprint {
	seconds := prof.ComputeTime(flops, efficiency)
	joules := prof.Watts * seconds
	kwh := joules / 3.6e6 * region.PUE
	return Footprint{
		Hours:      seconds / 3600,
		EnergyKWh:  kwh,
		CO2Grams:   kwh * region.Intensity,
		Device:     prof.Name,
		RegionName: region.Name,
	}
}

// String renders the footprint like the emissions calculators the tutorial
// cites.
func (f Footprint) String() string {
	return fmt.Sprintf("%s@%s: %.3f h, %.4f kWh, %.1f gCO2e",
		f.Device, f.RegionName, f.Hours, f.EnergyKWh, f.CO2Grams)
}

// Job is a unit of training work for the scheduler.
type Job struct {
	Name  string
	FLOPs int64
}

// Slot is an available (device, region) pair with a capacity in device-
// hours.
type Slot struct {
	Device        device.Profile
	Region        Region
	CapacityHours float64
}

// Assignment maps a job to a slot with its resulting footprint.
type Assignment struct {
	Job  Job
	Slot int
	Footprint
}

// ScheduleNaive assigns jobs to slots round-robin, ignoring carbon —
// the placement-oblivious baseline. Returns assignments and total gCO2e.
// Jobs that exceed a slot's remaining capacity spill to the next slot.
func ScheduleNaive(jobs []Job, slots []Slot) ([]Assignment, float64) {
	order := make([]int, len(slots))
	for i := range order {
		order[i] = i
	}
	return schedule(jobs, slots, order, true)
}

// ScheduleCarbonAware greedily fills the cleanest (lowest gCO2e per FLOP)
// slots first. Returns assignments and total gCO2e.
func ScheduleCarbonAware(jobs []Job, slots []Slot) ([]Assignment, float64) {
	order := make([]int, len(slots))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return co2PerFLOP(slots[order[a]]) < co2PerFLOP(slots[order[b]])
	})
	return schedule(jobs, slots, order, false)
}

func co2PerFLOP(s Slot) float64 {
	// gCO2 per FLOP = W/(FLOPs/s·eff) / 3.6e6 · PUE · intensity
	const eff = 0.5
	return s.Device.Watts / (s.Device.FLOPsPerSec * eff) / 3.6e6 * s.Region.PUE * s.Region.Intensity
}

// schedule places each job into the first slot (in the given preference
// order) with remaining capacity. With roundRobin the cursor advances after
// every placement (spreading load); otherwise the cleanest slots fill up
// first. Jobs that fit nowhere are charged to the last slot in the order so
// both policies pay for identical work.
func schedule(jobs []Job, slots []Slot, order []int, roundRobin bool) ([]Assignment, float64) {
	remaining := make([]float64, len(slots))
	for i, s := range slots {
		remaining[i] = s.CapacityHours
	}
	var out []Assignment
	var total float64
	const eff = 0.5
	cursor := 0
	for _, job := range jobs {
		placed := false
		for tries := 0; tries < len(order); tries++ {
			si := order[(cursor+tries)%len(order)]
			hours := slots[si].Device.ComputeTime(job.FLOPs, eff) / 3600
			if hours > remaining[si] {
				continue
			}
			remaining[si] -= hours
			fp := Estimate(job.FLOPs, slots[si].Device, slots[si].Region, eff)
			out = append(out, Assignment{Job: job, Slot: si, Footprint: fp})
			total += fp.CO2Grams
			placed = true
			if roundRobin {
				cursor = (cursor + tries + 1) % len(order)
			}
			break
		}
		if !placed {
			si := order[len(order)-1]
			fp := Estimate(job.FLOPs, slots[si].Device, slots[si].Region, eff)
			out = append(out, Assignment{Job: job, Slot: si, Footprint: fp})
			total += fp.CO2Grams
		}
	}
	return out, total
}
