package green

import "math"

// Temporal carbon-aware scheduling: §4.3 cites Google's practice of
// shifting datacenter work in TIME to when the grid is cleanest ("follow
// the renewables"). This file models a diurnal carbon-intensity curve and a
// scheduler that places deferrable jobs into their cleanest feasible
// window, compared against running immediately.

// IntensityCurve returns a region's grid carbon intensity (gCO2e/kWh) at a
// given hour-of-day. Solar-heavy grids dip mid-day; the base intensity
// scales the curve.
type IntensityCurve func(hour float64) float64

// DiurnalCurve builds a curve around a region's base intensity with the
// given solar share in [0, 1): intensity dips toward midday proportionally
// to how much solar the grid carries.
func DiurnalCurve(region Region, solarShare float64) IntensityCurve {
	if solarShare < 0 || solarShare >= 1 {
		panic("green: solar share out of [0,1)")
	}
	return func(hour float64) float64 {
		h := math.Mod(hour, 24)
		// Solar output: zero at night, peaking at 13:00.
		sun := math.Cos((h - 13) / 24 * 2 * math.Pi)
		if sun < 0 {
			sun = 0
		}
		return region.Intensity * (1 - solarShare*sun)
	}
}

// DeferrableJob is work that must finish by a deadline but may start any
// time before it.
type DeferrableJob struct {
	Name          string
	DurationHours float64
	DeadlineHour  float64 // hours from now
	EnergyKWh     float64 // energy the job consumes (device × PUE already applied)
}

// WindowCO2 integrates the intensity curve over [start, start+duration]
// and returns the job's emissions for that placement.
func WindowCO2(curve IntensityCurve, job DeferrableJob, startHour float64) float64 {
	const step = 0.25 // 15-minute integration
	var sum float64
	n := 0
	for t := startHour; t < startHour+job.DurationHours; t += step {
		sum += curve(t)
		n++
	}
	if n == 0 {
		return 0
	}
	avgIntensity := sum / float64(n)
	return job.EnergyKWh * avgIntensity
}

// BestWindow finds the start hour in [0, deadline−duration] minimising the
// job's emissions, scanning at 15-minute granularity. Returns the start and
// the resulting gCO2e. Jobs whose duration exceeds the deadline start at 0.
func BestWindow(curve IntensityCurve, job DeferrableJob) (startHour, co2 float64) {
	latest := job.DeadlineHour - job.DurationHours
	if latest <= 0 {
		return 0, WindowCO2(curve, job, 0)
	}
	best, bestCO2 := 0.0, math.Inf(1)
	for s := 0.0; s <= latest; s += 0.25 {
		if c := WindowCO2(curve, job, s); c < bestCO2 {
			best, bestCO2 = s, c
		}
	}
	return best, bestCO2
}

// TemporalSavings compares deferring each job to its best window against
// running everything immediately, returning (immediate, shifted) total
// gCO2e.
func TemporalSavings(curve IntensityCurve, jobs []DeferrableJob) (immediate, shifted float64) {
	for _, j := range jobs {
		immediate += WindowCO2(curve, j, 0)
		_, c := BestWindow(curve, j)
		shifted += c
	}
	return immediate, shifted
}
