package livedb

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// EventKind enumerates the maintenance events the engine ledgers.
type EventKind uint8

// Maintenance event classes, in lifecycle order.
const (
	EvRetrainStart EventKind = 1 + iota // monitoring tripped; candidate build began
	EvSwap                              // candidate validated and atomically installed
	EvRollback                          // candidate rejected; last-good snapshot restored
	EvCooldownEnd                       // post-rollback distrust window elapsed
)

// String names the kind for ledger printouts.
func (k EventKind) String() string {
	switch k {
	case EvRetrainStart:
		return "retrain-start"
	case EvSwap:
		return "swap"
	case EvRollback:
		return "rollback"
	case EvCooldownEnd:
		return "cooldown-end"
	}
	return "unknown"
}

// Entry is one ledgered maintenance event.
type Entry struct {
	T      float64   // simulated time of the event
	Kind   EventKind // what happened
	Reason string    // trigger or rejection reason ("delta-fraction", "schema: ...")
	N      int       // kind-specific count (key-set size, quarantined keys)
	Value  float64   // kind-specific measurement (FPR at trigger, declared window)
}

// String formats the entry for tables and logs.
func (e Entry) String() string {
	return fmt.Sprintf("t=%.3f %-13s %-24s n=%d v=%.4g", e.T, e.Kind, e.Reason, e.N, e.Value)
}

// Ledger is the deterministic audit trail of every retrain, swap, rollback,
// and cooldown the maintenance actor performed. Its counters must reconcile
// exactly with the engine's obs counters — the X11 invariant — and its
// fingerprint is one of the replay triple the experiment asserts
// bit-identical across runs.
type Ledger struct {
	Entries []Entry
}

// add appends one event.
func (l *Ledger) add(e Entry) { l.Entries = append(l.Entries, e) }

// Len returns the number of recorded events.
func (l *Ledger) Len() int { return len(l.Entries) }

// Count returns how many entries have the given kind.
func (l *Ledger) Count(k EventKind) int {
	n := 0
	for _, e := range l.Entries {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// SumN totals the N field over entries of the given kind (e.g. total keys
// quarantined across every rollback).
func (l *Ledger) SumN(k EventKind) int {
	n := 0
	for _, e := range l.Entries {
		if e.Kind == k {
			n += e.N
		}
	}
	return n
}

// First returns the earliest entry of the given kind with the given reason
// ("" matches any reason).
func (l *Ledger) First(k EventKind, reason string) (Entry, bool) {
	for _, e := range l.Entries {
		if e.Kind == k && (reason == "" || e.Reason == reason) {
			return e, true
		}
	}
	return Entry{}, false
}

// Fingerprint hashes the full event sequence — times, kinds, reasons,
// counts, and measurements — with FNV-1a. Two runs of the same seeded
// scenario must produce equal fingerprints.
func (l *Ledger) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range l.Entries {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.T))
		h.Write(buf[:])
		h.Write([]byte{byte(e.Kind)})
		h.Write([]byte(e.Reason))
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(e.N)))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.Value))
		h.Write(buf[:])
	}
	return h.Sum64()
}
