// Package livedb is the deterministic online index-maintenance engine: the
// learned database components (RMI, learned Bloom filter) and their
// classical baselines (B-tree, sorted arrays) composed into one live,
// self-healing subsystem on the shared simulation kernel. A workload drives
// interleaved lookups, range scans, and inserts whose key distribution
// drifts on a schedule and whose insert stream suffers fault-injected
// in-flight corruption; a maintenance actor watches per-window index health
// (learned-Bloom measured FPR, delta-buffer growth, degraded probes) and
// retrains online, guarded end to end: candidate indexes are validated —
// guard.BatchSchema over the merged key set, a held-out probe sweep, and a
// search-window cap — before an atomic swap, regressions roll back to the
// last CRC-verifiable coefficient snapshot, and throughout every query is
// answered by some tier of the fallback ladder
//
//	learned RMI → delta buffer → B-tree → quarantine scan
//
// with zero unavailability. Every maintenance event lands in a fingerprinted
// ledger that must reconcile exactly with the engine's obs counters, and
// the whole scenario replays bit-identically under the same seeds.
package livedb

import (
	"math"
	"math/rand"
	"sort"

	"dlsys/internal/checkpoint"
	"dlsys/internal/data"
	"dlsys/internal/db"
	"dlsys/internal/guard"
	"dlsys/internal/learned"
	"dlsys/internal/obs"
	"dlsys/internal/sim"
)

// Tier identifies which rung of the fallback ladder answered a query.
type Tier uint8

// Ladder tiers, fastest first. Every query is attributed to exactly one.
const (
	TierLearned Tier = iota // bloom + RMI over the model-indexed array
	TierDelta               // sorted buffer of not-yet-merged inserts
	TierBTree               // synchronously maintained classical index
	TierScan                // scan of quarantined (scrubbed) keys
	tierEnd
)

// NumTiers is the number of ladder tiers.
const NumTiers = int(tierEnd)

// String names the tier for metrics and tables.
func (t Tier) String() string {
	switch t {
	case TierLearned:
		return "learned"
	case TierDelta:
		return "delta"
	case TierBTree:
		return "btree"
	case TierScan:
		return "scan"
	}
	return "unknown"
}

// State is the maintenance state machine's position.
type State uint8

// Maintenance states.
const (
	// StateServing: the learned tier is online and monitored.
	StateServing State = iota
	// StateRetraining: a candidate is building; the learned tier is offline
	// and point queries degrade to the B-tree rung.
	StateRetraining
	// StateCooldown: a rollback just happened; the ladder keeps serving from
	// the B-tree rung for a distrust window before the learned tier returns.
	StateCooldown
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateServing:
		return "serving"
	case StateRetraining:
		return "retraining"
	case StateCooldown:
		return "cooldown"
	}
	return "unknown"
}

// ConfigError reports an invalid engine configuration field.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return "livedb: config " + e.Field + " " + e.Reason
}

// Config parameterizes the engine. Zero fields take the documented
// defaults; Kernel is required.
type Config struct {
	Seed int64

	// Index shape.
	Leaves    int     // RMI second-level models (default 64)
	TargetFPR float64 // learned-Bloom build-time FPR target (default 0.05)
	// BloomHidden/BloomEpochs size the bloom classifier's training
	// (defaults 8 and 12 — the filter is rebuilt at every swap, so builds
	// must stay cheap).
	BloomHidden int
	BloomEpochs int

	// Maintenance triggers.
	// RebuildFraction: retrain when the delta buffer reaches this fraction
	// of the model-indexed array, +1 (default 0.08, mirroring DynamicRMI).
	RebuildFraction float64
	// FPRTriggerFactor: retrain when the measured live FPR reaches this
	// multiple of TargetFPR (default 1.5 — strictly inside the 2x budget the
	// degradation tests assert).
	FPRTriggerFactor float64
	// MinFPRProbes: negative probes before the FPR trigger arms (default 200).
	MinFPRProbes int
	// WindowCap rejects candidates whose max search window exceeds it
	// (default 4x the initial index's window, floor 64).
	WindowCap int

	// Timing, in simulated seconds.
	MaintainEvery float64 // monitoring window (default 0.25)
	RetrainS      float64 // candidate build duration (default 0.5)
	CooldownS     float64 // post-rollback distrust window (default 0.3)

	// Snapshots retained for rollback (default 3); a fresh snapshot of the
	// active index is taken every SnapshotEvery maintenance windows
	// (default 4) and at every swap.
	Snapshots     int
	SnapshotEvery int

	// DriftSigma for the guard schema's drift flag (default 3).
	DriftSigma float64

	Kernel *sim.Kernel // required: the shared clock and event loop
	Obs    *obs.Handle // optional instrumentation
}

func (c Config) withDefaults() Config {
	if c.Leaves == 0 {
		c.Leaves = 64
	}
	if c.TargetFPR == 0 {
		c.TargetFPR = 0.05
	}
	if c.BloomHidden == 0 {
		c.BloomHidden = 8
	}
	if c.BloomEpochs == 0 {
		c.BloomEpochs = 12
	}
	if c.RebuildFraction == 0 {
		c.RebuildFraction = 0.08
	}
	if c.FPRTriggerFactor == 0 {
		c.FPRTriggerFactor = 1.5
	}
	if c.MinFPRProbes == 0 {
		c.MinFPRProbes = 200
	}
	if c.MaintainEvery == 0 {
		c.MaintainEvery = 0.25
	}
	if c.RetrainS == 0 {
		c.RetrainS = 0.5
	}
	if c.CooldownS == 0 {
		c.CooldownS = 0.3
	}
	if c.Snapshots == 0 {
		c.Snapshots = 3
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 4
	}
	if c.DriftSigma == 0 {
		c.DriftSigma = 3
	}
	return c
}

// validate rejects incoherent configurations with a typed *ConfigError.
func (c Config) validate() error {
	switch {
	case c.Kernel == nil:
		return &ConfigError{Field: "Kernel", Reason: "is required"}
	case c.Leaves < 1:
		return &ConfigError{Field: "Leaves", Reason: "must be positive"}
	case c.TargetFPR <= 0 || c.TargetFPR >= 1:
		return &ConfigError{Field: "TargetFPR", Reason: "out of (0,1)"}
	case c.RebuildFraction <= 0:
		return &ConfigError{Field: "RebuildFraction", Reason: "must be positive"}
	case c.FPRTriggerFactor < 1:
		return &ConfigError{Field: "FPRTriggerFactor", Reason: "must be at least 1"}
	case c.MaintainEvery <= 0 || c.RetrainS <= 0 || c.CooldownS <= 0:
		return &ConfigError{Field: "MaintainEvery/RetrainS/CooldownS", Reason: "must be positive"}
	}
	return nil
}

// Modeled per-operation costs in simulated seconds: the constants the
// engine advances the shared clock by, chosen so the learned path's
// window-bounded search beats the B-tree's node walks — the crossover the
// live metrics must re-attain after every retrain.
const (
	costBloomProbe = 200e-9 // classifier + backup filter probe
	costWindowStep = 50e-9  // per halving of the RMI error window
	costBTreeNode  = 300e-9 // per B-tree level touched
	costSortedStep = 40e-9  // per halving of a sorted buffer
	costScanKey    = 10e-9  // per quarantined key scanned
	costInsertKey  = 250e-9 // per key stored
	costWalkKey    = 15e-9  // per key walked by a range scan
)

func log2Cost(n int, per float64) float64 {
	return per * math.Log2(float64(n)+2)
}

// Stats mirrors the engine's obs counters field for field — the
// reconciliation contract: every counter on the registry must equal the
// corresponding Stats field exactly at the end of a run.
type Stats struct {
	Lookups    int // point queries answered
	RangeScans int // range-count queries answered
	Stored     int // keys committed by Insert
	Duplicates int // insert keys dropped as already present

	TierServed [NumTiers]int // queries answered per ladder tier

	BloomFP int // live bloom false positives (positive probe, key absent)
	BloomTN int // live bloom true negatives

	DegradedProbes   int // RMI probes that fell back to full search
	WindowViolations int // probes whose window exceeded the declared bound

	Retrains         int // maintenance-triggered candidate builds
	Swaps            int // candidates validated and installed
	Rollbacks        int // candidates rejected; snapshot restored
	Cooldowns        int // cooldown windows completed
	Quarantined      int // keys scrubbed out of the delta buffer
	DriftFlags       int // schema drift flags on validated candidates
	Snapshots        int // CRC'd index snapshots taken
	SnapshotsSkipped int // snapshots that failed CRC/decode during rollback
}

// Queries returns the total number of answered queries (point + range).
func (s Stats) Queries() int { return s.Lookups + s.RangeScans }

// ServedTotal sums the per-tier served counts; availability is 100% exactly
// when ServedTotal == Queries.
func (s Stats) ServedTotal() int {
	n := 0
	for _, v := range s.TierServed {
		n += v
	}
	return n
}

// Engine is the live index-maintenance engine. It is driven entirely from
// kernel events on one goroutine; none of its methods are safe for
// concurrent use.
type Engine struct {
	cfg Config
	k   *sim.Kernel
	h   *obs.Handle

	// The ladder.
	main        []uint64 // sorted, model-indexed keys
	rmi         *learned.RMI
	lb          *learned.LearnedBloom
	bt          *db.BTree // over main ∪ delta ∪ pending, synchronously maintained
	delta       []uint64  // sorted buffer of inserts since the last swap
	pending     []uint64  // sorted buffer of inserts during an active retrain
	quarantine  []uint64  // sorted keys scrubbed as corrupt, kept queryable
	declaredWin int       // the active index's validated max search window
	windowCap   int

	schema *guard.BatchSchema // candidate validation + drift flagging

	state         State
	mainVersion   int // bumped at every swap; snapshots are version-tagged
	cooldownUntil float64
	frozen        []uint64 // main ∪ delta captured at retrain start
	stopped       bool
	maintEv       *sim.Event

	snaps []versionedSnap

	// Per-maintenance-window monitors (reset each tick).
	winDegraded int
	// Cumulative bloom outcome counts since the active filter was built.
	cumFP, cumTN int
	ticks        int

	// Live latency crossover accounting since the last swap: simulated
	// seconds spent on learned-tier point lookups vs what the B-tree would
	// have charged for the same queries.
	learnedServeS float64
	btreeAltS     float64
	learnedSince  int // learned-tier lookups in those sums

	stats  Stats
	ledger Ledger
}

type versionedSnap struct {
	version int
	snap    checkpoint.Snapshot
}

// NewEngine builds the engine over the initial key set (sorted copies are
// taken) and registers nothing on the kernel until Start.
func NewEngine(initial []uint64, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(initial) == 0 {
		return nil, &ConfigError{Field: "initial keys", Reason: "must be non-empty"}
	}
	main := append([]uint64(nil), initial...)
	sort.Slice(main, func(i, j int) bool { return main[i] < main[j] })

	rmi, err := learned.BuildRMI(main, cfg.Leaves)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		k:           cfg.Kernel,
		h:           cfg.Obs,
		main:        main,
		rmi:         rmi,
		bt:          db.BulkLoadBTree(main),
		declaredWin: rmi.MaxSearchWindow(),
	}
	e.windowCap = cfg.WindowCap
	if e.windowCap == 0 {
		e.windowCap = 4 * e.declaredWin
		if e.windowCap < 64 {
			e.windowCap = 64
		}
	}
	e.schema = keySchema(main, cfg.DriftSigma)
	e.lb = e.buildBloom(main)
	e.takeSnapshot()
	return e, nil
}

// buildBloom trains a fresh learned Bloom filter over the keys. The rng is
// derived from (seed, mainVersion) so every rebuild is deterministic and
// independent of query history.
func (e *Engine) buildBloom(keys []uint64) *learned.LearnedBloom {
	rng := rand.New(rand.NewSource(e.cfg.Seed ^ int64(e.mainVersion+1)*0x9e3779b9))
	negs := data.NegativeKeys(rng, keys, len(keys)/2+1)
	// The budget is split between the stages: a false positive escapes via
	// the classifier OR the backup filter, so giving each stage the full
	// target would serve ~2x the declared FPR from the start.
	lb, err := learned.BuildLearnedBloom(rng, keys, negs, learned.LearnedBloomConfig{
		Hidden: e.cfg.BloomHidden, Epochs: e.cfg.BloomEpochs, LR: 0.01,
		TargetFPR: e.cfg.TargetFPR / 2, BackupFPR: e.cfg.TargetFPR / 2,
	})
	if err != nil {
		// Unreachable: config validation bounds TargetFPR inside (0,1).
		panic("livedb: buildBloom: " + err.Error())
	}
	return lb
}

// Start registers the maintenance actor's periodic monitoring on the
// kernel. Call once, before Kernel.Run.
func (e *Engine) Start() {
	maint := e.k.Actor("livedb-maint")
	e.maintEv = maint.Every(e.cfg.MaintainEvery, e.cfg.MaintainEvery, func(now float64) bool {
		if e.stopped {
			return false
		}
		e.tick(now)
		return true
	})
}

// Stop ends maintenance after the current window; the workload calls it
// when its operation stream is exhausted so the kernel can drain.
func (e *Engine) Stop() { e.stopped = true }

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Ledger returns the maintenance audit trail.
func (e *Engine) Ledger() *Ledger { return &e.ledger }

// State returns the maintenance state machine's position.
func (e *Engine) State() State { return e.state }

// DeltaLen returns the current delta-buffer size (including pending).
func (e *Engine) DeltaLen() int { return len(e.delta) + len(e.pending) }

// QuarantineLen returns how many scrubbed keys are parked for audit.
func (e *Engine) QuarantineLen() int { return len(e.quarantine) }

// LearnedMemoryBytes is the learned path's resident size: RMI models plus
// the bloom filter.
func (e *Engine) LearnedMemoryBytes() int64 {
	if e.rmi == nil {
		return 0
	}
	return e.rmi.MemoryBytes() + e.lb.MemoryBytes()
}

// BTreeMemoryBytes is the classical baseline's resident size.
func (e *Engine) BTreeMemoryBytes() int64 { return e.bt.MemoryBytes() }

// LearnedWin reports the live latency crossover since the last swap: total
// simulated seconds the learned tier actually charged for its point
// lookups, what the B-tree would have charged for the same queries, and how
// many lookups are in the sample.
func (e *Engine) LearnedWin() (learnedS, btreeS float64, lookups int) {
	return e.learnedServeS, e.btreeAltS, e.learnedSince
}

// Lookup answers a point membership query, walking the fallback ladder:
// delta buffer first (the hottest keys), then — state permitting — the
// learned bloom+RMI path, else the B-tree, with a final quarantine scan for
// keys scrubbed out of the main structures. The simulated clock advances by
// the modeled cost of exactly the work performed; the returned tier is the
// rung that produced the definitive answer.
func (e *Engine) Lookup(key uint64) (bool, Tier) {
	e.stats.Lookups++
	e.h.Counter("livedb.lookups").Inc()

	cost := 0.0
	found := false
	var tier Tier
	switch {
	case e.sortedHas(e.delta, key) || e.sortedHas(e.pending, key):
		found, tier = true, TierDelta
		cost += log2Cost(len(e.delta)+len(e.pending), costSortedStep)
	case e.state == StateServing && e.rmi != nil:
		tier = TierLearned
		cost += log2Cost(len(e.delta)+len(e.pending), costSortedStep)
		cost += costBloomProbe
		if !e.lb.MayContain(key) {
			// Bloom filters have no false negatives over the indexed set, so
			// a negative is a definitive miss for main.
			e.cumTN++
			e.stats.BloomTN++
			e.h.Counter("livedb.bloom_tn").Inc()
		} else {
			_, ok, w, degraded := e.rmi.Probe(e.main, key)
			cost += log2Cost(w, costWindowStep)
			e.h.Histogram("livedb.probe_window", windowBuckets).Observe(float64(w))
			if degraded {
				e.winDegraded++
				e.stats.DegradedProbes++
				e.h.Counter("livedb.degraded_probes").Inc()
			}
			if w > e.declaredWin {
				e.stats.WindowViolations++
				e.h.Counter("livedb.window_violations").Inc()
			}
			if ok {
				found = true
			} else {
				e.cumFP++
				e.stats.BloomFP++
				e.h.Counter("livedb.bloom_fp").Inc()
			}
		}
	default:
		tier = TierBTree
		cost += log2Cost(len(e.delta)+len(e.pending), costSortedStep)
		_, found = e.bt.Lookup(key)
		cost += float64(e.bt.Depth()) * costBTreeNode
	}
	if !found && len(e.quarantine) > 0 {
		cost += float64(len(e.quarantine)) * costScanKey
		if e.sortedHas(e.quarantine, key) {
			found, tier = true, TierScan
		}
	}
	if tier == TierLearned {
		e.learnedServeS += cost
		e.btreeAltS += log2Cost(len(e.delta)+len(e.pending), costSortedStep) +
			float64(e.bt.Depth())*costBTreeNode
		e.learnedSince++
	}
	e.serve(tier, cost)
	return found, tier
}

// Count answers a range-count query over [lo, hi]. The learned path ranks
// lo and hi against the model-indexed array (window-bounded searches) and
// adds the buffers; the classical path walks the B-tree.
func (e *Engine) Count(lo, hi uint64) (int, Tier) {
	e.stats.RangeScans++
	e.h.Counter("livedb.range_scans").Inc()
	if hi < lo {
		lo, hi = hi, lo
	}

	cost := 0.0
	n := 0
	var tier Tier
	if e.state == StateServing && e.rmi != nil {
		tier = TierLearned
		span := sortedRange(e.main, lo, hi)
		n += span
		// Two window-bounded boundary searches plus the walk.
		cost += costBloomProbe + 2*log2Cost(e.declaredWin, costWindowStep) + float64(span)*costWalkKey
		n += sortedRange(e.delta, lo, hi) + sortedRange(e.pending, lo, hi)
		cost += 2 * log2Cost(len(e.delta)+len(e.pending), costSortedStep)
	} else {
		tier = TierBTree
		span := e.bt.RangeCount(lo, hi)
		n += span
		cost += float64(e.bt.Depth())*costBTreeNode + float64(span)*costWalkKey
	}
	if len(e.quarantine) > 0 {
		n += sortedRange(e.quarantine, lo, hi)
		cost += float64(len(e.quarantine)) * costScanKey
	}
	e.serve(tier, cost)
	return n, tier
}

// Insert commits a batch of keys, returning the keys actually stored
// (duplicates of any ladder rung are dropped). Keys land in the delta
// buffer — or the pending buffer during an active retrain, so a candidate
// validates against a frozen key set — and the B-tree synchronously, which
// is what keeps the classical rung exact at all times.
func (e *Engine) Insert(batch []uint64) []uint64 {
	var stored []uint64
	cost := 0.0
	for _, k := range batch {
		if e.contains(k) {
			e.stats.Duplicates++
			e.h.Counter("livedb.duplicates").Inc()
			continue
		}
		if e.state == StateRetraining {
			insertSorted(&e.pending, k)
		} else {
			insertSorted(&e.delta, k)
		}
		e.bt.Insert(k, 0)
		stored = append(stored, k)
		cost += costInsertKey
	}
	e.stats.Stored += len(stored)
	e.h.Counter("livedb.inserts").Add(int64(len(stored)))
	e.k.Advance(cost)
	return stored
}

// serve attributes one answered query to a tier and advances the clock.
func (e *Engine) serve(tier Tier, cost float64) {
	e.stats.TierServed[tier]++
	e.h.Counter("livedb.tier." + tier.String() + ".served").Inc()
	e.h.Histogram("livedb.tier."+tier.String()+".latency_seconds", latencyBuckets).Observe(cost)
	e.k.Advance(cost)
}

// contains is the membership oracle across every rung (no stats, no cost):
// the duplicate screen for inserts.
func (e *Engine) contains(key uint64) bool {
	if e.sortedHas(e.delta, key) || e.sortedHas(e.pending, key) || e.sortedHas(e.quarantine, key) {
		return true
	}
	_, ok := e.bt.Lookup(key)
	return ok
}

var (
	latencyBuckets = obs.ExpBuckets(1e-7, 2, 14)
	windowBuckets  = obs.ExpBuckets(1, 2, 14)
)

// Sorted-slice helpers shared by the ladder rungs.

func (e *Engine) sortedHas(s []uint64, key uint64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= key })
	return i < len(s) && s[i] == key
}

// sortedRange counts keys of s in [lo, hi].
func sortedRange(s []uint64, lo, hi uint64) int {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= lo })
	j := sort.Search(len(s), func(i int) bool { return s[i] > hi })
	return j - i
}

func insertSorted(s *[]uint64, key uint64) {
	i := sort.Search(len(*s), func(i int) bool { return (*s)[i] >= key })
	*s = append(*s, 0)
	copy((*s)[i+1:], (*s)[i:])
	(*s)[i] = key
}

// mergeSorted merges two sorted key slices into a fresh one.
func mergeSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
