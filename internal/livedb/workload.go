package livedb

import (
	"math/rand"
	"sort"

	"dlsys/internal/fault"
)

// Phase is one segment of the workload's drift schedule. From StartS
// onwards, inserts sample around the phase's cluster centers and absent
// lookups probe hard negatives (present key ± 1 — the probes a learned
// Bloom filter trained on the old distribution misclassifies) at
// HardNegFrac. Phases are how an experiment turns distribution drift on
// and off at declared times.
type Phase struct {
	StartS      float64
	Clusters    []uint64 // insert cluster centers; nil means uniform over Space
	HardNegFrac float64  // fraction of absent lookups that are hard negatives
}

// WorkloadConfig parameterizes the traffic generator. Zero fields take the
// documented defaults.
type WorkloadConfig struct {
	Seed int64
	Ops  int     // total operations to issue (required)
	Rate float64 // operations per simulated second (default 500)

	// Operation mix. Zero means the default; a negative value disables the
	// operation class entirely (the FPR-drift tests run lookup-only traffic).
	InsertFrac float64 // fraction of ops that are insert batches (default 0.25)
	RangeFrac  float64 // fraction of ops that are range counts (default 0.1)
	AbsentFrac float64 // fraction of point lookups probing absent keys (default 0.35)

	BatchSize    int    // keys per insert batch (default 8)
	Space        uint64 // key universe [0, Space) (default 1<<44)
	ClusterWidth uint64 // spread around a cluster center (default 1<<20)
	RangeWidth   uint64 // span of a range count (default Space/512)

	Phases []Phase // drift schedule; empty means uniform throughout

	// Faults drives in-flight insert corruption: each key in each batch
	// draws KindCorrupt at the batch's op index, and a hit flips a high bit
	// (bits 45+) before the key reaches the engine — past the CRC layer, so
	// only candidate validation can catch it.
	Faults fault.Config
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Rate == 0 {
		c.Rate = 500
	}
	if c.InsertFrac == 0 {
		c.InsertFrac = 0.25
	}
	if c.RangeFrac == 0 {
		c.RangeFrac = 0.1
	}
	if c.AbsentFrac == 0 {
		c.AbsentFrac = 0.35
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.Space == 0 {
		c.Space = 1 << 44
	}
	if c.ClusterWidth == 0 {
		c.ClusterWidth = 1 << 20
	}
	if c.RangeWidth == 0 {
		c.RangeWidth = c.Space / 512
	}
	return c
}

// WorkloadStats summarizes a finished run from the client's side of the
// wire: every answer was checked against an exact oracle of acked writes,
// so Mismatches == 0 is the end-to-end correctness invariant and
// CorruptedSent is the ground truth the quarantine ledger reconciles
// against.
type WorkloadStats struct {
	Ops           int // operations issued
	Mismatches    int // answers disagreeing with the oracle
	CorruptedSent int // insert keys bit-flipped in flight
}

// Workload drives the engine with an interleaved, drift-scheduled,
// fault-injected operation stream as a chained actor on the shared kernel.
// Every answer is verified against a sorted oracle of acknowledged writes.
type Workload struct {
	cfg WorkloadConfig
	eng *Engine
	rng *rand.Rand
	inj *fault.Injector

	present []uint64 // sorted oracle: every key the engine acked
	stats   WorkloadStats
}

// NewWorkload builds the generator over the engine's initial key set (the
// oracle starts as a sorted copy).
func NewWorkload(eng *Engine, initial []uint64, cfg WorkloadConfig) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.Ops <= 0 {
		return nil, &ConfigError{Field: "Ops", Reason: "must be positive"}
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	present := append([]uint64(nil), initial...)
	sort.Slice(present, func(i, j int) bool { return present[i] < present[j] })
	return &Workload{
		cfg:     cfg,
		eng:     eng,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		inj:     fault.NewInjector(cfg.Faults),
		present: present,
	}, nil
}

// Stats returns the client-side summary.
func (w *Workload) Stats() WorkloadStats { return w.stats }

// Start schedules the operation chain: each op fires 1/Rate after the
// previous one completed (the engine advances the clock by each op's
// modeled cost), and the final op stops the engine's maintenance loop so
// the kernel can drain.
func (w *Workload) Start() {
	a := w.eng.k.Actor("livedb-wl")
	gap := 1 / w.cfg.Rate
	i := 0
	var run func(now float64)
	run = func(now float64) {
		w.op(i, now)
		i++
		if i >= w.cfg.Ops {
			w.eng.Stop()
			return
		}
		a.After(gap, run)
	}
	a.After(gap, run)
}

// phase returns the active drift-schedule segment at time now.
func (w *Workload) phase(now float64) Phase {
	var p Phase
	for _, ph := range w.cfg.Phases {
		if ph.StartS <= now {
			p = ph
		}
	}
	return p
}

// op issues one operation and verifies the answer against the oracle.
func (w *Workload) op(i int, now float64) {
	w.stats.Ops++
	ph := w.phase(now)
	switch r := w.rng.Float64(); {
	case r < w.cfg.InsertFrac:
		w.insert(i, now, ph)
	case r < w.cfg.InsertFrac+w.cfg.RangeFrac:
		w.rangeCount()
	default:
		w.lookup(ph)
	}
}

func (w *Workload) lookup(ph Phase) {
	var key uint64
	if w.rng.Float64() < w.cfg.AbsentFrac {
		if w.rng.Float64() < ph.HardNegFrac && len(w.present) > 0 {
			// Hard negative: one off a present key — nearly identical
			// features, so a drift-stale learned Bloom scores it positive.
			key = w.present[w.rng.Intn(len(w.present))]
			if w.rng.Intn(2) == 0 {
				key++
			} else if key > 0 {
				key--
			}
		} else {
			key = w.rng.Uint64() % w.cfg.Space
		}
	} else {
		key = w.present[w.rng.Intn(len(w.present))]
	}
	// Expectation comes from the oracle, not the draw's intent — a random
	// "absent" probe may collide with a real key.
	want := w.oracleHas(key)
	got, _ := w.eng.Lookup(key)
	if got != want {
		w.stats.Mismatches++
	}
}

func (w *Workload) rangeCount() {
	lo := w.rng.Uint64() % w.cfg.Space
	hi := lo + w.cfg.RangeWidth
	got, _ := w.eng.Count(lo, hi)
	if want := sortedRange(w.present, lo, hi); got != want {
		w.stats.Mismatches++
	}
}

func (w *Workload) insert(i int, now float64, ph Phase) {
	batch := make([]uint64, w.cfg.BatchSize)
	for j := range batch {
		var k uint64
		if len(ph.Clusters) > 0 {
			c := ph.Clusters[w.rng.Intn(len(ph.Clusters))]
			k = (c + w.rng.Uint64()%w.cfg.ClusterWidth) % w.cfg.Space
		} else {
			k = w.rng.Uint64() % w.cfg.Space
		}
		if w.inj.ChanceAt(fault.KindCorrupt, 0, i, j, 0, now) {
			// In-flight bit flip past the CRC layer: a high bit lands the
			// key far outside the schema fence.
			k |= 1 << (45 + uint(w.rng.Intn(13)))
			w.stats.CorruptedSent++
		}
		batch[j] = k
	}
	// Only acked keys enter the oracle: the engine's answer sets the
	// client's expectations, exactly as a real client's would be.
	for _, k := range w.eng.Insert(batch) {
		insertSorted(&w.present, k)
	}
}

func (w *Workload) oracleHas(key uint64) bool {
	i := sort.Search(len(w.present), func(i int) bool { return w.present[i] >= key })
	return i < len(w.present) && w.present[i] == key
}
