package livedb

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"dlsys/internal/fault"
	"dlsys/internal/learned"
	"dlsys/internal/obs"
	"dlsys/internal/sim"
)

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// uniformKeys draws n distinct keys uniformly over [0, space).
func uniformKeys(seed int64, n int, space uint64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := rng.Uint64() % space
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// scenario is one fully assembled engine + workload on a fresh kernel.
type scenario struct {
	k   *sim.Kernel
	h   *obs.Handle
	eng *Engine
	wl  *Workload
}

func newScenario(t *testing.T, seed int64, nKeys int, wcfg WorkloadConfig, ecfg Config) *scenario {
	t.Helper()
	k := sim.New()
	h := obs.NewHandle()
	ecfg.Seed = seed
	ecfg.Kernel = k
	ecfg.Obs = h
	initial := uniformKeys(seed, nKeys, 1<<44)
	eng, err := NewEngine(initial, ecfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	wcfg.Seed = seed + 1
	wl, err := NewWorkload(eng, initial, wcfg)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	return &scenario{k: k, h: h, eng: eng, wl: wl}
}

func (s *scenario) run() {
	s.eng.Start()
	s.wl.Start()
	s.k.Run()
}

// faultyDriftScenario is the workhorse: a corrupted-insert burst early, a
// cluster-drift phase with hard negatives after, sized to provoke at least
// one rollback and at least one successful post-scrub swap.
func faultyDriftScenario(t *testing.T, seed int64) *scenario {
	wcfg := WorkloadConfig{
		Ops:          2400,
		Rate:         400,
		ClusterWidth: 1 << 38,
		Phases: []Phase{
			{StartS: 0},
			{StartS: 2.0, Clusters: []uint64{1 << 40, 3 << 41}, HardNegFrac: 0.5},
		},
		Faults: fault.Config{
			Seed: seed,
			Schedule: []fault.Window{
				{Kind: fault.KindCorrupt, StartS: 0.4, EndS: 1.2, Prob: 0.2},
			},
		},
	}
	return newScenario(t, seed, 2500, wcfg, Config{})
}

func TestConfigValidation(t *testing.T) {
	var ce *ConfigError
	if _, err := NewEngine([]uint64{1, 2, 3}, Config{}); !errors.As(err, &ce) || ce.Field != "Kernel" {
		t.Fatalf("missing kernel: got %v", err)
	}
	k := sim.New()
	if _, err := NewEngine(nil, Config{Kernel: k}); !errors.As(err, &ce) {
		t.Fatalf("empty keys: got %v", err)
	}
	if _, err := NewEngine([]uint64{1}, Config{Kernel: k, TargetFPR: 1.5}); !errors.As(err, &ce) || ce.Field != "TargetFPR" {
		t.Fatalf("bad TargetFPR: got %v", err)
	}
	if _, err := NewEngine([]uint64{1}, Config{Kernel: k, FPRTriggerFactor: 0.5}); !errors.As(err, &ce) {
		t.Fatalf("bad FPRTriggerFactor: got %v", err)
	}
	eng := must(NewEngine([]uint64{1, 2, 3}, Config{Kernel: k}))
	if _, err := NewWorkload(eng, nil, WorkloadConfig{}); !errors.As(err, &ce) || ce.Field != "Ops" {
		t.Fatalf("zero Ops: got %v", err)
	}
}

// Two runs of the same seeded scenario must agree bit for bit: kernel
// execution log, maintenance ledger, metrics registry, and both stats
// structs — the replay contract every X11 cell asserts.
func TestDeterministicReplay(t *testing.T) {
	type prints struct {
		kernel, ledger, reg uint64
		stats               Stats
		wl                  WorkloadStats
	}
	runOnce := func() prints {
		s := faultyDriftScenario(t, 11)
		s.run()
		return prints{
			kernel: s.k.Fingerprint(),
			ledger: s.eng.Ledger().Fingerprint(),
			reg:    s.h.Reg.Fingerprint(),
			stats:  s.eng.Stats(),
			wl:     s.wl.Stats(),
		}
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("replay diverged:\n  run1=%+v\n  run2=%+v", a, b)
	}
	if a.kernel == 0 || a.ledger == 0 {
		t.Fatalf("degenerate fingerprints: %+v", a)
	}
}

// The robustness arc end to end: corrupted inserts poison the delta buffer,
// the first retrain's candidate fails schema validation and rolls back,
// the scrub quarantines exactly the fence violators, and once the burst is
// over a later retrain swaps cleanly and the learned tier serves again.
func TestCorruptedInsertRollbackAndRecovery(t *testing.T) {
	s := faultyDriftScenario(t, 11)
	s.run()
	st := s.eng.Stats()
	ws := s.wl.Stats()

	if ws.CorruptedSent == 0 {
		t.Fatalf("fault schedule injected nothing")
	}
	if ws.Mismatches != 0 {
		t.Fatalf("%d oracle mismatches — acked writes were lost or wrong answers served", ws.Mismatches)
	}
	if st.Rollbacks == 0 {
		t.Fatalf("corrupted candidate was never rolled back: %+v", st)
	}
	if r, ok := s.eng.Ledger().First(EvRollback, ""); !ok || r.Reason != "schema: values outside schema range" {
		t.Fatalf("first rollback reason = %v", r)
	}
	if st.Quarantined == 0 || st.Quarantined != s.eng.QuarantineLen() {
		t.Fatalf("quarantine bookkeeping: stats=%d live=%d", st.Quarantined, s.eng.QuarantineLen())
	}
	if st.Quarantined > ws.CorruptedSent {
		t.Fatalf("quarantined %d > corrupted sent %d", st.Quarantined, ws.CorruptedSent)
	}
	if st.Swaps == 0 {
		t.Fatalf("no post-scrub retrain ever validated: %+v", st)
	}
	// The swap must come after the rollback: recovery, not luck.
	rb := must2(s.eng.Ledger().First(EvRollback, ""))
	haveLater := false
	for _, e := range s.eng.Ledger().Entries {
		if e.Kind == EvSwap && e.T > rb.T {
			haveLater = true
		}
	}
	if !haveLater {
		t.Fatalf("no swap after the rollback at t=%.3f", rb.T)
	}
}

// Availability invariant: every query is answered by exactly one ladder
// tier, and in a chaotic run every rung actually serves.
func TestFallbackLadderCoverageAndAvailability(t *testing.T) {
	s := faultyDriftScenario(t, 11)
	s.run()
	st := s.eng.Stats()

	if got, want := st.ServedTotal(), st.Queries(); got != want {
		t.Fatalf("availability hole: served %d of %d queries", got, want)
	}
	for _, tier := range []Tier{TierLearned, TierDelta, TierBTree} {
		if st.TierServed[tier] == 0 {
			t.Fatalf("tier %v never served: %+v", tier, st.TierServed)
		}
	}
	// The scan rung is reachable deterministically: probe a quarantined key.
	if s.eng.QuarantineLen() == 0 {
		t.Fatalf("no quarantined keys to probe")
	}
	found, tier := s.eng.Lookup(s.eng.quarantine[0])
	if !found || tier != TierScan {
		t.Fatalf("quarantined key: found=%v tier=%v, want true/scan", found, tier)
	}
}

// Satellite 3 (engine half): under hard-negative drift the maintenance
// actor must trip the bloom-fpr trigger after the measured FPR crosses
// FPRTriggerFactor·target but before it reaches 2·target.
func TestFPRTriggerFiresBeforeDoubleTarget(t *testing.T) {
	// Clustered keys give the bloom classifier structure to learn — and
	// hard negatives (one off a present key, inside a dense span) the means
	// to break it. The workload's uniform absent probes are capped at the
	// max present key so they match the filter's training negatives; the
	// drift phase then shifts absent traffic toward hard negatives.
	k := sim.New()
	h := obs.NewHandle()
	initial := learned.ClusteredKeys(rand.New(rand.NewSource(5)), 2500, 4, 1<<44)
	eng := must(NewEngine(initial, Config{
		Seed:          5,
		Kernel:        k,
		Obs:           h,
		TargetFPR:     0.05,
		MaintainEvery: 0.05, // tight monitoring so the trigger fires near the crossing
		MinFPRProbes:  350,  // arm only once the cumulative estimate has settled
	}))
	wl := must(NewWorkload(eng, initial, WorkloadConfig{
		Seed:       6,
		Ops:        2600,
		Rate:       400,
		InsertFrac: -1, // lookup-only: isolate the FPR trigger
		RangeFrac:  -1,
		AbsentFrac: 0.4,
		Space:      initial[len(initial)-1],
		Phases: []Phase{
			{StartS: 0},
			{StartS: 2.2, HardNegFrac: 0.6}, // drift begins after the trigger arms
		},
	}))
	s := &scenario{k: k, h: h, eng: eng, wl: wl}
	s.run()

	e, ok := s.eng.Ledger().First(EvRetrainStart, "bloom-fpr")
	if !ok {
		t.Fatalf("hard-negative drift never tripped the bloom-fpr trigger; ledger:\n%v", s.eng.Ledger().Entries)
	}
	if e.T < 2.2 {
		t.Fatalf("trigger at t=%.2f predates the drift phase — base-rate false alarm", e.T)
	}
	target := s.eng.cfg.TargetFPR
	if e.Value < s.eng.cfg.FPRTriggerFactor*target {
		t.Fatalf("trigger fired below threshold: fpr=%.4f", e.Value)
	}
	if e.Value >= 2*target {
		t.Fatalf("trigger too late: fpr=%.4f >= 2x target %.4f", e.Value, 2*target)
	}
	if s.wl.Stats().Mismatches != 0 {
		t.Fatalf("mismatches during drift: %d", s.wl.Stats().Mismatches)
	}
}

// Rollback restores the newest CRC-verifiable snapshot of the current
// version; corrupted copies are skipped, stale-version copies are ignored,
// and with nothing restorable the learned tier stays down while the B-tree
// rung keeps answering — then the no-index trigger rebuilds it.
func TestSnapshotCorruptionFallsBackDownTheRing(t *testing.T) {
	k := sim.New()
	keys := uniformKeys(3, 1200, 1<<44)
	eng := must(NewEngine(keys, Config{Kernel: k, Seed: 3}))

	// A second same-version snapshot, then corrupt it: rollback must skip
	// it and restore the older copy.
	eng.takeSnapshot()
	eng.snaps[len(eng.snaps)-1].snap.Payload[3] ^= 0xff
	eng.rollback(k.Now(), "test-corrupt-newest")
	if eng.rmi == nil {
		t.Fatalf("older verifiable snapshot not restored")
	}
	if eng.stats.SnapshotsSkipped != 1 {
		t.Fatalf("SnapshotsSkipped=%d, want 1", eng.stats.SnapshotsSkipped)
	}

	// Stale-version snapshots must never be restored: wrong coefficients
	// for the current array. Corrupt every same-version copy and plant a
	// healthy stale one.
	for i := range eng.snaps {
		// A fresh byte: the copy corrupted above must stay corrupt.
		eng.snaps[i].snap.Payload[5] ^= 0xff
	}
	eng.takeSnapshot() // healthy, but...
	eng.snaps[len(eng.snaps)-1].version = eng.mainVersion - 1
	eng.rollback(k.Now(), "test-corrupt-all")
	if eng.rmi != nil {
		t.Fatalf("restored from a corrupt or stale snapshot")
	}

	// Ladder still answers from the B-tree rung, exactly.
	found, tier := eng.Lookup(keys[7])
	if !found || tier != TierBTree {
		t.Fatalf("btree fallback: found=%v tier=%v", found, tier)
	}
	if found, _ := eng.Lookup(uint64(1)<<43 + 12345); found {
		t.Fatalf("false positive from btree fallback")
	}

	// After cooldown, the no-index trigger rebuilds the learned tier.
	eng.Start()
	k.RunUntil(k.Now() + 5)
	if eng.rmi == nil || eng.State() != StateServing {
		t.Fatalf("no-index retrain did not recover: state=%v", eng.State())
	}
	if _, ok := eng.Ledger().First(EvRetrainStart, "no-index"); !ok {
		t.Fatalf("no-index trigger never ledgered")
	}
	if found, tier := eng.Lookup(keys[7]); !found || tier != TierLearned {
		t.Fatalf("learned tier not back: found=%v tier=%v", found, tier)
	}
	eng.Stop()
	k.Run()
}

// During a retrain window queries degrade to the B-tree rung — correct
// answers, zero unavailability — and inserts land in the pending buffer so
// the frozen candidate set stays stable.
func TestGracefulDegradationDuringRetrain(t *testing.T) {
	k := sim.New()
	keys := uniformKeys(9, 800, 1<<44)
	eng := must(NewEngine(keys, Config{Kernel: k, Seed: 9}))
	eng.startRetrain(k.Now(), "test", 0)

	if eng.State() != StateRetraining {
		t.Fatalf("state=%v", eng.State())
	}
	if found, tier := eng.Lookup(keys[100]); !found || tier != TierBTree {
		t.Fatalf("retrain-window lookup: found=%v tier=%v", found, tier)
	}
	stored := eng.Insert([]uint64{42})
	if len(stored) != 1 || len(eng.pending) != 1 || len(eng.delta) != 0 {
		t.Fatalf("insert during retrain: stored=%v pending=%d delta=%d", stored, len(eng.pending), len(eng.delta))
	}
	if found, tier := eng.Lookup(42); !found || tier != TierDelta {
		t.Fatalf("pending key unserved: found=%v tier=%v", found, tier)
	}
	k.Run() // drains the scheduled finishRetrain
	if eng.State() != StateServing || eng.stats.Swaps != 1 {
		t.Fatalf("clean candidate did not swap: state=%v stats=%+v", eng.State(), eng.stats)
	}
	// The pending key became the new delta and the swapped index serves.
	if found, tier := eng.Lookup(42); !found || tier != TierDelta {
		t.Fatalf("post-swap pending key: found=%v tier=%v", found, tier)
	}
	if found, tier := eng.Lookup(keys[100]); !found || tier != TierLearned {
		t.Fatalf("post-swap lookup: found=%v tier=%v", found, tier)
	}
}

// A phase skewed past the declared window contract: each window-cap
// rollback doubles the cap (ledgered in the entry's Value), so the engine
// converges to a serveable contract instead of rejecting candidates forever
// while the delta buffer grows without bound.
func TestWindowCapEscalatesUntilSkewedCandidateServes(t *testing.T) {
	k := sim.New()
	keys := uniformKeys(21, 2000, 1<<44)
	eng := must(NewEngine(keys, Config{Kernel: k, Seed: 21}))
	cap0 := eng.windowCap

	// A dense, narrow cluster — far under the RMI root's cell width, so the
	// candidate's search window exceeds any small cap no matter the leaves.
	for i := 0; i < 1500; i++ {
		insertSorted(&eng.delta, (1<<40)+uint64(i)*97)
		eng.bt.Insert((1<<40)+uint64(i)*97, 0)
	}
	eng.Start()
	deadline := 0.0
	for eng.stats.Swaps == 0 {
		deadline += 5
		if deadline > 60 {
			t.Fatalf("never swapped; ledger:\n%v", eng.Ledger().Entries)
		}
		k.RunUntil(deadline)
	}
	eng.Stop()
	k.Run()

	rb, ok := eng.Ledger().First(EvRollback, "window-cap")
	if !ok {
		t.Fatalf("skewed candidate never hit the cap; ledger:\n%v", eng.Ledger().Entries)
	}
	if int(rb.Value) != 2*cap0 {
		t.Fatalf("first escalation: cap=%v, want %d", rb.Value, 2*cap0)
	}
	if eng.windowCap <= cap0 {
		t.Fatalf("cap did not escalate: %d <= %d", eng.windowCap, cap0)
	}
	// The installed index honors the (renegotiated) declared contract.
	if eng.declaredWin > eng.windowCap {
		t.Fatalf("declared window %d exceeds cap %d", eng.declaredWin, eng.windowCap)
	}
	if found, tier := eng.Lookup((1 << 40) + 97); !found || tier != TierLearned {
		t.Fatalf("cluster key after swap: found=%v tier=%v", found, tier)
	}
}

// Exact reconciliation: every obs counter equals its Stats mirror, and the
// ledger's event counts equal the maintenance counters — no drift between
// the three books.
func TestCountersReconcileWithStatsAndLedger(t *testing.T) {
	s := faultyDriftScenario(t, 11)
	s.run()
	st := s.eng.Stats()
	led := s.eng.Ledger()

	counters := map[string]int{
		"livedb.lookups":           st.Lookups,
		"livedb.range_scans":       st.RangeScans,
		"livedb.inserts":           st.Stored,
		"livedb.duplicates":        st.Duplicates,
		"livedb.bloom_fp":          st.BloomFP,
		"livedb.bloom_tn":          st.BloomTN,
		"livedb.degraded_probes":   st.DegradedProbes,
		"livedb.window_violations": st.WindowViolations,
		"livedb.retrains":          st.Retrains,
		"livedb.swaps":             st.Swaps,
		"livedb.rollbacks":         st.Rollbacks,
		"livedb.cooldowns":         st.Cooldowns,
		"livedb.quarantined":       st.Quarantined,
		"livedb.drift_flags":       st.DriftFlags,
		"livedb.snapshots":         st.Snapshots,
		"livedb.snapshots_skipped": st.SnapshotsSkipped,
	}
	for _, tier := range []Tier{TierLearned, TierDelta, TierBTree, TierScan} {
		counters["livedb.tier."+tier.String()+".served"] = st.TierServed[tier]
	}
	for name, want := range counters {
		if got := s.h.Counter(name).Value(); got != int64(want) {
			t.Errorf("%s: counter=%d stats=%d", name, got, want)
		}
	}
	if led.Count(EvRetrainStart) != st.Retrains || led.Count(EvSwap) != st.Swaps ||
		led.Count(EvRollback) != st.Rollbacks || led.Count(EvCooldownEnd) != st.Cooldowns {
		t.Fatalf("ledger counts diverge from stats: %+v vs %+v", led, st)
	}
	if led.SumN(EvRollback) != st.Quarantined {
		t.Fatalf("ledger quarantine total %d != stats %d", led.SumN(EvRollback), st.Quarantined)
	}
}

// The live crossover: after at least one swap, the learned tier's measured
// service time beats the modeled B-tree alternative for the same queries,
// and its resident memory is a fraction of the B-tree's.
func TestLearnedWinReattainedAfterRetrain(t *testing.T) {
	s := faultyDriftScenario(t, 11)
	s.run()
	if s.eng.Stats().Swaps == 0 {
		t.Fatalf("scenario produced no swap")
	}
	// The final swap can land at the tail of the run; drive live probes at
	// the freshly installed index so the post-retrain sample is non-empty.
	if s.eng.State() != StateServing {
		t.Fatalf("engine not serving at end of run: %v", s.eng.State())
	}
	for i := 0; i < len(s.eng.main); i += 37 {
		s.eng.Lookup(s.eng.main[i])
	}
	learnedS, btreeS, n := s.eng.LearnedWin()
	if n == 0 {
		t.Fatalf("no learned-tier lookups since the last swap")
	}
	if learnedS >= btreeS {
		t.Fatalf("learned tier lost the crossover after retrain: %.3g >= %.3g over %d lookups", learnedS, btreeS, n)
	}
	if lm, bm := s.eng.LearnedMemoryBytes(), s.eng.BTreeMemoryBytes(); lm*4 > bm {
		t.Fatalf("learned memory %d not a clear win over btree %d", lm, bm)
	}
}

func must2(e Entry, ok bool) Entry {
	if !ok {
		panic("missing ledger entry")
	}
	return e
}
