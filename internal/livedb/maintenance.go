package livedb

import (
	"dlsys/internal/checkpoint"
	"dlsys/internal/db"
	"dlsys/internal/guard"
	"dlsys/internal/learned"
	"dlsys/internal/tensor"
)

// This file is the maintenance actor: the monitoring tick, the retrain
// state machine (trigger → candidate build → guarded validation → atomic
// swap | rollback), the version-tagged snapshot ring, and the post-rollback
// scrub that moves schema-violating keys into quarantine.

// keySchema infers a guard.BatchSchema from the initial key population.
// Keys are presented as a [n,1] feature tensor; the schema's widened
// [Min, Max] range doubles as the scrub fence — corrupted keys (high bits
// flipped in flight) land far outside it.
func keySchema(keys []uint64, driftSigma float64) *guard.BatchSchema {
	return guard.NewBatchSchema(keysTensor(keys), driftSigma)
}

func keysTensor(keys []uint64) *tensor.Tensor {
	t := tensor.New(len(keys), 1)
	for i, k := range keys {
		t.Data[i] = float64(k)
	}
	return t
}

// tick is one monitoring window: finish any elapsed cooldown, refresh the
// snapshot ring and gauges, then — when serving — check the retrain
// triggers in severity order.
func (e *Engine) tick(now float64) {
	if e.state == StateCooldown && now >= e.cooldownUntil {
		e.state = StateServing
		e.stats.Cooldowns++
		e.h.Counter("livedb.cooldowns").Inc()
		e.ledger.add(Entry{T: now, Kind: EvCooldownEnd, Reason: "elapsed"})
	}
	e.ticks++
	if e.state == StateServing && e.rmi != nil && e.ticks%e.cfg.SnapshotEvery == 0 {
		// Re-snapshot the active index periodically so the ring holds
		// several same-version copies — CRC corruption of one snapshot then
		// degrades to an older copy instead of to the B-tree-only ladder.
		e.takeSnapshot()
	}

	deltaFrac := float64(len(e.delta)+len(e.pending)) / float64(len(e.main))
	e.h.Gauge("livedb.delta_fraction").Set(deltaFrac)
	fpr, probes := e.liveFPR()
	e.h.Gauge("livedb.live_fpr").Set(fpr)
	e.h.Gauge("livedb.learned_memory_bytes").Set(float64(e.LearnedMemoryBytes()))

	degraded := e.winDegraded
	e.winDegraded = 0

	if e.state != StateServing {
		return
	}
	switch {
	case e.rmi == nil:
		// Cooldown expired with no restorable snapshot: rebuild from live
		// data — the ladder has been serving from the B-tree rung.
		e.startRetrain(now, "no-index", 0)
	case float64(len(e.delta)) >= e.cfg.RebuildFraction*float64(len(e.main))+1:
		e.startRetrain(now, "delta-fraction", deltaFrac)
	case probes >= e.cfg.MinFPRProbes && fpr >= e.cfg.FPRTriggerFactor*e.cfg.TargetFPR:
		e.startRetrain(now, "bloom-fpr", fpr)
	case degraded > 0:
		e.startRetrain(now, "degraded-probe", float64(degraded))
	}
}

// liveFPR is the measured false-positive rate of the active bloom filter
// over the negative probes observed since it was built.
func (e *Engine) liveFPR() (fpr float64, probes int) {
	probes = e.cumFP + e.cumTN
	if probes == 0 {
		return 0, 0
	}
	return float64(e.cumFP) / float64(probes), probes
}

// startRetrain freezes main ∪ delta as the candidate's key set and moves to
// StateRetraining; inserts arriving during the build go to the pending
// buffer so the frozen set (and hence validation) stays stable. Point
// queries degrade to the B-tree rung until the swap or rollback.
func (e *Engine) startRetrain(now float64, reason string, value float64) {
	e.state = StateRetraining
	e.frozen = mergeSorted(e.main, e.delta)
	e.stats.Retrains++
	e.h.Counter("livedb.retrains").Inc()
	e.ledger.add(Entry{T: now, Kind: EvRetrainStart, Reason: reason, N: len(e.frozen), Value: value})
	e.k.Actor("livedb-maint").After(e.cfg.RetrainS, e.finishRetrain)
}

// finishRetrain builds the candidate index over the frozen key set and
// validates it end to end before the swap: the guard schema over the keys
// (corrupted inserts put outliers in the frozen set), the search-window
// cap, and a held-out probe sweep. Any failure rolls back.
func (e *Engine) finishRetrain(now float64) {
	cand, err := learned.BuildRMI(e.frozen, e.cfg.Leaves)
	if err != nil {
		// Unreachable: frozen ⊇ the non-empty initial set and Leaves is
		// validated positive — but a rollback is the safe answer regardless.
		e.rollback(now, "build: "+err.Error())
		return
	}
	reason, ok, drifted := e.schema.Check(keysTensor(e.frozen))
	if !ok {
		e.rollback(now, "schema: "+reason)
		return
	}
	if w := cand.MaxSearchWindow(); w > e.windowCap {
		e.rollback(now, "window-cap")
		return
	}
	for i := 0; i < len(e.frozen); i += 17 {
		if _, found, _, deg := cand.Probe(e.frozen, e.frozen[i]); !found || deg {
			e.rollback(now, "heldout-probe")
			return
		}
	}
	if drifted {
		// The candidate is healthy but its key distribution has shifted from
		// the reference — flag it for operators, serve it anyway.
		e.stats.DriftFlags++
		e.h.Counter("livedb.drift_flags").Inc()
	}
	e.swap(now, cand)
}

// swap atomically installs the validated candidate: the frozen set becomes
// the model-indexed array, pending inserts become the new delta, the bloom
// filter is rebuilt over the new main, and the crossover/FPR accumulators
// restart so post-retrain wins are measured live, not inherited.
func (e *Engine) swap(now float64, cand *learned.RMI) {
	e.main = e.frozen
	e.frozen = nil
	e.mainVersion++
	e.rmi = cand
	e.declaredWin = cand.MaxSearchWindow()
	e.delta = e.pending
	e.pending = nil
	// Re-derive the window cap from the installed index, mirroring
	// NewEngine: escalations forced by a skewed phase decay back once a
	// candidate with a tight window swaps in.
	e.windowCap = 4 * e.declaredWin
	if e.windowCap < 64 {
		e.windowCap = 64
	}
	e.lb = e.buildBloom(e.main)
	e.cumFP, e.cumTN = 0, 0
	e.learnedServeS, e.btreeAltS, e.learnedSince = 0, 0, 0
	e.takeSnapshot()
	e.state = StateServing
	e.stats.Swaps++
	e.h.Counter("livedb.swaps").Inc()
	e.ledger.add(Entry{T: now, Kind: EvSwap, Reason: "validated", N: len(e.main), Value: float64(e.declaredWin)})
}

// rollback rejects the candidate: restore the newest CRC-verifiable
// snapshot of the *current* main's index (version-matched — an older
// version's coefficients would disagree with the array), scrub the buffers
// against the schema fence, rebuild the B-tree without the quarantined
// keys, and enter cooldown. With no restorable snapshot the learned tier
// stays down and the B-tree rung keeps serving — degraded, never dark.
func (e *Engine) rollback(now float64, reason string) {
	e.rmi = nil
	skipped := 0
	for i := len(e.snaps) - 1; i >= 0; i-- {
		vs := e.snaps[i]
		if vs.version != e.mainVersion {
			continue
		}
		restored, err := restoreRMI(vs.snap)
		if err != nil {
			skipped++
			e.stats.SnapshotsSkipped++
			e.h.Counter("livedb.snapshots_skipped").Inc()
			continue
		}
		e.rmi = restored
		e.declaredWin = restored.MaxSearchWindow()
		break
	}

	// A window-cap rejection means the live distribution is genuinely more
	// skewed than the declared contract allows. Retrying at the same cap
	// would reject forever while the delta buffer grows without bound, so
	// the cap escalates — doubled, bounded by the key count, and recorded in
	// the rollback entry's Value so the renegotiation is auditable. The next
	// clean swap re-derives a tight cap from the index it installs.
	rollbackValue := float64(skipped)
	if reason == "window-cap" {
		e.windowCap *= 2
		if e.windowCap > len(e.main) {
			e.windowCap = len(e.main)
		}
		rollbackValue = float64(e.windowCap)
	}

	// Scrub: acked inserts stay queryable — clean ones return to the delta
	// buffer, fence violators move to the quarantine rung.
	merged := mergeSorted(e.delta, e.pending)
	clean := merged[:0]
	var quarantined []uint64
	for _, k := range merged {
		if f := float64(k); f < e.schema.Min || f > e.schema.Max {
			quarantined = append(quarantined, k)
		} else {
			clean = append(clean, k)
		}
	}
	e.delta = clean
	e.pending = nil
	e.frozen = nil
	if len(quarantined) > 0 {
		e.quarantine = mergeSorted(e.quarantine, quarantined)
		e.stats.Quarantined += len(quarantined)
		e.h.Counter("livedb.quarantined").Add(int64(len(quarantined)))
	}
	e.bt = db.BulkLoadBTree(mergeSorted(e.main, e.delta))

	e.stats.Rollbacks++
	e.h.Counter("livedb.rollbacks").Inc()
	e.ledger.add(Entry{T: now, Kind: EvRollback, Reason: reason, N: len(quarantined), Value: rollbackValue})
	e.state = StateCooldown
	e.cooldownUntil = now + e.cfg.CooldownS
}

// takeSnapshot CRCs the active index's coefficient vector into the ring,
// tagged with the main array version it belongs to.
func (e *Engine) takeSnapshot() {
	s := checkpoint.SnapshotVector(e.ticks, e.rmi.Coeffs())
	e.snaps = append(e.snaps, versionedSnap{version: e.mainVersion, snap: s})
	if len(e.snaps) > e.cfg.Snapshots {
		e.snaps = e.snaps[len(e.snaps)-e.cfg.Snapshots:]
	}
	e.stats.Snapshots++
	e.h.Counter("livedb.snapshots").Inc()
}

// restoreRMI verifies a snapshot's CRC and decodes it back into an index.
func restoreRMI(s checkpoint.Snapshot) (*learned.RMI, error) {
	coeffs, err := s.Params()
	if err != nil {
		return nil, err
	}
	return learned.RMIFromCoeffs(coeffs)
}
