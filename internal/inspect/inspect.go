// Package inspect implements a DeepBase-style declarative interface for
// testing hypotheses about trained models (Part 3.2, Sellam et al.):
// instead of writing bespoke analysis loops, the user states WHICH units
// and WHAT property ("correlates with the label", "is dead", "is redundant
// with another unit") and the engine verifies the hypothesis against
// recorded activations.
package inspect

import (
	"fmt"
	"math"
	"sort"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Activations captures a network's per-layer hidden activations on a probe
// set, the substrate queries run against.
type Activations struct {
	layers map[string]*tensor.Tensor // layer name → [examples, units]
	order  []string
}

// Record runs x through the network in inference mode and captures the
// output of every ReLU/Tanh/Sigmoid activation layer by name.
func Record(net *nn.Network, x *tensor.Tensor) *Activations {
	a := &Activations{layers: map[string]*tensor.Tensor{}}
	h := x
	for _, l := range net.Layers {
		h = l.Forward(h, false)
		switch l.(type) {
		case *nn.ReLU, *nn.Tanh, *nn.Sigmoid:
			a.layers[l.Name()] = h
			a.order = append(a.order, l.Name())
		}
	}
	return a
}

// Layers lists recorded layer names in network order.
func (a *Activations) Layers() []string { return a.order }

// Layer returns a recorded layer's activations.
func (a *Activations) Layer(name string) (*tensor.Tensor, error) {
	t, ok := a.layers[name]
	if !ok {
		return nil, fmt.Errorf("inspect: no recorded layer %q", name)
	}
	return t, nil
}

// UnitResult is one unit's hypothesis score.
type UnitResult struct {
	Layer string
	Unit  int
	Score float64
}

// CorrelatesWith finds units whose activation correlates (in absolute
// Pearson value) with the given per-example signal at least minAbsCorr —
// the "which neurons encode X" hypothesis. Results are sorted by |score|
// descending.
func (a *Activations) CorrelatesWith(layer string, signal []float64, minAbsCorr float64) ([]UnitResult, error) {
	t, err := a.Layer(layer)
	if err != nil {
		return nil, err
	}
	if t.Dim(0) != len(signal) {
		return nil, fmt.Errorf("inspect: signal length %d != %d examples", len(signal), t.Dim(0))
	}
	var out []UnitResult
	for u := 0; u < t.Dim(1); u++ {
		c := pearsonColumn(t, u, signal)
		if math.Abs(c) >= minAbsCorr {
			out = append(out, UnitResult{Layer: layer, Unit: u, Score: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return math.Abs(out[i].Score) > math.Abs(out[j].Score) })
	return out, nil
}

// DeadUnits finds units whose activation is (near-)zero on every probe
// example — wasted capacity the pruning literature removes.
func (a *Activations) DeadUnits(layer string, eps float64) ([]UnitResult, error) {
	t, err := a.Layer(layer)
	if err != nil {
		return nil, err
	}
	var out []UnitResult
	for u := 0; u < t.Dim(1); u++ {
		maxAbs := 0.0
		for i := 0; i < t.Dim(0); i++ {
			if v := math.Abs(t.At(i, u)); v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs <= eps {
			out = append(out, UnitResult{Layer: layer, Unit: u, Score: maxAbs})
		}
	}
	return out, nil
}

// PairResult is a redundancy finding between two units.
type PairResult struct {
	Layer string
	UnitA int
	UnitB int
	Corr  float64
}

// RedundantPairs finds unit pairs within a layer whose activations
// correlate above the threshold — the redundancy hypothesis behind
// structured pruning. Results sorted by |corr| descending.
func (a *Activations) RedundantPairs(layer string, minAbsCorr float64) ([]PairResult, error) {
	t, err := a.Layer(layer)
	if err != nil {
		return nil, err
	}
	units := t.Dim(1)
	cols := make([][]float64, units)
	for u := 0; u < units; u++ {
		cols[u] = make([]float64, t.Dim(0))
		for i := 0; i < t.Dim(0); i++ {
			cols[u][i] = t.At(i, u)
		}
	}
	var out []PairResult
	for i := 0; i < units; i++ {
		for j := i + 1; j < units; j++ {
			c := pearson(cols[i], cols[j])
			if math.Abs(c) >= minAbsCorr {
				out = append(out, PairResult{Layer: layer, UnitA: i, UnitB: j, Corr: c})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return math.Abs(out[i].Corr) > math.Abs(out[j].Corr) })
	return out, nil
}

// LabelSignal converts integer labels to a ±-coded signal for a chosen
// class (1 for the class, 0 otherwise).
func LabelSignal(labels []int, class int) []float64 {
	out := make([]float64, len(labels))
	for i, l := range labels {
		if l == class {
			out[i] = 1
		}
	}
	return out
}

func pearsonColumn(t *tensor.Tensor, u int, signal []float64) float64 {
	col := make([]float64, t.Dim(0))
	for i := range col {
		col[i] = t.At(i, u)
	}
	return pearson(col, signal)
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
