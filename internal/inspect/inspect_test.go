package inspect

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

func trainedNet(t *testing.T) (*nn.Network, *data.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := data.GaussianMixture(rng, 400, 6, 3, 4)
	net := nn.NewMLP(rng, nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(ds.X, nn.OneHot(ds.Labels, 3), nn.TrainConfig{Epochs: 25, BatchSize: 32})
	return net, ds
}

func TestRecordCapturesActivationLayers(t *testing.T) {
	net, ds := trainedNet(t)
	a := Record(net, ds.X)
	if len(a.Layers()) != 1 || a.Layers()[0] != "relu0" {
		t.Fatalf("recorded layers %v", a.Layers())
	}
	act, err := a.Layer("relu0")
	if err != nil {
		t.Fatal(err)
	}
	if act.Dim(0) != ds.N() || act.Dim(1) != 24 {
		t.Fatalf("activation shape %v", act.Shape())
	}
	if _, err := a.Layer("nope"); err == nil {
		t.Fatal("expected error for unknown layer")
	}
}

func TestCorrelatesWithFindsClassUnits(t *testing.T) {
	net, ds := trainedNet(t)
	a := Record(net, ds.X)
	signal := LabelSignal(ds.Labels, 0)
	hits, err := a.CorrelatesWith("relu0", signal, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// A well-trained network must have units that encode class membership.
	if len(hits) == 0 {
		t.Fatal("no class-correlated units found")
	}
	// Sorted by |score| descending, all above threshold.
	for i, h := range hits {
		if math.Abs(h.Score) < 0.5 {
			t.Fatalf("hit below threshold: %+v", h)
		}
		if i > 0 && math.Abs(h.Score) > math.Abs(hits[i-1].Score) {
			t.Fatal("results not sorted")
		}
	}
}

func TestCorrelatesWithSignalLengthMismatch(t *testing.T) {
	net, ds := trainedNet(t)
	a := Record(net, ds.X)
	if _, err := a.CorrelatesWith("relu0", []float64{1, 2}, 0.1); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestDeadUnitsDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Force some dead ReLU units by zeroing their incoming weights and
	// setting a negative bias.
	net := nn.NewMLP(rng, nn.MLPConfig{In: 4, Hidden: []int{8}, Out: 2})
	d := net.Layers[0].(*nn.Dense)
	for _, u := range []int{2, 5} {
		for i := 0; i < d.In(); i++ {
			d.W.Value.Data[i*d.Out()+u] = 0
		}
		d.B.Value.Data[u] = -1
	}
	x := tensor.RandNormal(rng, 0, 1, 64, 4)
	a := Record(net, x)
	dead, err := a.DeadUnits("relu0", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, u := range dead {
		found[u.Unit] = true
	}
	if !found[2] || !found[5] {
		t.Fatalf("dead units not detected: %v", dead)
	}
}

func TestRedundantPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Duplicate a unit's weights: its twin must show up as redundant.
	net := nn.NewMLP(rng, nn.MLPConfig{In: 4, Hidden: []int{8}, Out: 2})
	d := net.Layers[0].(*nn.Dense)
	for i := 0; i < d.In(); i++ {
		d.W.Value.Data[i*d.Out()+1] = d.W.Value.Data[i*d.Out()+0]
	}
	d.B.Value.Data[1] = d.B.Value.Data[0]
	x := tensor.RandNormal(rng, 0, 1, 128, 4)
	a := Record(net, x)
	pairs, err := a.RedundantPairs("relu0", 0.999)
	if err != nil {
		t.Fatal(err)
	}
	foundTwin := false
	for _, p := range pairs {
		if p.UnitA == 0 && p.UnitB == 1 {
			foundTwin = true
		}
	}
	if !foundTwin {
		t.Fatalf("duplicated unit pair not found: %v", pairs)
	}
}

func TestPearsonBasics(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if c := pearson(a, a); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self correlation %g", c)
	}
	b := []float64{4, 3, 2, 1}
	if c := pearson(a, b); math.Abs(c+1) > 1e-12 {
		t.Fatalf("anti correlation %g", c)
	}
	if c := pearson(a, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("constant signal correlation %g", c)
	}
}
