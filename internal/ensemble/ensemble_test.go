package ensemble

import (
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
)

func ensembleDataset(seed int64) (train, test *data.Dataset) {
	rng := rand.New(rand.NewSource(seed))
	ds := data.GaussianMixture(rng, 800, 6, 4, 2.5)
	return ds.Split(rng, 0.8)
}

var testCfg = TrainConfig{
	K:         3,
	Arch:      nn.MLPConfig{In: 6, Hidden: []int{24, 24}, Out: 4},
	Epochs:    24,
	BatchSize: 32,
	LR:        0.01,
}

func TestIndependentEnsembleBeatsSingleMember(t *testing.T) {
	train, test := ensembleDataset(1)
	y := nn.OneHot(train.Labels, 4)
	res := TrainIndependent(10, train.X, y, testCfg)
	ens := res.Committee.(*Ensemble)
	if len(ens.Members) != 3 {
		t.Fatalf("got %d members", len(ens.Members))
	}
	ensAcc := Accuracy(res.Committee, test.X, test.Labels)
	memberAcc := ens.Members[0].Accuracy(test.X, test.Labels)
	if ensAcc < memberAcc-0.02 {
		t.Fatalf("ensemble %.3f below single member %.3f", ensAcc, memberAcc)
	}
	if ensAcc < 0.7 {
		t.Fatalf("ensemble accuracy %.3f too low", ensAcc)
	}
}

func TestSnapshotCheaperThanIndependent(t *testing.T) {
	train, test := ensembleDataset(2)
	y := nn.OneHot(train.Labels, 4)
	ind := TrainIndependent(20, train.X, y, testCfg)
	snap := TrainSnapshot(21, train.X, y, testCfg)
	if snap.FLOPs >= ind.FLOPs {
		t.Fatalf("snapshot FLOPs %d should undercut independent %d", snap.FLOPs, ind.FLOPs)
	}
	// Roughly K× cheaper.
	if snap.FLOPs > ind.FLOPs/2 {
		t.Fatalf("snapshot not much cheaper: %d vs %d", snap.FLOPs, ind.FLOPs)
	}
	if acc := Accuracy(snap.Committee, test.X, test.Labels); acc < 0.65 {
		t.Fatalf("snapshot accuracy %.3f too low", acc)
	}
	if got := len(snap.Committee.(*Ensemble).Members); got != testCfg.K {
		t.Fatalf("snapshot count %d != K", got)
	}
}

func TestSnapshotMembersDiffer(t *testing.T) {
	train, _ := ensembleDataset(3)
	y := nn.OneHot(train.Labels, 4)
	snap := TrainSnapshot(30, train.X, y, testCfg)
	ms := snap.Committee.(*Ensemble).Members
	v0 := ms[0].ParamVector()
	v1 := ms[1].ParamVector()
	same := true
	for i := range v0 {
		if v0[i] != v1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("snapshots should differ across cycles")
	}
}

func TestFGEProducesAccurateCheapEnsemble(t *testing.T) {
	train, test := ensembleDataset(4)
	y := nn.OneHot(train.Labels, 4)
	ind := TrainIndependent(40, train.X, y, testCfg)
	fge := TrainFGE(41, train.X, y, testCfg)
	if fge.FLOPs >= ind.FLOPs {
		t.Fatalf("FGE FLOPs %d should undercut independent %d", fge.FLOPs, ind.FLOPs)
	}
	if acc := Accuracy(fge.Committee, test.X, test.Labels); acc < 0.65 {
		t.Fatalf("FGE accuracy %.3f too low", acc)
	}
}

func TestTreeNetSharesTrunkParams(t *testing.T) {
	train, test := ensembleDataset(5)
	y := nn.OneHot(train.Labels, 4)
	res := TrainTreeNet(50, train.X, y, testCfg)
	tnet := res.Committee.(*TreeNet)

	// Shared trunk: fewer parameters than K independent networks.
	single := nn.NewMLP(rand.New(rand.NewSource(1)), testCfg.Arch)
	if tnet.NumParams() >= testCfg.K*single.NumParams() {
		t.Fatalf("TreeNet params %d not below %d", tnet.NumParams(), testCfg.K*single.NumParams())
	}
	// Cheaper inference than K forwards.
	if tnet.InferenceFLOPs(1) >= int64(testCfg.K)*single.FLOPs(1) {
		t.Fatal("TreeNet inference not cheaper")
	}
	if acc := Accuracy(res.Committee, test.X, test.Labels); acc < 0.65 {
		t.Fatalf("TreeNet accuracy %.3f too low", acc)
	}
}

func TestMotherArchElementwiseMin(t *testing.T) {
	members := []nn.MLPConfig{
		{In: 6, Hidden: []int{32, 16}, Out: 4},
		{In: 6, Hidden: []int{16, 24}, Out: 4},
		{In: 6, Hidden: []int{24, 32}, Out: 4},
	}
	m := MotherArch(members)
	if m.Hidden[0] != 16 || m.Hidden[1] != 16 {
		t.Fatalf("mother hidden %v, want [16 16]", m.Hidden)
	}
}

func TestMotherArchMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MotherArch([]nn.MLPConfig{
		{In: 6, Hidden: []int{32}, Out: 4},
		{In: 6, Hidden: []int{32, 16}, Out: 4},
	})
}

func TestHatchPreservesMotherFunctionApproximately(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	train, _ := ensembleDataset(6)
	motherCfg := nn.MLPConfig{In: 6, Hidden: []int{16, 16}, Out: 4}
	mother := nn.NewMLP(rng, motherCfg)
	tr := nn.NewTrainer(mother, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(train.X, nn.OneHot(train.Labels, 4), nn.TrainConfig{Epochs: 15, BatchSize: 32})

	member := Hatch(rng, mother, nn.MLPConfig{In: 6, Hidden: []int{32, 32}, Out: 4})
	// The hatched member should start much closer to the mother than a
	// random network of the same architecture.
	random := nn.NewMLP(rand.New(rand.NewSource(61)), nn.MLPConfig{In: 6, Hidden: []int{32, 32}, Out: 4})
	x := train.X
	disagree := func(n *nn.Network) float64 {
		pm := mother.Predict(x)
		pn := n.Predict(x)
		d := 0
		for i := range pm {
			if pm[i] != pn[i] {
				d++
			}
		}
		return float64(d) / float64(len(pm))
	}
	if disagree(member) >= disagree(random) {
		t.Fatalf("hatched member (%.3f disagreement) should be closer to mother than random (%.3f)",
			disagree(member), disagree(random))
	}
}

func TestMotherNetsCheaperThanIndependentHeterogeneous(t *testing.T) {
	train, test := ensembleDataset(7)
	y := nn.OneHot(train.Labels, 4)
	members := []nn.MLPConfig{
		{In: 6, Hidden: []int{24, 24}, Out: 4},
		{In: 6, Hidden: []int{32, 24}, Out: 4},
		{In: 6, Hidden: []int{24, 32}, Out: 4},
	}
	mres := TrainMotherNets(70, train.X, y, MotherNetsConfig{
		Members: members, MotherEpochs: 12, FineTuneEpochs: 4, BatchSize: 32, LR: 0.01,
	})
	// Independent baseline trains each member for the full budget.
	var indFLOPs int64
	for k, arch := range members {
		cfg := testCfg
		cfg.Arch = arch
		cfg.K = 1
		r := TrainIndependent(int64(71+k), train.X, y, cfg)
		indFLOPs += r.FLOPs
	}
	if mres.FLOPs >= indFLOPs {
		t.Fatalf("MotherNets FLOPs %d should undercut independent %d", mres.FLOPs, indFLOPs)
	}
	if acc := Accuracy(mres.Committee, test.X, test.Labels); acc < 0.65 {
		t.Fatalf("MotherNets accuracy %.3f too low", acc)
	}
}

func TestCommitteeProbsAreDistributions(t *testing.T) {
	train, _ := ensembleDataset(8)
	y := nn.OneHot(train.Labels, 4)
	cfg := testCfg
	cfg.Epochs = 6
	res := TrainIndependent(80, train.X, y, cfg)
	probs := res.Committee.PredictProbs(train.X)
	for i := 0; i < probs.Dim(0); i++ {
		var s float64
		for _, v := range probs.Row(i) {
			if v < 0 || v > 1 {
				t.Fatal("probability out of range")
			}
			s += v
		}
		if s < 0.999 || s > 1.001 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
}
