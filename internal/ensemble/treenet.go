package ensemble

import (
	"math/rand"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// TreeNet is a weight-shared ensemble: a common trunk feeding K independent
// branch heads. Training runs every batch through the trunk once, through
// each branch separately, and sums the branch gradients at the trunk — the
// structure TreeNets exploits to amortise training and deployment cost
// across members.
type TreeNet struct {
	Trunk    []nn.Layer
	Branches [][]nn.Layer
}

// NewTreeNet builds a TreeNet over an MLP architecture: the trunk is the
// first hidden block, and each branch replicates the remaining hidden
// layers plus its own output head.
func NewTreeNet(rng *rand.Rand, k int, arch nn.MLPConfig) *TreeNet {
	if len(arch.Hidden) == 0 {
		panic("ensemble: TreeNet needs at least one hidden layer")
	}
	t := &TreeNet{}
	t.Trunk = []nn.Layer{
		nn.NewDense(rng, "trunk.fc", arch.In, arch.Hidden[0]),
		nn.NewReLU("trunk.relu"),
	}
	for b := 0; b < k; b++ {
		var branch []nn.Layer
		prev := arch.Hidden[0]
		for i, h := range arch.Hidden[1:] {
			branch = append(branch,
				nn.NewDense(rng, branchName(b, i, "fc"), prev, h),
				nn.NewReLU(branchName(b, i, "relu")))
			prev = h
		}
		branch = append(branch, nn.NewDense(rng, branchName(b, len(arch.Hidden)-1, "out"), prev, arch.Out))
		t.Branches = append(t.Branches, branch)
	}
	return t
}

func branchName(b, i int, kind string) string {
	return "branch" + string(rune('0'+b)) + "." + kind + string(rune('0'+i))
}

// forwardTrunk runs the trunk; train toggles caching.
func (t *TreeNet) forwardTrunk(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range t.Trunk {
		x = l.Forward(x, train)
	}
	return x
}

func forwardLayers(layers []nn.Layer, x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range layers {
		x = l.Forward(x, train)
	}
	return x
}

func backwardLayers(layers []nn.Layer, dout *tensor.Tensor) *tensor.Tensor {
	for i := len(layers) - 1; i >= 0; i-- {
		dout = layers[i].Backward(dout)
	}
	return dout
}

// PredictProbs implements Committee.
func (t *TreeNet) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	h := t.forwardTrunk(x, false)
	probs := nn.Softmax(forwardLayers(t.Branches[0], h, false))
	for _, br := range t.Branches[1:] {
		probs.AddInPlace(nn.Softmax(forwardLayers(br, h, false)))
	}
	probs.ScaleInPlace(1 / float64(len(t.Branches)))
	return probs
}

// Params returns all trainable parameters (trunk + all branches).
func (t *TreeNet) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range t.Trunk {
		ps = append(ps, l.Params()...)
	}
	for _, br := range t.Branches {
		for _, l := range br {
			ps = append(ps, l.Params()...)
		}
	}
	return ps
}

// NumParams implements Committee.
func (t *TreeNet) NumParams() int {
	total := 0
	for _, p := range t.Params() {
		total += p.Value.Size()
	}
	return total
}

// InferenceFLOPs implements Committee: the trunk runs once, branches K times.
func (t *TreeNet) InferenceFLOPs(batch int) int64 {
	var total int64
	for _, l := range t.Trunk {
		if fc, ok := l.(nn.FLOPsCounter); ok {
			total += fc.FLOPs(batch)
		}
	}
	for _, br := range t.Branches {
		for _, l := range br {
			if fc, ok := l.(nn.FLOPsCounter); ok {
				total += fc.FLOPs(batch)
			}
		}
	}
	return total
}

// trainFLOPsPerExample mirrors InferenceFLOPs×3 for cost accounting.
func (t *TreeNet) trainFLOPsPerExample() int64 { return 3 * t.InferenceFLOPs(1) }

// TrainTreeNet trains the shared-trunk ensemble jointly: each batch flows
// through the trunk once and every branch computes its own cross-entropy
// against the labels; trunk gradients are the sum of branch gradients.
func TrainTreeNet(seed int64, x, y *tensor.Tensor, cfg TrainConfig) Result {
	rng := rand.New(rand.NewSource(seed))
	t := NewTreeNet(rng, cfg.K, cfg.Arch)
	opt := nn.NewAdam(cfg.LR)
	n := x.Dim(0)
	bs := cfg.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	losses := make([]*nn.SoftmaxCrossEntropy, cfg.K)
	for i := range losses {
		losses[i] = nn.NewSoftmaxCrossEntropy()
	}
	// The K branches share one skeleton, so their forward GEMMs batch into
	// rank-3 BatMul calls (see treenet_batched.go) — bit-identical to the
	// sequential per-branch walk, which remains as the reference path.
	batched := !cfg.SequentialBranches && branchesBatchable(t)
	var res Result
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			bx, by := nn.GatherBatch(x, y, perm[start:end])
			for _, p := range t.Params() {
				p.ZeroGrad()
			}
			if batched {
				t.trainStepBatched(bx, by, losses)
			} else {
				h := t.forwardTrunk(bx, true)
				var dTrunk *tensor.Tensor
				for bi, br := range t.Branches {
					logits := forwardLayers(br, h, true)
					losses[bi].Forward(logits, by)
					dh := backwardLayers(br, losses[bi].Backward())
					if dTrunk == nil {
						dTrunk = dh
					} else {
						dTrunk.AddInPlace(dh)
					}
				}
				backwardLayers(t.Trunk, dTrunk)
			}
			opt.Step(t.Params())
			res.Steps++
			res.FLOPs += t.trainFLOPsPerExample() * int64(end-start)
		}
	}
	res.Committee = t
	return res
}
