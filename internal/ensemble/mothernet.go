package ensemble

import (
	"math/rand"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// MotherNetsConfig controls MotherNets training: a small shared "mother"
// network capturing the structural intersection of the ensemble is trained
// once, hatched into every (possibly heterogeneous) member by weight
// transfer, and each member is fine-tuned briefly.
type MotherNetsConfig struct {
	// Members are the (possibly different) architectures of the ensemble.
	// All must share input width, output width, and depth.
	Members []nn.MLPConfig
	// MotherEpochs trains the shared core; FineTuneEpochs polishes each
	// hatched member. Their sum per member is far below a full training
	// budget — that is the point of the technique.
	MotherEpochs   int
	FineTuneEpochs int
	BatchSize      int
	LR             float64
}

// MotherArch returns the mother architecture: the element-wise minimum of
// the member hidden widths (the largest network structurally contained in
// every member).
func MotherArch(members []nn.MLPConfig) nn.MLPConfig {
	if len(members) == 0 {
		panic("ensemble: no members")
	}
	depth := len(members[0].Hidden)
	mother := nn.MLPConfig{In: members[0].In, Out: members[0].Out, Hidden: make([]int, depth)}
	copy(mother.Hidden, members[0].Hidden)
	for _, m := range members[1:] {
		if len(m.Hidden) != depth || m.In != mother.In || m.Out != mother.Out {
			panic("ensemble: members must share depth, input, and output widths")
		}
		for i, h := range m.Hidden {
			if h < mother.Hidden[i] {
				mother.Hidden[i] = h
			}
		}
	}
	return mother
}

// Hatch transfers the mother's weights into a freshly initialised member
// network: each Dense layer's top-left block is the mother's weight matrix
// and the remaining entries keep their small random initialisation, so the
// member starts close to the mother's function and fine-tunes from there.
func Hatch(rng *rand.Rand, mother *nn.Network, memberArch nn.MLPConfig) *nn.Network {
	member := nn.NewMLP(rng, memberArch)
	// Scale down the fresh init so the copied block dominates initially.
	for _, p := range member.Params() {
		p.Value.ScaleInPlace(0.1)
	}
	md, xd := denseLayers(mother), denseLayers(member)
	if len(md) != len(xd) {
		panic("ensemble: hatch depth mismatch")
	}
	for li := range md {
		mw, xw := md[li].W.Value, xd[li].W.Value
		mIn, mOut := mw.Dim(0), mw.Dim(1)
		for i := 0; i < mIn; i++ {
			for j := 0; j < mOut; j++ {
				xw.Set(mw.At(i, j), i, j)
			}
		}
		mb, xb := md[li].B.Value, xd[li].B.Value
		for j := 0; j < mOut; j++ {
			xb.Set(mb.At(0, j), 0, j)
		}
	}
	return member
}

func denseLayers(n *nn.Network) []*nn.Dense {
	var ds []*nn.Dense
	for _, l := range n.Layers {
		if d, ok := l.(*nn.Dense); ok {
			ds = append(ds, d)
		}
	}
	return ds
}

// TrainMotherNets runs the full MotherNets pipeline and returns the trained
// committee with aggregate cost.
func TrainMotherNets(seed int64, x, y *tensor.Tensor, cfg MotherNetsConfig) Result {
	rng := rand.New(rand.NewSource(seed))
	motherCfg := MotherArch(cfg.Members)
	mother := nn.NewMLP(rng, motherCfg)
	mtr := nn.NewTrainer(mother, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR), rng)
	stats := mtr.Fit(x, y, nn.TrainConfig{Epochs: cfg.MotherEpochs, BatchSize: cfg.BatchSize})

	var res Result
	res.FLOPs += stats.FLOPs
	res.Steps += stats.Steps
	ens := &Ensemble{}
	for k, arch := range cfg.Members {
		krng := rand.New(rand.NewSource(seed + int64(k)*7919))
		member := Hatch(krng, mother, arch)
		tr := nn.NewTrainer(member, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR/2), krng)
		s := tr.Fit(x, y, nn.TrainConfig{Epochs: cfg.FineTuneEpochs, BatchSize: cfg.BatchSize})
		res.FLOPs += s.FLOPs
		res.Steps += s.Steps
		ens.Members = append(ens.Members, member)
	}
	res.Committee = ens
	return res
}
