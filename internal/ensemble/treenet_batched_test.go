package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// TestTreeNetBatchedBitIdentity trains the same TreeNet twice — once
// through the BatMul-fused branch path, once through the sequential
// per-branch reference — and requires every trained parameter to match
// bit for bit. This pins the PR-9 contract (BatMul slice ≡ MatMul) all
// the way through a full training loop: forward fusion, bias broadcast,
// ReLU masks, gradient accumulation order, and the trunk-gradient sum.
func TestTreeNetBatchedBitIdentity(t *testing.T) {
	train, _ := ensembleDataset(5)
	y := nn.OneHot(train.Labels, 4)
	cfg := testCfg
	cfg.K = 4
	cfg.Epochs = 4

	cfg.SequentialBranches = false
	batched := TrainTreeNet(31, train.X, y, cfg)
	cfg.SequentialBranches = true
	sequential := TrainTreeNet(31, train.X, y, cfg)

	if batched.Steps != sequential.Steps || batched.FLOPs != sequential.FLOPs {
		t.Fatalf("accounting diverged: steps %d vs %d, flops %d vs %d",
			batched.Steps, sequential.Steps, batched.FLOPs, sequential.FLOPs)
	}
	bp := batched.Committee.(*TreeNet).Params()
	sp := sequential.Committee.(*TreeNet).Params()
	if len(bp) != len(sp) {
		t.Fatalf("param count %d vs %d", len(bp), len(sp))
	}
	for i := range bp {
		if bp[i].Name != sp[i].Name {
			t.Fatalf("param %d name %q vs %q", i, bp[i].Name, sp[i].Name)
		}
		bd, sd := bp[i].Value.Data, sp[i].Value.Data
		if len(bd) != len(sd) {
			t.Fatalf("%s: size %d vs %d", bp[i].Name, len(bd), len(sd))
		}
		for j := range bd {
			if math.Float64bits(bd[j]) != math.Float64bits(sd[j]) {
				t.Fatalf("%s[%d]: batched %x (%g) != sequential %x (%g)",
					bp[i].Name, j, math.Float64bits(bd[j]), bd[j],
					math.Float64bits(sd[j]), sd[j])
			}
		}
	}
}

// TestTreeNetBatchableGate checks the fallback predicate: one branch,
// mismatched skeletons, or a pruning mask must route training onto the
// sequential path.
func TestTreeNetBatchableGate(t *testing.T) {
	mk := func() *TreeNet {
		return NewTreeNet(rand.New(rand.NewSource(7)), 3, testCfg.Arch)
	}
	if tn := mk(); !branchesBatchable(tn) {
		t.Fatal("uniform NewTreeNet branches reported unbatchable")
	}
	one := mk()
	one.Branches = one.Branches[:1]
	if branchesBatchable(one) {
		t.Fatal("single branch reported batchable (nothing to batch)")
	}
	ragged := mk()
	ragged.Branches[1] = ragged.Branches[1][1:]
	if branchesBatchable(ragged) {
		t.Fatal("ragged branch skeletons reported batchable")
	}
	masked := mk()
	d := masked.Branches[0][0].(*nn.Dense)
	if err := d.SetMask(tensor.Full(1, d.W.Value.Shape()...)); err != nil {
		t.Fatal(err)
	}
	if branchesBatchable(masked) {
		t.Fatal("masked branch weights reported batchable")
	}
}
