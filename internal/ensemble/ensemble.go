// Package ensemble implements the deep-ensemble training strategies from
// Part 1 of the tutorial (§2.1): the train-K-members-from-scratch baseline,
// Snapshot Ensembles (cyclic learning rate, one snapshot per cycle), Fast
// Geometric Ensembles (short high/low cycles around a converged model),
// TreeNets (a shared trunk with K branch heads trained jointly), and
// MotherNets (train a small shared "mother" core once, hatch it into each
// member, then fine-tune briefly). Every trainer reports its total training
// FLOPs so experiments can chart the accuracy-vs-training-cost tradeoff the
// tutorial describes.
package ensemble

import (
	"math/rand"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Committee is anything that produces averaged class probabilities from a
// batch — a list of independent networks or a weight-shared TreeNet.
type Committee interface {
	// PredictProbs returns [batch, classes] averaged probabilities.
	PredictProbs(x *tensor.Tensor) *tensor.Tensor
	// NumParams is the deployed parameter count (shared weights counted
	// once).
	NumParams() int
	// InferenceFLOPs estimates the cost of one averaged prediction pass.
	InferenceFLOPs(batch int) int64
}

// Accuracy measures argmax accuracy of a committee.
func Accuracy(c Committee, x *tensor.Tensor, labels []int) float64 {
	probs := c.PredictProbs(x)
	correct := 0
	for i := range labels {
		if probs.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Ensemble is a committee of independent networks averaging their softmax
// outputs.
type Ensemble struct {
	Members []*nn.Network
}

// PredictProbs implements Committee.
func (e *Ensemble) PredictProbs(x *tensor.Tensor) *tensor.Tensor {
	probs := nn.Softmax(e.Members[0].Forward(x, false))
	for _, m := range e.Members[1:] {
		probs.AddInPlace(nn.Softmax(m.Forward(x, false)))
	}
	probs.ScaleInPlace(1 / float64(len(e.Members)))
	return probs
}

// NumParams implements Committee.
func (e *Ensemble) NumParams() int {
	total := 0
	for _, m := range e.Members {
		total += m.NumParams()
	}
	return total
}

// InferenceFLOPs implements Committee.
func (e *Ensemble) InferenceFLOPs(batch int) int64 {
	var total int64
	for _, m := range e.Members {
		total += m.FLOPs(batch)
	}
	return total
}

// Result bundles a trained committee with its training cost.
type Result struct {
	Committee Committee
	FLOPs     int64 // total training FLOPs
	Steps     int   // total optimizer steps
}

// TrainConfig holds the shared training hyperparameters for all strategies.
type TrainConfig struct {
	K         int // ensemble size
	Arch      nn.MLPConfig
	Epochs    int // epochs for the baseline member (budgets below derive from it)
	BatchSize int
	LR        float64
	// SequentialBranches forces TrainTreeNet onto the per-branch rank-2
	// path instead of the default BatMul-fused one. The two are bit
	// identical (asserted by test); the flag exists so the equivalence is
	// checkable and the reference path stays exercised.
	SequentialBranches bool
}

// TrainIndependent trains K members from scratch with different random
// initialisations — the accuracy ceiling and the cost ceiling.
func TrainIndependent(seed int64, x, y *tensor.Tensor, cfg TrainConfig) Result {
	var res Result
	ens := &Ensemble{}
	for k := 0; k < cfg.K; k++ {
		rng := rand.New(rand.NewSource(seed + int64(k)*1009))
		net := nn.NewMLP(rng, cfg.Arch)
		tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR), rng)
		stats := tr.Fit(x, y, nn.TrainConfig{Epochs: cfg.Epochs, BatchSize: cfg.BatchSize})
		res.FLOPs += stats.FLOPs
		res.Steps += stats.Steps
		ens.Members = append(ens.Members, net)
	}
	res.Committee = ens
	return res
}

// TrainSnapshot trains ONE network with a cyclic cosine learning rate for
// the same total epoch budget as a single baseline member and snapshots the
// weights at the end of each of K cycles ("Train 1, Get M for Free").
func TrainSnapshot(seed int64, x, y *tensor.Tensor, cfg TrainConfig) Result {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewMLP(rng, cfg.Arch)
	cycleLen := cfg.Epochs / cfg.K
	if cycleLen == 0 {
		cycleLen = 1
	}
	var snapshots []map[string][]float64
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR), rng)
	stats := tr.Fit(x, y, nn.TrainConfig{
		Epochs:    cycleLen * cfg.K,
		BatchSize: cfg.BatchSize,
		Schedule:  nn.CyclicCosineLR(cfg.LR, cycleLen),
		OnEpochEnd: func(epoch int, _ float64) {
			if (epoch+1)%cycleLen == 0 {
				snapshots = append(snapshots, net.StateDict())
			}
		},
	})
	ens := &Ensemble{}
	for i, sd := range snapshots {
		m := nn.NewMLP(rand.New(rand.NewSource(seed+int64(i))), cfg.Arch)
		m.LoadStateDict(sd)
		ens.Members = append(ens.Members, m)
	}
	return Result{Committee: ens, FLOPs: stats.FLOPs, Steps: stats.Steps}
}

// TrainFGE implements Fast Geometric Ensembling: converge one model with
// ~70% of the epoch budget, then run short triangular high/low LR cycles,
// collecting a snapshot at each low point. The snapshots live in a
// connected low-loss region around the converged solution.
func TrainFGE(seed int64, x, y *tensor.Tensor, cfg TrainConfig) Result {
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewMLP(rng, cfg.Arch)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR), rng)
	warmEpochs := cfg.Epochs * 7 / 10
	if warmEpochs == 0 {
		warmEpochs = 1
	}
	stats := tr.Fit(x, y, nn.TrainConfig{Epochs: warmEpochs, BatchSize: cfg.BatchSize})
	totalFLOPs := stats.FLOPs
	totalSteps := stats.Steps

	// Short cycles: 2 epochs each, LR oscillating between lr/2 and lr/50.
	const cycle = 2
	var snapshots []map[string][]float64
	for k := 0; k < cfg.K; k++ {
		s := tr.Fit(x, y, nn.TrainConfig{
			Epochs:    cycle,
			BatchSize: cfg.BatchSize,
			Schedule: func(epoch int) float64 {
				if epoch%cycle == 0 {
					return cfg.LR / 2
				}
				return cfg.LR / 50
			},
		})
		totalFLOPs += s.FLOPs
		totalSteps += s.Steps
		snapshots = append(snapshots, net.StateDict())
	}
	ens := &Ensemble{}
	for i, sd := range snapshots {
		m := nn.NewMLP(rand.New(rand.NewSource(seed+int64(i))), cfg.Arch)
		m.LoadStateDict(sd)
		ens.Members = append(ens.Members, m)
	}
	return Result{Committee: ens, FLOPs: totalFLOPs, Steps: totalSteps}
}
