package ensemble

import (
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Batched branch training: a TreeNet's K branches are, by construction,
// K copies of the same Dense/ReLU skeleton applied to the same trunk
// activation. That is exactly the repeated-shape pattern the tiered GEMM
// engine's BatMul exists for, so instead of K sequential rank-2 forward
// passes per batch the trainer stacks the branch weights into one
// [K, in, out] tensor and issues a single rank-3 product per layer.
//
// The fused path is bit-identical to the sequential one: BatMul slice i
// is bit-identical to MatMul on the same operands (the PR-9 equivalence
// contract), the bias and ReLU stages are element-wise, and the backward
// pass reuses the exact rank-2 kernels (MatMulTransA/MatMulTransB/SumRows)
// and accumulation order that Dense.Backward uses. The sequential path
// stays reachable via TrainConfig.SequentialBranches; the equivalence test
// trains both and compares every parameter bit for bit.

// branchesBatchable reports whether every branch shares one unmasked
// Dense/ReLU skeleton, the precondition for stacking their weights into
// rank-3 operands. NewTreeNet always builds such branches; hand-assembled
// TreeNets (or pruned ones carrying weight masks) fall back to the
// sequential path.
func branchesBatchable(t *TreeNet) bool {
	if len(t.Branches) < 2 {
		return false
	}
	ref := t.Branches[0]
	for _, br := range t.Branches {
		if len(br) != len(ref) {
			return false
		}
		for i, l := range br {
			switch rl := ref[i].(type) {
			case *nn.Dense:
				d, ok := l.(*nn.Dense)
				if !ok || d.In() != rl.In() || d.Out() != rl.Out() || d.Mask() != nil {
					return false
				}
			case *nn.ReLU:
				if _, ok := l.(*nn.ReLU); !ok {
					return false
				}
			default:
				return false
			}
		}
	}
	return true
}

// branchSlice views batch element b of a rank-3 [K, m, n] tensor as an
// m×n matrix sharing the underlying storage.
func branchSlice(t *tensor.Tensor, b int) *tensor.Tensor {
	m, n := t.Dim(1), t.Dim(2)
	return tensor.FromSlice(t.Data[b*m*n:(b+1)*m*n], m, n)
}

// denseForwardBatched computes slice-wise xW+b for branch layer li over
// all K branches with one BatMul. The bias broadcast mirrors
// tensor.AddRowVector element for element.
func (t *TreeNet) denseForwardBatched(li int, x *tensor.Tensor) *tensor.Tensor {
	k := x.Dim(0)
	d0 := t.Branches[0][li].(*nn.Dense)
	in, out := d0.In(), d0.Out()
	w := tensor.New(k, in, out)
	for b := 0; b < k; b++ {
		copy(w.Data[b*in*out:(b+1)*in*out], t.Branches[b][li].(*nn.Dense).W.Value.Data)
	}
	z := tensor.BatMul(x, w)
	bs := z.Dim(1)
	for b := 0; b < k; b++ {
		bias := t.Branches[b][li].(*nn.Dense).B.Value.Data
		sl := z.Data[b*bs*out : (b+1)*bs*out]
		for i := 0; i < bs; i++ {
			row := sl[i*out : (i+1)*out]
			for j := range row {
				row[j] += bias[j]
			}
		}
	}
	return z
}

// trainStepBatched runs one gradient accumulation over batch (bx, by)
// with all K branch forwards fused into rank-3 GEMMs. Grads land in the
// same Param.Grad tensors the sequential path fills; the caller zeroes
// grads before and steps the optimizer after, exactly as before.
func (t *TreeNet) trainStepBatched(bx, by *tensor.Tensor, losses []*nn.SoftmaxCrossEntropy) {
	h := t.forwardTrunk(bx, true)
	k := len(t.Branches)
	bs := h.Dim(0)

	// Replicate the shared trunk activation into every branch slice.
	cur := tensor.New(k, bs, h.Dim(1))
	for b := 0; b < k; b++ {
		copy(cur.Data[b*h.Size():(b+1)*h.Size()], h.Data)
	}

	ref := t.Branches[0]
	denseIn := make([]*tensor.Tensor, len(ref))
	reluMask := make([][]bool, len(ref))
	for li, l := range ref {
		switch l.(type) {
		case *nn.Dense:
			denseIn[li] = cur
			cur = t.denseForwardBatched(li, cur)
		case *nn.ReLU:
			mask := make([]bool, cur.Size())
			out := tensor.New(cur.Shape()...)
			for i, v := range cur.Data {
				if v > 0 {
					out.Data[i] = v
					mask[i] = true
				}
			}
			reluMask[li] = mask
			cur = out
		}
	}

	// Per-branch losses on slice views, gradients restacked for the
	// shared backward walk.
	dcur := tensor.New(cur.Shape()...)
	for b := 0; b < k; b++ {
		losses[b].Forward(branchSlice(cur, b), by)
		g := losses[b].Backward()
		copy(dcur.Data[b*g.Size():(b+1)*g.Size()], g.Data)
	}

	for li := len(ref) - 1; li >= 0; li-- {
		switch ref[li].(type) {
		case *nn.Dense:
			x := denseIn[li]
			m, n := dcur.Dim(1), x.Dim(2)
			dx := tensor.New(k, m, n)
			for b := 0; b < k; b++ {
				d := t.Branches[b][li].(*nn.Dense)
				doutv := branchSlice(dcur, b)
				d.W.Grad.AddInPlace(tensor.MatMulTransA(branchSlice(x, b), doutv))
				d.B.Grad.AddInPlace(tensor.SumRows(doutv))
				copy(dx.Data[b*m*n:(b+1)*m*n], tensor.MatMulTransB(doutv, d.W.Value).Data)
			}
			dcur = dx
		case *nn.ReLU:
			mask := reluMask[li]
			dx := tensor.New(dcur.Shape()...)
			for i, v := range dcur.Data {
				if mask[i] {
					dx.Data[i] = v
				}
			}
			dcur = dx
		}
	}

	// Trunk gradient: sum the branch slices in branch order — the same
	// dTrunk.AddInPlace(dh) chain the sequential path performs.
	dTrunk := branchSlice(dcur, 0).Clone()
	for b := 1; b < k; b++ {
		dTrunk.AddInPlace(branchSlice(dcur, b))
	}
	backwardLayers(t.Trunk, dTrunk)
}
