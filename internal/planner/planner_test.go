package planner

import (
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/nn"
)

var planArch = nn.MLPConfig{In: 256, Hidden: []int{512, 256, 128}, Out: 10}

func heteroDevices() []device.Profile {
	return []device.Profile{device.GPULarge, device.GPUSmall, device.CPUServer}
}

func TestOpChainShapes(t *testing.T) {
	ops := OpChain(planArch, 32)
	if len(ops) != 4 {
		t.Fatalf("got %d ops", len(ops))
	}
	for _, op := range ops {
		if op.FLOPs <= 0 || op.ParamBytes <= 0 || op.OutBytes <= 0 {
			t.Fatalf("bad op %+v", op)
		}
	}
}

func TestSimulateSingleFastDeviceBeatsSlow(t *testing.T) {
	ops := OpChain(planArch, 32)
	devs := heteroDevices()
	allFast := make(Placement, len(ops)) // all on GPULarge (index 0)
	allSlow := make(Placement, len(ops))
	for i := range allSlow {
		allSlow[i] = 2 // CPU
	}
	if Simulate(ops, devs, allFast) >= Simulate(ops, devs, allSlow) {
		t.Fatal("placing all ops on the fast device should beat the slow one")
	}
}

func TestSimulateChargesTransfers(t *testing.T) {
	ops := OpChain(planArch, 32)
	devs := heteroDevices()
	same := make(Placement, len(ops))
	alternating := make(Placement, len(ops))
	for i := range alternating {
		alternating[i] = i % 2
	}
	// Alternating between two devices of which one is strictly faster can
	// still lose to staying put when transfers dominate. At minimum the
	// simulator must charge nonzero transfer cost.
	tSame := Simulate(ops, devs, same)
	tAlt := Simulate(ops, devs, alternating)
	if tAlt <= tSame*0.5 {
		t.Fatalf("alternating placement suspiciously cheap: %g vs %g", tAlt, tSame)
	}
}

func TestMCMCFindsNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := OpChain(planArch, 32)
	devs := heteroDevices()
	opt := ExhaustiveSearch(ops, devs)
	mcmc := MCMCSearch(rng, ops, devs, 2000)
	if mcmc.BestTime > opt.BestTime*1.05 {
		t.Fatalf("MCMC %.6g more than 5%% above optimum %.6g", mcmc.BestTime, opt.BestTime)
	}
}

func TestMoreSearchEffortHelps(t *testing.T) {
	ops := OpChain(nn.MLPConfig{In: 512, Hidden: []int{1024, 512, 512, 256, 256}, Out: 10}, 64)
	devs := heteroDevices()
	// Average over seeds: MCMC with a large budget should be at least as
	// good as with a tiny budget.
	var small, large float64
	for seed := int64(0); seed < 5; seed++ {
		small += MCMCSearch(rand.New(rand.NewSource(seed)), ops, devs, 10).BestTime
		large += MCMCSearch(rand.New(rand.NewSource(seed)), ops, devs, 3000).BestTime
	}
	if large > small {
		t.Fatalf("3000-iter MCMC (%g) worse than 10-iter (%g)", large/5, small/5)
	}
}

func TestGreedyBeatsWorstCase(t *testing.T) {
	ops := OpChain(planArch, 32)
	devs := heteroDevices()
	greedy := GreedySearch(ops, devs)
	worst := make(Placement, len(ops))
	for i := range worst {
		worst[i] = 2
	}
	if greedy.BestTime >= Simulate(ops, devs, worst) {
		t.Fatal("greedy should beat the all-CPU placement")
	}
	if greedy.Simulations == 0 {
		t.Fatal("greedy recorded no simulations")
	}
}

func TestMLPFLOPsFormula(t *testing.T) {
	// 2*(4*8)+8 + 2*(8*2)+2 = 72 + 34 = 106
	if got := MLPFLOPs(4, []int{8}, 2); got != 106 {
		t.Fatalf("MLPFLOPs = %d, want 106", got)
	}
}

func TestUniformScaleMeetsBudget(t *testing.T) {
	full := MLPFLOPs(64, []int{128, 128}, 10)
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		budget := int64(float64(full) * frac)
		w := UniformScale(64, []int{128, 128}, 10, budget)
		if got := MLPFLOPs(64, w, 10); got > budget {
			t.Fatalf("frac %.2f: %d FLOPs exceeds budget %d (widths %v)", frac, got, budget, w)
		}
		for _, h := range w {
			if h < 1 {
				t.Fatal("width collapsed below 1")
			}
		}
	}
}

func TestMorphMeetsBudgetAndCompetesWithUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := data.GaussianMixture(rng, 700, 10, 4, 2.5)
	train, test := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, 4)

	base := nn.MLPConfig{In: 10, Hidden: []int{48, 48}, Out: 4}
	budget := MLPFLOPs(10, base.Hidden, 4) / 4

	res := Morph(7, train.X, y, MorphConfig{
		Base: base, BudgetFLOPs: budget, Iters: 3, TrainEpochs: 8, BatchSize: 32, LR: 0.01,
	})
	if res.FLOPs > budget {
		t.Fatalf("morphed net %d FLOPs exceeds budget %d", res.FLOPs, budget)
	}
	morphAcc := res.Net.Accuracy(test.X, test.Labels)

	// Uniform baseline at the same budget and the same total training.
	uw := UniformScale(10, base.Hidden, 4, budget)
	urng := rand.New(rand.NewSource(8))
	unet := nn.NewMLP(urng, nn.MLPConfig{In: 10, Hidden: uw, Out: 4})
	nn.NewTrainer(unet, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), urng).
		Fit(train.X, y, nn.TrainConfig{Epochs: 24, BatchSize: 32})
	uniAcc := unet.Accuracy(test.X, test.Labels)

	if morphAcc < uniAcc-0.08 {
		t.Fatalf("morphed accuracy %.3f far below uniform %.3f", morphAcc, uniAcc)
	}
}
