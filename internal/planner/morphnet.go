package planner

import (
	"math"
	"math/rand"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// MLPFLOPs returns the forward FLOPs per example of an MLP with the given
// hidden widths.
func MLPFLOPs(in int, hidden []int, out int) int64 {
	var total int64
	prev := in
	for _, h := range append(append([]int(nil), hidden...), out) {
		total += 2*int64(prev)*int64(h) + int64(h)
		prev = h
	}
	return total
}

// UniformScale shrinks all hidden widths by one multiplier chosen (by
// bisection) so the MLP meets the FLOP budget — the baseline MorphNet must
// beat.
func UniformScale(in int, hidden []int, out int, budget int64) []int {
	scale := 1.0
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 40; iter++ {
		scale = (lo + hi) / 2
		if MLPFLOPs(in, scaleWidths(hidden, scale), out) > budget {
			hi = scale
		} else {
			lo = scale
		}
	}
	return scaleWidths(hidden, lo)
}

func scaleWidths(hidden []int, s float64) []int {
	out := make([]int, len(hidden))
	for i, h := range hidden {
		w := int(math.Round(float64(h) * s))
		if w < 1 {
			w = 1
		}
		out[i] = w
	}
	return out
}

// MorphConfig controls the MorphNet-style resizing loop.
type MorphConfig struct {
	Base        nn.MLPConfig
	BudgetFLOPs int64 // per-example forward budget
	Iters       int   // shrink/expand rounds
	TrainEpochs int   // brief training per round to estimate importance
	BatchSize   int
	LR          float64
}

// MorphResult reports the discovered architecture.
type MorphResult struct {
	Widths []int
	FLOPs  int64
	Net    *nn.Network
}

// Morph runs the iterative resize loop: train briefly, score each hidden
// layer's units by the L1 norm of their incoming weights (the importance
// signal MorphNet derives from its regulariser), reallocate width
// proportionally to layer importance under the FLOP budget, and repeat. The
// final architecture is trained from scratch for TrainEpochs and returned.
func Morph(seed int64, x, y *tensor.Tensor, cfg MorphConfig) MorphResult {
	widths := UniformScale(cfg.Base.In, cfg.Base.Hidden, cfg.Base.Out, cfg.BudgetFLOPs)
	for iter := 0; iter < cfg.Iters; iter++ {
		rng := rand.New(rand.NewSource(seed + int64(iter)))
		arch := nn.MLPConfig{In: cfg.Base.In, Hidden: widths, Out: cfg.Base.Out}
		net := nn.NewMLP(rng, arch)
		tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR), rng)
		tr.Fit(x, y, nn.TrainConfig{Epochs: cfg.TrainEpochs, BatchSize: cfg.BatchSize})
		imp := layerImportances(net)
		widths = allocateWidths(cfg.Base, imp, cfg.BudgetFLOPs)
	}
	rng := rand.New(rand.NewSource(seed + 9999))
	arch := nn.MLPConfig{In: cfg.Base.In, Hidden: widths, Out: cfg.Base.Out}
	net := nn.NewMLP(rng, arch)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR), rng)
	tr.Fit(x, y, nn.TrainConfig{Epochs: cfg.TrainEpochs * cfg.Iters, BatchSize: cfg.BatchSize})
	return MorphResult{Widths: widths, FLOPs: MLPFLOPs(arch.In, widths, arch.Out), Net: net}
}

// layerImportances scores each hidden layer by the mean absolute incoming
// weight per unit: layers whose units carry large weights matter more.
func layerImportances(net *nn.Network) []float64 {
	var imps []float64
	denses := 0
	for _, l := range net.Layers {
		d, ok := l.(*nn.Dense)
		if !ok {
			continue
		}
		denses++
		var s float64
		for _, w := range d.W.Value.Data {
			s += math.Abs(w)
		}
		imps = append(imps, s/float64(d.W.Value.Size()))
	}
	// Drop the output head: its width is fixed.
	return imps[:denses-1]
}

// allocateWidths distributes hidden width proportionally to layer
// importance, scaled by bisection to meet the budget.
func allocateWidths(base nn.MLPConfig, imp []float64, budget int64) []int {
	var total float64
	for _, v := range imp {
		total += v
	}
	if total == 0 {
		return UniformScale(base.In, base.Hidden, base.Out, budget)
	}
	// Shape: relative widths proportional to importance, anchored to the
	// base widths' total mass.
	baseTotal := 0
	for _, h := range base.Hidden {
		baseTotal += h
	}
	shape := make([]float64, len(imp))
	for i, v := range imp {
		shape[i] = v / total * float64(baseTotal)
	}
	lo, hi := 0.0, 4.0
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		w := make([]int, len(shape))
		for i := range shape {
			w[i] = clampWidth(shape[i] * mid)
		}
		if MLPFLOPs(base.In, w, base.Out) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	out := make([]int, len(shape))
	for i := range shape {
		out[i] = clampWidth(shape[i] * lo)
	}
	return out
}

func clampWidth(v float64) int {
	w := int(math.Round(v))
	if w < 1 {
		return 1
	}
	return w
}
