package planner

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/device"
	"dlsys/internal/distributed"
	"dlsys/internal/nn"
)

// The analytic model must agree with the executed collectives: a clean-link
// training run's measured CommSeconds is CommRounds identical exchanges of
// the dense model payload, each of which CollectiveTime predicts.
func TestCollectiveTimeMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := data.GaussianMixture(rng, 240, 5, 3, 3.5)
	y := nn.OneHot(ds.Labels, 3)
	arch := nn.MLPConfig{In: 5, Hidden: []int{24}, Out: 3}
	modelSize := nn.NewMLP(rand.New(rand.NewSource(1)), arch).NumParams()
	payload := int64(modelSize) * 4 // dense float32 wire

	for _, tc := range []struct {
		workers, groupSize int
	}{
		{5, 0}, {7, 3}, {8, 0}, {12, 4},
	} {
		for _, topo := range CollectiveTopologies() {
			_, stats, err := distributed.Train(10, ds.X, y, distributed.Config{
				Workers: tc.workers, Arch: arch, Epochs: 2, BatchSize: 16, LR: 0.1,
				AveragePeriod: 1, Topology: distributed.Topology(topo),
				GroupSize: tc.groupSize, Device: device.ClusterNode,
			})
			if err != nil {
				t.Fatalf("%s n=%d: %v", topo, tc.workers, err)
			}
			if stats.CommRounds == 0 {
				t.Fatalf("%s n=%d: no collective rounds", topo, tc.workers)
			}
			want := float64(stats.CommRounds) *
				CollectiveTime(topo, tc.workers, payload, device.ClusterNode, tc.groupSize)
			if rel := math.Abs(stats.CommSeconds-want) / want; rel > 1e-9 {
				t.Fatalf("%s n=%d gs=%d: measured CommSeconds %g, model %g (rel err %g)",
					topo, tc.workers, tc.groupSize, stats.CommSeconds, want, rel)
			}
		}
	}
}

// At cluster scale with realistic gradient payloads the scalable topologies
// beat the mesh, and the advantage grows with n.
func TestCollectiveTimeScaling(t *testing.T) {
	const payload = int64(100_000) // ~25k-param dense gradient
	prof := device.ClusterNode
	for _, n := range []int{8, 64, 256} {
		a2a := CollectiveTime(CollectiveAllToAll, n, payload, prof, 0)
		ring := CollectiveTime(CollectiveRing, n, payload, prof, 0)
		tree := CollectiveTime(CollectiveTree, n, payload, prof, 0)
		hier := CollectiveTime(CollectiveHier, n, payload, prof, 0)
		if n >= 64 {
			if ring >= a2a {
				t.Fatalf("n=%d: ring %g >= all-to-all %g", n, ring, a2a)
			}
			if tree >= a2a {
				t.Fatalf("n=%d: tree %g >= all-to-all %g", n, tree, a2a)
			}
			if hier >= a2a {
				t.Fatalf("n=%d: hier %g >= all-to-all %g", n, hier, a2a)
			}
		}
	}
	// The mesh's cost is linear in n; the tree's logarithmic.
	t64 := CollectiveTime(CollectiveTree, 64, payload, prof, 0)
	t256 := CollectiveTime(CollectiveTree, 256, payload, prof, 0)
	a64 := CollectiveTime(CollectiveAllToAll, 64, payload, prof, 0)
	a256 := CollectiveTime(CollectiveAllToAll, 256, payload, prof, 0)
	if a256/a64 < 3.5 {
		t.Fatalf("all-to-all 256/64 ratio %g, want ~4 (linear)", a256/a64)
	}
	if t256/t64 > 1.5 {
		t.Fatalf("tree 256/64 ratio %g, want ~1.3 (logarithmic)", t256/t64)
	}
}

func TestCollectiveTimeEdgeCases(t *testing.T) {
	if CollectiveTime(CollectiveRing, 1, 1000, device.ClusterNode, 0) != 0 {
		t.Fatal("single member should cost zero")
	}
	if CollectiveTime("torus", 8, 1000, device.ClusterNode, 0) != 0 {
		t.Fatal("unknown topology should cost zero")
	}
	best, s := BestCollective(256, 100_000, device.ClusterNode, 0)
	if best == CollectiveAllToAll || s <= 0 {
		t.Fatalf("BestCollective(256) = %q %g; the mesh cannot win at scale", best, s)
	}
}
