// Package planner implements the optimize-then-execute techniques of Part 1
// of the tutorial (§2.2): FlexFlow-style parallelization-strategy search
// (an execution simulator plus random/greedy/MCMC search over device
// placements) and MorphNet-style iterative network resizing under a
// resource constraint.
package planner

import (
	"math"
	"math/rand"

	"dlsys/internal/device"
	"dlsys/internal/nn"
)

// Op is one stage of a model's computation graph (a layer or fused block).
type Op struct {
	Name       string
	FLOPs      int64 // per training step
	ParamBytes int64
	OutBytes   int64 // activation bytes flowing to the next op
}

// OpChain builds the op list for an MLP architecture at a batch size.
func OpChain(arch nn.MLPConfig, batch int) []Op {
	var ops []Op
	prev := arch.In
	widths := append(append([]int(nil), arch.Hidden...), arch.Out)
	for i, w := range widths {
		flops := int64(3) * int64(batch) * (2*int64(prev)*int64(w) + int64(w))
		ops = append(ops, Op{
			Name:       opName(i),
			FLOPs:      flops,
			ParamBytes: int64(prev*w+w) * 4,
			OutBytes:   int64(batch*w) * 4,
		})
		prev = w
	}
	return ops
}

func opName(i int) string { return "op" + string(rune('0'+i%10)) }

// Placement assigns each op to a device index.
type Placement []int

// Simulate returns the simulated per-step execution time of a placement:
// per-op compute on its assigned device plus transfer time whenever
// consecutive ops live on different devices. It is the cost model that
// stands in for FlexFlow's execution simulator.
func Simulate(ops []Op, devices []device.Profile, p Placement) float64 {
	if len(p) != len(ops) {
		panic("planner: placement length mismatch")
	}
	// Per-device serialized compute: ops on the same device share it.
	busy := make([]float64, len(devices))
	for i, op := range ops {
		d := devices[p[i]]
		busy[p[i]] += d.StepTime(op.FLOPs, op.ParamBytes, op.OutBytes, 0.5)
	}
	var compute float64
	for _, b := range busy {
		if b > compute {
			compute = b
		}
	}
	var transfer float64
	for i := 1; i < len(ops); i++ {
		if p[i] != p[i-1] {
			transfer += device.TransferTime(devices[p[i-1]], devices[p[i]], ops[i-1].OutBytes)
		}
	}
	// Pipeline steady state: the step rate is gated by the busiest device;
	// cross-device hops add latency that is only partially hidden.
	return compute + 0.5*transfer
}

// SearchResult reports a strategy search outcome.
type SearchResult struct {
	Best        Placement
	BestTime    float64 // simulated seconds per step
	Simulations int     // optimization effort spent
}

// RandomSearch samples placements uniformly and keeps the best.
func RandomSearch(rng *rand.Rand, ops []Op, devices []device.Profile, samples int) SearchResult {
	best := make(Placement, len(ops))
	bestTime := math.Inf(1)
	cur := make(Placement, len(ops))
	for s := 0; s < samples; s++ {
		for i := range cur {
			cur[i] = rng.Intn(len(devices))
		}
		if t := Simulate(ops, devices, cur); t < bestTime {
			bestTime = t
			copy(best, cur)
		}
	}
	return SearchResult{Best: best, BestTime: bestTime, Simulations: samples}
}

// GreedySearch assigns ops one at a time to the device minimising the
// simulated time of the prefix placed so far (remaining ops pinned to
// device 0).
func GreedySearch(ops []Op, devices []device.Profile) SearchResult {
	p := make(Placement, len(ops))
	sims := 0
	for i := range ops {
		bestD, bestT := 0, math.Inf(1)
		for d := range devices {
			p[i] = d
			t := Simulate(ops[:i+1], devices, p[:i+1])
			sims++
			if t < bestT {
				bestT, bestD = t, d
			}
		}
		p[i] = bestD
	}
	return SearchResult{Best: p, BestTime: Simulate(ops, devices, p), Simulations: sims}
}

// MCMCSearch runs simulated-annealing over placements, FlexFlow's search
// strategy: propose a single-op move, accept improvements always and
// regressions with temperature-scaled probability.
func MCMCSearch(rng *rand.Rand, ops []Op, devices []device.Profile, iters int) SearchResult {
	cur := make(Placement, len(ops))
	for i := range cur {
		cur[i] = rng.Intn(len(devices))
	}
	curT := Simulate(ops, devices, cur)
	best := append(Placement(nil), cur...)
	bestT := curT
	for s := 0; s < iters; s++ {
		i := rng.Intn(len(ops))
		old := cur[i]
		cur[i] = rng.Intn(len(devices))
		t := Simulate(ops, devices, cur)
		temp := 0.1 * bestT * (1 - float64(s)/float64(iters))
		if t <= curT || (temp > 0 && rng.Float64() < math.Exp((curT-t)/temp)) {
			curT = t
			if t < bestT {
				bestT = t
				copy(best, cur)
			}
		} else {
			cur[i] = old
		}
	}
	return SearchResult{Best: best, BestTime: bestT, Simulations: iters}
}

// ExhaustiveSearch enumerates every placement — the ground-truth optimum,
// feasible only for tiny graphs (|devices|^|ops| placements).
func ExhaustiveSearch(ops []Op, devices []device.Profile) SearchResult {
	p := make(Placement, len(ops))
	best := make(Placement, len(ops))
	bestTime := math.Inf(1)
	sims := 0
	var rec func(i int)
	rec = func(i int) {
		if i == len(ops) {
			sims++
			if t := Simulate(ops, devices, p); t < bestTime {
				bestTime = t
				copy(best, p)
			}
			return
		}
		for d := range devices {
			p[i] = d
			rec(i + 1)
		}
	}
	rec(0)
	return SearchResult{Best: best, BestTime: bestTime, Simulations: sims}
}
