package planner

// Analytic cost model for the distributed trainer's collective topologies:
// the planner-side mirror of internal/distributed's phase enumeration, so a
// strategy search can price "which topology at which scale" without running
// the simulator. Phase structure matches the executed collectives exactly —
// phases serialize, hops within a phase run concurrently (a phase costs its
// slowest hop), and every hop is priced by device.TransferTime — so on
// clean links CollectiveTime reproduces the trainer's measured per-round
// CommSeconds up to floating-point accumulation order. The package tests
// cross-validate the model against the executed collectives.

import (
	"math"
	"math/bits"

	"dlsys/internal/device"
)

// Collective topology names, mirroring distributed.Topology values. Kept as
// strings so the planner depends only on internal/device.
const (
	CollectiveAllToAll = "all-to-all"
	CollectiveRing     = "ring"
	CollectiveTree     = "tree"
	CollectiveHier     = "hier"
)

// CollectiveTopologies lists the modeled topologies in sweep order.
func CollectiveTopologies() []string {
	return []string{CollectiveAllToAll, CollectiveRing, CollectiveTree, CollectiveHier}
}

func collCeilDiv(a int64, b int) int64 {
	if b <= 0 {
		return a
	}
	return (a + int64(b) - 1) / int64(b)
}

// collHeapDepth is the depth of index i in a 0-based binary heap.
func collHeapDepth(i int) int { return bits.Len(uint(i+1)) - 1 }

// collGroupSize resolves TopoHier's intra-group width: the configured size
// clamped to the member count, defaulting to ceil(sqrt(m)) (minimum 2).
func collGroupSize(groupSize, m int) int {
	gs := groupSize
	if gs < 2 {
		gs = int(math.Ceil(math.Sqrt(float64(m))))
		if gs < 2 {
			gs = 2
		}
	}
	if gs > m {
		gs = m
	}
	return gs
}

// CollectiveTime returns the simulated seconds one clean-link
// reduce-broadcast of payloadBytes takes over the topology spanning n
// members of the given profile. groupSize only affects CollectiveHier
// (0 = default). Unknown topologies and n < 2 cost zero.
func CollectiveTime(topology string, n int, payloadBytes int64, prof device.Profile, groupSize int) float64 {
	if n < 2 {
		return 0
	}
	hop := func(bytes int64) float64 { return device.TransferTime(prof, prof, bytes) }
	switch topology {
	case CollectiveAllToAll:
		// m-1 serialized phases of concurrent full-payload exchanges.
		return float64(n-1) * hop(payloadBytes)
	case CollectiveRing:
		// Reduce-scatter + all-gather: 2(m-1) phases of 1/m segments.
		return float64(2*(n-1)) * hop(collCeilDiv(payloadBytes, n))
	case CollectiveTree:
		// Binary-tree reduce then broadcast: one phase per level each way.
		return float64(2*collHeapDepth(n-1)) * hop(payloadBytes)
	case CollectiveHier:
		gs := collGroupSize(groupSize, n)
		// Group lengths: full groups of gs plus one remainder group.
		var lens []int
		for i := 0; i < n; i += gs {
			l := gs
			if i+l > n {
				l = n - i
			}
			lens = append(lens, l)
		}
		var total float64
		// Intra-group rings run concurrently with phases aligned across
		// groups: phase s costs the slowest hop among groups still running
		// (smaller groups carry bigger segments but finish earlier).
		for s := 0; s < 2*(gs-1); s++ {
			var phase float64
			for _, l := range lens {
				if l < 2 || s >= 2*(l-1) {
					continue
				}
				if t := hop(collCeilDiv(payloadBytes, l)); t > phase {
					phase = t
				}
			}
			total += phase
		}
		// Tree reduce-broadcast across the group leaders.
		if k := len(lens); k >= 2 {
			total += float64(2*collHeapDepth(k-1)) * hop(payloadBytes)
		}
		// Binomial broadcast from each leader back into its group.
		for s := 0; 1<<s < gs; s++ {
			active := false
			for _, l := range lens {
				if 1<<s < l {
					active = true
					break
				}
			}
			if active {
				total += hop(payloadBytes)
			}
		}
		return total
	}
	return 0
}

// BestCollective returns the modeled-cheapest topology for the scale and
// payload, with its predicted seconds — the planner's answer to "how should
// these n members average gradients".
func BestCollective(n int, payloadBytes int64, prof device.Profile, groupSize int) (string, float64) {
	best, bestT := "", math.Inf(1)
	for _, topo := range CollectiveTopologies() {
		if t := CollectiveTime(topo, n, payloadBytes, prof, groupSize); t < bestT {
			best, bestT = topo, t
		}
	}
	return best, bestT
}
