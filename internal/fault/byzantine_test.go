package fault

import (
	"math"
	"testing"
)

// TestKindStringExhaustive iterates every declared kind and fails on any
// "unknown" rendering, so new kinds can't silently print as unknown in
// ledgers and tables.
func TestKindStringExhaustive(t *testing.T) {
	seen := map[string]Kind{}
	for k := KindCrash; k < kindEnd; k++ {
		s := k.String()
		if s == "unknown" {
			t.Errorf("Kind(%d) renders as %q — add it to Kind.String()", int(k), s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("Kind(%d) and Kind(%d) both render as %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	if Kind(int(kindEnd)+7).String() != "unknown" {
		t.Errorf("out-of-range kind should render as unknown")
	}
}

func TestIsByzantineKind(t *testing.T) {
	for k := KindCrash; k < kindEnd; k++ {
		want := k == KindSignFlip || k == KindScaleAttack || k == KindDriftAttack || k == KindCollude
		if got := IsByzantineKind(k); got != want {
			t.Errorf("IsByzantineKind(%v) = %v, want %v", k, got, want)
		}
	}
}

func TestByzantineConfigValidate(t *testing.T) {
	good := Byzantine(1, KindSignFlip, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{ByzantineWorkers: []int{0}, ByzantineKind: KindCrash},                        // non-Byzantine kind
		{ByzantineWorkers: []int{-1}, ByzantineKind: KindSignFlip},                    // negative worker
		{ByzantineWorkers: []int{0}, ByzantineKind: KindSignFlip, ByzantineRate: 1.5}, // rate > 1
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if !good.Enabled() {
		t.Errorf("Byzantine config should report Enabled")
	}
}

func TestByzantineWorkerMembership(t *testing.T) {
	inj := NewInjector(Byzantine(7, KindScaleAttack, 1, 5))
	for w := 0; w < 8; w++ {
		want := w == 1 || w == 5
		if got := inj.ByzantineWorker(w); got != want {
			t.Errorf("ByzantineWorker(%d) = %v, want %v", w, got, want)
		}
		if !want && inj.ByzantineFires(w, 0) {
			t.Errorf("honest worker %d fired", w)
		}
	}
	if !inj.ByzantineFires(1, 3) {
		t.Errorf("rate-1 adversary should fire every round")
	}
}

func TestCorruptGradientSemantics(t *testing.T) {
	base := []float64{1, -2, 0.5}

	t.Run("sign-flip", func(t *testing.T) {
		inj := NewInjector(Byzantine(3, KindSignFlip, 0))
		g := append([]float64(nil), base...)
		if !inj.CorruptGradient(g, 0, 0) {
			t.Fatalf("attack did not fire")
		}
		for j := range g {
			if g[j] != -100*base[j] {
				t.Fatalf("g[%d] = %g, want %g", j, g[j], -100*base[j])
			}
		}
	})

	t.Run("scale", func(t *testing.T) {
		cfg := Byzantine(3, KindScaleAttack, 0)
		cfg.ScaleAttackFactor = 10
		inj := NewInjector(cfg)
		g := append([]float64(nil), base...)
		inj.CorruptGradient(g, 0, 2)
		for j := range g {
			if g[j] != 10*base[j] {
				t.Fatalf("g[%d] = %g, want %g", j, g[j], 10*base[j])
			}
		}
	})

	t.Run("drift-constant-across-rounds", func(t *testing.T) {
		inj := NewInjector(Byzantine(3, KindDriftAttack, 0))
		a := append([]float64(nil), base...)
		b := append([]float64(nil), base...)
		inj.CorruptGradient(a, 0, 0)
		inj.CorruptGradient(b, 0, 9)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("drift bias changed between rounds at coord %d", j)
			}
			if math.Abs(a[j]-base[j]) != 1.5 {
				t.Fatalf("|bias| = %g, want 1.5", math.Abs(a[j]-base[j]))
			}
		}
	})

	t.Run("honest-untouched", func(t *testing.T) {
		inj := NewInjector(Byzantine(3, KindSignFlip, 4))
		g := append([]float64(nil), base...)
		if inj.CorruptGradient(g, 0, 0) {
			t.Fatalf("honest worker corrupted")
		}
		for j := range g {
			if g[j] != base[j] {
				t.Fatalf("honest gradient mutated")
			}
		}
	})

	t.Run("finite", func(t *testing.T) {
		for _, k := range []Kind{KindSignFlip, KindScaleAttack, KindDriftAttack, KindCollude} {
			inj := NewInjector(Byzantine(3, k, 0))
			g := append([]float64(nil), base...)
			inj.CorruptGradient(g, 0, 0)
			for j, v := range g {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%v produced non-finite g[%d]=%v", k, j, v)
				}
			}
		}
	})
}

func TestColludeShuffleCoordinated(t *testing.T) {
	inj := NewInjector(Byzantine(11, KindCollude, 2, 6))
	rows, classes := 8, 3
	mk := func() []float64 {
		labels := make([]float64, rows*classes)
		for r := 0; r < rows; r++ {
			labels[r*classes+r%classes] = 1
		}
		return labels
	}
	if !inj.ColludesBatch(2, 0) || !inj.ColludesBatch(6, 0) {
		t.Fatalf("coalition members should collude at rate 1")
	}
	if inj.ColludesBatch(0, 0) {
		t.Fatalf("honest worker colluded")
	}
	// Every colluder derives the identical shift for a round; shifts vary
	// by round; rows stay one-hot.
	a, b := mk(), mk()
	inj.ColludeShuffleLabels(a, rows, classes, 4)
	inj.ColludeShuffleLabels(b, rows, classes, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coalition members derived different shuffles")
		}
	}
	orig := mk()
	same := true
	for i := range a {
		if a[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("shuffle was a no-op")
	}
	for r := 0; r < rows; r++ {
		var sum float64
		for c := 0; c < classes; c++ {
			sum += a[r*classes+c]
		}
		if sum != 1 {
			t.Fatalf("row %d no longer one-hot (sum %g)", r, sum)
		}
	}
}

func TestByzantineOrderIndependence(t *testing.T) {
	inj := NewInjector(Byzantine(99, KindSignFlip, 1, 3))
	type key struct{ w, r int }
	fwd := map[key]bool{}
	for w := 0; w < 4; w++ {
		for r := 0; r < 16; r++ {
			fwd[key{w, r}] = inj.ByzantineFires(w, r)
		}
	}
	inj2 := NewInjector(Byzantine(99, KindSignFlip, 1, 3))
	for r := 15; r >= 0; r-- {
		for w := 3; w >= 0; w-- {
			if inj2.ByzantineFires(w, r) != fwd[key{w, r}] {
				t.Fatalf("query order changed outcome at worker %d round %d", w, r)
			}
		}
	}
}
