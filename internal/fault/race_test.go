package fault

import (
	"math"
	"sync"
	"testing"
)

// The injector's contract is that outcomes depend only on the query tuple
// (seed, kind, worker, step, attempt) — never on query order or
// concurrency. Here many goroutines draw the same tuples concurrently
// (exercised under -race in CI) and every draw must agree byte-for-byte
// with a serial reference pass.
func TestInjectorConcurrentDeterminism(t *testing.T) {
	cfg := NumericalRate(42, 0.3)
	cfg.CrashProb = 0.1
	cfg.DropProb = 0.2
	inj := NewInjector(cfg)

	const workers, steps = 8, 50
	type draws struct {
		crash, batch, label []bool
		lr                  []float64
		payload             []uint64 // Float64bits of corrupted batch values
	}
	reference := func() draws {
		var d draws
		for w := 0; w < workers; w++ {
			for s := 0; s < steps; s++ {
				d.crash = append(d.crash, inj.Crashes(w, s))
				d.batch = append(d.batch, inj.CorruptsBatch(w, s))
				d.label = append(d.label, inj.LabelNoise(w, s))
				d.lr = append(d.lr, inj.LRSpikeFactor(w, s))
				buf := make([]float64, 32)
				inj.CorruptBatchValues(buf, w, s)
				for _, v := range buf {
					d.payload = append(d.payload, math.Float64bits(v))
				}
			}
		}
		return d
	}
	want := reference()

	// Each goroutine replays every tuple in its own order and compares
	// against the serial reference.
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			pi := 0
			for w := 0; w < workers; w++ {
				for s := 0; s < steps; s++ {
					if inj.Crashes(w, s) != want.crash[i] ||
						inj.CorruptsBatch(w, s) != want.batch[i] ||
						inj.LabelNoise(w, s) != want.label[i] {
						errs <- "boolean draw disagrees with serial reference"
						return
					}
					if math.Float64bits(inj.LRSpikeFactor(w, s)) != math.Float64bits(want.lr[i]) {
						errs <- "LR spike factor disagrees"
						return
					}
					buf := make([]float64, 32)
					inj.CorruptBatchValues(buf, w, s)
					for _, v := range buf {
						if math.Float64bits(v) != want.payload[pi] {
							errs <- "corrupted payload bytes disagree"
							return
						}
						pi++
					}
					i++
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}

	// Sanity: the scenario actually fires faults.
	fired := 0
	for _, b := range want.batch {
		if b {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("scenario injected no batch corruption at rate 0.3")
	}
}

func TestNumericalConfigValidateAndEnabled(t *testing.T) {
	c := NumericalRate(1, 0.1)
	if !c.Enabled() {
		t.Fatal("numerical config should be enabled")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.BatchCorruptProb = 1.5
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range BatchCorruptProb accepted")
	}
	for _, k := range []Kind{KindBatchCorrupt, KindLabelNoise, KindLRSpike} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

func TestCorruptBatchValuesGuaranteesPoison(t *testing.T) {
	inj := NewInjector(Config{Seed: 5, BatchCorruptProb: 1})
	buf := make([]float64, 7) // small batch: len/50 == 0, must still poison ≥1
	n := inj.CorruptBatchValues(buf, 0, 0)
	if n < 1 {
		t.Fatalf("poisoned %d values, want ≥1", n)
	}
	bad := 0
	for _, v := range buf {
		if v != v || math.IsInf(v, 0) || math.Abs(v) >= 1e12 {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("no poison values present after corruption")
	}
	var nilInj *Injector
	if nilInj.CorruptBatchValues(buf, 0, 0) != 0 || nilInj.CorruptsBatch(0, 0) ||
		nilInj.LabelNoise(0, 0) || nilInj.LRSpikeFactor(0, 0) != 1 {
		t.Fatal("nil injector must be inert")
	}
}

func TestShuffleLabelsStaysOneHot(t *testing.T) {
	inj := NewInjector(Config{Seed: 9, LabelNoiseProb: 1})
	const rows, classes = 6, 3
	labels := make([]float64, rows*classes)
	for r := 0; r < rows; r++ {
		labels[r*classes+r%classes] = 1
	}
	orig := append([]float64(nil), labels...)
	inj.ShuffleLabels(labels, rows, classes, 0, 0)
	changed := false
	for r := 0; r < rows; r++ {
		ones := 0
		for c := 0; c < classes; c++ {
			v := labels[r*classes+c]
			if v != 0 && v != 1 {
				t.Fatalf("row %d not one-hot after shuffle", r)
			}
			if v == 1 {
				ones++
			}
			if v != orig[r*classes+c] {
				changed = true
			}
		}
		if ones != 1 {
			t.Fatalf("row %d has %d ones", r, ones)
		}
	}
	if !changed {
		t.Fatal("shuffle changed nothing")
	}
}
