package fault

import (
	"sync"
	"testing"
)

func TestSameSeedSameSchedule(t *testing.T) {
	a := NewInjector(Rate(7, 0.2)).Schedule(8, 200)
	b := NewInjector(Rate(7, 0.2)).Schedule(8, 200)
	if len(a) == 0 {
		t.Fatal("rate 0.2 over 8x200 worker-rounds produced no events")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDifferentSchedules(t *testing.T) {
	a := NewInjector(Rate(1, 0.2)).Schedule(8, 200)
	b := NewInjector(Rate(2, 0.2)).Schedule(8, 200)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

// Queries must not depend on order or on other queries having been made —
// the property that lets the injector be shared by concurrent components.
func TestOrderIndependence(t *testing.T) {
	inj := NewInjector(Rate(42, 0.3))
	// Record a reference answer set.
	type key struct{ w, r, a int }
	ref := map[key]bool{}
	for w := 0; w < 4; w++ {
		for r := 0; r < 50; r++ {
			for a := 0; a < 3; a++ {
				ref[key{w, r, a}] = inj.Drops(w, r, a)
			}
		}
	}
	// Re-query in reverse order, interleaved with unrelated queries.
	for w := 3; w >= 0; w-- {
		for r := 49; r >= 0; r-- {
			inj.Crashes(w, r) // unrelated stream
			for a := 2; a >= 0; a-- {
				if inj.Drops(w, r, a) != ref[key{w, r, a}] {
					t.Fatalf("Drops(%d,%d,%d) changed across query orders", w, r, a)
				}
			}
		}
	}
}

func TestConcurrentQueriesAreStable(t *testing.T) {
	inj := NewInjector(Rate(9, 0.25))
	want := inj.Schedule(4, 100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := inj.Schedule(4, 100)
			if len(got) != len(want) {
				t.Errorf("concurrent schedule length %d != %d", len(got), len(want))
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("concurrent schedule diverges at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRatesApproximatelyHonoured(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, DropProb: 0.2})
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if inj.Drops(i%7, i, 0) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("drop rate %.3f far from configured 0.2", frac)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	inj := NewInjector(Config{Seed: 5})
	for r := 0; r < 100; r++ {
		for w := 0; w < 4; w++ {
			if inj.Crashes(w, r) || inj.Drops(w, r, 0) || inj.Corrupts(w, r, 0) {
				t.Fatal("zero config injected a fault")
			}
			if inj.StraggleFactor(w, r) != 1 {
				t.Fatal("zero config produced a straggler")
			}
		}
	}
	if inj.cfg.Enabled() {
		t.Fatal("zero config reports Enabled")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var inj *Injector
	if inj.Crashes(0, 0) || inj.Drops(0, 0, 0) || inj.Corrupts(0, 0, 0) {
		t.Fatal("nil injector injected a fault")
	}
	if inj.StraggleFactor(0, 0) != 1 {
		t.Fatal("nil injector straggled")
	}
	if inj.RestartDelay() != 3 {
		t.Fatal("nil injector restart delay")
	}
	if len(inj.Schedule(4, 10)) != 0 {
		t.Fatal("nil injector scheduled events")
	}
}

func TestCorruptPayloadFlipsExactlyOneBit(t *testing.T) {
	inj := NewInjector(Rate(11, 0.5))
	payload := make([]byte, 64)
	orig := append([]byte(nil), payload...)
	inj.CorruptPayload(payload, 1, 2, 0)
	diff := 0
	for i := range payload {
		b := payload[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Seed: 1, DropProb: 0.5}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{Seed: 1, DropProb: 1.5}).Validate(); err == nil {
		t.Fatal("DropProb 1.5 accepted")
	}
	if err := (Config{Seed: 1, CrashProb: -0.1}).Validate(); err == nil {
		t.Fatal("negative CrashProb accepted")
	}
}

func TestWorkerSeedsDistinctAndStable(t *testing.T) {
	seen := map[int64]int{}
	for w := 0; w < 64; w++ {
		s := WorkerSeed(99, w)
		if s < 0 {
			t.Fatalf("worker %d seed negative", w)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("workers %d and %d share seed %d", prev, w, s)
		}
		seen[s] = w
		if s != WorkerSeed(99, w) {
			t.Fatalf("worker %d seed unstable", w)
		}
	}
}
