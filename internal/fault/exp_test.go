package fault

import (
	"math"
	"testing"
)

func TestExpDeterministicAndOrderIndependent(t *testing.T) {
	inj := NewInjector(Config{Seed: 9})
	a := inj.Exp(KindArrival, 0, 7, 0, 0.25)
	// Querying other points must not perturb the draw.
	inj.Exp(KindArrival, 0, 8, 0, 0.25)
	inj.Exp(KindCrash, 3, 7, 1, 0.25)
	b := inj.Exp(KindArrival, 0, 7, 0, 0.25)
	if a != b {
		t.Fatalf("Exp not deterministic: %g != %g", a, b)
	}
	if a <= 0 || math.IsInf(a, 0) || math.IsNaN(a) {
		t.Fatalf("Exp draw %g not a positive finite variate", a)
	}
}

func TestExpMeanMatchesParameter(t *testing.T) {
	inj := NewInjector(Config{Seed: 10})
	const n, mean = 20000, 0.5
	var sum float64
	for i := 0; i < n; i++ {
		sum += inj.Exp(KindArrival, 0, i, 0, mean)
	}
	if got := sum / n; math.Abs(got-mean) > 0.02 {
		t.Fatalf("empirical mean %g far from %g", got, mean)
	}
}

func TestExpNilAndDegenerate(t *testing.T) {
	var inj *Injector
	if inj.Exp(KindArrival, 0, 0, 0, 1) != 0 {
		t.Fatal("nil injector should draw 0")
	}
	if NewInjector(Config{Seed: 1}).Exp(KindArrival, 0, 0, 0, 0) != 0 {
		t.Fatal("non-positive mean should draw 0")
	}
}

func TestExpScalesWithMean(t *testing.T) {
	inj := NewInjector(Config{Seed: 11})
	small := inj.Exp(KindArrival, 2, 3, 0, 1)
	large := inj.Exp(KindArrival, 2, 3, 0, 10)
	if math.Abs(large-10*small) > 1e-12 {
		t.Fatalf("same hash point should scale linearly with the mean: %g vs %g", large, 10*small)
	}
}
