package fault

import "testing"

func TestLinkDrawsDeterministicAndOrderIndependent(t *testing.T) {
	inj := NewInjector(LinkRate(42, 0.3))

	// Same arguments, same outcome — regardless of interleaved queries.
	first := make([]bool, 0, 64)
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			for round := 0; round < 4; round++ {
				first = append(first, inj.LinkDrops(src, dst, round, 1, 0))
			}
		}
	}
	// Re-query in reverse order with unrelated draws interleaved.
	for src := 3; src >= 0; src-- {
		for dst := 3; dst >= 0; dst-- {
			for round := 3; round >= 0; round-- {
				inj.LinkSlow(dst, src, round) // unrelated stream
				got := inj.LinkDrops(src, dst, round, 1, 0)
				want := first[src*16+dst*4+round]
				if got != want {
					t.Fatalf("LinkDrops(%d,%d,%d) changed between queries: %v then %v",
						src, dst, round, want, got)
				}
			}
		}
	}

	// Different hop sequence numbers draw independently: over many links at
	// p=0.3 the two streams must not be identical.
	same := true
	for l := 0; l < 200 && same; l++ {
		if inj.LinkDrops(l, l+1, 0, 0, 0) != inj.LinkDrops(l, l+1, 0, 1, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("hopSeq does not salt the link-drop stream")
	}
}

func TestLinkDirectionality(t *testing.T) {
	// src→dst and dst→src are distinct links: at p=0.5 the two directions
	// must disagree somewhere across many links.
	inj := NewInjector(Config{Seed: 7, LinkDropProb: 0.5})
	for l := 0; l < 200; l++ {
		if inj.LinkDrops(l, l+1, 3, 0, 0) != inj.LinkDrops(l+1, l, 3, 0, 0) {
			return
		}
	}
	t.Fatal("forward and reverse links always agree — linkKey is symmetric")
}

func TestLinkSlowFactorDefaultsAndSticksPerRound(t *testing.T) {
	inj := NewInjector(Config{Seed: 11, LinkSlowProb: 0.5}) // factor unset → 8
	sawSlow := false
	for l := 0; l < 100; l++ {
		f := inj.LinkSlow(l, l+1, 2)
		if f != 1 && f != 8 {
			t.Fatalf("LinkSlow returned %v; want 1 or the default 8", f)
		}
		if f != inj.LinkSlow(l, l+1, 2) {
			t.Fatal("LinkSlow not stable within a round")
		}
		if f > 1 {
			sawSlow = true
		}
	}
	if !sawSlow {
		t.Fatal("no slow link in 100 draws at p=0.5")
	}
}

func TestPartitionStableCutAndDuration(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, PartitionProb: 0.2, PartitionRounds: 3})

	foundStart := -1
	for r := 0; r < 50; r++ {
		if start, ok := inj.PartitionAt(r); ok && start == r {
			foundStart = r
			break
		}
	}
	if foundStart < 0 {
		t.Fatal("no partition started in 50 rounds at p=0.2")
	}
	// The partition stays active, with the same start, for its duration.
	for r := foundStart; r < foundStart+3; r++ {
		start, ok := inj.PartitionAt(r)
		if !ok {
			t.Fatalf("partition inactive at round %d inside [%d,%d)", r, foundStart, foundStart+3)
		}
		if start > r || start <= r-3 {
			t.Fatalf("PartitionAt(%d) start %d outside the 3-round window", r, start)
		}
	}
	// Sides are stable for the whole partition and both endpoints agree.
	for w := 0; w < 16; w++ {
		s := inj.PartitionSide(w, foundStart)
		if s != 0 && s != 1 {
			t.Fatalf("PartitionSide(%d) = %d; want 0 or 1", w, s)
		}
		if s != inj.PartitionSide(w, foundStart) {
			t.Fatal("PartitionSide not deterministic")
		}
	}
	// LinkCut severs exactly the cross-side links.
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			want := inj.PartitionSide(src, foundStart) != inj.PartitionSide(dst, foundStart)
			if got := inj.LinkCut(src, dst, foundStart); got != want {
				t.Fatalf("LinkCut(%d,%d) = %v; want %v", src, dst, got, want)
			}
		}
	}
}

func TestNilInjectorLinkMethods(t *testing.T) {
	var inj *Injector
	if inj.LinkDrops(0, 1, 0, 0, 0) {
		t.Fatal("nil injector drops")
	}
	if f := inj.LinkSlow(0, 1, 0); f != 1 {
		t.Fatalf("nil injector LinkSlow = %v; want 1", f)
	}
	if _, ok := inj.PartitionAt(0); ok {
		t.Fatal("nil injector partitions")
	}
	if inj.LinkCut(0, 1, 0) {
		t.Fatal("nil injector cuts links")
	}
}

func TestLinkConfigValidation(t *testing.T) {
	for _, c := range []Config{
		{LinkDropProb: -0.1},
		{LinkSlowProb: 1.5},
		{PartitionProb: 2},
	} {
		if err := c.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", c)
		}
	}
	if err := LinkRate(1, 0.2).Validate(); err != nil {
		t.Fatalf("LinkRate config rejected: %v", err)
	}
	if !LinkRate(1, 0.2).Enabled() {
		t.Fatal("LinkRate config not Enabled")
	}
	if (Config{PartitionProb: 0.1}).Enabled() == false {
		t.Fatal("partition-only config not Enabled")
	}
}
