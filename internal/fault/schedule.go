package fault

// Time-windowed fault schedules: the declarative layer that lets a composed
// experiment script a "day in production" — crash worker 3 at t=120s, an
// ×8 flash crowd for t∈[300,360), a Byzantine coalition active after
// t=600, a numerical-fault burst at t=900 — instead of driving every class
// with a flat per-round rate. A schedule is a list of Windows attached to
// Config.Schedule; the injector resolves which windows are active at the
// simulated instant of each draw, either from an attached Clock
// (SetClock, used by the round-driven training simulator) or from the
// explicit timestamps that the serving simulator already threads through
// every draw.
//
// Determinism is unchanged: window activity is a pure function of the
// draw's timestamp, and the Bernoulli draw itself uses the same
// (seed, kind, worker, step, attempt) hash stream as rate-driven faults,
// so scheduled scenarios replay bit-identically and remain
// order-independent across concurrent workers.

// Clock is the read-only simulated-time source the injector consults for
// draws that do not carry an explicit timestamp. *sim.Kernel satisfies it
// structurally; fault deliberately does not import sim so the dependency
// points one way (sim-aware components hand their kernel down).
type Clock interface {
	Now() float64
}

// Window is one declarative fault rule: during [StartS, EndS) the given
// Kind fires for the listed workers with probability Prob per draw (or
// scales by Factor, for factor-shaped kinds). Fields:
//
//   - Kind: any injectable kind. Byzantine kinds turn the listed workers
//     into adversaries for the window's duration; KindArrival windows
//     multiply the arrival rate by Factor (the flash-crowd knob) and
//     ignore Prob.
//   - Workers: the worker (or replica) ids the window applies to; nil
//     means all.
//   - StartS, EndS: the active interval, in simulated seconds, inclusive
//     of start and exclusive of end. EndS == 0 means open-ended (active
//     from StartS onwards). A window with EndS == StartS (nonzero) has
//     zero length and never fires — a legal no-op, so generated schedules
//     need not special-case empty intervals.
//   - Prob: per-draw probability while active. For Byzantine kinds, 0
//     defaults to 1 (the adversary attacks every round, matching
//     ByzantineRate semantics).
//   - Factor: kind-specific multiplier — straggler latency (default 8),
//     LR-spike multiplier (default 64), arrival-rate multiplier
//     (required for KindArrival). Overlapping windows multiply their
//     factors and combine their probabilities as 1-∏(1-pᵢ).
type Window struct {
	Kind    Kind
	Workers []int
	StartS  float64
	EndS    float64
	Prob    float64
	Factor  float64
}

// activeAt reports whether the window covers worker at time t.
func (w Window) activeAt(worker int, t float64) bool {
	if t < w.StartS {
		return false
	}
	if w.EndS != 0 && t >= w.EndS {
		return false
	}
	if w.Workers == nil {
		return true
	}
	for _, id := range w.Workers {
		if id == worker {
			return true
		}
	}
	return false
}

// scheduleBaseField maps a window kind to the rate-driven Config field it
// conflicts with ("" when the kind has no flat-rate counterpart).
func scheduleBaseField(k Kind) string {
	switch k {
	case KindCrash:
		return "CrashProb"
	case KindStraggle:
		return "StragglerProb"
	case KindDrop:
		return "DropProb"
	case KindCorrupt:
		return "CorruptProb"
	case KindBatchCorrupt:
		return "BatchCorruptProb"
	case KindLabelNoise:
		return "LabelNoiseProb"
	case KindLRSpike:
		return "LRSpikeProb"
	case KindLinkDrop:
		return "LinkDropProb"
	case KindLinkSlow:
		return "LinkSlowProb"
	case KindPartition:
		return "PartitionProb"
	}
	return ""
}

func (c Config) baseProb(field string) float64 {
	switch field {
	case "CrashProb":
		return c.CrashProb
	case "StragglerProb":
		return c.StragglerProb
	case "DropProb":
		return c.DropProb
	case "CorruptProb":
		return c.CorruptProb
	case "BatchCorruptProb":
		return c.BatchCorruptProb
	case "LabelNoiseProb":
		return c.LabelNoiseProb
	case "LRSpikeProb":
		return c.LRSpikeProb
	case "LinkDropProb":
		return c.LinkDropProb
	case "LinkSlowProb":
		return c.LinkSlowProb
	case "PartitionProb":
		return c.PartitionProb
	}
	return 0
}

// validateSchedule checks every window and rejects schedule-vs-rate
// conflicts: a kind must be driven either by its flat Config rate or by
// windows, never both, so there is exactly one source of truth for when
// each fault class fires.
func (c Config) validateSchedule() error {
	for i, w := range c.Schedule {
		if w.Kind < KindCrash || w.Kind >= kindEnd {
			return &ConfigError{Field: "Schedule", Value: float64(w.Kind),
				Reason: "window has unknown fault kind"}
		}
		if w.StartS < 0 {
			return &ConfigError{Field: "Schedule", Value: w.StartS,
				Reason: "window start is negative"}
		}
		if w.EndS != 0 && w.EndS < w.StartS {
			return &ConfigError{Field: "Schedule", Value: w.EndS,
				Reason: "window ends before it starts"}
		}
		if w.Prob < 0 || w.Prob > 1 {
			return &ConfigError{Field: "Schedule", Value: w.Prob,
				Reason: "window probability out of [0,1]"}
		}
		for _, id := range w.Workers {
			if id < 0 {
				return &ConfigError{Field: "Schedule", Value: float64(id),
					Reason: "window worker id is negative"}
			}
		}
		switch {
		case w.Kind == KindArrival:
			if w.Factor <= 0 {
				return &ConfigError{Field: "Schedule", Value: w.Factor,
					Reason: "arrival window needs a positive rate Factor"}
			}
		case w.Kind == KindRetryStorm:
			if w.Factor <= 1 {
				return &ConfigError{Field: "Schedule", Value: w.Factor,
					Reason: "retry-storm window needs a Factor > 1 (retry aggression multiplier)"}
			}
		case w.Kind == KindBrownout:
			if w.Factor <= 1 {
				return &ConfigError{Field: "Schedule", Value: w.Factor,
					Reason: "brownout window needs a Factor > 1 (service-time multiplier)"}
			}
		case IsByzantineKind(w.Kind):
			if len(c.ByzantineWorkers) > 0 {
				return &ConfigError{Field: "Schedule", Value: float64(i),
					Reason: "Byzantine window conflicts with ByzantineWorkers rate config"}
			}
		default:
			if w.Prob == 0 {
				return &ConfigError{Field: "Schedule", Value: w.Prob,
					Reason: "window probability is zero (" + w.Kind.String() + " windows need Prob > 0)"}
			}
			if f := scheduleBaseField(w.Kind); f != "" && c.baseProb(f) > 0 {
				return &ConfigError{Field: f, Value: c.baseProb(f),
					Reason: "conflicts with a " + w.Kind.String() + " schedule window (use one or the other)"}
			}
		}
		if w.Factor < 0 {
			return &ConfigError{Field: "Schedule", Value: w.Factor,
				Reason: "window factor is negative"}
		}
	}
	return nil
}

// SetClock attaches a simulated-time source for draws that do not carry an
// explicit timestamp (the round-driven training path). Call it once,
// before the injector is shared across goroutines; a nil clock leaves
// schedule windows inert for clock-based draws.
func (i *Injector) SetClock(c Clock) {
	if i != nil {
		i.clock = c
	}
}

// clockNow returns the attached clock's time, or 0 and false without one.
func (i *Injector) clockNow() (float64, bool) {
	if i == nil || i.clock == nil {
		return 0, false
	}
	return i.clock.Now(), true
}

// windowStateAt folds every window of the kind active for worker at t:
// combined probability 1-∏(1-pᵢ) and the product of factors (1 when no
// active window sets one).
func (i *Injector) windowStateAt(kind Kind, worker int, t float64) (prob, factor float64) {
	factor = 1
	if i == nil {
		return 0, 1
	}
	miss := 1.0
	for _, w := range i.cfg.Schedule {
		if w.Kind != kind || !w.activeAt(worker, t) {
			continue
		}
		miss *= 1 - w.Prob
		if w.Factor > 0 {
			factor *= w.Factor
		}
	}
	return 1 - miss, factor
}

// probAt combines a flat base probability with the windows active at t.
// Validation guarantees at most one of the two is nonzero for any kind.
func (i *Injector) probAt(kind Kind, worker int, base, t float64) float64 {
	wp, _ := i.windowStateAt(kind, worker, t)
	if wp <= 0 {
		return base
	}
	return 1 - (1-base)*(1-wp)
}

// probNow is probAt at the attached clock's time; without a clock the base
// rate stands alone.
func (i *Injector) probNow(kind Kind, worker int, base float64) float64 {
	t, ok := i.clockNow()
	if !ok {
		return base
	}
	return i.probAt(kind, worker, base, t)
}

// ChanceAt is Chance with the schedule resolved at the explicit instant t:
// the effective probability combines base with every window of the kind
// active for worker at t. Components that track their own absolute
// timestamps (the serving simulator) use this; clock-driven components use
// the kind-specific helpers, which resolve at the attached clock.
func (i *Injector) ChanceAt(kind Kind, worker, step, attempt int, base, t float64) bool {
	if i == nil {
		return false
	}
	return i.Chance(kind, worker, step, attempt, i.probAt(kind, worker, base, t))
}

// FactorAt returns the product of the Factors of every window of the kind
// active for worker at t (1 when none is active or none sets a factor).
func (i *Injector) FactorAt(kind Kind, worker int, t float64) float64 {
	_, f := i.windowStateAt(kind, worker, t)
	return f
}

// StraggleFactorAt is the explicit-time form of StraggleFactor: the
// latency multiplier for a draw keyed (worker, step) resolved against the
// windows active at t. Window factors default to 8 like the flat-rate
// path.
func (i *Injector) StraggleFactorAt(worker, step int, t float64) float64 {
	if i == nil {
		return 1
	}
	wp, wf := i.windowStateAt(KindStraggle, worker, t)
	if wp <= 0 {
		return i.straggleFlat(worker, step)
	}
	if !i.Chance(KindStraggle, worker, step, 0, wp) {
		return 1
	}
	if wf <= 1 {
		return 8
	}
	return wf
}

// ArrivalGapAt draws the deterministic inter-arrival gap before request id
// when the previous arrival happened at time t: an exponential variate
// whose mean is the base mean divided by the product of the arrival-window
// factors active at t. A flash-crowd window with Factor 8 therefore
// multiplies the arrival rate by 8 for its duration.
func (i *Injector) ArrivalGapAt(id int, mean, t float64) float64 {
	return i.ArrivalGapFor(0, id, mean, t)
}

// ArrivalGapFor is ArrivalGapAt for a specific arrival stream (worker is
// the stream id — a tenant, in the multi-tenant serving fleet). Arrival
// windows listing specific Workers compress only those streams' gaps, so a
// flash crowd can target one tenant.
func (i *Injector) ArrivalGapFor(worker, id int, mean, t float64) float64 {
	if i == nil || mean <= 0 {
		return 0
	}
	_, f := i.windowStateAt(KindArrival, worker, t)
	return i.Exp(KindArrival, worker, id, 0, mean/f)
}

// byzantineAt resolves which Byzantine attack (if any) the worker mounts
// this round, at simulated time t: the flat ByzantineWorkers config takes
// priority (validation forbids mixing it with Byzantine windows), then the
// first active Byzantine window listing the worker. The returned kind
// selects the attack shape; the magnitude knobs (SignFlipFactor etc.) come
// from Config as usual.
func (i *Injector) byzantineAt(worker, round int, t float64, haveT bool) (Kind, bool) {
	if i == nil {
		return 0, false
	}
	if i.ByzantineWorker(worker) {
		rate := i.cfg.ByzantineRate
		if rate == 0 {
			rate = 1
		}
		if i.Chance(i.cfg.ByzantineKind, worker, round, 0, rate) {
			return i.cfg.ByzantineKind, true
		}
		return 0, false
	}
	if !haveT {
		var ok bool
		if t, ok = i.clockNow(); !ok {
			return 0, false
		}
	}
	for _, w := range i.cfg.Schedule {
		if !IsByzantineKind(w.Kind) || !w.activeAt(worker, t) {
			continue
		}
		p := w.Prob
		if p == 0 {
			p = 1
		}
		if i.Chance(w.Kind, worker, round, 0, p) {
			return w.Kind, true
		}
	}
	return 0, false
}
